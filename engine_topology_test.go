package gossipkit

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// topoCompareSpec is the three-axis acceptance grid: the paper's algorithm
// and two baselines, two bundled scenarios, and one overlay row per
// topology family (uniform, sparse k-out, WAN clusters).
func topoCompareSpec() Compare {
	return Compare{
		Scenarios: []*Scenario{
			mustScenario("crash-wave"), mustScenario("partition-heal"),
		},
		Paper: true,
		Protocols: []ProtocolSpec{
			PbcastParams{N: 200, Fanout: 4, Rounds: 10, AliveRatio: 1},
			LRGParams{N: 200, Degree: 6, GossipProb: 0.8, RepairRounds: 5, AliveRatio: 1},
		},
		Topologies: []Topology{
			{}, KOutTopology(6), WANTopology(4, 0),
		},
		Config: ScenarioRunConfig{
			Params:            Params{N: 200, Fanout: Poisson(5), AliveRatio: 1},
			PartialViewCopies: 2,
		},
	}
}

// topoCompareGoldenCSV pins the (protocol × scenario × topology) grid at
// seed 2008, seeds=2 — the statistically-pinned acceptance artifact of the
// topology seam. The header gains `topology` and `corrected_prediction`
// over the two-axis golden; a diff in the body means overlay generation,
// seed derivation, or the comparison surface moved. Regenerate deliberately
// and say so in the commit.
const topoCompareGoldenCSV = `protocol,scenario,topology,runs,reliability,reliability_stddev,survivor_reliability,spread_ms,mean_messages,mean_up_at_end,static_prediction,effective_prediction,corrected_prediction
paper,crash-wave,uniform,2,0.702500,0.038891,0.945205,69.760,666.5,146.0,0.993023,0.971119,0.000000
paper,partition-heal,uniform,2,0.937500,0.038891,0.937500,114.304,953.0,200.0,0.993023,0.993023,0.000000
pbcast,crash-wave,uniform,2,0.735000,0.000000,1.000000,115.982,3586.0,146.0,0.000000,0.000000,0.000000
pbcast,partition-heal,uniform,2,1.000000,0.000000,1.000000,118.689,1748.0,200.0,0.000000,0.000000,0.000000
lrg,crash-wave,uniform,2,0.735000,0.007071,1.000000,68.775,806.5,146.0,0.000000,0.000000,0.000000
lrg,partition-heal,uniform,2,1.000000,0.000000,1.000000,102.430,1167.0,200.0,0.000000,0.000000,0.000000
paper,crash-wave,kout:6,2,0.732500,0.003536,0.986301,56.838,559.0,146.0,0.993023,0.971119,0.969178
paper,partition-heal,kout:6,2,0.952500,0.010607,0.952500,115.308,891.0,200.0,0.993023,0.993023,0.982500
pbcast,crash-wave,kout:6,2,0.727500,0.003536,0.993151,116.546,3449.5,146.0,0.000000,0.000000,0.000000
pbcast,partition-heal,kout:6,2,1.000000,0.000000,1.000000,135.281,2004.0,200.0,0.000000,0.000000,0.000000
lrg,crash-wave,kout:6,2,0.742500,0.010607,1.000000,57.629,657.0,146.0,0.000000,0.000000,0.000000
lrg,partition-heal,kout:6,2,1.000000,0.000000,1.000000,106.641,992.5,200.0,0.000000,0.000000,0.000000
paper,crash-wave,wan:4,2,0.817500,0.010607,0.993151,40.723,766.0,146.0,0.993023,0.971119,0.969178
paper,partition-heal,wan:4,2,0.995000,0.000000,0.995000,106.138,993.0,200.0,0.993023,0.993023,0.990000
pbcast,crash-wave,wan:4,2,0.732500,0.003536,1.000000,211.445,3438.5,146.0,0.000000,0.000000,0.000000
pbcast,partition-heal,wan:4,2,1.000000,0.000000,1.000000,253.551,2596.0,200.0,0.000000,0.000000,0.000000
lrg,crash-wave,wan:4,2,0.827500,0.003536,1.000000,29.930,1001.0,146.0,0.000000,0.000000,0.000000
lrg,partition-heal,wan:4,2,1.000000,0.000000,1.000000,106.425,1578.0,200.0,0.000000,0.000000,0.000000
`

// TestTopologyCompareGoldenCSV: the three-axis grid CSV is golden-pinned
// and identical for any worker count; cell seeds ignore the topology row,
// so the uniform rows reproduce the two-axis grid's cells exactly.
func TestTopologyCompareGoldenCSV(t *testing.T) {
	var first string
	for _, workers := range []int{1, 5} {
		out, err := RunMany(context.Background(), topoCompareSpec(), 2,
			WithSeed(2008), WithWorkers(workers), WithoutReports())
		if err != nil {
			t.Fatal(err)
		}
		res := out.Aggregate.(*ScenarioCompareResult)
		csv := res.CSV()
		if first == "" {
			first = csv
		} else if csv != first {
			t.Fatalf("workers=%d: three-axis comparison CSV diverged from workers=1", workers)
		}
		if out.Runs != 3*3*2*2 {
			t.Fatalf("workers=%d: %d runs, want 36", workers, out.Runs)
		}
	}
	if !strings.HasPrefix(first, "protocol,scenario,topology,") ||
		!strings.Contains(strings.SplitN(first, "\n", 2)[0], "corrected_prediction") {
		t.Fatalf("three-axis header missing topology/corrected columns:\n%s", first)
	}
	if first != topoCompareGoldenCSV {
		t.Errorf("three-axis comparison grid moved; regenerate deliberately.\n got:\n%s\nwant:\n%s", first, topoCompareGoldenCSV)
	}
}

// TestTopologyNetworkDeterministic: a Network run with WithTopology is a
// pure function of the seed — and actually constrains spread (a sparse
// overlay cannot beat the full view's reliability by more than noise).
func TestTopologyNetworkDeterministic(t *testing.T) {
	spec := Network{Params: Params{N: 300, Fanout: Poisson(5), AliveRatio: 0.9}}
	var first NetResult
	for i := 0; i < 2; i++ {
		out, err := Run(context.Background(), spec, WithSeed(7), WithTopology(KOutTopology(4)))
		if err != nil {
			t.Fatal(err)
		}
		res := out.Reports[0].Detail.(NetResult)
		if i == 0 {
			first = res
			if res.Reliability <= 0 || res.Reliability > 1 {
				t.Fatalf("reliability %v out of range", res.Reliability)
			}
		} else if res != first {
			t.Fatalf("repeat diverged: %+v vs %+v", res, first)
		}
	}
}

// TestTopologyMonteCarloDeterministic: MonteCarlo with WithTopology is
// quenched — one overlay per sweep, shared across replications — and the
// aggregate is a pure function of (seed, runs).
func TestTopologyMonteCarloDeterministic(t *testing.T) {
	spec := MonteCarlo{Params: Params{N: 400, Fanout: Poisson(4), AliveRatio: 0.85}, Metric: GiantComponent}
	var first ComponentEstimate
	for i := 0; i < 2; i++ {
		out, err := RunMany(context.Background(), spec, 10,
			WithSeed(11), WithTopology(WANTopology(4, 0)))
		if err != nil {
			t.Fatal(err)
		}
		est := out.Aggregate.(ComponentEstimate)
		if i == 0 {
			first = est
			if est.Mean <= 0 || est.Mean > 1 {
				t.Fatalf("giant component %v out of range", est.Mean)
			}
		} else if est != first {
			t.Fatalf("repeat diverged: %+v vs %+v", est, first)
		}
	}
}

// TestTopologyRejections: engines without an overlay seam reject
// WithTopology with ErrInvalidParams instead of silently ignoring it, and
// conflicting topology settings on scenario specs are errors.
func TestTopologyRejections(t *testing.T) {
	p := Params{N: 100, Fanout: Poisson(4), AliveRatio: 0.9}
	cases := []struct {
		name string
		spec Engine
		opts []Option
	}{
		{"analytic", Analytic{Params: p}, []Option{WithTopology(KOutTopology(4))}},
		{"success", Success{Params: SuccessParams{Params: p, Executions: 3, Simulations: 2}},
			[]Option{WithTopology(KOutTopology(4))}},
		{"network view conflict",
			Network{Params: Params{N: 100, Fanout: Poisson(4), AliveRatio: 0.9,
				View: PartialViews(100, 8, NewRNG(1))}},
			[]Option{WithTopology(KOutTopology(4))}},
		{"invalid spec", Network{Params: p}, []Option{WithTopology(Topology{Kind: TopologyWAN, Zones: 1})}},
		{"campaign conflict",
			Campaign{
				Scenarios: []*Scenario{mustScenario("crash-wave")},
				Config:    ScenarioRunConfig{Params: p, Topology: KOutTopology(4)},
			},
			[]Option{WithTopology(WANTopology(4, 0))}},
		{"compare axis conflict",
			func() Engine {
				s := topoCompareSpec()
				s.Config.Topology = KOutTopology(4)
				return s
			}(),
			nil},
	}
	for _, tc := range cases {
		_, err := RunMany(context.Background(), tc.spec, 2, tc.opts...)
		if !errors.Is(err, ErrInvalidParams) {
			t.Errorf("%s: err %v, want ErrInvalidParams", tc.name, err)
		}
	}
	// The same spec on an agreeing config is not a conflict.
	spec := Campaign{
		Scenarios: []*Scenario{mustScenario("crash-wave")},
		Config:    ScenarioRunConfig{Params: p, Topology: KOutTopology(4)},
	}
	if _, err := RunMany(context.Background(), spec, 2, WithSeed(3), WithTopology(KOutTopology(4))); err != nil {
		t.Errorf("agreeing WithTopology rejected: %v", err)
	}
}

// TestParseTopologyFacade: the facade parser round-trips the CLI syntax
// and wraps malformed specs in ErrInvalidParams.
func TestParseTopologyFacade(t *testing.T) {
	for _, s := range []string{"uniform", "kout:8", "ba:3", "wan:4", "wan:4:6"} {
		topo, err := ParseTopology(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if s != "uniform" && topo.String() != s {
			t.Errorf("%s round-tripped to %s", s, topo.String())
		}
	}
	if _, err := ParseTopology("mesh"); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("mesh: err %v, want ErrInvalidParams", err)
	}
}
