// Pub/sub: a topic-based publish/subscribe system built on gossip multicast
// (the motivating application of the paper's reference [1], lpbcast).
//
// A broker-less group of 400 live goroutine "members" subscribes to topics;
// publishers multicast events with the paper's general gossiping algorithm
// over an in-process network. Some members crash mid-run; delivery counts
// demonstrate the reliability the model predicts for the surviving members.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"gossipkit"
	"gossipkit/internal/simnet"
)

const (
	groupSize  = 400
	meanFanout = 5.0
	crashFrac  = 0.15
)

// event is a published message: a topic plus a payload and a dedup ID.
type event struct {
	ID      int64
	Topic   string
	Payload string
	Hops    int
}

// member is one pub/sub participant.
type member struct {
	id      simnet.NodeID
	net     *simnet.LiveNet
	rng     *gossipkit.RNG
	fanout  gossipkit.Distribution
	topics  map[string]bool
	seen    map[int64]bool
	mu      sync.Mutex
	deliver func(simnet.NodeID, event)
}

// run consumes the member's inbox until the network closes.
func (m *member) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for msg := range m.net.Inbox(m.id) {
		ev := msg.Payload.(event)
		m.mu.Lock()
		dup := m.seen[ev.ID]
		if !dup {
			m.seen[ev.ID] = true
		}
		subscribed := m.topics[ev.Topic]
		m.mu.Unlock()
		if dup {
			continue
		}
		if subscribed && m.deliver != nil {
			m.deliver(m.id, ev)
		}
		m.gossip(ev) // forward on first receipt, whether subscribed or not
	}
}

// gossip implements the paper's algorithm: draw f ~ P, pick f uniform
// targets, forward.
func (m *member) gossip(ev event) {
	m.mu.Lock()
	f := m.fanout.Sample(m.rng)
	targets := m.rng.SampleExcluding(nil, groupSize, f, int(m.id))
	m.mu.Unlock()
	fwd := ev
	fwd.Hops++
	for _, t := range targets {
		m.net.Send(m.id, simnet.NodeID(t), fwd)
	}
}

func main() {
	net := simnet.NewLive(groupSize, 4096)
	root := gossipkit.NewRNG(2008)

	topics := []string{"market.btc", "market.eth", "alerts.sev1"}
	var delivered [3]atomic.Int64
	topicIndex := map[string]int{}
	for i, t := range topics {
		topicIndex[t] = i
	}

	members := make([]*member, groupSize)
	var wg sync.WaitGroup
	subscribers := make([]int, len(topics))
	for i := range members {
		rng := root.Split(uint64(i))
		m := &member{
			id:     simnet.NodeID(i),
			net:    net,
			rng:    rng,
			fanout: gossipkit.Poisson(meanFanout),
			topics: map[string]bool{},
			seen:   map[int64]bool{},
			deliver: func(_ simnet.NodeID, ev event) {
				delivered[topicIndex[ev.Topic]].Add(1)
			},
		}
		// Every member subscribes to a random subset of topics.
		for ti, t := range topics {
			if rng.Bool(0.5) {
				m.topics[t] = true
				subscribers[ti]++
			}
		}
		members[i] = m
		wg.Add(1)
		go m.run(&wg)
	}

	// Crash a fraction of the group (fail-stop), never member 0 (the
	// publisher).
	crashed := 0
	for i := 1; i < groupSize; i++ {
		if root.Bool(crashFrac) {
			net.Crash(simnet.NodeID(i))
			crashed++
		}
	}
	q := 1 - float64(crashed)/float64(groupSize)

	// Publish one event per topic from member 0.
	for ti, t := range topics {
		ev := event{ID: int64(ti + 1), Topic: t, Payload: "payload"}
		members[0].mu.Lock()
		members[0].seen[ev.ID] = true
		members[0].mu.Unlock()
		if members[0].topics[t] {
			delivered[ti].Add(1)
		}
		members[0].gossip(ev)
	}

	// Let the gossip drain, then close the fabric.
	time.Sleep(300 * time.Millisecond)
	net.Close()
	wg.Wait()

	out, err := gossipkit.Run(context.Background(), gossipkit.Analytic{
		Params: gossipkit.Params{N: groupSize, Fanout: gossipkit.Poisson(meanFanout), AliveRatio: q},
	})
	if err != nil {
		log.Fatal(err)
	}
	pred := out.Aggregate.(gossipkit.Prediction)
	fmt.Printf("group=%d crashed=%d (q=%.2f), fanout Po(%.1f)\n", groupSize, crashed, q, meanFanout)
	fmt.Printf("model per-member delivery probability: %.4f\n\n", pred.Reliability)
	for ti, t := range topics {
		got := delivered[ti].Load()
		// Roughly q of the subscribers survived to receive.
		aliveSubs := float64(subscribers[ti]) * q
		fmt.Printf("topic %-12s subscribers=%3d (≈%3.0f alive)  delivered=%3d  ratio=%.3f\n",
			t, subscribers[ti], aliveSubs, got, float64(got)/aliveSubs)
	}
	fmt.Println("\n(delivery ratio ≈ model probability when the spread takes off;")
	fmt.Println(" a ratio near 0 on some topic is the die-out mass — republish to fix)")
}
