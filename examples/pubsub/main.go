// Pub/sub: a topic-based publish/subscribe system built on streaming
// gossip multicast (the motivating application of the paper's reference
// [1], lpbcast — bounded buffers, frequency-purged, under sustained load).
//
// A broker-less group of 256 members publishes a continuous event stream:
// every member is a potential source, events round-robin across topics,
// and each event spreads as an independent rumor through the bounded
// per-member rumor buffers of the Stream engine. A fraction of the group
// is down throughout (the paper's q). The demo runs the same workload at
// two offered rates straddling the saturation knee and reports per-topic
// delivery ratios against the paper's single-rumor prediction — below the
// knee the stream matches the model; above it eviction loss opens a gap
// the single-rumor analysis cannot see.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gossipkit"
)

const (
	groupSize  = 256
	meanFanout = 5.0
	aliveRatio = 0.85 // the paper's q: 15% of members are down
	bufferCap  = 12   // bounded rumor buffer per member (lpbcast-style)
)

var topics = []string{"market.btc", "market.eth", "alerts.sev1"}

// topicOf maps an event to its topic: publishers round-robin topics over
// the publish schedule, so schedule index determines the topic.
func topicOf(m gossipkit.StreamMessage) string { return topics[m.ID%len(topics)] }

func main() {
	ctx := context.Background()

	// The paper's model: per-member delivery probability of one rumor
	// gossiped with fanout Po(5) when a fraction q of the group is up.
	out, err := gossipkit.Run(ctx, gossipkit.Analytic{
		Params: gossipkit.Params{
			N:          groupSize,
			Fanout:     gossipkit.Poisson(meanFanout),
			AliveRatio: aliveRatio,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	pred := out.Aggregate.(gossipkit.Prediction)
	fmt.Printf("group=%d, q=%.2f, fanout Po(%.1f), buffer cap %d, eviction lpbcast\n",
		groupSize, aliveRatio, meanFanout, bufferCap)
	fmt.Printf("model single-rumor delivery probability: %.4f\n\n", pred.Reliability)

	// The same pub/sub workload at two offered rates: one below the
	// saturation knee for this buffer size, one well above it.
	for _, rate := range []float64{300, 9000} {
		res := runStream(ctx, rate)
		report(rate, pred.Reliability, res)
	}
	fmt.Println("(below the knee the stream matches the single-rumor model;")
	fmt.Println(" above it bounded buffers evict live rumors and reliability")
	fmt.Println(" collapses — the loss mode only streaming analysis exposes)")
}

// runStream drives the pub/sub event stream at one offered rate.
func runStream(ctx context.Context, rate float64) gossipkit.StreamResult {
	out, err := gossipkit.Run(ctx, gossipkit.Stream{
		Config: gossipkit.StreamConfig{
			N:          groupSize,
			Rate:       rate,
			Duration:   500 * time.Millisecond,
			Fanout:     gossipkit.Poisson(meanFanout),
			AliveRatio: aliveRatio,
			BufferCap:  bufferCap,
			Eviction:   gossipkit.EvictLpbcast,
			Discipline: gossipkit.StreamPush,
		},
		Net: gossipkit.NetConfig{
			Latency: gossipkit.UniformLatency(time.Millisecond, 5*time.Millisecond),
		},
	}, gossipkit.WithSeed(2008))
	if err != nil {
		log.Fatal(err)
	}
	return out.Reports[0].Detail.(gossipkit.StreamResult)
}

// report prints per-topic delivery ratios and the loss attribution.
func report(rate, predicted float64, res gossipkit.StreamResult) {
	fmt.Printf("offered rate %.0f events/s: published=%d skipped=%d (sources down)\n",
		rate, res.Published, res.Skipped)

	// Per-topic accounting over the per-message results: mean delivery
	// ratio among the initially-alive members, worst message, evictions.
	type tally struct {
		events, evicted int
		relSum, relMin  float64
	}
	byTopic := map[string]*tally{}
	for _, name := range topics {
		byTopic[name] = &tally{relMin: 1}
	}
	for _, m := range res.Messages {
		if m.Outcome == gossipkit.MsgSkipped { // never entered the stream
			continue
		}
		tl := byTopic[topicOf(m)]
		tl.events++
		tl.relSum += m.Reliability
		tl.evicted += m.Evictions
		if m.Reliability < tl.relMin {
			tl.relMin = m.Reliability
		}
	}
	for _, name := range topics {
		tl := byTopic[name]
		if tl.events == 0 {
			continue
		}
		mean := tl.relSum / float64(tl.events)
		fmt.Printf("  topic %-12s events=%4d  delivery=%.4f (model %.4f, gap %+.4f)  worst=%.4f  evictions=%d\n",
			name, tl.events, mean, predicted, mean-predicted, tl.relMin, tl.evicted)
	}
	fmt.Printf("  outcomes: %d delivered, %d lost to eviction, %d lost to drops, %d died; ledger evicted=%d\n\n",
		res.FullyDelivered, res.LostEviction, res.LostDrop, res.Died, res.Ledger.Evicted)
}
