// Replicadb: an anti-entropy replicated key-value store in the style of
// Demers et al. (the paper's reference [2]) built on the library's
// substrates: rumor-mongering of updates via the general gossiping
// algorithm plus periodic anti-entropy rounds that reconcile replica state.
//
// The demo writes keys at different replicas, crashes a fraction of the
// group, lets rumor + anti-entropy run over the discrete-event network, and
// then verifies that every surviving replica converged to the same state.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gossipkit"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
)

const (
	replicas    = 120
	meanFanout  = 4.0
	crashCount  = 20
	antiEntropy = 200 * time.Millisecond // reconciliation period
	horizon     = 3 * time.Second
)

// entry is a versioned key-value pair; last-writer-wins by version.
type entry struct {
	Key     string
	Value   string
	Version int64
}

// update is the rumor payload.
type update struct{ E entry }

// syncMsg carries a replica's full state digest for anti-entropy
// (tiny states here; a real system would exchange Merkle digests).
type syncMsg struct{ Entries []entry }

// replica is one KV node.
type replica struct {
	id    simnet.NodeID
	store map[string]entry
	rng   *gossipkit.RNG
	net   *simnet.Network
}

// apply merges one entry, returning true when it was news.
func (rp *replica) apply(e entry) bool {
	cur, ok := rp.store[e.Key]
	if ok && cur.Version >= e.Version {
		return false
	}
	rp.store[e.Key] = e
	return true
}

// rumor forwards an update to Po(meanFanout) random replicas.
func (rp *replica) rumor(e entry) {
	f := gossipkit.Poisson(meanFanout).Sample(rp.rng)
	for _, t := range rp.rng.SampleExcluding(nil, replicas, f, int(rp.id)) {
		rp.net.Send(rp.id, simnet.NodeID(t), update{E: e})
	}
}

// antiEntropyRound pushes the full state to one random peer.
func (rp *replica) antiEntropyRound() {
	peer := rp.rng.SampleExcluding(nil, replicas, 1, int(rp.id))
	if len(peer) == 0 {
		return
	}
	entries := make([]entry, 0, len(rp.store))
	for _, e := range rp.store {
		entries = append(entries, e)
	}
	rp.net.Send(rp.id, simnet.NodeID(peer[0]), syncMsg{Entries: entries})
}

func main() {
	kernel := sim.New()
	root := gossipkit.NewRNG(77)
	net := simnet.New(kernel, replicas, root.Split(1), simnet.Config{
		Latency: simnet.UniformLatency{Lo: time.Millisecond, Hi: 20 * time.Millisecond},
		Loss:    simnet.BernoulliLoss{P: 0.02},
	})

	nodes := make([]*replica, replicas)
	for i := range nodes {
		rp := &replica{
			id:    simnet.NodeID(i),
			store: map[string]entry{},
			rng:   root.Split(uint64(100 + i)),
			net:   net,
		}
		nodes[i] = rp
		net.Register(rp.id, func(_ sim.Time, msg simnet.Message) {
			switch m := msg.Payload.(type) {
			case update:
				if rp.apply(m.E) {
					rp.rumor(m.E) // rumor-monger on first receipt
				}
			case syncMsg:
				for _, e := range m.Entries {
					if rp.apply(e) {
						rp.rumor(e)
					}
				}
			}
		})
	}

	// Periodic anti-entropy for every replica.
	var schedule func(rp *replica)
	schedule = func(rp *replica) {
		kernel.After(antiEntropy, func() {
			rp.antiEntropyRound()
			if kernel.Now().Duration() < horizon {
				schedule(rp)
			}
		})
	}
	for _, rp := range nodes {
		schedule(rp)
	}

	// Crash some replicas before any writes (fail-stop). The writer
	// replicas (0, 3, 7, 11) stay up so every write enters the system —
	// the interesting question is whether gossip carries it everywhere.
	const firstCrashable = 12
	for crashed := 0; crashed < crashCount; {
		id := simnet.NodeID(firstCrashable + root.Intn(replicas-firstCrashable))
		if net.Up(id) {
			net.Crash(id)
			crashed++
		}
	}

	// Writes arrive at different replicas over the first second.
	writes := []struct {
		at    time.Duration
		node  int
		key   string
		value string
	}{
		{10 * time.Millisecond, 0, "user:42", "alice"},
		{50 * time.Millisecond, 3, "user:43", "bob"},
		{200 * time.Millisecond, 7, "config/ttl", "30s"},
		{400 * time.Millisecond, 0, "user:42", "alice-v2"}, // overwrite
		{800 * time.Millisecond, 11, "feature/x", "on"},
	}
	version := int64(0)
	for _, w := range writes {
		w := w
		version++
		v := version
		kernel.At(sim.Time(w.at), func() {
			rp := nodes[w.node]
			e := entry{Key: w.key, Value: w.value, Version: v}
			if rp.apply(e) {
				rp.rumor(e)
			}
		})
	}

	if err := kernel.Run(sim.Time(horizon)); err != nil {
		log.Fatal(err)
	}

	// Verify convergence across surviving replicas.
	want := map[string]string{
		"user:42": "alice-v2", "user:43": "bob", "config/ttl": "30s", "feature/x": "on",
	}
	converged, diverged := 0, 0
	for i, rp := range nodes {
		if !net.Up(simnet.NodeID(i)) {
			continue
		}
		ok := len(rp.store) == len(want)
		for k, v := range want {
			if rp.store[k].Value != v {
				ok = false
				break
			}
		}
		if ok {
			converged++
		} else {
			diverged++
		}
	}
	st := net.Stats()
	fmt.Printf("replicas=%d crashed=%d survivors=%d\n", replicas, crashCount, converged+diverged)
	fmt.Printf("converged=%d diverged=%d after %v of rumor + anti-entropy\n",
		converged, diverged, horizon)
	fmt.Printf("network: sent=%d delivered=%d lost=%d toCrashed=%d\n",
		st.Sent, st.Delivered, st.DroppedLoss, st.DroppedCrash)
	if diverged == 0 {
		fmt.Println("all surviving replicas hold identical state — anti-entropy closed every gap")
	} else {
		fmt.Println("some replicas lag — extend the horizon or shorten the anti-entropy period")
	}

	// What a single rumor wave alone would deliver, from the analytic
	// engine — the gap to 100% is what the periodic anti-entropy closes.
	q := 1 - float64(crashCount)/float64(replicas)
	if out, err := gossipkit.Run(context.Background(), gossipkit.Analytic{
		Params: gossipkit.Params{N: replicas, Fanout: gossipkit.Poisson(meanFanout), AliveRatio: q},
	}); err == nil {
		pred := out.Aggregate.(gossipkit.Prediction)
		fmt.Printf("(model: one rumor wave alone reaches %.1f%% of survivors at q=%.2f)\n",
			pred.Reliability*100, q)
	}
}
