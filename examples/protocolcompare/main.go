// Protocol comparison: run the same fault campaigns against the paper's
// algorithm and the related-work baselines on one discrete-event
// substrate, through the gossipkit.Compare engine.
//
// The paper's claim is comparative — single-shot gossip buys most of the
// reliability of the heavyweight protocols at a fraction of the message
// cost. Here every protocol faces byte-identical campaign randomness (the
// same crash victims at the same instants): a mid-spread crash wave, and a
// partition that never heals on its own but is rescued by a conditional
// "when the spread stalls" trigger.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gossipkit"
)

func main() {
	ctx := context.Background()
	const n = 500

	// Two campaigns. The second never heals its partition on a timer:
	// a stall trigger watches delivery and fires the heal (plus a
	// re-gossip wave) only once the spread has made no progress for 30ms
	// of simulated time — the same trigger works on every protocol row.
	crashWave, _ := gossipkit.ScenarioByName("crash-wave")
	rescue := gossipkit.NewScenario("stall-rescue",
		"partition from t=0, healed by a stall trigger plus re-gossip").
		At(0, gossipkit.PartitionRange(0.5, 1.0)).
		OnStall(30*time.Millisecond, gossipkit.HealPartition()).
		OnStall(30*time.Millisecond, gossipkit.Regossip(10))

	spec := gossipkit.Compare{
		Scenarios: []*gossipkit.Scenario{crashWave, rescue},
		Paper:     true, // the paper's algorithm, labeled "paper"
		Protocols: []gossipkit.ProtocolSpec{
			gossipkit.PbcastParams{N: n, Fanout: 4, Rounds: 12, AliveRatio: 1},
			gossipkit.AntiEntropyParams{N: n, Rounds: 12, Mode: gossipkit.PushPull, AliveRatio: 1},
			gossipkit.LRGParams{N: n, Degree: 7, GossipProb: 0.8, RepairRounds: 6, AliveRatio: 1},
			gossipkit.FloodingParams{N: n, AliveRatio: 1},
		},
		Config: gossipkit.ScenarioRunConfig{
			Params:            gossipkit.Params{N: n, Fanout: gossipkit.Poisson(5), AliveRatio: 1},
			PartialViewCopies: 2,
		},
	}

	// 5 seeds per (protocol, scenario) cell; deterministic for any
	// worker count.
	out, err := gossipkit.RunMany(ctx, spec, 5, gossipkit.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	grid := out.Aggregate.(*gossipkit.ScenarioCompareResult)
	fmt.Print(grid.Table())

	// The trade the grid measures: survivor reliability bought per
	// message. Flooding is the Θ(n²) upper envelope; the paper's
	// single-shot algorithm sits near the baselines' reliability at a
	// fraction of their cost.
	fmt.Println("\nmessages per survivor served (crash-wave):")
	for pi, proto := range grid.Protocols {
		cell := grid.Cells[pi*len(grid.Scenarios)] // crash-wave is scenario 0
		fmt.Printf("  %-14s %8.1f msgs  (survivor reliability %.3f)\n",
			proto, cell.MeanMessages/(cell.SurvivorReliability.Mean*cell.MeanUpAtEnd+1),
			cell.SurvivorReliability.Mean)
	}
}
