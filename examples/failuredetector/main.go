// Failuredetector: a gossip-style failure detection service in the spirit
// of van Renesse, Minsky & Hayden (the paper's reference [4]).
//
// Every member keeps a heartbeat counter per peer; periodically it bumps
// its own counter and gossips its table to a few random members, who merge
// entry-wise maxima. A member whose counter stops advancing for longer
// than the suspicion timeout is suspected. The demo crashes a few members
// mid-run and reports detection latency and accuracy — all on the
// deterministic discrete-event network.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gossipkit"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
)

const (
	groupSize    = 150
	gossipPeriod = 100 * time.Millisecond
	gossipFanout = 3
	suspectAfter = 800 * time.Millisecond
	horizon      = 6 * time.Second
)

// hbTable is a heartbeat table: counter and last-advance time per member.
type hbTable struct {
	counter []int64
	seenAt  []sim.Time
}

type detector struct {
	id  simnet.NodeID
	tbl hbTable
	rng *gossipkit.RNG
	net *simnet.Network
}

// merge folds a received table in, keeping per-entry maxima.
func (d *detector) merge(now sim.Time, counters []int64) {
	for i, c := range counters {
		if c > d.tbl.counter[i] {
			d.tbl.counter[i] = c
			d.tbl.seenAt[i] = now
		}
	}
}

// suspects lists members whose heartbeat is stale at time now.
func (d *detector) suspects(now sim.Time) []int {
	var out []int
	for i := range d.tbl.counter {
		if simnet.NodeID(i) == d.id {
			continue
		}
		if now.Sub(d.tbl.seenAt[i]) > suspectAfter {
			out = append(out, i)
		}
	}
	return out
}

func main() {
	kernel := sim.New()
	root := gossipkit.NewRNG(99)
	net := simnet.New(kernel, groupSize, root.Split(1), simnet.Config{
		Latency: simnet.ExponentialLatency{Floor: time.Millisecond, Mean: 5 * time.Millisecond},
		Loss:    simnet.BernoulliLoss{P: 0.05},
	})

	detectors := make([]*detector, groupSize)
	for i := range detectors {
		d := &detector{
			id: simnet.NodeID(i),
			tbl: hbTable{
				counter: make([]int64, groupSize),
				seenAt:  make([]sim.Time, groupSize),
			},
			rng: root.Split(uint64(10 + i)),
			net: net,
		}
		detectors[i] = d
		net.Register(d.id, func(now sim.Time, msg simnet.Message) {
			d.merge(now, msg.Payload.([]int64))
		})
	}

	// Periodic heartbeat + gossip loop per member.
	var tick func(d *detector)
	tick = func(d *detector) {
		kernel.After(gossipPeriod, func() {
			now := kernel.Now()
			d.tbl.counter[d.id]++
			d.tbl.seenAt[d.id] = now
			snapshot := append([]int64(nil), d.tbl.counter...)
			for _, t := range d.rng.SampleExcluding(nil, groupSize, gossipFanout, int(d.id)) {
				d.net.Send(d.id, simnet.NodeID(t), snapshot)
			}
			if now.Duration() < horizon {
				tick(d)
			}
		})
	}
	for _, d := range detectors {
		tick(d)
	}

	// Crash three members at staggered times.
	crashes := map[int]time.Duration{17: 1500 * time.Millisecond, 58: 2 * time.Second, 131: 2500 * time.Millisecond}
	for id, at := range crashes {
		id := id
		kernel.At(sim.Time(at), func() { net.Crash(simnet.NodeID(id)) })
	}

	// Sample detection status at the horizon from a healthy observer.
	if err := kernel.Run(sim.Time(horizon)); err != nil {
		log.Fatal(err)
	}
	now := kernel.Now()
	observer := detectors[0]
	suspected := observer.suspects(now)

	truePos, falsePos := 0, 0
	for _, s := range suspected {
		if _, crashed := crashes[s]; crashed {
			truePos++
		} else {
			falsePos++
		}
	}
	fmt.Printf("group=%d, gossip fanout=%d every %v, suspect after %v\n",
		groupSize, gossipFanout, gossipPeriod, suspectAfter)
	fmt.Printf("crashed members: %d, observer suspects: %v\n", len(crashes), suspected)
	fmt.Printf("true positives=%d/%d  false positives=%d\n", truePos, len(crashes), falsePos)

	// Detection latency per crashed member: when its counter stopped
	// advancing at the observer plus the timeout.
	for id, at := range crashes {
		last := observer.tbl.seenAt[id]
		fmt.Printf("member %3d crashed at %-6v: observer's last heartbeat advance %-8v (detection ≈ %v)\n",
			id, at, last, last.Duration()+suspectAfter)
	}
	if truePos == len(crashes) && falsePos == 0 {
		fmt.Println("perfect detection: every crash suspected, no live member defamed")
	}
	out, err := gossipkit.Run(context.Background(), gossipkit.Analytic{
		Params: gossipkit.Params{N: groupSize, Fanout: gossipkit.FixedFanout(gossipFanout), AliveRatio: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	pred := out.Aggregate.(gossipkit.Prediction)
	fmt.Printf("(per-round dissemination reliability from the model: %.4f)\n", pred.Reliability)
}
