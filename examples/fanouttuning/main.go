// Fanout tuning: dimension a gossip protocol from requirements using the
// paper's design equations, then validate the design by simulation.
//
// Scenario: a pub/sub operator must deliver events to 99.9% of subscribers
// while tolerating up to 30% simultaneous crashes, and wants the smallest
// fanout (message budget) that achieves it.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"gossipkit"
)

func main() {
	const (
		groupSize   = 5000
		targetRel   = 0.999 // required per-execution reliability S
		worstCaseQ  = 0.7   // at most 30% of members failed
		successProb = 0.999 // required group-wide success probability
	)

	// Step 1 (Eq. 12): the Poisson mean fanout for S at q.
	z, err := gossipkit.FanoutForReliability(targetRel, worstCaseQ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Eq. 12: mean fanout z = %.3f for S=%.3f at q=%.1f\n", z, targetRel, worstCaseQ)

	// Step 2 (Eq. 10): sanity-check the critical point with margin.
	qc := gossipkit.CriticalRatio(z)
	fmt.Printf("Eq. 10: critical nonfailed ratio q_c = %.3f (margin %.1fx)\n", qc, worstCaseQ/qc)

	// Step 3 (Eq. 6): executions needed for group-wide success.
	p := gossipkit.Params{N: groupSize, Fanout: gossipkit.Poisson(z), AliveRatio: worstCaseQ}
	t, err := gossipkit.ExecutionsForSuccess(p, successProb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Eq. 6: %d executions for %.1f%% group success\n", t, successProb*100)

	// Step 4: validate by simulation at the design point — 30 seeded
	// Monte-Carlo replications on a worker pool.
	giant, err := gossipkit.RunMany(context.Background(),
		gossipkit.MonteCarlo{Params: p}, 30, gossipkit.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	measured := giant.Reliability.Mean
	fmt.Printf("validation: simulated reliability %.4f (target %.3f, gap %+.4f)\n",
		measured, targetRel, measured-targetRel)
	if math.Abs(measured-targetRel) > 0.01 {
		fmt.Println("          (gap above 1%: increase fanout margin)")
	}

	// Step 5: explore the cost curve — what failure levels does this
	// design survive?
	fmt.Println("\nq sweep at the designed fanout:")
	for _, q := range []float64{0.3, 0.5, 0.7, 0.9, 1.0} {
		pq := p
		pq.AliveRatio = q
		pred, err := gossipkit.Predict(pq)
		if err != nil {
			log.Fatal(err)
		}
		bar := ""
		for i := 0; i < int(pred.Reliability*40); i++ {
			bar += "#"
		}
		fmt.Printf("  q=%.1f  R=%.4f  %s\n", q, pred.Reliability, bar)
	}
}
