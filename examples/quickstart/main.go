// Quickstart: multicast one message in a 1000-member group where 10% of
// the members have crashed, and compare the measured reliability with the
// paper's analytic prediction (Eq. 11) — both through the unified
// gossipkit.Run engine API.
package main

import (
	"context"
	"fmt"
	"log"

	"gossipkit"
)

func main() {
	ctx := context.Background()
	p := gossipkit.Params{
		N:          1000,                 // group size
		Fanout:     gossipkit.Poisson(4), // each member forwards to Po(4) targets
		AliveRatio: 0.9,                  // 90% of members are nonfailed
	}

	// Analytic engine: the generalized-random-graph model.
	an, err := gossipkit.Run(ctx, gossipkit.Analytic{Params: p})
	if err != nil {
		log.Fatal(err)
	}
	pred := an.Aggregate.(gossipkit.Prediction)
	fmt.Printf("model: R(q=%.1f, Po(4)) = %.4f, critical ratio q_c = %.2f\n",
		p.AliveRatio, pred.Reliability, pred.CriticalRatio)

	// Monte-Carlo engine: 20 independent executions, like the paper.
	giant, err := gossipkit.RunMany(ctx, gossipkit.MonteCarlo{Params: p}, 20,
		gossipkit.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation: giant component = %.4f ± %.4f (paper's metric)\n",
		giant.Reliability.Mean, giant.Reliability.CI95)

	// What one actual multicast delivers (includes the chance the spread
	// dies right at the source).
	reach, err := gossipkit.RunMany(ctx,
		gossipkit.MonteCarlo{Params: p, Metric: gossipkit.SourceReach}, 200,
		gossipkit.WithSeed(43))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation: one-shot delivery = %.4f (≈ S² due to die-out)\n",
		reach.Reliability.Mean)

	// Fix the die-out with repeated executions (Eq. 6).
	t, err := gossipkit.ExecutionsForSuccess(p, 0.999)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design: %d executions give 99.9%% probability that every member is reached\n", t)
}
