// Quickstart: multicast one message in a 1000-member group where 10% of
// the members have crashed, and compare the measured reliability with the
// paper's analytic prediction (Eq. 11).
package main

import (
	"fmt"
	"log"

	"gossipkit"
)

func main() {
	p := gossipkit.Params{
		N:          1000,                 // group size
		Fanout:     gossipkit.Poisson(4), // each member forwards to Po(4) targets
		AliveRatio: 0.9,                  // 90% of members are nonfailed
	}

	// Analytic side: the generalized-random-graph model.
	pred, err := gossipkit.Predict(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: R(q=%.1f, Po(4)) = %.4f, critical ratio q_c = %.2f\n",
		p.AliveRatio, pred.Reliability, pred.CriticalRatio)

	// Simulation side: 20 independent executions, like the paper.
	giant, err := gossipkit.MeasureGiantComponent(p, 20, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation: giant component = %.4f ± %.4f (paper's metric)\n",
		giant.Mean, giant.CI95)

	// What one actual multicast delivers (includes the chance the spread
	// dies right at the source).
	reach, err := gossipkit.MeasureReliability(p, 200, 43)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation: one-shot delivery = %.4f (≈ S² due to die-out)\n", reach.Mean)

	// Fix the die-out with repeated executions (Eq. 6).
	t, err := gossipkit.ExecutionsForSuccess(p, 0.999)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design: %d executions give 99.9%% probability that every member is reached\n", t)
}
