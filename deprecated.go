package gossipkit

import (
	"context"

	"gossipkit/internal/core"
)

// This file holds the pre-Engine entry points, kept as thin shims over
// Run/RunMany so existing callers keep working with identical results
// (sweep JSON stays byte-identical). Error VALUES are not byte-identical,
// however: routing through the engine layer wraps validation failures in
// ErrInvalidParams, so a failure that used to read "core: ..." now reads
// "gossipkit: invalid parameters: core: ...". Callers that matched error
// strings should switch to errors.Is(err, gossipkit.ErrInvalidParams);
// the original message is preserved in the wrapped chain. New code should
// use the unified engine API; see the migration table in README.md.
// cmd/ and examples/ are gated off these by scripts/lint-api.sh.

// Execute runs one execution of the general gossiping algorithm.
//
// Deprecated: use Run with a MonteCarlo spec on the same RNG stream:
//
//	out, err := gossipkit.Run(ctx,
//		gossipkit.MonteCarlo{Params: p, Metric: gossipkit.SourceReach},
//		gossipkit.WithRNG(r))
//	res := out.Reports[0].Detail.(gossipkit.Result)
func Execute(p Params, r *RNG) (Result, error) {
	out, err := execute(context.Background(),
		MonteCarlo{Params: p, Metric: SourceReach}, &runOptions{runs: 1, rng: r})
	if err != nil {
		return Result{}, err
	}
	return out.Reports[0].Detail.(Result), nil
}

// MeasureReliability runs `runs` seeded executions in parallel and returns
// aggregate statistics of the directed source reach.
//
// Deprecated: use RunMany with a MonteCarlo spec:
//
//	out, err := gossipkit.RunMany(ctx,
//		gossipkit.MonteCarlo{Params: p, Metric: gossipkit.SourceReach},
//		runs, gossipkit.WithSeed(seed))
//	est := out.Aggregate.(gossipkit.Estimate)
func MeasureReliability(p Params, runs int, seed uint64) (Estimate, error) {
	out, err := RunMany(context.Background(),
		MonteCarlo{Params: p, Metric: SourceReach}, runs, WithSeed(seed))
	if err != nil {
		return Estimate{}, err
	}
	return out.Aggregate.(Estimate), nil
}

// MeasureGiantComponent runs `runs` seeded executions and returns the giant
// out-component statistics — the paper's simulated reliability metric.
//
// Deprecated: use RunMany with a MonteCarlo spec (GiantComponent is the
// default metric):
//
//	out, err := gossipkit.RunMany(ctx, gossipkit.MonteCarlo{Params: p},
//		runs, gossipkit.WithSeed(seed))
//	est := out.Aggregate.(gossipkit.ComponentEstimate)
func MeasureGiantComponent(p Params, runs int, seed uint64) (ComponentEstimate, error) {
	out, err := RunMany(context.Background(),
		MonteCarlo{Params: p, Metric: GiantComponent}, runs, WithSeed(seed))
	if err != nil {
		return ComponentEstimate{}, err
	}
	return out.Aggregate.(ComponentEstimate), nil
}

// RunSuccess runs the repeated-execution success protocol (paper §5.2).
//
// Deprecated: use Run with a Success spec:
//
//	out, err := gossipkit.Run(ctx, gossipkit.Success{Params: p},
//		gossipkit.WithSeed(seed))
//	outcome := out.Aggregate.(gossipkit.SuccessOutcome)
func RunSuccess(p SuccessParams, seed uint64) (SuccessOutcome, error) {
	out, err := Run(context.Background(), Success{Params: p}, WithSeed(seed))
	if err != nil {
		return SuccessOutcome{}, err
	}
	return out.Aggregate.(SuccessOutcome), nil
}

// ExecuteOnNetwork runs one execution as an event-driven protocol over the
// simulated network (latency, loss, partitions).
//
// Deprecated: use Run with a Network spec on the same RNG stream:
//
//	out, err := gossipkit.Run(ctx, gossipkit.Network{Params: p, Net: cfg},
//		gossipkit.WithRNG(r))
//	res := out.Reports[0].Detail.(gossipkit.NetResult)
func ExecuteOnNetwork(p Params, cfg NetConfig, r *RNG) (NetResult, error) {
	out, err := execute(context.Background(),
		Network{Params: p, Net: cfg}, &runOptions{runs: 1, rng: r})
	if err != nil {
		return NetResult{}, err
	}
	return out.Reports[0].Detail.(NetResult), nil
}

// NetArena carries reusable run state across network executions on one
// goroutine.
//
// Deprecated: the Network engine recycles one arena per worker internally;
// RunMany needs no caller-managed arenas.
type NetArena = core.NetArena

// NewNetArena returns an empty arena; buffers grow on first use.
//
// Deprecated: see NetArena.
func NewNetArena() *NetArena { return core.NewNetArena() }

// ExecuteOnNetworkReusing is ExecuteOnNetwork recycling arena's buffers.
// Results are byte-identical to ExecuteOnNetwork.
//
// Deprecated: use RunMany with a Network spec — replications recycle
// arenas per worker automatically:
//
//	out, err := gossipkit.RunMany(ctx, gossipkit.Network{Params: p, Net: cfg},
//		runs, gossipkit.WithSeed(seed))
func ExecuteOnNetworkReusing(p Params, cfg NetConfig, r *RNG, arena *NetArena) (NetResult, error) {
	out, err := execute(context.Background(),
		Network{Params: p, Net: cfg}, &runOptions{runs: 1, rng: r, arena: arena})
	if err != nil {
		return NetResult{}, err
	}
	return out.Reports[0].Detail.(NetResult), nil
}

// RunScenario executes one campaign over one gossip execution;
// deterministic in (cfg, s, seed).
//
// Deprecated: use Run with a Campaign spec:
//
//	out, err := gossipkit.Run(ctx, gossipkit.Campaign{
//		Scenarios: []*gossipkit.Scenario{s}, Config: cfg,
//	}, gossipkit.WithSeed(seed))
//	rep := out.Reports[0].Detail.(gossipkit.ScenarioReport)
func RunScenario(s *Scenario, cfg ScenarioRunConfig, seed uint64) (ScenarioReport, error) {
	out, err := Run(context.Background(),
		Campaign{Scenarios: []*Scenario{s}, Config: cfg}, WithSeed(seed))
	if err != nil {
		return ScenarioReport{}, err
	}
	return out.Reports[0].Detail.(ScenarioReport), nil
}

// SweepScenarios replicates scenarios × seeds on a worker pool and
// aggregates per-scenario summaries; the result is identical for any
// worker count.
//
// Deprecated: use RunMany with a Campaign spec:
//
//	out, err := gossipkit.RunMany(ctx, gossipkit.Campaign{
//		Scenarios: scenarios, Config: cfg.Run,
//	}, cfg.Seeds, gossipkit.WithSeed(cfg.BaseSeed), gossipkit.WithWorkers(cfg.Workers))
//	res := out.Aggregate.(*gossipkit.ScenarioSweepResult)
func SweepScenarios(scenarios []*Scenario, cfg ScenarioSweepConfig) (*ScenarioSweepResult, error) {
	seeds := cfg.Seeds
	if seeds < 1 {
		seeds = 1
	}
	out, err := RunMany(context.Background(),
		Campaign{Scenarios: scenarios, Config: cfg.Run},
		seeds, WithSeed(cfg.BaseSeed), WithWorkers(cfg.Workers))
	if err != nil {
		return nil, err
	}
	return out.Aggregate.(*ScenarioSweepResult), nil
}

// SweepScenarioGrid replicates every scenario at every (q, fanout)
// combination; deterministic for any worker count.
//
// Deprecated: use RunMany with a Campaign spec carrying the grid axes:
//
//	out, err := gossipkit.RunMany(ctx, gossipkit.Campaign{
//		Scenarios: scenarios, Config: cfg.Run, Qs: cfg.Qs, Fanouts: cfg.Fanouts,
//	}, cfg.Seeds, gossipkit.WithSeed(cfg.BaseSeed), gossipkit.WithWorkers(cfg.Workers))
//	res := out.Aggregate.(*gossipkit.ScenarioGridResult)
func SweepScenarioGrid(scenarios []*Scenario, cfg ScenarioGridConfig) (*ScenarioGridResult, error) {
	seeds := cfg.Seeds
	if seeds < 1 {
		seeds = 1
	}
	spec := Campaign{Scenarios: scenarios, Config: cfg.Run, Qs: cfg.Qs, Fanouts: cfg.Fanouts}
	// The grid engine needs at least one axis to stay in grid mode; an
	// empty axis means "just the base config's value", exactly as
	// SweepGrid defaulted it.
	if len(spec.Qs) == 0 {
		spec.Qs = []float64{cfg.Run.Params.AliveRatio}
	}
	if len(spec.Fanouts) == 0 {
		spec.Fanouts = []Distribution{cfg.Run.Params.Fanout}
	}
	out, err := RunMany(context.Background(), spec,
		seeds, WithSeed(cfg.BaseSeed), WithWorkers(cfg.Workers))
	if err != nil {
		return nil, err
	}
	return out.Aggregate.(*ScenarioGridResult), nil
}
