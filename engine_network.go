package gossipkit

import (
	"context"
	"fmt"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/obs"
	"gossipkit/internal/runpool"
	"gossipkit/internal/sim"
	"gossipkit/internal/topology"
	"gossipkit/internal/xrand"
)

// Network is the engine for event-driven executions over the simulated
// network: each replication runs the gossiping algorithm with per-message
// latency, loss, and partitions, reporting timing alongside delivery.
//
// Replications recycle one run-state arena per worker internally (kernel
// queue, network buffers, receive flags), so large-n sweeps make zero
// O(n)-sized allocations after warm-up — arena management is no longer the
// caller's job. Report.Detail is the per-run NetResult.
type Network struct {
	// Params is the gossip model Gossip(n, P, q) under execution.
	Params Params
	// Net configures the simulated network substrate (latency model, loss
	// model); the zero value is an ideal network.
	Net NetConfig
}

// Name implements Engine.
func (Network) Name() string { return "network" }

func (s Network) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, invalid(err)
	}
	if err := o.topology.Validate(s.Params.N); err != nil {
		return nil, invalid(err)
	}
	if !o.topology.IsUniform() && s.Params.View != nil {
		return nil, fmt.Errorf("%w: WithTopology conflicts with a caller-set Params.View", ErrInvalidParams)
	}

	// execute runs one replication on the selected runtime: the
	// single-kernel executor by default, the conservative-PDES sharded
	// kernel under WithShards (>1). Shards=1 keeps the single-kernel path
	// — the two are byte-identical, and the oracle needs no shard arena.
	// A non-uniform WithTopology overlay is generated per replication from
	// a non-consuming split of the run's stream, so the uniform spec stays
	// byte-identical to not setting the option and the overlay is the same
	// for every shard count.
	execute := func(r *xrand.RNG, arena *core.NetArena, probe *obs.Probe) (core.NetResult, error) {
		p := s.Params
		if ov, err := o.topology.Build(p.N, r.Split(topology.Split)); err != nil {
			return core.NetResult{}, err
		} else if ov != nil {
			p.View = ov
		}
		if o.shards > 1 {
			return core.ExecuteOnNetworkSharded(p, s.Net, r, nil, arena.Sharded(o.shards), probe,
				core.ShardOptions{Shards: o.shards, Progress: shardProgress(o)})
		}
		return core.ExecuteOnNetworkProbed(p, s.Net, r, nil, arena, probe)
	}

	if o.rng != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var probe *obs.Probe
		if o.probe != nil {
			probe = obs.New(*o.probe)
		}
		res, err := execute(o.rng, o.arena, probe)
		if err != nil {
			return nil, err
		}
		emit(netReport(res, probe.Metrics()))
		return nil, nil
	}

	root := xrand.New(o.seed)
	workers := runpool.Count(o.workers, o.runs)
	arenas := make([]*core.NetArena, workers)
	// One pooled probe per worker, mirroring the arenas; each run's
	// telemetry is snapshotted on the worker (Metrics deep-copies) before
	// the probe is re-Attached to the next run.
	probes := make([]*obs.Probe, workers)
	type probedResult struct {
		res     core.NetResult
		metrics *obs.Metrics
	}
	err := runpool.RunOrdered(ctx, o.runs, workers,
		func(w, run int) (probedResult, error) {
			if arenas[w] == nil {
				arenas[w] = core.NewNetArena()
			}
			if o.probe != nil && probes[w] == nil {
				probes[w] = obs.New(*o.probe)
			}
			res, err := execute(root.Split(uint64(run)), arenas[w], probes[w])
			return probedResult{res, probes[w].Metrics()}, err
		}, func(run int, r probedResult) { emit(netReport(r.res, r.metrics)) })
	if err != nil {
		return nil, err
	}
	return nil, nil
}

// shardProgress adapts the facade's WithShardProgress callback onto the
// sharded executor's barrier hook; nil when no observer is set.
func shardProgress(o *runOptions) func(events uint64, now sim.Time) {
	if o.shardProgress == nil {
		return nil
	}
	fn := o.shardProgress
	return func(events uint64, now sim.Time) { fn(events, now.Duration()) }
}

func netReport(res NetResult, m *obs.Metrics) Report {
	return Report{
		Reliability:  res.Reliability,
		Delivered:    res.Delivered,
		AliveCount:   res.AliveCount,
		MessagesSent: res.MessagesSent,
		SpreadMs:     float64(res.SpreadTime) / float64(time.Millisecond),
		Metrics:      m,
		Detail:       res,
	}
}
