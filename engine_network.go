package gossipkit

import (
	"context"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/runpool"
	"gossipkit/internal/xrand"
)

// Network is the engine for event-driven executions over the simulated
// network: each replication runs the gossiping algorithm with per-message
// latency, loss, and partitions, reporting timing alongside delivery.
//
// Replications recycle one run-state arena per worker internally (kernel
// queue, network buffers, receive flags), so large-n sweeps make zero
// O(n)-sized allocations after warm-up — arena management is no longer the
// caller's job. Report.Detail is the per-run NetResult.
type Network struct {
	// Params is the gossip model Gossip(n, P, q) under execution.
	Params Params
	// Net configures the simulated network substrate (latency model, loss
	// model); the zero value is an ideal network.
	Net NetConfig
}

// Name implements Engine.
func (Network) Name() string { return "network" }

func (s Network) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, invalid(err)
	}

	if o.rng != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := core.ExecuteOnNetworkArena(s.Params, s.Net, o.rng, nil, o.arena)
		if err != nil {
			return nil, err
		}
		emit(netReport(res))
		return nil, nil
	}

	root := xrand.New(o.seed)
	workers := runpool.Count(o.workers, o.runs)
	arenas := make([]*core.NetArena, workers)
	err := runpool.RunOrdered(ctx, o.runs, workers,
		func(w, run int) (core.NetResult, error) {
			if arenas[w] == nil {
				arenas[w] = core.NewNetArena()
			}
			return core.ExecuteOnNetworkArena(s.Params, s.Net, root.Split(uint64(run)), nil, arenas[w])
		}, func(run int, res core.NetResult) { emit(netReport(res)) })
	if err != nil {
		return nil, err
	}
	return nil, nil
}

func netReport(res NetResult) Report {
	return Report{
		Reliability:  res.Reliability,
		Delivered:    res.Delivered,
		AliveCount:   res.AliveCount,
		MessagesSent: res.MessagesSent,
		SpreadMs:     float64(res.SpreadTime) / float64(time.Millisecond),
		Detail:       res,
	}
}
