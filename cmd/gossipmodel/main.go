// Command gossipmodel evaluates the paper's analytic fault-tolerance model
// without any simulation: critical points (Eq. 10), reliability S(z, q)
// (Eq. 11), design fanouts (Eq. 12), and required executions (Eq. 6) — all
// through the Analytic engine of the unified gossipkit.Run API.
//
// Usage:
//
//	gossipmodel reliability -fanout 4.0 -q 0.9
//	gossipmodel design -target 0.999 -q 0.8
//	gossipmodel table -q 0.2,0.4,0.6,0.8,1.0
//	gossipmodel executions -fanout 4.0 -q 0.9 -success 0.999
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gossipkit"
)

// modelN is the nominal group size handed to the Analytic engine: the
// generating-function model is size-free (Eq. 11 depends only on P and q),
// so any valid n evaluates the same curve.
const modelN = 1000

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "reliability":
		err = cmdReliability(args)
	case "design":
		err = cmdDesign(args)
	case "table":
		err = cmdTable(args)
	case "executions":
		err = cmdExecutions(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gossipmodel:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gossipmodel <command> [flags]

commands:
  reliability  -fanout Z -q Q           reliability S solving Eq. 11
  design       -target S -q Q           mean fanout z from Eq. 12
  table        -q Q1,Q2,...             z-vs-S design table (paper Fig. 2)
  executions   -fanout Z -q Q -success P  minimum executions t from Eq. 6`)
}

// predict evaluates Eq. 11 for Poisson mean fanout z at nonfailed ratio q
// via the Analytic engine. z is flag input, so it goes through ParseFanout
// rather than gossipkit.Poisson, which panics on invalid means.
func predict(z, q float64) (gossipkit.Prediction, error) {
	f, err := gossipkit.ParseFanout("poisson", z)
	if err != nil {
		return gossipkit.Prediction{}, err
	}
	out, err := gossipkit.Run(context.Background(), gossipkit.Analytic{
		Params: gossipkit.Params{N: modelN, Fanout: f, AliveRatio: q},
	})
	if err != nil {
		return gossipkit.Prediction{}, err
	}
	return out.Aggregate.(gossipkit.Prediction), nil
}

// pprofFlag registers -pprof on a subcommand's FlagSet; the returned
// starter runs after parsing and brings the endpoint up when set.
func pprofFlag(fs *flag.FlagSet) func() error {
	addr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	return func() error {
		if *addr == "" {
			return nil
		}
		bound, err := gossipkit.StartPprof(*addr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "gossipmodel: pprof on http://%s/debug/pprof/\n", bound)
		return nil
	}
}

func cmdReliability(args []string) error {
	fs := flag.NewFlagSet("reliability", flag.ExitOnError)
	fanout := fs.Float64("fanout", 4.0, "mean fanout z")
	q := fs.Float64("q", 0.9, "nonfailed member ratio")
	pprof := pprofFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := pprof(); err != nil {
		return err
	}
	pred, err := predict(*fanout, *q)
	if err != nil {
		return err
	}
	fmt.Printf("S(z=%.3f, q=%.3f) = %.6f    q_c = 1/z = %.4f\n", *fanout, *q, pred.Reliability, pred.CriticalRatio)
	if pred.Reliability == 0 {
		fmt.Println("subcritical: q <= 1/z, reliability collapses (Eq. 10)")
	}
	return nil
}

func cmdDesign(args []string) error {
	fs := flag.NewFlagSet("design", flag.ExitOnError)
	target := fs.Float64("target", 0.999, "required reliability S")
	q := fs.Float64("q", 0.9, "nonfailed member ratio")
	pprof := pprofFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := pprof(); err != nil {
		return err
	}
	z, err := gossipkit.FanoutForReliability(*target, *q)
	if err != nil {
		return err
	}
	fmt.Printf("mean fanout z for S=%.4f at q=%.3f: %.4f   (Eq. 12; requires q > 1/z = %.4f)\n",
		*target, *q, z, 1/z)
	return nil
}

func cmdTable(args []string) error {
	fs := flag.NewFlagSet("table", flag.ExitOnError)
	qlist := fs.String("q", "0.2,0.4,0.6,0.8,1.0", "comma-separated q values")
	pprof := pprofFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := pprof(); err != nil {
		return err
	}
	var qs []float64
	for _, tok := range strings.Split(*qlist, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return fmt.Errorf("bad q value %q: %w", tok, err)
		}
		qs = append(qs, v)
	}
	fmt.Printf("%-8s", "S")
	for _, q := range qs {
		fmt.Printf("  z(q=%.1f)", q)
	}
	fmt.Println()
	for _, s := range []float64{0.1111, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999} {
		fmt.Printf("%-8.4f", s)
		for _, q := range qs {
			z, err := gossipkit.FanoutForReliability(s, q)
			if err != nil {
				return err
			}
			fmt.Printf("  %8.3f", z)
		}
		fmt.Println()
	}
	return nil
}

func cmdExecutions(args []string) error {
	fs := flag.NewFlagSet("executions", flag.ExitOnError)
	fanout := fs.Float64("fanout", 4.0, "mean fanout z")
	q := fs.Float64("q", 0.9, "nonfailed member ratio")
	success := fs.Float64("success", 0.999, "required success probability p_s")
	pprof := pprofFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := pprof(); err != nil {
		return err
	}
	pred, err := predict(*fanout, *q)
	if err != nil {
		return err
	}
	if pred.Reliability == 0 {
		return fmt.Errorf("subcritical configuration (q <= 1/z): no number of executions suffices")
	}
	p := gossipkit.Params{N: modelN, Fanout: gossipkit.Poisson(*fanout), AliveRatio: *q}
	t, err := gossipkit.ExecutionsForSuccess(p, *success)
	if err != nil {
		return err
	}
	fmt.Printf("per-execution reliability S = %.4f\n", pred.Reliability)
	fmt.Printf("minimum executions for p_s=%.4f: t = %d   (Eq. 6)\n", *success, t)
	fmt.Printf("achieved: 1-(1-S)^t = %.6f\n", gossipkit.SuccessAfter(pred.Reliability, t))
	return nil
}
