// Command gossipd runs a real TCP gossip node implementing the paper's
// general gossiping algorithm over the wire protocol in internal/wire.
//
// Start a seed node, then more nodes joining it, then publish from any of
// them (three terminals):
//
//	gossipd -listen 127.0.0.1:7001
//	gossipd -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//	gossipd -listen 127.0.0.1:7003 -join 127.0.0.1:7001 -publish "hello" -linger 2s
//
// Every node prints each multicast it delivers exactly once.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"gossipkit"
	"gossipkit/internal/gossipnode"
	"gossipkit/internal/wire"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		join    = flag.String("join", "", "existing member to join through")
		fanout  = flag.Float64("fanout", 4.0, "mean gossip fanout (Poisson)")
		seed    = flag.Uint64("seed", uint64(time.Now().UnixNano()), "random seed")
		publish = flag.String("publish", "", "publish this payload after joining")
		linger  = flag.Duration("linger", 0, "exit after this duration (0 = run until interrupted)")
		pprof   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *pprof != "" {
		addr, err := gossipkit.StartPprof(*pprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gossipd:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "gossipd: pprof on http://%s/debug/pprof/\n", addr)
	}
	// -fanout is user input: ParseFanout errors cleanly where the
	// gossipkit.Poisson constructor would panic.
	fanoutDist, err := gossipkit.ParseFanout("poisson", *fanout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gossipd:", err)
		os.Exit(2)
	}

	node, err := gossipnode.Start(gossipnode.Config{
		ListenAddr: *listen,
		Fanout:     fanoutDist,
		Seed:       *seed,
		Deliver: func(g wire.Gossip) {
			fmt.Printf("[%s] deliver msg %016x from %s (%d hops): %q\n",
				time.Now().Format("15:04:05.000"), g.MsgID, g.Origin, g.Hops, g.Payload)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gossipd:", err)
		os.Exit(1)
	}
	defer node.Close()
	fmt.Printf("gossipd listening on %s (fanout Po(%.1f))\n", node.Addr(), *fanout)
	// The analytic engine prices this fanout before any traffic flows:
	// per-multicast delivery probability if up to 10% of peers are down.
	if out, err := gossipkit.Run(context.Background(), gossipkit.Analytic{
		Params: gossipkit.Params{N: 1000, Fanout: fanoutDist, AliveRatio: 0.9},
	}); err == nil {
		pred := out.Aggregate.(gossipkit.Prediction)
		fmt.Printf("model: delivery %.4f at q=0.9, collapse below q_c=%.2f (Eq. 10/11)\n",
			pred.Reliability, pred.CriticalRatio)
	}

	if *join != "" {
		if err := node.Join(*join); err != nil {
			fmt.Fprintln(os.Stderr, "gossipd:", err)
			os.Exit(1)
		}
		fmt.Printf("joined via %s; view: %v\n", *join, node.Peers())
	}
	if *publish != "" {
		if err := node.Publish([]byte(*publish)); err != nil {
			fmt.Fprintln(os.Stderr, "gossipd:", err)
			os.Exit(1)
		}
	}

	if *linger > 0 {
		time.Sleep(*linger)
		d, f, dup := node.Stats()
		fmt.Printf("exiting: delivered=%d forwarded=%d duplicates=%d\n", d, f, dup)
		return
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	d, f, dup := node.Stats()
	fmt.Printf("\ninterrupted: delivered=%d forwarded=%d duplicates=%d\n", d, f, dup)
}
