// Command experiments regenerates every figure of the paper (Figs. 2–7)
// plus the ablation studies in DESIGN.md, writing CSVs and ASCII charts.
//
// Usage:
//
//	experiments -list
//	experiments -run fig4a -out results
//	experiments -all -scale 1.0 -out results
//	experiments -all -scale 0.2        # quick pass, reduced replications
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"gossipkit/internal/experiment"
	"gossipkit/internal/obs"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		runID  = flag.String("run", "", "run a single experiment by id")
		all    = flag.Bool("all", false, "run every experiment")
		out    = flag.String("out", "results", "output directory for CSVs and charts")
		seed   = flag.Uint64("seed", 2008, "random seed")
		scale  = flag.Float64("scale", 1.0, "replication scale (1.0 = paper's counts)")
		width  = flag.Int("width", 72, "ASCII chart width")
		height = flag.Int("height", 20, "ASCII chart height")
		pprof  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *pprof != "" {
		addr, err := obs.StartPprof(*pprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "experiments: pprof on http://%s/debug/pprof/\n", addr)
	}

	if *list {
		for _, e := range experiment.All() {
			fmt.Printf("%-24s %-14s %s\n", e.ID, e.Paper, e.Description)
		}
		return
	}
	// Interrupt (Ctrl-C) cancels the sweep worker pools mid-figure.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := experiment.Config{Seed: *seed, Scale: *scale, Ctx: ctx}
	var ids []string
	switch {
	case *runID != "":
		ids = []string{*runID}
	case *all:
		for _, e := range experiment.All() {
			ids = append(ids, e.ID)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	for _, id := range ids {
		e, err := experiment.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		start := time.Now()
		fig, err := e.Run(cfg)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "experiments: interrupted")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		csvPath := filepath.Join(*out, id+".csv")
		if err := os.WriteFile(csvPath, []byte(fig.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		ascii := fig.ASCII(*width, *height)
		txtPath := filepath.Join(*out, id+".txt")
		if err := os.WriteFile(txtPath, []byte(ascii), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%s, %v) -> %s\n%s\n", id, e.Paper, elapsed, csvPath, ascii)
	}
}
