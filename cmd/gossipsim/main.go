// Command gossipsim runs the paper's general gossiping algorithm for one
// parameter set and reports measured vs predicted reliability.
//
// Usage:
//
//	gossipsim -n 1000 -fanout 4.0 -q 0.9 -runs 20 -seed 42
//	gossipsim -n 2000 -dist fixed -fanout 4 -q 0.8
//	gossipsim -n 1000 -fanout 4.0 -q 0.9 -latency 5ms -loss 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gossipkit"
)

func main() {
	var (
		n       = flag.Int("n", 1000, "group size")
		distKin = flag.String("dist", "poisson", "fanout distribution: poisson, fixed, geometric, uniform")
		fanout  = flag.Float64("fanout", 4.0, "mean fanout (poisson/geometric) or exact fanout (fixed) or hi bound (uniform, lo=1)")
		q       = flag.Float64("q", 0.9, "nonfailed member ratio")
		runs    = flag.Int("runs", 20, "Monte-Carlo executions")
		seed    = flag.Uint64("seed", 42, "random seed")
		latency = flag.Duration("latency", 0, "run one execution on the simulated network with this constant latency")
		loss    = flag.Float64("loss", 0, "message loss probability for the network execution")
	)
	flag.Parse()
	if err := run(*n, *distKin, *fanout, *q, *runs, *seed, *latency, *loss); err != nil {
		fmt.Fprintln(os.Stderr, "gossipsim:", err)
		os.Exit(1)
	}
}

func run(n int, distKind string, fanout, q float64, runs int, seed uint64, latency time.Duration, loss float64) error {
	var d gossipkit.Distribution
	switch distKind {
	case "poisson":
		d = gossipkit.Poisson(fanout)
	case "fixed":
		d = gossipkit.FixedFanout(int(fanout))
	case "geometric":
		// Mean (1-p)/p = fanout → p = 1/(1+fanout).
		d = gossipkit.GeometricFanout(1 / (1 + fanout))
	case "uniform":
		d = gossipkit.UniformFanout(1, int(fanout))
	default:
		return fmt.Errorf("unknown distribution %q", distKind)
	}
	p := gossipkit.Params{N: n, Fanout: d, AliveRatio: q}

	pred, err := gossipkit.Predict(p)
	if err != nil {
		return err
	}
	fmt.Printf("Gossip(n=%d, P=%s, q=%.3f)\n", n, d.Name(), q)
	fmt.Printf("  critical ratio q_c        : %.4f (q %s q_c)\n",
		pred.CriticalRatio, map[bool]string{true: ">", false: "<="}[pred.Supercritical])
	fmt.Printf("  model reliability R(q,P)  : %.4f\n", pred.Reliability)

	giant, err := gossipkit.MeasureGiantComponent(p, runs, seed)
	if err != nil {
		return err
	}
	fmt.Printf("  giant component (sim)     : %.4f ± %.4f  [%d runs, paper's metric]\n",
		giant.Mean, giant.CI95, giant.Runs)
	est, err := gossipkit.MeasureReliability(p, runs, seed+1)
	if err != nil {
		return err
	}
	fmt.Printf("  directed reach (sim)      : %.4f ± %.4f  [one multicast's delivery]\n", est.Mean, est.CI95)
	fmt.Printf("  messages/run              : %.0f   rounds/run: %.1f\n", est.MeanMessages, est.MeanRounds)

	if tmin, err := gossipkit.ExecutionsForSuccess(p, 0.999); err == nil {
		fmt.Printf("  executions for 99.9%% group success (Eq. 6): %d\n", tmin)
	}

	if latency > 0 || loss > 0 {
		cfg := gossipkit.NetConfig{}
		if latency > 0 {
			cfg.Latency = gossipkit.ConstantLatency(latency)
		}
		if loss > 0 {
			cfg.Loss = gossipkit.BernoulliLoss(loss)
		}
		nres, err := gossipkit.ExecuteOnNetwork(p, cfg, gossipkit.NewRNG(seed+2))
		if err != nil {
			return err
		}
		fmt.Printf("  network execution         : reliability %.4f, spread time %v, sent %d, lost %d\n",
			nres.Reliability, nres.SpreadTime, nres.Net.Sent, nres.Net.DroppedLoss)
	}
	return nil
}
