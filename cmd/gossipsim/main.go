// Command gossipsim runs the paper's general gossiping algorithm for one
// parameter set and reports measured vs predicted reliability, entirely on
// the unified gossipkit.Run engine API.
//
// Usage:
//
//	gossipsim -n 1000 -fanout 4.0 -q 0.9 -runs 20 -seed 42
//	gossipsim -n 2000 -dist fixed -fanout 4 -q 0.8
//	gossipsim -n 1000 -fanout 4.0 -q 0.9 -latency 5ms -loss 0.05
//	gossipsim -n 5000 -runs 200 -progress    # per-run progress on stderr
//	gossipsim -latency 5ms -metrics          # π(t)/in-flight curve CSV on stdout
//	gossipsim -latency 5ms -trace out.json   # Chrome trace of the network run
//	gossipsim -pprof localhost:6060 ...      # live net/http/pprof endpoint
//	gossipsim -n 10000000 -latency 5ms -shards 0 -progress   # sharded kernel, one shard per core
//	gossipsim -n 10000 -topology kout:8          # gossip over a k-out overlay
//	gossipsim -n 10000 -topology wan:4           # 4 WAN zones + zone-pair latency matrix
//
// Interrupt (Ctrl-C) cancels in-flight sweeps cleanly via context.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"gossipkit"
	"gossipkit/internal/runpool"
)

func main() {
	var (
		n        = flag.Int("n", 1000, "group size")
		distKin  = flag.String("dist", "poisson", "fanout distribution: poisson, fixed, geometric, uniform")
		fanout   = flag.Float64("fanout", 4.0, "mean fanout (poisson/geometric) or exact fanout (fixed) or hi bound (uniform, lo=1)")
		q        = flag.Float64("q", 0.9, "nonfailed member ratio")
		runs     = flag.Int("runs", 20, "Monte-Carlo executions")
		seed     = flag.Uint64("seed", 42, "random seed")
		latency  = flag.Duration("latency", 0, "run one execution on the simulated network with this constant latency")
		loss     = flag.Float64("loss", 0, "message loss probability for the network execution")
		progress = flag.Bool("progress", false, "stream per-run progress to stderr")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		metrics  = flag.Bool("metrics", false, "probe the network execution and print its virtual-time curve CSV")
		trace    = flag.String("trace", "", "write a Chrome trace of the network execution to this file")
		shards   = flag.Int("shards", 1, "shard kernels for the network execution (conservative-PDES; 1 = single kernel, 0 = one per core)")
		topoFlag = flag.String("topology", "uniform", "gossip overlay: uniform, kout[:K], ba[:K], wan:ZONES[:K]")
	)
	flag.Parse()
	topo, err := gossipkit.ParseTopology(*topoFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gossipsim:", err)
		os.Exit(1)
	}
	if *pprof != "" {
		addr, err := gossipkit.StartPprof(*pprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gossipsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gossipsim: pprof on http://%s/debug/pprof/\n", addr)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *n, *distKin, *fanout, *q, *runs, *seed, *latency, *loss, *progress, *metrics, *trace, *shards, topo); err != nil {
		if errors.Is(err, gossipkit.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "gossipsim: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "gossipsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, n int, distKind string, fanout, q float64, runs int, seed uint64, latency time.Duration, loss float64, progress, metrics bool, trace string, shards int, topo gossipkit.Topology) error {
	d, err := gossipkit.ParseFanout(distKind, fanout)
	if err != nil {
		return err
	}
	p := gossipkit.Params{N: n, Fanout: d, AliveRatio: q}
	var observe gossipkit.Observer
	if progress {
		observe = func(r gossipkit.Report) {
			fmt.Fprintf(os.Stderr, "  [%s] run %d/%d reliability %.4f\n", r.Engine, r.Run+1, runs, r.Reliability)
		}
	}

	an, err := gossipkit.Run(ctx, gossipkit.Analytic{Params: p})
	if err != nil {
		return err
	}
	pred := an.Aggregate.(gossipkit.Prediction)
	fmt.Printf("Gossip(n=%d, P=%s, q=%.3f)\n", n, d.Name(), q)
	if !topo.IsUniform() {
		fmt.Printf("  overlay topology          : %s (giant component below is the topology-corrected prediction)\n", topo)
	}
	fmt.Printf("  critical ratio q_c        : %.4f (q %s q_c)\n",
		pred.CriticalRatio, map[bool]string{true: ">", false: "<="}[pred.Supercritical])
	fmt.Printf("  model reliability R(q,P)  : %.4f\n", pred.Reliability)

	giantOut, err := gossipkit.RunMany(ctx, gossipkit.MonteCarlo{Params: p, Metric: gossipkit.GiantComponent},
		runs, gossipkit.WithSeed(seed), gossipkit.WithObserver(observe), gossipkit.WithTopology(topo))
	if err != nil {
		return err
	}
	giant := giantOut.Aggregate.(gossipkit.ComponentEstimate)
	fmt.Printf("  giant component (sim)     : %.4f ± %.4f  [%d runs, paper's metric]\n",
		giant.Mean, giant.CI95, giant.Runs)

	reachOut, err := gossipkit.RunMany(ctx, gossipkit.MonteCarlo{Params: p, Metric: gossipkit.SourceReach},
		runs, gossipkit.WithSeed(seed+1), gossipkit.WithObserver(observe), gossipkit.WithTopology(topo))
	if err != nil {
		return err
	}
	est := reachOut.Aggregate.(gossipkit.Estimate)
	fmt.Printf("  directed reach (sim)      : %.4f ± %.4f  [one multicast's delivery]\n", est.Mean, est.CI95)
	fmt.Printf("  messages/run              : %.0f   rounds/run: %.1f\n", est.MeanMessages, est.MeanRounds)

	if tmin, err := gossipkit.ExecutionsForSuccess(p, 0.999); err == nil {
		fmt.Printf("  executions for 99.9%% group success (Eq. 6): %d\n", tmin)
	}

	if latency > 0 || loss > 0 || metrics || trace != "" || shards != 1 || !topo.IsUniform() {
		cfg := gossipkit.NetConfig{}
		if latency > 0 {
			cfg.Latency = gossipkit.ConstantLatency(latency)
		} else if topo.Kind == gossipkit.TopologyWAN {
			cfg.Latency = gossipkit.WANLatency(n, topo.Zones, time.Millisecond, 10*time.Millisecond)
		}
		if loss > 0 {
			cfg.Loss = gossipkit.BernoulliLoss(loss)
		}
		// WithRNG keeps this on the exact stream the pre-engine CLI used
		// (xrand.New(seed+2) consumed directly), so output stays diffable
		// across releases; the probe observes without touching that stream.
		opts := []gossipkit.Option{gossipkit.WithRNG(gossipkit.NewRNG(seed + 2)), gossipkit.WithTopology(topo)}
		if shards != 1 {
			opts = append(opts, gossipkit.WithShards(shards))
			if progress {
				// One long sharded execution is invisible to the per-run
				// observer until it finishes; stream barrier progress
				// (events fired, virtual time) instead.
				ep := runpool.NewEventProgress(int64(n)*int64(fanout+1), 0, runpool.EventWriter(os.Stderr))
				opts = append(opts, gossipkit.WithShardProgress(func(events uint64, now time.Duration) {
					ep.ObserveEvents(events, now)
				}))
			}
		}
		if metrics || trace != "" {
			po := gossipkit.ProbeOptions{}
			if trace != "" {
				po.TraceCapacity = 1 << 16
			}
			opts = append(opts, gossipkit.WithProbe(po))
		}
		out, err := gossipkit.Run(ctx, gossipkit.Network{Params: p, Net: cfg}, opts...)
		if err != nil {
			return err
		}
		nres := out.Reports[0].Detail.(gossipkit.NetResult)
		fmt.Printf("  network execution         : reliability %.4f, spread time %v, sent %d, lost %d\n",
			nres.Reliability, nres.SpreadTime, nres.Net.Sent, nres.Net.DroppedLoss)
		if metrics {
			if err := out.Metrics.WriteCurveCSV(os.Stdout, "network", true); err != nil {
				return err
			}
		}
		if trace != "" {
			f, err := os.Create(trace)
			if err != nil {
				return err
			}
			m := out.Reports[0].Metrics
			if err := gossipkit.WriteChromeTrace(f, m.Trace); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			if m.TraceDropped > 0 {
				fmt.Fprintf(os.Stderr, "gossipsim: trace ring dropped %d early events (capacity %d)\n", m.TraceDropped, 1<<16)
			}
		}
	}
	return nil
}
