// Command gossipstream sweeps a streaming gossip workload across offered
// publish rates and emits the saturation knee curve as CSV: per-message
// reliability, delivery-latency percentiles, and eviction-loss
// attribution at each rate. Below the knee bounded buffers absorb the
// load and reliability holds; above it eviction losses take over.
//
// Usage:
//
//	gossipstream -n 256 -rates 100:3200:6 -runs 5 > knee.csv
//	gossipstream -n 256 -rate 800 -eviction lpbcast -discipline push
//	gossipstream -rates 200,400,800,1600 -buffer 8 -curves curves.csv
//	gossipstream -n 1024 -rate 2000 -shards 0      # sharded kernel, one shard per core
//	gossipstream -n 512 -rate 500 -topology kout:8 # stream over a k-out overlay
//	gossipstream -n 2000 -rate 1.25e7 -duration 160ms -max-messages 2500000 \
//	    -batch -summary                            # 10⁶ concurrent rumors
//
// Interrupt (Ctrl-C) cancels a sweep cleanly via context.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"gossipkit"
)

const kneeHeader = "rate,runs,published,skipped,mean_reliability,reliability_stddev,min_reliability,full_frac,evicted,expired,dropped,messages_sent,p50_ms,p90_ms,p99_ms\n"

func main() {
	var (
		n          = flag.Int("n", 256, "group size")
		rate       = flag.Float64("rate", 0, "single offered rate in msgs/s (alternative to -rates)")
		rates      = flag.String("rates", "", "rate sweep: comma list (100,200,400) or LO:HI:STEPS (geometric)")
		duration   = flag.Duration("duration", 500*time.Millisecond, "publish window")
		distKind   = flag.String("dist", "fixed", "fanout distribution: poisson, fixed, geometric, uniform")
		fanout     = flag.Float64("fanout", 3, "mean fanout")
		q          = flag.Float64("q", 1, "nonfailed member ratio")
		buffer     = flag.Int("buffer", 16, "per-member rumor buffer capacity")
		eviction   = flag.String("eviction", "fifo", "buffer eviction policy: fifo, random, age, lpbcast")
		discipline = flag.String("discipline", "push", "propagation discipline: eager, push, pushpull, flood")
		active     = flag.Int("active", 8, "active window in round ticks")
		interval   = flag.Duration("interval", 0, "round interval (0 derives it from the latency bound)")
		sources    = flag.Int("sources", 0, "distinct publishers (0 = every member)")
		runs       = flag.Int("runs", 3, "seeded replications per rate")
		seed       = flag.Uint64("seed", 42, "random seed")
		latLo      = flag.Duration("latency-lo", time.Millisecond, "uniform latency lower bound")
		latHi      = flag.Duration("latency-hi", 5*time.Millisecond, "uniform latency upper bound")
		loss       = flag.Float64("loss", 0, "message loss probability")
		shards     = flag.Int("shards", 1, "shard kernels per execution (conservative-PDES; 1 = single kernel, 0 = one per core)")
		topoFlag   = flag.String("topology", "uniform", "gossip overlay: uniform, kout[:K], ba[:K], wan:ZONES[:K]")
		batch      = flag.Bool("batch", false, "batched wire digests: one event per round per peer (push/pushpull)")
		summary    = flag.Bool("summary", false, "summary-only accounting: skip the O(messages) per-message rows")
		maxMsgs    = flag.Int("max-messages", 0, "cap on scheduled messages per run (0 = engine default)")
		curves     = flag.String("curves", "", "write merged streaming telemetry curves (occupancy, active, evictions) to this CSV file")
		progress   = flag.Bool("progress", false, "stream per-run progress to stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, options{
		n: *n, rate: *rate, rates: *rates, duration: *duration,
		distKind: *distKind, fanout: *fanout, q: *q,
		buffer: *buffer, eviction: *eviction, discipline: *discipline,
		active: *active, interval: *interval, sources: *sources,
		runs: *runs, seed: *seed, latLo: *latLo, latHi: *latHi, loss: *loss,
		shards: *shards, topoFlag: *topoFlag, curves: *curves, progress: *progress,
		batch: *batch, summary: *summary, maxMsgs: *maxMsgs,
	}); err != nil {
		if errors.Is(err, gossipkit.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "gossipstream: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "gossipstream:", err)
		os.Exit(1)
	}
}

type options struct {
	n                    int
	rate                 float64
	rates                string
	duration             time.Duration
	distKind             string
	fanout, q            float64
	buffer               int
	eviction, discipline string
	active               int
	interval             time.Duration
	sources, runs        int
	seed                 uint64
	latLo, latHi         time.Duration
	loss                 float64
	shards               int
	topoFlag, curves     string
	progress             bool
	batch, summary       bool
	maxMsgs              int
}

func run(ctx context.Context, o options) error {
	d, err := gossipkit.ParseFanout(o.distKind, o.fanout)
	if err != nil {
		return err
	}
	ev, err := gossipkit.ParseEviction(o.eviction)
	if err != nil {
		return err
	}
	disc, err := gossipkit.ParseDiscipline(o.discipline)
	if err != nil {
		return err
	}
	topo, err := gossipkit.ParseTopology(o.topoFlag)
	if err != nil {
		return err
	}
	sweep, err := parseRates(o.rate, o.rates)
	if err != nil {
		return err
	}

	net := gossipkit.NetConfig{Latency: gossipkit.UniformLatency(o.latLo, o.latHi)}
	if o.loss > 0 {
		net.Loss = gossipkit.BernoulliLoss(o.loss)
	}

	var curvesFile *os.File
	if o.curves != "" {
		if curvesFile, err = os.Create(o.curves); err != nil {
			return err
		}
		defer curvesFile.Close()
	}

	fmt.Print(kneeHeader)
	for ri, rate := range sweep {
		cfg := gossipkit.StreamConfig{
			N: o.n, Rate: rate, Duration: o.duration,
			Sources: o.sources, Fanout: d, AliveRatio: o.q,
			BufferCap: o.buffer, Eviction: ev, Discipline: disc,
			ActiveRounds: o.active, RoundInterval: o.interval,
			MaxMessages: o.maxMsgs, Batch: o.batch, SummaryOnly: o.summary,
		}
		opts := []gossipkit.Option{
			gossipkit.WithSeed(o.seed), gossipkit.WithTopology(topo),
			gossipkit.WithProbe(gossipkit.ProbeOptions{}),
		}
		if o.shards != 1 {
			opts = append(opts, gossipkit.WithShards(o.shards))
		}
		if o.progress {
			opts = append(opts, gossipkit.WithObserver(func(r gossipkit.Report) {
				fmt.Fprintf(os.Stderr, "  rate %.0f run %d/%d reliability %.4f\n",
					rate, r.Run+1, o.runs, r.Reliability)
			}))
		}
		out, err := gossipkit.RunMany(ctx, gossipkit.Stream{Config: cfg, Net: net}, o.runs, opts...)
		if err != nil {
			return err
		}

		var published, skipped, full, minRel float64
		var evicted, expired, dropped, sent int64
		minRel = 1
		for _, rep := range out.Reports {
			res := rep.Detail.(gossipkit.StreamResult)
			published += float64(res.Published)
			skipped += float64(res.Skipped)
			full += float64(res.FullyDelivered)
			evicted += res.Ledger.Evicted
			expired += res.Ledger.Expired
			dropped += res.Ledger.Sends - res.Ledger.Receipts
			sent += res.MessagesSent
			if res.MinReliability < minRel {
				minRel = res.MinReliability
			}
		}
		runsF := float64(out.Runs)
		fullFrac := 0.0
		if published > 0 {
			fullFrac = full / published
		}
		lat := out.Stream.Latency
		fmt.Printf("%g,%d,%.1f,%.1f,%.6f,%.6f,%.6f,%.4f,%.1f,%.1f,%.1f,%.0f,%.3f,%.3f,%.3f\n",
			rate, out.Runs, published/runsF, skipped/runsF,
			out.Reliability.Mean, out.Reliability.StdDev, minRel, fullFrac,
			float64(evicted)/runsF, float64(expired)/runsF, float64(dropped)/runsF,
			float64(sent)/runsF,
			ms(lat.Quantile(0.50)), ms(lat.Quantile(0.90)), ms(lat.Quantile(0.99)))

		if curvesFile != nil {
			label := fmt.Sprintf("rate=%g", rate)
			if err := gossipkit.WriteStreamCurveCSV(curvesFile, out.Stream, label, ri == 0); err != nil {
				return err
			}
		}
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// parseRates resolves the sweep: a single -rate, a comma list, or a
// geometric LO:HI:STEPS ladder.
func parseRates(single float64, spec string) ([]float64, error) {
	if spec == "" {
		if single <= 0 {
			return nil, fmt.Errorf("need -rate or -rates")
		}
		return []float64{single}, nil
	}
	if strings.Contains(spec, ":") {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("rates spec %q: want LO:HI:STEPS", spec)
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		steps, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || lo <= 0 || hi < lo || steps < 1 {
			return nil, fmt.Errorf("rates spec %q: want LO:HI:STEPS with 0 < LO <= HI, STEPS >= 1", spec)
		}
		if steps == 1 {
			return []float64{lo}, nil
		}
		ladder := make([]float64, steps)
		ratio := hi / lo
		for i := range ladder {
			v := lo * math.Pow(ratio, float64(i)/float64(steps-1))
			ladder[i] = math.Round(v*1000) / 1000 // drop float-ladder noise
		}
		return ladder, nil
	}
	var rates []float64
	for _, f := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("rates spec %q: bad rate %q", spec, f)
		}
		rates = append(rates, v)
	}
	return rates, nil
}
