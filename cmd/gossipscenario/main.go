// Command gossipscenario runs declarative fault-injection campaigns over
// the gossip simulator and reports how delivery degrades against the
// paper's static-q model (Eq. 11). It drives the scenario engine through
// the unified gossipkit.Run API: sweeps are cancellable (Ctrl-C) and
// stream per-cell progress with -progress.
//
// Usage:
//
//	gossipscenario list
//	gossipscenario run -suite default -seed 42
//	gossipscenario run -scenario crash-wave -n 2000 -fanout 6 -format ascii
//	gossipscenario run -spec campaign.json -format csv
//	gossipscenario sweep -seeds 20 -workers 8 -format ascii
//	gossipscenario run -scenario crash-wave -curves csv    # sampled π(t)/in-flight series
//	gossipscenario grid -qs 0.6,0.8,1.0 -fanouts 3,5,8 -format csv
//	gossipscenario compare -scenarios crash-wave,burst-loss,partition-heal -seeds 5 -format ascii
//	gossipscenario run -scenario crash-wave -topology kout:8     # gossip over a k-out overlay
//	gossipscenario compare -topologies uniform,kout:8,wan:4 -seeds 5   # (protocol x scenario x topology) grid
//
// Every subcommand takes -pprof ADDR to serve net/http/pprof while it runs.
//
// Output on stdout is a pure function of the flags and seed (timing and
// throughput diagnostics go to stderr), so reports can be diffed and
// checked into regression suites.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gossipkit"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	switch os.Args[1] {
	case "list":
		err = list()
	case "run":
		err = run(ctx, os.Args[2:], false)
	case "sweep":
		err = run(ctx, os.Args[2:], true)
	case "grid":
		err = grid(ctx, os.Args[2:])
	case "compare":
		err = compare(ctx, os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, gossipkit.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "gossipscenario: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "gossipscenario:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  gossipscenario list                     show the bundled scenario suite
  gossipscenario run   [flags]            run each selected scenario, per-run reports
  gossipscenario sweep [flags]            replicate scenarios x seeds on a worker pool
  gossipscenario grid  [flags]            sweep the (scenario x q x fanout) grid, CSV/JSON
  gossipscenario compare [flags]          run campaigns against every protocol baseline

flags (run/sweep):
  -suite default        run the whole bundled suite (default when nothing else selected)
  -scenario NAME        run one bundled scenario
  -spec FILE.json       run a scenario loaded from a JSON spec
  -n INT                group size (default 1000)
  -dist NAME            fanout distribution: poisson, fixed, geometric, uniform (default poisson)
  -fanout FLOAT         mean/exact fanout (default 5)
  -q FLOAT              static nonfailed ratio composed with the campaign (default 1)
  -views INT            SCAMP partial-view extra copies; 0 = full view (default 2)
  -seed UINT            base random seed (default 42)
  -seeds INT            replications per scenario (default 1 for run, 10 for sweep)
  -workers INT          worker pool size; 0 = GOMAXPROCS (sweep/grid)
  -format FMT           json, csv, or ascii (default json; grid: csv or json)
  -progress             stream per-cell progress to stderr
  -pprof ADDR           serve net/http/pprof on ADDR while running (all subcommands)
  -curves FMT           also emit merged per-scenario telemetry curves; FMT: csv (run/sweep)
  -topology SPEC        gossip overlay: uniform, kout[:K], ba[:K], wan:ZONES[:K] (run/sweep)

flags (grid only):
  -qs LIST              comma-separated nonfailed ratios, e.g. 0.6,0.8,1.0
  -fanouts LIST         comma-separated mean fanouts, e.g. 3,5,8 (uses -dist)

flags (compare only):
  -scenarios LIST       comma-separated bundled scenario names (default: whole suite)
  -protocols LIST       comma-separated rows: paper, pbcast, lpbcast, anti-entropy,
                        rdg, lrg, flooding (default: all seven)
  -rounds INT           round budget for the round-based baselines (default 10)
  -topologies LIST      comma-separated overlays; non-empty grows the grid a
                        topology axis, e.g. uniform,kout:8,wan:4
`)
}

func list() error {
	for _, s := range gossipkit.DefaultScenarioSuite() {
		fmt.Printf("%-18s %2d steps  %s\n", s.Name, len(s.Steps), s.Description)
	}
	return nil
}

// pprofFlag registers -pprof on a subcommand's FlagSet; the returned
// starter runs after parsing and brings the endpoint up when set.
func pprofFlag(fs *flag.FlagSet) func() error {
	addr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	return func() error {
		if *addr == "" {
			return nil
		}
		bound, err := gossipkit.StartPprof(*addr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "gossipscenario: pprof on http://%s/debug/pprof/\n", bound)
		return nil
	}
}

// observer returns a per-cell progress Observer writing to stderr, or nil
// when progress streaming is off; cells sizes the "i/total" prefix.
func observer(enabled bool, cells int) gossipkit.Observer {
	if !enabled {
		return nil
	}
	return func(r gossipkit.Report) {
		det := r.Detail.(gossipkit.ScenarioReport)
		fmt.Fprintf(os.Stderr, "  cell %d/%d %-18s seed=%d reliability=%.4f spread=%.1fms\n",
			r.Run+1, cells, det.Scenario, det.Seed, r.Reliability, r.SpreadMs)
	}
}

func run(ctx context.Context, args []string, sweep bool) error {
	fs := flag.NewFlagSet("gossipscenario", flag.ExitOnError)
	var (
		suite    = fs.String("suite", "", "run the bundled suite (\"default\")")
		name     = fs.String("scenario", "", "run one bundled scenario by name")
		spec     = fs.String("spec", "", "run a scenario from a JSON spec file")
		n        = fs.Int("n", 1000, "group size")
		distKind = fs.String("dist", "poisson", "fanout distribution")
		fanout   = fs.Float64("fanout", 5, "mean fanout")
		q        = fs.Float64("q", 1, "static nonfailed ratio")
		views    = fs.Int("views", 2, "SCAMP partial-view extra copies (0 = full view)")
		seed     = fs.Uint64("seed", 42, "base random seed")
		seeds    = fs.Int("seeds", 0, "replications per scenario")
		workers  = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		format   = fs.String("format", "json", "output format: json, csv, ascii")
		progress = fs.Bool("progress", false, "stream per-cell progress to stderr")
		curves   = fs.String("curves", "", "also emit merged per-scenario telemetry curves: csv")
		shards   = fs.Int("shards", 1, "shard kernels per execution (conservative-PDES; 1 = single kernel, 0 = one per core)")
		topoFlag = fs.String("topology", "uniform", "gossip overlay: uniform, kout[:K], ba[:K], wan:ZONES[:K]")
	)
	pprof := pprofFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := pprof(); err != nil {
		return err
	}
	if *curves != "" && *curves != "csv" {
		return fmt.Errorf("unknown -curves format %q (only csv)", *curves)
	}
	if *seeds == 0 {
		if sweep {
			*seeds = 10
		} else {
			*seeds = 1
		}
	}

	scenarios, err := selectScenarios(*suite, *name, *spec)
	if err != nil {
		return err
	}
	d, err := makeDist(*distKind, *fanout)
	if err != nil {
		return err
	}
	topo, err := gossipkit.ParseTopology(*topoFlag)
	if err != nil {
		return err
	}
	if *shards <= 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	campaign := gossipkit.Campaign{
		Scenarios: scenarios,
		Config: gossipkit.ScenarioRunConfig{
			Params:            gossipkit.Params{N: *n, Fanout: d, AliveRatio: *q},
			PartialViewCopies: *views,
			Shards:            *shards,
			Topology:          topo,
		},
	}
	cells := len(scenarios) * *seeds

	opts := []gossipkit.Option{
		gossipkit.WithSeed(*seed), gossipkit.WithWorkers(*workers),
		gossipkit.WithObserver(observer(*progress, cells)),
	}
	if *curves != "" {
		opts = append(opts, gossipkit.WithProbe(gossipkit.ProbeOptions{}))
	}
	start := time.Now()
	out, err := gossipkit.RunMany(ctx, campaign, *seeds, opts...)
	if err != nil {
		return err
	}
	result := out.Aggregate.(*gossipkit.ScenarioSweepResult)
	elapsed := time.Since(start)
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "ran %d scenarios x %d seeds = %d executions in %v (%.1f runs/sec, %d workers)\n",
		len(scenarios), *seeds, cells, elapsed.Round(time.Millisecond),
		float64(cells)/elapsed.Seconds(), w)

	switch *format {
	case "json":
		enc, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(enc))
	case "csv":
		fmt.Print(result.CSV())
	case "ascii":
		fmt.Print(result.Table())
	default:
		return fmt.Errorf("unknown format %q (want json, csv, or ascii)", *format)
	}
	if *curves == "csv" {
		csv, err := result.CurvesCSV()
		if err != nil {
			return err
		}
		fmt.Print(csv)
	}
	return nil
}

// grid sweeps the (scenario × q × fanout) plane and emits the full grid.
func grid(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gossipscenario grid", flag.ExitOnError)
	var (
		suite    = fs.String("suite", "", "run the bundled suite (\"default\")")
		name     = fs.String("scenario", "", "run one bundled scenario by name")
		spec     = fs.String("spec", "", "run a scenario from a JSON spec file")
		n        = fs.Int("n", 1000, "group size")
		distKind = fs.String("dist", "poisson", "fanout distribution")
		qsFlag   = fs.String("qs", "0.6,0.8,1.0", "comma-separated nonfailed ratios")
		fanFlag  = fs.String("fanouts", "3,5,8", "comma-separated mean fanouts")
		views    = fs.Int("views", 2, "SCAMP partial-view extra copies (0 = full view)")
		seed     = fs.Uint64("seed", 42, "base random seed")
		seeds    = fs.Int("seeds", 5, "replications per grid cell")
		workers  = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		format   = fs.String("format", "csv", "output format: csv or json")
		progress = fs.Bool("progress", false, "stream per-cell progress to stderr")
	)
	pprof := pprofFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := pprof(); err != nil {
		return err
	}
	scenarios, err := selectScenarios(*suite, *name, *spec)
	if err != nil {
		return err
	}
	qs, err := parseFloats("-qs", *qsFlag)
	if err != nil {
		return err
	}
	fans, err := parseFloats("-fanouts", *fanFlag)
	if err != nil {
		return err
	}
	var fanouts []gossipkit.Distribution
	for _, f := range fans {
		d, err := makeDist(*distKind, f)
		if err != nil {
			return err
		}
		fanouts = append(fanouts, d)
	}
	d0, err := makeDist(*distKind, 5)
	if err != nil {
		return err
	}
	campaign := gossipkit.Campaign{
		Scenarios: scenarios,
		Config: gossipkit.ScenarioRunConfig{
			Params:            gossipkit.Params{N: *n, Fanout: d0, AliveRatio: 1},
			PartialViewCopies: *views,
		},
		Qs:      qs,
		Fanouts: fanouts,
	}
	cells := len(scenarios) * len(qs) * len(fanouts) * *seeds

	start := time.Now()
	out, err := gossipkit.RunMany(ctx, campaign, *seeds,
		gossipkit.WithSeed(*seed), gossipkit.WithWorkers(*workers),
		gossipkit.WithObserver(observer(*progress, cells)))
	if err != nil {
		return err
	}
	result := out.Aggregate.(*gossipkit.ScenarioGridResult)
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "ran %d scenarios x %d qs x %d fanouts x %d seeds = %d executions in %v (%.1f runs/sec)\n",
		len(scenarios), len(qs), len(fanouts), *seeds, cells,
		elapsed.Round(time.Millisecond), float64(cells)/elapsed.Seconds())

	switch *format {
	case "csv":
		fmt.Print(result.CSV())
	case "json":
		enc, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(enc))
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", *format)
	}
	return nil
}

// compare runs the (protocol × scenario) comparison grid: every selected
// campaign against every selected protocol row on the shared DES substrate,
// with byte-identical campaign randomness per (scenario, seed) cell
// whatever the protocol.
func compare(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gossipscenario compare", flag.ExitOnError)
	var (
		names     = fs.String("scenarios", "", "comma-separated bundled scenario names (default: whole suite)")
		protoList = fs.String("protocols", "", "comma-separated protocol rows (default: all seven)")
		n         = fs.Int("n", 1000, "group size")
		distKind  = fs.String("dist", "poisson", "fanout distribution (paper row)")
		fanout    = fs.Float64("fanout", 5, "mean fanout")
		q         = fs.Float64("q", 1, "static nonfailed ratio")
		rounds    = fs.Int("rounds", 10, "round budget for round-based baselines")
		views     = fs.Int("views", 2, "SCAMP partial-view extra copies (0 = full view)")
		seed      = fs.Uint64("seed", 42, "base random seed")
		seeds     = fs.Int("seeds", 5, "replications per (protocol, scenario) cell")
		workers   = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		format    = fs.String("format", "csv", "output format: csv, json, ascii")
		progress  = fs.Bool("progress", false, "stream per-cell progress to stderr")
		topoList  = fs.String("topologies", "", "comma-separated overlay topologies; non-empty grows a third grid axis (e.g. uniform,kout:8,wan:4)")
	)
	pprof := pprofFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := pprof(); err != nil {
		return err
	}
	scenarios, err := selectScenarioList(*names)
	if err != nil {
		return err
	}
	d, err := makeDist(*distKind, *fanout)
	if err != nil {
		return err
	}
	spec := gossipkit.Compare{
		Scenarios: scenarios,
		Config: gossipkit.ScenarioRunConfig{
			Params:            gossipkit.Params{N: *n, Fanout: d, AliveRatio: *q},
			PartialViewCopies: *views,
		},
	}
	if *topoList != "" {
		for _, t := range strings.Split(*topoList, ",") {
			topo, err := gossipkit.ParseTopology(strings.TrimSpace(t))
			if err != nil {
				return err
			}
			spec.Topologies = append(spec.Topologies, topo)
		}
	}
	rows := strings.Split("paper,pbcast,lpbcast,anti-entropy,rdg,lrg,flooding", ",")
	if *protoList != "" {
		rows = strings.Split(*protoList, ",")
	}
	// The baselines take an integer per-round fanout where the paper row
	// draws from a distribution of that mean; a fractional -fanout cannot
	// be honored exactly on the baseline rows, so round it and say so
	// rather than silently comparing protocols at different fanouts.
	baseFanout := int(math.Round(*fanout))
	if baseFanout < 1 {
		return fmt.Errorf("-fanout %g: baseline protocol rows need a fanout >= 1", *fanout)
	}
	if float64(baseFanout) != *fanout {
		fmt.Fprintf(os.Stderr, "note: baseline rows use integer fanout %d (paper row keeps mean %g)\n",
			baseFanout, *fanout)
	}
	for _, row := range rows {
		p, err := baselineSpec(strings.TrimSpace(row), *n, baseFanout, *rounds, *q, *views)
		if err != nil {
			return err
		}
		if p == nil {
			spec.Paper = true
			continue
		}
		spec.Protocols = append(spec.Protocols, p)
	}
	topos := max(len(spec.Topologies), 1)
	cells := topos * (len(spec.Protocols) + b2i(spec.Paper)) * len(scenarios) * *seeds

	start := time.Now()
	out, err := gossipkit.RunMany(ctx, spec, *seeds,
		gossipkit.WithSeed(*seed), gossipkit.WithWorkers(*workers),
		gossipkit.WithObserver(observer(*progress, cells)))
	if err != nil {
		return err
	}
	result := out.Aggregate.(*gossipkit.ScenarioCompareResult)
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "ran %d protocols x %d scenarios x %d topologies x %d seeds = %d executions in %v (%.1f runs/sec)\n",
		len(result.Protocols), len(scenarios), topos, *seeds, cells,
		elapsed.Round(time.Millisecond), float64(cells)/elapsed.Seconds())

	switch *format {
	case "csv":
		fmt.Print(result.CSV())
	case "json":
		enc, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(enc))
	case "ascii":
		fmt.Print(result.Table())
	default:
		return fmt.Errorf("unknown format %q (want csv, json, or ascii)", *format)
	}
	return nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// baselineSpec builds one comparison row's protocol parameters from the
// shared CLI knobs (fanout already validated >= 1); a nil spec with nil
// error means the paper row.
func baselineSpec(row string, n, fanout, rounds int, q float64, views int) (gossipkit.ProtocolSpec, error) {
	switch row {
	case "paper":
		return nil, nil
	case "pbcast":
		return gossipkit.PbcastParams{N: n, Fanout: fanout, Rounds: rounds, AliveRatio: q}, nil
	case "lpbcast":
		return gossipkit.LpbcastParams{N: n, Fanout: fanout, Rounds: rounds,
			BufferSize: 8, Events: 3, AliveRatio: q, ViewCopies: views}, nil
	case "anti-entropy":
		return gossipkit.AntiEntropyParams{N: n, Rounds: rounds, Mode: gossipkit.PushPull, AliveRatio: q}, nil
	case "rdg":
		return gossipkit.RDGParams{N: n, Fanout: fanout, PushRounds: rounds,
			RecoveryRounds: (rounds + 1) / 2, AliveRatio: q, ViewCopies: views, PayloadProb: 0.8}, nil
	case "lrg":
		return gossipkit.LRGParams{N: n, Degree: fanout + 2, GossipProb: 0.8,
			RepairRounds: (rounds + 1) / 2, AliveRatio: q}, nil
	case "flooding":
		return gossipkit.FloodingParams{N: n, AliveRatio: q}, nil
	default:
		return nil, fmt.Errorf("unknown protocol %q (want paper, pbcast, lpbcast, anti-entropy, rdg, lrg, or flooding)", row)
	}
}

// selectScenarioList resolves a comma-separated list of bundled scenario
// names; empty means the whole bundled suite.
func selectScenarioList(names string) ([]*gossipkit.Scenario, error) {
	if names == "" {
		return gossipkit.DefaultScenarioSuite(), nil
	}
	var out []*gossipkit.Scenario
	for _, name := range strings.Split(names, ",") {
		s, err := bundledScenario(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// bundledScenario resolves one bundled scenario name, failing with the
// list of known names.
func bundledScenario(name string) (*gossipkit.Scenario, error) {
	s, ok := gossipkit.ScenarioByName(name)
	if !ok {
		var known []string
		for _, b := range gossipkit.DefaultScenarioSuite() {
			known = append(known, b.Name)
		}
		return nil, fmt.Errorf("unknown scenario %q (bundled: %s)", name, strings.Join(known, ", "))
	}
	return s, nil
}

// parseFloats parses a comma-separated list of floats, rejecting any
// malformed entry outright.
func parseFloats(flagName, list string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s entry %q: %w", flagName, s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func selectScenarios(suite, name, spec string) ([]*gossipkit.Scenario, error) {
	selected := 0
	for _, s := range []string{suite, name, spec} {
		if s != "" {
			selected++
		}
	}
	if selected > 1 {
		return nil, fmt.Errorf("choose one of -suite, -scenario, -spec")
	}
	switch {
	case name != "":
		s, err := bundledScenario(name)
		if err != nil {
			return nil, err
		}
		return []*gossipkit.Scenario{s}, nil
	case spec != "":
		data, err := os.ReadFile(spec)
		if err != nil {
			return nil, err
		}
		s, err := gossipkit.ParseScenario(data)
		if err != nil {
			return nil, err
		}
		return []*gossipkit.Scenario{s}, nil
	case suite == "" || suite == "default":
		return gossipkit.DefaultScenarioSuite(), nil
	default:
		return nil, fmt.Errorf("unknown suite %q (only \"default\" is bundled)", suite)
	}
}

func makeDist(kind string, fanout float64) (gossipkit.Distribution, error) {
	return gossipkit.ParseFanout(kind, fanout)
}
