package gossipkit

import (
	"context"
	"fmt"

	"gossipkit/internal/scenario"
)

// Compare is the engine for the (protocol × scenario) comparison grid:
// every listed fault campaign runs against every listed protocol on the
// shared discrete-event substrate, so the related-work baselines and the
// paper's own algorithm face identical crash waves, loss episodes, and
// partitions — byte-identical campaign randomness per (scenario, seed)
// cell, whatever the protocol.
//
// Compare only has replication-sweep semantics: drive it with RunMany (or
// WithRuns), which replicates every cell for that many derived seeds.
// Outcome.Aggregate is the *ScenarioCompareResult — the full grid with
// per-cell moments and a CSV/Table rendering — and Report.Detail streams
// the per-run ScenarioReport in deterministic cell order, protocol-major.
type Compare struct {
	// Scenarios are the fault campaigns each protocol faces.
	Scenarios []*Scenario
	// Protocols are the baseline rows of the grid (PbcastParams,
	// LpbcastParams, AntiEntropyParams, RDGParams, LRGParams,
	// FloodingParams — any mix).
	Protocols []ProtocolSpec
	// Paper, when true, prepends the paper's own algorithm (configured by
	// Config.Params) as the first row, labeled "paper".
	Paper bool
	// Config parameterizes each execution: the network substrate every
	// protocol crosses and — for the paper row — the gossip model params.
	Config ScenarioRunConfig
	// Topologies, when non-empty, grows the grid a third axis: every
	// (protocol, scenario) pair runs once per listed overlay topology,
	// with identical per-cell seeds across topology rows so topology is
	// the only variable. Empty keeps the two-axis grid on
	// Config.Topology (byte-identical output to before the axis
	// existed).
	Topologies []Topology
}

// Name implements Engine.
func (Compare) Name() string { return "compare" }

func (s Compare) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	if len(s.Scenarios) == 0 {
		return nil, fmt.Errorf("%w: comparison has no scenarios", ErrInvalidParams)
	}
	if len(s.Protocols) == 0 && !s.Paper {
		return nil, fmt.Errorf("%w: comparison has no protocols (list baselines or set Paper)", ErrInvalidParams)
	}
	for _, sc := range s.Scenarios {
		if err := sc.Validate(); err != nil {
			return nil, invalid(err)
		}
	}
	for i, p := range s.Protocols {
		if p == nil {
			return nil, fmt.Errorf("%w: comparison protocol %d is nil", ErrInvalidParams, i)
		}
		if err := p.Validate(); err != nil {
			return nil, invalid(err)
		}
	}
	if o.rng != nil {
		return nil, fmt.Errorf("%w: the compare engine derives RNG streams from seeds; use WithSeed", ErrInvalidParams)
	}
	if o.probe != nil {
		// One merged curve has no meaning across protocol rows; probe a
		// single protocol's campaign sweep instead.
		return nil, fmt.Errorf("%w: WithProbe does not compose with the compare grid; probe one protocol's Campaign sweep at a time", ErrInvalidParams)
	}
	if !o.many {
		return nil, fmt.Errorf("%w: Compare is a grid sweep; use RunMany (or WithRuns) to set the seeds per cell", ErrInvalidParams)
	}
	if err := mergeTopology(&s.Config, o); err != nil {
		return nil, err
	}
	if len(s.Topologies) > 0 && !s.Config.Topology.IsUniform() {
		return nil, fmt.Errorf("%w: set either Compare.Topologies (grid axis) or Config.Topology (one overlay for every cell), not both", ErrInvalidParams)
	}
	if err := scenario.CheckShared(s.Config); err != nil {
		return nil, invalid(err)
	}

	var executors []ScenarioExecutor
	if s.Paper {
		if err := s.Config.Params.Validate(); err != nil {
			return nil, invalid(err)
		}
		executors = append(executors, scenario.PaperExecutor("paper"))
	}
	for _, p := range s.Protocols {
		executors = append(executors, scenario.NewProtocolExecutor(p))
	}

	cfg := scenario.CompareConfig{
		Run: s.Config, Executors: executors, Topologies: s.Topologies,
		Seeds: o.runs, BaseSeed: o.seed, Workers: o.workers,
	}
	res, err := scenario.CompareCtx(ctx, s.Scenarios, cfg,
		func(cell int, rep scenario.RunReport) { emit(scenarioReport(rep)) })
	if err != nil {
		return nil, err
	}
	return res, nil
}
