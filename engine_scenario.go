package gossipkit

import (
	"context"
	"fmt"

	"gossipkit/internal/obs"
	"gossipkit/internal/scenario"
)

// Campaign is the engine for declarative fault-injection campaigns over
// the discrete-event network: crash waves, zone failures, healing
// partitions, churn bursts, loss episodes, flash crowds (see NewScenario
// and DefaultScenarioSuite).
//
// A single Run executes one campaign (exactly one scenario, no grid axes)
// with the seed used exactly as given. RunMany replicates every scenario
// for `runs` derived seeds each — and, when Qs or Fanouts are set, across
// the whole (scenario × q × fanout) grid — on a worker pool with one
// run-state arena per worker. Outcome.Aggregate is then the
// *ScenarioSweepResult (no axes) or *ScenarioGridResult (with axes);
// Report.Detail is the per-run ScenarioReport, streamed in deterministic
// cell order.
type Campaign struct {
	// Scenarios are the campaigns to run.
	Scenarios []*Scenario
	// Config parameterizes each execution (model params, network
	// substrate, partial-view construction) and — via Config.Executor —
	// the protocol under the campaigns: nil runs the paper's algorithm,
	// BaselineExecutor(spec) runs a related-work baseline (Params are
	// then ignored, and the grid axes below are rejected; use Compare for
	// protocol grids).
	Config ScenarioRunConfig
	// Qs, when set, sweeps the nonfailed ratio across these values
	// (grid mode).
	Qs []float64
	// Fanouts, when set, sweeps the fanout distribution across these
	// (grid mode).
	Fanouts []Distribution
}

// Name implements Engine.
func (Campaign) Name() string { return "scenario" }

func (s Campaign) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	if len(s.Scenarios) == 0 {
		return nil, fmt.Errorf("%w: campaign has no scenarios", ErrInvalidParams)
	}
	for _, sc := range s.Scenarios {
		if err := sc.Validate(); err != nil {
			return nil, invalid(err)
		}
	}
	if s.Config.Executor == nil {
		// The paper path runs Config.Params; a protocol executor carries
		// its own parameters and ignores them.
		if err := s.Config.Params.Validate(); err != nil {
			return nil, invalid(err)
		}
	}
	if o.rng != nil {
		return nil, fmt.Errorf("%w: the scenario engine derives RNG streams from seeds; use WithSeed", ErrInvalidParams)
	}
	if err := mergeTopology(&s.Config, o); err != nil {
		return nil, err
	}
	for _, q := range s.Qs {
		if q < 0 || q > 1 || q != q {
			return nil, fmt.Errorf("%w: grid alive ratio %g outside [0,1]", ErrInvalidParams, q)
		}
	}
	for i, f := range s.Fanouts {
		if f == nil {
			return nil, fmt.Errorf("%w: grid fanout %d is nil", ErrInvalidParams, i)
		}
	}
	grid := len(s.Qs) > 0 || len(s.Fanouts) > 0
	if grid && o.probe != nil {
		// A merged curve per scenario has no meaning when the grid also
		// sweeps q and fanout axes — run the cells of interest as plain
		// sweeps instead.
		return nil, fmt.Errorf("%w: WithProbe does not compose with grid axes (Qs/Fanouts); probe each (q, fanout) cell as its own sweep", ErrInvalidParams)
	}
	if grid && s.Config.Executor != nil {
		// The grid axes override Params.AliveRatio/Fanout per cell, which
		// protocol executors ignore — the grid would report rows labeled
		// with different q/fanout values carrying identical results.
		return nil, fmt.Errorf("%w: grid axes (Qs/Fanouts) sweep the paper's Params, which a protocol executor ignores; use Compare for protocol grids", ErrInvalidParams)
	}

	if !o.many {
		if len(s.Scenarios) != 1 || grid {
			return nil, fmt.Errorf("%w: Run executes one campaign; use RunMany (or WithRuns) for scenario sweeps and grids", ErrInvalidParams)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg := s.Config
		if o.probe != nil {
			cfg.Probe = obs.New(*o.probe)
		}
		rep, err := scenario.Run(s.Scenarios[0], cfg, o.seed)
		if err != nil {
			return nil, err
		}
		emit(scenarioReport(rep))
		return nil, nil
	}

	if err := scenario.CheckShared(s.Config); err != nil {
		return nil, invalid(err)
	}
	observe := func(cell int, rep scenario.RunReport) { emit(scenarioReport(rep)) }
	if grid {
		cfg := ScenarioGridConfig{
			Run: s.Config, Qs: s.Qs, Fanouts: s.Fanouts,
			Seeds: o.runs, BaseSeed: o.seed, Workers: o.workers,
		}
		res, err := scenario.SweepGridCtx(ctx, s.Scenarios, cfg, observe)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	cfg := ScenarioSweepConfig{Run: s.Config, Seeds: o.runs, BaseSeed: o.seed, Workers: o.workers, Probe: o.probe}
	res, err := scenario.SweepCtx(ctx, s.Scenarios, cfg, observe)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func scenarioReport(rep ScenarioReport) Report {
	return Report{
		Reliability:  rep.Reliability,
		Delivered:    rep.Delivered,
		MessagesSent: rep.MessagesSent,
		SpreadMs:     rep.SpreadMs,
		Metrics:      rep.Metrics,
		Detail:       rep,
	}
}
