// Package gossipkit is a toolkit for building and analyzing gossip-based
// reliable multicast protocols under node failures. It reproduces, as a
// production-grade Go library, the system and the analytic model of:
//
//	Xiaopeng Fan, Jiannong Cao, Weigang Wu, Michel Raynal.
//	"On Modeling Fault Tolerance of Gossip-Based Reliable Multicast
//	Protocols." ICPP 2008.
//
// The package is a thin, stable facade over the internal packages; the
// examples under examples/ and the executables under cmd/ are built
// entirely on this surface.
//
// # Quick start
//
//	p := gossipkit.Params{
//		N:          1000,
//		Fanout:     gossipkit.Poisson(4.0), // fanout distribution P
//		AliveRatio: 0.9,                    // nonfailed member ratio q
//	}
//	pred, _ := gossipkit.Predict(p)              // analytic R(q, P), Eq. 11
//	est, _ := gossipkit.MeasureReliability(p, 20, 42) // 20 seeded runs
//	fmt.Printf("model %.3f, measured %.3f\n", pred.Reliability, est.Mean)
//
// # Choosing parameters
//
// Given a target reliability S and an expected failure level q, Eq. 12
// gives the Poisson mean fanout to provision:
//
//	z, _ := gossipkit.FanoutForReliability(0.999, 0.8)
//
// and Eq. 6 the number of repeated executions for a success target:
//
//	t, _ := gossipkit.ExecutionsForSuccess(p, 0.999)
package gossipkit

import (
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/genfunc"
	"gossipkit/internal/membership"
	"gossipkit/internal/scenario"
	"gossipkit/internal/simnet"
	"gossipkit/internal/xrand"
)

// Params configures the gossip model Gossip(n, P, q); see core.Params.
type Params = core.Params

// Result is the outcome of one gossip execution.
type Result = core.Result

// Estimate is a Monte-Carlo reliability estimate.
type Estimate = core.Estimate

// ComponentEstimate is a Monte-Carlo giant-component estimate (the paper's
// simulated reliability metric).
type ComponentEstimate = core.ComponentEstimate

// Prediction is the analytic model's output.
type Prediction = core.Prediction

// SuccessParams configures the repeated-execution success protocol.
type SuccessParams = core.SuccessParams

// SuccessOutcome aggregates success-protocol measurements.
type SuccessOutcome = core.SuccessOutcome

// Distribution is a discrete fanout distribution.
type Distribution = dist.Distribution

// RNG is the deterministic random number generator used throughout.
type RNG = xrand.RNG

// NewRNG returns a seeded deterministic generator.
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// Poisson returns the Poisson fanout distribution Po(z) of the paper's case
// study.
func Poisson(z float64) Distribution { return dist.NewPoisson(z) }

// FixedFanout returns the traditional fixed-fanout distribution.
func FixedFanout(k int) Distribution { return dist.NewFixed(k) }

// GeometricFanout returns the geometric fanout distribution on {0,1,...}
// with success probability p (mean (1−p)/p).
func GeometricFanout(p float64) Distribution { return dist.NewGeometric(p) }

// UniformFanout returns the uniform fanout distribution on {lo..hi}.
func UniformFanout(lo, hi int) Distribution { return dist.NewUniformRange(lo, hi) }

// NegBinomialFanout returns the overdispersed negative binomial fanout
// NB(r, p) on {0,1,...} (mean r(1−p)/p).
func NegBinomialFanout(r int, p float64) Distribution { return dist.NewNegBinomial(r, p) }

// AtLeastOnce conditions a fanout distribution on drawing at least one
// target, so no member ever stays silent.
func AtLeastOnce(d Distribution) Distribution { return dist.NewZeroTruncated(d) }

// Execute runs one execution of the general gossiping algorithm.
func Execute(p Params, r *RNG) (Result, error) { return core.ExecuteOnce(p, r) }

// MeasureReliability runs `runs` seeded executions in parallel and returns
// aggregate statistics of the directed source reach (what one multicast
// actually delivers).
func MeasureReliability(p Params, runs int, seed uint64) (Estimate, error) {
	return core.EstimateReliability(p, runs, seed)
}

// MeasureGiantComponent runs `runs` seeded executions and returns the giant
// out-component statistics — the paper's simulated reliability metric,
// which Eq. 11 predicts.
func MeasureGiantComponent(p Params, runs int, seed uint64) (ComponentEstimate, error) {
	return core.EstimateComponentReliability(p, runs, seed)
}

// Predict evaluates the analytic fault-tolerance model for p.
func Predict(p Params) (Prediction, error) { return core.Predict(p) }

// RunSuccess runs the repeated-execution success protocol (paper §5.2).
func RunSuccess(p SuccessParams, seed uint64) (SuccessOutcome, error) {
	return core.RunSuccess(p, seed)
}

// ExecutionsForSuccess returns the minimum number of executions t needed to
// reach the success probability target (paper Eq. 6), using the model's
// predicted per-execution reliability.
func ExecutionsForSuccess(p Params, target float64) (int, error) {
	return core.RequiredExecutions(p, target)
}

// FanoutForReliability returns the Poisson mean fanout z needed for
// reliability s at nonfailed ratio q (paper Eq. 12).
func FanoutForReliability(s, q float64) (float64, error) {
	return genfunc.PoissonMeanFanout(s, q)
}

// CriticalRatio returns q_c = 1/z for Poisson fanout (paper Eq. 10): below
// this nonfailed ratio, gossip reliability collapses.
func CriticalRatio(meanFanout float64) float64 {
	return genfunc.PoissonCriticalRatio(meanFanout)
}

// FullView returns complete membership knowledge over n members (the
// paper's assumption).
func FullView(n int) membership.View { return membership.NewFullView(n) }

// PartialViews builds SCAMP-style partial membership views (substrate for
// the paper's assumption that "a scalable membership protocol is
// available"). c is the number of extra subscription copies; views average
// (c+1)·ln(n) entries.
func PartialViews(n, c int, r *RNG) *membership.PartialViews {
	return membership.NewPartialViews(n, c, r)
}

// NetConfig configures the simulated network substrate for
// ExecuteOnNetwork.
type NetConfig = simnet.Config

// NetResult is a network-backed execution outcome.
type NetResult = core.NetResult

// ExecuteOnNetwork runs one execution as an event-driven protocol over the
// simulated network (latency, loss, partitions).
func ExecuteOnNetwork(p Params, cfg NetConfig, r *RNG) (NetResult, error) {
	return core.ExecuteOnNetwork(p, cfg, r)
}

// NetArena carries reusable run state (event queue, network buffers,
// receive flags) across network executions on one goroutine; pass it to
// ExecuteOnNetworkReusing inside Monte-Carlo loops to keep large-n runs
// free of per-run allocation churn.
type NetArena = core.NetArena

// NewNetArena returns an empty arena; buffers grow on first use.
func NewNetArena() *NetArena { return core.NewNetArena() }

// ExecuteOnNetworkReusing is ExecuteOnNetwork recycling arena's buffers.
// Results are byte-identical to ExecuteOnNetwork.
func ExecuteOnNetworkReusing(p Params, cfg NetConfig, r *RNG, arena *NetArena) (NetResult, error) {
	return core.ExecuteOnNetworkArena(p, cfg, r, nil, arena)
}

// ---------------------------------------------------------------------------
// Scenario engine: declarative time-varying fault campaigns

// Scenario is a named, timestamped fault-injection campaign applied to a
// running network execution (crash waves, zone failures, partitions that
// heal, churn bursts, loss episodes, flash crowds). Build one with
// NewScenario and the scenario action constructors, or parse a JSON spec
// with ParseScenario.
type Scenario = scenario.Scenario

// ScenarioAction is one fault-injection operation of a Scenario.
type ScenarioAction = scenario.Action

// ScenarioRunConfig parameterizes scenario executions.
type ScenarioRunConfig = scenario.RunConfig

// ScenarioReport is the outcome of one scenario execution, including the
// static-q (Eq. 11) and effective-q model comparisons.
type ScenarioReport = scenario.RunReport

// ScenarioSweepConfig parameterizes a parallel scenario × seed sweep.
type ScenarioSweepConfig = scenario.SweepConfig

// ScenarioSweepResult aggregates a scenario × seed sweep.
type ScenarioSweepResult = scenario.SweepResult

// NewScenario starts a fault-injection campaign for the builder API:
//
//	s := gossipkit.NewScenario("wave", "crash wave mid-spread").
//		At(5*time.Millisecond, gossipkit.CrashFraction(0.2))
func NewScenario(name, description string) *Scenario { return scenario.New(name, description) }

// ParseScenario decodes and validates a JSON scenario spec.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }

// DefaultScenarioSuite returns the bundled fault campaigns.
func DefaultScenarioSuite() []*Scenario { return scenario.DefaultSuite() }

// RunScenario executes one campaign over one gossip execution;
// deterministic in (cfg, s, seed).
func RunScenario(s *Scenario, cfg ScenarioRunConfig, seed uint64) (ScenarioReport, error) {
	return scenario.Run(s, cfg, seed)
}

// SweepScenarios replicates scenarios × seeds on a worker pool and
// aggregates per-scenario summaries; the result is identical for any
// worker count.
func SweepScenarios(scenarios []*Scenario, cfg ScenarioSweepConfig) (*ScenarioSweepResult, error) {
	return scenario.Sweep(scenarios, cfg)
}

// ScenarioGridConfig parameterizes a (scenario × q × fanout) sweep grid.
type ScenarioGridConfig = scenario.GridConfig

// ScenarioGridResult aggregates a grid sweep, one cell per
// (scenario, q, fanout); its CSV method emits the regression-tracking grid.
type ScenarioGridResult = scenario.GridResult

// SweepScenarioGrid replicates every scenario at every (q, fanout)
// combination; deterministic for any worker count.
func SweepScenarioGrid(scenarios []*Scenario, cfg ScenarioGridConfig) (*ScenarioGridResult, error) {
	return scenario.SweepGrid(scenarios, cfg)
}

// Scenario action constructors, re-exported for campaign building.
var (
	CrashFraction   = scenario.CrashFraction
	CrashZone       = scenario.CrashZone
	RestartFraction = scenario.RestartFraction
	PartitionRange  = scenario.Partition
	HealPartition   = scenario.Heal
	ScenarioLoss    = scenario.Loss
	ScenarioLatency = scenario.Latency
	BurstLoss       = scenario.BurstLoss
	ClearLoss       = scenario.ClearLoss
	ChurnFraction   = scenario.ChurnFraction
	FlashCrowd      = scenario.FlashCrowd
	Regossip        = scenario.Regossip
)

// ConstantLatency delays every message by d.
func ConstantLatency(d time.Duration) simnet.LatencyModel { return simnet.ConstantLatency{D: d} }

// UniformLatency draws per-message delays uniformly from [lo, hi].
func UniformLatency(lo, hi time.Duration) simnet.LatencyModel {
	return simnet.UniformLatency{Lo: lo, Hi: hi}
}

// BernoulliLoss drops each message independently with probability p.
func BernoulliLoss(p float64) simnet.LossModel { return simnet.BernoulliLoss{P: p} }
