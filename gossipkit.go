// Package gossipkit is a toolkit for building and analyzing gossip-based
// reliable multicast protocols under node failures. It reproduces, as a
// production-grade Go library, the system and the analytic model of:
//
//	Xiaopeng Fan, Jiannong Cao, Weigang Wu, Michel Raynal.
//	"On Modeling Fault Tolerance of Gossip-Based Reliable Multicast
//	Protocols." ICPP 2008.
//
// The package is a thin, stable facade over the internal packages; the
// examples under examples/ and the executables under cmd/ are built
// entirely on this surface.
//
// # Quick start
//
// Every backend — the analytic model, the Monte-Carlo estimator, the
// discrete-event network, the fault-injection scenario runner, and the
// related-work protocol baselines — runs behind one context-aware entry
// point:
//
//	p := gossipkit.Params{
//		N:          1000,
//		Fanout:     gossipkit.Poisson(4.0), // fanout distribution P
//		AliveRatio: 0.9,                    // nonfailed member ratio q
//	}
//	pred, _ := gossipkit.Predict(p) // analytic R(q, P), Eq. 11
//	out, _ := gossipkit.RunMany(ctx, gossipkit.MonteCarlo{Params: p}, 20,
//		gossipkit.WithSeed(42)) // 20 seeded replications on a worker pool
//	fmt.Printf("model %.3f, measured %.3f\n", pred.Reliability, out.Reliability.Mean)
//
// Cancel the context to stop a sweep mid-flight (errors.Is(err,
// gossipkit.ErrCanceled)); stream per-run progress with
// gossipkit.WithObserver, whose callbacks arrive in deterministic run
// order for any worker count. See Engine for the full backend list.
//
// # Choosing parameters
//
// Given a target reliability S and an expected failure level q, Eq. 12
// gives the Poisson mean fanout to provision:
//
//	z, _ := gossipkit.FanoutForReliability(0.999, 0.8)
//
// and Eq. 6 the number of repeated executions for a success target:
//
//	t, _ := gossipkit.ExecutionsForSuccess(p, 0.999)
package gossipkit

import (
	"fmt"
	"math"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/genfunc"
	"gossipkit/internal/membership"
	"gossipkit/internal/scenario"
	"gossipkit/internal/simnet"
	"gossipkit/internal/stats"
	"gossipkit/internal/topology"
	"gossipkit/internal/xrand"
)

// Params configures the gossip model Gossip(n, P, q); see core.Params.
type Params = core.Params

// Result is the outcome of one gossip execution.
type Result = core.Result

// Estimate is a Monte-Carlo reliability estimate.
type Estimate = core.Estimate

// ComponentEstimate is a Monte-Carlo giant-component estimate (the paper's
// simulated reliability metric).
type ComponentEstimate = core.ComponentEstimate

// Prediction is the analytic model's output.
type Prediction = core.Prediction

// SuccessParams configures the repeated-execution success protocol.
type SuccessParams = core.SuccessParams

// SuccessOutcome aggregates success-protocol measurements.
type SuccessOutcome = core.SuccessOutcome

// Distribution is a discrete fanout distribution.
type Distribution = dist.Distribution

// RNG is the deterministic random number generator used throughout.
type RNG = xrand.RNG

// NewRNG returns a seeded deterministic generator.
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// Poisson returns the Poisson fanout distribution Po(z) of the paper's case
// study.
func Poisson(z float64) Distribution { return dist.NewPoisson(z) }

// FixedFanout returns the traditional fixed-fanout distribution.
func FixedFanout(k int) Distribution { return dist.NewFixed(k) }

// GeometricFanout returns the geometric fanout distribution on {0,1,...}
// with success probability p (mean (1−p)/p).
func GeometricFanout(p float64) Distribution { return dist.NewGeometric(p) }

// UniformFanout returns the uniform fanout distribution on {lo..hi}.
func UniformFanout(lo, hi int) Distribution { return dist.NewUniformRange(lo, hi) }

// NegBinomialFanout returns the overdispersed negative binomial fanout
// NB(r, p) on {0,1,...} (mean r(1−p)/p).
func NegBinomialFanout(r int, p float64) Distribution { return dist.NewNegBinomial(r, p) }

// ParseFanout builds a fanout distribution of the given mean from
// untrusted input (CLI flags, config files). The panicking constructors
// above treat invalid parameters as programmer error; ParseFanout instead
// returns an error wrapping ErrInvalidParams, so user input never panics.
//
// Kinds: "poisson" (Po(mean)), "fixed" (point mass at ⌊mean⌋),
// "geometric" (success probability chosen so the mean matches), and
// "uniform" (uniform on {1..⌊mean⌋}, which needs mean >= 1).
func ParseFanout(kind string, mean float64) (Distribution, error) {
	if mean < 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return nil, fmt.Errorf("%w: fanout mean %g (want a finite value >= 0)", ErrInvalidParams, mean)
	}
	switch kind {
	case "poisson":
		return dist.NewPoisson(mean), nil
	case "fixed":
		return dist.NewFixed(int(mean)), nil
	case "geometric":
		// Mean (1-p)/p = mean → p = 1/(1+mean).
		return dist.NewGeometric(1 / (1 + mean)), nil
	case "uniform":
		if int(mean) < 1 {
			return nil, fmt.Errorf("%w: uniform fanout needs a mean >= 1, got %g", ErrInvalidParams, mean)
		}
		return dist.NewUniformRange(1, int(mean)), nil
	default:
		return nil, fmt.Errorf("%w: unknown fanout distribution %q (want poisson, fixed, geometric, or uniform)", ErrInvalidParams, kind)
	}
}

// AtLeastOnce conditions a fanout distribution on drawing at least one
// target, so no member ever stays silent.
func AtLeastOnce(d Distribution) Distribution { return dist.NewZeroTruncated(d) }

// Predict evaluates the analytic fault-tolerance model for p. It is the
// function form of the Analytic engine.
func Predict(p Params) (Prediction, error) { return core.Predict(p) }

// ExecutionsForSuccess returns the minimum number of executions t needed to
// reach the success probability target (paper Eq. 6), using the model's
// predicted per-execution reliability.
func ExecutionsForSuccess(p Params, target float64) (int, error) {
	return core.RequiredExecutions(p, target)
}

// SuccessAfter returns 1 − (1 − r)^t: the probability that t repeated
// executions with per-execution reliability r satisfy every member (paper
// Eq. 5), computed stably for tiny r.
func SuccessAfter(r float64, t int) float64 { return stats.AtLeastOne(r, t) }

// FanoutForReliability returns the Poisson mean fanout z needed for
// reliability s at nonfailed ratio q (paper Eq. 12).
func FanoutForReliability(s, q float64) (float64, error) {
	return genfunc.PoissonMeanFanout(s, q)
}

// CriticalRatio returns q_c = 1/z for Poisson fanout (paper Eq. 10): below
// this nonfailed ratio, gossip reliability collapses.
func CriticalRatio(meanFanout float64) float64 {
	return genfunc.PoissonCriticalRatio(meanFanout)
}

// FullView returns complete membership knowledge over n members (the
// paper's assumption).
func FullView(n int) membership.View { return membership.NewFullView(n) }

// PartialViews builds SCAMP-style partial membership views (substrate for
// the paper's assumption that "a scalable membership protocol is
// available"). c is the number of extra subscription copies; views average
// (c+1)·ln(n) entries.
func PartialViews(n, c int, r *RNG) *membership.PartialViews {
	return membership.NewPartialViews(n, c, r)
}

// ---------------------------------------------------------------------------
// Topology: generated gossip overlays

// Topology selects the overlay gossip targets are drawn from. The zero
// value is the paper's uniform full view; non-uniform kinds restrict each
// member to a generated neighbor set (see WithTopology). Build one with
// the constructors below or ParseTopology.
type Topology = topology.Spec

// TopologyKind enumerates the overlay families.
type TopologyKind = topology.Kind

// Overlay kinds.
const (
	// TopologyUniform draws targets uniformly from the full membership
	// (the paper's assumption; the zero value).
	TopologyUniform = topology.Uniform
	// TopologyKOut gives every member k distinct random out-neighbors.
	TopologyKOut = topology.KOut
	// TopologyScaleFree grows a Barabási–Albert preferential-attachment
	// overlay (undirected, m arcs per joining member).
	TopologyScaleFree = topology.ScaleFree
	// TopologyWAN clusters members into zones: k intra-zone neighbors
	// plus one inter-zone bridge per member.
	TopologyWAN = topology.WAN
)

// KOutTopology is the k-out regular overlay: every member gossips to a
// fixed set of k distinct random neighbors. k <= 0 defaults to ⌈log₂ n⌉.
func KOutTopology(k int) Topology { return Topology{Kind: TopologyKOut, K: k} }

// ScaleFreeTopology is the Barabási–Albert preferential-attachment
// overlay with m arcs per joining member (degree distribution follows a
// power law, so a few hubs carry most arcs). m <= 0 defaults to ⌈log₂ n⌉.
func ScaleFreeTopology(m int) Topology { return Topology{Kind: TopologyScaleFree, K: m} }

// WANTopology clusters the membership into zones of contiguous ids:
// every member gets k intra-zone neighbors plus one random inter-zone
// bridge. Pair it with WANLatency for heterogeneous inter-zone delays.
// k <= 0 defaults to ⌈log₂ n⌉.
func WANTopology(zones, k int) Topology {
	return Topology{Kind: TopologyWAN, Zones: zones, K: k}
}

// ParseTopology builds a topology spec from untrusted input (CLI flags,
// config files): "uniform", "kout[:K]", "ba[:M]", or "wan:ZONES[:K]".
// Errors wrap ErrInvalidParams.
func ParseTopology(s string) (Topology, error) {
	t, err := topology.Parse(s)
	if err != nil {
		return Topology{}, fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}
	return t, nil
}

// WANLatency is the zone-pair latency matrix WAN topologies gossip over:
// intra-zone messages take [local, 2·local], and each hop of ring
// distance between zones adds step to the band. The scenario runner
// installs it automatically for WAN topologies when no latency model is
// set; set it explicitly on NetConfig.Latency for the Network engine.
func WANLatency(n, zones int, local, step time.Duration) simnet.LatencyModel {
	return topology.NewZoneLatency(n, zones, local, step)
}

// NetConfig configures the simulated network substrate for
// ExecuteOnNetwork.
type NetConfig = simnet.Config

// NetResult is a network-backed execution outcome.
type NetResult = core.NetResult

// ---------------------------------------------------------------------------
// Scenario engine: declarative time-varying fault campaigns

// Scenario is a named, timestamped fault-injection campaign applied to a
// running network execution (crash waves, zone failures, partitions that
// heal, churn bursts, loss episodes, flash crowds). Build one with
// NewScenario and the scenario action constructors, or parse a JSON spec
// with ParseScenario.
type Scenario = scenario.Scenario

// ScenarioAction is one fault-injection operation of a Scenario.
type ScenarioAction = scenario.Action

// ScenarioRunConfig parameterizes scenario executions.
type ScenarioRunConfig = scenario.RunConfig

// ScenarioReport is the outcome of one scenario execution, including the
// static-q (Eq. 11) and effective-q model comparisons.
type ScenarioReport = scenario.RunReport

// ScenarioSweepConfig parameterizes a parallel scenario × seed sweep.
type ScenarioSweepConfig = scenario.SweepConfig

// ScenarioSweepResult aggregates a scenario × seed sweep.
type ScenarioSweepResult = scenario.SweepResult

// NewScenario starts a fault-injection campaign for the builder API:
//
//	s := gossipkit.NewScenario("wave", "crash wave mid-spread").
//		At(5*time.Millisecond, gossipkit.CrashFraction(0.2))
func NewScenario(name, description string) *Scenario { return scenario.New(name, description) }

// ParseScenario decodes and validates a JSON scenario spec.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }

// DefaultScenarioSuite returns the bundled fault campaigns.
func DefaultScenarioSuite() []*Scenario { return scenario.DefaultSuite() }

// ScenarioByName returns the bundled scenario with the given name.
func ScenarioByName(name string) (*Scenario, bool) { return scenario.ByName(name) }

// ScenarioGridConfig parameterizes a (scenario × q × fanout) sweep grid.
type ScenarioGridConfig = scenario.GridConfig

// ScenarioGridResult aggregates a grid sweep, one cell per
// (scenario, q, fanout); its CSV method emits the regression-tracking grid.
type ScenarioGridResult = scenario.GridResult

// ScenarioExecutor is the protocol a campaign drives: the seam that lets
// any scenario target any dissemination protocol on the shared
// discrete-event substrate. A nil ScenarioRunConfig.Executor runs the
// paper's algorithm; BaselineExecutor wraps any related-work protocol spec.
// The Compare engine builds one executor per grid row from the same
// constructors.
type ScenarioExecutor = scenario.Executor

// BaselineExecutor wraps a baseline protocol spec (PbcastParams,
// LpbcastParams, AntiEntropyParams, RDGParams, LRGParams, FloodingParams)
// as a ScenarioExecutor: set it on ScenarioRunConfig.Executor to run any
// campaign — crash waves, partitions, loss episodes, flash crowds — against
// that baseline instead of the paper's algorithm.
func BaselineExecutor(spec ProtocolSpec) ScenarioExecutor {
	return scenario.NewProtocolExecutor(spec)
}

// ScenarioCompareResult aggregates a (protocol × scenario) comparison grid
// (the Compare engine's Outcome.Aggregate), one cell per pair; its CSV
// method emits the regression-tracking grid with escaped fields.
type ScenarioCompareResult = scenario.CompareResult

// Scenario action constructors, re-exported for campaign building.
var (
	CrashFraction   = scenario.CrashFraction
	CrashZone       = scenario.CrashZone
	RestartFraction = scenario.RestartFraction
	PartitionRange  = scenario.Partition
	HealPartition   = scenario.Heal
	ScenarioLoss    = scenario.Loss
	ScenarioLatency = scenario.Latency
	BurstLoss       = scenario.BurstLoss
	ClearLoss       = scenario.ClearLoss
	ChurnFraction   = scenario.ChurnFraction
	FlashCrowd      = scenario.FlashCrowd
	Regossip        = scenario.Regossip
)

// ConstantLatency delays every message by d.
func ConstantLatency(d time.Duration) simnet.LatencyModel { return simnet.ConstantLatency{D: d} }

// UniformLatency draws per-message delays uniformly from [lo, hi].
func UniformLatency(lo, hi time.Duration) simnet.LatencyModel {
	return simnet.UniformLatency{Lo: lo, Hi: hi}
}

// BernoulliLoss drops each message independently with probability p.
func BernoulliLoss(p float64) simnet.LossModel { return simnet.BernoulliLoss{P: p} }
