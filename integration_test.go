package gossipkit

import (
	"math"
	"testing"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/genfunc"
	"gossipkit/internal/stats"
)

// These integration tests wire several subsystems together through the
// public facade, checking cross-module invariants that no single package's
// unit tests can see.

func TestIntegrationModelVsSimulationAcrossDistributions(t *testing.T) {
	// For every fanout family the giant out-component simulation must
	// match the forward-spread predictor (mean-only), the correct model
	// for directed gossip (ablation A1).
	const n, q = 3000, 0.85
	for _, d := range []Distribution{
		Poisson(4),
		FixedFanout(4),
		GeometricFanout(0.2),      // mean 4
		NegBinomialFanout(4, 0.5), // mean 4, var 8
		AtLeastOnce(Poisson(3.5)), // mean ~3.6
		UniformFanout(2, 6),       // mean 4
	} {
		d := d
		t.Run(d.Name(), func(t *testing.T) {
			p := Params{N: n, Fanout: d, AliveRatio: q}
			est, err := MeasureGiantComponent(p, 25, 99)
			if err != nil {
				t.Fatal(err)
			}
			want, err := genfunc.ForwardReach(d.Mean(), q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(est.Mean-want) > 0.03 {
				t.Errorf("%s: sim %.4f vs forward model %.4f", d.Name(), est.Mean, want)
			}
		})
	}
}

func TestIntegrationOneShotDeliveryMatchesOutbreakModel(t *testing.T) {
	// Directed one-shot delivery = outbreak probability × coverage, with
	// the shape dependence carried entirely by the outbreak factor.
	const n, q = 3000, 0.9
	for _, d := range []Distribution{Poisson(4), FixedFanout(4)} {
		d := d
		t.Run(d.Name(), func(t *testing.T) {
			p := Params{N: n, Fanout: d, AliveRatio: q}
			est, err := MeasureReliability(p, 300, 7)
			if err != nil {
				t.Fatal(err)
			}
			want, err := genfunc.ExpectedOneShotReach(d, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(est.Mean-want) > 0.025 {
				t.Errorf("%s: one-shot %.4f vs model %.4f", d.Name(), est.Mean, want)
			}
		})
	}
}

func TestIntegrationNetworkLossMatchesBondPercolation(t *testing.T) {
	// ExecuteOnNetwork with Bernoulli loss vs the joint site+bond model:
	// the mean one-shot delivery tracks S(z(1−loss), q)².
	const n, z, q, loss = 1500, 5.0, 0.9, 0.3
	p := Params{N: n, Fanout: Poisson(z), AliveRatio: q}
	var acc stats.Running
	for seed := uint64(0); seed < 40; seed++ {
		res, err := ExecuteOnNetwork(p, NetConfig{Loss: BernoulliLoss(loss)}, NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(res.Reliability)
	}
	s, err := genfunc.JointReliability(dist.NewPoisson(z), q, loss)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc.Mean()-s*s) > 0.04 {
		t.Errorf("lossy delivery %.4f vs thinned S² %.4f", acc.Mean(), s*s)
	}
}

func TestIntegrationLatencyDoesNotChangeReach(t *testing.T) {
	// Latency reorders deliveries but must not change what is reachable:
	// identical seeds with and without latency give statistically equal
	// reliability.
	p := Params{N: 800, Fanout: Poisson(4), AliveRatio: 0.9}
	var zero, lat stats.Running
	for seed := uint64(0); seed < 25; seed++ {
		a, err := ExecuteOnNetwork(p, NetConfig{}, NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		zero.Add(a.Reliability)
		b, err := ExecuteOnNetwork(p, NetConfig{
			Latency: UniformLatency(time.Millisecond, 40*time.Millisecond),
		}, NewRNG(seed+5000))
		if err != nil {
			t.Fatal(err)
		}
		lat.Add(b.Reliability)
	}
	if math.Abs(zero.Mean()-lat.Mean()) > 0.06 {
		t.Errorf("latency changed reach: %.4f vs %.4f", zero.Mean(), lat.Mean())
	}
}

func TestIntegrationDesignLoopClosesEndToEnd(t *testing.T) {
	// The full design workflow of examples/fanouttuning: pick z from a
	// target via Eq. 12, then verify by simulation that the target holds.
	const target, q = 0.99, 0.75
	z, err := FanoutForReliability(target, q)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{N: 3000, Fanout: Poisson(z), AliveRatio: q}
	est, err := MeasureGiantComponent(p, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-target) > 0.01 {
		t.Errorf("designed for %.3f, measured %.4f (z=%.3f)", target, est.Mean, z)
	}
	// And the success protocol achieves its own target with the t from
	// Eq. 6.
	tmin, err := ExecutionsForSuccess(p, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunSuccess(SuccessParams{
		Params:      p,
		Executions:  tmin,
		Simulations: 30,
	}, 13)
	if err != nil {
		t.Fatal(err)
	}
	missFrac := out.ReceiptHistogram.Freq(0)
	// Eq. 6 guarantees per-member miss prob <= 0.001 under the model's
	// idealized p_r; the empirical p_r is lower (die-out), so allow an
	// order of magnitude.
	if missFrac > 0.01 {
		t.Errorf("per-member miss fraction %.4f after t=%d executions", missFrac, tmin)
	}
}

func TestIntegrationCoreRecurrenceAndAnalyticPlateauAgree(t *testing.T) {
	// The round-recurrence plateau and the percolation model's S must
	// land on the same coverage for a supercritical setting.
	const n, z, q = 5000, 5.0, 0.9
	cum, err := core.RecurrenceModel(n, z, q, 60)
	if err != nil {
		t.Fatal(err)
	}
	plateau := cum[len(cum)-1] / (float64(n) * q)
	s, err := genfunc.PoissonReliability(z, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plateau-s) > 0.02 {
		t.Errorf("recurrence plateau %.4f vs percolation S %.4f", plateau, s)
	}
}
