package gossipkit

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"gossipkit/internal/stats"
	"gossipkit/internal/topology"
)

// Sentinel errors every engine wraps, so callers dispatch with errors.Is
// instead of string-matching the internal "core:"/"scenario:" prefixes.
var (
	// ErrInvalidParams wraps every parameter-validation failure. The
	// wrapped chain keeps the precise internal message
	// ("core: group size 1 too small", ...).
	ErrInvalidParams = errors.New("gossipkit: invalid parameters")
	// ErrCanceled wraps context cancellation: a mid-sweep ctx cancel makes
	// Run/RunMany return promptly with an error matching both ErrCanceled
	// and the context's own error (context.Canceled / DeadlineExceeded).
	ErrCanceled = errors.New("gossipkit: run canceled")
)

// invalid wraps a validation error so errors.Is(err, ErrInvalidParams)
// holds while the internal message stays in the chain.
func invalid(err error) error {
	return fmt.Errorf("%w: %w", ErrInvalidParams, err)
}

// Engine is one execution backend of the toolkit behind the unified
// Run/RunMany entry points: the analytic model (Analytic), the Monte-Carlo
// graph estimator (MonteCarlo), the discrete-event network executor
// (Network), the fault-injection scenario runner (Campaign), the
// repeated-execution success protocol (Success), the related-work protocol
// baselines (Pbcast, Lpbcast, AntiEntropy, RDG, LRG, Flooding — all on the
// same discrete-event substrate as Network), and the (protocol × scenario)
// comparison grid (Compare).
//
// Every engine is context-aware (cancellation aborts promptly with
// ErrCanceled), observable (WithObserver streams per-run Reports in
// deterministic run order for any worker count), and seed-deterministic
// (the same spec, seed, and run count reproduce the same Outcome bit for
// bit, regardless of WithWorkers).
//
// The interface is sealed: implementations live in this package. Specs are
// plain value types, so they can be built, copied, and compared freely.
type Engine interface {
	// Name identifies the backend in Reports and Outcomes.
	Name() string
	// run executes the spec. It must emit one Report per completed
	// replication, in deterministic order, and may return an
	// engine-specific aggregate (sealed to this package).
	run(ctx context.Context, o *runOptions, emit func(Report)) (aggregate any, err error)
}

// Report is the unified per-replication outcome streamed to observers and
// collected in Outcome.Reports. Engines fill the fields they measure and
// leave the rest zero; Detail carries the engine's native result
// (Result, ComponentResult, NetResult, ScenarioReport, SuccessSim,
// Prediction, or a protocol result type).
type Report struct {
	// Engine is the backend that produced the report.
	Engine string
	// Run is the replication index (sweep-cell index for grids), assigned
	// in emission order: observers always see Run 0, 1, 2, ...
	Run int
	// Reliability is the engine's headline delivery ratio for this run.
	Reliability float64
	// Delivered is the number of members that received the multicast.
	Delivered int
	// AliveCount is the number of nonfailed members.
	AliveCount int
	// MessagesSent counts protocol messages.
	MessagesSent int
	// Rounds is the forwarding depth or round count, where the engine
	// has one.
	Rounds int
	// SpreadMs is the simulated time of the last first-receipt in
	// milliseconds (discrete-event engines only).
	SpreadMs float64
	// Metrics is this run's telemetry snapshot when the execution ran
	// under WithProbe on a discrete-event engine; nil otherwise.
	Metrics *RunMetrics
	// Stream is this run's streaming telemetry snapshot when the
	// execution ran under WithProbe on the Stream engine; nil otherwise.
	Stream *StreamRunMetrics
	// Detail is the engine's native result for this run.
	Detail any
}

// Observer streams per-run Reports as a Run/RunMany progresses. Callbacks
// arrive in deterministic run order (Report.Run = 0, 1, 2, ...) for any
// worker count, from whichever worker completed the ordered prefix; an
// observer must therefore be safe to call from worker goroutines, but
// never concurrently with itself.
type Observer func(Report)

// Moments are order-statistics of one Report field across the completed
// replications of an Outcome.
type Moments struct {
	// N is the number of observations.
	N int
	// Mean, StdDev, Min and Max summarize the sample.
	Mean, StdDev, Min, Max float64
	// CI95 is the half-width of the 95% confidence interval on Mean.
	CI95 float64
}

func momentsOf(r stats.Running) Moments {
	if r.N() == 0 {
		return Moments{}
	}
	return Moments{N: r.N(), Mean: r.Mean(), StdDev: r.StdDev(), Min: r.Min(), Max: r.Max(), CI95: r.CI95()}
}

// Outcome is the aggregated result of Run or RunMany.
type Outcome struct {
	// Engine is the backend that ran.
	Engine string
	// Runs is the number of completed replications.
	Runs int
	// Seed is the base seed the replications derived from (WithSeed).
	Seed uint64
	// Reliability, Messages and SpreadMs aggregate the corresponding
	// Report fields across replications, reduced in run order.
	Reliability Moments
	Messages    Moments
	SpreadMs    Moments
	// Reports are the per-replication reports, in run order. Nil when the
	// run used WithoutReports.
	Reports []Report
	// Metrics merges the per-run telemetry across replications when the
	// execution ran under WithProbe on a discrete-event engine; nil
	// otherwise. The merge happens in run order, so it is byte-identical
	// for any WithWorkers count.
	Metrics *MergedMetrics
	// Stream merges streaming telemetry across replications when the
	// execution ran under WithProbe on the Stream engine; nil otherwise.
	// Merged in run order like Metrics.
	Stream *MergedStreamMetrics
	// Aggregate is the engine's native aggregate, when it has one:
	// Prediction (Analytic), Estimate or ComponentEstimate (MonteCarlo),
	// SuccessOutcome (Success), *ScenarioSweepResult or
	// *ScenarioGridResult (Campaign under RunMany), *ProtocolSweep (a
	// protocol baseline under RunMany), *ScenarioCompareResult (Compare).
	// Nil otherwise.
	Aggregate any
}

// runOptions carries the resolved Run/RunMany options.
type runOptions struct {
	seed          uint64
	runs          int
	many          bool // replication-sweep semantics (RunMany / WithRuns)
	workers       int
	observer      Observer
	noReports     bool
	probe         *ProbeOptions // dissemination telemetry (DES engines only)
	rng           *RNG          // single-run override: execute on this RNG stream
	arena         *NetArena     // deprecated-shim arena pass-through (Network only)
	shards        int           // conservative-PDES shard kernels (Network engine)
	topology      topology.Spec // gossip overlay (zero value = uniform full view)
	shardProgress func(events uint64, virtualNow time.Duration)
}

// Option configures Run and RunMany.
type Option func(*runOptions)

// WithSeed sets the base seed replications derive their independent RNG
// streams from. The default is 0; the same seed reproduces the same
// Outcome bit for bit.
func WithSeed(seed uint64) Option { return func(o *runOptions) { o.seed = seed } }

// WithRuns sets the replication count, switching Run to replication-sweep
// semantics (equivalent to calling RunMany with n).
func WithRuns(n int) Option {
	return func(o *runOptions) { o.runs, o.many = n, true }
}

// WithWorkers bounds the worker pool replications run on; <= 0 (the
// default) means GOMAXPROCS. Results and observer order are identical for
// any worker count.
func WithWorkers(n int) Option { return func(o *runOptions) { o.workers = n } }

// WithObserver streams per-run Reports as the execution progresses; see
// Observer for the delivery-order guarantee.
func WithObserver(fn Observer) Option { return func(o *runOptions) { o.observer = fn } }

// WithoutReports drops per-run Reports from the Outcome (Outcome.Reports
// stays nil); aggregates, moments, and observer streaming are unaffected.
// Use it on very large sweeps consumed through Aggregate or an observer
// only, where retaining every boxed Report would dominate memory: the
// MonteCarlo, Network, Success, and protocol engines then stream their
// reduction and hold only out-of-order completions live. The Campaign
// engine is the exception — it still buffers one report per sweep cell
// internally to build its per-scenario summaries.
func WithoutReports() Option { return func(o *runOptions) { o.noReports = true } }

// WithShards runs Network executions on the conservative-PDES sharded
// kernel with n shard kernels: members are partitioned across per-core
// shards that advance in lookahead windows derived from the latency
// model's floor (see simnet.LatencyFloorer), exchanging cross-shard
// messages at window barriers. n <= 0 auto-selects GOMAXPROCS at
// option-apply time. The default (option absent) is the single-kernel
// runtime, so existing results stay byte-identical; shards=1 runs the
// sharded code path degenerately and is byte-identical to the single
// kernel too. Executions whose latency model has no positive floor fall
// back to one shard. Each replication still runs on one shard group —
// WithShards parallelizes within a run (one n=10⁷ execution across
// cores), WithWorkers across runs; they compose, but oversubscribe the
// machine if both are wide.
func WithShards(n int) Option {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return func(o *runOptions) { o.shards = n }
}

// WithShardProgress observes every window barrier of a sharded Network
// execution (WithShards) with the cumulative kernel events fired and the
// barrier's virtual time — live progress for single long runs, where
// per-run observers only fire at the very end. Called from the
// coordinator goroutine of whichever replication is running; with
// parallel replications (WithRuns + WithWorkers) calls from different
// runs interleave, so it is most useful on single executions.
func WithShardProgress(fn func(events uint64, virtualNow time.Duration)) Option {
	return func(o *runOptions) { o.shardProgress = fn }
}

// WithTopology gossips over a generated overlay instead of the uniform
// full view: target selection draws from per-member neighbor sets (k-out
// regular, Barabási–Albert scale-free, or WAN zone clusters — see
// ParseTopology and the topology constructors). Each overlay is generated
// deterministically from the run's RNG stream, so results stay
// seed-reproducible and worker/shard-count-invariant; the zero (uniform)
// spec is byte-identical to not setting the option at all.
//
// Honored by the Network, MonteCarlo, Campaign, Compare, and protocol
// baseline engines. The Analytic and Success engines reject non-uniform
// topologies: Eq. 11 assumes uniform selection — use MonteCarlo (giant
// component) for overlay reliability, or read the corrected prediction
// off scenario reports. Campaign and Compare alternatively take the
// topology on ScenarioRunConfig.Topology; setting both to different
// specs is an error.
func WithTopology(t Topology) Option { return func(o *runOptions) { o.topology = t } }

// mergeTopology folds a WithTopology option into a scenario run config
// (the Campaign and Compare engines), rejecting a conflict with an
// explicitly-set Config.Topology.
func mergeTopology(cfg *ScenarioRunConfig, o *runOptions) error {
	if o.topology.IsUniform() {
		return nil
	}
	if !cfg.Topology.IsUniform() && cfg.Topology != o.topology {
		return fmt.Errorf("%w: WithTopology(%s) conflicts with Config.Topology %s", ErrInvalidParams, o.topology, cfg.Topology)
	}
	cfg.Topology = o.topology
	return nil
}

// WithRNG makes a single Run execute on the caller's RNG stream instead of
// deriving one from WithSeed, consuming randomness exactly where the
// stream stands — the contract the deprecated Execute/ExecuteOnNetwork
// shims rely on. Only valid for single executions (not RunMany/WithRuns),
// and only on engines that consume an RNG directly (MonteCarlo, Network,
// and the protocol baselines).
func WithRNG(r *RNG) Option { return func(o *runOptions) { o.rng = r } }

// Run executes spec once and returns its Outcome: one entry point across
// every backend. Replications, cancellation, and observation are all
// options:
//
//	out, err := gossipkit.Run(ctx, gossipkit.Network{Params: p}, gossipkit.WithSeed(42))
//	out, err := gossipkit.Run(ctx, gossipkit.MonteCarlo{Params: p},
//		gossipkit.WithRuns(1000), gossipkit.WithObserver(progress))
//
// A single Run uses the seed exactly as given (so it reproduces the
// corresponding deprecated single-shot function); WithRuns(n) switches to
// RunMany's replication-sweep semantics. Engines that declare their own
// replication structure (Success via SuccessParams.Simulations, Campaign
// under RunMany) emit one Report per inner replication.
func Run(ctx context.Context, spec Engine, opts ...Option) (*Outcome, error) {
	o := &runOptions{runs: 1}
	for _, opt := range opts {
		opt(o)
	}
	return execute(ctx, spec, o)
}

// RunMany executes `runs` seeded replications of spec on a worker pool and
// aggregates them: per-run RNG streams derive from WithSeed, results
// reduce in run order, and the Outcome is identical for any WithWorkers
// count. Cancel ctx to stop a sweep mid-flight (ErrCanceled).
func RunMany(ctx context.Context, spec Engine, runs int, opts ...Option) (*Outcome, error) {
	o := &runOptions{runs: runs, many: true}
	for _, opt := range opts {
		opt(o)
	}
	return execute(ctx, spec, o)
}

// execute is the shared driver: it validates options, streams Reports to
// the observer, reduces the generic moments in run order, and maps
// cancellation onto ErrCanceled.
func execute(ctx context.Context, spec Engine, o *runOptions) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if spec == nil {
		return nil, fmt.Errorf("%w: nil engine spec", ErrInvalidParams)
	}
	if o.runs < 1 {
		return nil, fmt.Errorf("%w: run count %d < 1", ErrInvalidParams, o.runs)
	}
	if o.rng != nil && o.many {
		return nil, fmt.Errorf("%w: WithRNG applies to single Run executions only", ErrInvalidParams)
	}
	if err := ctx.Err(); err != nil {
		return nil, canceled(err, 0)
	}

	out := &Outcome{Engine: spec.Name(), Seed: o.seed}
	emitted := 0
	var rel, msgs, spread stats.Running
	var merged *MergedMetrics
	var streamMerged *MergedStreamMetrics
	if o.probe != nil {
		merged = &MergedMetrics{}
		streamMerged = &MergedStreamMetrics{}
	}
	emit := func(r Report) {
		r.Engine = out.Engine
		r.Run = emitted
		emitted++
		if !o.noReports {
			out.Reports = append(out.Reports, r)
		}
		rel.Add(r.Reliability)
		msgs.Add(float64(r.MessagesSent))
		spread.Add(r.SpreadMs)
		// Reports arrive in run order, so this merge — like every other
		// reduction here — is byte-identical for any worker count.
		merged.Merge(r.Metrics)
		streamMerged.Merge(r.Stream)
		if o.observer != nil {
			o.observer(r)
		}
	}
	agg, err := spec.run(ctx, o, emit)
	if err != nil {
		// Map onto ErrCanceled only when the failure IS the cancellation
		// (the pool and engines propagate ctx.Err() unwrapped). A genuine
		// engine error that merely races a ctx cancel must surface as
		// itself, not be masked behind the CLIs' "interrupted" exit path.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, canceled(err, emitted)
		}
		return nil, err
	}
	out.Runs = emitted
	out.Reliability = momentsOf(rel)
	out.Messages = momentsOf(msgs)
	out.SpreadMs = momentsOf(spread)
	if merged != nil && merged.Runs > 0 {
		out.Metrics = merged
	}
	if streamMerged != nil && streamMerged.Runs > 0 {
		out.Stream = streamMerged
	}
	out.Aggregate = agg
	return out, nil
}

// canceled wraps a context error so it matches both ErrCanceled and the
// original context error.
func canceled(err error, completed int) error {
	return fmt.Errorf("%w after %d completed runs: %w", ErrCanceled, completed, err)
}
