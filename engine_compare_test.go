package gossipkit

import (
	"context"
	"errors"
	"testing"
	"time"
)

// compareSpec is the (protocol × scenario) grid the acceptance criteria
// pin: a crash wave, a loss episode, and a partition from the bundled
// suite, each run against the paper's algorithm and all six related-work
// baselines on the shared DES substrate.
func compareSpec() Compare {
	return Compare{
		Scenarios: []*Scenario{
			mustScenario("crash-wave"), mustScenario("burst-loss"), mustScenario("partition-heal"),
		},
		Paper: true,
		Protocols: []ProtocolSpec{
			PbcastParams{N: 200, Fanout: 4, Rounds: 10, AliveRatio: 1},
			LpbcastParams{N: 200, Fanout: 4, Rounds: 10, BufferSize: 8, Events: 3, AliveRatio: 1, ViewCopies: 2},
			AntiEntropyParams{N: 200, Rounds: 10, Mode: PushPull, AliveRatio: 1},
			RDGParams{N: 200, Fanout: 4, PushRounds: 10, RecoveryRounds: 5, AliveRatio: 1, ViewCopies: 2, PayloadProb: 0.8},
			LRGParams{N: 200, Degree: 6, GossipProb: 0.8, RepairRounds: 5, AliveRatio: 1},
			FloodingParams{N: 200, AliveRatio: 1},
		},
		Config: ScenarioRunConfig{
			Params:            Params{N: 200, Fanout: Poisson(5), AliveRatio: 1},
			PartialViewCopies: 2,
		},
	}
}

func mustScenario(name string) *Scenario {
	s, ok := ScenarioByName(name)
	if !ok {
		panic("unknown bundled scenario " + name)
	}
	return s
}

// compareGoldenCSV pins the full grid at seed 2008, seeds=2. A diff here
// means the comparison surface moved: a protocol runtime, the scenario
// engine, the network substrate, or the seed derivation. Regenerate
// deliberately and say so in the commit.
const compareGoldenCSV = `protocol,scenario,runs,reliability,reliability_stddev,survivor_reliability,spread_ms,mean_messages,mean_up_at_end,static_prediction,effective_prediction
paper,crash-wave,2,0.702500,0.038891,0.945205,69.760,666.5,146.0,0.993023,0.971119
paper,burst-loss,2,0.965000,0.014142,0.965000,57.100,948.5,200.0,0.993023,0.993023
paper,partition-heal,2,0.945000,0.007071,0.945000,104.142,959.5,200.0,0.993023,0.993023
pbcast,crash-wave,2,0.735000,0.000000,1.000000,115.982,3586.0,146.0,0.000000,0.000000
pbcast,burst-loss,2,1.000000,0.000000,1.000000,102.566,1496.0,200.0,0.000000,0.000000
pbcast,partition-heal,2,1.000000,0.000000,1.000000,115.315,1428.0,200.0,0.000000,0.000000
lpbcast,crash-wave,2,0.732500,0.003536,1.000000,159.997,3536.0,146.0,0.000000,0.000000
lpbcast,burst-loss,2,1.000000,0.000000,1.000000,105.628,5044.0,200.0,0.000000,0.000000
lpbcast,partition-heal,2,1.000000,0.000000,1.000000,118.902,4722.0,200.0,0.000000,0.000000
anti-entropy,crash-wave,2,0.732500,0.003536,1.000000,186.613,3028.0,146.0,0.000000,0.000000
anti-entropy,burst-loss,2,1.000000,0.000000,1.000000,170.060,3600.0,200.0,0.000000,0.000000
anti-entropy,partition-heal,2,1.000000,0.000000,1.000000,193.742,4009.0,200.0,0.000000,0.000000
rdg,crash-wave,2,0.730000,0.000000,1.000000,145.722,3520.0,146.0,0.000000,0.000000
rdg,burst-loss,2,1.000000,0.000000,1.000000,120.371,5052.0,200.0,0.000000,0.000000
rdg,partition-heal,2,1.000000,0.000000,1.000000,146.261,4732.0,200.0,0.000000,0.000000
lrg,crash-wave,2,0.735000,0.007071,1.000000,68.775,806.5,146.0,0.000000,0.000000
lrg,burst-loss,2,1.000000,0.000000,1.000000,52.322,1109.5,200.0,0.000000,0.000000
lrg,partition-heal,2,1.000000,0.000000,1.000000,99.170,1157.5,200.0,0.000000,0.000000
flooding,crash-wave,2,1.000000,0.000000,1.000000,4.948,39800.0,146.0,0.000000,0.000000
flooding,burst-loss,2,1.000000,0.000000,1.000000,4.473,39800.0,200.0,0.000000,0.000000
flooding,partition-heal,2,1.000000,0.000000,1.000000,5.865,41392.0,200.0,0.000000,0.000000
`

// TestCompareGoldenCSV: the (protocol × scenario) grid CSV is golden-pinned
// and identical for any worker count. The paper's survivor reliability
// trails the multi-round baselines under the crash wave (single-shot gossip
// cannot re-serve, the baselines' later rounds can) at a fraction of their
// message cost — the comparative claim the grid exists to measure.
func TestCompareGoldenCSV(t *testing.T) {
	var first string
	for _, workers := range []int{1, 5} {
		out, err := RunMany(context.Background(), compareSpec(), 2,
			WithSeed(2008), WithWorkers(workers), WithoutReports())
		if err != nil {
			t.Fatal(err)
		}
		res := out.Aggregate.(*ScenarioCompareResult)
		csv := res.CSV()
		if first == "" {
			first = csv
		} else if csv != first {
			t.Fatalf("workers=%d: comparison CSV diverged from workers=1", workers)
		}
		if out.Runs != 7*3*2 {
			t.Fatalf("workers=%d: %d runs, want 42", workers, out.Runs)
		}
	}
	if first != compareGoldenCSV {
		t.Errorf("comparison grid moved; regenerate deliberately.\n got:\n%s\nwant:\n%s", first, compareGoldenCSV)
	}
}

// TestProtocolSweepAggregate: RunMany over a protocol baseline returns the
// Estimate-style ProtocolSweep moments in Outcome.Aggregate — reduced in
// run order, so identical for any worker count — not just per-run Reports.
func TestProtocolSweepAggregate(t *testing.T) {
	spec := Pbcast{Params: PbcastParams{N: 300, Fanout: 3, Rounds: 8, AliveRatio: 0.9}}
	var base *ProtocolSweep
	for _, workers := range []int{1, 4} {
		out, err := RunMany(context.Background(), spec, 8, WithSeed(5), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		agg, ok := out.Aggregate.(*ProtocolSweep)
		if !ok {
			t.Fatalf("aggregate is %T, want *ProtocolSweep", out.Aggregate)
		}
		if agg.Protocol != "pbcast" || agg.Runs != 8 {
			t.Fatalf("aggregate %q runs %d, want pbcast/8", agg.Protocol, agg.Runs)
		}
		if agg.Reliability != out.Reliability {
			t.Errorf("aggregate reliability moments %+v diverge from the generic outcome %+v",
				agg.Reliability, out.Reliability)
		}
		if agg.Rounds.Mean <= 0 || agg.Rounds.Max > 8 {
			t.Errorf("rounds-to-quiescence moments %+v out of range", agg.Rounds)
		}
		if agg.Messages.Min <= 0 || agg.Messages.StdDev < 0 {
			t.Errorf("message moments %+v out of range", agg.Messages)
		}
		// No network faults: survivors are exactly the statically-alive set.
		if agg.SurvivorReliability.Mean != agg.Reliability.Mean {
			t.Errorf("survivor reliability %v != reliability %v under a clean network",
				agg.SurvivorReliability.Mean, agg.Reliability.Mean)
		}
		if base == nil {
			base = agg
		} else if *agg != *base {
			t.Errorf("workers=%d: aggregate diverged from workers=1", workers)
		}
	}
	// A single Run keeps Aggregate nil (no sweep to summarize).
	out, err := Run(context.Background(), spec, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Aggregate != nil {
		t.Errorf("single Run carries aggregate %T, want nil", out.Aggregate)
	}
}

// TestCompareCanceled: ErrCanceled propagates from a mid-grid cancel of
// the Compare spec (the satellite's explicit cancellation contract; the
// generic engine suite covers it too via allEngineSpecs).
func TestCompareCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	_, err := RunMany(ctx, compareSpec(), 10_000,
		WithSeed(7), WithWorkers(4), WithoutReports(),
		WithObserver(func(r Report) {
			if r.Run == 1 {
				cancel()
			}
		}))
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

// TestCampaignOnBaselineExecutor: a Campaign can target a baseline
// protocol through Config.Executor without supplying (ignored) paper
// Params — and grid axes, which sweep those ignored Params, are rejected.
func TestCampaignOnBaselineExecutor(t *testing.T) {
	spec := Campaign{
		Scenarios: []*Scenario{mustScenario("crash-wave")},
		Config: ScenarioRunConfig{
			Executor: BaselineExecutor(PbcastParams{N: 300, Fanout: 4, Rounds: 10, AliveRatio: 1}),
		},
	}
	out, err := RunMany(context.Background(), spec, 3, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Reports {
		det := r.Detail.(ScenarioReport)
		if det.Protocol != "pbcast" {
			t.Fatalf("report labeled %q, want pbcast", det.Protocol)
		}
	}
	if out.Reliability.Mean <= 0 {
		t.Errorf("baseline campaign delivered nothing")
	}

	grid := spec
	grid.Qs = []float64{0.6, 0.8}
	if _, err := RunMany(context.Background(), grid, 2); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("grid axes with a protocol executor: err %v, want ErrInvalidParams", err)
	}
}

// TestProtocolEngineRoundPacing: a protocol engine under a latency model
// paces its round ticks at the latency bound by default, so the round
// budget is not burned while the first hop is still airborne; an explicit
// sub-latency RoundInterval restores the pipelining behavior for study.
func TestProtocolEngineRoundPacing(t *testing.T) {
	p := PbcastParams{N: 500, Fanout: 3, Rounds: 8, AliveRatio: 1}
	net := NetConfig{Latency: UniformLatency(time.Millisecond, 20*time.Millisecond)}
	paced, err := RunMany(context.Background(), Pbcast{Params: p, Net: net}, 4, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	pipelined, err := RunMany(context.Background(),
		Pbcast{Params: p, Net: net, RoundInterval: time.Millisecond}, 4, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if paced.Reliability.Mean < 0.9 {
		t.Errorf("paced rounds delivered only %.3f; the default interval is not tracking the latency bound",
			paced.Reliability.Mean)
	}
	if pipelined.Reliability.Mean >= paced.Reliability.Mean {
		t.Errorf("1ms ticks under 1-20ms latency should pipeline and degrade: %.3f vs paced %.3f",
			pipelined.Reliability.Mean, paced.Reliability.Mean)
	}
}

// TestCompareValidation: malformed Compare specs fail with
// ErrInvalidParams before any cell runs.
func TestCompareValidation(t *testing.T) {
	ok := compareSpec()
	cases := []struct {
		name string
		spec Compare
		opts []Option
	}{
		{"no scenarios", Compare{Paper: true, Config: ok.Config}, nil},
		{"no protocols", Compare{Scenarios: ok.Scenarios, Config: ok.Config}, nil},
		{"nil protocol", Compare{Scenarios: ok.Scenarios, Protocols: []ProtocolSpec{nil}, Config: ok.Config}, nil},
		{"invalid baseline", Compare{Scenarios: ok.Scenarios,
			Protocols: []ProtocolSpec{PbcastParams{N: 1}}, Config: ok.Config}, nil},
		{"invalid paper params", Compare{Scenarios: ok.Scenarios, Paper: true,
			Config: ScenarioRunConfig{Params: Params{N: 1, Fanout: Poisson(4), AliveRatio: 1}}}, nil},
		{"WithRNG", ok, []Option{WithRNG(NewRNG(1)), WithRuns(2)}},
	}
	for _, tc := range cases {
		_, err := RunMany(context.Background(), tc.spec, 2, tc.opts...)
		if !errors.Is(err, ErrInvalidParams) {
			t.Errorf("%s: err %v, want ErrInvalidParams", tc.name, err)
		}
	}
	// Run without replication semantics is rejected: the grid needs a
	// seeds-per-cell count.
	if _, err := Run(context.Background(), compareSpec()); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("single Run: err %v, want ErrInvalidParams", err)
	}
}
