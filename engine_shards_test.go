package gossipkit

import (
	"context"
	"reflect"
	"testing"
	"time"

	"gossipkit/internal/simnet"
)

func shardedNetSpec() Network {
	return Network{
		Params: Params{N: 300, Fanout: Poisson(6), AliveRatio: 0.95, Source: 2},
		Net: NetConfig{
			Latency: simnet.UniformLatency{Lo: 2 * time.Millisecond, Hi: 9 * time.Millisecond},
		},
	}
}

// TestWithShardsDeterministicAndPinned: sharded runs are reproducible,
// compose with WithProbe and WithRuns, and agree with the single-kernel
// default on the mask-derived alive count.
func TestWithShardsDeterministicAndPinned(t *testing.T) {
	spec := shardedNetSpec()
	base, err := Run(context.Background(), spec, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(context.Background(), spec, WithSeed(5), WithShards(2), WithProbe(ProbeOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), spec, WithSeed(5), WithShards(2), WithProbe(ProbeOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sharded run not deterministic:\n a %+v\n b %+v", a, b)
	}
	ra, rb := a.Reports[0], base.Reports[0]
	if ra.AliveCount != rb.AliveCount {
		t.Errorf("sharded AliveCount %d, single-kernel %d — mask not invariant", ra.AliveCount, rb.AliveCount)
	}
	if ra.Metrics == nil || ra.Metrics.Totals.Sent == 0 {
		t.Errorf("sharded probe metrics missing: %+v", ra.Metrics)
	}

	many, err := RunMany(context.Background(), spec, 4, WithSeed(5), WithShards(2), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if many.Runs != 4 || many.Reliability.Mean == 0 {
		t.Errorf("sharded RunMany outcome %+v", many)
	}
}

func TestWithShardProgress(t *testing.T) {
	var calls int
	var lastEvents uint64
	var lastNow time.Duration
	_, err := Run(context.Background(), shardedNetSpec(), WithSeed(3), WithShards(4),
		WithShardProgress(func(events uint64, now time.Duration) {
			calls++
			if events < lastEvents || now < lastNow {
				t.Fatalf("progress went backwards: events %d->%d now %v->%v", lastEvents, events, lastNow, now)
			}
			lastEvents, lastNow = events, now
		}))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 || lastEvents == 0 {
		t.Fatalf("shard progress never fired (calls=%d events=%d)", calls, lastEvents)
	}
}
