package gossipkit_test

import (
	"context"
	"fmt"

	"gossipkit"
)

// Example reproduces the paper's headline numbers at its Fig. 6 operating
// point: mean fanout 4 with 10% failed members.
func Example() {
	p := gossipkit.Params{
		N:          2000,
		Fanout:     gossipkit.Poisson(4),
		AliveRatio: 0.9,
	}
	pred, _ := gossipkit.Predict(p)
	fmt.Printf("critical ratio: %.2f\n", pred.CriticalRatio)
	fmt.Printf("reliability:    %.4f\n", pred.Reliability)
	t, _ := gossipkit.ExecutionsForSuccess(p, 0.999)
	fmt.Printf("executions for 99.9%% success: %d\n", t)
	// Output:
	// critical ratio: 0.25
	// reliability:    0.9695
	// executions for 99.9% success: 2
}

// ExampleRun drives one execution of the general gossiping algorithm
// through the unified engine API.
func ExampleRun() {
	p := gossipkit.Params{
		N:          1000,
		Fanout:     gossipkit.FixedFanout(8),
		AliveRatio: 1,
	}
	out, _ := gossipkit.Run(context.Background(),
		gossipkit.MonteCarlo{Params: p, Metric: gossipkit.SourceReach},
		gossipkit.WithRNG(gossipkit.NewRNG(42)))
	res := out.Reports[0].Detail.(gossipkit.Result)
	fmt.Printf("reached over 99%%: %v\n", res.Reliability > 0.99)
	// Output:
	// reached over 99%: true
}

// ExampleRunMany estimates the paper's simulated reliability metric with
// 20 seeded replications on a worker pool — deterministic regardless of
// parallelism.
func ExampleRunMany() {
	p := gossipkit.Params{
		N:          1000,
		Fanout:     gossipkit.Poisson(4),
		AliveRatio: 0.9,
	}
	out, _ := gossipkit.RunMany(context.Background(),
		gossipkit.MonteCarlo{Params: p}, 20, gossipkit.WithSeed(42))
	pred, _ := gossipkit.Predict(p)
	est := out.Aggregate.(gossipkit.ComponentEstimate)
	fmt.Printf("within 2%% of model: %v\n",
		est.Mean > pred.Reliability-0.02 && est.Mean < pred.Reliability+0.02)
	// Output:
	// within 2% of model: true
}

// ExampleWithObserver streams per-run progress in deterministic run order,
// whatever the worker count.
func ExampleWithObserver() {
	p := gossipkit.Params{N: 500, Fanout: gossipkit.Poisson(5), AliveRatio: 0.9}
	gossipkit.RunMany(context.Background(), gossipkit.MonteCarlo{Params: p}, 3,
		gossipkit.WithSeed(7), gossipkit.WithWorkers(8),
		gossipkit.WithObserver(func(r gossipkit.Report) {
			fmt.Printf("run %d done\n", r.Run)
		}))
	// Output:
	// run 0 done
	// run 1 done
	// run 2 done
}

// ExampleFanoutForReliability shows the paper's design equation (Eq. 12):
// the mean fanout needed for a reliability target under failures.
func ExampleFanoutForReliability() {
	z, _ := gossipkit.FanoutForReliability(0.99, 0.8)
	fmt.Printf("z = %.2f\n", z)
	// Output:
	// z = 5.81
}

// ExampleCriticalRatio shows the fault-tolerance threshold (Eq. 10): with
// mean fanout 5, gossip survives as long as more than 1/5 of the members
// stay up.
func ExampleCriticalRatio() {
	fmt.Printf("q_c = %.2f\n", gossipkit.CriticalRatio(5))
	// Output:
	// q_c = 0.20
}

// ExamplePbcast compares the paper's single-shot gossip with the
// round-based Pbcast baseline through the same entry point.
func ExamplePbcast() {
	out, _ := gossipkit.RunMany(context.Background(), gossipkit.Pbcast{
		Params: gossipkit.PbcastParams{N: 1000, Fanout: 3, Rounds: 12, AliveRatio: 0.9},
	}, 10, gossipkit.WithSeed(1))
	fmt.Printf("pbcast delivers everyone: %v\n", out.Reliability.Mean > 0.999)
	// Output:
	// pbcast delivers everyone: true
}
