package gossipkit_test

import (
	"fmt"

	"gossipkit"
)

// Example reproduces the paper's headline numbers at its Fig. 6 operating
// point: mean fanout 4 with 10% failed members.
func Example() {
	p := gossipkit.Params{
		N:          2000,
		Fanout:     gossipkit.Poisson(4),
		AliveRatio: 0.9,
	}
	pred, _ := gossipkit.Predict(p)
	fmt.Printf("critical ratio: %.2f\n", pred.CriticalRatio)
	fmt.Printf("reliability:    %.4f\n", pred.Reliability)
	t, _ := gossipkit.ExecutionsForSuccess(p, 0.999)
	fmt.Printf("executions for 99.9%% success: %d\n", t)
	// Output:
	// critical ratio: 0.25
	// reliability:    0.9695
	// executions for 99.9% success: 2
}

// ExampleFanoutForReliability shows the paper's design equation (Eq. 12):
// the mean fanout needed for a reliability target under failures.
func ExampleFanoutForReliability() {
	z, _ := gossipkit.FanoutForReliability(0.99, 0.8)
	fmt.Printf("z = %.2f\n", z)
	// Output:
	// z = 5.81
}

// ExampleCriticalRatio shows the fault-tolerance threshold (Eq. 10): with
// mean fanout 5, gossip survives as long as more than 1/5 of the members
// stay up.
func ExampleCriticalRatio() {
	fmt.Printf("q_c = %.2f\n", gossipkit.CriticalRatio(5))
	// Output:
	// q_c = 0.20
}

// ExampleExecute runs one multicast and reports its delivery.
func ExampleExecute() {
	p := gossipkit.Params{
		N:          1000,
		Fanout:     gossipkit.FixedFanout(8),
		AliveRatio: 1,
	}
	res, _ := gossipkit.Execute(p, gossipkit.NewRNG(42))
	fmt.Printf("reached over 99%%: %v\n", res.Reliability > 0.99)
	// Output:
	// reached over 99%: true
}

// ExampleMeasureGiantComponent estimates the paper's simulated reliability
// metric with a fixed seed (deterministic regardless of parallelism).
func ExampleMeasureGiantComponent() {
	p := gossipkit.Params{
		N:          1000,
		Fanout:     gossipkit.Poisson(4),
		AliveRatio: 0.9,
	}
	est, _ := gossipkit.MeasureGiantComponent(p, 20, 42)
	pred, _ := gossipkit.Predict(p)
	fmt.Printf("within 2%% of model: %v\n", est.Mean > pred.Reliability-0.02 && est.Mean < pred.Reliability+0.02)
	// Output:
	// within 2% of model: true
}
