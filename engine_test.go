package gossipkit

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

func allEngineSpecs() []Engine {
	p := Params{N: 300, Fanout: Poisson(5), AliveRatio: 0.9}
	return []Engine{
		Analytic{Params: p},
		MonteCarlo{Params: p, Metric: GiantComponent},
		MonteCarlo{Params: p, Metric: SourceReach},
		Network{Params: p, Net: NetConfig{Latency: UniformLatency(time.Millisecond, 5*time.Millisecond)}},
		Campaign{Scenarios: DefaultScenarioSuite()[:2],
			Config: ScenarioRunConfig{Params: Params{N: 300, Fanout: Poisson(5), AliveRatio: 1}}},
		Success{Params: SuccessParams{Params: p, Executions: 3, Simulations: 2}},
		Pbcast{Params: PbcastParams{N: 300, Fanout: 3, Rounds: 8, AliveRatio: 0.9}},
		Lpbcast{Params: LpbcastParams{N: 300, Fanout: 3, Rounds: 8, BufferSize: 4, Events: 2, AliveRatio: 0.9, ViewCopies: 2}},
		AntiEntropy{Params: AntiEntropyParams{N: 300, Rounds: 10, Mode: PushPull, AliveRatio: 0.9}},
		RDG{Params: RDGParams{N: 300, Fanout: 3, PushRounds: 6, RecoveryRounds: 3, AliveRatio: 0.9, ViewCopies: 2, PayloadProb: 0.9}},
		LRG{Params: LRGParams{N: 300, Degree: 6, GossipProb: 0.8, RepairRounds: 3, AliveRatio: 0.9}},
		Flooding{Params: FloodingParams{N: 300, AliveRatio: 0.9}},
		Compare{Scenarios: DefaultScenarioSuite()[:2], Paper: true,
			Protocols: []ProtocolSpec{PbcastParams{N: 300, Fanout: 3, Rounds: 8, AliveRatio: 1}},
			Config:    ScenarioRunConfig{Params: Params{N: 300, Fanout: Poisson(5), AliveRatio: 1}}},
	}
}

// TestRunDrivesEveryEngine: the single entry point produces a sane Outcome
// from every backend.
func TestRunDrivesEveryEngine(t *testing.T) {
	for _, spec := range allEngineSpecs() {
		t.Run(spec.Name(), func(t *testing.T) {
			out, err := RunMany(context.Background(), spec, 3, WithSeed(42))
			if err != nil {
				t.Fatal(err)
			}
			if out.Engine != spec.Name() {
				t.Errorf("outcome engine %q", out.Engine)
			}
			if out.Runs < 1 || len(out.Reports) != out.Runs {
				t.Fatalf("runs %d, reports %d", out.Runs, len(out.Reports))
			}
			if out.Reliability.Mean <= 0 || out.Reliability.Mean > 1.0001 {
				t.Errorf("reliability mean %.4f out of range", out.Reliability.Mean)
			}
			for i, r := range out.Reports {
				if r.Run != i {
					t.Errorf("report %d has run index %d", i, r.Run)
				}
				if r.Detail == nil {
					t.Errorf("report %d has no detail", i)
				}
			}
		})
	}
}

// TestRunManyDeterministicAcrossWorkers: the Outcome and the observer
// sequence are identical for any worker count, on every engine.
func TestRunManyDeterministicAcrossWorkers(t *testing.T) {
	type seen struct {
		run  int
		rel  float64
		msgs int
	}
	for _, spec := range allEngineSpecs() {
		t.Run(spec.Name(), func(t *testing.T) {
			var base []seen
			var baseOut *Outcome
			for _, workers := range []int{1, 7} {
				var got []seen
				out, err := RunMany(context.Background(), spec, 6,
					WithSeed(99), WithWorkers(workers),
					WithObserver(func(r Report) {
						got = append(got, seen{r.Run, r.Reliability, r.MessagesSent})
					}))
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != out.Runs {
					t.Fatalf("workers=%d: %d observations for %d runs", workers, len(got), out.Runs)
				}
				for i, s := range got {
					if s.run != i {
						t.Fatalf("workers=%d: observation %d carried run %d; order must be deterministic", workers, i, s.run)
					}
				}
				if base == nil {
					base, baseOut = got, out
					continue
				}
				if !reflect.DeepEqual(got, base) {
					t.Errorf("workers=%d: observer stream diverged from workers=1", workers)
				}
				if baseOut.Reliability != out.Reliability || baseOut.Messages != out.Messages {
					t.Errorf("workers=%d: aggregate moments diverged from workers=1", workers)
				}
			}
		})
	}
}

// TestCancellationReturnsErrCanceled: a mid-sweep cancel aborts every
// engine promptly with ErrCanceled (matching context.Canceled too), and
// observers have seen only a clean prefix of runs.
func TestCancellationReturnsErrCanceled(t *testing.T) {
	for _, spec := range allEngineSpecs() {
		t.Run(spec.Name(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			var last int = -1
			start := time.Now()
			out, err := RunMany(ctx, spec, 10_000,
				WithSeed(7), WithWorkers(4),
				WithObserver(func(r Report) {
					if r.Run != last+1 {
						t.Errorf("observer jumped from run %d to %d", last, r.Run)
					}
					last = r.Run
					if r.Run == 2 {
						cancel()
					}
				}))
			if err == nil {
				t.Fatalf("10k-run sweep completed despite cancellation (outcome runs: %d)", out.Runs)
			}
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err %v does not match ErrCanceled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err %v does not match context.Canceled", err)
			}
			if out != nil {
				t.Error("canceled run returned a non-nil outcome")
			}
			if elapsed := time.Since(start); elapsed > 30*time.Second {
				t.Errorf("cancellation took %v, want prompt return", elapsed)
			}
		})
	}
}

// TestPreCanceledContext: every engine refuses to start under a canceled
// context.
func TestPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, spec := range allEngineSpecs() {
		observed := 0
		_, err := RunMany(ctx, spec, 5, WithObserver(func(Report) { observed++ }))
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: err %v", spec.Name(), err)
		}
		if observed != 0 {
			t.Errorf("%s: %d runs observed under a pre-canceled context", spec.Name(), observed)
		}
	}
}

// TestInvalidParamsSentinel: every engine wraps validation failures so
// errors.Is(err, ErrInvalidParams) holds, with the internal message kept.
func TestInvalidParamsSentinel(t *testing.T) {
	bad := []Engine{
		Analytic{Params: Params{N: 1, Fanout: Poisson(4), AliveRatio: 0.9}},
		MonteCarlo{Params: Params{N: 100, Fanout: nil, AliveRatio: 0.9}},
		Network{Params: Params{N: 100, Fanout: Poisson(4), AliveRatio: 1.5}},
		Campaign{Scenarios: nil, Config: ScenarioRunConfig{Params: Params{N: 100, Fanout: Poisson(4), AliveRatio: 1}}},
		Campaign{Scenarios: DefaultScenarioSuite()[:1],
			Config: ScenarioRunConfig{Params: Params{N: 1, Fanout: Poisson(4), AliveRatio: 1}}},
		Success{Params: SuccessParams{Params: Params{N: 100, Fanout: Poisson(4), AliveRatio: 0.9}, Executions: 0, Simulations: 1}},
		Pbcast{Params: PbcastParams{N: 100, Fanout: -1, Rounds: 3, AliveRatio: 0.9}},
		Lpbcast{Params: LpbcastParams{N: 100, Fanout: 3, Rounds: 3, BufferSize: 0, Events: 1, AliveRatio: 0.9}},
		AntiEntropy{Params: AntiEntropyParams{N: 100, Rounds: -1, Mode: Push, AliveRatio: 0.9}},
		RDG{Params: RDGParams{N: 100, Fanout: 0, PushRounds: 3, AliveRatio: 0.9}},
		LRG{Params: LRGParams{N: 100, Degree: 0, GossipProb: 0.5, AliveRatio: 0.9}},
		Flooding{Params: FloodingParams{N: 1, AliveRatio: 0.9}},
	}
	for _, spec := range bad {
		_, err := Run(context.Background(), spec)
		if err == nil {
			t.Errorf("%s: invalid spec ran", spec.Name())
			continue
		}
		if !errors.Is(err, ErrInvalidParams) {
			t.Errorf("%s: err %v does not match ErrInvalidParams", spec.Name(), err)
		}
	}
	// Grid axes and RNG misuse validate with the same sentinel.
	okCfg := ScenarioRunConfig{Params: Params{N: 100, Fanout: Poisson(4), AliveRatio: 1}}
	if _, err := RunMany(context.Background(), Campaign{Scenarios: DefaultScenarioSuite()[:1],
		Config: okCfg, Qs: []float64{1.5}}, 2); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("bad grid q: %v", err)
	}
	if _, err := RunMany(context.Background(), Campaign{Scenarios: DefaultScenarioSuite()[:1],
		Config: okCfg, Fanouts: []Distribution{nil}}, 2); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("nil grid fanout: %v", err)
	}
	if _, err := Run(context.Background(), Analytic{Params: Params{N: 100, Fanout: Poisson(4)}},
		WithRNG(NewRNG(1))); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("WithRNG on Analytic: %v", err)
	}
	// Driver-level validation uses the same sentinel.
	if _, err := RunMany(context.Background(), Analytic{Params: Params{N: 100, Fanout: Poisson(4)}}, 0); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("zero runs: %v", err)
	}
	if _, err := Run(context.Background(), nil); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("nil spec: %v", err)
	}
	if _, err := RunMany(context.Background(), Analytic{Params: Params{N: 100, Fanout: Poisson(4)}}, 3, WithRNG(NewRNG(1))); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("WithRNG on RunMany: %v", err)
	}
}

// TestShimEquivalence: the deprecated shims reproduce the direct internal
// results exactly — Execute/ExecuteOnNetwork consume the caller's RNG
// stream in place, RunScenario uses the seed verbatim.
func TestShimEquivalence(t *testing.T) {
	p := Params{N: 400, Fanout: Poisson(5), AliveRatio: 0.9}

	direct, err := Run(context.Background(), MonteCarlo{Params: p, Metric: SourceReach}, WithRNG(NewRNG(11)))
	if err != nil {
		t.Fatal(err)
	}
	viaShim, err := Execute(p, NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if direct.Reports[0].Detail.(Result) != viaShim {
		t.Error("Execute shim diverged from engine run")
	}

	cfg := NetConfig{Latency: UniformLatency(time.Millisecond, 10*time.Millisecond)}
	a, err := ExecuteOnNetwork(p, cfg, NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), Network{Params: p, Net: cfg}, WithRNG(NewRNG(3)))
	if err != nil {
		t.Fatal(err)
	}
	if a != b.Reports[0].Detail.(NetResult) {
		t.Error("ExecuteOnNetwork shim diverged from engine run")
	}

	s := DefaultScenarioSuite()[1]
	scfg := ScenarioRunConfig{Params: Params{N: 300, Fanout: Poisson(5), AliveRatio: 1}}
	r1, err := RunScenario(s, scfg, 77)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(context.Background(), Campaign{Scenarios: []*Scenario{s}, Config: scfg}, WithSeed(77))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != out.Reports[0].Detail.(ScenarioReport) {
		t.Error("RunScenario shim diverged from engine run")
	}
	if r1.Seed != 77 {
		t.Errorf("single scenario run used seed %d, want the seed verbatim", r1.Seed)
	}
}

// TestNetworkEngineMatchesSingleRuns: RunMany's internally pooled arenas
// must reproduce what fresh per-run executions produce (arena reuse is
// result-neutral), with run i on the RNG stream split at i.
func TestNetworkEngineMatchesSingleRuns(t *testing.T) {
	p := Params{N: 500, Fanout: Poisson(5), AliveRatio: 0.9}
	cfg := NetConfig{Latency: UniformLatency(time.Millisecond, 8*time.Millisecond)}
	const runs = 5
	out, err := RunMany(context.Background(), Network{Params: p, Net: cfg}, runs,
		WithSeed(123), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	root := NewRNG(123)
	for i := 0; i < runs; i++ {
		want, err := ExecuteOnNetwork(p, cfg, root.Split(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Reports[i].Detail.(NetResult); got != want {
			t.Errorf("run %d: pooled-arena result diverged from fresh run", i)
		}
	}
}

// TestCampaignGridAggregate: grid axes produce a ScenarioGridResult whose
// cells match the deprecated grid sweep byte for byte.
func TestCampaignGridAggregate(t *testing.T) {
	scenarios := DefaultScenarioSuite()[:2]
	cfg := ScenarioRunConfig{Params: Params{N: 200, Fanout: Poisson(5), AliveRatio: 1}}
	qs := []float64{0.8, 1}
	fans := []Distribution{Poisson(4), Poisson(6)}
	out, err := RunMany(context.Background(),
		Campaign{Scenarios: scenarios, Config: cfg, Qs: qs, Fanouts: fans},
		2, WithSeed(5), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	grid, ok := out.Aggregate.(*ScenarioGridResult)
	if !ok {
		t.Fatalf("aggregate is %T, want *ScenarioGridResult", out.Aggregate)
	}
	if len(grid.Cells) != 2*2*2 {
		t.Fatalf("grid has %d cells", len(grid.Cells))
	}
	if out.Runs != 2*2*2*2 {
		t.Fatalf("outcome saw %d runs, want one per grid execution", out.Runs)
	}
	old, err := SweepScenarioGrid(scenarios, ScenarioGridConfig{
		Run: cfg, Qs: qs, Fanouts: fans, Seeds: 2, BaseSeed: 5, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(grid, old) {
		t.Error("engine grid diverged from deprecated SweepScenarioGrid")
	}
}

// TestSuccessEngineSemantics: Run executes the spec's Simulations count;
// RunMany overrides it; the aggregate matches the deprecated RunSuccess.
func TestSuccessEngineSemantics(t *testing.T) {
	p := SuccessParams{
		Params:      Params{N: 300, Fanout: Poisson(5), AliveRatio: 0.9},
		Executions:  4,
		Simulations: 5,
	}
	out, err := Run(context.Background(), Success{Params: p}, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if out.Runs != 5 {
		t.Errorf("Run emitted %d simulations, want the spec's 5", out.Runs)
	}
	agg := out.Aggregate.(SuccessOutcome)
	old, err := RunSuccess(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if agg.SuccessRate != old.SuccessRate ||
		agg.MeanExecutionReliability != old.MeanExecutionReliability ||
		agg.ReceiptHistogram.Total() != old.ReceiptHistogram.Total() {
		t.Error("Success engine aggregate diverged from RunSuccess")
	}
	many, err := RunMany(context.Background(), Success{Params: p}, 3, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if many.Runs != 3 {
		t.Errorf("RunMany(3) emitted %d simulations", many.Runs)
	}
}

// TestWithoutReports: aggregate-only sweeps skip Report retention while
// moments, aggregates, and observers stay intact.
func TestWithoutReports(t *testing.T) {
	p := Params{N: 300, Fanout: Poisson(5), AliveRatio: 0.9}
	observed := 0
	lean, err := RunMany(context.Background(), MonteCarlo{Params: p}, 8,
		WithSeed(4), WithoutReports(), WithObserver(func(r Report) { observed++ }))
	if err != nil {
		t.Fatal(err)
	}
	if lean.Reports != nil {
		t.Errorf("WithoutReports retained %d reports", len(lean.Reports))
	}
	if lean.Runs != 8 || observed != 8 {
		t.Errorf("runs %d, observed %d", lean.Runs, observed)
	}
	full, err := RunMany(context.Background(), MonteCarlo{Params: p}, 8, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if lean.Reliability != full.Reliability || !reflect.DeepEqual(lean.Aggregate, full.Aggregate) {
		t.Error("WithoutReports changed the aggregate")
	}
}

// TestAnalyticAgainstMonteCarlo ties the two cheapest engines together
// through the unified API, the way the README quick start does.
func TestAnalyticAgainstMonteCarlo(t *testing.T) {
	p := Params{N: 2000, Fanout: Poisson(4), AliveRatio: 0.9}
	an, err := Run(context.Background(), Analytic{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	pred := an.Aggregate.(Prediction)
	mc, err := RunMany(context.Background(), MonteCarlo{Params: p}, 20, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if diff := mc.Reliability.Mean - pred.Reliability; diff > 0.03 || diff < -0.03 {
		t.Errorf("Monte-Carlo %.4f vs analytic %.4f", mc.Reliability.Mean, pred.Reliability)
	}
}
