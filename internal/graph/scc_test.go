package graph

import (
	"math"
	"testing"

	"gossipkit/internal/dist"
	"gossipkit/internal/genfunc"
	"gossipkit/internal/xrand"
)

func TestLargestSCCSimple(t *testing.T) {
	// 0→1→2→0 is a 3-cycle; 3→4 is acyclic.
	g := NewDigraph(5)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 0)
	g.AddArc(3, 4)
	rep, size := LargestSCC(g, nil)
	if size != 3 {
		t.Fatalf("largest SCC size = %d, want 3", size)
	}
	if rep < 0 || rep > 2 {
		t.Fatalf("rep %d not in the cycle", rep)
	}
}

func TestLargestSCCAllSingletons(t *testing.T) {
	g := NewDigraph(4)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 3)
	_, size := LargestSCC(g, nil)
	if size != 1 {
		t.Errorf("DAG largest SCC = %d, want 1", size)
	}
}

func TestLargestSCCEmptyAndMasked(t *testing.T) {
	g := NewDigraph(0)
	rep, size := LargestSCC(g, nil)
	if rep != -1 || size != 0 {
		t.Errorf("empty graph: rep=%d size=%d", rep, size)
	}
	g2 := NewDigraph(3)
	g2.AddArc(0, 1)
	g2.AddArc(1, 0)
	// Masking out node 1 breaks the 2-cycle.
	_, size = LargestSCC(g2, []bool{true, false, true})
	if size != 1 {
		t.Errorf("masked SCC size = %d, want 1", size)
	}
}

func TestLargestSCCTwoCycles(t *testing.T) {
	g := NewDigraph(7)
	// 2-cycle {0,1} and 4-cycle {2,3,4,5}; 6 isolated.
	g.AddArc(0, 1)
	g.AddArc(1, 0)
	g.AddArc(2, 3)
	g.AddArc(3, 4)
	g.AddArc(4, 5)
	g.AddArc(5, 2)
	rep, size := LargestSCC(g, nil)
	if size != 4 || rep < 2 || rep > 5 {
		t.Errorf("rep=%d size=%d, want size 4 in {2..5}", rep, size)
	}
}

func TestLargestSCCDeepPathNoOverflow(t *testing.T) {
	// A long path plus back edge forms one huge SCC; the iterative
	// Tarjan must handle depth 200k without stack overflow.
	const n = 200000
	g := NewDigraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddArc(i, i+1)
	}
	g.AddArc(n-1, 0)
	_, size := LargestSCC(g, nil)
	if size != n {
		t.Errorf("giant cycle SCC = %d, want %d", size, n)
	}
}

func TestFiltered(t *testing.T) {
	g := NewDigraph(4)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 3)
	f := Filtered(g, []bool{true, true, false, true})
	if f.Arcs() != 1 {
		t.Errorf("filtered arcs = %d, want 1 (0→1)", f.Arcs())
	}
	if Filtered(g, nil) != g {
		t.Error("nil mask must return the original graph")
	}
}

func TestLargestOutComponentDAG(t *testing.T) {
	// Star out of node 0: out-component from any probe containing 0
	// covers everything.
	g := NewDigraph(5)
	for i := 1; i < 5; i++ {
		g.AddArc(0, i)
	}
	got := LargestOutComponent(g, nil, []int{0})
	if got != 5 {
		t.Errorf("out-component = %d, want 5", got)
	}
	// Probing only a leaf finds just itself.
	got = LargestOutComponent(g, nil, []int{3})
	if got != 1 {
		t.Errorf("leaf probe = %d, want 1", got)
	}
}

func TestLargestOutComponentUsesSCC(t *testing.T) {
	// Cycle {0,1,2} feeding into 3→4: out-component = 5, regardless of
	// probes.
	g := NewDigraph(6)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 0)
	g.AddArc(2, 3)
	g.AddArc(3, 4)
	// node 5 isolated
	got := LargestOutComponent(g, nil, []int{5})
	if got != 5 {
		t.Errorf("out-component = %d, want 5", got)
	}
}

func TestGiantOutComponentMatchesEq11(t *testing.T) {
	// The bridge test for the figure semantics: the giant out-component
	// of a directed gossip graph with Poisson(z) fanout over alive
	// fraction q must match S = 1 − e^{−zqS}.
	const n = 20000
	z, q := 4.0, 0.9
	r := xrand.New(5)
	p := dist.NewPoisson(z)
	active := make([]bool, n)
	alive := 0
	for i := range active {
		if r.Bool(q) {
			active[i] = true
			alive++
		}
	}
	g := NewDigraph(n)
	buf := make([]int, 0, 16)
	for u := 0; u < n; u++ {
		if !active[u] {
			continue
		}
		f := p.Sample(r)
		buf = r.SampleExcluding(buf, n, f, u)
		for _, v := range buf {
			if active[v] {
				g.AddArc(u, v)
			}
		}
	}
	probes := make([]int, 64)
	for i := range probes {
		probes[i] = r.Intn(n)
	}
	giant := LargestOutComponent(g, nil, probes)
	got := float64(giant) / float64(alive)
	want, err := genfunc.PoissonReliability(z, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.01 {
		t.Errorf("giant out-component %.4f, Eq.11 %.4f", got, want)
	}
}

func BenchmarkLargestSCCGossip5000(b *testing.B) {
	r := xrand.New(1)
	g := GossipGraph(5000, dist.NewPoisson(4), r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LargestSCC(g, nil)
	}
}
