package graph

import (
	"math"
	"testing"
	"testing/quick"

	"gossipkit/internal/dist"
	"gossipkit/internal/genfunc"
	"gossipkit/internal/xrand"
)

func path(n int) *Digraph {
	g := NewDigraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddArc(i, i+1)
	}
	return g
}

func TestDigraphBasics(t *testing.T) {
	g := NewDigraph(3)
	if g.N() != 3 || g.Arcs() != 0 {
		t.Fatalf("fresh graph: N=%d arcs=%d", g.N(), g.Arcs())
	}
	g.AddArc(0, 1)
	g.AddArc(0, 2)
	g.AddArc(1, 2)
	if g.Arcs() != 3 {
		t.Errorf("arcs = %d, want 3", g.Arcs())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(2) != 0 {
		t.Errorf("out-degrees wrong: %d %d", g.OutDegree(0), g.OutDegree(2))
	}
	if len(g.Out(1)) != 1 || g.Out(1)[0] != 2 {
		t.Errorf("Out(1) = %v", g.Out(1))
	}
}

func TestNewDigraphNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDigraph(-1)
}

func TestBFSPath(t *testing.T) {
	g := path(10)
	b := NewBFS(10)
	if got := b.Reachable(g, 0, nil); got != 10 {
		t.Errorf("reach from head = %d, want 10", got)
	}
	if got := b.Reachable(g, 5, nil); got != 5 {
		t.Errorf("reach from middle = %d, want 5", got)
	}
	if got := b.Reachable(g, 9, nil); got != 1 {
		t.Errorf("reach from tail = %d, want 1", got)
	}
}

func TestBFSReuseAcrossRuns(t *testing.T) {
	g := path(100)
	b := NewBFS(100)
	// Interleave searches; epochs must isolate them.
	for i := 0; i < 50; i++ {
		if got := b.Reachable(g, i, nil); got != 100-i {
			t.Fatalf("run %d: reach = %d, want %d", i, got, 100-i)
		}
	}
}

func TestBFSVisitCallback(t *testing.T) {
	g := NewDigraph(4)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	// node 3 unreachable
	b := NewBFS(4)
	var seen []int
	b.Reachable(g, 0, func(n int) { seen = append(seen, n) })
	if len(seen) != 3 {
		t.Fatalf("visited %v", seen)
	}
	if seen[0] != 0 {
		t.Errorf("BFS must visit source first: %v", seen)
	}
}

func TestBFSCycle(t *testing.T) {
	g := NewDigraph(3)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 0)
	b := NewBFS(3)
	if got := b.Reachable(g, 0, nil); got != 3 {
		t.Errorf("cycle reach = %d", got)
	}
}

func TestBFSSelfLoopAndParallel(t *testing.T) {
	g := NewDigraph(2)
	g.AddArc(0, 0)
	g.AddArc(0, 1)
	g.AddArc(0, 1)
	b := NewBFS(2)
	if got := b.Reachable(g, 0, nil); got != 2 {
		t.Errorf("reach = %d, want 2", got)
	}
}

func TestReachableMask(t *testing.T) {
	g := path(5)
	b := NewBFS(5)
	mask := make([]bool, 5)
	if got := b.ReachableMask(g, 2, mask); got != 3 {
		t.Errorf("reach = %d", got)
	}
	want := []bool{false, false, true, true, true}
	for i := range want {
		if mask[i] != want[i] {
			t.Errorf("mask[%d] = %v, want %v", i, mask[i], want[i])
		}
	}
	// Rerun from another source: mask must be reset.
	b.ReachableMask(g, 4, mask)
	if mask[2] || !mask[4] {
		t.Error("mask not reset between runs")
	}
}

func TestBFSSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewBFS(3).Reachable(NewDigraph(4), 0, nil)
}

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Components() != 5 {
		t.Fatalf("fresh components = %d", uf.Components())
	}
	if !uf.Union(0, 1) {
		t.Error("first union reported no-op")
	}
	if uf.Union(1, 0) {
		t.Error("repeat union reported merge")
	}
	uf.Union(2, 3)
	uf.Union(0, 2)
	if uf.Components() != 2 {
		t.Errorf("components = %d, want 2", uf.Components())
	}
	if !uf.Connected(1, 3) {
		t.Error("1 and 3 should be connected")
	}
	if uf.Connected(0, 4) {
		t.Error("0 and 4 should not be connected")
	}
	if uf.ComponentSize(3) != 4 {
		t.Errorf("component size = %d, want 4", uf.ComponentSize(3))
	}
	size, rep := uf.LargestComponent()
	if size != 4 || !uf.Connected(rep, 0) {
		t.Errorf("largest = (%d, %d)", size, rep)
	}
}

func TestUnionFindQuickProperty(t *testing.T) {
	// Union-find connectivity must match a naive label array.
	f := func(ops []uint16) bool {
		const n = 32
		uf := NewUnionFind(n)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		for _, op := range ops {
			x, y := int(op>>8)%n, int(op&0xff)%n
			uf.Union(x, y)
			lx, ly := labels[x], labels[y]
			if lx != ly {
				for i := range labels {
					if labels[i] == ly {
						labels[i] = lx
					}
				}
			}
		}
		comps := map[int]int{}
		for i := 0; i < n; i++ {
			comps[labels[i]]++
			for j := 0; j < n; j++ {
				if (labels[i] == labels[j]) != uf.Connected(i, j) {
					return false
				}
			}
		}
		if uf.Components() != len(comps) {
			return false
		}
		for i := 0; i < n; i++ {
			if uf.ComponentSize(i) != comps[labels[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUndirectedComponentsSimple(t *testing.T) {
	g := NewDigraph(6)
	g.AddArc(0, 1) // directed arc counts as undirected edge
	g.AddArc(2, 1)
	g.AddArc(3, 4)
	// node 5 isolated
	st := UndirectedComponents(g, nil)
	if st.Count != 3 {
		t.Errorf("components = %d, want 3", st.Count)
	}
	if st.Largest != 3 || st.SecondLargest != 2 {
		t.Errorf("largest/second = %d/%d, want 3/2", st.Largest, st.SecondLargest)
	}
	// Mean experienced size: (3*3 + 2*2 + 1*1)/6 = 14/6.
	if math.Abs(st.MeanSize-14.0/6) > 1e-12 {
		t.Errorf("mean size = %g, want %g", st.MeanSize, 14.0/6)
	}
}

func TestUndirectedComponentsWithMask(t *testing.T) {
	g := NewDigraph(4)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 3)
	active := []bool{true, false, true, true}
	st := UndirectedComponents(g, active)
	if st.Nodes != 3 {
		t.Errorf("active nodes = %d", st.Nodes)
	}
	// Removing node 1 disconnects 0 from {2,3}.
	if st.Count != 2 || st.Largest != 2 {
		t.Errorf("count=%d largest=%d, want 2/2", st.Count, st.Largest)
	}
}

func TestUndirectedComponentsEmpty(t *testing.T) {
	g := NewDigraph(3)
	st := UndirectedComponents(g, []bool{false, false, false})
	if st.Nodes != 0 || st.Count != 0 || st.Largest != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestGossipGraphDegrees(t *testing.T) {
	r := xrand.New(101)
	n := 2000
	p := dist.NewPoisson(4)
	g := GossipGraph(n, p, r)
	// Mean out-degree must approximate the fanout mean.
	mean := float64(g.Arcs()) / float64(n)
	if math.Abs(mean-4) > 0.2 {
		t.Errorf("mean out-degree %.3f, want ~4", mean)
	}
	// No self-targets, no duplicate targets per node.
	for u := 0; u < n; u++ {
		seen := map[int32]bool{}
		for _, v := range g.Out(u) {
			if int(v) == u {
				t.Fatalf("self arc at %d", u)
			}
			if seen[v] {
				t.Fatalf("duplicate target %d from %d", v, u)
			}
			seen[v] = true
		}
	}
}

func TestGossipGraphFixedFanout(t *testing.T) {
	r := xrand.New(7)
	g := GossipGraph(50, dist.NewFixed(3), r)
	for u := 0; u < 50; u++ {
		if g.OutDegree(u) != 3 {
			t.Fatalf("node %d out-degree %d, want 3", u, g.OutDegree(u))
		}
	}
}

func TestGossipGraphFanoutExceedsGroup(t *testing.T) {
	r := xrand.New(9)
	g := GossipGraph(5, dist.NewFixed(100), r)
	for u := 0; u < 5; u++ {
		if g.OutDegree(u) != 4 {
			t.Fatalf("node %d out-degree %d, want 4 (all others)", u, g.OutDegree(u))
		}
	}
}

func TestConfigurationModelDegreesPreserved(t *testing.T) {
	r := xrand.New(11)
	degrees := []int{3, 2, 2, 1, 0, 4}
	g := ConfigurationModel(degrees, r)
	// Total degree is even (12) → arcs = 12 (each edge stored twice).
	if g.Arcs() != 12 {
		t.Errorf("arcs = %d, want 12", g.Arcs())
	}
	for i, d := range degrees {
		if g.OutDegree(i) != d {
			t.Errorf("node %d degree %d, want %d", i, g.OutDegree(i), d)
		}
	}
}

func TestConfigurationModelOddTotal(t *testing.T) {
	r := xrand.New(13)
	g := ConfigurationModel([]int{1, 1, 1}, r)
	// One stub dropped: exactly one edge = two arcs.
	if g.Arcs() != 2 {
		t.Errorf("arcs = %d, want 2", g.Arcs())
	}
}

func TestConfigurationModelGiantMatchesTheory(t *testing.T) {
	// The empirical giant component of a Poisson configuration model must
	// match the generating-function prediction. This is the key bridge
	// between internal/graph and internal/genfunc.
	const n = 30000
	z := 3.0
	r := xrand.New(17)
	p := dist.NewPoisson(z)
	degrees := DegreeSequence(n, p, r)
	g := ConfigurationModel(degrees, r)
	st := UndirectedComponents(g, nil)
	want, err := genfunc.New(p).Reliability(1)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(st.Largest) / float64(n)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("giant fraction %.4f, theory %.4f", got, want)
	}
	// Second-largest must be far smaller (paper's phase-transition point:
	// other components are O(n^{2/3}) at most).
	if st.SecondLargest > st.Largest/10 {
		t.Errorf("second largest %d vs largest %d", st.SecondLargest, st.Largest)
	}
}

func TestConfigurationModelSitePercolation(t *testing.T) {
	// Deleting each node independently with prob 1-q must reproduce the
	// Callaway site-percolation reliability (normalized by alive nodes).
	const n = 30000
	z, q := 4.0, 0.6
	r := xrand.New(19)
	p := dist.NewPoisson(z)
	g := ConfigurationModel(DegreeSequence(n, p, r), r)
	active := make([]bool, n)
	alive := 0
	for i := range active {
		if r.Bool(q) {
			active[i] = true
			alive++
		}
	}
	st := UndirectedComponents(g, active)
	want, err := genfunc.New(p).Reliability(q)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(st.Largest) / float64(alive)
	if math.Abs(got-want) > 0.015 {
		t.Errorf("site-percolated giant %.4f, theory %.4f", got, want)
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	r := xrand.New(23)
	n, prob := 300, 0.05
	g := ErdosRenyi(n, prob, r)
	wantEdges := float64(n*(n-1)/2) * prob
	gotEdges := float64(g.Arcs()) / 2
	if math.Abs(gotEdges-wantEdges) > 5*math.Sqrt(wantEdges) {
		t.Errorf("edges = %g, want ~%g", gotEdges, wantEdges)
	}
}

func TestDegreeSequenceLengthAndLaw(t *testing.T) {
	r := xrand.New(29)
	p := dist.NewFixed(7)
	ds := DegreeSequence(100, p, r)
	if len(ds) != 100 {
		t.Fatalf("length %d", len(ds))
	}
	for _, d := range ds {
		if d != 7 {
			t.Fatal("Fixed(7) degree sequence has wrong entries")
		}
	}
}

func BenchmarkGossipGraph1000(b *testing.B) {
	r := xrand.New(1)
	p := dist.NewPoisson(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = GossipGraph(1000, p, r)
	}
}

func BenchmarkBFSReach5000(b *testing.B) {
	r := xrand.New(1)
	g := GossipGraph(5000, dist.NewPoisson(4), r)
	bfs := NewBFS(5000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bfs.Reachable(g, 0, nil)
	}
}

func BenchmarkUndirectedComponents(b *testing.B) {
	r := xrand.New(1)
	g := GossipGraph(5000, dist.NewPoisson(4), r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = UndirectedComponents(g, nil)
	}
}

// TestGossipGraphExactDegrees pins GossipGraph's degree semantics: targets
// come from SampleExcluding (without replacement, remapped around u), so
// node u's out-neighborhood has no duplicates, never contains u, and
// OutDegree(u) is exactly min(f_u, n−1) for the fanout draw f_u — no
// dedup pass needed by any consumer. The fanout draws are replayed on an
// identical stream to recover each f_u.
func TestGossipGraphExactDegrees(t *testing.T) {
	for _, n := range []int{2, 5, 50, 400} {
		for seed := uint64(0); seed < 25; seed++ {
			p := dist.NewPoisson(4.0)
			g := GossipGraph(n, p, xrand.New(seed))

			// Replay the generator's stream to recover the f_u sequence:
			// GossipGraph draws Sample then SampleExcluding per node, in
			// node order, on the one stream.
			replay := xrand.New(seed)
			buf := make([]int, 0, 16)
			for u := 0; u < n; u++ {
				f := p.Sample(replay)
				buf = replay.SampleExcluding(buf, n, f, u)
				if want := min(f, n-1); g.OutDegree(u) != want {
					t.Fatalf("n=%d seed=%d: OutDegree(%d) = %d, want min(f=%d, n-1) = %d",
						n, seed, u, g.OutDegree(u), f, want)
				}
				seen := make(map[int32]bool)
				for _, v := range g.Out(u) {
					if int(v) == u {
						t.Fatalf("n=%d seed=%d: node %d targets itself", n, seed, u)
					}
					if v < 0 || int(v) >= n {
						t.Fatalf("n=%d seed=%d: node %d targets out-of-range %d", n, seed, u, v)
					}
					if seen[v] {
						t.Fatalf("n=%d seed=%d: node %d targets %d twice", n, seed, u, v)
					}
					seen[v] = true
				}
			}
		}
	}
}
