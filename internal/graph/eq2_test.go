package graph

import (
	"math"
	"testing"

	"gossipkit/internal/dist"
	"gossipkit/internal/genfunc"
	"gossipkit/internal/xrand"
)

// TestMeanComponentSizeMatchesEq2 bridges the paper's Eq. 2 to an
// empirical measurement: in the subcritical regime, the mean size of the
// component containing a random occupied node of a site-percolated
// configuration-model graph must equal ⟨s⟩/q = 1 + q·G0'(1)/(1 − q·G1'(1))
// (the paper's ⟨s⟩ averages over ALL nodes, occupied or not, hence the /q).
func TestMeanComponentSizeMatchesEq2(t *testing.T) {
	cases := []struct {
		z, q float64
	}{
		{2.0, 0.30}, // qz = 0.6
		{4.0, 0.15}, // qz = 0.6
		{1.5, 0.40}, // qz = 0.6
		{2.0, 0.15}, // qz = 0.3, deep subcritical
	}
	for _, c := range cases {
		p := dist.NewPoisson(c.z)
		m := genfunc.New(p)
		want, err := m.MeanComponentSize(c.q)
		if err != nil {
			t.Fatal(err)
		}
		wantOccupied := want / c.q

		const n = 60000
		r := xrand.New(uint64(1000 * c.z * (1 + c.q)))
		g := ConfigurationModel(DegreeSequence(n, p, r), r)
		active := make([]bool, n)
		for i := range active {
			active[i] = r.Bool(c.q)
		}
		st := UndirectedComponents(g, active)
		if math.Abs(st.MeanSize-wantOccupied)/wantOccupied > 0.06 {
			t.Errorf("z=%g q=%g: empirical mean size %.4f, Eq.2/q = %.4f",
				c.z, c.q, st.MeanSize, wantOccupied)
		}
	}
}

// TestMeanComponentSizeGrowsTowardCritical verifies the divergence that
// defines the phase transition (paper §3): approaching q_c from below the
// empirical mean component size blows up.
func TestMeanComponentSizeGrowsTowardCritical(t *testing.T) {
	const n = 60000
	z := 2.5
	p := dist.NewPoisson(z)
	qc := 1 / z
	prev := 0.0
	for _, frac := range []float64{0.4, 0.7, 0.9} {
		q := qc * frac
		r := xrand.New(uint64(77 + 1000*frac))
		g := ConfigurationModel(DegreeSequence(n, p, r), r)
		active := make([]bool, n)
		for i := range active {
			active[i] = r.Bool(q)
		}
		st := UndirectedComponents(g, active)
		if st.MeanSize <= prev {
			t.Errorf("mean size not growing toward qc: %.3f at q=%.3f (prev %.3f)",
				st.MeanSize, q, prev)
		}
		prev = st.MeanSize
	}
	if prev < 4 {
		t.Errorf("mean size near 0.9·qc = %.3f, expected noticeably large", prev)
	}
}
