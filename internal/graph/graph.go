// Package graph provides the graph machinery behind both sides of the
// reproduction: empirical giant components for validating the
// generating-function model, and the "gossip graph" view of a protocol run
// (node u drew node v as a gossip target ⇒ arc u→v).
//
// The representations are deliberately simple and allocation-conscious:
// a mutable adjacency builder (Digraph) for generators, a breadth-first
// searcher with reusable buffers for reachability, and a weighted union–find
// for undirected component statistics on large instances.
package graph

import (
	"fmt"

	"gossipkit/internal/dist"
	"gossipkit/internal/xrand"
)

// Digraph is a directed graph over nodes 0..N-1 stored as adjacency lists.
// The zero value is an empty graph with no nodes; use NewDigraph.
type Digraph struct {
	adj  [][]int32
	arcs int
}

// NewDigraph returns an empty digraph with n nodes.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Digraph{adj: make([][]int32, n)}
}

// N returns the number of nodes.
func (g *Digraph) N() int { return len(g.adj) }

// Arcs returns the number of directed arcs.
func (g *Digraph) Arcs() int { return g.arcs }

// AddArc adds the arc u→v. Parallel arcs and self-loops are permitted at
// this level: ConfigurationModel generates multigraphs that need them.
// GossipGraph and the topology overlay generators never produce either —
// their samplers draw distinct non-self targets — so their degree counts
// are exact (see TestGossipGraphExactDegrees).
func (g *Digraph) AddArc(u, v int) {
	g.adj[u] = append(g.adj[u], int32(v))
	g.arcs++
}

// Out returns the adjacency list of u. The returned slice is owned by the
// graph and must not be modified.
func (g *Digraph) Out(u int) []int32 { return g.adj[u] }

// OutDegree returns the out-degree of u.
func (g *Digraph) OutDegree(u int) int { return len(g.adj[u]) }

// BFS is a reusable breadth-first searcher over a Digraph. A single BFS
// value can be reused across many searches on graphs of the same size
// without reallocating, which matters in Monte-Carlo loops.
type BFS struct {
	visited []int32 // epoch marks, avoids clearing between runs
	epoch   int32
	queue   []int32
}

// NewBFS returns a searcher for graphs with n nodes.
func NewBFS(n int) *BFS {
	return &BFS{
		visited: make([]int32, n),
		queue:   make([]int32, 0, n),
	}
}

// Reachable traverses g from src following arcs forward and returns the
// number of reached nodes (including src). If visit is non-nil it is called
// once per reached node.
func (b *BFS) Reachable(g *Digraph, src int, visit func(node int)) int {
	if g.N() != len(b.visited) {
		panic("graph: BFS size mismatch")
	}
	b.epoch++
	epoch := b.epoch
	b.queue = b.queue[:0]
	b.visited[src] = epoch
	b.queue = append(b.queue, int32(src))
	count := 0
	for head := 0; head < len(b.queue); head++ {
		u := b.queue[head]
		count++
		if visit != nil {
			visit(int(u))
		}
		for _, v := range g.adj[u] {
			if b.visited[v] != epoch {
				b.visited[v] = epoch
				b.queue = append(b.queue, v)
			}
		}
	}
	return count
}

// ReachableMask is like Reachable but records reached nodes in mask, which
// must have length g.N(). Entries for reached nodes are set true; other
// entries are set false.
func (b *BFS) ReachableMask(g *Digraph, src int, mask []bool) int {
	for i := range mask {
		mask[i] = false
	}
	return b.Reachable(g, src, func(n int) { mask[n] = true })
}

// ---------------------------------------------------------------------------
// Union-Find

// UnionFind is a weighted quick-union structure with path halving, used for
// undirected component statistics.
type UnionFind struct {
	parent []int32
	size   []int32
	comps  int
}

// NewUnionFind returns a union-find over n singleton components.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		size:   make([]int32, n),
		comps:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// Find returns the component representative of x.
func (uf *UnionFind) Find(x int) int {
	p := int32(x)
	for uf.parent[p] != p {
		uf.parent[p] = uf.parent[uf.parent[p]] // path halving
		p = uf.parent[p]
	}
	return int(p)
}

// Union merges the components of x and y; it returns true if they were
// previously distinct.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := int32(uf.Find(x)), int32(uf.Find(y))
	if rx == ry {
		return false
	}
	if uf.size[rx] < uf.size[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	uf.size[rx] += uf.size[ry]
	uf.comps--
	return true
}

// Connected reports whether x and y are in the same component.
func (uf *UnionFind) Connected(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// ComponentSize returns the size of x's component.
func (uf *UnionFind) ComponentSize(x int) int { return int(uf.size[uf.Find(x)]) }

// Components returns the current number of components.
func (uf *UnionFind) Components() int { return uf.comps }

// LargestComponent returns the size of the largest component and one of its
// representatives. For an empty structure it returns (0, -1).
func (uf *UnionFind) LargestComponent() (size, rep int) {
	rep = -1
	for i := range uf.parent {
		if int32(i) == uf.parent[i] {
			if int(uf.size[i]) > size {
				size, rep = int(uf.size[i]), i
			}
		}
	}
	return size, rep
}

// ---------------------------------------------------------------------------
// Component statistics

// ComponentStats summarizes the undirected component structure of a graph.
type ComponentStats struct {
	// Count is the number of components (over the considered nodes).
	Count int
	// Largest is the size of the largest component.
	Largest int
	// SecondLargest is the size of the second largest component (0 if
	// there is only one component).
	SecondLargest int
	// MeanSize is the mean component size experienced by a random node
	// (i.e. E[size of the component containing a uniform node]); this is
	// the quantity the model's ⟨s⟩ (paper Eq. 2) estimates.
	MeanSize float64
	// Nodes is the number of nodes considered.
	Nodes int
}

// UndirectedComponents treats g's arcs as undirected edges restricted to
// nodes with active[i] == true (nil active means all nodes) and returns
// component statistics. This is the empirical counterpart of the paper's
// generalized-random-graph analysis: failed nodes are simply removed.
func UndirectedComponents(g *Digraph, active []bool) ComponentStats {
	n := g.N()
	uf := NewUnionFind(n)
	on := func(i int) bool { return active == nil || active[i] }
	activeCount := 0
	for u := 0; u < n; u++ {
		if !on(u) {
			continue
		}
		activeCount++
		for _, v := range g.adj[u] {
			if int(v) != u && on(int(v)) {
				uf.Union(u, int(v))
			}
		}
	}
	stats := ComponentStats{Nodes: activeCount}
	if activeCount == 0 {
		return stats
	}
	var largest, second int
	var sumSq float64
	for i := 0; i < n; i++ {
		if !on(i) || uf.Find(i) != i {
			continue
		}
		s := uf.ComponentSize(i)
		stats.Count++
		sumSq += float64(s) * float64(s)
		if s > largest {
			largest, second = s, largest
		} else if s > second {
			second = s
		}
	}
	stats.Largest = largest
	stats.SecondLargest = second
	stats.MeanSize = sumSq / float64(activeCount)
	return stats
}

// ---------------------------------------------------------------------------
// Generators

// GossipGraph draws the random graph generated by one execution of the
// paper's general gossiping algorithm under the "everyone forwards"
// counterfactual: every node u (whether it would be reached or not) draws a
// fanout f_u ~ P and f_u distinct targets uniformly from the other n-1
// nodes, producing the arc set the gossip *would* use. Restricting to alive
// nodes and following arcs from the source then reproduces the actual
// spread; this factorization lets one graph be reused across analyses.
//
// Degree semantics (pinned by TestGossipGraphExactDegrees): targets come
// from xrand.SampleExcluding, which samples without replacement and
// remaps around u, so node u's out-neighborhood contains no duplicates
// and never u itself, and OutDegree(u) is exactly min(f_u, n−1). Overlay
// degree counts derived from this graph are therefore exact — no
// deduplication pass is needed.
func GossipGraph(n int, p dist.Distribution, r *xrand.RNG) *Digraph {
	g := NewDigraph(n)
	buf := make([]int, 0, 16)
	for u := 0; u < n; u++ {
		f := p.Sample(r)
		buf = r.SampleExcluding(buf, n, f, u)
		for _, v := range buf {
			g.AddArc(u, v)
		}
	}
	return g
}

// ConfigurationModel generates an undirected multigraph (stored as a
// symmetric digraph: each edge appears as two arcs) with the given degree
// sequence via uniform stub matching. If the total degree is odd, one stub
// is dropped. Self-loops and parallel edges are possible, as in the standard
// model; their density vanishes for light-tailed degree laws.
func ConfigurationModel(degrees []int, r *xrand.RNG) *Digraph {
	n := len(degrees)
	g := NewDigraph(n)
	total := 0
	for i, d := range degrees {
		if d < 0 {
			panic(fmt.Sprintf("graph: negative degree %d at %d", d, i))
		}
		total += d
	}
	stubs := make([]int32, 0, total)
	for i, d := range degrees {
		for j := 0; j < d; j++ {
			stubs = append(stubs, int32(i))
		}
	}
	if len(stubs)%2 == 1 {
		stubs = stubs[:len(stubs)-1]
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := int(stubs[i]), int(stubs[i+1])
		g.AddArc(u, v)
		g.AddArc(v, u)
	}
	return g
}

// DegreeSequence draws n i.i.d. degrees from p.
func DegreeSequence(n int, p dist.Distribution, r *xrand.RNG) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = p.Sample(r)
	}
	return out
}

// ErdosRenyi generates G(n, prob) as a symmetric digraph.
func ErdosRenyi(n int, prob float64, r *xrand.RNG) *Digraph {
	g := NewDigraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Bool(prob) {
				g.AddArc(u, v)
				g.AddArc(v, u)
			}
		}
	}
	return g
}
