package graph

// LargestSCC returns a representative node and the size of the largest
// strongly connected component of g restricted to nodes with
// active[i] == true (nil active means all nodes). It returns (-1, 0) when
// no active node exists.
//
// The implementation is an iterative Tarjan so deep gossip graphs cannot
// overflow the goroutine stack.
func LargestSCC(g *Digraph, active []bool) (rep, size int) {
	n := g.N()
	on := func(i int) bool { return active == nil || active[i] }

	const unvisited = -1
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var next int32
	stack := make([]int32, 0, 64)

	// frame is one node plus the position in its adjacency list.
	type frame struct {
		v    int32
		edge int
	}
	var frames []frame

	rep, size = -1, 0
	for root := 0; root < n; root++ {
		if !on(root) || index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: int32(root)})
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			adj := g.adj[v]
			advanced := false
			for f.edge < len(adj) {
				w := adj[f.edge]
				f.edge++
				if !on(int(w)) {
					continue
				}
				if index[w] == unvisited {
					index[w] = next
					lowlink[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished: pop its frame, maybe emit an SCC.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if lowlink[v] < lowlink[p] {
					lowlink[p] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				// Pop the component off the stack.
				cSize := 0
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					cSize++
					if w == v {
						break
					}
				}
				if cSize > size {
					size, rep = cSize, int(v)
				}
			}
		}
	}
	return rep, size
}

// Filtered returns a copy of g keeping only arcs whose endpoints are both
// active. A nil mask returns g itself.
func Filtered(g *Digraph, active []bool) *Digraph {
	if active == nil {
		return g
	}
	f := NewDigraph(g.N())
	for u := 0; u < g.N(); u++ {
		if !active[u] {
			continue
		}
		for _, v := range g.adj[u] {
			if active[v] {
				f.AddArc(u, int(v))
			}
		}
	}
	return f
}

// LargestOutComponent returns the size of the largest "out-component" of g
// over active nodes: the set of nodes reachable from the largest strongly
// connected component. When the largest SCC is trivial (size 1, the
// subcritical regime), it falls back to the maximum forward reach over the
// given probe starts (inactive probes are skipped).
//
// For the directed gossip graph this is the quantity the paper's Eq. 11
// predicts: the fraction of nonfailed members the message reaches once the
// spread takes off.
func LargestOutComponent(g *Digraph, active []bool, probes []int) int {
	work := Filtered(g, active)
	rep, size := LargestSCC(work, active)
	if rep < 0 {
		return 0
	}
	bfs := NewBFS(work.N())
	if size > 1 {
		return bfs.Reachable(work, rep, nil)
	}
	on := func(i int) bool { return active == nil || active[i] }
	best := 0
	for _, p := range probes {
		if p < 0 || p >= work.N() || !on(p) {
			continue
		}
		if c := bfs.Reachable(work, p, nil); c > best {
			best = c
		}
	}
	if best == 0 {
		best = bfs.Reachable(work, rep, nil)
	}
	return best
}
