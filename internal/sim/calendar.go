package sim

import (
	"math/bits"
	"slices"
	"time"
)

// CalendarQueue is a bucket ("calendar") event queue specialized for the
// workload the simulated network generates: almost every event is scheduled
// within a bounded delay band of the current time (the latency model's
// upper bound). Simulated time is divided into fixed-width buckets; pushing
// appends the event, unsorted, to its bucket — a chain of small record
// segments drawn from one shared pool — and a bucket is sorted once, when
// the queue's cursor reaches it and gathers it into the contiguous
// current-bucket scratch it pops from. With the ring pre-sized from the
// caller's pending-events hint, occupancy stays at a handful of records,
// making push and pop amortized O(1) over short contiguous runs of memory
// instead of the heap's O(log n) cache-missing sift on 10⁶..10⁷-record
// queues.
//
// Events beyond the bucket window (scenario actions scheduled seconds
// ahead, closure timers) spill into an overflow 4-ary heap and migrate into
// buckets as the window slides forward, so the queue is correct for
// arbitrary timestamps; the delay bound is purely a sizing hint. Fire order
// is exactly the kernel's (at, seq) order — the equivalence tests lock the
// calendar to the heap discipline trace for trace.
//
// Every piece of storage — the ring, the segment pool, the scratch, the
// overflow heap — is retained across Reset and shared across buckets, so
// occupancy can shift between buckets run over run without ever allocating:
// a warm arena runs with zero allocations per execution. The zero value is
// not usable; a Kernel builds one via SetBoundedDelayHint and recycles it.
type CalendarQueue struct {
	widthShift uint        // bucket width = 1<<widthShift nanoseconds
	buckets    []calBucket // ring: segment-chain endpoints per slot
	mask       int64       // nb-1 (nb is a power of two)
	count      int         // records in buckets + the current-bucket scratch
	base       int64       // absolute bucket number anchoring the window [base, base+nb)
	firstHint  int64       // no bucket record lives in absolute buckets [base, firstHint)
	overflow   []record    // 4-ary min-heap of records at or beyond the window end

	segs    []calSegment // shared segment pool; free segments chain through freeSeg
	freeSeg int32
	cur     []record // the bucket being drained, sorted descending (pop truncates)
	curAbs  int64    // absolute bucket cur holds, -1 iff cur is empty
}

// calBucket addresses one ring slot's unsorted segment chain.
type calBucket struct{ head, tail int32 }

// calSegRecords records per segment: 8×32-byte records is four cache lines
// gathered per hop, against one record per hop for a plain linked list.
const calSegRecords = 8

type calSegment struct {
	n    int32
	next int32
	recs [calSegRecords]record
}

const (
	calendarInitBuckets = 256
	// calendarMaxBuckets caps the ring: beyond it, bucket occupancy grows
	// linearly instead (still cheap — gathering walks contiguous
	// segments). 1<<22 ring slots keep n=10⁷-scale runs at ~a dozen
	// records per bucket for ~32 MB of ring state.
	calendarMaxBuckets = 1 << 22
	// calendarGrowAt doubles the ring when mean occupancy exceeds this
	// load factor — a fallback for callers whose pending-events hint
	// turned out far too low.
	calendarGrowAt = 8
)

// NewCalendarQueue returns an empty calendar sized for the given delay
// bound and expected pending-event count.
func NewCalendarQueue(bound time.Duration, pending int) *CalendarQueue {
	c := &CalendarQueue{}
	c.reconfigure(bound, pending)
	return c
}

// reconfigure empties the queue and re-derives the ring size and bucket
// width for a new delay bound and pending-count hint, keeping (or growing)
// the ring so a run-scoped arena reuses warm capacity. Only valid while the
// queue is empty or being reset.
func (c *CalendarQueue) reconfigure(bound time.Duration, pending int) {
	nb := calendarInitBuckets
	for nb < pending && nb < calendarMaxBuckets {
		nb <<= 1
	}
	if nb > len(c.buckets) {
		c.buckets = make([]calBucket, nb)
		for i := range c.buckets {
			c.buckets[i] = calBucket{head: -1, tail: -1}
		}
	}
	c.mask = int64(len(c.buckets) - 1)
	c.clear()
	// Smallest width such that the window nb<<shift covers the bound with
	// a 25% margin: fine-grained buckets (low occupancy) with enough
	// window that steady-state pushes never touch the overflow heap.
	span := int64(bound) + int64(bound)/4
	want := (span + int64(len(c.buckets)) - 1) / int64(len(c.buckets))
	c.widthShift = 0
	if want > 1 {
		c.widthShift = uint(bits.Len64(uint64(want - 1)))
	}
}

// clear empties the queue in place, retaining ring, pool, and scratch
// capacity.
func (c *CalendarQueue) clear() {
	for i := range c.buckets {
		c.buckets[i] = calBucket{head: -1, tail: -1}
	}
	c.count = 0
	c.base = 0
	c.firstHint = 0
	c.overflow = c.overflow[:0]
	c.segs = c.segs[:0]
	c.freeSeg = -1
	c.cur = c.cur[:0]
	c.curAbs = -1
}

func (c *CalendarQueue) len() int { return c.count + len(c.overflow) }

func (c *CalendarQueue) absBucket(at Time) int64 { return int64(at) >> c.widthShift }

func (c *CalendarQueue) allocSeg() int32 {
	if c.freeSeg >= 0 {
		i := c.freeSeg
		c.freeSeg = c.segs[i].next
		c.segs[i].n = 0
		c.segs[i].next = -1
		return i
	}
	c.segs = append(c.segs, calSegment{next: -1})
	return int32(len(c.segs) - 1)
}

// appendRec appends rec to ring slot ring's segment chain (unsorted).
func (c *CalendarQueue) appendRec(ring int64, rec record) {
	b := &c.buckets[ring]
	if b.head < 0 {
		s := c.allocSeg()
		b.head, b.tail = s, s
	} else if c.segs[b.tail].n == calSegRecords {
		s := c.allocSeg()
		c.segs[b.tail].next = s
		b.tail = s
	}
	seg := &c.segs[b.tail]
	seg.recs[seg.n] = rec
	seg.n++
}

// push enqueues rec: appended to its bucket when its timestamp falls inside
// the current window, into the overflow heap beyond it. A record below the
// window start re-anchors the window first (see rebase).
func (c *CalendarQueue) push(rec record) {
	abs := c.absBucket(rec.at)
	if abs < c.base {
		c.rebase(abs)
	}
	if abs >= c.base+c.mask+1 {
		heapPush(&c.overflow, rec)
		return
	}
	c.insert(rec)
	if c.count > calendarGrowAt*len(c.buckets) && len(c.buckets) < calendarMaxBuckets {
		c.grow()
	}
}

// insert places rec, already known to land inside the window: a sorted
// insert into the current-bucket scratch when it lands on the bucket being
// drained (so it still fires in exact order), a plain segment append
// otherwise. A record landing below the bucket being drained sends the
// scratch back to its segments first — only the horizon/cancel pattern
// triggers that, never the steady state.
func (c *CalendarQueue) insert(rec record) {
	abs := c.absBucket(rec.at)
	if abs == c.curAbs {
		// Keep descending fire order: bubble the record from the tail
		// past everything that fires after it. The bubble is capped —
		// a record that outranks most of the scratch would make bulk
		// same-bucket insertion quadratic (a sharded barrier flush under
		// constant latency lands a whole wave on one timestamp, every
		// new seq firing after all its ties), so past maxBubble steps
		// the scratch goes back to its segments and the record is
		// appended; ready() re-sorts the bucket once instead.
		const maxBubble = 64
		if n := len(c.cur); n >= maxBubble && c.cur[n-maxBubble].before(rec) {
			c.flushCur()
			c.appendRec(abs&c.mask, rec)
		} else {
			c.cur = append(c.cur, rec)
			i := len(c.cur) - 1
			for i > 0 && c.cur[i-1].before(rec) {
				c.cur[i] = c.cur[i-1]
				i--
			}
			c.cur[i] = rec
		}
	} else {
		if c.curAbs >= 0 && abs < c.curAbs {
			c.flushCur()
		}
		c.appendRec(abs&c.mask, rec)
	}
	c.count++
	if abs < c.firstHint {
		c.firstHint = abs
	}
}

// flushCur returns the current-bucket scratch's records to their ring
// slot's segments, surrendering "being drained" status.
func (c *CalendarQueue) flushCur() {
	ring := c.curAbs & c.mask
	for _, rec := range c.cur {
		c.appendRec(ring, rec)
	}
	c.cur = c.cur[:0]
	c.curAbs = -1
}

// ready ensures the current-bucket scratch holds the earliest non-empty
// bucket, sorted. Callers guarantee count > 0.
func (c *CalendarQueue) ready() {
	if c.curAbs >= 0 && c.firstHint == c.curAbs {
		return
	}
	if c.curAbs >= 0 {
		// A record landed below the bucket being drained; put the
		// scratch back and gather the earlier bucket instead.
		c.flushCur()
	}
	// Scan to the first non-empty bucket. All stored records sit in
	// [firstHint, base+nb), so the scan is bounded and each empty bucket
	// is skipped at most once per window pass.
	for c.buckets[c.firstHint&c.mask].head < 0 {
		c.firstHint++
	}
	// Gather the bucket's segments into the scratch and sort it once,
	// while it is small and cache-resident.
	b := &c.buckets[c.firstHint&c.mask]
	for s := b.head; s >= 0; {
		seg := &c.segs[s]
		c.cur = append(c.cur, seg.recs[:seg.n]...)
		next := seg.next
		seg.next = c.freeSeg
		c.freeSeg = s
		s = next
	}
	b.head, b.tail = -1, -1
	sortBucket(c.cur)
	c.curAbs = c.firstHint
}

// drain migrates overflow records whose buckets have entered the window.
func (c *CalendarQueue) drain() {
	end := c.base + c.mask + 1
	for len(c.overflow) > 0 && c.absBucket(c.overflow[0].at) < end {
		c.insert(heapPop(&c.overflow))
	}
}

// grow doubles the ring. When the bucket width can still shrink, it is
// halved so the window length is preserved and mean occupancy truly halves;
// each old bucket's records split across two new buckets with their
// relative order intact, recycling segments as they are consumed.
func (c *CalendarQueue) grow() {
	if c.curAbs >= 0 {
		c.flushCur()
	}
	old := c.buckets
	c.buckets = make([]calBucket, 2*len(old))
	for i := range c.buckets {
		c.buckets[i] = calBucket{head: -1, tail: -1}
	}
	c.mask = int64(len(c.buckets) - 1)
	if c.widthShift > 0 {
		c.widthShift--
		c.base <<= 1
		c.firstHint <<= 1
	}
	c.count = 0
	for _, b := range old {
		for s := b.head; s >= 0; {
			seg := c.segs[s] // copy, so the slot can be recycled at once
			c.segs[s].next = c.freeSeg
			c.freeSeg = s
			for i := int32(0); i < seg.n; i++ {
				c.insert(seg.recs[i])
			}
			s = seg.next
		}
	}
	// The window end moved; pull in any overflow records it now covers so
	// the bucket-min-before-overflow-min invariant keeps holding.
	c.drain()
}

// rebase re-anchors the window at a lower start. Popping slides the window
// to the bucket being drained, which can run ahead of the kernel clock when
// a canceled record beyond a Run horizon is discarded; a later push between
// the clock and that bucket then lands below the window and must not alias
// into a ring slot owned by a later bucket. Re-anchoring keeps in-window
// records where they are (their ring slots stay valid) and spills the ones
// the shorter reach no longer covers into the overflow heap, where the
// sliding window will re-admit them in order. This only triggers on the
// horizon/cancel pattern — scenario-rate, never the steady-state hot path.
func (c *CalendarQueue) rebase(abs int64) {
	if c.curAbs >= 0 {
		c.flushCur()
	}
	end := abs + c.mask + 1
	if c.count > 0 {
		for ring := range c.buckets {
			h := c.buckets[ring].head
			if h < 0 || c.absBucket(c.segs[h].recs[0].at) < end {
				continue
			}
			for s := h; s >= 0; {
				seg := c.segs[s] // copy, so the slot can be recycled
				c.segs[s].next = c.freeSeg
				c.freeSeg = s
				for i := int32(0); i < seg.n; i++ {
					heapPush(&c.overflow, seg.recs[i])
				}
				c.count -= int(seg.n)
				s = seg.next
			}
			c.buckets[ring] = calBucket{head: -1, tail: -1}
		}
	}
	c.base = abs
	c.firstHint = abs
}

// peek returns the earliest record without removing it.
func (c *CalendarQueue) peek() (record, bool) {
	if c.count == 0 {
		if len(c.overflow) == 0 {
			return record{}, false
		}
		return c.overflow[0], true
	}
	c.ready()
	return c.cur[len(c.cur)-1], true
}

// pop removes and returns the earliest record. It must only be called when
// len() > 0.
func (c *CalendarQueue) pop() record {
	if c.count == 0 {
		// Buckets are dry: re-anchor the window at the overflow's
		// earliest bucket and migrate everything the window now spans.
		c.base = c.absBucket(c.overflow[0].at)
		c.firstHint = c.base
		c.drain()
	}
	c.ready()
	// Slide the window forward to the bucket being drained, then admit
	// overflow records the longer reach now covers — before selecting, so
	// a migrated record landing in this very bucket fires in exact order.
	if c.firstHint > c.base {
		c.base = c.firstHint
		c.drain()
	}
	n := len(c.cur)
	rec := c.cur[n-1]
	c.cur = c.cur[:n-1]
	if n == 1 {
		c.curAbs = -1
	}
	c.count--
	return rec
}

// sortBucket sorts a gathered bucket descending by fire order (the record
// that fires first ends up last, so pop is a truncation). Steady-state
// buckets hold a handful of contiguous records, where insertion sort beats
// anything indirect — but a bucket is not bounded: a constant-latency
// model lands a whole message wave on one timestamp (and pushes arrive in
// ascending seq order, insertion sort's exact worst case against the
// descending target), which made bucket sorting quadratic in the wave
// size. Past a small threshold, hand off to the standard pdqsort, which is
// O(k) on such runs and O(k log k) always.
func sortBucket(b []record) {
	if len(b) > 32 {
		slices.SortFunc(b, func(x, y record) int {
			switch {
			case x.before(y):
				return 1
			case y.before(x):
				return -1
			default:
				return 0
			}
		})
		return
	}
	for i := 1; i < len(b); i++ {
		rec := b[i]
		j := i
		for j > 0 && b[j-1].before(rec) {
			b[j] = b[j-1]
			j--
		}
		b[j] = rec
	}
}
