package sim

import (
	"fmt"
	"sync"
	"time"
)

// ShardGroup advances several kernels together under the classic
// conservative-PDES discipline: because every cross-shard message is
// delayed by at least the lookahead L, all events in the window
// [T, min(Tmin+L, Tc)) — Tmin the earliest pending event across shards,
// Tc the control kernel's next event — are causally independent across
// shards and can execute in parallel. At each window barrier the caller's
// flush hook moves buffered cross-shard messages into their destination
// kernels (their delivery times are ≥ the window end by the lookahead
// argument, so they are never scheduled in a shard's past), then any
// control events due at the barrier fire on the coordinator goroutine
// while the shard workers are parked — which is what lets fault-injection
// hooks mutate shard state without synchronization.
//
// A group with one kernel that is also the control kernel degenerates to
// a plain RunAll with no windows or goroutines, which is the shards=1
// equivalence anchor.
type ShardGroup struct {
	kernels   []*Kernel
	control   *Kernel
	lookahead Time
}

// NewShardGroup builds a group over kernels with the given lookahead
// (the minimum cross-shard message delay; must be positive unless the
// group degenerates to a single kernel that is its own control kernel).
// The control kernel carries coordinator-side events (scenario actions);
// it must not be one of the shard kernels unless len(kernels) == 1.
func NewShardGroup(kernels []*Kernel, control *Kernel, lookahead time.Duration) *ShardGroup {
	if len(kernels) == 0 {
		panic("sim: shard group needs at least one kernel")
	}
	if control == nil {
		panic("sim: shard group needs a control kernel")
	}
	single := len(kernels) == 1 && control == kernels[0]
	if !single {
		if lookahead <= 0 {
			panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
		}
		for _, k := range kernels {
			if k == control {
				panic("sim: control kernel must be distinct from the shard kernels")
			}
		}
	}
	return &ShardGroup{kernels: kernels, control: control, lookahead: Time(lookahead)}
}

// Each runs f(shard) for every shard concurrently — one goroutine per
// shard — and waits for all of them. Setup and teardown phases use it so
// each shard's state is allocated and touched by the goroutine topology
// that will run it (first-touch locality on the multi-GB working sets).
// For a single shard f runs inline.
func (g *ShardGroup) Each(f func(shard int)) {
	if len(g.kernels) == 1 {
		f(0)
		return
	}
	var wg sync.WaitGroup
	for s := range g.kernels {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			f(s)
		}(s)
	}
	wg.Wait()
}

// Run drives the group to quiescence. Per window it advances every shard
// kernel on its own goroutine through [now, windowEnd), then — workers
// parked — calls flush(windowEnd) to move buffered cross-shard messages
// into their destination kernels, fires control events due at the
// barrier, and calls onBarrier (if non-nil) with the barrier's virtual
// time and the total events fired so far. buffered (if non-nil) reports
// the number of cross-shard messages parked outside any kernel: the group
// is quiescent only when no kernel has an event AND buffered() == 0 —
// without the second condition a run whose only live messages sit in
// cross-shard buffers (e.g. a seed fan-out that went entirely remote,
// buffered before Run started) would terminate with traffic still parked.
// Such messages are flushed with windowEnd 0 — no barrier clamp; each
// destination schedules them at their natural times (its kernel clamps
// past times to its own now). Run returns the first worker or control
// error (ErrBudget) encountered.
func (g *ShardGroup) Run(flush func(windowEnd Time), buffered func() int, onBarrier func(now Time, fired uint64)) error {
	if len(g.kernels) == 1 && g.control == g.kernels[0] {
		return g.kernels[0].RunAll()
	}

	// Persistent workers for the whole run: horizons flow out, one error
	// (usually nil) flows back per window. The channel pair is also the
	// memory barrier that hands each kernel back and forth between its
	// worker and the coordinator.
	starts := make([]chan Time, len(g.kernels))
	done := make(chan error, len(g.kernels))
	var wg sync.WaitGroup
	for s := range g.kernels {
		starts[s] = make(chan Time, 1)
		wg.Add(1)
		go func(k *Kernel, start <-chan Time) {
			defer wg.Done()
			for horizon := range start {
				done <- k.Run(horizon)
			}
		}(g.kernels[s], starts[s])
	}
	defer func() {
		for _, c := range starts {
			close(c)
		}
		wg.Wait()
	}()

	for {
		tmin, any := End, false
		for _, k := range g.kernels {
			if t, ok := k.NextEventTime(); ok && (!any || t < tmin) {
				tmin, any = t, true
			}
		}
		tc, cok := g.control.NextEventTime()
		if !any && !cok {
			if buffered != nil && buffered() > 0 && flush != nil {
				flush(0)
				continue
			}
			return nil
		}
		wend := End
		if any {
			wend = tmin + g.lookahead
			if wend < tmin { // overflow: effectively unbounded window
				wend = End
			}
		}
		if cok && tc < wend {
			wend = tc
		}

		// The window is exclusive of wend (Run's horizon is inclusive):
		// cross-shard arrivals land at ≥ tmin+lookahead ≥ wend, so
		// flushing them at this barrier never schedules into a shard's
		// past.
		for _, c := range starts {
			c <- wend - 1
		}
		var err error
		for range g.kernels {
			if e := <-done; e != nil && err == nil {
				err = e
			}
		}
		if err != nil {
			return err
		}
		if flush != nil {
			flush(wend)
		}
		if cok && tc <= wend {
			// Control events due at the barrier fire while the workers
			// are parked; anything they schedule at the same timestamp
			// fires too, matching single-kernel same-time semantics.
			if err := g.control.Run(wend); err != nil {
				return err
			}
		}
		if onBarrier != nil {
			onBarrier(wend, g.fired())
		}
	}
}

// fired sums events executed across the shard and control kernels. Only
// call it from the coordinator with the workers parked.
func (g *ShardGroup) fired() uint64 {
	total := g.control.Fired()
	for _, k := range g.kernels {
		total += k.Fired()
	}
	return total
}
