package sim

import (
	"sort"
	"testing"
	"time"
)

// shardEvent is one node of the deterministic synthetic workload: event id
// fires on shard at time at, and (below the id cap) spawns two children on
// the other shard after at least the lookahead. The tree is a pure
// function of the root set, so any correct scheduler fires exactly the
// same (shard, time, id) multiset.
type shardEvent struct {
	id    int
	shard int
	at    Time
}

const (
	shardTestLookahead = 10 * time.Millisecond
	shardTestIDCap     = 4096
)

func (e shardEvent) children(shards int) []shardEvent {
	if e.id >= shardTestIDCap {
		return nil
	}
	var out []shardEvent
	for c := 0; c < 2; c++ {
		id := e.id*2 + 1 + c
		d := Time(shardTestLookahead) + Time(id%97)*Time(13*time.Microsecond) + Time(id)
		out = append(out, shardEvent{id: id, shard: (e.shard + 1 + c) % shards, at: e.at + d})
	}
	return out
}

func shardTestRoots(shards int) []shardEvent {
	var roots []shardEvent
	for i := 0; i < 8; i++ {
		roots = append(roots, shardEvent{
			id:    i,
			shard: i % shards,
			at:    Time(i) * Time(3*time.Millisecond),
		})
	}
	return roots
}

type firing struct {
	at Time
	id int
}

// runShardedWorkload executes the synthetic tree on a ShardGroup with
// per-pair cross-shard buffers flushed at barriers, returning the
// per-shard firing logs.
func runShardedWorkload(t *testing.T, shards int) [][]firing {
	t.Helper()
	kernels := make([]*Kernel, shards)
	for s := range kernels {
		kernels[s] = New()
	}
	control := New()
	logs := make([][]firing, shards)
	bufs := make([][]shardEvent, shards*shards)

	var schedule func(from int, e shardEvent)
	handlers := make([]HandlerID, shards)
	for s := 0; s < shards; s++ {
		s := s
		handlers[s] = kernels[s].RegisterHandler(func(now Time, node, _ int32) {
			if n := len(logs[s]); n > 0 && now < logs[s][n-1].at {
				t.Errorf("shard %d fired event %d at %v after %v", s, node, now, logs[s][n-1].at)
			}
			logs[s] = append(logs[s], firing{at: now, id: int(node)})
			for _, c := range (shardEvent{id: int(node), shard: s, at: now}).children(shards) {
				schedule(s, c)
			}
		})
	}
	schedule = func(from int, e shardEvent) {
		if e.shard == from {
			kernels[from].Schedule(e.at, handlers[from], int32(e.id), 0)
			return
		}
		bufs[from*shards+e.shard] = append(bufs[from*shards+e.shard], e)
	}
	for _, e := range shardTestRoots(shards) {
		kernels[e.shard].Schedule(e.at, handlers[e.shard], int32(e.id), 0)
	}

	g := NewShardGroup(kernels, control, shardTestLookahead)
	flush := func(wend Time) {
		for dst := 0; dst < shards; dst++ {
			for src := 0; src < shards; src++ {
				buf := bufs[src*shards+dst]
				for _, e := range buf {
					if e.at < wend {
						t.Errorf("cross-shard event %d at %v inside window ending %v", e.id, e.at, wend)
					}
					kernels[dst].Schedule(e.at, handlers[dst], int32(e.id), 0)
				}
				bufs[src*shards+dst] = buf[:0]
			}
		}
	}
	buffered := func() int {
		total := 0
		for _, b := range bufs {
			total += len(b)
		}
		return total
	}
	if err := g.Run(flush, buffered, nil); err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	return logs
}

// runOracleWorkload executes the same tree on one kernel, logging by the
// event's home shard.
func runOracleWorkload(t *testing.T, shards int) [][]firing {
	t.Helper()
	k := New()
	logs := make([][]firing, shards)
	var h HandlerID
	h = k.RegisterHandler(func(now Time, node, payload int32) {
		s := int(payload)
		logs[s] = append(logs[s], firing{at: now, id: int(node)})
		for _, c := range (shardEvent{id: int(node), shard: s, at: now}).children(shards) {
			k.Schedule(c.at, h, int32(c.id), int32(c.shard))
		}
	})
	for _, e := range shardTestRoots(shards) {
		k.Schedule(e.at, h, int32(e.id), int32(e.shard))
	}
	if err := k.RunAll(); err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	return logs
}

func sortFirings(logs [][]firing) {
	for _, l := range logs {
		sort.Slice(l, func(i, j int) bool {
			if l[i].at != l[j].at {
				return l[i].at < l[j].at
			}
			return l[i].id < l[j].id
		})
	}
}

func TestShardGroupMatchesSingleKernel(t *testing.T) {
	for _, shards := range []int{2, 3, 4} {
		sharded := runShardedWorkload(t, shards)
		oracle := runOracleWorkload(t, shards)
		// Firing order within a shard is nondecreasing in time by
		// construction (checked inside the handler); same-time ties may
		// interleave differently, so compare the sorted logs.
		sortFirings(sharded)
		sortFirings(oracle)
		for s := 0; s < shards; s++ {
			if len(sharded[s]) != len(oracle[s]) {
				t.Fatalf("shards=%d shard %d fired %d events, oracle %d",
					shards, s, len(sharded[s]), len(oracle[s]))
			}
			for i := range sharded[s] {
				if sharded[s][i] != oracle[s][i] {
					t.Fatalf("shards=%d shard %d firing %d: got %+v want %+v",
						shards, s, i, sharded[s][i], oracle[s][i])
				}
			}
		}
	}
}

func TestShardGroupControlBarrier(t *testing.T) {
	const shards = 3
	kernels := make([]*Kernel, shards)
	for s := range kernels {
		kernels[s] = New()
	}
	control := New()
	cut := Time(50 * time.Millisecond)

	flag := false
	type obs struct {
		at   Time
		flag bool
	}
	seen := make([][]obs, shards)
	for s := 0; s < shards; s++ {
		s := s
		h := kernels[s].RegisterHandler(func(now Time, _, _ int32) {
			seen[s] = append(seen[s], obs{at: now, flag: flag})
		})
		for i := 0; i < 100; i++ {
			kernels[s].Schedule(Time(i)*Time(time.Millisecond), h, 0, 0)
		}
	}
	control.At(cut, func() {
		// Workers are parked at the barrier: every shard clock must sit
		// strictly before the control event's time.
		flag = true
		for s, k := range kernels {
			if k.Now() >= cut {
				t.Errorf("shard %d clock %v at or past control event %v", s, k.Now(), cut)
			}
		}
	})

	g := NewShardGroup(kernels, control, 5*time.Millisecond)
	if err := g.Run(nil, nil, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	for s := 0; s < shards; s++ {
		if len(seen[s]) != 100 {
			t.Fatalf("shard %d fired %d events, want 100", s, len(seen[s]))
		}
		for _, o := range seen[s] {
			if want := o.at >= cut; o.flag != want {
				t.Fatalf("shard %d event at %v saw flag=%v", s, o.at, o.flag)
			}
		}
	}
}

func TestShardGroupBudget(t *testing.T) {
	kernels := []*Kernel{New(), New()}
	control := New()
	h := kernels[0].RegisterHandler(func(Time, int32, int32) {})
	for i := 0; i < 10; i++ {
		kernels[0].Schedule(Time(i), h, 0, 0)
	}
	kernels[0].SetBudget(3)
	g := NewShardGroup(kernels, control, time.Millisecond)
	if err := g.Run(nil, nil, nil); err != ErrBudget {
		t.Fatalf("got %v, want ErrBudget", err)
	}
}

func TestShardGroupOnBarrier(t *testing.T) {
	kernels := []*Kernel{New(), New()}
	control := New()
	h := kernels[0].RegisterHandler(func(Time, int32, int32) {})
	for i := 0; i < 50; i++ {
		kernels[0].Schedule(Time(i)*Time(time.Millisecond), h, 0, 0)
	}
	var barriers int
	var lastNow Time
	var lastFired uint64
	g := NewShardGroup(kernels, control, 7*time.Millisecond)
	err := g.Run(nil, nil, func(now Time, fired uint64) {
		barriers++
		if now < lastNow || fired < lastFired {
			t.Fatalf("barrier went backwards: now %v->%v fired %d->%d", lastNow, now, lastFired, fired)
		}
		lastNow, lastFired = now, fired
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if barriers == 0 || lastFired != 50 {
		t.Fatalf("barriers=%d fired=%d, want >0 barriers and 50 fired", barriers, lastFired)
	}
}

func TestShardGroupSingleDegenerate(t *testing.T) {
	k := New()
	h := k.RegisterHandler(func(Time, int32, int32) {})
	for i := 0; i < 5; i++ {
		k.Schedule(Time(i), h, 0, 0)
	}
	g := NewShardGroup([]*Kernel{k}, k, 0)
	if err := g.Run(nil, nil, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if k.Fired() != 5 {
		t.Fatalf("fired %d, want 5", k.Fired())
	}
}

func TestShardGroupEach(t *testing.T) {
	kernels := []*Kernel{New(), New(), New(), New()}
	g := NewShardGroup(kernels, New(), time.Millisecond)
	visited := make([]bool, len(kernels))
	g.Each(func(s int) { visited[s] = true })
	for s, v := range visited {
		if !v {
			t.Fatalf("shard %d not visited", s)
		}
	}
}
