package sim

import (
	"container/heap"
	"fmt"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Reference kernel: the pre-flat-queue implementation — a container/heap of
// *oldEvent closures with eager heap removal on cancel. The equivalence
// test asserts the flat 4-ary value heap fires adversarial schedules in
// exactly the order this kernel does.

type oldEvent struct {
	at    Time
	seq   uint64
	fn    func()
	index int
}

type oldQueue []*oldEvent

func (q oldQueue) Len() int { return len(q) }
func (q oldQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q oldQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *oldQueue) Push(x any) {
	e := x.(*oldEvent)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *oldQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type oldKernel struct {
	now   Time
	queue oldQueue
	seq   uint64
}

func (k *oldKernel) at(at Time, fn func()) *oldEvent {
	k.seq++
	e := &oldEvent{at: at, seq: k.seq, fn: fn}
	heap.Push(&k.queue, e)
	return e
}

func (k *oldKernel) cancel(e *oldEvent) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&k.queue, e.index)
	e.index = -1
	return true
}

func (k *oldKernel) run(horizon Time) {
	for len(k.queue) > 0 && k.queue[0].at <= horizon {
		e := heap.Pop(&k.queue).(*oldEvent)
		e.index = -1
		k.now = e.at
		e.fn()
	}
}

// ---------------------------------------------------------------------------
// Driver abstraction so one adversarial script exercises both kernels.

type driver interface {
	schedule(at Time, fn func()) (cancel func() bool)
	now() Time
	run(horizon Time)
}

type newDriver struct{ k *Kernel }

func (d newDriver) schedule(at Time, fn func()) func() bool {
	e := d.k.At(at, fn)
	return func() bool { return d.k.Cancel(e) }
}
func (d newDriver) now() Time        { return d.k.Now() }
func (d newDriver) run(horizon Time) { _ = d.k.Run(horizon) }

type oldDriver struct{ k *oldKernel }

func (d oldDriver) schedule(at Time, fn func()) func() bool {
	e := d.k.at(at, fn)
	return func() bool { return d.k.cancel(e) }
}
func (d oldDriver) now() Time        { return d.k.now }
func (d oldDriver) run(horizon Time) { d.k.run(horizon) }

// adversarialTrace drives d through a schedule designed to stress exactly
// what the flat queue changed: heavy same-timestamp collisions (FIFO tie
// order), cancels of pending events interleaved with firing (including
// cancels issued from inside running events), nested rescheduling, and a
// horizon split mid-schedule. Every decision derives from a hash of the
// event id, so both kernels see an identical script as long as their fire
// orders agree — and the returned trace pins the order itself.
func adversarialTrace(d driver) []string {
	var trace []string
	var cancels []func() bool
	id := 0

	hash := func(x int) uint64 {
		h := uint64(x)*0x9e3779b97f4a7c15 + 0x85ebca6b
		h ^= h >> 33
		h *= 0xc2b2ae3d27d4eb4f
		h ^= h >> 29
		return h
	}

	var spawn func(depth int, at Time)
	spawn = func(depth int, at Time) {
		myID := id
		id++
		h := hash(myID)
		cancel := d.schedule(at, func() {
			trace = append(trace, fmt.Sprintf("fire:%d@%v", myID, d.now()))
			if depth < 3 && h%3 == 0 {
				// Two children at colliding timestamps.
				delta := time.Duration(h>>8%3) * time.Millisecond
				spawn(depth+1, d.now().Add(delta))
				spawn(depth+1, d.now().Add(delta))
			}
			if h%5 == 0 && len(cancels) > 0 {
				victim := int(h >> 16 % uint64(len(cancels)))
				ok := cancels[victim]()
				trace = append(trace, fmt.Sprintf("cancel:%d=%v", victim, ok))
			}
		})
		cancels = append(cancels, cancel)
	}

	// Phase 1: 64 roots spread over just 8 distinct timestamps — every
	// timestamp hosts a FIFO pile-up.
	for i := 0; i < 64; i++ {
		at := Time(time.Duration(hash(1000+i)%8) * time.Millisecond)
		spawn(0, at)
	}
	// Cancel a deterministic third of them before anything fires.
	for i := 0; i < len(cancels); i += 3 {
		ok := cancels[i]()
		trace = append(trace, fmt.Sprintf("precancel:%d=%v", i, ok))
	}
	// Phase 2: run to a horizon that bisects the pile, schedule a second
	// wave (ties with survivors of the first), then drain.
	d.run(Time(3 * time.Millisecond))
	trace = append(trace, fmt.Sprintf("horizon@%v", d.now()))
	for i := 0; i < 32; i++ {
		at := d.now().Add(time.Duration(hash(2000+i)%8) * time.Millisecond)
		spawn(0, at)
	}
	d.run(End)
	// Canceling after the drain must be a uniform no-op.
	for i := 0; i < len(cancels); i += 7 {
		trace = append(trace, fmt.Sprintf("postcancel:%d=%v", i, cancels[i]()))
	}
	return trace
}

// TestFlatQueueMatchesReferenceHeap locks the flat 4-ary heap to the old
// closure-heap kernel, event for event, on a cancel-heavy same-timestamp
// schedule.
func TestFlatQueueMatchesReferenceHeap(t *testing.T) {
	got := adversarialTrace(newDriver{New()})
	want := adversarialTrace(oldDriver{&oldKernel{}})
	if len(got) != len(want) {
		t.Fatalf("trace lengths differ: flat=%d reference=%d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("traces diverge at %d:\n  flat:      %s\n  reference: %s", i, got[i], want[i])
		}
	}
	if len(got) < 150 {
		t.Fatalf("schedule too tame: only %d trace entries", len(got))
	}
}

// TestCalendarQueueMatchesReferenceHeap runs the same adversarial
// tie/cancel schedule against calendar-backed kernels across a spread of
// delay hints — a hint much smaller than the schedule's reach (constant
// window sliding and overflow migration), one around it, and one vastly
// larger (everything collapses into few buckets) — and requires the exact
// reference fire order every time.
func TestCalendarQueueMatchesReferenceHeap(t *testing.T) {
	want := adversarialTrace(oldDriver{&oldKernel{}})
	for _, hint := range []time.Duration{
		100 * time.Microsecond, 2 * time.Millisecond, time.Hour,
	} {
		k := New()
		k.SetBoundedDelayHint(hint, 0)
		if k.QueueKind() != "calendar" {
			t.Fatalf("hint %v did not select the calendar queue", hint)
		}
		got := adversarialTrace(newDriver{k})
		if len(got) != len(want) {
			t.Fatalf("hint %v: trace lengths differ: calendar=%d reference=%d", hint, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("hint %v: traces diverge at %d:\n  calendar:  %s\n  reference: %s", hint, i, got[i], want[i])
			}
		}
	}
}

// TestCalendarQueueResetRecyclesBuckets checks the arena cycle: Reset
// reverts to the heap, a fresh hint reactivates the same calendar with its
// warm buckets, and the replayed schedule still matches the reference.
func TestCalendarQueueResetRecyclesBuckets(t *testing.T) {
	want := adversarialTrace(oldDriver{&oldKernel{}})
	k := New()
	for round := 0; round < 3; round++ {
		k.Reset()
		if k.QueueKind() != "heap" {
			t.Fatal("Reset did not revert to the heap")
		}
		k.SetBoundedDelayHint(time.Millisecond, 0)
		got := adversarialTrace(newDriver{k})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d diverges at %d: %s != %s", round, i, got[i], want[i])
			}
		}
	}
}

// TestCalendarOverflowMigration pins the overflow path directly: events
// scheduled far beyond the bucket window (as scenario campaigns do) must
// fire interleaved in exact time order with dense near-term traffic, and
// re-anchoring across a long idle gap must not reorder anything.
func TestCalendarOverflowMigration(t *testing.T) {
	k := New()
	k.SetBoundedDelayHint(time.Millisecond, 0) // window ≪ the schedule's reach
	var order []int
	h := k.RegisterHandler(func(_ Time, node, _ int32) { order = append(order, int(node)) })
	// Far-future events first (straight into overflow), then a dense
	// near-term burst, then mid-range events landing between the two.
	k.Schedule(Time(5*time.Second), h, 103, 0)
	k.Schedule(Time(1*time.Second), h, 101, 0)
	k.Schedule(Time(3*time.Second), h, 102, 0)
	for i := 0; i < 50; i++ {
		k.Schedule(Time(time.Duration(i%7)*100*time.Microsecond), h, int32(i), 0)
	}
	k.Schedule(Time(1*time.Second+50*time.Microsecond), h, 104, 0) // ties into 101's bucket region
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 54 {
		t.Fatalf("fired %d events, want 54", len(order))
	}
	tail := order[50:]
	for i, want := range []int{101, 104, 102, 103} {
		if tail[i] != want {
			t.Fatalf("overflow events fired as %v, want [101 104 102 103]", tail)
		}
	}
}

// TestCalendarGrowKeepsOrder floods a small window with far more records
// than the initial ring (forcing several grow/rebucket cycles mid-schedule)
// and checks the FIFO-within-timestamp guarantee survives every rebuild.
func TestCalendarGrowKeepsOrder(t *testing.T) {
	k := New()
	k.SetBoundedDelayHint(10*time.Millisecond, 0)
	const events = 3 * calendarGrowAt * calendarInitBuckets
	fired := 0
	prevAt, prevNode := Time(-1), int32(-1)
	h := k.RegisterHandler(func(now Time, node, _ int32) {
		if now < prevAt {
			t.Fatalf("time went backwards: %v after %v", now, prevAt)
		}
		if now == prevAt && node <= prevNode {
			t.Fatalf("FIFO broken at %v: node %d after %d", now, node, prevNode)
		}
		prevAt, prevNode = now, node
		fired++
	})
	for i := 0; i < events; i++ {
		// 8 distinct timestamps — massive ties — scheduled in node order.
		k.Schedule(Time(time.Duration(i%8)*time.Millisecond), h, int32(i), 0)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != events {
		t.Fatalf("fired %d, want %d", fired, events)
	}
	if prevAt != Time(7*time.Millisecond) {
		t.Fatalf("last event at %v", prevAt)
	}
}

// TestCalendarScheduleZeroAlloc pins the calendar hot path at zero heap
// allocations per event once buckets are warm — the property that lets the
// bounded-latency band run n=10⁷ without GC pressure.
func TestCalendarScheduleZeroAlloc(t *testing.T) {
	k := New()
	k.SetBoundedDelayHint(time.Millisecond, 0)
	var count int
	h := k.RegisterHandler(func(_ Time, _, _ int32) { count++ })
	warm := func() {
		base := k.Now()
		for i := 0; i < 1024; i++ {
			k.Schedule(base.Add(time.Duration(i%37)*time.Microsecond), h, int32(i), 0)
		}
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up must carry the sliding window across the whole bucket ring
	// once: a ring slot allocates its record storage the first time the
	// window reaches it, and is allocation-free from then on.
	for k.Now() < Time(10*time.Millisecond) {
		warm()
	}
	allocs := testing.AllocsPerRun(10, warm)
	if allocs != 0 {
		t.Fatalf("calendar schedule+fire path allocates %.1f per 1024-event batch, want 0", allocs)
	}
}

// TestTypedAndClosureEventsShareFIFOOrder checks that typed (Schedule) and
// closure (At) events interleave in strict scheduling order at equal
// timestamps — one global seq counter spans both paths.
func TestTypedAndClosureEventsShareFIFOOrder(t *testing.T) {
	k := New()
	var order []int
	h := k.RegisterHandler(func(_ Time, node, _ int32) { order = append(order, int(node)) })
	at := Time(time.Millisecond)
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			k.Schedule(at, h, int32(i), 0)
		} else {
			i := i
			k.At(at, func() { order = append(order, i) })
		}
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("typed/closure ties not FIFO: %v", order)
		}
	}
}

// TestKernelReset checks that a Reset kernel behaves like a fresh one and
// invalidates pre-Reset handles.
func TestKernelReset(t *testing.T) {
	k := New()
	h := k.RegisterHandler(func(_ Time, _, _ int32) {})
	k.Schedule(Time(time.Millisecond), h, 0, 0)
	stale := k.After(2*time.Millisecond, func() { t.Error("pre-Reset event fired") })
	k.SetBudget(5)

	k.Reset()
	if k.Now() != 0 || k.Pending() != 0 || k.Fired() != 0 {
		t.Fatalf("Reset left state: now=%v pending=%d fired=%d", k.Now(), k.Pending(), k.Fired())
	}
	if !stale.Canceled() {
		t.Error("pre-Reset handle still pending")
	}
	if k.Cancel(stale) {
		t.Error("pre-Reset handle canceled successfully")
	}

	var fired []int
	h2 := k.RegisterHandler(func(_ Time, node, _ int32) { fired = append(fired, int(node)) })
	k.Schedule(Time(time.Millisecond), h2, 1, 0)
	k.After(2*time.Millisecond, func() { fired = append(fired, 2) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("post-Reset run fired %v", fired)
	}
	if k.Now() != Time(2*time.Millisecond) {
		t.Fatalf("post-Reset clock at %v", k.Now())
	}
}

// TestScheduleZeroAlloc pins the typed hot path at zero heap allocations
// per event in steady state (queue capacity warmed).
func TestScheduleZeroAlloc(t *testing.T) {
	k := New()
	var count int
	h := k.RegisterHandler(func(_ Time, _, _ int32) { count++ })
	warm := func() {
		base := k.Now()
		for i := 0; i < 1024; i++ {
			k.Schedule(base.Add(time.Duration(i%37)*time.Microsecond), h, int32(i), 0)
		}
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	allocs := testing.AllocsPerRun(10, warm)
	if allocs != 0 {
		t.Fatalf("typed schedule+fire path allocates %.1f per 1024-event batch, want 0", allocs)
	}
}
