package sim

import (
	"testing"
	"time"

	"gossipkit/internal/xrand"
)

// Differential stress: push enough pending events to force grow(), mix
// far-future pushes (overflow), and interleave pops with below-window
// pushes (rebase), comparing pop order against the plain heap.
func TestReviewCalendarGrowRebase(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		r := xrand.New(seed)
		cal := NewCalendarQueue(time.Millisecond, 0) // nb=256, grow at >2048
		var hp []record
		var seq uint64
		push := func(at Time) {
			seq++
			rec := record{at: at, seq: seq}
			cal.push(rec)
			heapPush(&hp, rec)
		}
		pop := func() {
			if len(hp) == 0 {
				return
			}
			want := heapPop(&hp)
			got := cal.pop()
			if got != want {
				t.Fatalf("seed=%d: pop got (at=%d seq=%d) want (at=%d seq=%d)", seed, got.at, got.seq, want.at, want.seq)
			}
		}
		now := Time(0)
		// Phase 1: flood 10k events within the band to force grow().
		for i := 0; i < 10000; i++ {
			push(now.Add(time.Duration(r.Intn(1_000_000))))
		}
		if cal.len() != len(hp) {
			t.Fatalf("seed=%d: len %d vs %d", seed, cal.len(), len(hp))
		}
		// Phase 2: interleave pops with pushes, some far future (overflow),
		// some right at/below the current min (rebase pressure).
		for i := 0; i < 30000; i++ {
			op := r.Intn(10)
			var minAt Time
			if len(hp) > 0 {
				minAt = hp[0].at
			}
			switch {
			case op < 6:
				pop()
			case op < 8:
				push(minAt.Add(time.Duration(r.Intn(2_000_000))))
			case op < 9:
				// far beyond the band: overflow heap
				push(minAt.Add(time.Duration(10_000_000 + r.Intn(50_000_000))))
			default:
				// at or just above the current min (can land below the
				// calendar's slid window -> rebase)
				push(minAt.Add(time.Duration(r.Intn(3))))
			}
		}
		for len(hp) > 0 {
			pop()
		}
		if cal.len() != 0 {
			t.Fatalf("seed=%d: calendar not empty at end: %d", seed, cal.len())
		}
		_, ok := cal.peek()
		if ok {
			t.Fatalf("seed=%d: peek on empty returned ok", seed)
		}
	}
}

// Stress the overflow-only regime: everything lands beyond the window,
// then drains through rebase-on-pop.
func TestReviewCalendarOverflowOnly(t *testing.T) {
	r := xrand.New(7)
	cal := NewCalendarQueue(50*time.Microsecond, 0)
	var hp []record
	var seq uint64
	for i := 0; i < 5000; i++ {
		seq++
		at := Time(time.Duration(1_000_000_000 + r.Intn(1_000_000_000)))
		rec := record{at: at, seq: seq}
		cal.push(rec)
		heapPush(&hp, rec)
	}
	for len(hp) > 0 {
		want := heapPop(&hp)
		// Interleave a below-window push occasionally: the record shares
		// the timestamp just popped (at or below the calendar's slid
		// window, forcing the rebase path) but carries a later seq, so
		// `want` still fires first and the two queues stay in sync.
		if want.seq%97 == 0 {
			seq++
			rec := record{at: want.at, seq: seq}
			cal.push(rec)
			heapPush(&hp, rec)
		}
		got := cal.pop()
		if got != want {
			t.Fatalf("pop got (at=%d seq=%d) want (at=%d seq=%d)", got.at, got.seq, want.at, want.seq)
		}
	}
	if cal.len() != 0 {
		t.Fatalf("calendar not empty: %d", cal.len())
	}
}
