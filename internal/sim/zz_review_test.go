package sim

import (
	"testing"
	"time"

	"gossipkit/internal/xrand"
)

// Differential stress: push enough pending events to force grow(), mix
// far-future pushes (overflow), and interleave pops with below-window
// pushes (rebase), comparing pop order against the plain heap.
func TestReviewCalendarGrowRebase(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		r := xrand.New(seed)
		cal := NewCalendarQueue(time.Millisecond, 0) // nb=256, grow at >2048
		var hp []record
		var seq uint64
		push := func(at Time) {
			seq++
			rec := record{at: at, seq: seq}
			cal.push(rec)
			heapPush(&hp, rec)
		}
		pop := func() {
			if len(hp) == 0 {
				return
			}
			want := heapPop(&hp)
			got := cal.pop()
			if got != want {
				t.Fatalf("seed=%d: pop got (at=%d seq=%d) want (at=%d seq=%d)", seed, got.at, got.seq, want.at, want.seq)
			}
		}
		now := Time(0)
		// Phase 1: flood 10k events within the band to force grow().
		for i := 0; i < 10000; i++ {
			push(now.Add(time.Duration(r.Intn(1_000_000))))
		}
		if cal.len() != len(hp) {
			t.Fatalf("seed=%d: len %d vs %d", seed, cal.len(), len(hp))
		}
		// Phase 2: interleave pops with pushes, some far future (overflow),
		// some right at/below the current min (rebase pressure).
		for i := 0; i < 30000; i++ {
			op := r.Intn(10)
			var minAt Time
			if len(hp) > 0 {
				minAt = hp[0].at
			}
			switch {
			case op < 6:
				pop()
			case op < 8:
				push(minAt.Add(time.Duration(r.Intn(2_000_000))))
			case op < 9:
				// far beyond the band: overflow heap
				push(minAt.Add(time.Duration(10_000_000 + r.Intn(50_000_000))))
			default:
				// at or just above the current min (can land below the
				// calendar's slid window -> rebase)
				push(minAt.Add(time.Duration(r.Intn(3))))
			}
		}
		for len(hp) > 0 {
			pop()
		}
		if cal.len() != 0 {
			t.Fatalf("seed=%d: calendar not empty at end: %d", seed, cal.len())
		}
		_, ok := cal.peek()
		if ok {
			t.Fatalf("seed=%d: peek on empty returned ok", seed)
		}
	}
}

// Stress the overflow-only regime: everything lands beyond the window,
// then drains through rebase-on-pop.
func TestReviewCalendarOverflowOnly(t *testing.T) {
	r := xrand.New(7)
	cal := NewCalendarQueue(50*time.Microsecond, 0)
	var hp []record
	var seq uint64
	for i := 0; i < 5000; i++ {
		seq++
		at := Time(time.Duration(1_000_000_000 + r.Intn(1_000_000_000)))
		rec := record{at: at, seq: seq}
		cal.push(rec)
		heapPush(&hp, rec)
	}
	for len(hp) > 0 {
		want := heapPop(&hp)
		// Interleave a below-window push occasionally: the record shares
		// the timestamp just popped (at or below the calendar's slid
		// window, forcing the rebase path) but carries a later seq, so
		// `want` still fires first and the two queues stay in sync.
		if want.seq%97 == 0 {
			seq++
			rec := record{at: want.at, seq: seq}
			cal.push(rec)
			heapPush(&hp, rec)
		}
		got := cal.pop()
		if got != want {
			t.Fatalf("pop got (at=%d seq=%d) want (at=%d seq=%d)", got.at, got.seq, want.at, want.seq)
		}
	}
	if cal.len() != 0 {
		t.Fatalf("calendar not empty: %d", cal.len())
	}
}

// TestReviewCalendarBulkSameTimeInsertIntoDrainedBucket pins the capped
// bubble in CalendarQueue.insert: when the cursor has already gathered a
// bucket into the sorted scratch and a bulk of records lands on that same
// bucket — the sharded barrier-flush pattern under constant latency,
// where a whole wave shares one timestamp and every new seq fires after
// all its ties — insertion must stay near-linear (the scratch is
// returned to its segments past maxBubble steps and re-sorted once) and
// the fire order must remain exactly the reference heap's (at, seq)
// order.
func TestReviewCalendarBulkSameTimeInsertIntoDrainedBucket(t *testing.T) {
	k := New()
	ref := &oldKernel{}
	var got, want []int32
	h := k.RegisterHandler(func(now Time, node, payload int32) {
		got = append(got, node)
	})
	k.SetBoundedDelayHint(5*time.Millisecond, 4096)
	if k.QueueKind() != "calendar" {
		t.Fatalf("queue kind %q, want calendar", k.QueueKind())
	}

	wave := Time(10 * time.Millisecond)
	id := int32(0)
	sched := func(at Time) {
		n := id
		id++
		k.Schedule(at, h, n, 0)
		ref.at(at, func() { want = append(want, n) })
	}
	for i := 0; i < 200; i++ {
		sched(wave)
	}
	// Load the wave's bucket into the drain scratch: Run peeks past an
	// empty horizon, which gathers and sorts the earliest bucket.
	if err := k.Run(Time(5 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	ref.run(Time(5 * time.Millisecond))
	// Bulk insert into the gathered bucket: same timestamp (ties firing
	// after everything buffered — the quadratic case before the cap),
	// plus stragglers just before and after the wave.
	for i := 0; i < 400; i++ {
		sched(wave)
		if i%50 == 0 {
			sched(wave - Time(i+1))
			sched(wave + Time(i+1))
		}
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	ref.run(End)
	if len(got) != len(want) || len(got) != int(id) {
		t.Fatalf("fired %d events, reference %d, scheduled %d", len(got), len(want), id)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("fire order diverged at %d: got node %d, reference %d", i, got[i], want[i])
		}
	}
}
