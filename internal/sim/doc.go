// Package sim is a small deterministic discrete-event simulation kernel:
// a virtual clock and a priority queue of timestamped events. It underpins
// the simulated network substrate (internal/simnet), which the gossip
// protocols run on when latency, loss, and timing matter.
//
// Determinism: events with equal timestamps fire in scheduling order
// (FIFO via a monotonically increasing sequence number), so a run is a pure
// function of its inputs and seeds regardless of map iteration or goroutine
// scheduling — the kernel is single-goroutine by design.
//
// Two queue disciplines back the kernel, firing events in exactly the same
// (at, seq) order:
//
//   - A flat, value-typed 4-ary min-heap of fixed-size records — the
//     general-purpose default, O(log n) per operation.
//   - A CalendarQueue — a bucket ring over simulated time with an overflow
//     heap, amortized O(1) per operation when event delays stay within a
//     bounded band. Callers that know their delay bound (simnet, whenever
//     the latency model is bounded) select it with SetBoundedDelayHint;
//     the heap remains the fallback and the equivalence oracle.
//
// Neither discipline allocates on the hot path: typed events scheduled
// with Schedule and dispatched to a registered handler by index are plain
// 32-byte records, which is what makes n=10⁶..10⁷-node network executions
// feasible. The closure-based At/After/Cancel API remains as a thin
// compatibility layer for low-rate callers (scenario hooks, examples); it
// parks the closure in a generation-counted slot table and enqueues a
// record pointing at the slot, so canceling is O(1) lazy invalidation
// rather than a queue removal.
package sim
