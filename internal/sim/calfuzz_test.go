package sim

import (
	"fmt"
	"testing"
	"time"

	"gossipkit/internal/xrand"
)

// differential fuzz: closure events + cancels, heap vs calendar.
func TestCalendarFuzzClosure(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		for _, hint := range []time.Duration{50 * time.Microsecond, time.Millisecond, 8 * time.Millisecond} {
			runOne := func(k *Kernel) []string {
				var tr []string
				var cancels []*Event
				r := xrand.New(seed)
				for i := 0; i < 40; i++ {
					i := i
					at := Time(time.Duration(r.Intn(8)) * time.Millisecond)
					cancels = append(cancels, k.At(at, func() {
						tr = append(tr, fmt.Sprintf("%d@%v", i, k.Now()))
					}))
				}
				for i := 0; i < 40; i += 3 {
					ok := k.Cancel(cancels[i])
					tr = append(tr, fmt.Sprintf("c%d=%v", i, ok))
				}
				_ = k.Run(Time(3 * time.Millisecond))
				tr = append(tr, fmt.Sprintf("h@%v", k.Now()))
				for i := 40; i < 60; i++ {
					i := i
					at := k.Now().Add(time.Duration(r.Intn(8_000_000)))
					cancels = append(cancels, k.At(at, func() {
						tr = append(tr, fmt.Sprintf("%d@%v", i, k.Now()))
						if r.Bool(0.3) {
							v := r.Intn(len(cancels))
							tr = append(tr, fmt.Sprintf("c%d=%v", v, k.Cancel(cancels[v])))
						}
					}))
				}
				_ = k.RunAll()
				return tr
			}
			want := runOne(New())
			kc := New()
			kc.SetBoundedDelayHint(hint, 0)
			got := runOne(kc)
			if len(got) != len(want) {
				t.Fatalf("seed=%d hint=%v: len %d vs %d", seed, hint, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed=%d hint=%v diverge at %d: cal=%s heap=%s", seed, hint, i, got[i], want[i])
				}
			}
		}
	}
}

// differential fuzz: typed events, random times, heap vs calendar.
func TestCalendarFuzzTyped(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		for _, hint := range []time.Duration{50 * time.Microsecond, time.Millisecond, 8 * time.Millisecond} {
			runOne := func(k *Kernel) []string {
				var tr []string
				r := xrand.New(seed)
				var h HandlerID
				h = k.RegisterHandler(func(now Time, node, depth int32) {
					tr = append(tr, fmt.Sprintf("%d@%v", node, now))
					if depth < 2 && r.Bool(0.4) {
						nkids := 1 + r.Intn(2)
						for c := 0; c < nkids; c++ {
							d := time.Duration(r.Intn(3_000_000)) * time.Nanosecond
							k.Schedule(now.Add(d), h, node*10+int32(c), depth+1)
						}
					}
				})
				for i := 0; i < 40; i++ {
					at := Time(time.Duration(r.Intn(8)) * time.Millisecond)
					k.Schedule(at, h, int32(i), 0)
				}
				_ = k.Run(Time(3 * time.Millisecond))
				tr = append(tr, fmt.Sprintf("h@%v", k.Now()))
				for i := 0; i < 20; i++ {
					at := k.Now().Add(time.Duration(r.Intn(8_000_000)))
					k.Schedule(at, h, int32(1000+i), 0)
				}
				_ = k.RunAll()
				return tr
			}
			want := runOne(New())
			kc := New()
			kc.SetBoundedDelayHint(hint, 0)
			got := runOne(kc)
			if len(got) != len(want) {
				t.Fatalf("seed=%d hint=%v: len %d vs %d", seed, hint, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed=%d hint=%v diverge at %d: cal=%s heap=%s", seed, hint, i, got[i], want[i])
				}
			}
		}
	}
}
