// Package sim is a small deterministic discrete-event simulation kernel:
// a virtual clock and a priority queue of timestamped events. It underpins
// the simulated network substrate (internal/simnet), which the gossip
// protocols run on when latency, loss, and timing matter.
//
// Determinism: events with equal timestamps fire in scheduling order
// (FIFO via a monotonically increasing sequence number), so a run is a pure
// function of its inputs and seeds regardless of map iteration or goroutine
// scheduling — the kernel is single-goroutine by design.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a simulated timestamp. The zero Time is the simulation start.
// It counts nanoseconds, mirroring time.Duration, so durations interoperate.
type Time int64

// Add returns t advanced by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration since the simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t in seconds since the simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string { return time.Duration(t).String() }

// End is a sentinel time after every schedulable event.
const End Time = math.MaxInt64

// Event is a scheduled callback.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index, -1 when not queued
}

// Canceled reports whether the event is no longer pending (it was canceled
// or has already fired).
func (e *Event) Canceled() bool { return e.index == -1 }

// Kernel is the simulation driver. The zero value is not usable; call New.
// A Kernel must be used from a single goroutine.
type Kernel struct {
	now    Time
	queue  eventQueue
	seq    uint64
	fired  uint64
	budget uint64 // 0 = unlimited
}

// New returns a kernel at time zero.
func New() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// SetBudget caps the total number of events the kernel will execute;
// 0 removes the cap. Run returns ErrBudget when the cap is hit, which turns
// runaway protocol bugs into test failures instead of hangs.
func (k *Kernel) SetBudget(n uint64) { k.budget = n }

// ErrBudget is returned by Run when the event budget is exhausted.
var ErrBudget = errors.New("sim: event budget exhausted")

// At schedules fn at absolute time at; scheduling in the past (before Now)
// panics, since it would break causality. It returns a handle that can
// cancel the event.
func (k *Kernel) At(at Time, fn func()) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, k.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	k.seq++
	e := &Event{at: at, seq: k.seq, fn: fn}
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn after delay d (>= 0) from now.
func (k *Kernel) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// Cancel removes a pending event; canceling an already-fired or canceled
// event is a no-op. It reports whether the event was pending.
func (k *Kernel) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&k.queue, e.index)
	e.index = -1
	return true
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.queue) }

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*Event)
	e.index = -1
	k.now = e.at
	k.fired++
	e.fn()
	return true
}

// Run fires events until the queue is empty or the horizon is passed
// (events scheduled strictly after horizon remain queued; the clock is left
// at the later of its current value and the last fired event). It returns
// ErrBudget if the event budget is exhausted first.
func (k *Kernel) Run(horizon Time) error {
	for len(k.queue) > 0 && k.queue[0].at <= horizon {
		if k.budget > 0 && k.fired >= k.budget {
			return ErrBudget
		}
		k.Step()
	}
	return nil
}

// RunAll fires every event until the queue drains. It returns ErrBudget if
// the event budget is exhausted first.
func (k *Kernel) RunAll() error { return k.Run(End) }

// eventQueue implements container/heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
