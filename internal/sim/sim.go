package sim

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a simulated timestamp. The zero Time is the simulation start.
// It counts nanoseconds, mirroring time.Duration, so durations interoperate.
type Time int64

// Add returns t advanced by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration since the simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t in seconds since the simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string { return time.Duration(t).String() }

// End is a sentinel time after every schedulable event.
const End Time = math.MaxInt64

// HandlerID identifies a typed event handler registered with
// RegisterHandler. The zero value is a valid id (the first handler
// registered); use Schedule only with ids returned by RegisterHandler.
type HandlerID int32

// closureHandler marks a record as a closure event dispatched through the
// slot table instead of the typed handler table.
const closureHandler HandlerID = -1

// record is one queued event. It is a plain value (32 bytes): pushing and
// popping records never touches the garbage collector.
type record struct {
	at      Time
	seq     uint64
	h       HandlerID // typed handler index, or closureHandler
	node    int32     // handler argument; slot index for closure events
	payload int32     // handler argument; unused for closure events
	gen     uint32    // slot generation for closure events
}

// before reports whether a fires before b: earlier time first, scheduling
// order (seq) breaking ties — the FIFO guarantee.
func (a record) before(b record) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// closureSlot parks a closure event's callback. gen increments every time
// the slot is released (fired, canceled, or reset), so stale queue records
// and stale Event handles can never observe a recycled slot.
type closureSlot struct {
	fn  func()
	gen uint32
}

// Event is a cancelable handle to a closure event scheduled with At or
// After. The zero value is not meaningful.
type Event struct {
	k    *Kernel
	slot int32
	gen  uint32
}

// Canceled reports whether the event is no longer pending (it was canceled
// or has already fired).
func (e *Event) Canceled() bool {
	return e == nil || e.k.slots[e.slot].gen != e.gen
}

// Kernel is the simulation driver. The zero value is not usable; call New.
// A Kernel must be used from a single goroutine.
type Kernel struct {
	now    Time
	queue  []record // implicit 4-ary min-heap ordered by (at, seq)
	seq    uint64
	fired  uint64
	budget uint64 // 0 = unlimited
	live   int    // queued records that have not been canceled

	// cal, when useCal is set, replaces the heap as the event queue (see
	// SetBoundedDelayHint). The object is retained across Reset so its
	// bucket capacity is recycled by run-scoped arenas.
	cal    *CalendarQueue
	useCal bool

	handlers  []func(now Time, node, payload int32)
	slots     []closureSlot
	freeSlots []int32
}

// New returns a kernel at time zero.
func New() *Kernel { return &Kernel{} }

// Reset returns the kernel to time zero with an empty queue, retaining the
// queue, handler, and slot capacity so a run-scoped arena can recycle one
// kernel across many executions without reallocating. Registered handlers
// are dropped (re-register them for the next run) and Event handles from
// before the Reset become permanently canceled.
func (k *Kernel) Reset() {
	k.now = 0
	k.queue = k.queue[:0]
	k.useCal = false // revert to the heap until the next delay hint
	if k.cal != nil {
		k.cal.clear()
	}
	k.seq = 0
	k.fired = 0
	k.budget = 0
	k.live = 0
	k.handlers = k.handlers[:0]
	k.freeSlots = k.freeSlots[:0]
	for i := range k.slots {
		// Invalidate outstanding handles and queue records, then put
		// every slot back on the free list.
		k.slots[i].fn = nil
		k.slots[i].gen++
		k.freeSlots = append(k.freeSlots, int32(i))
	}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// SetBudget caps the total number of events the kernel will execute;
// 0 removes the cap. Run returns ErrBudget when the cap is hit, which turns
// runaway protocol bugs into test failures instead of hangs.
func (k *Kernel) SetBudget(n uint64) { k.budget = n }

// ErrBudget is returned by Run when the event budget is exhausted.
var ErrBudget = errors.New("sim: event budget exhausted")

// RegisterHandler registers a typed event handler and returns its id for
// Schedule. Handlers are dispatched by index with the record's two payload
// words — no per-event closure exists anywhere on this path. Handlers
// cannot be unregistered; register once at setup (Reset drops them).
func (k *Kernel) RegisterHandler(h func(now Time, node, payload int32)) HandlerID {
	if h == nil {
		panic("sim: nil handler")
	}
	k.handlers = append(k.handlers, h)
	return HandlerID(len(k.handlers) - 1)
}

// Schedule enqueues a typed event: handler h fires at absolute time at with
// arguments (node, payload). This is the zero-allocation hot path.
// Scheduling in the past (before Now) panics, since it would break
// causality.
func (k *Kernel) Schedule(at Time, h HandlerID, node, payload int32) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, k.now))
	}
	if h < 0 || int(h) >= len(k.handlers) {
		panic(fmt.Sprintf("sim: unregistered handler id %d", h))
	}
	k.seq++
	k.qpush(record{at: at, seq: k.seq, h: h, node: node, payload: payload})
	k.live++
}

// ScheduleAfter enqueues a typed event after delay d (>= 0) from now.
func (k *Kernel) ScheduleAfter(d time.Duration, h HandlerID, node, payload int32) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.Schedule(k.now.Add(d), h, node, payload)
}

// At schedules fn at absolute time at; scheduling in the past (before Now)
// panics, since it would break causality. It returns a handle that can
// cancel the event.
func (k *Kernel) At(at Time, fn func()) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, k.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	slot := k.allocSlot(fn)
	gen := k.slots[slot].gen
	k.seq++
	k.qpush(record{at: at, seq: k.seq, h: closureHandler, node: slot, gen: gen})
	k.live++
	return &Event{k: k, slot: slot, gen: gen}
}

// After schedules fn after delay d (>= 0) from now.
func (k *Kernel) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// Every schedules fn at absolute time start and then repeatedly every
// interval for as long as fn returns true. It is the shared driver of
// recurring activities that pace themselves off the simulated clock — the
// protocol runtime's gossip round ticks and the scenario engine's stall
// watcher both run on it. Each firing is an ordinary closure event, so
// other events scheduled at the same timestamp interleave in seq order,
// and the final false-returning call consumes its event and schedules
// nothing further (the kernel can drain).
func (k *Kernel) Every(start Time, interval time.Duration, fn func() bool) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive tick interval %v", interval))
	}
	if fn == nil {
		panic("sim: nil tick function")
	}
	var fire func()
	fire = func() {
		if !fn() {
			return
		}
		k.At(k.now.Add(interval), fire)
	}
	k.At(start, fire)
}

// Cancel removes a pending event; canceling an already-fired or canceled
// event is a no-op. It reports whether the event was pending. The queue
// record is invalidated in place (generation bump) and discarded when it
// surfaces, so Cancel is O(1).
func (k *Kernel) Cancel(e *Event) bool {
	if e == nil || e.k != k || k.slots[e.slot].gen != e.gen {
		return false
	}
	k.releaseSlot(e.slot)
	k.live--
	return true
}

// Pending returns the number of queued events, not counting canceled ones.
func (k *Kernel) Pending() int { return k.live }

// NextEventTime returns the timestamp of the earliest live pending event,
// or false if none is queued. The sharded runtime's window computation
// polls every shard kernel with it at each barrier.
func (k *Kernel) NextEventTime() (Time, bool) {
	k.dropCanceled()
	rec, ok := k.qpeek()
	if !ok {
		return 0, false
	}
	return rec.at, true
}

// Step fires the earliest pending event and returns true, or returns false
// if no live event is queued.
func (k *Kernel) Step() bool {
	for k.qlen() > 0 {
		rec := k.qpop()
		if rec.h == closureHandler {
			s := &k.slots[rec.node]
			if s.gen != rec.gen {
				continue // canceled; drop the stale record
			}
			fn := s.fn
			k.releaseSlot(rec.node)
			k.now = rec.at
			k.fired++
			k.live--
			fn()
			return true
		}
		k.now = rec.at
		k.fired++
		k.live--
		k.handlers[rec.h](rec.at, rec.node, rec.payload)
		return true
	}
	return false
}

// Run fires events until the queue is empty or the horizon is passed
// (events scheduled strictly after horizon remain queued; the clock is left
// at the later of its current value and the last fired event). It returns
// ErrBudget if the event budget is exhausted first.
func (k *Kernel) Run(horizon Time) error {
	for {
		k.dropCanceled()
		head, ok := k.qpeek()
		if !ok || head.at > horizon {
			return nil
		}
		if k.budget > 0 && k.fired >= k.budget {
			return ErrBudget
		}
		k.Step()
	}
}

// RunAll fires every event until the queue drains. It returns ErrBudget if
// the event budget is exhausted first.
func (k *Kernel) RunAll() error { return k.Run(End) }

// dropCanceled discards stale records at the top of the heap so the head,
// if any, is a live event.
func (k *Kernel) dropCanceled() {
	for {
		rec, ok := k.qpeek()
		if !ok || rec.h != closureHandler || k.slots[rec.node].gen == rec.gen {
			return
		}
		k.qpop()
	}
}

// ---------------------------------------------------------------------------
// Closure slot table

func (k *Kernel) allocSlot(fn func()) int32 {
	if n := len(k.freeSlots); n > 0 {
		idx := k.freeSlots[n-1]
		k.freeSlots = k.freeSlots[:n-1]
		k.slots[idx].fn = fn
		return idx
	}
	k.slots = append(k.slots, closureSlot{fn: fn})
	return int32(len(k.slots) - 1)
}

// releaseSlot invalidates and recycles a slot. The generation bump makes
// any queue record or Event handle still pointing at it permanently stale.
func (k *Kernel) releaseSlot(idx int32) {
	k.slots[idx].fn = nil
	k.slots[idx].gen++
	k.freeSlots = append(k.freeSlots, idx)
}

// ---------------------------------------------------------------------------
// Queue selection
//
// The kernel owns two queue disciplines over the same record type: the flat
// 4-ary heap below (general-purpose, O(log n)) and the CalendarQueue in
// calendar.go (amortized O(1) when event delays sit in a bounded band).
// Both fire records in exactly the same (at, seq) order — the equivalence
// tests lock them to one another — so which one is active is invisible to
// callers except in throughput.

// SetBoundedDelayHint tells the kernel that scheduling delays are expected
// to stay within max of the current time with around pending events queued
// at once, switching the event queue to the calendar (bucket) discipline
// sized for that band; max <= 0 reverts to the 4-ary heap. Both values are
// performance advice, not a contract: events scheduled beyond the band
// spill into the calendar's overflow heap and still fire in exact
// (at, seq) order, and a low pending estimate merely raises bucket
// occupancy (the ring also grows itself under load). The hint only takes
// effect while the queue is empty (a non-empty queue leaves the discipline
// unchanged), and Reset reverts to the heap — re-hint after each Reset, as
// simnet's bounded latency models do automatically.
func (k *Kernel) SetBoundedDelayHint(max time.Duration, pending int) {
	if k.qlen() != 0 {
		return
	}
	if max <= 0 {
		k.useCal = false
		return
	}
	if k.cal == nil {
		k.cal = NewCalendarQueue(max, pending)
	} else {
		k.cal.reconfigure(max, pending)
	}
	k.useCal = true
}

// QueueKind reports which queue discipline is active: "calendar" or "heap".
func (k *Kernel) QueueKind() string {
	if k.useCal {
		return "calendar"
	}
	return "heap"
}

func (k *Kernel) qpush(rec record) {
	if k.useCal {
		k.cal.push(rec)
	} else {
		heapPush(&k.queue, rec)
	}
}

func (k *Kernel) qpop() record {
	if k.useCal {
		return k.cal.pop()
	}
	return heapPop(&k.queue)
}

func (k *Kernel) qpeek() (record, bool) {
	if k.useCal {
		return k.cal.peek()
	}
	if len(k.queue) == 0 {
		return record{}, false
	}
	return k.queue[0], true
}

func (k *Kernel) qlen() int {
	if k.useCal {
		return k.cal.len()
	}
	return len(k.queue)
}

// ---------------------------------------------------------------------------
// Flat 4-ary min-heap
//
// A 4-ary layout halves the tree depth of a binary heap: sift-down does
// more comparisons per level but far fewer cache-missing swaps, which wins
// on queues with 10⁵..10⁶ value-typed records. The functions operate on a
// plain record slice so the CalendarQueue can reuse them for its overflow
// heap.

const heapArity = 4

func heapPush(qp *[]record, rec record) {
	*qp = append(*qp, rec)
	heapSiftUp(*qp, len(*qp)-1)
}

func heapPop(qp *[]record) record {
	q := *qp
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	*qp = q[:last]
	if last > 0 {
		heapSiftDown(q[:last], 0)
	}
	return top
}

func heapSiftUp(q []record, i int) {
	rec := q[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !rec.before(q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = rec
}

func heapSiftDown(q []record, i int) {
	n := len(q)
	rec := q[i]
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q[c].before(q[min]) {
				min = c
			}
		}
		if !q[min].before(rec) {
			break
		}
		q[i] = q[min]
		i = min
	}
	q[i] = rec
}
