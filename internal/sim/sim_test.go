package sim

import (
	"errors"
	"testing"
	"time"
)

func TestEmptyKernel(t *testing.T) {
	k := New()
	if k.Now() != 0 {
		t.Errorf("fresh kernel at %v", k.Now())
	}
	if k.Step() {
		t.Error("Step on empty queue returned true")
	}
	if err := k.RunAll(); err != nil {
		t.Errorf("RunAll on empty queue: %v", err)
	}
}

func TestEventOrdering(t *testing.T) {
	k := New()
	var order []int
	k.After(30*time.Millisecond, func() { order = append(order, 3) })
	k.After(10*time.Millisecond, func() { order = append(order, 1) })
	k.After(20*time.Millisecond, func() { order = append(order, 2) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if k.Now() != Time(30*time.Millisecond) {
		t.Errorf("clock at %v", k.Now())
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	k := New()
	var order []int
	at := Time(5 * time.Millisecond)
	for i := 0; i < 10; i++ {
		i := i
		k.At(at, func() { order = append(order, i) })
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	k := New()
	var hits []Time
	k.After(time.Millisecond, func() {
		hits = append(hits, k.Now())
		k.After(time.Millisecond, func() {
			hits = append(hits, k.Now())
		})
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0] != Time(time.Millisecond) || hits[1] != Time(2*time.Millisecond) {
		t.Errorf("hits = %v", hits)
	}
}

func TestCancel(t *testing.T) {
	k := New()
	fired := false
	e := k.After(time.Millisecond, func() { fired = true })
	if e.Canceled() {
		t.Error("pending event reported canceled")
	}
	if !k.Cancel(e) {
		t.Error("Cancel returned false for pending event")
	}
	if k.Cancel(e) {
		t.Error("double Cancel returned true")
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("canceled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	k := New()
	var order []int
	var events []*Event
	for i := 0; i < 10; i++ {
		i := i
		events = append(events, k.After(time.Duration(i+1)*time.Millisecond, func() {
			order = append(order, i)
		}))
	}
	k.Cancel(events[4])
	k.Cancel(events[7])
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("fired %d events, want 8: %v", len(order), order)
	}
	prev := -1
	for _, v := range order {
		if v == 4 || v == 7 {
			t.Fatalf("canceled event %d fired", v)
		}
		if v <= prev {
			t.Fatalf("out of order: %v", order)
		}
		prev = v
	}
}

func TestCancelNil(t *testing.T) {
	if New().Cancel(nil) {
		t.Error("Cancel(nil) returned true")
	}
}

func TestRunHorizon(t *testing.T) {
	k := New()
	var fired []int
	for i := 1; i <= 5; i++ {
		i := i
		k.After(time.Duration(i)*time.Second, func() { fired = append(fired, i) })
	}
	if err := k.Run(Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Errorf("fired %v before horizon", fired)
	}
	if k.Pending() != 2 {
		t.Errorf("pending = %d", k.Pending())
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 5 {
		t.Errorf("fired %v after RunAll", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New()
	k.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(0, func() {})
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New().After(-time.Second, func() {})
}

func TestNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New().At(0, nil)
}

func TestBudget(t *testing.T) {
	k := New()
	k.SetBudget(100)
	// Self-perpetuating event chain.
	var tick func()
	count := 0
	tick = func() {
		count++
		k.After(time.Millisecond, tick)
	}
	k.After(time.Millisecond, tick)
	err := k.RunAll()
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if count != 100 {
		t.Errorf("fired %d events, want 100", count)
	}
	if k.Fired() != 100 {
		t.Errorf("Fired() = %d", k.Fired())
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(1500 * time.Millisecond)
	if t1.Seconds() != 1.5 {
		t.Errorf("Seconds = %g", t1.Seconds())
	}
	if t1.Sub(t0) != 1500*time.Millisecond {
		t.Errorf("Sub = %v", t1.Sub(t0))
	}
	if t1.Duration() != 1500*time.Millisecond {
		t.Errorf("Duration = %v", t1.Duration())
	}
	if t1.String() != "1.5s" {
		t.Errorf("String = %q", t1.String())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		k := New()
		var trace []Time
		for i := 0; i < 50; i++ {
			d := time.Duration((i*37)%17) * time.Millisecond
			k.After(d, func() { trace = append(trace, k.Now()) })
		}
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	k := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(time.Duration(i%100)*time.Microsecond, func() {})
		if i%64 == 63 {
			if err := k.RunAll(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := k.RunAll(); err != nil {
		b.Fatal(err)
	}
}
