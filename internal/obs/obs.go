package obs

import (
	"math"
	"time"

	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/stats"
)

// kindCount sizes the per-kind counter and series arrays; simnet's event
// kinds are a dense enum ending at EventDroppedDown.
const kindCount = int(simnet.EventDroppedDown) + 1

// Options selects what a Probe collects. The zero value enables the
// standard telemetry set — curves at a 1ms tick plus the three
// histograms, no ring tracing; set a field negative to disable that
// collector, positive to size it explicitly.
type Options struct {
	// CurveTick is the virtual-time sampling interval of the series
	// (infected count, in-flight gauge, per-kind counters). Zero defaults
	// to 1ms; negative disables curve sampling.
	CurveTick time.Duration
	// MaxSamples caps each run's series length; a run whose duration
	// exceeds MaxSamples·CurveTick stops sampling and sets
	// Metrics.Truncated rather than growing without bound. Zero defaults
	// to 4096.
	MaxSamples int
	// LatencyBins / LatencyBinWidth shape the first-receipt delivery-
	// latency histogram (bin i counts receipts in [i·W, (i+1)·W), clamped
	// at the last bin). Zero defaults to 64 bins of 1ms; negative
	// LatencyBins disables it.
	LatencyBins     int
	LatencyBinWidth time.Duration
	// HopBins shapes the hops-to-delivery histogram (rounds-to-delivery
	// on the round-driven protocol runtime). Zero defaults to 32;
	// negative disables it.
	HopBins int
	// FanoutBins shapes the per-emission fanout histogram. Zero defaults
	// to 33 (fanouts 0..32, clamped); negative disables it.
	FanoutBins int
	// TraceCapacity, when positive, records raw network events into a
	// preallocated ring of that many slots (oldest overwritten first) and
	// switches the run to a full tracer so per-message send times are
	// exact. Zero or negative disables ring tracing.
	TraceCapacity int
}

func (o Options) normalize() Options {
	if o.CurveTick == 0 {
		o.CurveTick = time.Millisecond
	}
	if o.MaxSamples <= 0 {
		o.MaxSamples = 4096
	}
	if o.LatencyBins == 0 {
		o.LatencyBins = 64
	}
	if o.LatencyBinWidth <= 0 {
		o.LatencyBinWidth = time.Millisecond
	}
	if o.HopBins == 0 {
		o.HopBins = 32
	}
	if o.FanoutBins == 0 {
		o.FanoutBins = 33
	}
	return o
}

// Probe collects telemetry from one run at a time; reuse it across runs
// (Attach resets it) but never across goroutines. The nil *Probe is the
// off state: every method is a nil-check-only no-op, which is the whole
// zero-overhead contract — executors thread a possibly-nil probe and
// call its hooks unconditionally.
type Probe struct {
	opts Options

	net       *simnet.Network
	prev      simnet.Tracer
	delivered *int

	tick sim.Time
	next sim.Time
	cnt  [kindCount]int64

	infected  []int64
	inflight  []int64
	series    [kindCount][]int64
	truncated bool

	lat    *stats.Histogram
	hops   *stats.Histogram
	fanout *stats.Histogram
	hopOf  []int32

	ring *Ring

	end    sim.Time
	totals simnet.Stats

	// Sharded runs: pooled per-shard child probes and their merged
	// telemetry (see ShardProbes / AdoptShards in shard.go).
	children []*Probe
	adopted  *Metrics
}

// New returns a probe collecting per opts. Histogram and ring buffers are
// allocated once here and pooled across Attach cycles.
func New(opts Options) *Probe {
	p := &Probe{opts: opts.normalize()}
	if p.opts.CurveTick > 0 {
		p.tick = sim.Time(p.opts.CurveTick)
	}
	if p.opts.LatencyBins > 0 {
		p.lat = stats.NewHistogram(p.opts.LatencyBins)
	}
	if p.opts.HopBins > 0 {
		p.hops = stats.NewHistogram(p.opts.HopBins)
	}
	if p.opts.FanoutBins > 0 {
		p.fanout = stats.NewHistogram(p.opts.FanoutBins)
	}
	if p.opts.TraceCapacity > 0 {
		p.ring = NewRing(p.opts.TraceCapacity)
	}
	return p
}

// Attach binds the probe to a fresh run: net is the run's network (its
// tracer seam drives curve sampling and ring recording), n the group
// size, and delivered a pointer to the run's delivered-member counter —
// the exact π(t) source, so curves agree with the run's own bookkeeping
// including out-of-band publishes. Any tracer already installed on net
// (e.g. Config.Tracer) keeps seeing every event: the probe chains it,
// at full-tracer cost. Attach resets all pooled state; call it after the
// arena lease and before the first event.
func (p *Probe) Attach(net *simnet.Network, n int, delivered *int) {
	if p == nil {
		return
	}
	p.net, p.delivered = net, delivered
	p.adopted = nil
	p.next = 0
	p.truncated = false
	p.end = 0
	p.totals = simnet.Stats{}
	for k := range p.cnt {
		p.cnt[k] = 0
		p.series[k] = p.series[k][:0]
	}
	p.infected = p.infected[:0]
	p.inflight = p.inflight[:0]
	if p.lat != nil {
		p.lat.Reset()
	}
	if p.hops != nil {
		p.hops.Reset()
		if cap(p.hopOf) < n {
			p.hopOf = make([]int32, n)
		}
		p.hopOf = p.hopOf[:n]
		clear(p.hopOf)
	}
	if p.fanout != nil {
		p.fanout.Reset()
	}
	if p.ring != nil {
		p.ring.Reset()
	}
	p.prev = net.Tracer()
	switch {
	case p.ring != nil || p.prev != nil:
		// Exact send times (ring) or a chained caller tracer need the
		// full tracer, at slot-allocation cost.
		net.SetTracer(p.observe)
	case p.tick > 0:
		// Curves only need kinds and times: the lite tracer keeps the
		// slot-free zero-allocation send path.
		net.SetTracerLite(p.observe)
	}
}

// observe is the probe's tracer: it advances the curve sampler to the
// event's time (filling every elapsed tick bin with the pre-event state),
// counts the event, and feeds the ring and any chained tracer. Event
// times arrive in nondecreasing order (the tracer runs on the kernel
// goroutine at kernel-now), so sampling is single-pass.
func (p *Probe) observe(e simnet.Event) {
	if p.tick > 0 {
		p.advanceTo(e.At)
	}
	if int(e.Kind) < kindCount {
		p.cnt[e.Kind]++
	}
	if p.ring != nil {
		p.ring.push(e)
	}
	if p.prev != nil {
		p.prev(e)
	}
}

func (p *Probe) advanceTo(t sim.Time) {
	for p.next <= t {
		if !p.sample() {
			p.next = sim.Time(math.MaxInt64)
			return
		}
		p.next += p.tick
	}
}

// sample appends one point to every series from the current state; it
// reports false (and marks truncation) once MaxSamples is reached.
func (p *Probe) sample() bool {
	if len(p.infected) >= p.opts.MaxSamples {
		p.truncated = true
		return false
	}
	p.infected = append(p.infected, int64(*p.delivered))
	p.inflight = append(p.inflight, p.cnt[simnet.EventSent]-
		p.cnt[simnet.EventDelivered]-
		p.cnt[simnet.EventDroppedLoss]-
		p.cnt[simnet.EventDroppedCrash]-
		p.cnt[simnet.EventDroppedPartition])
	for k := range p.series {
		p.series[k] = append(p.series[k], p.cnt[k])
	}
	return true
}

// ObserveFirstReceipt records a member's first receipt of the multicast:
// id received at virtual time now from member `from` (-1 for an
// out-of-band receipt, e.g. an additional publisher). It fills the
// latency histogram with the first-receipt time and the hop histogram
// with 1 + the sender's own hop count.
func (p *Probe) ObserveFirstReceipt(id, from int, now sim.Time) {
	if p == nil {
		return
	}
	if p.lat != nil {
		p.lat.Add(int(now.Duration() / p.opts.LatencyBinWidth))
	}
	if p.hops != nil {
		var h int32
		if from >= 0 {
			h = p.hopOf[from] + 1
		}
		p.hopOf[id] = h
		p.hops.Add(int(h))
	}
}

// ObserveFirstReceiptRound is the round-driven runtime's variant of
// ObserveFirstReceipt: the hop histogram bins rounds-to-delivery (the
// number of round ticks fired when id first received) instead of a hop
// chain, which digest/NACK indirection would obscure anyway.
func (p *Probe) ObserveFirstReceiptRound(id, round int, now sim.Time) {
	if p == nil {
		return
	}
	if p.lat != nil {
		p.lat.Add(int(now.Duration() / p.opts.LatencyBinWidth))
	}
	if p.hops != nil {
		p.hops.Add(round)
	}
}

// ObserveSeed records that id holds the multicast before the clock starts
// (the t=0 source bootstrap): hop zero, no latency sample — mirroring the
// executors, which take no DeliveryLatency sample for the source either.
func (p *Probe) ObserveSeed(id int) {
	if p == nil {
		return
	}
	if p.hops != nil {
		p.hopOf[id] = 0
	}
}

// ObserveFanout records one gossip emission's target count.
func (p *Probe) ObserveFanout(k int) {
	if p == nil {
		return
	}
	if p.fanout != nil {
		p.fanout.Add(k)
	}
}

// Finish seals the run's telemetry at virtual time now (the executor's
// kernel time after the drain): it fills the remaining tick bins and
// appends one trailing sample so the final plateau is always present,
// then snapshots the network's final counters.
func (p *Probe) Finish(now sim.Time) {
	if p == nil {
		return
	}
	if p.tick > 0 {
		p.advanceTo(now)
		p.sample()
	}
	p.end = now
	if p.net != nil {
		p.totals = p.net.Stats()
	}
}

// HistSnapshot is one frozen fixed-bin histogram.
type HistSnapshot struct {
	// BinWidth is the value width of one bin — a duration for the
	// latency histogram, zero for unit-binned hop and fanout histograms.
	BinWidth time.Duration
	// Counts holds the per-bin observation counts (out-of-range values
	// were clamped to the edge bins).
	Counts []int64
	// Total is the number of observations.
	Total int64
}

// Metrics is the frozen telemetry of one run, snapshot by
// (*Probe).Metrics after Finish. Series index i holds the state at
// virtual time i·Tick — more precisely, just before the first event at or
// after that boundary — and the last point holds the drained final state.
type Metrics struct {
	// Tick is the curve sampling interval; End the run's final virtual
	// time.
	Tick time.Duration
	End  time.Duration
	// Truncated reports that the run outlived MaxSamples·Tick and the
	// series cover only the prefix.
	Truncated bool
	// Infected is π(t)·n: the number of members holding the multicast.
	Infected []int64
	// InFlight is the number of accepted messages still airborne.
	InFlight []int64
	// Sent, Delivered and the Dropped* series are cumulative per-kind
	// event counts.
	Sent, Delivered                                     []int64
	DroppedLoss, DroppedCrash, DroppedDown, DroppedPart []int64
	// Totals is the network's final counter snapshot (authoritative even
	// when curves are off or truncated).
	Totals simnet.Stats
	// Latency, Hops and Fanout are the run's histograms; nil Counts when
	// that collector was disabled.
	Latency HistSnapshot
	Hops    HistSnapshot
	Fanout  HistSnapshot
	// Trace holds the ring-traced events oldest-first (nil when ring
	// tracing was off); TraceDropped counts events the ring overwrote.
	Trace        []simnet.Event
	TraceDropped int64
}

// Metrics snapshots the probe's state into a standalone Metrics (the only
// allocating step of a probed run; call it once, after Finish).
func (p *Probe) Metrics() *Metrics {
	if p == nil {
		return nil
	}
	if p.adopted != nil {
		return p.adopted
	}
	m := &Metrics{
		Tick:         p.opts.CurveTick,
		End:          p.end.Duration(),
		Truncated:    p.truncated,
		Infected:     append([]int64(nil), p.infected...),
		InFlight:     append([]int64(nil), p.inflight...),
		Sent:         append([]int64(nil), p.series[simnet.EventSent]...),
		Delivered:    append([]int64(nil), p.series[simnet.EventDelivered]...),
		DroppedLoss:  append([]int64(nil), p.series[simnet.EventDroppedLoss]...),
		DroppedCrash: append([]int64(nil), p.series[simnet.EventDroppedCrash]...),
		DroppedDown:  append([]int64(nil), p.series[simnet.EventDroppedDown]...),
		DroppedPart:  append([]int64(nil), p.series[simnet.EventDroppedPartition]...),
		Totals:       p.totals,
	}
	if p.lat != nil {
		m.Latency = HistSnapshot{BinWidth: p.opts.LatencyBinWidth, Counts: p.lat.Counts(), Total: p.lat.Total()}
	}
	if p.hops != nil {
		m.Hops = HistSnapshot{Counts: p.hops.Counts(), Total: p.hops.Total()}
	}
	if p.fanout != nil {
		m.Fanout = HistSnapshot{Counts: p.fanout.Counts(), Total: p.fanout.Total()}
	}
	if p.ring != nil {
		m.Trace = p.ring.Events()
		m.TraceDropped = p.ring.Dropped()
	}
	return m
}
