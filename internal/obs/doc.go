// Package obs is the observability layer of the DES stack: probes that
// turn an opaque execution into inspectable telemetry without perturbing
// it.
//
// A Probe attaches to one run of a simulation front end (core's network
// executor or the protocol baseline runtime) and collects, per run:
//
//   - virtual-time series sampled at a configurable tick — the infected
//     count π(t), the in-flight gauge, and cumulative per-kind
//     send/deliver/drop counters;
//   - fixed-bin pooled histograms — first-receipt delivery latency,
//     hops- or rounds-to-delivery, and per-emission fanout;
//   - optionally, raw network events in a preallocated ring buffer, with
//     exporters to Chrome trace-event JSON and CSV.
//
// Zero-overhead contract: a nil *Probe is a valid probe, and every
// Observe* hook on it is a nil-check-only no-op, so the unprobed hot path
// pays one predictable branch per hook site and allocates nothing —
// core's n=10⁶ benchmark invariant (≈2.2 s, 25 allocs) is guarded with
// probes both off and on. When a probe IS attached, its buffers are
// pooled and reused across runs (one probe per sweep worker), so probed
// sweeps stay O(1)-allocation per run too.
//
// Curve sampling is driven by the network's tracer seam, not by kernel
// events: the probe observes each network event, fills every elapsed tick
// bin with the state just before the event, and never schedules anything
// — so probing cannot interact with quiescence detection, stall
// triggers, or the drain logic. Counters and curves ride the lite tracer
// (simnet.SetTracerLite), which keeps the slot-free zero-allocation send
// encoding; only ring tracing (which needs exact per-message send times)
// installs a full tracer. Because sampling is a pure function of the
// run's event sequence, per-run Metrics are deterministic, and merging
// them in run order (Merged) is worker-count-invariant.
package obs
