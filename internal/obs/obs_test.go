package obs

import (
	"strings"
	"testing"
	"time"

	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/xrand"
)

// run drives a tiny deterministic 3-node relay (0→1→2, 5ms constant
// latency) under a probe and returns its metrics.
func runRelay(t *testing.T, opts Options) *Metrics {
	t.Helper()
	p := New(opts)
	k := sim.New()
	nw := simnet.New(k, 3, xrand.New(1), simnet.Config{Latency: simnet.ConstantLatency{D: 5 * time.Millisecond}})
	delivered := 1 // node 0 seeds
	p.Attach(nw, 3, &delivered)
	nw.RegisterAll(func(now sim.Time, msg simnet.Message) {
		id := int(msg.To)
		delivered++
		p.ObserveFirstReceipt(id, int(msg.From), now)
		if id == 1 {
			p.ObserveFanout(1)
			nw.Send(1, 2, nil)
		}
	})
	p.ObserveSeed(0)
	p.ObserveFanout(1)
	nw.Send(0, 1, nil)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	p.Finish(k.Now())
	return p.Metrics()
}

func TestProbeCurvesAndHistograms(t *testing.T) {
	m := runRelay(t, Options{CurveTick: time.Millisecond})
	// Deliveries at 5ms and 10ms; samples at 0..10ms pre-event plus one
	// trailing point.
	if len(m.Infected) != 12 {
		t.Fatalf("series length %d, want 12", len(m.Infected))
	}
	// Sample i is the state just before time i·tick: infected stays 1
	// through the 5ms boundary (the 5ms delivery happens after the bin
	// fills), 2 through 10ms, and the trailing sample shows 3.
	for i, want := range []int64{1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 3} {
		if m.Infected[i] != want {
			t.Errorf("infected[%d] = %d, want %d (%v)", i, m.Infected[i], want, m.Infected)
		}
	}
	for i, want := range []int64{0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0} {
		if m.InFlight[i] != want {
			t.Errorf("inflight[%d] = %d, want %d (%v)", i, m.InFlight[i], want, m.InFlight)
		}
	}
	if last := m.Sent[len(m.Sent)-1]; last != 2 {
		t.Errorf("final sent = %d", last)
	}
	if m.End != 10*time.Millisecond {
		t.Errorf("end = %v", m.End)
	}
	if m.Totals.Delivered != 2 {
		t.Errorf("totals %+v", m.Totals)
	}
	// Latency histogram: receipts at 5ms and 10ms with 1ms bins.
	if m.Latency.Counts[5] != 1 || m.Latency.Counts[10] != 1 || m.Latency.Total != 2 {
		t.Errorf("latency hist %v", m.Latency.Counts)
	}
	// Hop histogram: node 1 at hop 1, node 2 at hop 2.
	if m.Hops.Counts[1] != 1 || m.Hops.Counts[2] != 1 || m.Hops.Total != 2 {
		t.Errorf("hops hist %v", m.Hops.Counts)
	}
	if m.Fanout.Counts[1] != 2 || m.Fanout.Total != 2 {
		t.Errorf("fanout hist %v", m.Fanout.Counts)
	}
	if m.Truncated {
		t.Error("truncated")
	}
	if m.Trace != nil {
		t.Error("trace recorded without TraceCapacity")
	}
}

func TestProbeTruncation(t *testing.T) {
	m := runRelay(t, Options{CurveTick: time.Millisecond, MaxSamples: 3})
	if !m.Truncated {
		t.Fatal("not truncated")
	}
	if len(m.Infected) != 3 {
		t.Fatalf("series length %d, want 3", len(m.Infected))
	}
	// Totals remain authoritative past the truncation point.
	if m.Totals.Delivered != 2 {
		t.Errorf("totals %+v", m.Totals)
	}
}

func TestProbeRingTrace(t *testing.T) {
	m := runRelay(t, Options{CurveTick: -1, TraceCapacity: 3})
	// 4 events (2 sent + 2 delivered) through a 3-slot ring: oldest
	// dropped.
	if len(m.Trace) != 3 || m.TraceDropped != 1 {
		t.Fatalf("trace %d events, %d dropped", len(m.Trace), m.TraceDropped)
	}
	// With the ring's full tracer, deliveries carry true send times.
	last := m.Trace[len(m.Trace)-1]
	if last.Kind != simnet.EventDelivered || last.At.Sub(last.SentAt) != 5*time.Millisecond {
		t.Errorf("last event %+v", last)
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, m.Trace); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"ph":"X"`) || !strings.Contains(b.String(), `"dur":5000`) {
		t.Errorf("chrome trace: %s", b.String())
	}
	b.Reset()
	if err := WriteTraceCSV(&b, m.Trace); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "delivered,1,2,10,5\n") {
		t.Errorf("trace csv: %s", b.String())
	}
}

func TestNilProbeHooksAreNoOps(t *testing.T) {
	var p *Probe
	p.Attach(nil, 0, nil)
	p.ObserveFirstReceipt(0, -1, 0)
	p.ObserveFirstReceiptRound(0, 1, 0)
	p.ObserveSeed(0)
	p.ObserveFanout(3)
	p.Finish(0)
	if p.Metrics() != nil {
		t.Error("nil probe produced metrics")
	}
}

func TestProbeReuseAcrossRuns(t *testing.T) {
	// The same Options through a fresh probe and a reused one must agree.
	a := runRelay(t, Options{})
	p := New(Options{})
	// Dirty the probe with one run, then re-run through runRelay's exact
	// sequence manually.
	for range 2 {
		k := sim.New()
		nw := simnet.New(k, 3, xrand.New(1), simnet.Config{Latency: simnet.ConstantLatency{D: 5 * time.Millisecond}})
		delivered := 1
		p.Attach(nw, 3, &delivered)
		nw.RegisterAll(func(now sim.Time, msg simnet.Message) {
			delivered++
			p.ObserveFirstReceipt(int(msg.To), int(msg.From), now)
			if msg.To == 1 {
				p.ObserveFanout(1)
				nw.Send(1, 2, nil)
			}
		})
		p.ObserveSeed(0)
		p.ObserveFanout(1)
		nw.Send(0, 1, nil)
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
		p.Finish(k.Now())
	}
	b := p.Metrics()
	if len(a.Infected) != len(b.Infected) || a.Totals != b.Totals || a.Latency.Total != b.Latency.Total {
		t.Errorf("reused probe diverged: %+v vs %+v", a, b)
	}
	for i := range a.Infected {
		if a.Infected[i] != b.Infected[i] {
			t.Fatalf("infected[%d]: %d vs %d", i, a.Infected[i], b.Infected[i])
		}
	}
}

func TestProbeChainsExistingTracer(t *testing.T) {
	p := New(Options{})
	k := sim.New()
	seen := 0
	nw := simnet.New(k, 2, xrand.New(1), simnet.Config{Tracer: func(simnet.Event) { seen++ }})
	delivered := 0
	p.Attach(nw, 2, &delivered)
	nw.Register(1, func(sim.Time, simnet.Message) { delivered++ })
	nw.Send(0, 1, nil)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if seen != 2 { // sent + delivered still reach the original tracer
		t.Errorf("chained tracer saw %d events", seen)
	}
}

func TestMergedPadding(t *testing.T) {
	var g Merged
	// Run A: 3 samples ending at 5; run B: 5 samples ending at 9.
	g.Merge(&Metrics{Tick: time.Millisecond, Infected: []int64{1, 3, 5}})
	g.Merge(&Metrics{Tick: time.Millisecond, Infected: []int64{1, 2, 4, 8, 9}})
	if g.Runs != 2 || len(g.Infected.Points) != 5 {
		t.Fatalf("runs %d, points %d", g.Runs, len(g.Infected.Points))
	}
	// Index 3: run A padded with its final 5, run B has 8 → mean 6.5.
	if got := g.Infected.Points[3].Mean(); got != 6.5 {
		t.Errorf("padded mean %g, want 6.5", got)
	}
	if n := g.Infected.Points[4].N(); n != 2 {
		t.Errorf("padded N %d, want 2", n)
	}
	// Merge order A,B must equal a longer-first merge in the mean.
	var h Merged
	h.Merge(&Metrics{Tick: time.Millisecond, Infected: []int64{1, 2, 4, 8, 9}})
	h.Merge(&Metrics{Tick: time.Millisecond, Infected: []int64{1, 3, 5}})
	if h.Infected.Points[3].Mean() != g.Infected.Points[3].Mean() {
		t.Errorf("order-dependent padding: %g vs %g",
			h.Infected.Points[3].Mean(), g.Infected.Points[3].Mean())
	}
}

func TestMergedCurveCSV(t *testing.T) {
	var g Merged
	g.Merge(&Metrics{Tick: 2 * time.Millisecond, Infected: []int64{1, 4}, InFlight: []int64{0, 3},
		Sent: []int64{0, 5}, Delivered: []int64{0, 2}, DroppedLoss: []int64{0, 1},
		DroppedCrash: []int64{0, 0}, DroppedDown: []int64{0, 0}, DroppedPart: []int64{0, 0}})
	var b strings.Builder
	if err := g.WriteCurveCSV(&b, "demo", true); err != nil {
		t.Fatal(err)
	}
	want := CurveCSVHeader +
		"demo,0,1,1,0,0,0,0,0,0,0,0\n" +
		"demo,2,1,4,0,3,5,2,1,0,0,0\n"
	if b.String() != want {
		t.Errorf("csv:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestMergedHistSum(t *testing.T) {
	var g Merged
	g.Merge(&Metrics{Latency: HistSnapshot{BinWidth: time.Millisecond, Counts: []int64{1, 2}, Total: 3}})
	g.Merge(&Metrics{Latency: HistSnapshot{BinWidth: time.Millisecond, Counts: []int64{0, 1, 4}, Total: 5}})
	if g.Latency.Total != 8 || g.Latency.Counts[1] != 3 || g.Latency.Counts[2] != 4 {
		t.Errorf("merged hist %+v", g.Latency)
	}
	if g.Latency.BinWidth != time.Millisecond {
		t.Errorf("bin width %v", g.Latency.BinWidth)
	}
}

func TestStartPprof(t *testing.T) {
	addr, err := StartPprof("localhost:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	if addr == "" {
		t.Fatal("empty address")
	}
}
