package obs

import "sort"

// ShardProbes leases k child probes for a sharded execution — one per
// shard kernel, each attached to its shard's network and delivered
// counter. Children share the parent's options except hop collection,
// which is disabled for k > 1: a receiving shard cannot know a
// cross-shard sender's hop count, so hop histograms exist only on
// single-kernel (and shards=1) runs. Children are pooled on the parent
// across runs. Call AdoptShards after the run so the parent's Metrics
// reflects the merged telemetry.
func (p *Probe) ShardProbes(k int) []*Probe {
	if p == nil {
		return nil
	}
	for len(p.children) < k {
		opts := p.opts
		if k > 1 {
			opts.HopBins = -1
		}
		p.children = append(p.children, New(opts))
	}
	p.children = p.children[:k]
	return p.children
}

// AdoptShards merges the children's finished telemetry (ShardProbes →
// per-child Attach/Finish) into one whole-run Metrics that the parent's
// Metrics method returns until its next Attach.
func (p *Probe) AdoptShards() {
	if p == nil {
		return
	}
	parts := make([]*Metrics, len(p.children))
	for i, c := range p.children {
		parts[i] = c.Metrics()
	}
	p.adopted = MergeShardMetrics(parts)
}

// MergeShardMetrics merges per-shard Metrics of one sharded execution
// into the whole-run view: curves are summed elementwise (a shard that
// drained early holds its final value — its state really does stay flat
// while other shards run on), totals and histograms are summed, and
// traces are k-way merged by event time. Cumulative per-shard series are
// exact under summation because every child samples on the same tick
// grid from virtual time zero. Returns nil for no parts.
func MergeShardMetrics(parts []*Metrics) *Metrics {
	if len(parts) == 0 {
		return nil
	}
	m := &Metrics{Tick: parts[0].Tick}
	maxLen := 0
	for _, part := range parts {
		if part.End > m.End {
			m.End = part.End
		}
		m.Truncated = m.Truncated || part.Truncated
		if n := len(part.Infected); n > maxLen {
			maxLen = n
		}
		m.Totals.Sent += part.Totals.Sent
		m.Totals.Delivered += part.Totals.Delivered
		m.Totals.DroppedLoss += part.Totals.DroppedLoss
		m.Totals.DroppedCrash += part.Totals.DroppedCrash
		m.Totals.DroppedDown += part.Totals.DroppedDown
		m.Totals.DroppedPart += part.Totals.DroppedPart
		m.TraceDropped += part.TraceDropped
	}
	series := func(pick func(*Metrics) []int64) []int64 {
		return sumShardSeries(parts, maxLen, pick)
	}
	m.Infected = series(func(p *Metrics) []int64 { return p.Infected })
	m.InFlight = series(func(p *Metrics) []int64 { return p.InFlight })
	m.Sent = series(func(p *Metrics) []int64 { return p.Sent })
	m.Delivered = series(func(p *Metrics) []int64 { return p.Delivered })
	m.DroppedLoss = series(func(p *Metrics) []int64 { return p.DroppedLoss })
	m.DroppedCrash = series(func(p *Metrics) []int64 { return p.DroppedCrash })
	m.DroppedDown = series(func(p *Metrics) []int64 { return p.DroppedDown })
	m.DroppedPart = series(func(p *Metrics) []int64 { return p.DroppedPart })
	m.Latency = sumShardHists(parts, func(p *Metrics) HistSnapshot { return p.Latency })
	m.Hops = sumShardHists(parts, func(p *Metrics) HistSnapshot { return p.Hops })
	m.Fanout = sumShardHists(parts, func(p *Metrics) HistSnapshot { return p.Fanout })
	for _, part := range parts {
		m.Trace = append(m.Trace, part.Trace...)
	}
	if m.Trace != nil {
		sort.SliceStable(m.Trace, func(i, j int) bool { return m.Trace[i].At < m.Trace[j].At })
	}
	return m
}

// sumShardSeries sums one series across shards, padding shorter shards
// with their final value (empty shards contribute zero).
func sumShardSeries(parts []*Metrics, maxLen int, pick func(*Metrics) []int64) []int64 {
	if maxLen == 0 {
		return nil
	}
	out := make([]int64, maxLen)
	for _, part := range parts {
		s := pick(part)
		for i := 0; i < maxLen; i++ {
			switch {
			case i < len(s):
				out[i] += s[i]
			case len(s) > 0:
				out[i] += s[len(s)-1]
			}
		}
	}
	return out
}

// sumShardHists sums one histogram across shards; shards with the
// collector disabled (nil Counts) are skipped, and the merged histogram
// is nil-Counts when every shard's was.
func sumShardHists(parts []*Metrics, pick func(*Metrics) HistSnapshot) HistSnapshot {
	var out HistSnapshot
	for _, part := range parts {
		h := pick(part)
		if h.Counts == nil {
			continue
		}
		if out.Counts == nil {
			out.BinWidth = h.BinWidth
			out.Counts = make([]int64, len(h.Counts))
		}
		for i := range h.Counts {
			if i < len(out.Counts) {
				out.Counts[i] += h.Counts[i]
			}
		}
		out.Total += h.Total
	}
	return out
}
