package obs

import (
	"fmt"
	"io"
	"math"
	"time"

	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/stats"
)

// StreamProbe is the streaming-workload sibling of Probe: it rides the
// same tracer seam and tick sampler, but its curves are the steady-state
// quantities of a multi-message run — buffer occupancy, active-message
// gauge, cumulative publishes / first receipts / evictions / expiries —
// plus a delivery-latency histogram binned per message (receipt time
// minus publish time, which the single-rumor probe cannot know).
//
// The nil *StreamProbe is the off state: every method is a nil-check-only
// no-op, preserving the zero-overhead-when-off contract. A probe is
// reused across runs (Attach resets it) but never across goroutines.
// Options is shared with Probe; HopBins, FanoutBins and TraceCapacity are
// ignored here.
type StreamProbe struct {
	opts Options

	net  *simnet.Network
	prev simnet.Tracer
	// occupancy and active are the executor's live gauges: buffered rumor
	// copies in this probe's member block, and globally active messages
	// (nil on non-lead shards of a sharded run, where the series samples
	// zero and the shard merge takes the lead shard's values).
	occupancy *int64
	active    *int64

	tick sim.Time
	next sim.Time
	cnt  [kindCount]int64

	// Cumulative stream counters fed by the Observe hooks.
	published int64
	delivered int64
	evicted   int64
	expired   int64

	sOcc, sAct             []int64
	sPub, sDel, sEvc, sExp []int64
	sSent, sDrop           []int64
	truncated              bool

	lat *stats.Histogram

	end    sim.Time
	totals simnet.Stats

	children []*StreamProbe
	adopted  *StreamMetrics
}

// NewStream returns a streaming probe collecting per opts (normalized
// exactly like New). The latency histogram is allocated once and pooled
// across Attach cycles.
func NewStream(opts Options) *StreamProbe {
	p := &StreamProbe{opts: opts.normalize()}
	if p.opts.CurveTick > 0 {
		p.tick = sim.Time(p.opts.CurveTick)
	}
	if p.opts.LatencyBins > 0 {
		p.lat = stats.NewHistogram(p.opts.LatencyBins)
	}
	return p
}

// Attach binds the probe to a fresh streaming run: net is the run's
// network (its tracer seam drives tick sampling and the sent/dropped
// curves), occupancy the executor's buffered-copies gauge for this
// probe's member block, and active the global active-message gauge (nil
// when this probe's shard does not maintain it). Any tracer already on
// net keeps seeing every event — the probe chains it, at full-tracer
// cost; otherwise the lite tracer keeps the slot-free send path. Attach
// resets all pooled state.
func (p *StreamProbe) Attach(net *simnet.Network, occupancy, active *int64) {
	if p == nil {
		return
	}
	p.net, p.occupancy, p.active = net, occupancy, active
	p.adopted = nil
	p.next = 0
	p.truncated = false
	p.end = 0
	p.totals = simnet.Stats{}
	for k := range p.cnt {
		p.cnt[k] = 0
	}
	p.published, p.delivered, p.evicted, p.expired = 0, 0, 0, 0
	p.sOcc, p.sAct = p.sOcc[:0], p.sAct[:0]
	p.sPub, p.sDel = p.sPub[:0], p.sDel[:0]
	p.sEvc, p.sExp = p.sEvc[:0], p.sExp[:0]
	p.sSent, p.sDrop = p.sSent[:0], p.sDrop[:0]
	if p.lat != nil {
		p.lat.Reset()
	}
	p.prev = net.Tracer()
	switch {
	case p.prev != nil:
		net.SetTracer(p.observe)
	case p.tick > 0:
		net.SetTracerLite(p.observe)
	}
}

// observe is the probe's tracer: advance the sampler to the event's time
// (filling elapsed tick bins with the pre-event state), count the event,
// feed any chained tracer. Event times arrive in nondecreasing order.
func (p *StreamProbe) observe(e simnet.Event) {
	if p.tick > 0 {
		p.advanceTo(e.At)
	}
	if int(e.Kind) < kindCount {
		p.cnt[e.Kind]++
	}
	if p.prev != nil {
		p.prev(e)
	}
}

func (p *StreamProbe) advanceTo(t sim.Time) {
	for p.next <= t {
		if !p.sample() {
			p.next = sim.Time(math.MaxInt64)
			return
		}
		p.next += p.tick
	}
}

// sample appends one point to every series from the current state; it
// reports false (and marks truncation) once MaxSamples is reached.
func (p *StreamProbe) sample() bool {
	if len(p.sOcc) >= p.opts.MaxSamples {
		p.truncated = true
		return false
	}
	var occ, act int64
	if p.occupancy != nil {
		occ = *p.occupancy
	}
	if p.active != nil {
		act = *p.active
	}
	p.sOcc = append(p.sOcc, occ)
	p.sAct = append(p.sAct, act)
	p.sPub = append(p.sPub, p.published)
	p.sDel = append(p.sDel, p.delivered)
	p.sEvc = append(p.sEvc, p.evicted)
	p.sExp = append(p.sExp, p.expired)
	p.sSent = append(p.sSent, p.cnt[simnet.EventSent])
	p.sDrop = append(p.sDrop, p.cnt[simnet.EventDroppedLoss]+
		p.cnt[simnet.EventDroppedCrash]+
		p.cnt[simnet.EventDroppedDown]+
		p.cnt[simnet.EventDroppedPartition])
	return true
}

// ObservePublish records one message entering the stream at virtual time
// now. Hooks advance the sampler themselves: publishes and expiries fire
// from kernel closures, not network events, so the tracer alone would
// sample their tick bins late.
func (p *StreamProbe) ObservePublish(now sim.Time) {
	if p == nil {
		return
	}
	if p.tick > 0 {
		p.advanceTo(now)
	}
	p.published++
}

// ObserveDeliver records one member's first receipt of one message at
// virtual time now, latency after its publish.
func (p *StreamProbe) ObserveDeliver(now, latency sim.Time) {
	if p == nil {
		return
	}
	if p.tick > 0 {
		p.advanceTo(now)
	}
	p.delivered++
	if p.lat != nil {
		p.lat.Add(int(latency.Duration() / p.opts.LatencyBinWidth))
	}
}

// ObserveEvict records one buffered copy displaced by the eviction policy
// at virtual time now (capacity pressure, not age).
func (p *StreamProbe) ObserveEvict(now sim.Time) {
	if p == nil {
		return
	}
	if p.tick > 0 {
		p.advanceTo(now)
	}
	p.evicted++
}

// ObserveExpire records k buffered copies retired by age at virtual time
// now (the round tick's batch compaction).
func (p *StreamProbe) ObserveExpire(now sim.Time, k int) {
	if p == nil {
		return
	}
	if p.tick > 0 {
		p.advanceTo(now)
	}
	p.expired += int64(k)
}

// Finish seals the run's telemetry at virtual time now: fill the
// remaining tick bins, append one trailing sample so the drained plateau
// is present, snapshot the network's final counters.
func (p *StreamProbe) Finish(now sim.Time) {
	if p == nil {
		return
	}
	if p.tick > 0 {
		p.advanceTo(now)
		p.sample()
	}
	p.end = now
	if p.net != nil {
		p.totals = p.net.Stats()
	}
}

// StreamMetrics is the frozen telemetry of one streaming run. Series
// index i holds the state just before the first event at or after
// virtual time i·Tick; the last point holds the drained final state.
type StreamMetrics struct {
	// Tick is the curve sampling interval; End the run's final virtual
	// time; Truncated that the run outlived MaxSamples·Tick.
	Tick      time.Duration
	End       time.Duration
	Truncated bool
	// Occupancy is the buffered-copies gauge; Active the live-message
	// gauge (messages published and not yet expired).
	Occupancy []int64
	Active    []int64
	// Published, Delivered (first receipts), Evicted and Expired are
	// cumulative stream counters; Sent and Dropped cumulative network
	// counters (Dropped sums every drop kind).
	Published, Delivered []int64
	Evicted, Expired     []int64
	Sent, Dropped        []int64
	// Totals is the network's final counter snapshot (authoritative even
	// when curves are off or truncated).
	Totals simnet.Stats
	// Latency is the per-message delivery-latency histogram (receipt
	// minus publish time); nil Counts when disabled.
	Latency HistSnapshot
}

// Metrics snapshots the probe into a standalone StreamMetrics (the only
// allocating step of a probed run; call once, after Finish). After
// AdoptShards it returns the merged whole-run view instead.
func (p *StreamProbe) Metrics() *StreamMetrics {
	if p == nil {
		return nil
	}
	if p.adopted != nil {
		return p.adopted
	}
	m := &StreamMetrics{
		Tick:      p.opts.CurveTick,
		End:       p.end.Duration(),
		Truncated: p.truncated,
		Occupancy: append([]int64(nil), p.sOcc...),
		Active:    append([]int64(nil), p.sAct...),
		Published: append([]int64(nil), p.sPub...),
		Delivered: append([]int64(nil), p.sDel...),
		Evicted:   append([]int64(nil), p.sEvc...),
		Expired:   append([]int64(nil), p.sExp...),
		Sent:      append([]int64(nil), p.sSent...),
		Dropped:   append([]int64(nil), p.sDrop...),
		Totals:    p.totals,
	}
	if p.lat != nil {
		m.Latency = HistSnapshot{BinWidth: p.opts.LatencyBinWidth, Counts: p.lat.Counts(), Total: p.lat.Total()}
	}
	return m
}

// ShardProbes leases k child streaming probes for a sharded execution,
// one per shard kernel, pooled on the parent across runs. Call
// AdoptShards after the run.
func (p *StreamProbe) ShardProbes(k int) []*StreamProbe {
	if p == nil {
		return nil
	}
	for len(p.children) < k {
		p.children = append(p.children, NewStream(p.opts))
	}
	p.children = p.children[:k]
	return p.children
}

// AdoptShards merges the children's finished telemetry into one
// whole-run StreamMetrics that the parent's Metrics returns until its
// next Attach.
func (p *StreamProbe) AdoptShards() {
	if p == nil {
		return
	}
	parts := make([]*StreamMetrics, len(p.children))
	for i, c := range p.children {
		parts[i] = c.Metrics()
	}
	p.adopted = MergeShardStreamMetrics(parts)
}

// MergeShardStreamMetrics merges per-shard StreamMetrics of one sharded
// execution into the whole-run view: curves are summed elementwise with
// final-value padding for shards that drained early (the Active gauge is
// maintained by the lead shard only, so summation passes it through),
// totals and histograms are summed. Returns nil for no parts.
func MergeShardStreamMetrics(parts []*StreamMetrics) *StreamMetrics {
	if len(parts) == 0 {
		return nil
	}
	m := &StreamMetrics{Tick: parts[0].Tick}
	maxLen := 0
	for _, part := range parts {
		if part.End > m.End {
			m.End = part.End
		}
		m.Truncated = m.Truncated || part.Truncated
		if n := len(part.Occupancy); n > maxLen {
			maxLen = n
		}
		m.Totals.Sent += part.Totals.Sent
		m.Totals.Delivered += part.Totals.Delivered
		m.Totals.DroppedLoss += part.Totals.DroppedLoss
		m.Totals.DroppedCrash += part.Totals.DroppedCrash
		m.Totals.DroppedDown += part.Totals.DroppedDown
		m.Totals.DroppedPart += part.Totals.DroppedPart
		m.Totals.BoxedSends += part.Totals.BoxedSends
		m.Totals.Batches += part.Totals.Batches
		m.Totals.BatchEntries += part.Totals.BatchEntries
		m.Totals.BatchesDown += part.Totals.BatchesDown
		m.Totals.BatchEntriesDown += part.Totals.BatchEntriesDown
		m.Totals.BatchesDelivered += part.Totals.BatchesDelivered
		m.Totals.BatchEntriesDelivered += part.Totals.BatchEntriesDelivered
	}
	series := func(pick func(*StreamMetrics) []int64) []int64 {
		return sumShardStreamSeries(parts, maxLen, pick)
	}
	m.Occupancy = series(func(p *StreamMetrics) []int64 { return p.Occupancy })
	m.Active = series(func(p *StreamMetrics) []int64 { return p.Active })
	m.Published = series(func(p *StreamMetrics) []int64 { return p.Published })
	m.Delivered = series(func(p *StreamMetrics) []int64 { return p.Delivered })
	m.Evicted = series(func(p *StreamMetrics) []int64 { return p.Evicted })
	m.Expired = series(func(p *StreamMetrics) []int64 { return p.Expired })
	m.Sent = series(func(p *StreamMetrics) []int64 { return p.Sent })
	m.Dropped = series(func(p *StreamMetrics) []int64 { return p.Dropped })
	m.Latency = sumShardStreamHists(parts, func(p *StreamMetrics) HistSnapshot { return p.Latency })
	return m
}

// sumShardStreamSeries is sumShardSeries over StreamMetrics parts.
func sumShardStreamSeries(parts []*StreamMetrics, maxLen int, pick func(*StreamMetrics) []int64) []int64 {
	if maxLen == 0 {
		return nil
	}
	out := make([]int64, maxLen)
	for _, part := range parts {
		s := pick(part)
		for i := 0; i < maxLen; i++ {
			switch {
			case i < len(s):
				out[i] += s[i]
			case len(s) > 0:
				out[i] += s[len(s)-1]
			}
		}
	}
	return out
}

// sumShardStreamHists is sumShardHists over StreamMetrics parts.
func sumShardStreamHists(parts []*StreamMetrics, pick func(*StreamMetrics) HistSnapshot) HistSnapshot {
	var out HistSnapshot
	for _, part := range parts {
		h := pick(part)
		if h.Counts == nil {
			continue
		}
		if out.Counts == nil {
			out.BinWidth = h.BinWidth
			out.Counts = make([]int64, len(h.Counts))
		}
		for i := range h.Counts {
			if i < len(out.Counts) {
				out.Counts[i] += h.Counts[i]
			}
		}
		out.Total += h.Total
	}
	return out
}

// Quantile returns an upper bound on the q-quantile of a fixed-bin
// histogram: the upper edge of the first bin whose cumulative count
// reaches ⌈q·Total⌉, scaled by BinWidth. Observations clamped into the
// last bin make its edge a lower bound only; zero for an empty or
// disabled histogram.
func (h HistSnapshot) Quantile(q float64) time.Duration {
	if h.Total == 0 || len(h.Counts) == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.Total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return time.Duration(i+1) * h.BinWidth
		}
	}
	return time.Duration(len(h.Counts)) * h.BinWidth
}

// Quantile is HistSnapshot.Quantile over a run-merged histogram.
func (h MergedHist) Quantile(q float64) time.Duration {
	return HistSnapshot{BinWidth: h.BinWidth, Counts: h.Counts, Total: h.Total}.Quantile(q)
}

// StreamMerged aggregates per-run StreamMetrics across replications via
// stats.Running per tick index. Merge in run order for byte-identical
// results at any worker count, like every other reduction.
type StreamMerged struct {
	// Tick is the curve sampling interval (from the first run); Runs the
	// merged-run count; Truncated that at least one run hit its cap.
	Tick      time.Duration
	Runs      int
	Truncated bool
	// The merged virtual-time series; see StreamMetrics.
	Occupancy, Active    Series
	Published, Delivered Series
	Evicted, Expired     Series
	Sent, Dropped        Series
	// Latency is the summed delivery-latency histogram.
	Latency MergedHist
}

// Merge folds one run's StreamMetrics into the aggregate; nil is a no-op
// (a skipped run).
func (g *StreamMerged) Merge(m *StreamMetrics) {
	if m == nil {
		return
	}
	if g.Runs == 0 {
		g.Tick = m.Tick
	}
	g.Runs++
	g.Truncated = g.Truncated || m.Truncated
	g.Occupancy.merge(m.Occupancy)
	g.Active.merge(m.Active)
	g.Published.merge(m.Published)
	g.Delivered.merge(m.Delivered)
	g.Evicted.merge(m.Evicted)
	g.Expired.merge(m.Expired)
	g.Sent.merge(m.Sent)
	g.Dropped.merge(m.Dropped)
	g.Latency.merge(m.Latency)
}

// StreamCurveCSVHeader is the column header WriteCurveCSV emits.
const StreamCurveCSVHeader = "label,t_ms,runs,occupancy_mean,occupancy_stddev,active_mean,published_mean,delivered_mean,evicted_mean,expired_mean,sent_mean,dropped_mean\n"

// WriteCurveCSV renders the merged streaming series as CSV, one row per
// tick, labeled with label in the first column. Emit the header once via
// StreamCurveCSVHeader, or let the first call write it with header=true.
func (g *StreamMerged) WriteCurveCSV(w io.Writer, label string, header bool) error {
	if header {
		if _, err := io.WriteString(w, StreamCurveCSVHeader); err != nil {
			return err
		}
	}
	tickMs := float64(g.Tick) / float64(time.Millisecond)
	at := func(s Series, i int) float64 {
		if i < len(s.Points) {
			return s.Points[i].Mean()
		}
		return 0
	}
	for i := range g.Occupancy.Points {
		_, err := fmt.Fprintf(w, "%s,%g,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g\n",
			label, float64(i)*tickMs, g.Occupancy.Points[i].N(),
			g.Occupancy.Points[i].Mean(), g.Occupancy.Points[i].StdDev(),
			at(g.Active, i), at(g.Published, i), at(g.Delivered, i),
			at(g.Evicted, i), at(g.Expired, i),
			at(g.Sent, i), at(g.Dropped, i))
		if err != nil {
			return err
		}
	}
	return nil
}
