package obs

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"gossipkit/internal/simnet"
)

// Ring is a preallocated circular buffer of network events: pushes never
// allocate, and once full the oldest event is overwritten — a flight
// recorder for the tail of a run, not a complete log (Dropped counts the
// overwrites).
type Ring struct {
	buf   []simnet.Event
	count int64
}

// NewRing returns a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("obs: invalid ring capacity %d", capacity))
	}
	return &Ring{buf: make([]simnet.Event, capacity)}
}

// Reset empties the ring in place.
func (r *Ring) Reset() { r.count = 0 }

func (r *Ring) push(e simnet.Event) {
	r.buf[r.count%int64(len(r.buf))] = e
	r.count++
}

// Dropped returns the number of events overwritten by later ones.
func (r *Ring) Dropped() int64 {
	if d := r.count - int64(len(r.buf)); d > 0 {
		return d
	}
	return 0
}

// Events returns the recorded events oldest-first, as a copy.
func (r *Ring) Events() []simnet.Event {
	n := r.count
	if n > int64(len(r.buf)) {
		n = int64(len(r.buf))
	}
	out := make([]simnet.Event, 0, n)
	start := r.count - n
	for i := int64(0); i < n; i++ {
		out = append(out, r.buf[(start+i)%int64(len(r.buf))])
	}
	return out
}

// WriteChromeTrace renders events as Chrome trace-event JSON (load in
// chrome://tracing or https://ui.perfetto.dev): deliveries become "X"
// complete events spanning SentAt..At on the destination's thread lane,
// everything else an "i" instant. Timestamps are microseconds of virtual
// time.
func WriteChromeTrace(w io.Writer, events []simnet.Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	us := func(t time.Duration) float64 { return float64(t) / float64(time.Microsecond) }
	for i, e := range events {
		if i > 0 {
			bw.WriteByte(',')
		}
		var err error
		if e.Kind == simnet.EventDelivered {
			_, err = fmt.Fprintf(bw,
				`{"name":"deliver","cat":"net","ph":"X","ts":%g,"dur":%g,"pid":0,"tid":%d,"args":{"from":%d}}`,
				us(e.SentAt.Duration()), us(e.At.Sub(e.SentAt)), e.To, e.From)
		} else {
			_, err = fmt.Fprintf(bw,
				`{"name":%q,"cat":"net","ph":"i","ts":%g,"s":"t","pid":0,"tid":%d,"args":{"from":%d}}`,
				e.Kind.String(), us(e.At.Duration()), e.To, e.From)
		}
		if err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteTraceCSV renders events as CSV, oldest-first, times in
// milliseconds of virtual time.
func WriteTraceCSV(w io.Writer, events []simnet.Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("kind,from,to,at_ms,sent_ms\n"); err != nil {
		return err
	}
	for _, e := range events {
		_, err := fmt.Fprintf(bw, "%s,%d,%d,%g,%g\n", e.Kind, e.From, e.To,
			float64(e.At)/float64(time.Millisecond),
			float64(e.SentAt)/float64(time.Millisecond))
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
