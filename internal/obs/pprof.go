package obs

import (
	"net"
	"net/http"
	_ "net/http/pprof" // register the profiling handlers on DefaultServeMux
)

// StartPprof serves net/http/pprof on addr (e.g. "localhost:6060") in a
// background goroutine and returns the bound address — the -pprof flag of
// the cmd binaries, so long sweeps are profilable in place. An empty port
// ("localhost:0") picks a free one; the returned address says which.
func StartPprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, nil) //nolint:errcheck // serves until process exit
	return ln.Addr().String(), nil
}
