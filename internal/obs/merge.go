package obs

import (
	"fmt"
	"io"
	"time"

	"gossipkit/internal/stats"
)

// Series is one virtual-time series merged across replications: Points[i]
// aggregates sample i of every run. Runs of different lengths compose by
// padding: a run shorter than the merged length contributes its final
// value at every later index (cumulative counters and the infected count
// hold their final value after the run drains; the in-flight gauge's
// final value is zero then, so its padding is zero too).
type Series struct {
	// Points aggregates each tick index across runs.
	Points []stats.Running
	// pad accumulates the final value of every merged run, so extending
	// the merged length for a longer run back-fills earlier runs
	// correctly.
	pad stats.Running
}

func (s *Series) merge(vals []int64) {
	for len(s.Points) < len(vals) {
		s.Points = append(s.Points, s.pad)
	}
	var final float64
	if len(vals) > 0 {
		final = float64(vals[len(vals)-1])
	}
	for i := range s.Points {
		if i < len(vals) {
			s.Points[i].Add(float64(vals[i]))
		} else {
			s.Points[i].Add(final)
		}
	}
	s.pad.Add(final)
}

// MergedHist sums one histogram across replications.
type MergedHist struct {
	// BinWidth is the value width of one bin (latency only; zero for
	// unit-binned histograms).
	BinWidth time.Duration
	// Counts are the summed per-bin counts; Total the summed
	// observation count.
	Counts []int64
	Total  int64
}

func (h *MergedHist) merge(s HistSnapshot) {
	if s.Counts == nil {
		return
	}
	if h.BinWidth == 0 {
		h.BinWidth = s.BinWidth
	}
	for len(h.Counts) < len(s.Counts) {
		h.Counts = append(h.Counts, 0)
	}
	for i, c := range s.Counts {
		h.Counts[i] += c
	}
	h.Total += s.Total
}

// Merged aggregates per-run Metrics across replications via
// stats.Running per tick index. Merging is order-sensitive only in the
// usual bit-exactness sense, so callers merge in run order — then the
// result is byte-identical for any worker count, like every other
// reduction in the toolkit.
type Merged struct {
	// Tick is the curve sampling interval (taken from the first run).
	Tick time.Duration
	// Runs counts merged runs; Truncated reports that at least one of
	// them hit its sample cap.
	Runs      int
	Truncated bool
	// The merged virtual-time series; see Metrics for their meanings.
	Infected, InFlight                                  Series
	Sent, Delivered                                     Series
	DroppedLoss, DroppedCrash, DroppedDown, DroppedPart Series
	// The summed histograms.
	Latency, Hops, Fanout MergedHist
}

// Merge folds one run's Metrics into the aggregate; nil is a no-op (a
// skipped run).
func (g *Merged) Merge(m *Metrics) {
	if m == nil {
		return
	}
	if g.Runs == 0 {
		g.Tick = m.Tick
	}
	g.Runs++
	g.Truncated = g.Truncated || m.Truncated
	g.Infected.merge(m.Infected)
	g.InFlight.merge(m.InFlight)
	g.Sent.merge(m.Sent)
	g.Delivered.merge(m.Delivered)
	g.DroppedLoss.merge(m.DroppedLoss)
	g.DroppedCrash.merge(m.DroppedCrash)
	g.DroppedDown.merge(m.DroppedDown)
	g.DroppedPart.merge(m.DroppedPart)
	g.Latency.merge(m.Latency)
	g.Hops.merge(m.Hops)
	g.Fanout.merge(m.Fanout)
}

// CurveCSVHeader is the column header WriteCurveCSV emits.
const CurveCSVHeader = "label,t_ms,runs,infected_mean,infected_stddev,inflight_mean,sent_mean,delivered_mean,dropped_loss_mean,dropped_crash_mean,dropped_down_mean,dropped_part_mean\n"

// WriteCurveCSV renders the merged series as CSV, one row per tick,
// labeled with label in the first column (so several merges — one per
// scenario — concatenate into one file). Emit the header once via
// CurveCSVHeader, or let the first call write it with header=true.
func (g *Merged) WriteCurveCSV(w io.Writer, label string, header bool) error {
	if header {
		if _, err := io.WriteString(w, CurveCSVHeader); err != nil {
			return err
		}
	}
	tickMs := float64(g.Tick) / float64(time.Millisecond)
	at := func(s Series, i int) float64 {
		if i < len(s.Points) {
			return s.Points[i].Mean()
		}
		return 0
	}
	for i := range g.Infected.Points {
		_, err := fmt.Fprintf(w, "%s,%g,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g\n",
			label, float64(i)*tickMs, g.Infected.Points[i].N(),
			g.Infected.Points[i].Mean(), g.Infected.Points[i].StdDev(),
			at(g.InFlight, i), at(g.Sent, i), at(g.Delivered, i),
			at(g.DroppedLoss, i), at(g.DroppedCrash, i),
			at(g.DroppedDown, i), at(g.DroppedPart, i))
		if err != nil {
			return err
		}
	}
	return nil
}

// InfectedMeans returns the mean infected-count curve as a plain slice —
// the series the Eq. 11 overlay experiment compares against the per-round
// prediction.
func (g *Merged) InfectedMeans() []float64 {
	out := make([]float64, len(g.Infected.Points))
	for i := range out {
		out[i] = g.Infected.Points[i].Mean()
	}
	return out
}
