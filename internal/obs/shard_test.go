package obs

import (
	"reflect"
	"testing"
	"time"

	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/xrand"
)

func TestMergeShardMetricsSeriesAndTotals(t *testing.T) {
	a := &Metrics{
		Tick:      time.Millisecond,
		End:       3 * time.Millisecond,
		Infected:  []int64{1, 2, 4},
		InFlight:  []int64{2, 1, 0},
		Sent:      []int64{3, 5, 6},
		Delivered: []int64{1, 2, 4},
		Totals:    simnet.Stats{Sent: 6, Delivered: 4},
		Latency:   HistSnapshot{BinWidth: time.Millisecond, Counts: []int64{2, 1}, Total: 3},
	}
	// b drained one tick earlier: padding must hold its final values.
	b := &Metrics{
		Tick:      time.Millisecond,
		End:       2 * time.Millisecond,
		Infected:  []int64{0, 3},
		InFlight:  []int64{1, 0},
		Sent:      []int64{2, 4},
		Delivered: []int64{0, 3},
		Totals:    simnet.Stats{Sent: 4, Delivered: 3, DroppedLoss: 1},
		Latency:   HistSnapshot{BinWidth: time.Millisecond, Counts: []int64{1, 1}, Total: 2},
	}
	m := MergeShardMetrics([]*Metrics{a, b})
	if m.Tick != time.Millisecond || m.End != 3*time.Millisecond {
		t.Fatalf("tick/end %v/%v", m.Tick, m.End)
	}
	if want := []int64{1, 5, 7}; !reflect.DeepEqual(m.Infected, want) {
		t.Errorf("Infected = %v, want %v", m.Infected, want)
	}
	if want := []int64{3, 1, 0}; !reflect.DeepEqual(m.InFlight, want) {
		t.Errorf("InFlight = %v, want %v", m.InFlight, want)
	}
	if want := []int64{5, 9, 10}; !reflect.DeepEqual(m.Sent, want) {
		t.Errorf("Sent = %v, want %v", m.Sent, want)
	}
	if m.Totals.Sent != 10 || m.Totals.Delivered != 7 || m.Totals.DroppedLoss != 1 {
		t.Errorf("Totals = %+v", m.Totals)
	}
	if want := []int64{3, 2}; !reflect.DeepEqual(m.Latency.Counts, want) || m.Latency.Total != 5 {
		t.Errorf("Latency = %+v", m.Latency)
	}
	if m.Hops.Counts != nil {
		t.Errorf("merged hops from disabled collectors should stay nil: %+v", m.Hops)
	}
	if MergeShardMetrics(nil) != nil {
		t.Error("merging no parts should yield nil")
	}
}

func TestMergeShardMetricsTraces(t *testing.T) {
	a := &Metrics{Trace: []simnet.Event{{At: 3}, {At: 9}}}
	b := &Metrics{Trace: []simnet.Event{{At: 1}, {At: 5}}, TraceDropped: 2}
	m := MergeShardMetrics([]*Metrics{a, b})
	var got []sim.Time
	for _, e := range m.Trace {
		got = append(got, e.At)
	}
	if want := []sim.Time{1, 3, 5, 9}; !reflect.DeepEqual(got, want) {
		t.Errorf("merged trace times %v, want %v", got, want)
	}
	if m.TraceDropped != 2 {
		t.Errorf("TraceDropped = %d, want 2", m.TraceDropped)
	}
}

// TestShardProbesAdoption drives two child probes over independent
// relays, adopts, and checks the parent serves the merged view until the
// next Attach.
func TestShardProbesAdoption(t *testing.T) {
	parent := New(Options{CurveTick: time.Millisecond})
	children := parent.ShardProbes(2)
	if len(children) != 2 {
		t.Fatalf("ShardProbes returned %d children", len(children))
	}
	if again := parent.ShardProbes(2); &again[0] == nil || again[0] != children[0] {
		t.Fatal("children not pooled across ShardProbes calls")
	}

	// Each child observes a 2-node relay on its own kernel.
	delivered := [2]int{}
	for s, c := range children {
		k := sim.New()
		nw := simnet.New(k, 2, xrand.New(uint64(s+1)), simnet.Config{Latency: simnet.ConstantLatency{D: 2 * time.Millisecond}})
		delivered[s] = 1
		c.Attach(nw, 2, &delivered[s])
		nw.RegisterAll(func(now sim.Time, msg simnet.Message) {
			delivered[s]++
			c.ObserveFirstReceipt(int(msg.To), int(msg.From), now)
		})
		c.ObserveSeed(0)
		nw.Send(0, 1, nil)
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
		c.Finish(k.Now())
	}
	parent.AdoptShards()
	m := parent.Metrics()
	if m == nil || m.Totals.Delivered != 2 {
		t.Fatalf("adopted metrics %+v, want 2 total deliveries", m)
	}
	if got := m.Infected[len(m.Infected)-1]; got != 4 {
		t.Errorf("final merged infected %d, want 4 (2 seeds + 2 deliveries)", got)
	}
	if m.Hops.Counts != nil {
		t.Error("child probes of a >1 fan-out should have hops disabled")
	}
	if parent.Metrics() != m {
		t.Error("Metrics should keep returning the adopted snapshot")
	}

	// Re-attaching the parent clears the adoption.
	k := sim.New()
	nw := simnet.New(k, 2, xrand.New(9), simnet.Config{})
	d := 0
	parent.Attach(nw, 2, &d)
	parent.Finish(0)
	if got := parent.Metrics(); got == m || got.Totals.Delivered != 0 {
		t.Errorf("Attach did not clear the adopted snapshot: %+v", got)
	}
}

func TestShardProbesSingleKeepsHops(t *testing.T) {
	parent := New(Options{})
	c := parent.ShardProbes(1)[0]
	if c.hops == nil {
		t.Error("a single child probe should keep the hop histogram")
	}
	nilProbe := (*Probe)(nil)
	if nilProbe.ShardProbes(3) != nil {
		t.Error("nil probe ShardProbes should be nil")
	}
	nilProbe.AdoptShards() // must not panic
}
