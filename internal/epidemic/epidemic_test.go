package epidemic

import (
	"math"
	"testing"

	"gossipkit/internal/genfunc"
	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

func TestSIFractionClosedForm(t *testing.T) {
	beta, i0, horizon := 1.3, 0.02, 4.0
	got, err := SIFraction(beta, i0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	want := i0 * math.Exp(beta*horizon) / (1 - i0 + i0*math.Exp(beta*horizon))
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("SI: %.8f vs closed form %.8f", got, want)
	}
	if _, err := SIFraction(-1, 0.1, 1); err == nil {
		t.Error("negative beta accepted")
	}
}

func TestSISEndemicLevel(t *testing.T) {
	if lvl, _ := SISEndemicLevel(2, 1); math.Abs(lvl-0.5) > 1e-12 {
		t.Errorf("SIS level %g, want 0.5", lvl)
	}
	if lvl, _ := SISEndemicLevel(1, 2); lvl != 0 {
		t.Errorf("subcritical SIS level %g", lvl)
	}
	if _, err := SISEndemicLevel(-1, 0); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestSIRODEConservation(t *testing.T) {
	st, err := SIRODE(2, 1, 0.01, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.S+st.I+st.R-1) > 1e-6 {
		t.Errorf("S+I+R = %g", st.S+st.I+st.R)
	}
	// Long horizon: infection burned out.
	if st.I > 1e-4 {
		t.Errorf("I(30) = %g, want ~0", st.I)
	}
}

func TestSIRODEFinalSizeMatchesEquation(t *testing.T) {
	// For small i0 the ODE's R(∞) must satisfy the final-size equation
	// with R0 = beta/gamma.
	beta, gamma := 3.0, 1.5 // R0 = 2
	st, err := SIRODE(beta, gamma, 1e-5, 200)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SIRFinalSize(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.R-want) > 5e-3 {
		t.Errorf("ODE final size %.5f vs equation %.5f", st.R, want)
	}
}

func TestSIRFinalSizeIsEq11(t *testing.T) {
	// The headline equivalence: SIRFinalSize(z·q) == PoissonReliability
	// (paper Eq. 11) for every supercritical operating point.
	for _, c := range []struct{ z, q float64 }{
		{4.0, 0.9}, {6.0, 0.6}, {2.0, 1.0}, {3.0, 0.5},
	} {
		a, err := SIRFinalSize(c.z * c.q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := genfunc.PoissonReliability(c.z, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-10 {
			t.Errorf("z=%g q=%g: SIR %.12f vs Eq.11 %.12f", c.z, c.q, a, b)
		}
	}
	if s, _ := SIRFinalSize(0.8); s != 0 {
		t.Errorf("subcritical final size %g", s)
	}
	if _, err := SIRFinalSize(-1); err == nil {
		t.Error("negative R0 accepted")
	}
}

func TestAgentSIRMatchesFinalSizeEquation(t *testing.T) {
	// Immediate recovery (recover=1) with `contacts` fixed contacts is
	// single-shot fixed-fanout gossip; conditional on outbreak the
	// ever-infected fraction solves the final-size equation with
	// R0 = contacts.
	const n, contacts = 20000, 3
	want, err := SIRFinalSize(contacts)
	if err != nil {
		t.Fatal(err)
	}
	var acc stats.Running
	outbreaks := 0
	for seed := uint64(0); seed < 12; seed++ {
		res, err := RunAgentSIR(n, contacts, 1, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		frac := float64(res.FinalInfected) / n
		if frac > 0.1 { // outbreak
			acc.Add(frac)
			outbreaks++
		}
		// Curve is monotone and ends at the final count.
		for i := 1; i < len(res.Curve); i++ {
			if res.Curve[i] < res.Curve[i-1] {
				t.Fatal("curve not monotone")
			}
		}
		if res.Curve[len(res.Curve)-1] != res.FinalInfected {
			t.Fatal("curve endpoint mismatch")
		}
	}
	if outbreaks == 0 {
		t.Fatal("no outbreaks in 12 runs at R0=3")
	}
	if math.Abs(acc.Mean()-want) > 0.02 {
		t.Errorf("agent SIR outbreak size %.4f, equation %.4f", acc.Mean(), want)
	}
}

func TestAgentSIRSlowRecoveryInfectsMore(t *testing.T) {
	// Lower recovery probability -> more rounds infectious -> higher R0
	// -> larger outbreak.
	var fast, slow stats.Running
	for seed := uint64(0); seed < 8; seed++ {
		a, err := RunAgentSIR(5000, 2, 1.0, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		fast.Add(float64(a.FinalInfected) / 5000)
		b, err := RunAgentSIR(5000, 2, 0.5, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		slow.Add(float64(b.FinalInfected) / 5000)
	}
	if slow.Mean() <= fast.Mean() {
		t.Errorf("slow recovery %.4f not above fast %.4f", slow.Mean(), fast.Mean())
	}
}

func TestAgentSIRValidation(t *testing.T) {
	r := xrand.New(1)
	for _, f := range []func() (AgentResult, error){
		func() (AgentResult, error) { return RunAgentSIR(1, 2, 1, r) },
		func() (AgentResult, error) { return RunAgentSIR(100, -1, 1, r) },
		func() (AgentResult, error) { return RunAgentSIR(100, 2, 0, r) },
		func() (AgentResult, error) { return RunAgentSIR(100, 2, 1.5, r) },
	} {
		if _, err := f(); err == nil {
			t.Error("invalid agent SIR accepted")
		}
	}
}

func TestAgentSIRZeroContactsDiesImmediately(t *testing.T) {
	res, err := RunAgentSIR(100, 0, 1, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalInfected != 1 {
		t.Errorf("final infected %d, want 1", res.FinalInfected)
	}
}

func BenchmarkAgentSIR(b *testing.B) {
	r := xrand.New(1)
	for i := 0; i < b.N; i++ {
		if _, err := RunAgentSIR(5000, 3, 1, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSIRFinalSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := SIRFinalSize(3.6); err != nil {
			b.Fatal(err)
		}
	}
}
