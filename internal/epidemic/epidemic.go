// Package epidemic implements the compartmental epidemic models that the
// gossip literature leans on (the paper's related work uses the SI model
// for LRG [9]; Demers et al. [2] founded the anti-entropy/rumor-mongering
// analogy): SI, SIS, and SIR, each as an ODE (mean-field) and as an
// agent-based uniform-mixing simulation.
//
// The punchline connecting this package to the rest of the library: the
// SIR final-size equation
//
//	R∞ = 1 − e^{−R0·R∞}
//
// is exactly the paper's Eq. 11 with R0 = z·q — single-shot gossip IS an
// SIR epidemic (infected members "recover" immediately after one burst of
// forwarding), which is why the giant-component/percolation view works.
// A cross-module test asserts the equivalence numerically.
package epidemic

import (
	"fmt"
	"math"

	"gossipkit/internal/numeric"
	"gossipkit/internal/xrand"
)

// SIFraction integrates di/dt = beta·i·(1−i) from i0 over horizon t and
// returns the infected fraction (logistic growth; closed form exists, the
// RK4 path keeps the API uniform and is itself tested against the closed
// form).
func SIFraction(beta, i0, t float64) (float64, error) {
	if beta < 0 || i0 < 0 || i0 > 1 || t < 0 {
		return 0, fmt.Errorf("epidemic: invalid SI parameters beta=%g i0=%g t=%g", beta, i0, t)
	}
	f := func(_ float64, y, dydt []float64) { dydt[0] = beta * y[0] * (1 - y[0]) }
	y := numeric.RK4(f, []float64{i0}, 0, t, int(t*200)+100)
	return clamp01(y[0]), nil
}

// SISEndemicLevel returns the stable endemic infected fraction of the SIS
// model di/dt = beta·i(1−i) − gamma·i: 1 − gamma/beta for beta > gamma,
// else 0 (the infection dies out).
func SISEndemicLevel(beta, gamma float64) (float64, error) {
	if beta < 0 || gamma < 0 {
		return 0, fmt.Errorf("epidemic: negative rates beta=%g gamma=%g", beta, gamma)
	}
	if beta <= gamma {
		return 0, nil
	}
	return 1 - gamma/beta, nil
}

// SIRState is a point of the SIR trajectory.
type SIRState struct{ S, I, R float64 }

// SIRODE integrates the Kermack–McKendrick system
//
//	ds/dt = −beta·s·i,  di/dt = beta·s·i − gamma·i,  dr/dt = gamma·i
//
// from (1−i0, i0, 0) over horizon t.
func SIRODE(beta, gamma, i0, t float64) (SIRState, error) {
	if beta < 0 || gamma < 0 || i0 < 0 || i0 > 1 || t < 0 {
		return SIRState{}, fmt.Errorf("epidemic: invalid SIR parameters")
	}
	f := func(_ float64, y, dydt []float64) {
		s, i := y[0], y[1]
		dydt[0] = -beta * s * i
		dydt[1] = beta*s*i - gamma*i
		dydt[2] = gamma * i
	}
	y := numeric.RK4(f, []float64{1 - i0, i0, 0}, 0, t, int(t*400)+200)
	return SIRState{S: clamp01(y[0]), I: clamp01(y[1]), R: clamp01(y[2])}, nil
}

// SIRFinalSize solves the final-size equation R∞ = 1 − e^{−R0·R∞} for the
// total fraction ever infected, given the basic reproduction number R0.
// It returns 0 for R0 <= 1 (no epidemic). This equation is identical to
// the paper's Eq. 11 with R0 = z·q.
func SIRFinalSize(r0 float64) (float64, error) {
	if r0 < 0 || math.IsNaN(r0) {
		return 0, fmt.Errorf("epidemic: invalid R0 %g", r0)
	}
	if r0 <= 1 {
		return 0, nil
	}
	f := func(r float64) float64 { return r - 1 + math.Exp(-r0*r) }
	if f(1e-12) >= 0 {
		return 0, nil
	}
	root, err := numeric.Brent(f, 1e-12, 1, 1e-14)
	if err != nil {
		return 0, err
	}
	return clamp01(root), nil
}

// AgentResult reports an agent-based epidemic run.
type AgentResult struct {
	// FinalInfected is the number of agents ever infected (SIR) or
	// infected at the horizon (SIS).
	FinalInfected int
	// Rounds is the number of rounds executed.
	Rounds int
	// Curve is the per-round count of ever-infected (SIR) or currently
	// infected (SIS) agents, starting with round 0.
	Curve []int
}

// RunAgentSIR simulates a uniform-mixing SIR epidemic over n agents: each
// round, every currently infectious agent contacts `contacts` uniformly
// random agents (infecting susceptibles) and then recovers with
// probability recover (recovered agents are immune). It runs until no
// agent is infectious. contacts·E[rounds infectious] plays the role of
// z·q; with recover = 1 this is exactly single-shot gossip with fixed
// fanout `contacts`.
func RunAgentSIR(n, contacts int, recover float64, r *xrand.RNG) (AgentResult, error) {
	if n < 2 || contacts < 0 || recover <= 0 || recover > 1 {
		return AgentResult{}, fmt.Errorf("epidemic: invalid agent SIR parameters n=%d contacts=%d recover=%g",
			n, contacts, recover)
	}
	const (
		susceptible = 0
		infectious  = 1
		recovered   = 2
	)
	state := make([]uint8, n)
	state[0] = infectious
	everInfected := 1
	current := []int32{0}
	res := AgentResult{Curve: []int{1}}
	buf := make([]int, 0, contacts)
	for len(current) > 0 {
		res.Rounds++
		var next []int32
		for _, u := range current {
			buf = r.SampleExcluding(buf, n, contacts, int(u))
			for _, v := range buf {
				if state[v] == susceptible {
					state[v] = infectious
					everInfected++
					next = append(next, int32(v))
				}
			}
			if r.Bool(recover) {
				state[u] = recovered
			} else {
				next = append(next, u)
			}
		}
		current = next
		res.Curve = append(res.Curve, everInfected)
		if res.Rounds > 100*n {
			return res, fmt.Errorf("epidemic: SIR failed to terminate")
		}
	}
	res.FinalInfected = everInfected
	return res, nil
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}
