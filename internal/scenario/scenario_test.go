package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/membership"
	"gossipkit/internal/simnet"
	"gossipkit/internal/xrand"
)

func testConfig(n int) RunConfig {
	return RunConfig{
		Params: core.Params{N: n, Fanout: dist.NewPoisson(5), AliveRatio: 1},
	}
}

func TestDefaultSuite(t *testing.T) {
	suite := DefaultSuite()
	if len(suite) < 6 {
		t.Fatalf("bundled suite has %d scenarios, want >= 6", len(suite))
	}
	seen := map[string]bool{}
	for _, s := range suite {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
	if s, ok := ByName("crash-wave"); !ok || s.Name != "crash-wave" {
		t.Error("ByName failed to find crash-wave")
	}
	if _, ok := ByName("no-such"); ok {
		t.Error("ByName found a nonexistent scenario")
	}
}

// TestRunDeterminism is the repo's time-varying-fault determinism check: a
// campaign combining a mid-run crash wave with a partition that heals must
// yield byte-identical reports across repeated runs with the same seed.
func TestRunDeterminism(t *testing.T) {
	s := New("crash-partition-heal", "mid-run crash + partition then heal").
		At(4*time.Millisecond, CrashFraction(0.15)).
		At(8*time.Millisecond, Partition(0.5, 1.0)).
		At(40*time.Millisecond, Heal()).
		At(45*time.Millisecond, Regossip(6))
	cfg := testConfig(500)
	first, err := Run(s, cfg, 1234)
	if err != nil {
		t.Fatal(err)
	}
	firstJSON, _ := json.Marshal(first)
	for i := 0; i < 3; i++ {
		rep, err := Run(s, cfg, 1234)
		if err != nil {
			t.Fatal(err)
		}
		repJSON, _ := json.Marshal(rep)
		if string(repJSON) != string(firstJSON) {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i, repJSON, firstJSON)
		}
	}
	if first.Crashed == 0 {
		t.Error("campaign crashed nobody")
	}
	other, err := Run(s, cfg, 1235)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(other, first) {
		t.Error("different seeds produced identical reports")
	}
}

// TestHealRestoresDelivery checks the semantic claim behind partition
// scenarios: an unhealed partition durably cuts delivery roughly in half,
// while healing followed by a re-gossip wave restores it.
func TestHealRestoresDelivery(t *testing.T) {
	cut := New("partition-only", "half partitioned away, never heals").
		At(3*time.Millisecond, Partition(0.5, 1.0))
	healed := New("partition-healed", "same partition, healed and re-gossiped").
		At(3*time.Millisecond, Partition(0.5, 1.0)).
		At(60*time.Millisecond, Heal()).
		At(65*time.Millisecond, Regossip(8))
	cfg := testConfig(400)
	var cutRel, healRel float64
	for seed := uint64(10); seed < 14; seed++ {
		c, err := Run(cut, cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Run(healed, cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		cutRel += c.Reliability
		healRel += h.Reliability
	}
	cutRel /= 4
	healRel /= 4
	if cutRel > 0.75 {
		t.Errorf("unhealed partition delivered %.3f, expected a durable cut", cutRel)
	}
	if healRel < 0.90 {
		t.Errorf("healed partition delivered only %.3f, expected restored delivery", healRel)
	}
	if healRel-cutRel < 0.2 {
		t.Errorf("healing gained only %.3f (cut %.3f, healed %.3f)", healRel-cutRel, cutRel, healRel)
	}
}

func TestSweepWorkerInvariance(t *testing.T) {
	suite := DefaultSuite()[:4]
	base := SweepConfig{Run: testConfig(300), Seeds: 3, BaseSeed: 7}
	one := base
	one.Workers = 1
	many := base
	many.Workers = 8
	a, err := Sweep(suite, one)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(suite, many)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("sweep differs across worker counts:\n%s\nvs\n%s", aj, bj)
	}
}

func TestChurnDonatesArcs(t *testing.T) {
	s := New("churn", "burst of departures").
		At(5*time.Millisecond, ChurnFraction(0.1))
	cfg := testConfig(400)
	cfg.PartialViewCopies = 2
	rep, err := Run(s, cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Departed == 0 {
		t.Error("nobody departed")
	}
	if rep.ArcsDonated == 0 {
		t.Error("departures donated no arcs despite SCAMP partial views")
	}
	// Without partial views, churn degenerates to crashes: no donations.
	full, err := Run(s, testConfig(400), 99)
	if err != nil {
		t.Fatal(err)
	}
	if full.ArcsDonated != 0 {
		t.Errorf("full view donated %d arcs", full.ArcsDonated)
	}
	if full.Departed == 0 {
		t.Error("full-view churn crashed nobody")
	}
}

func TestFlashCrowdAndRestart(t *testing.T) {
	s := New("crash-restart-flash", "crash, restart, extra publishers").
		At(4*time.Millisecond, CrashFraction(0.3)).
		At(30*time.Millisecond, RestartFraction(1)).
		At(35*time.Millisecond, FlashCrowd(4)).
		At(36*time.Millisecond, Regossip(6))
	rep, err := Run(s, testConfig(400), 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarted == 0 || rep.Published == 0 {
		t.Fatalf("campaign did not exercise restart/publish: %+v", rep)
	}
	if rep.UpAtEnd != 400 {
		t.Errorf("full restart left %d/400 up", rep.UpAtEnd)
	}
	if rep.SurvivorReliability < 0.9 {
		t.Errorf("restart + re-gossip recovered only %.3f", rep.SurvivorReliability)
	}
}

// TestRestartNeverResurrectsMaskDead guards the fail-stop contract: members
// failed by the static AliveRatio mask have no handler, so restarting them
// would create zombies that absorb messages (deflating survivor metrics) or
// let flash-crowd publishes push Reliability past 1. Restart must pick only
// scenario-crashed members.
func TestRestartNeverResurrectsMaskDead(t *testing.T) {
	s := New("restart-under-mask", "crash some, restart everything restartable, flash-crowd widely").
		At(4*time.Millisecond, CrashFraction(0.2)).
		At(20*time.Millisecond, RestartFraction(1)).
		At(25*time.Millisecond, FlashCrowd(50)).
		At(26*time.Millisecond, Regossip(10))
	cfg := testConfig(500)
	cfg.Params.AliveRatio = 0.7 // 150 mask-dead members must stay dead
	for seed := uint64(1); seed <= 5; seed++ {
		rep, err := Run(s, cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		if rep.UpAtEnd > 350 {
			t.Fatalf("seed %d: %d members up at end, but only 350 were ever alive", seed, rep.UpAtEnd)
		}
		if rep.Reliability > 1 {
			t.Fatalf("seed %d: reliability %g > 1 — a mask-dead member was published to", seed, rep.Reliability)
		}
		if rep.SurvivorReliability > 1 {
			t.Fatalf("seed %d: survivor reliability %g > 1", seed, rep.SurvivorReliability)
		}
	}
}

func TestSweepRejectsSharedMutableState(t *testing.T) {
	suite := DefaultSuite()[:1]
	shared := testConfig(100)
	shared.Params.View = membership.NewPartialViews(100, 1, xrand.New(1))
	if _, err := Sweep(suite, SweepConfig{Run: shared, Seeds: 2}); err == nil {
		t.Error("sweep accepted a shared Params.View")
	}
	bursty := testConfig(100)
	bursty.Net.Loss = simnet.NewGilbertElliott(0.1, 0.3, 0.01, 0.8)
	if _, err := Sweep(suite, SweepConfig{Run: bursty, Seeds: 2}); err == nil {
		t.Error("sweep accepted a shared stateful Gilbert-Elliott loss model")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	for _, s := range DefaultSuite() {
		data, err := s.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		again, err := back.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(again) {
			t.Errorf("%s: round trip changed the spec", s.Name)
		}
	}
}

func TestParseHandwrittenSpec(t *testing.T) {
	spec := `{
		"name": "ops-drill",
		"description": "zone loss during a loss episode",
		"steps": [
			{"at": "2ms", "action": {"op": "loss", "p": 0.1}},
			{"at": "5ms", "action": {"op": "crash-zone", "lo": 0.25, "hi": 0.5}},
			{"at": 15000000, "action": {"op": "clear-loss"}}
		]
	}`
	s, err := Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Steps) != 3 || s.Steps[2].At.Std() != 15*time.Millisecond {
		t.Fatalf("parsed %+v", s)
	}
	if _, err := Run(s, testConfig(300), 3); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadActions(t *testing.T) {
	bad := []*Scenario{
		New("x", "").At(0, Action{Op: "warp"}),
		New("x", "").At(0, CrashFraction(1.5)),
		New("x", "").At(0, Partition(0.5, 0.5)),
		New("x", "").At(0, Action{Op: OpPublish}),
		New("x", "").At(-time.Millisecond, Heal()),
		New("", ""),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}
