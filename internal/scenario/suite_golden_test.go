package scenario

import (
	"strings"
	"testing"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
)

// TestRegossipHeartbeatGolden pins the sweep summary of the bundled
// recurring campaign (the Every-based regossip heartbeat) bit for bit:
// the sweep is a pure function of (scenario, config, seeds) and must stay
// byte-stable across refactors of the runner, the kernel, and the worker
// pool — the same guarantee the release sweeps rely on. If an intentional
// change to the scenario or the substrate moves these numbers, regenerate
// the constant and say so in the commit.
func TestRegossipHeartbeatGolden(t *testing.T) {
	const golden = "scenario,runs,reliability,reliability_stddev,survivor_reliability,spread_ms,mean_messages,mean_up_at_end,static_prediction,effective_prediction,static_gap,effective_gap\n" +
		"regossip-heartbeat,4,0.798750,0.006292,0.939706,92.956,2491.8,510.0,0.993023,0.984783,-0.194273,-0.045077\n"

	s, ok := ByName("regossip-heartbeat")
	if !ok {
		t.Fatal("regossip-heartbeat missing from the bundled suite")
	}
	// The heartbeat must actually recur: one bounded recurring step.
	recurring := 0
	for _, st := range s.Steps {
		if st.Every > 0 {
			recurring++
			if st.Until == 0 {
				t.Error("recurring regossip without an until bound would never drain")
			}
		}
	}
	if recurring == 0 {
		t.Fatal("regossip-heartbeat has no recurring step")
	}

	cfg := SweepConfig{
		Run: RunConfig{
			Params:            core.Params{N: 600, Fanout: dist.NewPoisson(5), AliveRatio: 1},
			PartialViewCopies: 2,
		},
		Seeds: 4, BaseSeed: 2008, Workers: 3,
	}
	// Worker-count invariance is part of the pinned contract.
	for _, workers := range []int{1, 3} {
		c := cfg
		c.Workers = workers
		res, err := Sweep([]*Scenario{s}, c)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.CSV(); got != golden {
			t.Errorf("workers=%d: heartbeat sweep summary moved:\ngot:  %s\nwant: %s",
				workers, strings.TrimSpace(got), strings.TrimSpace(golden))
		}
	}
}

// TestHeartbeatRecoversUnderLoss checks the semantic claim behind the
// bundled heartbeat. The campaign's 20% ambient loss thins an effective
// Poisson(3) fanout to ~2.4 — close to the lossy critical point, where a
// single-shot spread fizzles for much of the group. The recurring
// re-gossip wave must recover substantially more of the survivors than
// the identical campaign without the heartbeat.
func TestHeartbeatRecoversUnderLoss(t *testing.T) {
	base := New("no-heartbeat", "loss + crash wave, no recovery").
		At(0, Loss(0.20)).
		At(6e6, CrashFraction(0.15)) // 6ms, same prefix as the heartbeat
	with, _ := ByName("regossip-heartbeat")
	cfg := RunConfig{
		Params:            core.Params{N: 600, Fanout: dist.NewPoisson(3), AliveRatio: 1},
		PartialViewCopies: 2,
	}
	var bare, healed float64
	const seeds = 6
	for seed := uint64(50); seed < 50+seeds; seed++ {
		b, err := Run(base, cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Run(with, cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		bare += b.SurvivorReliability
		healed += h.SurvivorReliability
	}
	bare /= seeds
	healed /= seeds
	// Measured ~0.48 bare vs ~0.76 healed; leave a wide margin.
	if healed < bare+0.15 {
		t.Errorf("heartbeat recovered little: %.4f without vs %.4f with", bare, healed)
	}
	if healed < 0.70 {
		t.Errorf("heartbeat left survivors at %.4f, want >= 0.70", healed)
	}
}
