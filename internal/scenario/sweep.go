package scenario

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"gossipkit/internal/core"
	"gossipkit/internal/obs"
	"gossipkit/internal/runpool"
	"gossipkit/internal/simnet"
	"gossipkit/internal/stats"
)

// SweepConfig parameterizes a parallel scenario × seed sweep.
type SweepConfig struct {
	// Run configures each individual execution.
	Run RunConfig
	// Seeds is the number of seeded replications per scenario (>= 1).
	Seeds int
	// BaseSeed derives each cell's seed; the full grid is a pure
	// function of it.
	BaseSeed uint64
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS. The result
	// is identical for any worker count: cells are computed
	// independently (each from its own derived seed) and reduced in a
	// fixed order after the pool drains.
	Workers int
	// Probe, when non-nil, observes every run: each worker builds one
	// pooled obs.Probe from these options (Run.Probe must then be nil —
	// a single probe cannot be shared across workers), per-run Metrics
	// ride on the buffered RunReports, and the per-scenario merges —
	// reduced in cell order, so byte-identical for any worker count —
	// land in SweepResult.Curves.
	Probe *obs.Options
}

// cellSeed derives the seed for scenario si, replication ri. The odd
// multipliers spread the grid over the seed space so neighboring cells
// never share RNG streams.
func (c SweepConfig) cellSeed(si, ri int) uint64 {
	return c.BaseSeed + uint64(si)*0x9e3779b97f4a7c15 + uint64(ri)*0xbf58476d1ce4e5b9 + 1
}

// Summary aggregates the replications of one scenario.
type Summary struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	Runs        int    `json:"runs"`
	// Reliability aggregates delivered/initially-alive across runs.
	Reliability Moments `json:"reliability"`
	// SurvivorReliability aggregates delivery over campaign survivors.
	SurvivorReliability Moments `json:"survivor_reliability"`
	// SpreadMs aggregates last-first-receipt times.
	SpreadMs Moments `json:"spread_ms"`
	// MeanMessages is the mean number of gossip sends per run.
	MeanMessages float64 `json:"mean_messages"`
	// MeanUpAtEnd is the mean surviving-member count.
	MeanUpAtEnd float64 `json:"mean_up_at_end"`
	// Latency merges the per-run delivery-latency accumulators
	// (stats.Running.Merge) across all replications.
	Latency LatencySummary `json:"latency"`
	// StaticPrediction is Eq. 11 at the initial q.
	StaticPrediction float64 `json:"static_prediction"`
	// EffectivePrediction is the mean of Eq. 11 at each run's end-of-run
	// up fraction.
	EffectivePrediction float64 `json:"effective_prediction"`
	// CorrectedPrediction is the mean giant-component-corrected Eq. 11
	// prediction over the runs' overlays at their end-of-run up
	// fractions (RunReport.CorrectedPrediction). Zero — and omitted from
	// JSON — on uniform-topology sweeps, keeping their goldens
	// byte-identical.
	CorrectedPrediction float64 `json:"corrected_prediction,omitempty"`
	// StaticGap and EffectiveGap are measured-minus-predicted
	// reliability: where the static-q model breaks, StaticGap is large
	// while EffectiveGap shrinks (the model is fine, the q it was fed
	// was not); where both are large, the time-varying process itself
	// (partitions, bursts, timing) defeats the model.
	StaticGap    float64 `json:"static_gap"`
	EffectiveGap float64 `json:"effective_gap"`
}

// Moments is the flattened form of a stats.Running accumulator.
type Moments struct {
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	CI95   float64 `json:"ci95"`
}

func moments(r stats.Running) Moments {
	return Moments{Mean: r.Mean(), StdDev: r.StdDev(), Min: r.Min(), Max: r.Max(), CI95: r.CI95()}
}

// SweepResult is the aggregated outcome of a scenario × seed sweep.
type SweepResult struct {
	N         int       `json:"n"`
	Fanout    string    `json:"fanout"`
	Q         float64   `json:"q"`
	Seeds     int       `json:"seeds"`
	BaseSeed  uint64    `json:"base_seed"`
	Scenarios []Summary `json:"scenarios"`
	// Curves holds one merged telemetry aggregate per scenario (parallel
	// to Scenarios) when the sweep ran under SweepConfig.Probe; nil
	// otherwise. Excluded from the JSON encoding so probed and unprobed
	// sweep JSON stay byte-identical; render with CurvesCSV.
	Curves []*obs.Merged `json:"-"`
}

// CurvesCSV renders the per-scenario merged virtual-time series (π(t),
// in-flight, per-kind counters) as one CSV, scenarios labeled in the
// first column. It errors when the sweep did not run under a probe.
func (r *SweepResult) CurvesCSV() (string, error) {
	if len(r.Curves) == 0 {
		return "", fmt.Errorf("scenario: sweep has no curves; run it with SweepConfig.Probe set")
	}
	var b strings.Builder
	for si, g := range r.Curves {
		if err := g.WriteCurveCSV(&b, r.Scenarios[si].Scenario, si == 0); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

// Observer streams completed sweep cells: it is called once per cell, in
// deterministic cell order (cells are numbered in grid order; for Sweep,
// cell = si·Seeds + ri), regardless of worker count.
type Observer func(cell int, rep RunReport)

// Sweep runs every scenario for cfg.Seeds seeded replications on a worker
// pool and aggregates per-scenario summaries; see SweepCtx.
func Sweep(scenarios []*Scenario, cfg SweepConfig) (*SweepResult, error) {
	return SweepCtx(context.Background(), scenarios, cfg, nil)
}

// SweepCtx runs every scenario for cfg.Seeds seeded replications on a
// worker pool and aggregates per-scenario summaries. Results are
// deterministic in (scenarios, cfg) regardless of cfg.Workers: the grid
// cells are data-independent (each worker recycles one run-state arena,
// which is result-neutral) and the reduction happens in grid order after
// the pool drains. Context cancellation aborts the sweep promptly with
// ctx.Err(); observe, when non-nil, streams per-cell reports in
// deterministic cell order.
func SweepCtx(ctx context.Context, scenarios []*Scenario, cfg SweepConfig, observe Observer) (*SweepResult, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("scenario: empty sweep")
	}
	if err := checkSweepShared(cfg.Run); err != nil {
		return nil, err
	}
	if cfg.Seeds < 1 {
		cfg.Seeds = 1
	}
	cells := len(scenarios) * cfg.Seeds
	workers := runpool.Count(cfg.Workers, cells)

	reports := make([]RunReport, cells)
	lats := make([]stats.Running, cells)
	// One run-state arena per worker: every run on a worker recycles the
	// same kernel queue, network buffers, and receive flags. Probes pool
	// the same way — one per worker, re-Attached each run — and each
	// run's Metrics snapshot is buffered on its RunReport for the
	// in-order merge below.
	arenas := make([]*core.NetArena, workers)
	probes := make([]*obs.Probe, workers)
	var observeCell func(i int)
	if observe != nil {
		observeCell = func(i int) { observe(i, reports[i]) }
	}
	err := runpool.Run(ctx, cells, workers, func(w, cell int) error {
		if arenas[w] == nil {
			arenas[w] = core.NewNetArena()
		}
		si, ri := cell/cfg.Seeds, cell%cfg.Seeds
		run := cfg.Run
		if cfg.Probe != nil {
			if probes[w] == nil {
				probes[w] = obs.New(*cfg.Probe)
			}
			run.Probe = probes[w]
		}
		rep, lat, err := runWithLatency(scenarios[si], run, cfg.cellSeed(si, ri), arenas[w])
		if err != nil {
			return err
		}
		reports[cell], lats[cell] = rep, lat
		return nil
	}, observeCell)
	if err != nil {
		return nil, err
	}

	out := &SweepResult{
		N:        cfg.Run.Params.N,
		Q:        cfg.Run.Params.AliveRatio,
		Seeds:    cfg.Seeds,
		BaseSeed: cfg.BaseSeed,
	}
	// Protocol-executor sweeps carry no paper params: the fanout (and N)
	// live in the executor's spec, so the header fields stay zero.
	if cfg.Run.Params.Fanout != nil {
		out.Fanout = cfg.Run.Params.Fanout.Name()
	}
	for si, s := range scenarios {
		lo := si * cfg.Seeds
		out.Scenarios = append(out.Scenarios,
			summarize(s, reports[lo:lo+cfg.Seeds], lats[lo:lo+cfg.Seeds]))
		if cfg.Probe != nil {
			// Merge replications in cell order — the merge is
			// order-sensitive only in this fixed order, so the curves are
			// byte-identical for any worker count.
			g := &obs.Merged{}
			for ri := 0; ri < cfg.Seeds; ri++ {
				g.Merge(reports[lo+ri].Metrics)
			}
			out.Curves = append(out.Curves, g)
		}
	}
	return out, nil
}

// summarize aggregates one scenario's seeded replications into a Summary.
func summarize(s *Scenario, reports []RunReport, lats []stats.Running) Summary {
	var rel, srel, spread, msgs, up, eff, corr stats.Running
	var lat stats.Running
	sum := Summary{Scenario: s.Name, Description: s.Description}
	for ri, rep := range reports {
		rel.Add(rep.Reliability)
		srel.Add(rep.SurvivorReliability)
		spread.Add(rep.SpreadMs)
		msgs.Add(float64(rep.MessagesSent))
		up.Add(float64(rep.UpAtEnd))
		eff.Add(rep.EffectivePrediction)
		corr.Add(rep.CorrectedPrediction)
		lat.Merge(lats[ri])
		sum.StaticPrediction = rep.StaticPrediction
	}
	sum.Runs = rel.N()
	sum.Reliability = moments(rel)
	sum.SurvivorReliability = moments(srel)
	sum.SpreadMs = moments(spread)
	sum.MeanMessages = msgs.Mean()
	sum.MeanUpAtEnd = up.Mean()
	sum.Latency = LatencySummary{N: lat.N(), MeanMs: lat.Mean() * 1e3, MaxMs: lat.Max() * 1e3}
	sum.EffectivePrediction = eff.Mean()
	sum.CorrectedPrediction = corr.Mean()
	sum.StaticGap = rel.Mean() - sum.StaticPrediction
	sum.EffectiveGap = srel.Mean() - sum.EffectivePrediction
	return sum
}

// CheckShared rejects run-config state sweep workers would mutate
// concurrently; it is the pre-flight check the facade engines run before
// dispatching a sweep. See checkSweepShared.
func CheckShared(run RunConfig) error { return checkSweepShared(run) }

// checkSweepShared rejects run-config state the sweep workers would mutate
// concurrently: a shared membership view (churn unsubscribes into it) or a
// stateful loss model (Gilbert-Elliott advances its channel state on every
// Drop).
func checkSweepShared(run RunConfig) error {
	if run.Params.View != nil {
		return fmt.Errorf("scenario: sweep cannot share Params.View across workers; set RunConfig.PartialViewCopies so every run builds its own views")
	}
	if _, stateful := run.Net.Loss.(*simnet.GilbertElliott); stateful {
		return fmt.Errorf("scenario: sweep cannot share a stateful Gilbert-Elliott loss model across workers; install it per run with the burst-loss action")
	}
	if run.Probe != nil {
		return fmt.Errorf("scenario: sweep cannot share one RunConfig.Probe across workers; set SweepConfig.Probe and each worker pools its own")
	}
	return nil
}

// CSV renders the sweep as one row per scenario.
func (r *SweepResult) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,runs,reliability,reliability_stddev,survivor_reliability,spread_ms,mean_messages,mean_up_at_end,static_prediction,effective_prediction,static_gap,effective_gap\n")
	for _, s := range r.Scenarios {
		fmt.Fprintf(&b, "%s,%d,%.6f,%.6f,%.6f,%.3f,%.1f,%.1f,%.6f,%.6f,%.6f,%.6f\n",
			csvField(s.Scenario), s.Runs,
			s.Reliability.Mean, s.Reliability.StdDev, s.SurvivorReliability.Mean,
			s.SpreadMs.Mean, s.MeanMessages, s.MeanUpAtEnd,
			s.StaticPrediction, s.EffectivePrediction, s.StaticGap, s.EffectiveGap)
	}
	return b.String()
}

// Table renders the sweep as an aligned ASCII table sorted by survivor
// reliability (worst first), with the model gaps called out.
func (r *SweepResult) Table() string {
	rows := append([]Summary(nil), r.Scenarios...)
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i].SurvivorReliability.Mean < rows[j].SurvivorReliability.Mean
	})
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: n=%d P=%s q=%g seeds=%d\n", r.N, r.Fanout, r.Q, r.Seeds)
	fmt.Fprintf(&b, "%-18s %5s  %10s %10s  %9s  %9s %9s\n",
		"scenario", "runs", "rel", "survivors", "spread", "static", "eff.gap")
	for _, s := range rows {
		fmt.Fprintf(&b, "%-18s %5d  %10.4f %10.4f  %7.1fms  %9.4f %+9.4f\n",
			s.Scenario, s.Runs, s.Reliability.Mean, s.SurvivorReliability.Mean,
			s.SpreadMs.Mean, s.StaticPrediction, s.EffectiveGap)
	}
	return b.String()
}
