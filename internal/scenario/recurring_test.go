package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"gossipkit/internal/dist"
	"gossipkit/internal/membership"
	"gossipkit/internal/xrand"
)

// TestEveryFiresRepeatedly checks that a recurring crash step tracks the
// spread: a periodic 2% crash while the spread is in flight removes far
// more members than its one-shot counterpart, and the run still drains.
func TestEveryFiresRepeatedly(t *testing.T) {
	cfg := testConfig(400)
	oneShot := New("one-shot", "").At(2*time.Millisecond, CrashFraction(0.02))
	recurring := New("recurring", "").Every(2*time.Millisecond, CrashFraction(0.02))

	one, err := Run(oneShot, cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Run(recurring, cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	if one.Crashed == 0 || rec.Crashed == 0 {
		t.Fatalf("campaigns did nothing: one-shot=%d recurring=%d", one.Crashed, rec.Crashed)
	}
	// The default latency spreads the run over tens of milliseconds, so a
	// 2ms recurrence must fire many times before the spread drains.
	if rec.Crashed < 3*one.Crashed {
		t.Errorf("recurring crash fired too rarely: %d crashed vs one-shot %d", rec.Crashed, one.Crashed)
	}
}

// TestEveryUntilBoundsTheWindow checks a bounded recurrence fires inside
// [start, until] and then stops even though the until window outlives the
// spread's own events (publish keeps generating fresh traffic each firing,
// so only the bound can end it).
func TestEveryUntilBoundsTheWindow(t *testing.T) {
	cfg := testConfig(300)
	s := New("bounded", "").
		EveryUntil(5*time.Millisecond, 10*time.Millisecond, 200*time.Millisecond, FlashCrowd(1))
	rep, err := Run(s, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Firings at 5,15,...,195ms = 20; each publishes one member (counted
	// even when the member already has m, as a re-gossip).
	if rep.Published != 20 {
		t.Errorf("bounded recurrence published %d times, want 20", rep.Published)
	}
}

// TestEveryDeterminism: recurring campaigns must stay a pure function of
// the seed.
func TestEveryDeterminism(t *testing.T) {
	s := New("recurring-churn", "").
		Every(3*time.Millisecond, CrashFraction(0.01)).
		EveryUntil(0, 7*time.Millisecond, 50*time.Millisecond, Regossip(2))
	cfg := testConfig(300)
	first, err := Run(s, cfg, 4321)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first)
	for i := 0; i < 3; i++ {
		again, err := Run(s, cfg, 4321)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(again)
		if string(a) != string(b) {
			t.Fatalf("recurring run diverged:\n%s\n%s", a, b)
		}
	}
}

// TestEveryJSONRoundTrip checks the spec encoding of recurring steps.
func TestEveryJSONRoundTrip(t *testing.T) {
	s := New("periodic", "crash 1% every 10ms for 100ms").
		EveryUntil(10*time.Millisecond, 10*time.Millisecond, 100*time.Millisecond, CrashFraction(0.01))
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"every": "10ms"`) || !strings.Contains(string(data), `"until": "100ms"`) {
		t.Fatalf("spec missing every/until fields:\n%s", data)
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Steps[0].Every.Std() != 10*time.Millisecond || parsed.Steps[0].Until.Std() != 100*time.Millisecond {
		t.Errorf("round-trip lost recurrence: %+v", parsed.Steps[0])
	}

	// A hand-written spec using the "every" field parses too.
	handwritten := `{"name":"drip","steps":[{"at":"5ms","every":"10ms","action":{"op":"crash","frac":0.01}}]}`
	if _, err := Parse([]byte(handwritten)); err != nil {
		t.Fatalf("hand-written recurring spec rejected: %v", err)
	}
}

// TestRecurrenceValidation rejects malformed recurring steps.
func TestRecurrenceValidation(t *testing.T) {
	bad := []*Scenario{
		{Name: "neg-every", Steps: []Step{{At: 0, Every: -1, Action: Heal()}}},
		{Name: "neg-until", Steps: []Step{{At: 0, Every: Duration(time.Millisecond), Until: -1, Action: Heal()}}},
		{Name: "until-no-every", Steps: []Step{{At: 0, Until: Duration(time.Second), Action: Heal()}}},
		{Name: "until-before-at", Steps: []Step{{
			At: Duration(50 * time.Millisecond), Every: Duration(time.Millisecond),
			Until: Duration(10 * time.Millisecond), Action: Heal(),
		}}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validation accepted a malformed recurring step", s.Name)
		}
	}
	// Self-sustaining ops (publish/regossip generate gossip traffic every
	// firing) must carry an until bound or the run can never drain.
	unbounded := New("self-sustaining", "").Every(5*time.Millisecond, FlashCrowd(1))
	if err := unbounded.Validate(); err == nil {
		t.Error("validation accepted an unbounded recurring publish")
	}
	unboundedRegossip := New("self-sustaining-2", "").Every(5*time.Millisecond, Regossip(1))
	if err := unboundedRegossip.Validate(); err == nil {
		t.Error("validation accepted an unbounded recurring regossip")
	}
	bounded := New("ok", "").EveryUntil(0, 5*time.Millisecond, 50*time.Millisecond, FlashCrowd(1))
	if err := bounded.Validate(); err != nil {
		t.Errorf("bounded recurring publish rejected: %v", err)
	}
}

// TestGridSweep checks the (scenario × q × fanout) grid: full coverage,
// worker-count invariance, and the CSV surface.
func TestGridSweep(t *testing.T) {
	scenarios := []*Scenario{
		New("baseline", ""),
		New("wave", "").At(4*time.Millisecond, CrashFraction(0.1)),
	}
	cfg := GridConfig{
		Run:      testConfig(200),
		Qs:       []float64{0.8, 1.0},
		Fanouts:  []dist.Distribution{dist.NewPoisson(3), dist.NewPoisson(6)},
		Seeds:    2,
		BaseSeed: 77,
		Workers:  1,
	}
	got, err := SweepGrid(scenarios, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != 2*2*2 {
		t.Fatalf("grid has %d cells, want 8", len(got.Cells))
	}
	for _, c := range got.Cells {
		if c.Runs != 2 {
			t.Errorf("cell %s/q=%g/%s has %d runs, want 2", c.Scenario, c.Q, c.Fanout, c.Runs)
		}
		if c.Reliability.Mean <= 0 {
			t.Errorf("cell %s/q=%g/%s has zero reliability", c.Scenario, c.Q, c.Fanout)
		}
	}
	// Higher fanout at equal q must not hurt mean reliability on baseline.
	if got.Cells[0].Reliability.Mean > got.Cells[1].Reliability.Mean+0.05 {
		t.Errorf("fanout 6 worse than fanout 3: %+v vs %+v", got.Cells[1], got.Cells[0])
	}

	aJSON, _ := json.Marshal(got)
	cfg.Workers = 4
	again, err := SweepGrid(scenarios, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bJSON, _ := json.Marshal(again)
	if string(aJSON) != string(bJSON) {
		t.Fatal("grid sweep result depends on worker count")
	}

	csv := got.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+8 {
		t.Fatalf("grid CSV has %d lines, want header + 8 cells:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "scenario,q,fanout,runs,") {
		t.Errorf("grid CSV header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "baseline,0.8,Poisson(3),2,") {
		t.Errorf("grid CSV first cell: %s", lines[1])
	}
}

// TestGridSweepDefaults: empty Qs/Fanouts fall back to the base Params.
func TestGridSweepDefaults(t *testing.T) {
	got, err := SweepGrid([]*Scenario{New("baseline", "")}, GridConfig{
		Run: testConfig(150), Seeds: 2, BaseSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != 1 || got.Cells[0].Q != 1 || got.Cells[0].Fanout != "Poisson(5)" {
		t.Fatalf("default grid: %+v", got.Cells)
	}
	if _, err := SweepGrid(nil, GridConfig{Run: testConfig(150)}); err == nil {
		t.Error("empty grid sweep accepted")
	}
	shared := GridConfig{Run: testConfig(150), Seeds: 1}
	shared.Run.Params.View = membership.NewPartialViews(150, 2, xrand.New(1))
	if _, err := SweepGrid([]*Scenario{New("baseline", "")}, shared); err == nil {
		t.Error("grid sweep accepted a shared membership view")
	}
}
