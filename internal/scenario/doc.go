// Package scenario is a declarative fault-injection engine for the gossip
// simulator: a Scenario scripts a time-varying fault campaign — crash
// waves, correlated zone failures, partitions that heal, churn bursts,
// bursty loss episodes, flash-crowd multi-publish — as timestamped Actions
// applied to a running discrete-event execution (core.ExecuteOnNetworkInjected).
//
// The paper models fault tolerance with a single static nonfailed ratio q
// per execution; scenarios stress-test that model with richer fault
// processes and quantify where the static-q prediction (Eq. 11) breaks.
// Scenarios are expressible both through the Go builder API
//
//	s := scenario.New("crash-wave", "three 10% crash waves").
//		At(5*time.Millisecond, scenario.CrashFraction(0.1)).
//		At(10*time.Millisecond, scenario.CrashFraction(0.1))
//
// and as a JSON spec (see Scenario's JSON encoding), so campaigns can be
// versioned and shared without recompiling. A run is a pure function of
// (params, scenario, seed): repeated runs with the same seed are
// byte-identical.
//
// The sweep runners (Sweep, SweepScenarioGrid) replicate scenarios × seeds
// on a worker pool; cells are data-independent and reduced in grid order,
// so output is byte-identical for any worker count. Each worker recycles
// one core.NetArena, so after its first run a worker executes campaigns
// with zero O(n)-sized allocations per run.
package scenario
