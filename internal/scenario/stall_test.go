package scenario

import (
	"strings"
	"testing"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/protocols"
	"gossipkit/internal/simnet"
)

// The "when": "stall" conditional trigger: a kernel event watches the
// run's delivered count and fires its action when delivery makes no
// progress for the configured window while some up member still lacks m.
// These tests pin that it (a) rescues a genuinely stalled spread, (b)
// stays silent on a healthy run, (c) works identically through the
// protocol-baseline executors, and (d) validates and round-trips in the
// JSON spec language.

func stallParams(n int) RunConfig {
	return RunConfig{Params: core.Params{N: n, Fanout: dist.NewPoisson(6), AliveRatio: 1}}
}

// TestStallTriggerRescuesPartition: a never-healing partition stalls the
// spread; the stall trigger heals it and fires a re-gossip wave, lifting
// delivery to (near-)full — versus the same campaign without the trigger,
// which leaves the partitioned half unserved.
func TestStallTriggerRescuesPartition(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	// The partition lands at t=0, before any message can cross it: the
	// top half stays uninfected until something intervenes.
	stuck := New("stuck", "partition that never heals").
		At(0, Partition(0.5, 1.0))
	rescued := New("rescued", "partition healed by the stall trigger").
		At(0, Partition(0.5, 1.0)).
		OnStall(ms(30), Heal()).
		OnStall(ms(30), Regossip(10))

	repStuck, err := Run(stuck, stallParams(600), 5)
	if err != nil {
		t.Fatal(err)
	}
	repRescued, err := Run(rescued, stallParams(600), 5)
	if err != nil {
		t.Fatal(err)
	}
	if repStuck.Reliability > 0.7 {
		t.Fatalf("control run delivered %.3f; the partition did not stall the spread", repStuck.Reliability)
	}
	if repRescued.Reliability < 0.95 {
		t.Errorf("stall trigger did not rescue the spread: reliability %.3f (stuck control: %.3f)",
			repRescued.Reliability, repStuck.Reliability)
	}
}

// TestStallTriggerSilentOnHealthyRun: on a run that serves every up member
// the watcher unwinds without firing (observable through the Published
// counter) and without keeping the execution alive. The run uses pbcast
// with a full round budget — unlike the paper's single-shot algorithm, it
// reliably reaches everyone, so "no progress" coincides with "done"
// rather than with a genuinely stranded member.
func TestStallTriggerSilentOnHealthyRun(t *testing.T) {
	s := New("healthy", "no faults; the stall action must never fire").
		OnStall(10*time.Millisecond, FlashCrowd(3))
	cfg := stallParams(400)
	cfg.Executor = NewProtocolExecutor(protocols.PbcastParams{N: 400, Fanout: 4, Rounds: 25, AliveRatio: 1})
	rep, err := Run(s, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reliability != 1 {
		t.Fatalf("pbcast did not serve everyone (%.4f); the healthy premise is broken", rep.Reliability)
	}
	if rep.Published != 0 {
		t.Errorf("stall action fired on a healthy run (%d published)", rep.Published)
	}
}

// TestStallTriggerOnProtocolExecutor: the trigger watches the delivered
// count through the same NetRun seam on a baseline executor — a partition
// stalling a pbcast spread is healed mid-run and later rounds cross it.
func TestStallTriggerOnProtocolExecutor(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	pb := protocols.PbcastParams{N: 500, Fanout: 4, Rounds: 30, AliveRatio: 1}
	cfg := stallParams(500)
	cfg.Executor = NewProtocolExecutor(pb)

	stuck := New("stuck", "partition that never heals").
		At(ms(2), Partition(0.5, 1.0))
	rescued := New("rescued", "partition healed by the stall trigger").
		At(ms(2), Partition(0.5, 1.0)).
		OnStall(ms(50), Heal())

	repStuck, err := Run(stuck, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	repRescued, err := Run(rescued, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if repStuck.Protocol != "pbcast" || repRescued.Protocol != "pbcast" {
		t.Fatalf("executor rows labeled %q/%q, want pbcast", repStuck.Protocol, repRescued.Protocol)
	}
	if repStuck.Reliability > 0.7 {
		t.Fatalf("control pbcast run delivered %.3f; the partition did not stall it", repStuck.Reliability)
	}
	if repRescued.Reliability < 0.95 {
		t.Errorf("stall trigger did not rescue pbcast: reliability %.3f (stuck control: %.3f)",
			repRescued.Reliability, repStuck.Reliability)
	}
}

// TestStallTriggerIgnoresStartupLull: a window shorter than the latency of
// the spread's opening hop must not fire while that hop is still airborne.
// Under a constant 15ms latency nothing can deliver before 15ms, so a 6ms
// window sees a full quiet window at t=6 with 199 messages in flight —
// exactly the startup shape that fired spuriously before the in-flight
// guard. Flooding then serves every member in one hop, so no later phase
// of this run can legitimately fire either: published must stay 0. (A
// window shorter than a ROUND-driven protocol's tick interval is
// different — delivery really does pause between rounds, and firing there
// is the documented semantics.)
func TestStallTriggerIgnoresStartupLull(t *testing.T) {
	s := New("healthy", "short window; the startup lull must not fire").
		OnStall(6*time.Millisecond, FlashCrowd(3))
	cfg := stallParams(200)
	cfg.Net = simnet.Config{Latency: simnet.ConstantLatency{D: 15 * time.Millisecond}}
	cfg.Executor = NewProtocolExecutor(protocols.FloodingParams{N: 200, AliveRatio: 1})
	rep, err := Run(s, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Published != 0 {
		t.Errorf("stall action fired during the startup lull (%d published)", rep.Published)
	}
	if rep.Reliability != 1 {
		t.Errorf("flooding delivered %.4f, want 1", rep.Reliability)
	}
}

// TestStallSpecValidation: the spec language rejects malformed conditional
// steps.
func TestStallSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		s    *Scenario
		want string
	}{
		{"window without when", &Scenario{Name: "x", Steps: []Step{
			{Window: Duration(time.Millisecond), Action: Heal()}}}, "window without"},
		{"stall without window", &Scenario{Name: "x", Steps: []Step{
			{When: WhenStall, Action: Heal()}}}, "positive window"},
		{"stall with every", &Scenario{Name: "x", Steps: []Step{
			{When: WhenStall, Window: Duration(time.Millisecond), Every: Duration(time.Millisecond), Action: Heal()}}}, "cannot recur"},
		{"unknown condition", &Scenario{Name: "x", Steps: []Step{
			{When: "eclipse", Window: Duration(time.Millisecond), Action: Heal()}}}, "unknown condition"},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// TestStallSpecJSON: the conditional step survives the JSON round trip and
// a hand-written spec parses.
func TestStallSpecJSON(t *testing.T) {
	s := New("stall-heal", "heal when the spread stalls").
		At(2*time.Millisecond, Partition(0.5, 1.0)).
		OnStall(25*time.Millisecond, Heal())
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"when": "stall"`) || !strings.Contains(string(data), `"window": "25ms"`) {
		t.Fatalf("JSON missing conditional fields:\n%s", data)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Steps[1].When != WhenStall || back.Steps[1].Window != Duration(25*time.Millisecond) {
		t.Fatalf("round trip lost the conditional step: %+v", back.Steps[1])
	}
	handwritten := `{"name":"rescue","steps":[{"when":"stall","window":"10ms","action":{"op":"heal"}}]}`
	if _, err := Parse([]byte(handwritten)); err != nil {
		t.Fatalf("hand-written stall spec rejected: %v", err)
	}
}
