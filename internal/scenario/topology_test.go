package scenario

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/topology"
)

// topoRunConfig is the shared base config of the topology pinning suite:
// small enough that 25-seed matrices stay fast, big enough that overlay
// structure matters.
func topoRunConfig() RunConfig {
	return RunConfig{
		Params: core.Params{N: 250, Fanout: dist.NewPoisson(5), AliveRatio: 1},
	}
}

func topoScenario(t *testing.T) *Scenario {
	t.Helper()
	s, ok := ByName("crash-wave")
	if !ok {
		t.Fatal("bundled crash-wave scenario missing")
	}
	return s
}

func reportJSON(t *testing.T, rep RunReport) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestTopologyUniformByteIdentical: the zero (uniform) topology spec is
// byte-identical to a config that never mentions topology — same reports,
// same JSON, no corrected_prediction field — across a 25-seed matrix. This
// is the facade-wide no-regression guarantee: all pre-topology goldens
// hold because the uniform path is literally untouched.
func TestTopologyUniformByteIdentical(t *testing.T) {
	s := topoScenario(t)
	for seed := uint64(0); seed < 25; seed++ {
		base := topoRunConfig()
		rep, err := Run(s, base, seed)
		if err != nil {
			t.Fatal(err)
		}
		withSpec := topoRunConfig()
		withSpec.Topology = topology.Spec{} // explicit uniform
		rep2, err := Run(s, withSpec, seed)
		if err != nil {
			t.Fatal(err)
		}
		a, b := reportJSON(t, rep), reportJSON(t, rep2)
		if a != b {
			t.Fatalf("seed %d: uniform topology diverged from the no-topology path\n got: %s\nwant: %s", seed, b, a)
		}
		if strings.Contains(a, "corrected_prediction") {
			t.Fatalf("seed %d: uniform report leaks corrected_prediction: %s", seed, a)
		}
	}
}

// TestTopologyPinnedAcrossRepeats: a fixed (topology, seed) pair is
// byte-identical across repeated runs, for every overlay family, across a
// 25-seed matrix — the overlay is generated from a non-consuming split of
// the run stream, so nothing about run order or reuse can perturb it.
func TestTopologyPinnedAcrossRepeats(t *testing.T) {
	s := topoScenario(t)
	for _, spec := range []string{"kout:6", "ba:3", "wan:4"} {
		topo, err := topology.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(0); seed < 25; seed++ {
			cfg := topoRunConfig()
			cfg.Topology = topo
			first, err := Run(s, cfg, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", spec, seed, err)
			}
			again, err := Run(s, cfg, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", spec, seed, err)
			}
			if a, b := reportJSON(t, first), reportJSON(t, again); a != b {
				t.Fatalf("%s seed %d: repeat diverged\n got: %s\nwant: %s", spec, seed, b, a)
			}
			if first.CorrectedPrediction <= 0 || first.CorrectedPrediction > 1 {
				t.Fatalf("%s seed %d: corrected prediction %g outside (0,1]", spec, seed, first.CorrectedPrediction)
			}
		}
	}
}

// TestTopologyPinnedAcrossWorkers: the sweep aggregate over a 25-seed
// matrix is byte-identical for any worker count, for every overlay family.
func TestTopologyPinnedAcrossWorkers(t *testing.T) {
	s := topoScenario(t)
	for _, spec := range []string{"kout:6", "wan:4"} {
		topo, err := topology.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		run := topoRunConfig()
		run.Topology = topo
		var first string
		for _, workers := range []int{1, 4} {
			res, err := Sweep([]*Scenario{s}, SweepConfig{
				Run: run, Seeds: 25, BaseSeed: 2008, Workers: workers,
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", spec, workers, err)
			}
			b, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if first == "" {
				first = string(b)
			} else if string(b) != first {
				t.Fatalf("%s: workers=%d sweep diverged from workers=1", spec, workers)
			}
		}
	}
}

// TestTopologyPinnedAcrossShards pins the shard-count contract with an
// overlay in play, mirroring TestShardedScenarioMatrix's: shard counts
// use different per-shard RNG streams, so measured fields differ run by
// run, but (a) a fixed (topology, seed, shards) run is byte-identical on
// repeat, (b) the overlay itself is shard-count-invariant — the corrected
// and static predictions, which replay the overlay from the same
// non-consuming root split, must agree exactly across shard counts — and
// (c) 25-seed mean reliability agrees across shard counts within the
// statistical tolerance the uniform sharded matrix already pins.
func TestTopologyPinnedAcrossShards(t *testing.T) {
	s := topoScenario(t)
	for _, spec := range []string{"kout:6", "wan:4"} {
		topo, err := topology.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		var sum [2]float64
		for seed := uint64(0); seed < 25; seed++ {
			var reps [2]RunReport
			for i, shards := range []int{1, 2} {
				cfg := topoRunConfig()
				cfg.Topology = topo
				cfg.Shards = shards
				rep, err := Run(s, cfg, seed)
				if err != nil {
					t.Fatalf("%s seed %d shards=%d: %v", spec, seed, shards, err)
				}
				again, err := Run(s, cfg, seed)
				if err != nil {
					t.Fatal(err)
				}
				if a, b := reportJSON(t, rep), reportJSON(t, again); a != b {
					t.Fatalf("%s seed %d shards=%d: repeat diverged", spec, seed, shards)
				}
				reps[i] = rep
				sum[i] += rep.Reliability
			}
			if reps[0].StaticPrediction != reps[1].StaticPrediction {
				t.Fatalf("%s seed %d: static prediction differs across shard counts: %g vs %g",
					spec, seed, reps[0].StaticPrediction, reps[1].StaticPrediction)
			}
			// The corrected prediction replays the overlay and the
			// component probe from root splits taken before any kernel
			// runs, so only q_eff — which shard streams can move a little —
			// feeds in. The two q_eff values come from the same campaign on
			// the same overlay, so the corrections must be close, and both
			// must be real probabilities.
			for i := range reps {
				if reps[i].CorrectedPrediction <= 0 || reps[i].CorrectedPrediction > 1 {
					t.Fatalf("%s seed %d shards=%d: corrected prediction %g outside (0,1]",
						spec, seed, []int{1, 2}[i], reps[i].CorrectedPrediction)
				}
			}
			if diff := math.Abs(reps[0].CorrectedPrediction - reps[1].CorrectedPrediction); diff > 0.05 {
				t.Fatalf("%s seed %d: corrected prediction gap %.4f across shard counts", spec, seed, diff)
			}
		}
		if diff := math.Abs(sum[0]-sum[1]) / 25; diff > 0.05 {
			t.Fatalf("%s: mean reliability gap %.4f between shards=1 and shards=2", spec, diff)
		}
	}
}

// TestTopologyKOutConvergesToUniform: at k = n−1 the k-out overlay is the
// complete digraph, so its measured reliability over a 25-seed matrix must
// match the uniform full-view baseline within statistical tolerance (the
// RNG streams differ — only the distribution is pinned).
func TestTopologyKOutConvergesToUniform(t *testing.T) {
	s := topoScenario(t)
	run := topoRunConfig()
	n := run.Params.N

	// The per-seed reliability under the crash wave is noisy (stddev ~0.1),
	// so the convergence comparison runs a wider 100-seed matrix: the
	// standard error of each mean is ~0.01, making 0.04 a ~3σ gate.
	mean := func(topo topology.Spec) float64 {
		cfg := run
		cfg.Topology = topo
		res, err := Sweep([]*Scenario{s}, SweepConfig{Run: cfg, Seeds: 100, BaseSeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res.Scenarios[0].Reliability.Mean
	}
	uniform := mean(topology.Spec{})
	full := mean(topology.Spec{Kind: topology.KOut, K: n - 1})
	if diff := math.Abs(full - uniform); diff > 0.04 {
		t.Fatalf("k-out at k=n-1 reliability %.4f vs uniform %.4f (|diff| %.4f > 0.04)", full, uniform, diff)
	}
	// Sanity on the other end: a sparse overlay under the crash wave must
	// not beat the full view (it can only lose arcs).
	sparse := mean(topology.Spec{Kind: topology.KOut, K: 3})
	if sparse > uniform+0.04 {
		t.Fatalf("k-out at k=3 reliability %.4f implausibly above uniform %.4f", sparse, uniform)
	}
}
