package scenario

import (
	"testing"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/obs"
	"gossipkit/internal/simnet"
	"gossipkit/internal/topology"
)

// TestDropAttributionReconciles: under a partition-heal campaign with a
// mid-spread crash wave, every drop the tracer attributes — partition vs
// crash-at-delivery vs down-sender discard — reconciles exactly with the
// network's Stats counters, and the probed Totals snapshot agrees with
// both. This is the attribution seam the telemetry exporters rely on:
// a drop misfiled between DroppedCrash and DroppedPart (or a send-time
// DroppedDown leaking into Sent) would silently skew every campaign's
// loss breakdown.
func TestDropAttributionReconciles(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	s := New("partition-heal-crash",
		"half the group partitioned away mid-spread with a crash wave inside the partition window, healed and re-gossiped").
		At(ms(3), Partition(0.50, 1.0)).
		At(ms(8), CrashFraction(0.20)).
		At(ms(60), Heal()).
		At(ms(65), Regossip(8))

	counts := map[simnet.EventKind]int64{}
	probe := obs.New(obs.Options{})
	cfg := RunConfig{
		Params:            core.Params{N: 400, Fanout: dist.NewPoisson(5), AliveRatio: 1},
		PartialViewCopies: 2,
		Net:               simnet.Config{Tracer: func(e simnet.Event) { counts[e.Kind]++ }},
		Probe:             probe,
	}
	rep, err := Run(s, cfg, 2008)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil {
		t.Fatal("probed run has no metrics")
	}
	st := rep.Metrics.Totals

	// The campaign must actually exercise all three attribution paths.
	if st.DroppedPart == 0 {
		t.Error("no partition drops — the partition window missed the spread")
	}
	if st.DroppedCrash == 0 {
		t.Error("no crash drops — the crash wave missed in-flight messages")
	}

	// Tracer attribution == Stats counters, kind for kind. The probe
	// chains the test's tracer (both observe every event), so its Totals
	// snapshot is the same Stats the network reports at quiescence.
	want := map[simnet.EventKind]int64{
		simnet.EventSent:             st.Sent,
		simnet.EventDelivered:        st.Delivered,
		simnet.EventDroppedLoss:      st.DroppedLoss,
		simnet.EventDroppedCrash:     st.DroppedCrash,
		simnet.EventDroppedPartition: st.DroppedPart,
		simnet.EventDroppedDown:      st.DroppedDown,
	}
	for kind, w := range want {
		if counts[kind] != w {
			t.Errorf("%s: tracer saw %d, stats say %d", kind, counts[kind], w)
		}
	}

	// Every accepted message has exactly one outcome: the run is drained
	// (the runner's stall trigger waits on Network.Drained), so in-flight
	// is zero and the outcomes partition Sent.
	if got := st.Sent - st.Delivered - st.DroppedLoss - st.DroppedCrash - st.DroppedPart; got != 0 {
		t.Errorf("in-flight at quiescence = %d, want 0", got)
	}
	// Down-sender discards were never accepted, so they appear in no
	// other counter and cannot drive InFlight negative.
	if st.DroppedDown < 0 || st.InFlight() != 0 {
		t.Errorf("stats inconsistent at quiescence: %+v", st)
	}
}

// TestDropAttributionReconcilesOnWANTopology runs the same reconciliation
// on a clustered WAN overlay under a zone-failure campaign: an entire zone
// crashes mid-spread (so inter-zone bridge traffic dies in flight on the
// high-latency arcs ZoneLatency stretches out), part of it restarts, and a
// flash crowd republishes into the damage. Tracer counts, Stats, and the
// probe's Totals must agree kind for kind, and Sent − Delivered − drops
// must be zero at quiescence — drop attribution owes nothing to the
// uniform full-view assumption.
func TestDropAttributionReconcilesOnWANTopology(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	s := New("zone-failure",
		"one WAN zone fail-stops mid-spread, partially restarts, and a flash crowd republishes").
		At(ms(4), CrashZone(0.25, 0.50)).
		At(ms(30), RestartFraction(0.5)).
		At(ms(35), FlashCrowd(5))

	counts := map[simnet.EventKind]int64{}
	probe := obs.New(obs.Options{})
	topo, err := topology.Parse("wan:4:5")
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Params:   core.Params{N: 400, Fanout: dist.NewPoisson(5), AliveRatio: 1},
		Topology: topo,
		Net:      simnet.Config{Tracer: func(e simnet.Event) { counts[e.Kind]++ }},
		Probe:    probe,
	}
	rep, err := Run(s, cfg, 2008)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil {
		t.Fatal("probed run has no metrics")
	}
	st := rep.Metrics.Totals

	// The zone crash must catch bridge traffic in flight: WAN inter-zone
	// latency is tens of milliseconds, so messages into the dying zone
	// attribute as crash drops.
	if st.DroppedCrash == 0 {
		t.Error("no crash drops — the zone failure missed all in-flight traffic")
	}
	if st.Sent == 0 || st.Delivered == 0 {
		t.Fatalf("degenerate run: %+v", st)
	}

	want := map[simnet.EventKind]int64{
		simnet.EventSent:             st.Sent,
		simnet.EventDelivered:        st.Delivered,
		simnet.EventDroppedLoss:      st.DroppedLoss,
		simnet.EventDroppedCrash:     st.DroppedCrash,
		simnet.EventDroppedPartition: st.DroppedPart,
		simnet.EventDroppedDown:      st.DroppedDown,
	}
	for kind, w := range want {
		if counts[kind] != w {
			t.Errorf("%s: tracer saw %d, stats say %d", kind, counts[kind], w)
		}
	}
	if got := st.Sent - st.Delivered - st.DroppedLoss - st.DroppedCrash - st.DroppedPart; got != 0 {
		t.Errorf("in-flight at quiescence = %d, want 0", got)
	}
	if st.DroppedDown < 0 || st.InFlight() != 0 {
		t.Errorf("stats inconsistent at quiescence: %+v", st)
	}
}
