package scenario

import (
	"strings"
	"testing"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
)

// TestCSVFieldEscaping: csvField implements RFC 4180 quoting and passes
// clean names through untouched (the bundled-suite goldens depend on the
// pass-through).
func TestCSVFieldEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{"crash-wave", "crash-wave"},
		{"poisson(5)", "poisson(5)"},
		{"crash, then heal", `"crash, then heal"`},
		{`the "big" one`, `"the ""big"" one"`},
		{"line\nbreak", "\"line\nbreak\""},
	}
	for _, tc := range cases {
		if got := csvField(tc.in); got != tc.want {
			t.Errorf("csvField(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestCSVEscapesScenarioNames: a scenario name containing commas and
// quotes survives every CSV renderer (sweep, grid, compare) as one quoted
// field instead of splitting the row.
func TestCSVEscapesScenarioNames(t *testing.T) {
	s := New(`crash, "wave"`, "name designed to break naive CSV").
		At(0, CrashFraction(0.1))
	run := RunConfig{Params: core.Params{N: 100, Fanout: dist.NewPoisson(5), AliveRatio: 1}}
	const want = `"crash, ""wave"""`

	sweep, err := Sweep([]*Scenario{s}, SweepConfig{Run: run, Seeds: 1, BaseSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sweep.CSV(), want+",") {
		t.Errorf("sweep CSV did not escape the name:\n%s", sweep.CSV())
	}

	grid, err := SweepGrid([]*Scenario{s}, GridConfig{Run: run, Qs: []float64{1}, Seeds: 1, BaseSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(grid.CSV(), want+",") {
		t.Errorf("grid CSV did not escape the name:\n%s", grid.CSV())
	}

	cmp, err := Compare([]*Scenario{s}, CompareConfig{
		Run: run, Executors: []Executor{PaperExecutor("paper")}, Seeds: 1, BaseSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cmp.CSV(), "paper,"+want+",") {
		t.Errorf("compare CSV did not escape the name:\n%s", cmp.CSV())
	}
}
