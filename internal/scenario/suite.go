package scenario

import "time"

// DefaultSuite returns the bundled fault campaigns, in canonical order.
// Every scenario is group-size independent (ranges and fractions scale with
// n) and assumes the runner's default 1–20ms latency, which places the bulk
// of a Poisson(5) spread in the first ~60ms of simulated time — the
// campaigns below strike while the spread is in flight.
func DefaultSuite() []*Scenario {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	return []*Scenario{
		New("baseline",
			"no injected faults: the paper's static setting, for reference"),

		New("crash-wave",
			"three successive 10% crash waves while the spread is in flight").
			At(ms(5), CrashFraction(0.10)).
			At(ms(12), CrashFraction(0.10)).
			At(ms(19), CrashFraction(0.10)),

		New("zone-failure",
			"correlated failure of a contiguous 25% zone (rack/AZ loss)").
			At(ms(8), CrashZone(0.50, 0.75)),

		New("partition-heal",
			"half the group is partitioned away mid-spread, heals later, then a re-gossip wave repairs delivery").
			At(ms(3), Partition(0.50, 1.0)).
			At(ms(60), Heal()).
			At(ms(65), Regossip(8)),

		New("rolling-partition",
			"a quarter-group partition rolls across the id space before healing").
			At(ms(3), Partition(0.00, 0.25)).
			At(ms(12), Partition(0.25, 0.50)).
			At(ms(21), Partition(0.50, 0.75)).
			At(ms(30), Heal()).
			At(ms(35), Regossip(8)),

		New("churn-burst",
			"two 7% membership churn bursts: leavers unsubscribe (donating arcs under SCAMP views) and fail-stop").
			At(ms(6), ChurnFraction(0.07)).
			At(ms(14), ChurnFraction(0.07)),

		New("burst-loss",
			"a Gilbert-Elliott bad episode (80% loss in Bad state) covers the first 25ms of the spread").
			At(0, BurstLoss(0.05, 0.30, 0.01, 0.80)).
			At(ms(25), ClearLoss()),

		New("flash-crowd",
			"five additional publishers seed the same message under 10% ambient loss").
			At(0, Loss(0.10)).
			At(ms(2), FlashCrowd(5)),

		New("crash-restart",
			"a 30% crash wave followed by a partial recovery: half the failed members restart and a re-gossip wave reaches them").
			At(ms(6), CrashFraction(0.30)).
			At(ms(40), RestartFraction(0.50)).
			At(ms(45), Regossip(10)),

		// Appended after the original nine so their sweep cell seeds (a
		// function of the scenario index) — and therefore the bundled-suite
		// sweep JSON prefix — stay byte-stable across releases.
		New("regossip-heartbeat",
			"recurring anti-entropy heartbeat: under 20% ambient loss and a mid-spread crash wave, 3 random holders re-gossip every 15ms through 90ms").
			At(0, Loss(0.20)).
			At(ms(6), CrashFraction(0.15)).
			EveryUntil(ms(15), ms(15), ms(90), Regossip(3)),
	}
}

// ByName returns the bundled scenario with the given name.
func ByName(name string) (*Scenario, bool) {
	for _, s := range DefaultSuite() {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}
