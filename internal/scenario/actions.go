package scenario

import (
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/membership"
	"gossipkit/internal/simnet"
	"gossipkit/internal/topology"
	"gossipkit/internal/xrand"
)

// ---------------------------------------------------------------------------
// Action constructors (the builder vocabulary)

// CrashFraction fail-stops frac of the currently-up members.
func CrashFraction(frac float64) Action { return Action{Op: OpCrash, Frac: frac} }

// CrashZone fail-stops the contiguous id range [loFrac·n, hiFrac·n).
func CrashZone(loFrac, hiFrac float64) Action {
	return Action{Op: OpCrashZone, LoFrac: loFrac, HiFrac: hiFrac}
}

// RestartFraction restarts frac of the currently-down members.
func RestartFraction(frac float64) Action { return Action{Op: OpRestart, Frac: frac} }

// Partition isolates the id range [loFrac·n, hiFrac·n) from the rest.
func Partition(loFrac, hiFrac float64) Action {
	return Action{Op: OpPartition, LoFrac: loFrac, HiFrac: hiFrac}
}

// Heal clears any partition.
func Heal() Action { return Action{Op: OpHeal} }

// Loss installs Bernoulli message loss with probability p.
func Loss(p float64) Action { return Action{Op: OpLoss, P: p} }

// BurstLoss installs Gilbert–Elliott bursty loss.
func BurstLoss(pG2B, pB2G, pGood, pBad float64) Action {
	return Action{Op: OpBurstLoss, PG2B: pG2B, PB2G: pB2G, PGood: pGood, PBad: pBad}
}

// ClearLoss removes any loss model.
func ClearLoss() Action { return Action{Op: OpClearLoss} }

// Latency installs a constant per-message latency.
func Latency(d time.Duration) Action { return Action{Op: OpLatency, Latency: Duration(d)} }

// ChurnFraction makes frac of the currently-up members leave (SCAMP
// unsubscription when the view is partial) and fail-stop.
func ChurnFraction(frac float64) Action { return Action{Op: OpChurn, Frac: frac} }

// FlashCrowd seeds the message at count additional up members.
func FlashCrowd(count int) Action { return Action{Op: OpPublish, Count: count} }

// Regossip makes count random infected up members forward m again.
func Regossip(count int) Action { return Action{Op: OpRegossip, Count: count} }

// ---------------------------------------------------------------------------
// Application

// env is the runtime context an action fires against.
type env struct {
	run    *core.NetRun
	rng    *xrand.RNG
	n      int
	source int

	// campaign counters reported by the runner
	crashed     int
	restarted   int
	departed    int
	arcsDonated int
	published   int
}

// apply executes the action against the running execution. The action must
// already be validated.
func (a Action) apply(e *env) {
	switch a.Op {
	case OpCrash:
		for _, id := range e.pickUp(a.Frac, 0) {
			e.retire(id)
			e.run.Net.Crash(simnet.NodeID(id))
			e.crashed++
		}
	case OpCrashZone:
		lo, hi := a.zone(e.n)
		for id := lo; id < hi; id++ {
			if id == e.source || !e.run.Net.Up(simnet.NodeID(id)) {
				continue
			}
			e.retire(id)
			e.run.Net.Crash(simnet.NodeID(id))
			e.crashed++
		}
	case OpRestart:
		// Only scenario-crashed members can come back; members failed by
		// the execution's static mask are fail-stop gone and have no
		// handler to process messages with.
		var down []int
		for id := 0; id < e.n; id++ {
			if !e.run.Net.Up(simnet.NodeID(id)) && e.run.Restartable(id) {
				down = append(down, id)
			}
		}
		for _, i := range e.pickFrom(len(down), countFor(a.Frac, len(down))) {
			if ov, ok := e.run.View.(*topology.Overlay); ok {
				ov.Restore(down[i])
			}
			e.run.Net.Restart(simnet.NodeID(down[i]))
			e.restarted++
		}
	case OpPartition:
		lo, hi := a.zone(e.n)
		e.run.Net.SetPartition(simnet.SplitPartition(func(id simnet.NodeID) bool {
			return int(id) >= lo && int(id) < hi
		}))
	case OpHeal:
		e.run.Net.SetPartition(nil)
	case OpLoss:
		e.run.Net.SetLoss(simnet.BernoulliLoss{P: a.P})
	case OpBurstLoss:
		e.run.Net.SetLoss(simnet.NewGilbertElliott(a.PG2B, a.PB2G, a.PGood, a.PBad))
	case OpClearLoss:
		e.run.Net.SetLoss(nil)
	case OpLatency:
		e.run.Net.SetLatency(simnet.ConstantLatency{D: a.Latency.Std()})
	case OpChurn:
		pv, _ := e.run.View.(*membership.PartialViews)
		for _, id := range e.pickUp(a.Frac, 0) {
			if pv != nil {
				e.arcsDonated += pv.Unsubscribe(id, e.rng)
			}
			e.retire(id)
			e.run.Net.Crash(simnet.NodeID(id))
			e.departed++
		}
	case OpPublish:
		for _, id := range e.pickUp(0, a.Count) {
			e.run.Publish(id)
			e.published++
		}
	case OpRegossip:
		var infected []int
		for id := 0; id < e.n; id++ {
			if e.run.HasReceived(id) && e.run.Net.Up(simnet.NodeID(id)) {
				infected = append(infected, id)
			}
		}
		for _, i := range e.pickFrom(len(infected), min(a.Count, len(infected))) {
			e.run.Publish(infected[i])
		}
	}
}

// retire drops id from the gossip overlay's neighbor sets when the run
// gossips over one (crashed and churned members vanish from neighbor
// sets; OpRestart's Restore is the inverse). Actions run on the control
// kernel at window barriers, where overlay mutation is safe.
func (e *env) retire(id int) {
	if ov, ok := e.run.View.(*topology.Overlay); ok {
		ov.Remove(id)
	}
}

// zone converts the fractional range to concrete id bounds.
func (a Action) zone(n int) (lo, hi int) {
	lo = int(a.LoFrac * float64(n))
	hi = int(a.HiFrac * float64(n))
	if hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	return lo, hi
}

// countFor converts a fraction of a population to a count (rounding to
// nearest, at least 1 for a positive fraction of a non-empty population).
func countFor(frac float64, population int) int {
	if population == 0 || frac <= 0 {
		return 0
	}
	c := int(frac*float64(population) + 0.5)
	if c < 1 {
		c = 1
	}
	if c > population {
		c = population
	}
	return c
}

// pickUp selects members uniformly at random among the currently-up
// members excluding the source: count members when count > 0, otherwise
// frac of them.
func (e *env) pickUp(frac float64, count int) []int {
	var up []int
	for id := 0; id < e.n; id++ {
		if id != e.source && e.run.Net.Up(simnet.NodeID(id)) {
			up = append(up, id)
		}
	}
	if count == 0 {
		count = countFor(frac, len(up))
	}
	if count > len(up) {
		count = len(up)
	}
	picked := make([]int, 0, count)
	for _, i := range e.pickFrom(len(up), count) {
		picked = append(picked, up[i])
	}
	return picked
}

// pickFrom samples k distinct indices from [0, n).
func (e *env) pickFrom(n, k int) []int {
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	return e.rng.SampleInts(make([]int, 0, k), n, k)
}
