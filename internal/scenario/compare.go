package scenario

import (
	"context"
	"fmt"
	"strings"

	"gossipkit/internal/core"
	"gossipkit/internal/protocols"
	"gossipkit/internal/runpool"
	"gossipkit/internal/stats"
	"gossipkit/internal/topology"
	"gossipkit/internal/xrand"
)

// This file is the (protocol × scenario) comparison grid: every campaign
// in a suite run against every protocol executor — the paper's own
// algorithm next to the six related-work baselines, all on the same
// kernel+simnet substrate, so "how does pbcast weather the crash wave that
// the paper's algorithm shrugs off?" is one sweep instead of two
// simulators.

// NewProtocolExecutor wraps a baseline protocol spec (protocols.PbcastParams,
// LpbcastParams, AntiEntropyParams, RDGParams, LRGParams, FloodingParams)
// as a scenario Executor on the shared DES runtime: the campaign's crashes,
// partitions, loss episodes, and publishes inject through the same NetRun
// seam as paper runs. The executor ignores RunConfig.Params — the protocol
// spec carries its own group size and parameters — and has no analytic
// model (Predict always reports ok=false).
func NewProtocolExecutor(spec protocols.Spec) Executor {
	return protocolExecutor{spec: spec}
}

// PaperExecutor returns the paper's-algorithm executor with an explicit
// protocol label for comparison rows (the default, unlabeled executor
// keeps single-protocol sweep output byte-stable by labeling rows "").
func PaperExecutor(label string) Executor { return paperExecutor{label: label} }

type protocolExecutor struct {
	spec protocols.Spec
}

func (e protocolExecutor) Protocol() string { return e.spec.Protocol() }

func (e protocolExecutor) Shape(RunConfig) (int, int) { return protocols.Shape(e.spec) }

func (e protocolExecutor) Execute(cfg RunConfig, r *xrand.RNG, inject func(*core.NetRun), arena *core.NetArena) (core.NetResult, error) {
	des := protocols.DESConfig{Net: cfg.Net, RoundInterval: cfg.RoundInterval, Probe: cfg.Probe,
		Topology: cfg.Topology}
	out, err := protocols.RunOnDES(e.spec, des, r, inject, arena)
	return out.NetResult, err
}

func (protocolExecutor) Predict(RunConfig, float64) (float64, bool) { return 0, false }

// CompareConfig parameterizes a (protocol × scenario) comparison grid.
type CompareConfig struct {
	// Run configures each execution. Run.Executor is ignored — the grid
	// supplies each row's executor from Executors.
	Run RunConfig
	// Executors are the protocol rows of the grid, each typically built
	// with NewProtocolExecutor or PaperExecutor. Executors must be
	// stateless values: workers share them across cells.
	Executors []Executor
	// Seeds is the number of seeded replications per cell (>= 1).
	Seeds int
	// BaseSeed derives each cell's seed; the grid is a pure function of
	// it. A cell's seed depends only on (scenario, replication) — NOT on
	// the protocol row — so every protocol faces byte-identical campaign
	// randomness (the same crash victims at the same instants), and the
	// paper row reproduces the single-protocol Sweep cells exactly.
	BaseSeed uint64
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS. The result
	// is identical for any worker count.
	Workers int
	// Topologies, when non-empty, adds a topology axis: every
	// (protocol, scenario) pair runs once per overlay spec, labeled in
	// CompareCell.Topology and as a `topology` CSV column (plus the
	// giant-component-corrected prediction column). Empty keeps the
	// two-axis grid and its CSV byte-identical. Like the protocol row,
	// the topology row does NOT perturb cell seeds, so every
	// (protocol, topology) pair faces byte-identical campaign
	// randomness.
	Topologies []topology.Spec
}

// cellSeed derives the seed for scenario si, replication ri — delegating
// to SweepConfig's derivation so the paper row's seed parity with
// single-protocol sweeps holds by construction, and independent of the
// protocol row (see CompareConfig.BaseSeed).
func (c CompareConfig) cellSeed(si, ri int) uint64 {
	return SweepConfig{BaseSeed: c.BaseSeed}.cellSeed(si, ri)
}

// CompareCell is the aggregate of one (protocol, scenario) grid point —
// or, with a topology axis, one (topology, protocol, scenario) point.
type CompareCell struct {
	Protocol string `json:"protocol"`
	// Topology labels the overlay row on three-axis grids; empty on
	// two-axis grids, keeping their JSON byte-identical.
	Topology string `json:"topology,omitempty"`
	Summary
}

// CompareResult is the aggregated outcome of a comparison grid, in
// (topology, protocol, scenario) order (the topology axis is outermost
// and absent on two-axis grids).
type CompareResult struct {
	Seeds     int      `json:"seeds"`
	BaseSeed  uint64   `json:"base_seed"`
	Protocols []string `json:"protocols"`
	Scenarios []string `json:"scenarios"`
	// Topologies labels the overlay axis; empty for two-axis grids.
	Topologies []string      `json:"topologies,omitempty"`
	Cells      []CompareCell `json:"cells"`
}

// Compare runs every scenario against every executor for cfg.Seeds seeded
// replications on a worker pool; see CompareCtx.
func Compare(scenarios []*Scenario, cfg CompareConfig) (*CompareResult, error) {
	return CompareCtx(context.Background(), scenarios, cfg, nil)
}

// CompareCtx runs every scenario against every executor for cfg.Seeds
// seeded replications on a worker pool, each worker recycling one run-state
// arena across heterogeneous protocol runs (core.NetArena leases are
// result-neutral). Like the sweeps, the result is deterministic in
// (scenarios, cfg) for any cfg.Workers: cells are data-independent and
// reduced in grid order after the pool drains. Context cancellation aborts
// promptly with ctx.Err(); observe, when non-nil, streams per-cell reports
// in deterministic cell order (cell = ((ti·|executors|+pi)·|scenarios|+si)·
// Seeds+ri, with ti always 0 on two-axis grids).
func CompareCtx(ctx context.Context, scenarios []*Scenario, cfg CompareConfig, observe Observer) (*CompareResult, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("scenario: comparison grid has no scenarios")
	}
	if len(cfg.Executors) == 0 {
		return nil, fmt.Errorf("scenario: comparison grid has no executors")
	}
	if err := checkSweepShared(cfg.Run); err != nil {
		return nil, err
	}
	// A nil Topologies axis is one implicit row carrying the run config's
	// own topology (usually uniform), so the two-axis grid is the
	// three-axis grid with a single unlabeled topology row.
	topos := cfg.Topologies
	labeled := len(topos) > 0
	if !labeled {
		topos = []topology.Spec{cfg.Run.Topology}
	}
	if cfg.Seeds < 1 {
		cfg.Seeds = 1
	}
	rows := len(cfg.Executors)
	cells := len(topos) * rows * len(scenarios) * cfg.Seeds
	workers := runpool.Count(cfg.Workers, cells)

	// Flattened cell index: ((ti*rows+pi)*len(scenarios)+si)*Seeds+ri.
	reports := make([]RunReport, cells)
	lats := make([]stats.Running, cells)
	arenas := make([]*core.NetArena, workers)
	var obs func(i int)
	if observe != nil {
		obs = func(i int) { observe(i, reports[i]) }
	}
	err := runpool.Run(ctx, cells, workers, func(w, cell int) error {
		if arenas[w] == nil {
			arenas[w] = core.NewNetArena()
		}
		ri := cell % cfg.Seeds
		si := cell / cfg.Seeds % len(scenarios)
		pi := cell / cfg.Seeds / len(scenarios) % rows
		ti := cell / cfg.Seeds / len(scenarios) / rows
		run := cfg.Run
		run.Executor = cfg.Executors[pi]
		run.Topology = topos[ti]
		rep, lat, err := runWithLatency(scenarios[si], run, cfg.cellSeed(si, ri), arenas[w])
		if err != nil {
			return err
		}
		reports[cell], lats[cell] = rep, lat
		return nil
	}, obs)
	if err != nil {
		return nil, err
	}

	out := &CompareResult{Seeds: cfg.Seeds, BaseSeed: cfg.BaseSeed}
	for _, ex := range cfg.Executors {
		out.Protocols = append(out.Protocols, ex.Protocol())
	}
	for _, s := range scenarios {
		out.Scenarios = append(out.Scenarios, s.Name)
	}
	if labeled {
		for _, t := range topos {
			out.Topologies = append(out.Topologies, t.String())
		}
	}
	for ti, t := range topos {
		for pi, ex := range cfg.Executors {
			for si, s := range scenarios {
				lo := ((ti*rows+pi)*len(scenarios) + si) * cfg.Seeds
				cell := CompareCell{
					Protocol: ex.Protocol(),
					Summary:  summarize(s, reports[lo:lo+cfg.Seeds], lats[lo:lo+cfg.Seeds]),
				}
				if labeled {
					cell.Topology = t.String()
				}
				out.Cells = append(out.Cells, cell)
			}
		}
	}
	return out, nil
}

// CSV renders the full comparison grid, one row per (protocol, scenario)
// cell, fields CSV-escaped. Two-axis grids keep the historical header
// byte-identical; grids with a topology axis gain a `topology` column
// and the giant-component-corrected prediction column.
func (r *CompareResult) CSV() string {
	var b strings.Builder
	if len(r.Topologies) == 0 {
		b.WriteString("protocol,scenario,runs,reliability,reliability_stddev,survivor_reliability,spread_ms,mean_messages,mean_up_at_end,static_prediction,effective_prediction\n")
		for _, c := range r.Cells {
			fmt.Fprintf(&b, "%s,%s,%d,%.6f,%.6f,%.6f,%.3f,%.1f,%.1f,%.6f,%.6f\n",
				csvField(c.Protocol), csvField(c.Scenario), c.Runs,
				c.Reliability.Mean, c.Reliability.StdDev, c.SurvivorReliability.Mean,
				c.SpreadMs.Mean, c.MeanMessages, c.MeanUpAtEnd,
				c.StaticPrediction, c.EffectivePrediction)
		}
		return b.String()
	}
	b.WriteString("protocol,scenario,topology,runs,reliability,reliability_stddev,survivor_reliability,spread_ms,mean_messages,mean_up_at_end,static_prediction,effective_prediction,corrected_prediction\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%s,%s,%s,%d,%.6f,%.6f,%.6f,%.3f,%.1f,%.1f,%.6f,%.6f,%.6f\n",
			csvField(c.Protocol), csvField(c.Scenario), csvField(c.Topology), c.Runs,
			c.Reliability.Mean, c.Reliability.StdDev, c.SurvivorReliability.Mean,
			c.SpreadMs.Mean, c.MeanMessages, c.MeanUpAtEnd,
			c.StaticPrediction, c.EffectivePrediction, c.CorrectedPrediction)
	}
	return b.String()
}

// Table renders the grid as an aligned ASCII matrix: one line per
// protocol × scenario (× topology when that axis is present), grouped by
// scenario, survivor reliability and spread side by side.
func (r *CompareResult) Table() string {
	var b strings.Builder
	if len(r.Topologies) == 0 {
		fmt.Fprintf(&b, "comparison: %d protocols x %d scenarios, %d seeds\n",
			len(r.Protocols), len(r.Scenarios), r.Seeds)
		fmt.Fprintf(&b, "%-18s %-18s %10s %10s %9s %12s\n",
			"scenario", "protocol", "rel", "survivors", "spread", "messages")
		for si, sc := range r.Scenarios {
			for pi, pr := range r.Protocols {
				c := r.Cells[pi*len(r.Scenarios)+si]
				fmt.Fprintf(&b, "%-18s %-18s %10.4f %10.4f %7.1fms %12.1f\n",
					sc, pr, c.Reliability.Mean, c.SurvivorReliability.Mean,
					c.SpreadMs.Mean, c.MeanMessages)
			}
		}
		return b.String()
	}
	fmt.Fprintf(&b, "comparison: %d protocols x %d scenarios x %d topologies, %d seeds\n",
		len(r.Protocols), len(r.Scenarios), len(r.Topologies), r.Seeds)
	fmt.Fprintf(&b, "%-18s %-18s %-12s %10s %10s %9s %12s %10s\n",
		"scenario", "protocol", "topology", "rel", "survivors", "spread", "messages", "corrected")
	np, ns := len(r.Protocols), len(r.Scenarios)
	for si, sc := range r.Scenarios {
		for ti, tp := range r.Topologies {
			for pi, pr := range r.Protocols {
				c := r.Cells[(ti*np+pi)*ns+si]
				fmt.Fprintf(&b, "%-18s %-18s %-12s %10.4f %10.4f %7.1fms %12.1f %10.4f\n",
					sc, pr, tp, c.Reliability.Mean, c.SurvivorReliability.Mean,
					c.SpreadMs.Mean, c.MeanMessages, c.CorrectedPrediction)
			}
		}
	}
	return b.String()
}

// csvField escapes one CSV cell per RFC 4180: a field containing commas,
// quotes, or newlines is quoted, with embedded quotes doubled. Fields
// without such characters pass through unchanged, which keeps the bundled
// suite's golden CSVs byte-stable.
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
