package scenario

import (
	"strings"
	"testing"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/obs"
)

// TestCrashWaveCurvesGolden pins the probed π(t)/in-flight curve CSV of
// the bundled crash-wave campaign bit for bit — the `gossipscenario run
// -curves csv` output path. Like the sweep-summary goldens, the curves
// are a pure function of (scenario, config, seeds) and must stay
// byte-stable for any worker count; the probe itself must not move the
// underlying results (pinned separately by the facade's probe tests). If
// an intentional substrate change moves these numbers, regenerate the
// constant and say so in the commit.
func TestCrashWaveCurvesGolden(t *testing.T) {
	const golden = `label,t_ms,runs,infected_mean,infected_stddev,inflight_mean,sent_mean,delivered_mean,dropped_loss_mean,dropped_crash_mean,dropped_down_mean,dropped_part_mean
crash-wave,0,2,1,0,0,0,0,0,0,0,0
crash-wave,20,2,33,39.59797974644666,127.5,169,35.5,0,6,0,0
crash-wave,40,2,123.5,91.21677477306463,217.5,618.5,293.5,0,107.5,0,0
crash-wave,60,2,176,38.18376618407357,123,869,545,0,201,0,0
crash-wave,80,2,201.5,4.949747468305833,58,1000.5,693.5,0,249,0,0
crash-wave,100,2,204.5,0.7071067811865476,5,1014,742,0,267,0,0
crash-wave,120,2,204.5,0.7071067811865476,0,1014,746,0,268,0,0
`

	s, ok := ByName("crash-wave")
	if !ok {
		t.Fatal("crash-wave missing from the bundled suite")
	}
	cfg := SweepConfig{
		Run: RunConfig{
			Params:            core.Params{N: 300, Fanout: dist.NewPoisson(5), AliveRatio: 1},
			PartialViewCopies: 2,
		},
		Seeds: 2, BaseSeed: 2008,
		Probe: &obs.Options{CurveTick: 20 * time.Millisecond},
	}
	for _, workers := range []int{1, 3} {
		c := cfg
		c.Workers = workers
		res, err := Sweep([]*Scenario{s}, c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.CurvesCSV()
		if err != nil {
			t.Fatal(err)
		}
		if got != golden {
			t.Errorf("workers=%d: crash-wave curves moved:\ngot:\n%s\nwant:\n%s",
				workers, strings.TrimSpace(got), strings.TrimSpace(golden))
		}
	}
}
