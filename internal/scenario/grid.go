package scenario

import (
	"context"
	"fmt"
	"strings"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/runpool"
	"gossipkit/internal/stats"
)

// GridConfig parameterizes a (scenario × q × fanout) sweep grid: every
// campaign replicated at every nonfailed ratio and fanout distribution, so
// one run maps where the static-q model holds across the whole parameter
// plane instead of a single point.
type GridConfig struct {
	// Run is the base run configuration; each grid cell overrides its
	// Params.AliveRatio and Params.Fanout.
	Run RunConfig
	// Qs are the nonfailed ratios to sweep; empty means just
	// Run.Params.AliveRatio.
	Qs []float64
	// Fanouts are the fanout distributions to sweep; empty means just
	// Run.Params.Fanout.
	Fanouts []dist.Distribution
	// Seeds is the number of seeded replications per cell (>= 1).
	Seeds int
	// BaseSeed derives each cell's seed; the grid is a pure function of it.
	BaseSeed uint64
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS. The result
	// is identical for any worker count.
	Workers int
}

// cellSeed derives the seed for scenario si, ratio qi, fanout fi,
// replication ri. Odd multipliers spread the grid over the seed space so
// neighboring cells never share RNG streams.
func (c GridConfig) cellSeed(si, qi, fi, ri int) uint64 {
	return c.BaseSeed +
		uint64(si)*0x9e3779b97f4a7c15 +
		uint64(qi)*0xbf58476d1ce4e5b9 +
		uint64(fi)*0x94d049bb133111eb +
		uint64(ri)*0xd6e8feb86659fd93 + 1
}

// GridCell is the aggregate of one (scenario, q, fanout) grid point.
type GridCell struct {
	Q      float64 `json:"q"`
	Fanout string  `json:"fanout"`
	Summary
}

// GridResult is the aggregated outcome of a grid sweep, in (scenario, q,
// fanout) order.
type GridResult struct {
	N        int        `json:"n"`
	Seeds    int        `json:"seeds"`
	BaseSeed uint64     `json:"base_seed"`
	Qs       []float64  `json:"qs"`
	Fanouts  []string   `json:"fanouts"`
	Cells    []GridCell `json:"cells"`
}

// SweepGrid replicates every scenario at every (q, fanout) combination for
// cfg.Seeds seeds on a worker pool; see SweepGridCtx.
func SweepGrid(scenarios []*Scenario, cfg GridConfig) (*GridResult, error) {
	return SweepGridCtx(context.Background(), scenarios, cfg, nil)
}

// SweepGridCtx replicates every scenario at every (q, fanout) combination
// for cfg.Seeds seeds on a worker pool, each worker recycling one run-state
// arena. Like SweepCtx, the result is deterministic in (scenarios, cfg)
// regardless of cfg.Workers: cells are data-independent and reduced in grid
// order after the pool drains. Context cancellation aborts promptly with
// ctx.Err(); observe, when non-nil, streams per-cell reports in
// deterministic cell order (cell = ((si·|qs|+qi)·|fanouts|+fi)·Seeds+ri).
func SweepGridCtx(ctx context.Context, scenarios []*Scenario, cfg GridConfig, observe Observer) (*GridResult, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("scenario: empty grid sweep")
	}
	if err := checkSweepShared(cfg.Run); err != nil {
		return nil, err
	}
	qs := cfg.Qs
	if len(qs) == 0 {
		qs = []float64{cfg.Run.Params.AliveRatio}
	}
	fanouts := cfg.Fanouts
	if len(fanouts) == 0 {
		fanouts = []dist.Distribution{cfg.Run.Params.Fanout}
	}
	if cfg.Seeds < 1 {
		cfg.Seeds = 1
	}
	points := len(scenarios) * len(qs) * len(fanouts)
	cells := points * cfg.Seeds
	workers := runpool.Count(cfg.Workers, cells)

	// Flattened cell index: ((si*len(qs)+qi)*len(fanouts)+fi)*Seeds+ri.
	reports := make([]RunReport, cells)
	lats := make([]stats.Running, cells)
	arenas := make([]*core.NetArena, workers)
	var obs func(i int)
	if observe != nil {
		obs = func(i int) { observe(i, reports[i]) }
	}
	err := runpool.Run(ctx, cells, workers, func(w, cell int) error {
		if arenas[w] == nil {
			arenas[w] = core.NewNetArena()
		}
		ri := cell % cfg.Seeds
		fi := cell / cfg.Seeds % len(fanouts)
		qi := cell / cfg.Seeds / len(fanouts) % len(qs)
		si := cell / cfg.Seeds / len(fanouts) / len(qs)
		run := cfg.Run
		run.Params.AliveRatio = qs[qi]
		run.Params.Fanout = fanouts[fi]
		rep, lat, err := runWithLatency(scenarios[si], run, cfg.cellSeed(si, qi, fi, ri), arenas[w])
		if err != nil {
			return err
		}
		reports[cell], lats[cell] = rep, lat
		return nil
	}, obs)
	if err != nil {
		return nil, err
	}

	out := &GridResult{
		N:        cfg.Run.Params.N,
		Seeds:    cfg.Seeds,
		BaseSeed: cfg.BaseSeed,
		Qs:       qs,
	}
	for _, f := range fanouts {
		out.Fanouts = append(out.Fanouts, f.Name())
	}
	for si, s := range scenarios {
		for qi, q := range qs {
			for fi, f := range fanouts {
				lo := ((si*len(qs)+qi)*len(fanouts) + fi) * cfg.Seeds
				out.Cells = append(out.Cells, GridCell{
					Q:       q,
					Fanout:  f.Name(),
					Summary: summarize(s, reports[lo:lo+cfg.Seeds], lats[lo:lo+cfg.Seeds]),
				})
			}
		}
	}
	return out, nil
}

// CSV renders the full grid, one row per (scenario, q, fanout) cell — the
// regression-tracking format: diffs of this file localize which corner of
// the parameter plane moved.
func (r *GridResult) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,q,fanout,runs,reliability,reliability_stddev,survivor_reliability,spread_ms,mean_messages,mean_up_at_end,static_prediction,effective_prediction,static_gap,effective_gap\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%s,%g,%s,%d,%.6f,%.6f,%.6f,%.3f,%.1f,%.1f,%.6f,%.6f,%.6f,%.6f\n",
			csvField(c.Scenario), c.Q,
			csvField(c.Fanout), c.Runs,
			c.Reliability.Mean, c.Reliability.StdDev, c.SurvivorReliability.Mean,
			c.SpreadMs.Mean, c.MeanMessages, c.MeanUpAtEnd,
			c.StaticPrediction, c.EffectivePrediction, c.StaticGap, c.EffectiveGap)
	}
	return b.String()
}
