package scenario

import (
	"math"
	"reflect"
	"testing"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
)

// shardedAdversarialCampaign is the satellite equivalence campaign: a
// crash wave into a bursty-loss episode, then a flash crowd republishing
// into the damage — every fabric seam (crash routing, per-shard loss
// cloning, publish deferral) under one scenario.
func shardedAdversarialCampaign() *Scenario {
	return New("crash-wave-burst", "crash wave + burst loss + flash crowd").
		At(5*time.Millisecond, CrashFraction(0.10)).
		At(8*time.Millisecond, BurstLoss(0.3, 0.3, 0.02, 0.5)).
		At(20*time.Millisecond, ClearLoss()).
		At(25*time.Millisecond, FlashCrowd(3))
}

func shardedScenarioConfig(shards int) RunConfig {
	return RunConfig{
		Params: core.Params{N: 200, Fanout: dist.NewPoisson(6), AliveRatio: 1, Source: 0},
		Shards: shards,
	}
}

// TestShardedScenarioMatrix pins the scenario layer's shard-count
// contract under an adversarial campaign: shard counts use different RNG
// streams, so individual runs differ, but 25-seed mean reliability must
// agree within a tolerance far below the damage a broken cross-shard
// bridge causes (the campaign kills ~10% of members and drops half the
// traffic for 12ms; a sharding bug that loses buffered traffic drags the
// mean toward zero).
func TestShardedScenarioMatrix(t *testing.T) {
	const seeds = 25
	mean := func(shards int) float64 {
		s := shardedAdversarialCampaign()
		cfg := shardedScenarioConfig(shards)
		total := 0.0
		for seed := 0; seed < seeds; seed++ {
			rep, err := Run(s, cfg, uint64(3000+seed))
			if err != nil {
				t.Fatal(err)
			}
			total += rep.Reliability
		}
		return total / seeds
	}
	base := mean(0) // single-kernel oracle
	for _, shards := range []int{2, 4} {
		m := mean(shards)
		if diff := math.Abs(m - base); diff > 0.05 {
			t.Errorf("shards=%d mean reliability %.4f vs oracle %.4f (Δ=%.4f > 0.05)",
				shards, m, base, diff)
		}
	}
}

// TestShardedScenarioOneShardMatchesDefault pins that Shards 0 and 1 are
// the same single-kernel path, and that the sharded path is seed-
// deterministic under a campaign.
func TestShardedScenarioOneShardMatchesDefault(t *testing.T) {
	s := shardedAdversarialCampaign()
	base, err := Run(s, shardedScenarioConfig(0), 77)
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(s, shardedScenarioConfig(1), 77)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, base) {
		t.Errorf("Shards=1 diverged from default:\n got %+v\nwant %+v", one, base)
	}
	run2a, err := Run(s, shardedScenarioConfig(2), 77)
	if err != nil {
		t.Fatal(err)
	}
	run2b, err := Run(s, shardedScenarioConfig(2), 77)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run2a, run2b) {
		t.Errorf("Shards=2 campaign run not deterministic:\n run1 %+v\n run2 %+v", run2a, run2b)
	}
	if run2a.Crashed == 0 {
		t.Error("campaign crashed nobody — adversarial matrix is vacuous")
	}
}

// TestShardedScenarioRecurringAndStall exercises the NetRun.Pending seam
// on the sharded runtime: an unbounded recurrence and a stall watcher
// must both unwind once only campaign bookkeeping remains, instead of
// seeing an always-empty control kernel and dying (or spinning).
func TestShardedScenarioRecurringAndStall(t *testing.T) {
	s := New("recurring-crash", "rolling crashes with a stall rescue").
		Every(6*time.Millisecond, CrashFraction(0.02)).
		OnStall(15*time.Millisecond, Regossip(2))
	rep, err := Run(s, shardedScenarioConfig(4), 11)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashed < 2 {
		t.Errorf("recurring crash wave fired %d crashes; the recurrence died early", rep.Crashed)
	}
	if rep.Delivered == 0 {
		t.Error("nothing delivered")
	}
}
