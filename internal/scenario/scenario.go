package scenario

import (
	"encoding/json"
	"fmt"
	"time"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("5ms") in JSON scenario specs, while still accepting plain nanosecond
// numbers on input.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler, accepting either a duration
// string ("5ms") or a number of nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: invalid duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("scenario: duration must be a string or nanosecond count: %s", b)
	}
	*d = Duration(ns)
	return nil
}

// Std returns d as a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Op identifies a fault-injection operation.
type Op string

// The supported operations. Fractions refer to the group size n, so one
// spec scales across group sizes; node ranges are expressed as [LoFrac,
// HiFrac) id fractions for the same reason.
const (
	// OpCrash fail-stops Frac of the currently-up members (never the
	// source), chosen uniformly at random.
	OpCrash Op = "crash"
	// OpCrashZone fail-stops the contiguous id range [LoFrac·n,
	// HiFrac·n) — a correlated zone failure (rack, AZ).
	OpCrashZone Op = "crash-zone"
	// OpRestart restarts Frac of the currently-down members, chosen
	// uniformly at random.
	OpRestart Op = "restart"
	// OpPartition isolates the id range [LoFrac·n, HiFrac·n) from the
	// rest of the group (both directions), replacing any previous
	// partition.
	OpPartition Op = "partition"
	// OpHeal clears any partition.
	OpHeal Op = "heal"
	// OpLoss installs Bernoulli message loss with probability P.
	OpLoss Op = "loss"
	// OpBurstLoss installs bursty Gilbert–Elliott loss with transition
	// probabilities PG2B/PB2G and loss rates PGood/PBad.
	OpBurstLoss Op = "burst-loss"
	// OpClearLoss removes any loss model.
	OpClearLoss Op = "clear-loss"
	// OpLatency installs a constant per-message latency of Latency.
	OpLatency Op = "latency"
	// OpChurn makes Frac of the currently-up members (never the source)
	// leave: each departs the membership substrate (SCAMP Unsubscribe,
	// donating its arcs, when the view is partial) and fail-stops.
	OpChurn Op = "churn"
	// OpPublish seeds the message at Count additional up members (flash
	// crowd): each obtains m out of band and gossips it.
	OpPublish Op = "publish"
	// OpRegossip makes Count random up members that already hold m
	// forward it again (anti-entropy push wave).
	OpRegossip Op = "regossip"
)

// Action is one fault-injection operation with its parameters. Only the
// fields relevant to Op are meaningful; the zero values of the rest keep
// the JSON encoding sparse.
type Action struct {
	Op Op `json:"op"`
	// Frac is the member fraction for crash/restart/churn.
	Frac float64 `json:"frac,omitempty"`
	// LoFrac and HiFrac bound the id range [LoFrac·n, HiFrac·n) for
	// crash-zone and partition.
	LoFrac float64 `json:"lo,omitempty"`
	HiFrac float64 `json:"hi,omitempty"`
	// Count is the member count for publish/regossip.
	Count int `json:"count,omitempty"`
	// P is the Bernoulli loss probability.
	P float64 `json:"p,omitempty"`
	// Gilbert–Elliott burst-loss parameters.
	PG2B  float64 `json:"pg2b,omitempty"`
	PB2G  float64 `json:"pb2g,omitempty"`
	PGood float64 `json:"pgood,omitempty"`
	PBad  float64 `json:"pbad,omitempty"`
	// Latency is the constant per-message delay for the latency op.
	Latency Duration `json:"latency,omitempty"`
}

// Validate checks the action's parameters for its op.
func (a Action) Validate() error {
	frac01 := func(name string, v float64) error {
		if v < 0 || v > 1 || v != v {
			return fmt.Errorf("scenario: %s %s %g outside [0,1]", a.Op, name, v)
		}
		return nil
	}
	switch a.Op {
	case OpCrash, OpRestart, OpChurn:
		return frac01("frac", a.Frac)
	case OpCrashZone, OpPartition:
		if err := frac01("lo", a.LoFrac); err != nil {
			return err
		}
		if err := frac01("hi", a.HiFrac); err != nil {
			return err
		}
		if a.HiFrac <= a.LoFrac {
			return fmt.Errorf("scenario: %s empty range [%g,%g)", a.Op, a.LoFrac, a.HiFrac)
		}
		return nil
	case OpHeal, OpClearLoss:
		return nil
	case OpLoss:
		return frac01("p", a.P)
	case OpBurstLoss:
		for _, pv := range []struct {
			name string
			v    float64
		}{{"pg2b", a.PG2B}, {"pb2g", a.PB2G}, {"pgood", a.PGood}, {"pbad", a.PBad}} {
			if err := frac01(pv.name, pv.v); err != nil {
				return err
			}
		}
		return nil
	case OpLatency:
		if a.Latency < 0 {
			return fmt.Errorf("scenario: negative latency %v", a.Latency.Std())
		}
		return nil
	case OpPublish, OpRegossip:
		if a.Count < 1 {
			return fmt.Errorf("scenario: %s count %d < 1", a.Op, a.Count)
		}
		return nil
	default:
		return fmt.Errorf("scenario: unknown op %q", a.Op)
	}
}

// WhenStall is the conditional-trigger condition a Step.When may carry:
// the step fires when delivery makes no progress for the step's Window.
const WhenStall = "stall"

// Step is one timestamped action of a scenario, optionally recurring or
// conditional.
type Step struct {
	// At is the simulated time (from execution start) the action fires
	// (first fires, when recurring; watching starts, when conditional).
	At Duration `json:"at"`
	// Every, when positive, refires the action at this interval after the
	// first firing. An unbounded recurrence (Until zero) keeps firing
	// while the execution has work pending beyond the recurrences
	// themselves, then stops so the run can drain; traffic-generating
	// ops (publish, regossip) sustain themselves and therefore require
	// an Until bound.
	Every Duration `json:"every,omitempty"`
	// Until, when positive, bounds a recurrence: the action fires at
	// At, At+Every, ... up to and including Until.
	Until Duration `json:"until,omitempty"`
	// When, when set to "stall", makes the step conditional instead of
	// timed: a kernel event watches the run's delivered-member count and
	// fires the action (at most once per run) when delivery has made no
	// progress for Window of simulated time while at least one up member
	// still lacks m. The trigger works identically on the paper's
	// algorithm and on the protocol-baseline executors — both expose the
	// delivered count through the same NetRun seam.
	When string `json:"when,omitempty"`
	// Window is the no-progress window a stall trigger waits for.
	Window Duration `json:"window,omitempty"`
	// Action is the operation to apply.
	Action Action `json:"action"`
}

// Scenario is a named, ordered fault-injection campaign.
type Scenario struct {
	// Name identifies the scenario in reports and the CLI.
	Name string `json:"name"`
	// Description says what fault process the scenario models.
	Description string `json:"description,omitempty"`
	// Steps are the timestamped actions; they need not be pre-sorted
	// (the kernel fires them in time order, ties in append order).
	Steps []Step `json:"steps"`
}

// New starts a scenario for the builder API.
func New(name, description string) *Scenario {
	return &Scenario{Name: name, Description: description}
}

// At appends an action at time t and returns the scenario for chaining.
func (s *Scenario) At(t time.Duration, a Action) *Scenario {
	s.Steps = append(s.Steps, Step{At: Duration(t), Action: a})
	return s
}

// Every appends a recurring action: it first fires at interval and then
// refires every interval while the execution still has other events
// pending ("crash 1% every 10ms" for as long as the spread is in flight).
func (s *Scenario) Every(interval time.Duration, a Action) *Scenario {
	s.Steps = append(s.Steps, Step{At: Duration(interval), Every: Duration(interval), Action: a})
	return s
}

// EveryUntil appends a bounded recurring action firing at start,
// start+interval, ... up to and including until.
func (s *Scenario) EveryUntil(start, interval, until time.Duration, a Action) *Scenario {
	s.Steps = append(s.Steps, Step{
		At: Duration(start), Every: Duration(interval), Until: Duration(until), Action: a,
	})
	return s
}

// OnStall appends a conditional step: the action fires (at most once per
// run) when delivery has made no progress for window of simulated time
// while at least one up member still lacks m — "when the spread stalls,
// heal the partition / fire a re-gossip wave". JSON form:
// {"when": "stall", "window": "10ms", "action": {...}}.
func (s *Scenario) OnStall(window time.Duration, a Action) *Scenario {
	s.Steps = append(s.Steps, Step{When: WhenStall, Window: Duration(window), Action: a})
	return s
}

// Validate checks the scenario.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	for i, st := range s.Steps {
		if st.At < 0 {
			return fmt.Errorf("scenario %q: step %d at negative time %v", s.Name, i, st.At.Std())
		}
		if st.Every < 0 {
			return fmt.Errorf("scenario %q: step %d negative interval %v", s.Name, i, st.Every.Std())
		}
		if st.Until < 0 {
			return fmt.Errorf("scenario %q: step %d negative until %v", s.Name, i, st.Until.Std())
		}
		if st.Until > 0 && st.Every == 0 {
			return fmt.Errorf("scenario %q: step %d has until without every", s.Name, i)
		}
		if st.Until > 0 && st.Until < st.At {
			return fmt.Errorf("scenario %q: step %d until %v before at %v", s.Name, i, st.Until.Std(), st.At.Std())
		}
		switch st.When {
		case "":
			if st.Window != 0 {
				return fmt.Errorf("scenario %q: step %d has a window without when=%q", s.Name, i, WhenStall)
			}
		case WhenStall:
			if st.Window <= 0 {
				return fmt.Errorf("scenario %q: step %d: stall trigger needs a positive window", s.Name, i)
			}
			if st.Every != 0 || st.Until != 0 {
				return fmt.Errorf("scenario %q: step %d: stall trigger cannot recur (every/until)", s.Name, i)
			}
		default:
			return fmt.Errorf("scenario %q: step %d: unknown condition %q (only %q is supported)", s.Name, i, st.When, WhenStall)
		}
		// Publish and regossip generate fresh gossip traffic on every
		// firing, so an unbounded recurrence of them would keep the
		// execution alive forever (the drain check sees their own
		// messages as pending work) until the event budget aborts the
		// run. Require an explicit window.
		if st.Every > 0 && st.Until == 0 && (st.Action.Op == OpPublish || st.Action.Op == OpRegossip) {
			return fmt.Errorf("scenario %q: step %d: recurring %s is self-sustaining and needs an until bound", s.Name, i, st.Action.Op)
		}
		if err := st.Action.Validate(); err != nil {
			return fmt.Errorf("scenario %q: step %d: %w", s.Name, i, err)
		}
	}
	return nil
}

// Marshal renders the scenario as its canonical indented JSON spec.
func (s *Scenario) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Parse decodes a JSON scenario spec and validates it.
func Parse(data []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: bad spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
