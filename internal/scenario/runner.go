package scenario

import (
	"fmt"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/membership"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

// RunConfig parameterizes scenario executions.
type RunConfig struct {
	// Params is the gossip model under test. AliveRatio is usually 1 for
	// scenario runs — failures come from the campaign, not a static
	// pre-drawn mask — but any q composes with the scenario.
	Params core.Params
	// Net is the network substrate. A nil latency model defaults to
	// uniform 1–20ms delays (rather than simnet's zero-latency default)
	// so that the spread actually extends over simulated time and timed
	// actions can interleave with it.
	Net simnet.Config
	// PartialViewCopies, when > 0, builds fresh SCAMP partial views
	// (membership.NewPartialViews with that many extra subscription
	// copies) for every run. Churn campaigns need this: each run then
	// owns the views its departures mutate. Ignored when Params.View is
	// already set — but beware that a caller-supplied view is shared and
	// mutated across churn runs.
	PartialViewCopies int
}

func (c RunConfig) netConfig() simnet.Config {
	cfg := c.Net
	if cfg.Latency == nil {
		cfg.Latency = simnet.UniformLatency{Lo: time.Millisecond, Hi: 20 * time.Millisecond}
	}
	return cfg
}

// RunReport is the outcome of one scenario execution.
type RunReport struct {
	// Scenario names the campaign that ran.
	Scenario string `json:"scenario"`
	// Seed is the run's random seed.
	Seed uint64 `json:"seed"`
	// Delivered is the number of members that received m.
	Delivered int `json:"delivered"`
	// Reliability is delivered / initially-alive (the paper's metric,
	// denominated in the pre-campaign group).
	Reliability float64 `json:"reliability"`
	// SurvivorReliability is delivered-and-up / up at the end of the
	// run: delivery measured over the members that survived the
	// campaign.
	SurvivorReliability float64 `json:"survivor_reliability"`
	// UpAtEnd is how many members were up when the run drained.
	UpAtEnd int `json:"up_at_end"`
	// SpreadMs is the time of the last first-receipt, in milliseconds.
	SpreadMs float64 `json:"spread_ms"`
	// MessagesSent counts gossip sends.
	MessagesSent int `json:"messages_sent"`
	// Crashed, Restarted, Departed and Published count what the campaign
	// actually did; ArcsDonated counts SCAMP arcs donated by churn.
	Crashed     int `json:"crashed,omitempty"`
	Restarted   int `json:"restarted,omitempty"`
	Departed    int `json:"departed,omitempty"`
	ArcsDonated int `json:"arcs_donated,omitempty"`
	Published   int `json:"published,omitempty"`
	// StaticPrediction is the paper's Eq. 11 reliability at the initial
	// q — the static model the scenario stresses.
	StaticPrediction float64 `json:"static_prediction"`
	// EffectivePrediction is Eq. 11 re-evaluated at the end-of-run up
	// fraction q_eff = UpAtEnd/n: the best the static model can do with
	// hindsight about how many members the campaign removed.
	EffectivePrediction float64 `json:"effective_prediction"`
	// Latency summarizes per-member first-receipt latencies (seconds).
	Latency LatencySummary `json:"latency"`
}

// LatencySummary is the flattened delivery-latency statistics of one or
// more runs.
type LatencySummary struct {
	N      int     `json:"n"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Run executes one scenario campaign over one gossip execution and reports
// the outcome against the static-q model. The run is deterministic in
// (cfg, s, seed).
func Run(s *Scenario, cfg RunConfig, seed uint64) (RunReport, error) {
	rep, _, err := runWithLatency(s, cfg, seed, nil)
	return rep, err
}

// runWithLatency is Run plus the raw per-member delivery-latency
// accumulator, which the sweep merges across replications, and an optional
// run-state arena (the sweep workers recycle one arena each; results are
// byte-identical with or without one).
func runWithLatency(s *Scenario, cfg RunConfig, seed uint64, arena *core.NetArena) (RunReport, stats.Running, error) {
	if err := s.Validate(); err != nil {
		return RunReport{}, stats.Running{}, err
	}
	p := cfg.Params
	if err := p.Validate(); err != nil {
		return RunReport{}, stats.Running{}, err
	}
	root := xrand.New(seed)
	actionRNG := root.Split(0x5ce9a810)
	if cfg.PartialViewCopies > 0 && p.View == nil {
		p.View = membership.NewPartialViews(p.N, cfg.PartialViewCopies, root.Split(0x71e75))
	}

	var e *env
	res, err := core.ExecuteOnNetworkArena(p, cfg.netConfig(), root, func(run *core.NetRun) {
		e = &env{run: run, rng: actionRNG, n: p.N, source: p.Source}
		schedule(run, e, s.Steps)
	}, arena)
	if err != nil {
		return RunReport{}, stats.Running{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}

	rep := RunReport{
		Scenario:            s.Name,
		Seed:                seed,
		Delivered:           res.Delivered,
		Reliability:         res.Reliability,
		SurvivorReliability: res.SurvivorReliability,
		UpAtEnd:             res.UpAtEnd,
		SpreadMs:            float64(res.SpreadTime) / float64(time.Millisecond),
		MessagesSent:        res.MessagesSent,
		Latency: LatencySummary{
			N:      res.DeliveryLatency.N(),
			MeanMs: res.DeliveryLatency.Mean() * 1e3,
			MaxMs:  res.DeliveryLatency.Max() * 1e3,
		},
	}
	if e != nil {
		rep.Crashed = e.crashed
		rep.Restarted = e.restarted
		rep.Departed = e.departed
		rep.ArcsDonated = e.arcsDonated
		rep.Published = e.published
	}
	if pred, err := core.Predict(p); err == nil {
		rep.StaticPrediction = pred.Reliability
	}
	pEff := p
	pEff.AliveRatio = float64(res.UpAtEnd) / float64(p.N)
	if pred, err := core.Predict(pEff); err == nil {
		rep.EffectivePrediction = pred.Reliability
	}
	return rep, res.DeliveryLatency, nil
}

// schedule installs the scenario's steps on the run's kernel. One-shot
// steps fire once at their time; recurring steps (Every > 0) refire every
// interval, so campaigns like "crash 1% every 10ms" no longer need
// hand-unrolled timelines. A bounded recurrence (Until > 0) refires until
// its window closes; an unbounded one refires only while the execution has
// live work beyond the recurrences themselves, so it tracks the spread and
// then lets the run drain.
func schedule(run *core.NetRun, e *env, steps []Step) {
	recurring := 0 // recurrence events currently pending on the kernel
	for _, st := range steps {
		if st.Every <= 0 {
			action := st.Action
			run.Kernel.At(sim.Time(st.At), func() { action.apply(e) })
			continue
		}
		st := st
		var fire func()
		fire = func() {
			recurring--
			st.Action.apply(e)
			next := run.Kernel.Now().Add(st.Every.Std())
			if st.Until > 0 {
				if next > sim.Time(st.Until) {
					return // recurrence window closed
				}
			} else if run.Kernel.Pending() <= recurring {
				return // only recurrences left; let the run drain
			}
			recurring++
			run.Kernel.At(next, fire)
		}
		recurring++
		run.Kernel.At(sim.Time(st.At), fire)
	}
}
