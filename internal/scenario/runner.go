package scenario

import (
	"fmt"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/membership"
	"gossipkit/internal/obs"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/stats"
	"gossipkit/internal/topology"
	"gossipkit/internal/xrand"
)

// Executor runs one execution of some dissemination protocol under a
// campaign's injection hook — the seam that lets every bundled campaign
// target any protocol. The default (nil RunConfig.Executor) runs the
// paper's own algorithm via core.ExecuteOnNetworkArena; the facade builds
// executors for the six related-work baselines on top of the protocol DES
// runtime. Executors must be stateless values: the sweep and comparison
// grids share one executor across workers.
type Executor interface {
	// Protocol labels the executor's rows in reports and the comparison
	// CSV. The default executor returns "" so single-protocol sweep JSON
	// stays byte-stable.
	Protocol() string
	// Shape returns the group size and the protected source member of an
	// execution under cfg.
	Shape(cfg RunConfig) (n, source int)
	// Execute runs one execution: all protocol randomness derives from r
	// (network jitter from the non-consuming r.Split(0xfeed)), cfg.Net
	// arrives already resolved (never nil models), inject is called with
	// the run's NetRun after setup and before the protocol starts, and
	// arena (which may be nil) recycles run state.
	Execute(cfg RunConfig, r *xrand.RNG, inject func(*core.NetRun), arena *core.NetArena) (core.NetResult, error)
	// Predict returns the executor's analytic reliability at nonfailed
	// ratio q when it has a model (the paper's Eq. 11 for the default
	// executor); ok=false otherwise.
	Predict(cfg RunConfig, q float64) (pred float64, ok bool)
}

// RunConfig parameterizes scenario executions.
type RunConfig struct {
	// Params is the gossip model under test. AliveRatio is usually 1 for
	// scenario runs — failures come from the campaign, not a static
	// pre-drawn mask — but any q composes with the scenario.
	Params core.Params
	// Net is the network substrate. A nil latency model defaults to
	// uniform 1–20ms delays (rather than simnet's zero-latency default)
	// so that the spread actually extends over simulated time and timed
	// actions can interleave with it.
	Net simnet.Config
	// PartialViewCopies, when > 0, builds fresh SCAMP partial views
	// (membership.NewPartialViews with that many extra subscription
	// copies) for every run. Churn campaigns need this: each run then
	// owns the views its departures mutate. Ignored when Params.View is
	// already set — but beware that a caller-supplied view is shared and
	// mutated across churn runs.
	PartialViewCopies int
	// Executor selects the protocol under the campaign; nil runs the
	// paper's algorithm (Params). The comparison grid sets it per row.
	Executor Executor
	// Shards selects the execution runtime for the default (paper)
	// executor: values above 1 run the conservative-PDES sharded kernel
	// (core.ExecuteOnNetworkSharded) with that many shard kernels, 0 and 1
	// run the single-kernel oracle — so existing configs and sweep JSON
	// goldens are byte-identical by default. The sharded runtime falls
	// back to one shard (still the sharded code path) when the latency
	// model has no positive floor. Protocol executors ignore it.
	Shards int
	// RoundInterval paces the round ticks of round-driven protocol
	// executors (the paper's algorithm is purely event-driven and ignores
	// it). Zero defaults per protocols.DESConfig: the latency model's
	// bound when it has one (20ms for the runner's stock 1–20ms uniform
	// latency) — one round's messages land before the next round fires,
	// preserving the baselines' synchronous-round semantics under the
	// runner's latency instead of letting a fast ticker burn the whole
	// round budget while the first hop is still airborne.
	RoundInterval time.Duration
	// Probe, when non-nil, observes each execution (virtual-time curves,
	// latency/hops histograms, optional ring tracing; see internal/obs)
	// and attaches its per-run Metrics snapshot to the RunReport. A probe
	// is single-goroutine state bound to one run at a time: set it for
	// single Run calls only — the sweep builds one pooled probe per
	// worker from SweepConfig.Probe instead. The probe never perturbs the
	// run (no RNG consumption, no kernel events), so reports are
	// bit-identical with it on or off.
	Probe *obs.Probe
	// Topology selects the gossip overlay (internal/topology): the zero
	// value is the paper's uniform selection and leaves every code path
	// and golden byte-identical. A non-uniform spec builds a fresh
	// Overlay per run from a non-consuming split of the run RNG
	// (topology.Split) — deterministic in (spec, seed) for any worker or
	// shard count — and installs it as the membership view, so crashed
	// and churned members vanish from neighbor sets via the overlay's
	// Remove hook. A WAN spec with a nil Net.Latency also installs the
	// default per-zone-pair ZoneLatency matrix. Ignored when Params.View
	// is already set. Being a plain value, it composes with sweeps
	// (CheckShared) where a shared Params.View would not.
	Topology topology.Spec
}

func (c RunConfig) netConfig(n int) simnet.Config {
	cfg := c.Net
	if cfg.Latency == nil {
		if c.Topology.Kind == topology.WAN {
			// Heterogeneous WAN delays over the overlay's zone layout:
			// LAN-fast 1–2ms inside a zone, +10ms of floor per zone of
			// ring distance across. Deterministic (no RNG), so the value
			// is shared safely across sweep workers and shard kernels.
			cfg.Latency = topology.NewZoneLatency(n, c.Topology.Zones,
				time.Millisecond, 10*time.Millisecond)
		} else {
			cfg.Latency = simnet.UniformLatency{Lo: time.Millisecond, Hi: 20 * time.Millisecond}
		}
	}
	return cfg
}

func (c RunConfig) executor() Executor {
	if c.Executor != nil {
		return c.Executor
	}
	return paperExecutor{}
}

// paperExecutor is the default Executor: the paper's general gossiping
// algorithm on core's DES executor. The default (RunConfig.Executor nil)
// instance carries an empty protocol label so existing single-protocol
// sweep output is unchanged; comparison grids label their paper row via
// PaperExecutor.
type paperExecutor struct{ label string }

func (e paperExecutor) Protocol() string { return e.label }

func (paperExecutor) Shape(cfg RunConfig) (int, int) { return cfg.Params.N, cfg.Params.Source }

func (paperExecutor) Execute(cfg RunConfig, r *xrand.RNG, inject func(*core.NetRun), arena *core.NetArena) (core.NetResult, error) {
	return ExecutePaper(cfg, r, inject, arena)
}

func (paperExecutor) Predict(cfg RunConfig, q float64) (float64, bool) {
	p := cfg.Params
	p.AliveRatio = q
	pred, err := core.Predict(p)
	if err != nil {
		return 0, false
	}
	return pred.Reliability, true
}

// ExecutePaper is the default executor's Execute, exported so comparison
// rows that pit the paper's algorithm against the baselines can wrap it
// with their own Params. cfg.Net must already be resolved (the runner does
// this); per-run SCAMP views are built when PartialViewCopies asks for
// them, consuming the same split RNG stream the runner always used.
func ExecutePaper(cfg RunConfig, r *xrand.RNG, inject func(*core.NetRun), arena *core.NetArena) (core.NetResult, error) {
	p := cfg.Params
	if err := p.Validate(); err != nil {
		return core.NetResult{}, err
	}
	if p.View == nil {
		// The split is non-consuming, so the uniform (nil-overlay) path
		// leaves every downstream random stream byte-identical.
		ov, err := cfg.Topology.Build(p.N, r.Split(topology.Split))
		if err != nil {
			return core.NetResult{}, err
		}
		if ov != nil {
			p.View = ov
		}
	}
	if cfg.PartialViewCopies > 0 && p.View == nil {
		p.View = membership.NewPartialViews(p.N, cfg.PartialViewCopies, r.Split(0x71e75))
	}
	if cfg.Shards > 1 {
		return core.ExecuteOnNetworkSharded(p, cfg.Net, r, inject, arena.Sharded(cfg.Shards), cfg.Probe,
			core.ShardOptions{Shards: cfg.Shards})
	}
	return core.ExecuteOnNetworkProbed(p, cfg.Net, r, inject, arena, cfg.Probe)
}

// RunReport is the outcome of one scenario execution.
type RunReport struct {
	// Scenario names the campaign that ran.
	Scenario string `json:"scenario"`
	// Protocol labels the executor that ran the campaign; empty for the
	// default single-protocol runner.
	Protocol string `json:"protocol,omitempty"`
	// Seed is the run's random seed.
	Seed uint64 `json:"seed"`
	// Delivered is the number of members that received m.
	Delivered int `json:"delivered"`
	// Reliability is delivered / initially-alive (the paper's metric,
	// denominated in the pre-campaign group).
	Reliability float64 `json:"reliability"`
	// SurvivorReliability is delivered-and-up / up at the end of the
	// run: delivery measured over the members that survived the
	// campaign.
	SurvivorReliability float64 `json:"survivor_reliability"`
	// UpAtEnd is how many members were up when the run drained.
	UpAtEnd int `json:"up_at_end"`
	// SpreadMs is the time of the last first-receipt, in milliseconds.
	SpreadMs float64 `json:"spread_ms"`
	// MessagesSent counts gossip sends.
	MessagesSent int `json:"messages_sent"`
	// Crashed, Restarted, Departed and Published count what the campaign
	// actually did; ArcsDonated counts SCAMP arcs donated by churn.
	Crashed     int `json:"crashed,omitempty"`
	Restarted   int `json:"restarted,omitempty"`
	Departed    int `json:"departed,omitempty"`
	ArcsDonated int `json:"arcs_donated,omitempty"`
	Published   int `json:"published,omitempty"`
	// StaticPrediction is the paper's Eq. 11 reliability at the initial
	// q — the static model the scenario stresses. Zero for protocol
	// executors without an analytic model.
	StaticPrediction float64 `json:"static_prediction"`
	// EffectivePrediction is Eq. 11 re-evaluated at the end-of-run up
	// fraction q_eff = UpAtEnd/n: the best the static model can do with
	// hindsight about how many members the campaign removed.
	EffectivePrediction float64 `json:"effective_prediction"`
	// CorrectedPrediction extends Eq. 11 with the giant-component
	// correction on topology runs: the reachable fraction of the
	// alive-restricted gossip digraph over the run's overlay at q_eff
	// (core.ComponentReliability — the same machinery the MonteCarlo
	// engine's component estimator uses). Eq. 11 assumes uniform
	// selection; on a constrained overlay the giant out-component, not
	// the branching process, bounds the spread. Zero (and omitted from
	// JSON) for uniform-topology runs, so existing goldens are
	// unchanged.
	CorrectedPrediction float64 `json:"corrected_prediction,omitempty"`
	// Latency summarizes per-member first-receipt latencies (seconds).
	Latency LatencySummary `json:"latency"`
	// Metrics is the run's telemetry snapshot when a probe observed it
	// (RunConfig.Probe / SweepConfig.Probe); nil otherwise. Excluded from
	// the JSON encoding so probed and unprobed sweep output stay
	// byte-identical.
	Metrics *obs.Metrics `json:"-"`
}

// LatencySummary is the flattened delivery-latency statistics of one or
// more runs.
type LatencySummary struct {
	N      int     `json:"n"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Run executes one scenario campaign over one gossip execution and reports
// the outcome against the static-q model. The run is deterministic in
// (cfg, s, seed).
func Run(s *Scenario, cfg RunConfig, seed uint64) (RunReport, error) {
	rep, _, err := runWithLatency(s, cfg, seed, nil)
	return rep, err
}

// runWithLatency is Run plus the raw per-member delivery-latency
// accumulator, which the sweep merges across replications, and an optional
// run-state arena (the sweep workers recycle one arena each; results are
// byte-identical with or without one).
func runWithLatency(s *Scenario, cfg RunConfig, seed uint64, arena *core.NetArena) (RunReport, stats.Running, error) {
	if err := s.Validate(); err != nil {
		return RunReport{}, stats.Running{}, err
	}
	ex := cfg.executor()
	n, source := ex.Shape(cfg)
	root := xrand.New(seed)
	actionRNG := root.Split(0x5ce9a810)
	// Split the topology and component-probe streams before the executor
	// consumes root: topoRNG then replays exactly the stream the executor
	// builds its overlay from, so the corrected prediction sees the same
	// arcs the run gossiped over. Splits are non-consuming, so the
	// uniform path is byte-identical to pre-topology behavior.
	topoRNG := root.Split(topology.Split)
	compRNG := root.Split(0x6ca12)
	cfg.Net = cfg.netConfig(n)

	var e *env
	res, err := ex.Execute(cfg, root, func(run *core.NetRun) {
		e = &env{run: run, rng: actionRNG, n: n, source: source}
		schedule(run, e, s.Steps)
	}, arena)
	if err != nil {
		return RunReport{}, stats.Running{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}

	rep := RunReport{
		Scenario:            s.Name,
		Protocol:            ex.Protocol(),
		Seed:                seed,
		Delivered:           res.Delivered,
		Reliability:         res.Reliability,
		SurvivorReliability: res.SurvivorReliability,
		UpAtEnd:             res.UpAtEnd,
		SpreadMs:            float64(res.SpreadTime) / float64(time.Millisecond),
		MessagesSent:        res.MessagesSent,
		Latency: LatencySummary{
			N:      res.DeliveryLatency.N(),
			MeanMs: res.DeliveryLatency.Mean() * 1e3,
			MaxMs:  res.DeliveryLatency.Max() * 1e3,
		},
	}
	if e != nil {
		rep.Crashed = e.crashed
		rep.Restarted = e.restarted
		rep.Departed = e.departed
		rep.ArcsDonated = e.arcsDonated
		rep.Published = e.published
	}
	if pred, ok := ex.Predict(cfg, cfg.Params.AliveRatio); ok {
		rep.StaticPrediction = pred
	}
	if pred, ok := ex.Predict(cfg, float64(res.UpAtEnd)/float64(n)); ok {
		rep.EffectivePrediction = pred
		if !cfg.Topology.IsUniform() && cfg.Params.View == nil {
			if cp, err := correctedPrediction(cfg, float64(res.UpAtEnd)/float64(n), topoRNG, compRNG); err == nil {
				rep.CorrectedPrediction = cp
			}
		}
	}
	if cfg.Probe != nil {
		rep.Metrics = cfg.Probe.Metrics()
	}
	return rep, res.DeliveryLatency, nil
}

// correctedPrediction extends Eq. 11 with the giant-component correction
// for a topology run: it rebuilds the run's pristine overlay from the
// same RNG split the executor used (same arcs) and measures the fraction
// of alive members the source reaches through the alive-restricted
// gossip digraph at nonfailed ratio q (core.ComponentReliability — one
// component draw per run; sweeps average it across seeds like every
// other per-run statistic).
func correctedPrediction(cfg RunConfig, q float64, topoRNG, compRNG *xrand.RNG) (float64, error) {
	p := cfg.Params
	ov, err := cfg.Topology.Build(p.N, topoRNG)
	if err != nil || ov == nil {
		return 0, err
	}
	p.View = ov
	p.AliveRatio = q
	comp, err := core.ComponentReliability(p, compRNG)
	if err != nil {
		return 0, err
	}
	return comp.Reliability, nil
}

// schedule installs the scenario's steps on the run's kernel. One-shot
// steps fire once at their time; recurring steps (Every > 0) refire every
// interval, so campaigns like "crash 1% every 10ms" no longer need
// hand-unrolled timelines; conditional steps (When = "stall") watch the
// run's delivered count. A bounded recurrence (Until > 0) refires until
// its window closes; an unbounded one refires only while the execution has
// live work beyond the campaign's own bookkeeping events (recurrences and
// stall watchers, counted in `self`), so it tracks the spread and then
// lets the run drain.
func schedule(run *core.NetRun, e *env, steps []Step) {
	self := 0 // campaign bookkeeping events currently pending on the kernel
	for _, st := range steps {
		st := st
		if st.When == WhenStall {
			scheduleStall(run, e, st, &self)
			continue
		}
		if st.Every <= 0 {
			action := st.Action
			run.Kernel.At(sim.Time(st.At), func() { action.apply(e) })
			continue
		}
		var fire func()
		fire = func() {
			self--
			st.Action.apply(e)
			next := run.Kernel.Now().Add(st.Every.Std())
			if st.Until > 0 {
				if next > sim.Time(st.Until) {
					return // recurrence window closed
				}
			} else if run.Pending() <= self {
				return // only campaign bookkeeping left; let the run drain
			}
			self++
			run.Kernel.At(next, fire)
		}
		self++
		run.Kernel.At(sim.Time(st.At), fire)
	}
}

// scheduleStall installs a stall trigger: a recurring kernel event that
// polls the run's delivered-member count every half window and fires the
// step's action — at most once per run — when the count has not moved for
// a full window while some up member still lacks m. Before the FIRST
// delivery moves the count, a quiet window is only a stall if the network
// is drained too (simnet.Stats.InFlight): a window shorter than the
// latency of the spread's opening hop must not fire while that hop is
// still airborne, but once any progress has been observed the
// delivered-count window alone decides (round-driven protocols keep
// duplicate traffic airborne through a genuine stall, so a drained
// network cannot be a precondition in general). The watcher's own events
// count as campaign bookkeeping (self), so it never keeps an
// otherwise-finished run alive: once every up member is served and only
// bookkeeping is pending, it unwinds without firing.
func scheduleStall(run *core.NetRun, e *env, st Step, self *int) {
	window := st.Window.Std()
	poll := window / 2
	if poll <= 0 {
		poll = window
	}
	lastDelivered := -1
	sawProgress := false
	var lastChange sim.Time
	var fire func()
	fire = func() {
		*self--
		now := run.Kernel.Now()
		if d := run.Delivered(); d != lastDelivered {
			sawProgress = lastDelivered >= 0 // the first poll only baselines
			lastDelivered, lastChange = d, now
		}
		if now.Sub(lastChange) >= window &&
			(sawProgress || run.Net.Drained()) {
			if stallSatisfied(run, e.n) {
				return // the spread finished; nothing to trigger
			}
			st.Action.apply(e)
			return // fires at most once per run
		}
		if run.Pending() <= *self && stallSatisfied(run, e.n) {
			return // run is done except for bookkeeping; stop watching
		}
		*self++
		run.Kernel.At(now.Add(poll), fire)
	}
	*self++
	run.Kernel.At(sim.Time(st.At), fire)
}

// stallSatisfied reports whether every currently-up member has received m
// — the state in which a stall trigger has nothing left to rescue.
func stallSatisfied(run *core.NetRun, n int) bool {
	for id := 0; id < n; id++ {
		if run.Net.Up(simnet.NodeID(id)) && !run.HasReceived(id) {
			return false
		}
	}
	return true
}
