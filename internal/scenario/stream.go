package scenario

import (
	"fmt"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/simnet"
	"gossipkit/internal/stream"
	"gossipkit/internal/topology"
	"gossipkit/internal/xrand"
)

// NewStreamExecutor wraps a streaming workload (internal/stream) as a
// scenario Executor, so any campaign — crash waves, partitions, burst
// loss, flash crowds — runs against a sustained multi-message publish
// stream instead of one rumor. The campaign's actions inject through the
// same NetRun seam: crashes and loss hit the live stream, Publish
// triggers the stream's scenario hook (a member lacking the latest
// message obtains it; one that has it re-gossips its buffer).
//
// The executor ignores RunConfig.Params — the stream config carries its
// own group size — and RunConfig.Probe (single-rumor telemetry has no
// meaning over a stream; use the facade's WithProbe on the Stream
// engine). Mapping a multi-message run onto the single-rumor NetResult
// is necessarily a summary: Reliability is the mean per-message
// reliability, Delivered the mean per-message first-receipt count, and
// SurvivorReliability repeats Reliability (per-message survivor sets are
// not tracked). Result details beyond that summary come from the Stream
// engine, not the campaign report.
func NewStreamExecutor(cfg stream.Config) Executor {
	return streamExecutor{cfg: cfg}
}

type streamExecutor struct {
	cfg stream.Config
}

func (e streamExecutor) Protocol() string {
	return fmt.Sprintf("stream-%s-%s", e.cfg.Discipline, e.cfg.Eviction)
}

func (e streamExecutor) Shape(RunConfig) (int, int) { return e.cfg.N, 0 }

func (e streamExecutor) Execute(cfg RunConfig, r *xrand.RNG, inject func(*core.NetRun), arena *core.NetArena) (core.NetResult, error) {
	sc := e.cfg
	if sc.View == nil {
		// Non-consuming split: the uniform path leaves every downstream
		// stream byte-identical, matching ExecutePaper.
		ov, err := cfg.Topology.Build(sc.N, r.Split(topology.Split))
		if err != nil {
			return core.NetResult{}, err
		}
		if ov != nil {
			sc.View = ov
		}
	}
	sc.RoundInterval = resolveInterval(sc.RoundInterval, cfg.RoundInterval)
	var fabric simnet.Fabric
	hook := func(nr *core.NetRun) {
		fabric = nr.Net
		if inject != nil {
			inject(nr)
		}
	}
	res, err := stream.RunProbed(sc, cfg.Net, r, hook, stream.NewArenaOn(arena), nil)
	if err != nil {
		return core.NetResult{}, err
	}
	return streamNetResult(res, fabric), nil
}

func (streamExecutor) Predict(RunConfig, float64) (float64, bool) { return 0, false }

// resolveInterval prefers the stream's own round interval, falling back
// to the campaign's.
func resolveInterval(own, campaign time.Duration) time.Duration {
	if own > 0 {
		return own
	}
	return campaign
}

// streamNetResult summarizes a streaming run in single-rumor NetResult
// terms for the campaign report.
func streamNetResult(res stream.Result, fabric simnet.Fabric) core.NetResult {
	out := core.NetResult{
		SpreadTime:      res.End,
		DeliveryLatency: res.DeliveryLatency,
		Net:             res.Net,
	}
	out.AliveCount = res.AliveCount
	if res.Published > 0 {
		out.Delivered = res.Delivered / res.Published
	}
	out.Reliability = res.MeanReliability
	out.MessagesSent = int(res.MessagesSent)
	out.Rounds = res.Rounds
	out.UpAtEnd = upCount(fabric)
	out.DeliveredUp = out.Delivered
	out.SurvivorReliability = res.MeanReliability
	return out
}

func upCount(fabric simnet.Fabric) int {
	if fabric == nil {
		return 0
	}
	up := 0
	for id := 0; id < fabric.N(); id++ {
		if fabric.Up(simnet.NodeID(id)) {
			up++
		}
	}
	return up
}
