// Package simnet is the simulated network substrate the gossip protocols
// run on when message timing matters. It models per-message latency,
// probabilistic loss (including bursty Gilbert–Elliott loss), network
// partitions, and node crashes, all on top of the deterministic
// discrete-event kernel in internal/sim.
//
// The paper's MATLAB simulation abstracts the network away entirely (a
// gossip "send" always arrives, instantly); simnet reproduces that setting
// with the zero-value models (constant zero latency, no loss) and extends it
// with the realism knobs used by the ablation experiments and the examples.
//
// Determinism: a Network is single-goroutine state driven by its kernel;
// every latency and loss draw comes from the caller-supplied RNG, so a run
// is a pure function of (config, seed). Latency models that implement
// LatencyBounder switch the kernel to its calendar event queue — a pure
// throughput lever that never changes delivery order or results.
//
// Allocation guarantee: the steady-state send→deliver path allocates
// nothing. Node up/down flags are a packed bitset; payload-free messages
// (the gossip hot path) ride entirely inside the kernel's 32-byte event
// records, and payload-carrying messages park their payload in pooled
// in-flight slots recycled through a free list (alloc_test.go enforces
// this).
package simnet
