package simnet

import (
	"testing"
	"time"

	"gossipkit/internal/sim"
)

// TestInFlightAccounting: InFlight() counts exactly the accepted messages
// that are airborne — send-time discards from a down sender land in
// DroppedDown, not in any InFlight term, so the gauge can never go
// negative and quiescence checks keyed on InFlight() == 0 stay sound even
// when a crashed node's round logic still tries to send.
func TestInFlightAccounting(t *testing.T) {
	k, nw := newNet(t, 3, Config{Latency: ConstantLatency{D: 5 * time.Millisecond}})
	nw.RegisterAll(func(sim.Time, Message) {})

	nw.Send(0, 1, nil)
	if got := nw.Stats().InFlight(); got != 1 {
		t.Fatalf("one message airborne, InFlight() = %d", got)
	}

	// A send from a crashed node is discarded before it is ever "sent".
	nw.Crash(2)
	nw.Send(2, 1, nil)
	st := nw.Stats()
	if st.DroppedDown != 1 || st.Sent != 1 {
		t.Fatalf("down-sender discard: stats %+v", st)
	}
	if got := st.InFlight(); got != 1 {
		t.Fatalf("down-sender discard moved InFlight() to %d, want 1", got)
	}

	// A delivery-time crash drop resolves its airborne message.
	nw.Send(0, 2, nil) // node 2 is down: dropped at delivery
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	st = nw.Stats()
	if st.Delivered != 1 || st.DroppedCrash != 1 {
		t.Fatalf("drain: stats %+v", st)
	}
	if got := st.InFlight(); got != 0 {
		t.Fatalf("drained network reports InFlight() = %d", got)
	}
}
