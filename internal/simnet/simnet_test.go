package simnet

import (
	"sync"
	"testing"
	"time"

	"gossipkit/internal/sim"
	"gossipkit/internal/xrand"
)

func newNet(t *testing.T, n int, cfg Config) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.New()
	return k, New(k, n, xrand.New(1), cfg)
}

func TestDeliveryZeroLatency(t *testing.T) {
	k, nw := newNet(t, 2, Config{})
	var got []Message
	nw.Register(1, func(_ sim.Time, m Message) { got = append(got, m) })
	nw.Send(0, 1, "hello")
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Payload != "hello" || got[0].From != 0 {
		t.Fatalf("delivered %v", got)
	}
	st := nw.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestConstantLatencyTiming(t *testing.T) {
	k, nw := newNet(t, 2, Config{Latency: ConstantLatency{D: 250 * time.Millisecond}})
	var at sim.Time
	nw.Register(1, func(now sim.Time, _ Message) { at = now })
	nw.Send(0, 1, nil)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != sim.Time(250*time.Millisecond) {
		t.Errorf("delivered at %v", at)
	}
}

func TestUniformLatencyBounds(t *testing.T) {
	lo, hi := 10*time.Millisecond, 20*time.Millisecond
	m := UniformLatency{Lo: lo, Hi: hi}
	r := xrand.New(3)
	for i := 0; i < 1000; i++ {
		d := m.Latency(r, 0, 1)
		if d < lo || d > hi {
			t.Fatalf("latency %v outside [%v, %v]", d, lo, hi)
		}
	}
	// Degenerate interval.
	if d := (UniformLatency{Lo: lo, Hi: lo}).Latency(r, 0, 1); d != lo {
		t.Errorf("degenerate uniform = %v", d)
	}
}

func TestExponentialLatencyFloor(t *testing.T) {
	m := ExponentialLatency{Floor: 5 * time.Millisecond, Mean: 10 * time.Millisecond}
	r := xrand.New(5)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		d := m.Latency(r, 0, 1)
		if d < 5*time.Millisecond {
			t.Fatalf("latency %v below floor", d)
		}
		sum += d
	}
	mean := sum / n
	want := 15 * time.Millisecond
	if mean < want-time.Millisecond || mean > want+time.Millisecond {
		t.Errorf("mean latency %v, want ~%v", mean, want)
	}
}

func TestBernoulliLoss(t *testing.T) {
	k, nw := newNet(t, 2, Config{Loss: BernoulliLoss{P: 0.5}})
	delivered := 0
	nw.Register(1, func(sim.Time, Message) { delivered++ })
	const n = 10000
	for i := 0; i < n; i++ {
		nw.Send(0, 1, i)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.DroppedLoss+int64(delivered) != n {
		t.Errorf("loss %d + delivered %d != %d", st.DroppedLoss, delivered, n)
	}
	if delivered < 4600 || delivered > 5400 {
		t.Errorf("delivered %d of %d at p=0.5", delivered, n)
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// Long Good runs with rare loss, Bad state drops most messages.
	g := NewGilbertElliott(0.01, 0.2, 0.001, 0.9)
	r := xrand.New(11)
	drops := 0
	const n = 100000
	runLen, maxRun := 0, 0
	for i := 0; i < n; i++ {
		if g.Drop(r, 0, 1) {
			drops++
			runLen++
			if runLen > maxRun {
				maxRun = runLen
			}
		} else {
			runLen = 0
		}
	}
	// Stationary bad fraction = pG2B/(pG2B+pB2G) ≈ 0.0476; loss rate ≈
	// 0.0476*0.9 + 0.952*0.001 ≈ 0.0438.
	rate := float64(drops) / n
	if rate < 0.03 || rate > 0.06 {
		t.Errorf("GE loss rate %.4f, want ~0.044", rate)
	}
	if maxRun < 3 {
		t.Errorf("GE produced no bursts (max run %d)", maxRun)
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGilbertElliott(1.5, 0, 0, 0)
}

func TestCrashSemantics(t *testing.T) {
	k, nw := newNet(t, 3, Config{Latency: ConstantLatency{D: time.Millisecond}})
	got := 0
	nw.Register(1, func(sim.Time, Message) { got++ })

	// Crashed destination: message in flight is dropped at delivery.
	nw.Send(0, 1, "a")
	nw.Crash(1)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Error("message delivered to crashed node")
	}

	// Crashed source: send discarded.
	nw.Crash(0)
	nw.Send(0, 2, "b")
	if st := nw.Stats(); st.Sent != 1 {
		t.Errorf("crashed sender counted as sent: %+v", st)
	}

	// Restart: deliveries resume.
	nw.Restart(1)
	nw.Send(2, 1, "c")
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("delivered %d after restart, want 1", got)
	}
	if !nw.Up(1) || nw.Up(0) {
		t.Error("Up() wrong")
	}
}

func TestUnregisteredHandlerDrops(t *testing.T) {
	k, nw := newNet(t, 2, Config{})
	nw.Send(0, 1, nil)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if st := nw.Stats(); st.Delivered != 0 || st.DroppedCrash != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestPartition(t *testing.T) {
	k, nw := newNet(t, 4, Config{})
	var got []NodeID
	for i := 0; i < 4; i++ {
		id := NodeID(i)
		nw.Register(id, func(_ sim.Time, m Message) { got = append(got, m.To) })
	}
	// Nodes {0,1} | {2,3}.
	nw.SetPartition(SplitPartition(func(id NodeID) bool { return id < 2 }))
	nw.Send(0, 1, nil) // same side: ok
	nw.Send(0, 2, nil) // cross: blocked
	nw.Send(3, 1, nil) // cross: blocked
	nw.Send(2, 3, nil) // same side: ok
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("delivered %v", got)
	}
	if st := nw.Stats(); st.DroppedPart != 2 {
		t.Errorf("partition drops = %d", st.DroppedPart)
	}
	// Healing the partition restores connectivity.
	nw.SetPartition(nil)
	nw.Send(0, 2, nil)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Error("partition not healed")
	}
}

func TestBadIDPanics(t *testing.T) {
	_, nw := newNet(t, 2, Config{})
	for _, f := range []func(){
		func() { nw.Send(-1, 0, nil) },
		func() { nw.Send(0, 2, nil) },
		func() { nw.Crash(5) },
		func() { nw.Register(-1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for out-of-range id")
				}
			}()
			f()
		}()
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []sim.Time {
		k := sim.New()
		nw := New(k, 10, xrand.New(42), Config{
			Latency: UniformLatency{Lo: time.Millisecond, Hi: 50 * time.Millisecond},
			Loss:    BernoulliLoss{P: 0.1},
		})
		var trace []sim.Time
		for i := 0; i < 10; i++ {
			id := NodeID(i)
			nw.Register(id, func(now sim.Time, m Message) {
				trace = append(trace, now)
				if len(trace) < 200 {
					nw.Send(m.To, NodeID((int(m.To)+1)%10), nil)
				}
			})
		}
		nw.Send(0, 1, nil)
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

// ---------------------------------------------------------------------------
// LiveNet

func TestLiveNetSendRecv(t *testing.T) {
	l := NewLive(2, 8)
	defer l.Close()
	if !l.Send(0, 1, "x") {
		t.Fatal("send failed")
	}
	m := <-l.Inbox(1)
	if m.Payload != "x" || m.From != 0 {
		t.Fatalf("got %v", m)
	}
}

func TestLiveNetCrash(t *testing.T) {
	l := NewLive(2, 8)
	defer l.Close()
	l.Crash(1)
	if l.Send(0, 1, "x") {
		t.Error("send to crashed node succeeded")
	}
	if l.Send(1, 0, "y") {
		t.Error("send from crashed node succeeded")
	}
	if l.Up(1) || !l.Up(0) {
		t.Error("Up() wrong")
	}
}

func TestLiveNetOverflowDrops(t *testing.T) {
	l := NewLive(2, 2)
	defer l.Close()
	if !l.Send(0, 1, 1) || !l.Send(0, 1, 2) {
		t.Fatal("fills failed")
	}
	if l.Send(0, 1, 3) {
		t.Error("overflow send succeeded")
	}
}

func TestLiveNetBadIDs(t *testing.T) {
	l := NewLive(2, 2)
	defer l.Close()
	if l.Send(-1, 0, nil) || l.Send(0, 7, nil) {
		t.Error("bad ids accepted")
	}
	if l.Up(-1) || l.Up(9) {
		t.Error("bad ids reported up")
	}
	l.Crash(-1) // must not panic
}

func TestLiveNetCloseIdempotentAndConcurrent(t *testing.T) {
	l := NewLive(4, 16)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Send(NodeID(i), NodeID((i+1)%4), j)
			}
		}(i)
	}
	l.Close()
	l.Close() // idempotent
	wg.Wait()
	if l.Send(0, 1, nil) {
		t.Error("send after close succeeded")
	}
}

func TestLiveNetConcurrentTraffic(t *testing.T) {
	const n, msgs = 8, 500
	l := NewLive(n, msgs*n)
	var wg sync.WaitGroup
	received := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for m := range l.Inbox(NodeID(i)) {
				_ = m
				received[i]++
			}
		}(i)
	}
	var sendWg sync.WaitGroup
	for i := 0; i < n; i++ {
		sendWg.Add(1)
		go func(i int) {
			defer sendWg.Done()
			for j := 0; j < msgs; j++ {
				l.Send(NodeID(i), NodeID(j%n), j)
			}
		}(i)
	}
	sendWg.Wait()
	l.Close()
	wg.Wait()
	total := 0
	for _, r := range received {
		total += r
	}
	if total != n*msgs {
		t.Errorf("received %d messages, want %d", total, n*msgs)
	}
}

func BenchmarkNetworkSendDeliver(b *testing.B) {
	k := sim.New()
	nw := New(k, 100, xrand.New(1), Config{Latency: ConstantLatency{D: time.Millisecond}})
	for i := 0; i < 100; i++ {
		nw.Register(NodeID(i), func(sim.Time, Message) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Send(NodeID(i%100), NodeID((i+1)%100), nil)
		if i%256 == 255 {
			if err := k.RunAll(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := k.RunAll(); err != nil {
		b.Fatal(err)
	}
}
