package simnet

import (
	"time"

	"gossipkit/internal/sim"
	"gossipkit/internal/stats"
)

// EventKind classifies a traced network event.
type EventKind int

const (
	// EventSent: a message was accepted for transmission.
	EventSent EventKind = iota
	// EventDelivered: a message reached its handler.
	EventDelivered
	// EventDroppedLoss: lost in transit.
	EventDroppedLoss
	// EventDroppedCrash: endpoint crashed (or had no handler).
	EventDroppedCrash
	// EventDroppedPartition: blocked by a partition.
	EventDroppedPartition
	// EventDroppedDown: discarded at send time because the sender was
	// down. Mirrors Stats.DroppedDown: the message was never accepted, so
	// it appears in no other count.
	EventDroppedDown
)

func (k EventKind) String() string {
	switch k {
	case EventSent:
		return "sent"
	case EventDelivered:
		return "delivered"
	case EventDroppedLoss:
		return "dropped-loss"
	case EventDroppedCrash:
		return "dropped-crash"
	case EventDroppedPartition:
		return "dropped-partition"
	case EventDroppedDown:
		return "dropped-down"
	default:
		return "unknown"
	}
}

// Event is one traced network occurrence.
type Event struct {
	Kind EventKind
	From NodeID
	To   NodeID
	// At is the simulated time of the event (send time for EventSent and
	// drop decisions made at send time; delivery time for
	// EventDelivered and crash drops at delivery).
	At sim.Time
	// SentAt is the send time of the underlying message, so
	// At − SentAt is the transit latency for deliveries.
	SentAt sim.Time
	// Entries is the id count of a batch message (SendBatch) and zero for
	// every single-id message, so trace consumers can weight wire events by
	// payload without a second event stream.
	Entries int32
}

// Tracer consumes network events. Install with Config.Tracer or
// Network.SetTracer; it runs synchronously on the kernel goroutine.
type Tracer func(Event)

// SetTracer installs (or clears, with nil) the event tracer. A full tracer
// sees exact SentAt times on every delivery, which costs the slot-free
// send encoding: every in-flight message parks its metadata in a pooled
// slot while one is installed. Observers that only need event kinds,
// endpoints, and occurrence times — counters and time-series sampling —
// should use SetTracerLite and keep the hot path intact.
func (nw *Network) SetTracer(t Tracer) {
	nw.tracer = t
	nw.traceFull = t != nil
}

// SetTracerLite installs (or clears, with nil) the event tracer WITHOUT
// disabling the slot-free send path: payload-free messages keep riding in
// the event word, so the steady-state send→deliver path still allocates
// nothing. The price is that slot-free deliveries report SentAt equal to
// their delivery time (the send time was never parked anywhere), so
// transit latency is not observable through a lite tracer — kinds,
// endpoints, and At are exact. The observability probes sample their
// virtual-time curves through this seam.
func (nw *Network) SetTracerLite(t Tracer) {
	nw.tracer = t
	nw.traceFull = false
}

// Tracer returns the currently installed tracer (nil when none), so a
// probe can chain an existing tracer rather than displace it.
func (nw *Network) Tracer() Tracer { return nw.tracer }

func (nw *Network) trace(e Event) {
	if nw.tracer != nil {
		nw.tracer(e)
	}
}

// LatencyRecorder is a Tracer that accumulates delivery latency statistics
// and per-destination first-delivery times.
type LatencyRecorder struct {
	// Latency aggregates transit times (seconds) over all deliveries.
	Latency stats.Running
	// FirstDelivery maps each destination to the simulated time of its
	// first delivery.
	FirstDelivery map[NodeID]sim.Time
	// Counts tallies events by kind.
	Counts map[EventKind]int64
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{
		FirstDelivery: map[NodeID]sim.Time{},
		Counts:        map[EventKind]int64{},
	}
}

// Observe implements Tracer.
func (lr *LatencyRecorder) Observe(e Event) {
	lr.Counts[e.Kind]++
	if e.Kind != EventDelivered {
		return
	}
	lr.Latency.Add(e.At.Sub(e.SentAt).Seconds())
	if _, ok := lr.FirstDelivery[e.To]; !ok {
		lr.FirstDelivery[e.To] = e.At
	}
}

// SpreadTime returns the latest first-delivery time (zero when nothing was
// delivered).
func (lr *LatencyRecorder) SpreadTime() time.Duration {
	var max sim.Time
	for _, t := range lr.FirstDelivery {
		if t > max {
			max = t
		}
	}
	return max.Duration()
}
