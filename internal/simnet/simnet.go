package simnet

import (
	"fmt"
	"math"
	"time"

	"gossipkit/internal/bitset"
	"gossipkit/internal/sim"
	"gossipkit/internal/xrand"
)

// NodeID identifies a node in the network, 0..N-1.
type NodeID int

// Message is a network datagram. Tag is a small protocol-defined message
// kind (0 for plain Send); multi-message-type protocols — the baseline
// runtime's gossip pushes, digests, NACKs, and pull replies — dispatch on
// it without boxing a payload (see SendTag).
type Message struct {
	From    NodeID
	To      NodeID
	Tag     int32
	Payload any
}

// Handler consumes a delivered message at simulated time now.
type Handler func(now sim.Time, msg Message)

// LatencyModel draws the one-way delay for a message.
type LatencyModel interface {
	Latency(r *xrand.RNG, from, to NodeID) time.Duration
}

// LatencyBounder is optionally implemented by latency models whose draws
// never exceed a known bound. A network whose model reports a positive
// bound switches the kernel's event queue to the calendar discipline sized
// for that band (sim.Kernel.SetBoundedDelayHint) — the scale lever that
// makes n=10⁷ executions practical. The bound is a performance hint only:
// exceeding it (e.g. after a mid-run SetLatency swap to a heavier model)
// costs throughput, never correctness.
type LatencyBounder interface {
	// LatencyBound returns the maximum delay the model can draw, and
	// whether such a bound exists.
	LatencyBound() (time.Duration, bool)
}

// LatencyFloorer is optionally implemented by latency models whose draws
// never fall below a known minimum. A positive floor is the lookahead
// window of the conservative-PDES sharded runtime: events less than the
// floor apart on different shards cannot influence each other, so shard
// kernels may advance that far in parallel. Models without a positive
// floor keep executions on the single kernel (the sharded runtime falls
// back rather than guessing).
type LatencyFloorer interface {
	// LatencyFloor returns the minimum delay the model can draw, and
	// whether such a floor exists.
	LatencyFloor() (time.Duration, bool)
}

// LossModel decides whether a message is dropped in transit.
type LossModel interface {
	Drop(r *xrand.RNG, from, to NodeID) bool
}

// LossCloner is optionally implemented by loss models carrying mutable
// state (e.g. *GilbertElliott's burst state). The sharded fabric clones
// such a model per shard so concurrent draws neither race nor entangle
// the shards' RNG-independent streams; stateless models are shared.
type LossCloner interface {
	// CloneLoss returns an independent copy starting from the model's
	// current state.
	CloneLoss() LossModel
}

// ---------------------------------------------------------------------------
// Latency models

// ConstantLatency delays every message by D.
type ConstantLatency struct{ D time.Duration }

// Latency implements LatencyModel.
func (c ConstantLatency) Latency(*xrand.RNG, NodeID, NodeID) time.Duration { return c.D }

// LatencyBound implements LatencyBounder.
func (c ConstantLatency) LatencyBound() (time.Duration, bool) { return c.D, true }

// LatencyFloor implements LatencyFloorer.
func (c ConstantLatency) LatencyFloor() (time.Duration, bool) { return c.D, true }

// UniformLatency draws delays uniformly from [Lo, Hi].
type UniformLatency struct{ Lo, Hi time.Duration }

// Latency implements LatencyModel.
func (u UniformLatency) Latency(r *xrand.RNG, _, _ NodeID) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(r.Uint64n(uint64(u.Hi-u.Lo)+1))
}

// LatencyBound implements LatencyBounder.
func (u UniformLatency) LatencyBound() (time.Duration, bool) {
	if u.Hi <= u.Lo {
		return u.Lo, true
	}
	return u.Hi, true
}

// LatencyFloor implements LatencyFloorer.
func (u UniformLatency) LatencyFloor() (time.Duration, bool) { return u.Lo, true }

// ExponentialLatency draws delays from Exp(mean) shifted by Floor, a common
// WAN model (propagation floor plus queueing tail).
type ExponentialLatency struct {
	Floor time.Duration
	Mean  time.Duration // mean of the exponential part
}

// Latency implements LatencyModel.
func (e ExponentialLatency) Latency(r *xrand.RNG, _, _ NodeID) time.Duration {
	return e.Floor + time.Duration(r.ExpFloat64()*float64(e.Mean))
}

// LatencyFloor implements LatencyFloorer.
func (e ExponentialLatency) LatencyFloor() (time.Duration, bool) { return e.Floor, true }

// ---------------------------------------------------------------------------
// Loss models

// NoLoss never drops messages.
type NoLoss struct{}

// Drop implements LossModel.
func (NoLoss) Drop(*xrand.RNG, NodeID, NodeID) bool { return false }

// BernoulliLoss drops each message independently with probability P.
type BernoulliLoss struct{ P float64 }

// Drop implements LossModel.
func (b BernoulliLoss) Drop(r *xrand.RNG, _, _ NodeID) bool { return r.Bool(b.P) }

// GilbertElliott is the classic two-state bursty loss model: the channel
// alternates between a Good state (loss PGood) and a Bad state (loss PBad),
// with transition probabilities PG2B and PB2G evaluated per message.
// State is tracked globally (one channel), matching its use as a shared-
// medium burst model; per-link burst state can be composed externally.
type GilbertElliott struct {
	PG2B, PB2G  float64
	PGood, PBad float64
	bad         bool
}

// NewGilbertElliott returns a Gilbert–Elliott model starting in Good state.
func NewGilbertElliott(pG2B, pB2G, pGood, pBad float64) *GilbertElliott {
	for _, p := range []float64{pG2B, pB2G, pGood, pBad} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("simnet: probability %g outside [0,1]", p))
		}
	}
	return &GilbertElliott{PG2B: pG2B, PB2G: pB2G, PGood: pGood, PBad: pBad}
}

// CloneLoss implements LossCloner: the copy starts from g's current
// channel state and evolves independently.
func (g *GilbertElliott) CloneLoss() LossModel {
	c := *g
	return &c
}

// Drop implements LossModel.
func (g *GilbertElliott) Drop(r *xrand.RNG, _, _ NodeID) bool {
	if g.bad {
		if r.Bool(g.PB2G) {
			g.bad = false
		}
	} else if r.Bool(g.PG2B) {
		g.bad = true
	}
	if g.bad {
		return r.Bool(g.PBad)
	}
	return r.Bool(g.PGood)
}

// ---------------------------------------------------------------------------
// Network

// Stats counts network-level outcomes.
type Stats struct {
	Sent         int64 // Send calls accepted from live nodes
	Delivered    int64 // messages handed to a handler
	DroppedLoss  int64 // lost in transit
	DroppedCrash int64 // destination was crashed (or had no handler) at delivery
	DroppedDown  int64 // discarded at send time: the sender was down (never in Sent)
	DroppedPart  int64 // blocked by a partition
	// BoxedSends counts payload-free messages that fell off the slot-free
	// event-word encoding into a pooled in-flight slot: the tag did not fit
	// below tagLimit, the group was too large to pack (n ≥ 2²⁴), or a full
	// tracer was watching. Boxed sends stay allocation-free in the steady
	// state (slots are recycled) but double the queue's memory traffic, so
	// streaming workloads whose message ids exceed the packed-tag band watch
	// this counter instead of discovering the shift in an alloc profile.
	// It is bookkeeping about Sent messages, not an outcome: boxed sends
	// are already included in Sent and resolve into Delivered or a drop
	// counter like any other.
	BoxedSends int64

	// Batch accounting. A SendBatch call is one wire message — counted once
	// in Sent / Delivered / the drop counters and once in InFlight, exactly
	// like a SendTag — but it carries many id entries, so entry-level
	// conservation (what the streaming ledger reconciles) needs the payload
	// sizes alongside the wire counts. Batches/BatchEntries count accepted
	// batches (subsets of Sent); BatchesDown/BatchEntriesDown send-time
	// discards from down senders (subsets of DroppedDown);
	// BatchesDelivered/BatchEntriesDelivered batches handed to the batch
	// handler (subsets of Delivered). Entries lost in transit are the
	// quiescent difference SentEntries() − DeliveredEntries().
	Batches               int64
	BatchEntries          int64
	BatchesDown           int64
	BatchEntriesDown      int64
	BatchesDelivered      int64
	BatchEntriesDelivered int64
}

// SentEntries returns accepted sends in id-entry units: every non-batch
// message counts 1 and every batch counts its id-slab length. This is the
// send-side term of the streaming ledger's entry conservation; for runs
// without batches it equals Sent.
func (s Stats) SentEntries() int64 { return s.Sent - s.Batches + s.BatchEntries }

// DeliveredEntries returns deliveries in id-entry units (see SentEntries);
// without batches it equals Delivered.
func (s Stats) DeliveredEntries() int64 {
	return s.Delivered - s.BatchesDelivered + s.BatchEntriesDelivered
}

// DownEntries returns send-time down-sender discards in id-entry units
// (see SentEntries); without batches it equals DroppedDown.
func (s Stats) DownEntries() int64 { return s.DroppedDown - s.BatchesDown + s.BatchEntriesDown }

// InFlight returns the number of accepted messages still in transit: sent
// but neither delivered nor dropped. Round-driven protocols use it to
// distinguish "no progress because the spread died" from "no progress yet
// because messages are still airborne" before declaring quiescence. Every
// term is an outcome of an accepted (Sent-counted) message — send-time
// discards from down senders live in DroppedDown precisely so they cannot
// push this below zero.
func (s Stats) InFlight() int64 {
	return s.Sent - s.Delivered - s.DroppedLoss - s.DroppedCrash - s.DroppedPart
}

// Config parameterizes a Network. Zero values mean: zero latency, no loss.
type Config struct {
	Latency LatencyModel
	Loss    LossModel
	// Tracer, if non-nil, observes every network event synchronously.
	Tracer Tracer
}

// inflight is the pooled payload slot of one message in transit. The
// destination rides in the event record itself (its node word); the slot
// holds the rest. Slots are recycled through a free list, so the
// steady-state send→deliver path allocates nothing. slab is the index of
// an id-slab for batch messages (-1 otherwise), leased at send time and
// released when the batch resolves.
type inflight struct {
	from    NodeID
	sentAt  sim.Time
	tag     int32
	slab    int32
	payload any
}

// Network is a simulated message-passing network over n nodes.
// It must be driven from the kernel's goroutine.
type Network struct {
	kernel    *sim.Kernel
	rng       *xrand.RNG
	n         int
	latency   LatencyModel
	loss      LossModel
	all       Handler   // shared handler for every node (RegisterAll)
	handlers  []Handler // per-node handlers, allocated on first Register
	up        bitset.Bits
	partition func(a, b NodeID) bool
	stats     Stats
	tracer    Tracer
	traceFull bool // tracer needs exact SentAt: disable the slot-free path
	packTags  bool // n < 2²⁴: (tag, from) pairs fit a slot-free event word

	deliverID sim.HandlerID
	inflight  []inflight
	freeMsg   []int32

	// allBatch consumes delivered batches (RegisterBatchAll); slabs is the
	// pooled id-slab store batches park their entry lists in between send
	// and delivery, recycled through freeSlab. A slab is leased only for a
	// batch that actually schedules (send-time drops never touch the pool)
	// and released the moment its batch resolves, so at quiescence
	// SlabsInUse is zero.
	allBatch BatchHandler
	slabs    [][]int32
	freeSlab []int32

	// route, when installed, intercepts payload-free sends whose
	// destination lives on another shard (see SetRoute). The single-kernel
	// hot path pays one nil check for the seam. routeBatch is its SendBatch
	// sibling.
	route      func(from, to NodeID, tag int32, sentAt, at sim.Time) bool
	routeBatch func(from, to NodeID, kind int32, ids []int32, sentAt, at sim.Time) bool
}

// BatchHandler consumes a delivered batch message: one wire event carrying
// many message ids of one protocol kind. The ids slice aliases a pooled
// slab that is recycled when the handler returns — consume it during the
// call, never retain it.
type BatchHandler func(now sim.Time, from, to NodeID, kind int32, ids []int32)

// New returns a network of n nodes driven by kernel, with randomness from
// rng (latency jitter and loss draws).
func New(kernel *sim.Kernel, n int, rng *xrand.RNG, cfg Config) *Network {
	if n < 0 || n > math.MaxInt32 {
		panic(fmt.Sprintf("simnet: node count %d outside [0, 2³¹)", n))
	}
	if kernel == nil || rng == nil {
		panic("simnet: nil kernel or rng")
	}
	nw := &Network{}
	nw.Reset(kernel, n, rng, cfg)
	return nw
}

// Reset reinitializes the network in place for a fresh run: all nodes up,
// counters zeroed, handlers and partition cleared, models taken from cfg.
// Pooled buffers (up flags, payload slots) are retained when the node count
// allows, so a run-scoped arena can recycle one network across many
// executions. The kernel must be freshly created or Reset: the network
// registers its delivery handler on it.
func (nw *Network) Reset(kernel *sim.Kernel, n int, rng *xrand.RNG, cfg Config) {
	if n < 0 || n > math.MaxInt32 {
		panic(fmt.Sprintf("simnet: node count %d outside [0, 2³¹)", n))
	}
	if kernel == nil || rng == nil {
		panic("simnet: nil kernel or rng")
	}
	nw.kernel = kernel
	nw.rng = rng
	nw.n = n
	nw.latency = cfg.Latency
	nw.loss = cfg.Loss
	nw.all = nil
	nw.allBatch = nil
	nw.handlers = nil
	nw.partition = nil
	nw.stats = Stats{}
	nw.tracer = cfg.Tracer
	nw.traceFull = cfg.Tracer != nil
	nw.route = nil
	nw.routeBatch = nil
	if nw.latency == nil {
		nw.latency = ConstantLatency{}
	}
	if nw.loss == nil {
		nw.loss = NoLoss{}
	}
	nw.packTags = n < 1<<tagShift
	nw.up.Reset(n)
	nw.up.SetAll()
	for i := range nw.inflight {
		nw.inflight[i] = inflight{}
	}
	nw.inflight = nw.inflight[:0]
	nw.freeMsg = nw.freeMsg[:0]
	nw.freeSlab = nw.freeSlab[:0]
	for i := range nw.slabs {
		nw.slabs[i] = nw.slabs[i][:0]
		nw.freeSlab = append(nw.freeSlab, int32(i))
	}
	nw.deliverID = kernel.RegisterHandler(nw.deliverEvent)
	// A bounded latency band selects the kernel's calendar queue; anything
	// unbounded (or zero) keeps the heap. The pending estimate is n: peak
	// in-flight messages track group size during an epidemic's final
	// rounds (a few per node, and the ring self-grows past estimate).
	if b, ok := nw.latency.(LatencyBounder); ok {
		if d, ok := b.LatencyBound(); ok && d > 0 {
			kernel.SetBoundedDelayHint(d, n)
		}
	}
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.n }

// Kernel returns the driving kernel.
func (nw *Network) Kernel() *sim.Kernel { return nw.kernel }

// Register installs the message handler for id, replacing any previous
// one. After RegisterAll, registering a single node materializes the
// per-node table (every other node keeps the shared handler) so the
// override actually takes effect.
func (nw *Network) Register(id NodeID, h Handler) {
	nw.checkID(id)
	if nw.handlers == nil {
		nw.handlers = make([]Handler, nw.n)
		if nw.all != nil {
			for i := range nw.handlers {
				nw.handlers[i] = nw.all
			}
			nw.all = nil
		}
	}
	nw.handlers[id] = h
}

// RegisterAll installs one handler shared by every node (the delivered
// Message's To field says which node received). It replaces any per-node
// handlers and avoids materializing n per-node closures, which matters at
// n=10⁵..10⁶.
func (nw *Network) RegisterAll(h Handler) {
	nw.all = h
	nw.handlers = nil
}

// RegisterBatchAll installs the handler consuming delivered batches
// (SendBatch wire messages) at every node. Batch delivery is a separate
// dispatch from Message delivery on purpose: the common case registers
// both once per run, and a network without a batch handler drops arriving
// batches as unprocessable (counted DroppedCrash, like a missing Handler).
func (nw *Network) RegisterBatchAll(h BatchHandler) {
	nw.allBatch = h
}

// tagShift positions a message tag above the 24-bit sender id in the
// slot-free event-word encoding: with n < 2²⁴ (well past the n=10⁷
// ceiling), a payload-free tagged message packs (tag, from) into one int32
// and needs no in-flight slot. Tags must stay below tagLimit for the
// packed form; larger tags (or larger networks) fall back to a pooled slot
// transparently.
const (
	tagShift = 24
	tagLimit = 1 << (31 - tagShift) // 7 tag bits keep the word positive
)

// Send queues a message for delivery after the modeled latency. Messages
// from crashed nodes are silently discarded; messages to nodes that are
// crashed at delivery time are dropped (fail-stop: a crashed node never
// processes anything).
func (nw *Network) Send(from, to NodeID, payload any) {
	nw.send(from, to, 0, payload)
}

// SendTag queues a payload-free message carrying a small protocol message
// kind, delivered as Message.Tag. Protocols with several message types
// (data push, digest, NACK, pull reply) stay on the slot-free zero-
// allocation path this way instead of boxing a payload per message.
//
// The slot-free encoding holds only while the (tag, from) pair fits the
// event word: tag < tagLimit (128) and n < 2²⁴. Outside that band — tags
// used as streaming message ids easily exceed it — the message transparently
// parks in a pooled in-flight slot instead: same delivery semantics, same
// zero steady-state allocations, but an extra 24 bytes of queue state per
// airborne message. Stats.BoxedSends counts exactly these fallbacks so the
// shift is observable rather than silent.
func (nw *Network) SendTag(from, to NodeID, tag int32) {
	if tag < 0 {
		panic(fmt.Sprintf("simnet: negative message tag %d", tag))
	}
	nw.send(from, to, tag, nil)
}

func (nw *Network) send(from, to NodeID, tag int32, payload any) {
	nw.checkID(from)
	nw.checkID(to)
	now := nw.kernel.Now()
	if !nw.up.Get(int(from)) {
		nw.stats.DroppedDown++
		nw.trace(Event{Kind: EventDroppedDown, From: from, To: to, At: now, SentAt: now})
		return
	}
	nw.stats.Sent++
	nw.trace(Event{Kind: EventSent, From: from, To: to, At: now, SentAt: now})
	if nw.partition != nil && nw.partition(from, to) {
		nw.stats.DroppedPart++
		nw.trace(Event{Kind: EventDroppedPartition, From: from, To: to, At: now, SentAt: now})
		return
	}
	if nw.loss.Drop(nw.rng, from, to) {
		nw.stats.DroppedLoss++
		nw.trace(Event{Kind: EventDroppedLoss, From: from, To: to, At: now, SentAt: now})
		return
	}
	d := nw.latency.Latency(nw.rng, from, to)
	if d < 0 {
		d = 0
	}
	// A routed (cross-shard) destination: all send-time concerns — sender
	// liveness, Sent count, partition and loss draws, the latency draw —
	// have already been decided here with this shard's RNG; the hook takes
	// over delivery scheduling on the owning shard. Only payload-free
	// messages route (the sharded fabric carries no payloads).
	if nw.route != nil && payload == nil && nw.route(from, to, tag, now, now.Add(d)) {
		return
	}
	// Payload-free messages with no full tracer watching — the entire
	// gossip hot path, including runs observed through a lite tracer —
	// need no in-flight slot: the sender id (and, when the group is small
	// enough to pack, the tag) rides in the event record's payload word
	// (encoded below zero), halving peak queue memory at n=10⁷.
	// Everything else parks (from, sentAt, tag, payload) in a pooled
	// slot.
	if payload == nil && !nw.traceFull && (tag == 0 || (nw.packTags && tag < tagLimit)) {
		nw.kernel.ScheduleAfter(d, nw.deliverID, int32(to), -(int32(from)|tag<<tagShift)-1)
		return
	}
	if payload == nil {
		nw.stats.BoxedSends++
	}
	slot := nw.allocMsg(from, now, tag, payload)
	nw.kernel.ScheduleAfter(d, nw.deliverID, int32(to), slot)
}

// SendBatch queues one wire message carrying every id in ids as a batch of
// protocol kind `kind` — the digest/NACK-set/repair-batch primitive that
// lets a round's gossip cost O(fanout) kernel events instead of O(buffer).
// The batch is one message to the network: one latency and one loss draw,
// one Sent/Delivered/drop count, one traced event — while the entry
// counters (Stats.BatchEntries and friends) carry the id payload sizes so
// entry-level conservation stays exact. The ids slice is copied into a
// pooled slab at send time and the slab is recycled when the batch
// resolves, so callers may reuse their scratch immediately and the steady
// state allocates nothing. An empty ids is a no-op.
func (nw *Network) SendBatch(from, to NodeID, kind int32, ids []int32) {
	if kind < 0 {
		panic(fmt.Sprintf("simnet: negative batch kind %d", kind))
	}
	if len(ids) == 0 {
		return
	}
	nw.checkID(from)
	nw.checkID(to)
	now := nw.kernel.Now()
	k := int64(len(ids))
	if !nw.up.Get(int(from)) {
		nw.stats.DroppedDown++
		nw.stats.BatchesDown++
		nw.stats.BatchEntriesDown += k
		nw.trace(Event{Kind: EventDroppedDown, From: from, To: to, At: now, SentAt: now, Entries: int32(k)})
		return
	}
	nw.stats.Sent++
	nw.stats.Batches++
	nw.stats.BatchEntries += k
	nw.trace(Event{Kind: EventSent, From: from, To: to, At: now, SentAt: now, Entries: int32(k)})
	if nw.partition != nil && nw.partition(from, to) {
		nw.stats.DroppedPart++
		nw.trace(Event{Kind: EventDroppedPartition, From: from, To: to, At: now, SentAt: now, Entries: int32(k)})
		return
	}
	if nw.loss.Drop(nw.rng, from, to) {
		nw.stats.DroppedLoss++
		nw.trace(Event{Kind: EventDroppedLoss, From: from, To: to, At: now, SentAt: now, Entries: int32(k)})
		return
	}
	d := nw.latency.Latency(nw.rng, from, to)
	if d < 0 {
		d = 0
	}
	// Cross-shard batches hand off exactly like cross-shard singles: every
	// send-time decision is already made with this shard's RNG, and the
	// hook copies the ids before returning (no slab is leased here).
	if nw.routeBatch != nil && nw.routeBatch(from, to, kind, ids, now, now.Add(d)) {
		return
	}
	slot := nw.allocBatch(from, now, kind, ids)
	nw.kernel.ScheduleAfter(d, nw.deliverID, int32(to), slot)
}

// SetRoute installs (or clears, with nil) the cross-shard routing hook:
// send consults it after every send-time decision (liveness, Sent count,
// partition, loss, latency draw) for payload-free messages, passing the
// send time and the drawn delivery time; returning true means the hook
// accepted the message for delivery on another shard and this network
// schedules nothing. Install only on sharded fabrics — the hot path cost
// when unset is a single nil check.
func (nw *Network) SetRoute(route func(from, to NodeID, tag int32, sentAt, at sim.Time) bool) {
	nw.route = route
}

// SetRouteBatch installs (or clears, with nil) the cross-shard routing
// hook for batches, the SendBatch counterpart of SetRoute. The hook must
// copy ids before returning: the slice is the caller's scratch, not a
// leased slab.
func (nw *Network) SetRouteBatch(route func(from, to NodeID, kind int32, ids []int32, sentAt, at sim.Time) bool) {
	nw.routeBatch = route
}

// ScheduleArrival schedules delivery of a payload-free message on this
// network's kernel at absolute time at — the entry the sharded fabric
// hands cross-shard messages to their destination shard through at window
// barriers. Send-time accounting (Sent count, loss/partition draws, send
// trace) already happened on the sender's shard; delivery-time outcomes
// (destination crash, delivery-time partition, handler dispatch) are
// decided here as for any local message. Arrivals before the kernel's
// current time are clamped to it.
func (nw *Network) ScheduleArrival(from, to NodeID, tag int32, sentAt, at sim.Time) {
	nw.checkID(from)
	nw.checkID(to)
	if now := nw.kernel.Now(); at < now {
		at = now
	}
	if !nw.traceFull && (tag == 0 || (nw.packTags && tag < tagLimit)) {
		nw.kernel.Schedule(at, nw.deliverID, int32(to), -(int32(from)|tag<<tagShift)-1)
		return
	}
	// A cross-shard message skipped send()'s packing branch on its source
	// shard (the route hook intercepted it first), so the boxing decision —
	// and the BoxedSends count — happens here on the destination shard.
	nw.stats.BoxedSends++
	slot := nw.allocMsg(from, sentAt, tag, nil)
	nw.kernel.Schedule(at, nw.deliverID, int32(to), slot)
}

// ScheduleArrivalBatch is ScheduleArrival for batches: the destination
// shard leases a local slab for the ids (the source shard's scratch is not
// shared across kernels) and schedules delivery at `at`, clamped to now.
// Send-side accounting — including the batch/entry counters — already
// happened on the source shard.
func (nw *Network) ScheduleArrivalBatch(from, to NodeID, kind int32, ids []int32, sentAt, at sim.Time) {
	nw.checkID(from)
	nw.checkID(to)
	if len(ids) == 0 {
		return
	}
	if now := nw.kernel.Now(); at < now {
		at = now
	}
	slot := nw.allocBatch(from, sentAt, kind, ids)
	nw.kernel.Schedule(at, nw.deliverID, int32(to), slot)
}

// allocMsg parks a message's payload in a pooled slot and returns its index.
func (nw *Network) allocMsg(from NodeID, sentAt sim.Time, tag int32, payload any) int32 {
	if n := len(nw.freeMsg); n > 0 {
		idx := nw.freeMsg[n-1]
		nw.freeMsg = nw.freeMsg[:n-1]
		nw.inflight[idx] = inflight{from: from, sentAt: sentAt, tag: tag, slab: -1, payload: payload}
		return idx
	}
	nw.inflight = append(nw.inflight, inflight{from: from, sentAt: sentAt, tag: tag, slab: -1, payload: payload})
	return int32(len(nw.inflight) - 1)
}

// allocBatch parks a batch in a pooled slot, copying its ids into a leased
// slab, and returns the slot index.
func (nw *Network) allocBatch(from NodeID, sentAt sim.Time, kind int32, ids []int32) int32 {
	var slab int32
	if n := len(nw.freeSlab); n > 0 {
		slab = nw.freeSlab[n-1]
		nw.freeSlab = nw.freeSlab[:n-1]
	} else {
		nw.slabs = append(nw.slabs, nil)
		slab = int32(len(nw.slabs) - 1)
	}
	nw.slabs[slab] = append(nw.slabs[slab][:0], ids...)
	if n := len(nw.freeMsg); n > 0 {
		idx := nw.freeMsg[n-1]
		nw.freeMsg = nw.freeMsg[:n-1]
		nw.inflight[idx] = inflight{from: from, sentAt: sentAt, tag: kind, slab: slab}
		return idx
	}
	nw.inflight = append(nw.inflight, inflight{from: from, sentAt: sentAt, tag: kind, slab: slab})
	return int32(len(nw.inflight) - 1)
}

// releaseSlab returns a resolved batch's slab to the pool.
func (nw *Network) releaseSlab(slab int32) {
	nw.freeSlab = append(nw.freeSlab, slab)
}

// SlabsInUse returns the number of leased id-slabs not yet recycled — the
// pool-leak invariant: zero at quiescence, because every scheduled batch
// releases its slab when it resolves (delivery or any delivery-time drop).
func (nw *Network) SlabsInUse() int {
	return len(nw.slabs) - len(nw.freeSlab)
}

// deliverEvent is the typed kernel handler for message arrival: node is the
// destination; payload is an inflight slot index when >= 0, or the encoded
// (tag, sender) of a slot-free payload-nil message when negative. A message
// sent slot-free before a tracer was installed mid-flight reports SentAt
// equal to its delivery time — the only observable difference between the
// two encodings.
func (nw *Network) deliverEvent(now sim.Time, node, slot int32) {
	var m inflight
	if slot < 0 {
		word := -slot - 1
		if nw.packTags {
			m = inflight{from: NodeID(word & (1<<tagShift - 1)), tag: word >> tagShift, sentAt: now, slab: -1}
		} else {
			m = inflight{from: NodeID(word), sentAt: now, slab: -1}
		}
	} else {
		m = nw.inflight[slot]
		nw.inflight[slot].payload = nil // release the payload reference
		nw.freeMsg = append(nw.freeMsg, slot)
	}
	to := NodeID(node)
	if m.slab >= 0 {
		nw.deliverBatch(now, m, to)
		return
	}
	if !nw.up.Get(int(to)) {
		nw.stats.DroppedCrash++
		nw.trace(Event{Kind: EventDroppedCrash, From: m.from, To: to, At: now, SentAt: m.sentAt})
		return
	}
	// A partition severs in-flight traffic too: a message crossing the
	// boundary when the partition forms never arrives.
	if nw.partition != nil && nw.partition(m.from, to) {
		nw.stats.DroppedPart++
		nw.trace(Event{Kind: EventDroppedPartition, From: m.from, To: to, At: now, SentAt: m.sentAt})
		return
	}
	h := nw.all
	if h == nil && nw.handlers != nil {
		h = nw.handlers[to]
	}
	if h == nil {
		nw.stats.DroppedCrash++
		nw.trace(Event{Kind: EventDroppedCrash, From: m.from, To: to, At: now, SentAt: m.sentAt})
		return
	}
	nw.stats.Delivered++
	nw.trace(Event{Kind: EventDelivered, From: m.from, To: to, At: now, SentAt: m.sentAt})
	h(now, Message{From: m.from, To: to, Tag: m.tag, Payload: m.payload})
}

// deliverBatch resolves an arriving batch: the delivery-time outcomes
// mirror deliverEvent's (crash, partition, missing handler), and the slab
// is recycled on every path — after the handler returns on delivery, so
// the handler may issue fresh batches while iterating the ids.
func (nw *Network) deliverBatch(now sim.Time, m inflight, to NodeID) {
	ids := nw.slabs[m.slab]
	k := int32(len(ids))
	if !nw.up.Get(int(to)) {
		nw.stats.DroppedCrash++
		nw.trace(Event{Kind: EventDroppedCrash, From: m.from, To: to, At: now, SentAt: m.sentAt, Entries: k})
		nw.releaseSlab(m.slab)
		return
	}
	if nw.partition != nil && nw.partition(m.from, to) {
		nw.stats.DroppedPart++
		nw.trace(Event{Kind: EventDroppedPartition, From: m.from, To: to, At: now, SentAt: m.sentAt, Entries: k})
		nw.releaseSlab(m.slab)
		return
	}
	if nw.allBatch == nil {
		nw.stats.DroppedCrash++
		nw.trace(Event{Kind: EventDroppedCrash, From: m.from, To: to, At: now, SentAt: m.sentAt, Entries: k})
		nw.releaseSlab(m.slab)
		return
	}
	nw.stats.Delivered++
	nw.stats.BatchesDelivered++
	nw.stats.BatchEntriesDelivered += int64(k)
	nw.trace(Event{Kind: EventDelivered, From: m.from, To: to, At: now, SentAt: m.sentAt, Entries: k})
	nw.allBatch(now, m.from, to, m.tag, ids)
	nw.releaseSlab(m.slab)
}

// Crash marks id as failed: in-flight messages to it will be dropped at
// delivery time and its sends are discarded (fail-stop crash).
func (nw *Network) Crash(id NodeID) {
	nw.checkID(id)
	nw.up.Unset(int(id))
}

// Restart marks id as up again. (The paper's model is crash-stop; Restart
// exists for the membership and failure-detector examples.)
func (nw *Network) Restart(id NodeID) {
	nw.checkID(id)
	nw.up.Set(int(id))
}

// Up reports whether id is currently up.
func (nw *Network) Up(id NodeID) bool {
	nw.checkID(id)
	return nw.up.Get(int(id))
}

// SetPartition installs a predicate blocking communication from a to b when
// it returns true. nil clears the partition.
func (nw *Network) SetPartition(blocked func(a, b NodeID) bool) {
	nw.partition = blocked
}

// SetLoss swaps the loss model mid-run; nil restores no loss. In-flight
// messages already past their loss draw are unaffected, so a loss episode
// applies exactly to the sends issued while it is installed.
func (nw *Network) SetLoss(l LossModel) {
	if l == nil {
		l = NoLoss{}
	}
	nw.loss = l
}

// SetLatency swaps the latency model mid-run; nil restores zero latency.
// Messages already in flight keep their original delivery times.
func (nw *Network) SetLatency(l LatencyModel) {
	if l == nil {
		l = ConstantLatency{}
	}
	nw.latency = l
}

// Fabric is the network-control surface shared by a single *Network and
// the sharded fabric (*ShardedNet): everything fault-injection hooks and
// executors drive mid-run — liveness, partitions, model swaps, counter
// snapshots — without caring how many kernels carry the traffic. All
// methods must be called with the execution quiescent or parked at a
// window barrier (the kernel goroutine for a single network, the control
// context for a sharded one).
type Fabric interface {
	N() int
	Up(id NodeID) bool
	Crash(id NodeID)
	Restart(id NodeID)
	SetPartition(blocked func(a, b NodeID) bool)
	SetLoss(l LossModel)
	SetLatency(l LatencyModel)
	Stats() Stats
	Drained() bool
}

// SplitPartition partitions the nodes into two sides by a membership
// predicate; messages crossing sides are blocked in both directions.
func SplitPartition(inLeft func(NodeID) bool) func(a, b NodeID) bool {
	return func(a, b NodeID) bool { return inLeft(a) != inLeft(b) }
}

// Stats returns a snapshot of the network counters. While the kernel
// still has deliveries pending, the snapshot is a moment-in-time partial
// attribution: Sent counts messages whose delivery-or-drop outcome is not
// yet decided, so InFlight is positive and the drop counters can still
// grow. Final attribution — the state reconciliation tests and the
// scenario summaries rely on — requires quiescence: either the kernel has
// drained (RunAll returned) or Drained reports true.
func (nw *Network) Stats() Stats { return nw.stats }

// Drained reports whether the network is quiescent: every accepted
// message has been delivered or dropped, so Stats is a final attribution
// and InFlight is zero. Mid-run watchers (the scenario stall trigger)
// use it to distinguish "the spread died" from "messages still airborne";
// note it says nothing about pending non-message kernel events.
func (nw *Network) Drained() bool { return nw.stats.InFlight() == 0 }

func (nw *Network) checkID(id NodeID) {
	if id < 0 || int(id) >= nw.n {
		panic(fmt.Sprintf("simnet: node id %d out of range [0,%d)", id, nw.n))
	}
}
