package simnet

import (
	"testing"
	"time"

	"gossipkit/internal/sim"
	"gossipkit/internal/xrand"
)

// TestSendDeliverZeroAlloc is the allocation regression guard on the
// steady-state send→deliver path: once the event queue and payload-slot
// pool are warm, pushing a message through latency + loss draws, the typed
// kernel event, and handler dispatch must not touch the heap at all. This
// is the property that makes n=10⁵..10⁶ executions GC-free.
func TestSendDeliverZeroAlloc(t *testing.T) {
	kernel := sim.New()
	rng := xrand.New(7)
	nw := New(kernel, 64, rng, Config{
		Latency: UniformLatency{Lo: time.Millisecond, Hi: 5 * time.Millisecond},
		Loss:    BernoulliLoss{P: 0.05},
	})
	delivered := 0
	nw.RegisterAll(func(_ sim.Time, _ Message) { delivered++ })

	batch := func() {
		for i := 0; i < 512; i++ {
			nw.Send(NodeID(i%64), NodeID((i*7+1)%64), nil)
		}
		if err := kernel.RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the queue and slot pool; the calendar queue's sliding window
	// must cross its whole bucket ring once before every ring slot has
	// record capacity.
	for kernel.Now() < sim.Time(2*time.Second) {
		batch()
	}
	if allocs := testing.AllocsPerRun(20, batch); allocs != 0 {
		t.Fatalf("steady-state send→deliver allocates %.1f per 512-message batch, want 0", allocs)
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestRegisterOverridesRegisterAll: a per-node Register after RegisterAll
// must take effect for that node while the rest keep the shared handler.
func TestRegisterOverridesRegisterAll(t *testing.T) {
	kernel := sim.New()
	nw := New(kernel, 4, xrand.New(1), Config{})
	var shared, custom int
	nw.RegisterAll(func(_ sim.Time, _ Message) { shared++ })
	nw.Register(2, func(_ sim.Time, _ Message) { custom++ })
	for to := NodeID(1); to < 4; to++ {
		nw.Send(0, to, nil)
	}
	if err := kernel.RunAll(); err != nil {
		t.Fatal(err)
	}
	if custom != 1 || shared != 2 {
		t.Errorf("custom handler fired %d times (want 1), shared %d (want 2)", custom, shared)
	}
}

// TestNetworkReset checks that a Reset network is indistinguishable from a
// fresh one: nodes back up, counters zeroed, partition and handlers
// cleared, and pooled payload slots recycled without leaking payloads.
func TestNetworkReset(t *testing.T) {
	kernel := sim.New()
	rng := xrand.New(7)
	nw := New(kernel, 8, rng, Config{})
	nw.RegisterAll(func(_ sim.Time, _ Message) {})
	nw.Crash(3)
	nw.SetPartition(SplitPartition(func(id NodeID) bool { return id < 4 }))
	nw.Send(0, 1, "payload")
	if err := kernel.RunAll(); err != nil {
		t.Fatal(err)
	}

	kernel.Reset()
	nw.Reset(kernel, 8, rng, Config{})
	if !nw.Up(3) {
		t.Error("Reset left node 3 crashed")
	}
	if s := nw.Stats(); s != (Stats{}) {
		t.Errorf("Reset left stats %+v", s)
	}
	// The old shared handler must be gone: deliveries now drop.
	nw.Send(4, 1, nil) // would have been blocked by the stale partition
	if err := kernel.RunAll(); err != nil {
		t.Fatal(err)
	}
	s := nw.Stats()
	if s.Sent != 1 || s.DroppedPart != 0 || s.DroppedCrash != 1 || s.Delivered != 0 {
		t.Errorf("post-Reset delivery stats %+v", s)
	}
}
