package simnet

import (
	"testing"

	"gossipkit/internal/sim"
	"gossipkit/internal/xrand"
)

// TestSendTagPackedBelowLimit pins the slot-free side of the tag boundary:
// with n < 2²⁴ and tag < tagLimit, a payload-free tagged send rides in the
// event word — no in-flight slot, no BoxedSends count — and still delivers
// the exact tag.
func TestSendTagPackedBelowLimit(t *testing.T) {
	k := sim.New()
	nw := New(k, 4, xrand.New(1), Config{})
	var got []int32
	nw.RegisterAll(func(_ sim.Time, m Message) { got = append(got, m.Tag) })

	for _, tag := range []int32{0, 1, tagLimit - 1} {
		nw.SendTag(0, 1, tag)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(nw.inflight) != 0 {
		t.Errorf("packed sends parked %d in-flight slots, want 0", len(nw.inflight))
	}
	st := nw.Stats()
	if st.BoxedSends != 0 {
		t.Errorf("BoxedSends = %d below the limit, want 0", st.BoxedSends)
	}
	if st.Delivered != 3 || len(got) != 3 {
		t.Fatalf("delivered %d/%d messages, want 3", st.Delivered, len(got))
	}
	want := []int32{0, 1, tagLimit - 1}
	for i, tag := range want {
		if got[i] != tag {
			t.Errorf("delivery %d: tag = %d, want %d", i, got[i], tag)
		}
	}
}

// TestSendTagBoxedAboveLimit pins the fallback side: a tag at or above
// tagLimit cannot pack into the event word, so the message parks in a
// pooled slot, BoxedSends counts it, and the tag still arrives intact —
// the semantics of SendTag are identical on both sides of the boundary.
func TestSendTagBoxedAboveLimit(t *testing.T) {
	k := sim.New()
	nw := New(k, 4, xrand.New(1), Config{})
	var got []int32
	nw.RegisterAll(func(_ sim.Time, m Message) { got = append(got, m.Tag) })

	tags := []int32{tagLimit, tagLimit + 1, 1 << 20}
	for _, tag := range tags {
		nw.SendTag(0, 1, tag)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.BoxedSends != int64(len(tags)) {
		t.Errorf("BoxedSends = %d, want %d", st.BoxedSends, len(tags))
	}
	if st.Delivered != int64(len(tags)) {
		t.Errorf("Delivered = %d, want %d", st.Delivered, len(tags))
	}
	for i, tag := range tags {
		if got[i] != tag {
			t.Errorf("delivery %d: tag = %d, want %d", i, got[i], tag)
		}
	}
	// Boxed sends recycle their slots: after quiescence every slot is free.
	if free, total := len(nw.freeMsg), len(nw.inflight); free != total {
		t.Errorf("slot pool: %d free of %d, want all free at quiescence", free, total)
	}
}

// TestSendTagBoxedLargeGroup pins the group-size side of the boundary:
// with n ≥ 2²⁴ the sender id alone fills the event word, so every nonzero
// tag boxes regardless of its value, while tag 0 (plain Send) stays
// slot-free.
func TestSendTagBoxedLargeGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("2²⁴-node network in -short mode")
	}
	k := sim.New()
	nw := New(k, 1<<24, xrand.New(1), Config{})
	var got []int32
	nw.RegisterAll(func(_ sim.Time, m Message) { got = append(got, m.Tag) })

	if nw.packTags {
		t.Fatalf("packTags = true at n = 2²⁴, want false")
	}
	nw.SendTag(1<<24-1, 3, 1) // small tag, but the group is too large to pack
	nw.SendTag(5, 3, 0)       // tag 0 always rides slot-free
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.BoxedSends != 1 {
		t.Errorf("BoxedSends = %d, want 1 (only the nonzero tag boxes)", st.BoxedSends)
	}
	if st.Delivered != 2 || len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Errorf("deliveries = %v (Delivered %d), want tags [1 0]", got, st.Delivered)
	}
}

// TestBoxedSendsFullTracer: a full tracer disables the slot-free path for
// every payload-free message (exact SentAt needs a slot), and BoxedSends
// reports that too — the counter answers "did my sends leave the packed
// encoding", whatever the cause.
func TestBoxedSendsFullTracer(t *testing.T) {
	k := sim.New()
	nw := New(k, 4, xrand.New(1), Config{})
	nw.RegisterAll(func(sim.Time, Message) {})
	nw.SetTracer(func(Event) {})

	nw.SendTag(0, 1, 1) // packs without the tracer; boxes under it
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if st := nw.Stats(); st.BoxedSends != 1 {
		t.Errorf("BoxedSends = %d under a full tracer, want 1", st.BoxedSends)
	}
}

// TestBoxedSendsCrossShard: a cross-shard arrival's boxing decision happens
// at the destination shard's ScheduleArrival (the route hook intercepts the
// send before the packing branch), so the fabric-summed counter still sees
// exactly the out-of-band tags.
func TestBoxedSendsCrossShard(t *testing.T) {
	sn := NewShardedNet()
	sn.Prepare(2, 4, Config{})
	kernels := []*sim.Kernel{sim.New(), sim.New()}
	for s := 0; s < 2; s++ {
		sn.ResetShard(s, kernels[s], xrand.New(uint64(s)+1))
		sn.Shard(s).RegisterAll(func(sim.Time, Message) {})
	}
	// Member 0 lives on shard 0, member 2 on shard 1: both sends cross.
	sn.Shard(0).SendTag(0, 2, 1)        // packs on arrival
	sn.Shard(0).SendTag(0, 2, tagLimit) // boxes on arrival
	sn.Flush(0)                         // barrier: park arrivals on shard 1
	for _, k := range kernels {
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	st := sn.Stats()
	if st.BoxedSends != 1 {
		t.Errorf("fabric BoxedSends = %d, want 1", st.BoxedSends)
	}
	if st.Delivered != 2 {
		t.Errorf("fabric Delivered = %d, want 2", st.Delivered)
	}
}
