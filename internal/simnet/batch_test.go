package simnet

import (
	"testing"
	"time"

	"gossipkit/internal/sim"
	"gossipkit/internal/xrand"
)

// TestSendBatchDelivery pins the basic batch contract: one SendBatch is one
// wire message (one Sent, one Delivered) while the entry counters carry the
// id payload size, the ids arrive intact and in order, the caller's scratch
// is free for reuse the moment SendBatch returns, and an empty ids slice is
// a complete no-op.
func TestSendBatchDelivery(t *testing.T) {
	k := sim.New()
	nw := New(k, 4, xrand.New(1), Config{})
	type delivery struct {
		from, to NodeID
		kind     int32
		ids      []int32
	}
	var got []delivery
	nw.RegisterBatchAll(func(_ sim.Time, from, to NodeID, kind int32, ids []int32) {
		// ids aliases a pooled slab: copy before retaining.
		got = append(got, delivery{from, to, kind, append([]int32(nil), ids...)})
	})

	scratch := []int32{7, 11, 13, 17}
	nw.SendBatch(0, 1, 2, scratch)
	scratch[0] = -99 // scratch is copied at send time; mutation must not leak
	nw.SendBatch(2, 3, 0, scratch[:1])
	nw.SendBatch(0, 1, 1, nil) // empty: no-op, no counters
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}

	st := nw.Stats()
	if st.Sent != 2 || st.Delivered != 2 {
		t.Errorf("wire counts Sent/Delivered = %d/%d, want 2/2 (one per batch)", st.Sent, st.Delivered)
	}
	if st.Batches != 2 || st.BatchEntries != 5 {
		t.Errorf("Batches/BatchEntries = %d/%d, want 2/5", st.Batches, st.BatchEntries)
	}
	if st.BatchesDelivered != 2 || st.BatchEntriesDelivered != 5 {
		t.Errorf("BatchesDelivered/BatchEntriesDelivered = %d/%d, want 2/5",
			st.BatchesDelivered, st.BatchEntriesDelivered)
	}
	if st.SentEntries() != 5 || st.DeliveredEntries() != 5 {
		t.Errorf("SentEntries/DeliveredEntries = %d/%d, want 5/5", st.SentEntries(), st.DeliveredEntries())
	}
	if len(got) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(got))
	}
	if d := got[0]; d.from != 0 || d.to != 1 || d.kind != 2 ||
		len(d.ids) != 4 || d.ids[0] != 7 || d.ids[1] != 11 || d.ids[2] != 13 || d.ids[3] != 17 {
		t.Errorf("first delivery = %+v, want from=0 to=1 kind=2 ids=[7 11 13 17]", d)
	}
	if d := got[1]; d.kind != 0 || len(d.ids) != 1 || d.ids[0] != -99 {
		t.Errorf("second delivery = %+v, want kind=0 ids=[-99]", d)
	}
	if nw.SlabsInUse() != 0 {
		t.Errorf("SlabsInUse = %d at quiescence, want 0", nw.SlabsInUse())
	}
}

// TestSendBatchHugeIDs pins the tag-boundary independence of the batch
// path: ids far above the packed-tag limit (streaming message ids such as
// 1<<26) ride in the slab, never in the event word, so a batch of them
// costs zero BoxedSends — unlike per-id SendTag, where each would box.
func TestSendBatchHugeIDs(t *testing.T) {
	k := sim.New()
	nw := New(k, 4, xrand.New(1), Config{})
	var got []int32
	nw.RegisterBatchAll(func(_ sim.Time, _, _ NodeID, _ int32, ids []int32) {
		got = append(got, ids...)
	})

	ids := []int32{tagLimit, 1 << 20, 1 << 26, 1<<27 - 1}
	nw.SendBatch(0, 1, 3, ids)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if st := nw.Stats(); st.BoxedSends != 0 {
		t.Errorf("BoxedSends = %d for a batch of huge ids, want 0", st.BoxedSends)
	}
	if len(got) != len(ids) {
		t.Fatalf("delivered %d ids, want %d", len(got), len(ids))
	}
	for i, id := range ids {
		if got[i] != id {
			t.Errorf("id %d: got %d, want %d", i, got[i], id)
		}
	}
}

// TestSendBatchSlabRecycling drives batches through every drop path — down
// sender, partition, loss, crashed destination, missing handler — and
// checks the pool-leak invariant (SlabsInUse == 0 at quiescence), entry
// conservation (accepted entries = delivered entries + entries lost in
// transit), and that sequential batches reuse one slab instead of growing
// the pool.
func TestSendBatchSlabRecycling(t *testing.T) {
	k := sim.New()
	nw := New(k, 4, xrand.New(1), Config{})
	nw.RegisterBatchAll(func(sim.Time, NodeID, NodeID, int32, []int32) {})
	ids := []int32{1, 2, 3}

	// Send-time drops never lease a slab.
	nw.Crash(0)
	nw.SendBatch(0, 1, 0, ids) // down sender
	nw.Restart(0)
	if len(nw.slabs) != 0 {
		t.Errorf("down-sender batch leased a slab (pool size %d), want none", len(nw.slabs))
	}
	nw.SetLoss(BernoulliLoss{P: 1})
	nw.SendBatch(0, 1, 0, ids) // lost in transit (send-time draw)
	nw.SetLoss(nil)
	nw.SetPartition(func(a, b NodeID) bool { return true })
	nw.SendBatch(0, 1, 0, ids) // partitioned at send time
	nw.SetPartition(nil)
	if len(nw.slabs) != 0 {
		t.Errorf("send-time drops leased slabs (pool size %d), want none", len(nw.slabs))
	}

	// Delivery-time drop: destination crashes while the batch is airborne.
	nw.SendBatch(0, 2, 0, ids)
	nw.Crash(2)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if nw.SlabsInUse() != 0 {
		t.Errorf("SlabsInUse = %d after a delivery-time drop, want 0", nw.SlabsInUse())
	}

	// Sequential delivered batches recycle one slab.
	for i := 0; i < 50; i++ {
		nw.SendBatch(0, 1, 0, ids)
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	if nw.SlabsInUse() != 0 {
		t.Errorf("SlabsInUse = %d at quiescence, want 0", nw.SlabsInUse())
	}
	if len(nw.slabs) > 1 {
		t.Errorf("slab pool grew to %d across sequential batches, want 1 recycled slab", len(nw.slabs))
	}

	st := nw.Stats()
	accepted := st.Batches // down-sender batch excluded
	if st.BatchesDown != 1 || st.BatchEntriesDown != 3 {
		t.Errorf("BatchesDown/BatchEntriesDown = %d/%d, want 1/3", st.BatchesDown, st.BatchEntriesDown)
	}
	if accepted != 53 || st.BatchEntries != 53*3 {
		t.Errorf("Batches/BatchEntries = %d/%d, want 53/159", accepted, st.BatchEntries)
	}
	// Entry conservation at quiescence: accepted − delivered = lost in
	// transit (one loss draw, one partition, one crashed destination).
	lost := st.SentEntries() - st.DeliveredEntries()
	if lost != 9 {
		t.Errorf("entries lost in transit = %d, want 9 (3 batches of 3)", lost)
	}
	if st.DeliveredEntries() != 50*3 {
		t.Errorf("DeliveredEntries = %d, want 150", st.DeliveredEntries())
	}
}

// TestSendBatchNoHandler: a batch arriving at a network without a
// registered batch handler is unprocessable — dropped like a delivery to a
// crashed node — and its slab is still recycled.
func TestSendBatchNoHandler(t *testing.T) {
	k := sim.New()
	nw := New(k, 2, xrand.New(1), Config{})
	nw.RegisterAll(func(sim.Time, Message) {}) // message handler only
	nw.SendBatch(0, 1, 0, []int32{1, 2})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.DroppedCrash != 1 || st.BatchesDelivered != 0 {
		t.Errorf("DroppedCrash/BatchesDelivered = %d/%d, want 1/0", st.DroppedCrash, st.BatchesDelivered)
	}
	if nw.SlabsInUse() != 0 {
		t.Errorf("SlabsInUse = %d after an unhandled batch, want 0", nw.SlabsInUse())
	}
}

// TestSendBatchReentrant: a batch handler may send fresh batches while
// iterating its (pooled) ids slice — the slab is released only after the
// handler returns, so the relay's payload cannot be overwritten mid-flight.
func TestSendBatchReentrant(t *testing.T) {
	k := sim.New()
	nw := New(k, 3, xrand.New(1), Config{})
	var final []int32
	nw.RegisterBatchAll(func(_ sim.Time, _, to NodeID, kind int32, ids []int32) {
		if to == 1 { // relay: forward the batch we are iterating
			nw.SendBatch(1, 2, kind, ids)
			return
		}
		final = append(final, ids...)
	})
	want := []int32{5, 6, 7, 8}
	nw.SendBatch(0, 1, 0, want)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(final) != len(want) {
		t.Fatalf("relayed batch delivered %d ids, want %d", len(final), len(want))
	}
	for i, id := range want {
		if final[i] != id {
			t.Errorf("relayed id %d: got %d, want %d", i, final[i], id)
		}
	}
	if nw.SlabsInUse() != 0 {
		t.Errorf("SlabsInUse = %d at quiescence, want 0", nw.SlabsInUse())
	}
}

// TestSendBatchCrossShard: a batch whose destination lives on another
// shard crosses through the per-pair id buffers at the barrier, arrives
// with its ids intact, and the fabric-summed stats and slab invariant hold
// across shards.
func TestSendBatchCrossShard(t *testing.T) {
	sn := NewShardedNet()
	sn.Prepare(2, 4, Config{Latency: ConstantLatency{D: time.Millisecond}})
	kernels := []*sim.Kernel{sim.New(), sim.New()}
	var got []int32
	var gotKind int32 = -1
	for s := 0; s < 2; s++ {
		sn.ResetShard(s, kernels[s], xrand.New(uint64(s)+1))
		sn.Shard(s).RegisterBatchAll(func(_ sim.Time, from, to NodeID, kind int32, ids []int32) {
			gotKind = kind
			got = append(got, ids...)
		})
	}
	// Member 0 lives on shard 0, member 2 on shard 1: the batch crosses.
	want := []int32{3, 1 << 26, 41}
	sn.Shard(0).SendBatch(0, 2, 1, want)
	sn.Flush(0) // barrier: park the arrival on shard 1
	for _, k := range kernels {
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	if gotKind != 1 {
		t.Errorf("cross-shard batch kind = %d, want 1", gotKind)
	}
	if len(got) != len(want) {
		t.Fatalf("cross-shard batch delivered %d ids, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i] != id {
			t.Errorf("cross-shard id %d: got %d, want %d", i, got[i], id)
		}
	}
	st := sn.Stats()
	if st.Batches != 1 || st.BatchEntries != 3 || st.BatchesDelivered != 1 || st.BatchEntriesDelivered != 3 {
		t.Errorf("fabric batch stats = %+v, want 1 batch of 3 entries sent and delivered", st)
	}
	if st.SentEntries() != 3 || st.DeliveredEntries() != 3 {
		t.Errorf("fabric SentEntries/DeliveredEntries = %d/%d, want 3/3", st.SentEntries(), st.DeliveredEntries())
	}
	if sn.SlabsInUse() != 0 {
		t.Errorf("fabric SlabsInUse = %d at quiescence, want 0", sn.SlabsInUse())
	}
}
