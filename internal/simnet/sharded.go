package simnet

import (
	"fmt"

	"gossipkit/internal/sim"
	"gossipkit/internal/xrand"
)

// crossMsg is one cross-shard message parked in a per-(src,dst) buffer
// between its send and the next window barrier. 40 bytes, value-typed:
// buffering and flushing never touch the garbage collector. A batch
// message (idLen > 0) keeps its ids out of line in the pair's flat id
// buffer at [idOff, idOff+idLen); tag then holds the batch kind.
type crossMsg struct {
	sentAt sim.Time
	at     sim.Time
	from   int32
	to     int32
	tag    int32
	idOff  int32
	idLen  int32
	_      int32 // pad to 40 bytes
}

// ShardedNet is the sharded fabric: one *Network per shard kernel, member
// ids partitioned into contiguous blocks (owner(id) = id / blockSize), and
// per-(src,dst) buffers carrying cross-shard messages between window
// barriers. Each buffer has exactly one producer — the source shard's
// goroutine during a window — and is drained by the coordinator at the
// barrier while every worker is parked, so plain slices suffice (the
// ShardGroup's channel handoff is the memory barrier). Flush drains the
// buffers in (dst, src) order, which makes the interleaving — and thus
// the whole execution — deterministic for a fixed shard count.
//
// Per-shard state is authoritative only for the shard's own block: a
// shard's up-bitset is consulted for local senders and local delivery
// targets only, and the Fabric methods route by owner. Mutable loss
// models are cloned per shard (LossCloner); each shard draws loss and
// latency from its own RNG stream.
type ShardedNet struct {
	n      int
	shards int
	block  int
	nets   []*Network
	cfgs   []Config // per-shard configs (loss cloned), built by Prepare
	bufs   [][]crossMsg
	ids    [][]int32 // per-(src,dst) flat id storage for buffered batches
}

// NewShardedNet returns an empty sharded fabric; Prepare sizes it.
func NewShardedNet() *ShardedNet { return &ShardedNet{} }

// Prepare sizes the fabric for a run over n members on `shards` shards
// and derives the per-shard configs from cfg, cloning stateful loss
// models so shards never share mutable model state. Call once per run,
// before the per-shard ResetShard calls. cfg.Tracer must be nil: a single
// tracer callback cannot observe concurrent shards (probes attach their
// own per-shard tracers instead).
func (sn *ShardedNet) Prepare(shards, n int, cfg Config) {
	if shards < 1 {
		panic(fmt.Sprintf("simnet: shard count %d < 1", shards))
	}
	if n < shards {
		panic(fmt.Sprintf("simnet: %d members across %d shards", n, shards))
	}
	if cfg.Tracer != nil && shards > 1 {
		panic("simnet: a shared Config.Tracer cannot observe a sharded run")
	}
	sn.n = n
	sn.shards = shards
	sn.block = (n + shards - 1) / shards
	if cap(sn.nets) < shards {
		sn.nets = append(sn.nets[:cap(sn.nets)], make([]*Network, shards-cap(sn.nets))...)
		sn.cfgs = append(sn.cfgs[:cap(sn.cfgs)], make([]Config, shards-cap(sn.cfgs))...)
	}
	sn.nets = sn.nets[:shards]
	sn.cfgs = sn.cfgs[:shards]
	for s := range sn.cfgs {
		c := cfg
		if cloner, ok := cfg.Loss.(LossCloner); ok {
			c.Loss = cloner.CloneLoss()
		}
		sn.cfgs[s] = c
	}
	if cap(sn.bufs) < shards*shards {
		sn.bufs = make([][]crossMsg, shards*shards)
	}
	sn.bufs = sn.bufs[:shards*shards]
	for i := range sn.bufs {
		sn.bufs[i] = sn.bufs[i][:0]
	}
	if cap(sn.ids) < shards*shards {
		sn.ids = make([][]int32, shards*shards)
	}
	sn.ids = sn.ids[:shards*shards]
	for i := range sn.ids {
		sn.ids[i] = sn.ids[i][:0]
	}
}

// ResetShard (re)initializes shard s's network on its kernel and installs
// the cross-shard route hook. It touches only shard-s state, so the
// executor calls it from each shard's own worker goroutine (first-touch
// locality of the per-shard bitsets and pools). The kernel must be
// freshly Reset.
func (sn *ShardedNet) ResetShard(s int, kernel *sim.Kernel, rng *xrand.RNG) {
	if sn.nets[s] == nil {
		sn.nets[s] = New(kernel, sn.n, rng, sn.cfgs[s])
	} else {
		sn.nets[s].Reset(kernel, sn.n, rng, sn.cfgs[s])
	}
	if sn.shards == 1 {
		return // no cross-shard traffic: keep the hot path seam empty
	}
	shards, block := sn.shards, sn.block
	bufs := sn.bufs[s*shards : (s+1)*shards]
	idbufs := sn.ids[s*shards : (s+1)*shards]
	sn.nets[s].SetRoute(func(from, to NodeID, tag int32, sentAt, at sim.Time) bool {
		d := int(to) / block
		if d == s {
			return false
		}
		bufs[d] = append(bufs[d], crossMsg{
			sentAt: sentAt, at: at, from: int32(from), to: int32(to), tag: tag,
		})
		return true
	})
	sn.nets[s].SetRouteBatch(func(from, to NodeID, kind int32, ids []int32, sentAt, at sim.Time) bool {
		d := int(to) / block
		if d == s {
			return false
		}
		off := int32(len(idbufs[d]))
		idbufs[d] = append(idbufs[d], ids...)
		bufs[d] = append(bufs[d], crossMsg{
			sentAt: sentAt, at: at, from: int32(from), to: int32(to), tag: kind,
			idOff: off, idLen: int32(len(ids)),
		})
		return true
	})
}

// Flush drains every cross-shard buffer into the destination shards'
// kernels. Call only at a window barrier (all workers parked), with wend
// the window's end time: arrivals are clamped to wend, which can only
// engage when a mid-run SetLatency swap lowered the floor below the
// lookahead the run was windowed with (a documented deviation — the
// message arrives at the barrier instead of inside the closed window).
func (sn *ShardedNet) Flush(wend sim.Time) {
	for dst := 0; dst < sn.shards; dst++ {
		nw := sn.nets[dst]
		for src := 0; src < sn.shards; src++ {
			pair := src*sn.shards + dst
			buf := sn.bufs[pair]
			if len(buf) == 0 {
				continue
			}
			ids := sn.ids[pair]
			for _, m := range buf {
				at := m.at
				if at < wend {
					at = wend
				}
				if m.idLen > 0 {
					nw.ScheduleArrivalBatch(NodeID(m.from), NodeID(m.to), m.tag,
						ids[m.idOff:m.idOff+m.idLen], m.sentAt, at)
					continue
				}
				nw.ScheduleArrival(NodeID(m.from), NodeID(m.to), m.tag, m.sentAt, at)
			}
			sn.bufs[pair] = buf[:0]
			sn.ids[pair] = ids[:0]
		}
	}
}

// Buffered returns the number of cross-shard messages parked for the next
// barrier. Zero at every barrier after Flush and at quiescence.
func (sn *ShardedNet) Buffered() int {
	total := 0
	for _, b := range sn.bufs {
		total += len(b)
	}
	return total
}

// Owner returns the shard owning id's block.
func (sn *ShardedNet) Owner(id NodeID) int { return int(id) / sn.block }

// Block returns the member-id block size (shard s owns
// [s·Block, min((s+1)·Block, N))).
func (sn *ShardedNet) Block() int { return sn.block }

// Shards returns the shard count.
func (sn *ShardedNet) Shards() int { return sn.shards }

// Shard returns shard s's network (senders local to s emit through it).
func (sn *ShardedNet) Shard(s int) *Network { return sn.nets[s] }

// N implements Fabric.
func (sn *ShardedNet) N() int { return sn.n }

// Up implements Fabric, consulting the owning shard's authoritative bit.
func (sn *ShardedNet) Up(id NodeID) bool { return sn.nets[sn.Owner(id)].Up(id) }

// Crash implements Fabric on the owning shard.
func (sn *ShardedNet) Crash(id NodeID) { sn.nets[sn.Owner(id)].Crash(id) }

// Restart implements Fabric on the owning shard.
func (sn *ShardedNet) Restart(id NodeID) { sn.nets[sn.Owner(id)].Restart(id) }

// SetPartition implements Fabric: every shard consults the same predicate,
// which must therefore be pure (SplitPartition closures are).
func (sn *ShardedNet) SetPartition(blocked func(a, b NodeID) bool) {
	for _, nw := range sn.nets {
		nw.SetPartition(blocked)
	}
}

// SetLoss implements Fabric, cloning stateful models per shard exactly as
// Prepare does for the initial model.
func (sn *ShardedNet) SetLoss(l LossModel) {
	for _, nw := range sn.nets {
		m := l
		if cloner, ok := l.(LossCloner); ok {
			m = cloner.CloneLoss()
		}
		nw.SetLoss(m)
	}
}

// SetLatency implements Fabric. Latency models are value-typed and
// stateless, so every shard shares the swapped model. Swapping to a model
// whose floor is below the run's lookahead does not break causality —
// cross-shard arrivals inside an already-open window are clamped to the
// next barrier (see Flush).
func (sn *ShardedNet) SetLatency(l LatencyModel) {
	for _, nw := range sn.nets {
		nw.SetLatency(l)
	}
}

// Stats implements Fabric: the sum of the per-shard counters. Each
// cross-shard message is Sent-counted on its source shard and resolved
// (delivered or dropped) on its destination shard, so per-shard InFlight
// is meaningless but the sum — including messages still parked in
// cross-shard buffers — is exact.
func (sn *ShardedNet) Stats() Stats {
	var total Stats
	for _, nw := range sn.nets {
		s := nw.Stats()
		total.Sent += s.Sent
		total.Delivered += s.Delivered
		total.DroppedLoss += s.DroppedLoss
		total.DroppedCrash += s.DroppedCrash
		total.DroppedDown += s.DroppedDown
		total.DroppedPart += s.DroppedPart
		total.BoxedSends += s.BoxedSends
		total.Batches += s.Batches
		total.BatchEntries += s.BatchEntries
		total.BatchesDown += s.BatchesDown
		total.BatchEntriesDown += s.BatchEntriesDown
		total.BatchesDelivered += s.BatchesDelivered
		total.BatchEntriesDelivered += s.BatchEntriesDelivered
	}
	return total
}

// SlabsInUse returns leased-but-unreturned id-slabs summed over the
// shards — zero at quiescence, like the single-network invariant.
func (sn *ShardedNet) SlabsInUse() int {
	total := 0
	for _, nw := range sn.nets {
		total += nw.SlabsInUse()
	}
	return total
}

// Drained implements Fabric: no accepted message is airborne on any shard
// or parked in a cross-shard buffer.
func (sn *ShardedNet) Drained() bool {
	return sn.Stats().InFlight() == 0 && sn.Buffered() == 0
}
