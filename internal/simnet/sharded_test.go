package simnet

import (
	"testing"
	"time"

	"gossipkit/internal/sim"
	"gossipkit/internal/xrand"
)

// Both network shapes implement the fabric control surface.
var (
	_ Fabric = (*Network)(nil)
	_ Fabric = (*ShardedNet)(nil)
)

// newTestShardedNet builds a 2-shard fabric over 8 members (block 4) with
// fresh kernels, returning the fabric and its kernels.
func newTestShardedNet(t *testing.T, cfg Config) (*ShardedNet, []*sim.Kernel) {
	t.Helper()
	sn := NewShardedNet()
	sn.Prepare(2, 8, cfg)
	kernels := []*sim.Kernel{sim.New(), sim.New()}
	for s, k := range kernels {
		sn.ResetShard(s, k, xrand.New(uint64(100+s)))
	}
	return sn, kernels
}

func TestShardedNetCrossShardDelivery(t *testing.T) {
	sn, kernels := newTestShardedNet(t, Config{Latency: ConstantLatency{D: 5 * time.Millisecond}})
	var got []Message
	sn.Shard(1).RegisterAll(func(_ sim.Time, m Message) { got = append(got, m) })

	// 0 (shard 0) → 5 (shard 1): send-time accounting lands on shard 0,
	// the message parks in the cross buffer until the barrier.
	sn.Shard(0).Send(0, 5, nil)
	if s := sn.Shard(0).Stats(); s.Sent != 1 {
		t.Fatalf("source shard Sent = %d, want 1", s.Sent)
	}
	if sn.Buffered() != 1 {
		t.Fatalf("Buffered = %d, want 1", sn.Buffered())
	}
	if kernels[1].Pending() != 0 {
		t.Fatalf("destination kernel has %d events before the barrier", kernels[1].Pending())
	}
	if sn.Drained() {
		t.Fatal("Drained true with a buffered cross-shard message")
	}

	sn.Flush(sim.Time(5 * time.Millisecond))
	if sn.Buffered() != 0 {
		t.Fatalf("Buffered = %d after Flush, want 0", sn.Buffered())
	}
	if err := kernels[1].RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].From != 0 || got[0].To != 5 {
		t.Fatalf("delivered %+v, want one message 0→5", got)
	}
	if now := kernels[1].Now(); now != sim.Time(5*time.Millisecond) {
		t.Fatalf("delivered at %v, want the drawn latency 5ms", now)
	}
	total := sn.Stats()
	if total.Sent != 1 || total.Delivered != 1 || total.InFlight() != 0 {
		t.Fatalf("aggregate stats %+v", total)
	}
	if !sn.Drained() {
		t.Fatal("Drained false after delivery")
	}
}

func TestShardedNetCrossShardCrashDrop(t *testing.T) {
	sn, kernels := newTestShardedNet(t, Config{Latency: ConstantLatency{D: time.Millisecond}})
	sn.Shard(1).RegisterAll(func(sim.Time, Message) { t.Fatal("delivered to crashed node") })
	sn.Shard(0).Send(1, 6, nil)
	sn.Crash(6) // fabric routes to the owning shard
	if sn.Up(6) {
		t.Fatal("node 6 still up after Crash")
	}
	sn.Flush(sim.Time(time.Millisecond))
	if err := kernels[1].RunAll(); err != nil {
		t.Fatal(err)
	}
	total := sn.Stats()
	if total.Sent != 1 || total.DroppedCrash != 1 || total.InFlight() != 0 {
		t.Fatalf("aggregate stats %+v", total)
	}
}

func TestShardedNetLocalSendStaysLocal(t *testing.T) {
	sn, kernels := newTestShardedNet(t, Config{Latency: ConstantLatency{D: time.Millisecond}})
	delivered := 0
	sn.Shard(0).RegisterAll(func(sim.Time, Message) { delivered++ })
	sn.Shard(0).Send(0, 3, nil) // both in shard 0's block
	if sn.Buffered() != 0 {
		t.Fatalf("local send buffered cross-shard: %d", sn.Buffered())
	}
	if err := kernels[0].RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
}

func TestShardedNetFlushClampsEarlyArrivals(t *testing.T) {
	sn, kernels := newTestShardedNet(t, Config{Latency: UniformLatency{Lo: 2 * time.Millisecond, Hi: 8 * time.Millisecond}})
	var at sim.Time
	sn.Shard(1).RegisterAll(func(now sim.Time, _ Message) { at = now })
	sn.Shard(0).Send(2, 7, nil)
	// A latency swap below the run's lookahead can leave a buffered
	// arrival before the barrier; Flush clamps it to the window end.
	wend := sim.Time(20 * time.Millisecond)
	sn.Flush(wend)
	if err := kernels[1].RunAll(); err != nil {
		t.Fatal(err)
	}
	if at < wend {
		t.Fatalf("arrival at %v before the flush barrier %v", at, wend)
	}
}

func TestShardedNetClonesStatefulLoss(t *testing.T) {
	ge := NewGilbertElliott(0.5, 0.5, 0.1, 0.9)
	sn, _ := newTestShardedNet(t, Config{Latency: ConstantLatency{D: time.Millisecond}, Loss: ge})
	if sn.cfgs[0].Loss == LossModel(ge) || sn.cfgs[1].Loss == LossModel(ge) ||
		sn.cfgs[0].Loss == sn.cfgs[1].Loss {
		t.Fatal("stateful loss model shared instead of cloned per shard")
	}
	// SetLoss mid-run clones again.
	sn.SetLoss(ge)
	if sn.nets[0].loss == sn.nets[1].loss {
		t.Fatal("SetLoss shared one stateful model across shards")
	}
	// Stateless models are shared as-is.
	sn.SetLoss(BernoulliLoss{P: 0.25})
	if sn.nets[0].loss != LossModel(BernoulliLoss{P: 0.25}) {
		t.Fatal("stateless loss model not installed")
	}
}

func TestGilbertElliottCloneLoss(t *testing.T) {
	g := NewGilbertElliott(1, 0, 0, 1) // jumps to Bad on first draw, stays
	r := xrand.New(7)
	g.Drop(r, 0, 1)
	c := g.CloneLoss().(*GilbertElliott)
	if c == g {
		t.Fatal("CloneLoss returned the receiver")
	}
	if c.bad != g.bad {
		t.Fatal("CloneLoss did not copy the channel state")
	}
	c.bad = false
	if !g.bad {
		t.Fatal("clone state aliases the original")
	}
}

func TestScheduleArrivalClampsToNow(t *testing.T) {
	k := sim.New()
	nw := New(k, 4, xrand.New(1), Config{})
	var at sim.Time
	nw.RegisterAll(func(now sim.Time, _ Message) { at = now })
	k.At(sim.Time(10*time.Millisecond), func() {
		nw.ScheduleArrival(0, 1, 0, 0, sim.Time(2*time.Millisecond))
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != sim.Time(10*time.Millisecond) {
		t.Fatalf("arrival at %v, want clamped to 10ms", at)
	}
}

func TestLatencyFloors(t *testing.T) {
	cases := []struct {
		model LatencyModel
		want  time.Duration
	}{
		{ConstantLatency{D: 3 * time.Millisecond}, 3 * time.Millisecond},
		{UniformLatency{Lo: time.Millisecond, Hi: 9 * time.Millisecond}, time.Millisecond},
		{ExponentialLatency{Floor: 2 * time.Millisecond, Mean: time.Millisecond}, 2 * time.Millisecond},
	}
	for _, c := range cases {
		f, ok := c.model.(LatencyFloorer)
		if !ok {
			t.Fatalf("%T does not implement LatencyFloorer", c.model)
		}
		if d, ok := f.LatencyFloor(); !ok || d != c.want {
			t.Fatalf("%T floor = %v/%v, want %v", c.model, d, ok, c.want)
		}
	}
}
