package simnet

import (
	"math"
	"testing"
	"time"

	"gossipkit/internal/sim"
	"gossipkit/internal/xrand"
)

func TestTracerSeesAllEventKinds(t *testing.T) {
	k := sim.New()
	rec := NewLatencyRecorder()
	nw := New(k, 4, xrand.New(1), Config{
		Latency: ConstantLatency{D: 5 * time.Millisecond},
		Tracer:  rec.Observe,
	})
	nw.Register(1, func(sim.Time, Message) {})
	// Delivered.
	nw.Send(0, 1, "a")
	// Crash drop at delivery.
	nw.Send(0, 2, "b")
	// Partition drop.
	nw.SetPartition(SplitPartition(func(id NodeID) bool { return id < 2 }))
	nw.Send(0, 3, "c")
	nw.SetPartition(nil)
	// Crashed sender.
	nw.Crash(3)
	nw.Send(3, 1, "d")
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if rec.Counts[EventDelivered] != 1 {
		t.Errorf("delivered events = %d", rec.Counts[EventDelivered])
	}
	if rec.Counts[EventSent] != 3 { // the crashed sender's is not "sent"
		t.Errorf("sent events = %d", rec.Counts[EventSent])
	}
	if rec.Counts[EventDroppedCrash] != 1 { // no-handler drop at delivery
		t.Errorf("crash drops = %d", rec.Counts[EventDroppedCrash])
	}
	if rec.Counts[EventDroppedDown] != 1 { // crashed sender, discarded at send
		t.Errorf("down drops = %d", rec.Counts[EventDroppedDown])
	}
	if rec.Counts[EventDroppedPartition] != 1 {
		t.Errorf("partition drops = %d", rec.Counts[EventDroppedPartition])
	}
	// Per-kind trace counts must reconcile with the Stats counters.
	st := nw.Stats()
	if rec.Counts[EventDroppedCrash] != st.DroppedCrash ||
		rec.Counts[EventDroppedDown] != st.DroppedDown ||
		rec.Counts[EventDroppedPartition] != st.DroppedPart ||
		rec.Counts[EventSent] != st.Sent {
		t.Errorf("trace counts %v do not reconcile with stats %+v", rec.Counts, st)
	}
}

func TestLiteTracerKeepsSlotFreeEncoding(t *testing.T) {
	// A lite tracer must see every event kind with exact At times, while
	// slot-free deliveries report SentAt == At (the encoding's documented
	// degradation). A full tracer on the same run sees the true SentAt.
	run := func(install func(nw *Network, tr Tracer)) (counts map[EventKind]int64, sentAt, at sim.Time) {
		k := sim.New()
		nw := New(k, 2, xrand.New(1), Config{Latency: ConstantLatency{D: 7 * time.Millisecond}})
		counts = map[EventKind]int64{}
		install(nw, func(e Event) {
			counts[e.Kind]++
			if e.Kind == EventDelivered {
				sentAt, at = e.SentAt, e.At
			}
		})
		nw.Register(1, func(sim.Time, Message) {})
		nw.SendTag(0, 1, 3)
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
		return counts, sentAt, at
	}
	lite, liteSent, liteAt := run(func(nw *Network, tr Tracer) { nw.SetTracerLite(tr) })
	full, fullSent, fullAt := run(func(nw *Network, tr Tracer) { nw.SetTracer(tr) })
	for _, c := range []map[EventKind]int64{lite, full} {
		if c[EventSent] != 1 || c[EventDelivered] != 1 {
			t.Fatalf("event counts = %v", c)
		}
	}
	if liteAt != sim.Time(7*time.Millisecond) || fullAt != liteAt {
		t.Errorf("delivery At: lite %v full %v", liteAt, fullAt)
	}
	if liteSent != liteAt {
		t.Errorf("lite SentAt %v, want delivery time %v (slot-free encoding)", liteSent, liteAt)
	}
	if fullSent != 0 {
		t.Errorf("full SentAt %v, want 0", fullSent)
	}
}

func TestDrained(t *testing.T) {
	k := sim.New()
	nw := New(k, 2, xrand.New(1), Config{Latency: ConstantLatency{D: time.Millisecond}})
	nw.Register(1, func(sim.Time, Message) {})
	if !nw.Drained() {
		t.Error("fresh network not drained")
	}
	nw.Send(0, 1, nil)
	if nw.Drained() {
		t.Error("drained with a message in flight")
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !nw.Drained() {
		t.Error("not drained after RunAll")
	}
}

func TestLatencyRecorderMeasuresTransit(t *testing.T) {
	k := sim.New()
	rec := NewLatencyRecorder()
	nw := New(k, 2, xrand.New(1), Config{
		Latency: ConstantLatency{D: 30 * time.Millisecond},
		Tracer:  rec.Observe,
	})
	nw.Register(1, func(sim.Time, Message) {})
	for i := 0; i < 10; i++ {
		nw.Send(0, 1, i)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if rec.Latency.N() != 10 {
		t.Fatalf("latency samples = %d", rec.Latency.N())
	}
	if math.Abs(rec.Latency.Mean()-0.030) > 1e-9 {
		t.Errorf("mean latency %.6fs, want 0.030", rec.Latency.Mean())
	}
	if rec.SpreadTime() != 30*time.Millisecond {
		t.Errorf("spread time %v", rec.SpreadTime())
	}
}

func TestLatencyRecorderFirstDeliveryOnly(t *testing.T) {
	k := sim.New()
	rec := NewLatencyRecorder()
	nw := New(k, 2, xrand.New(1), Config{Tracer: rec.Observe})
	nw.Register(1, func(sim.Time, Message) {})
	nw.Send(0, 1, "first")
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	first := rec.FirstDelivery[1]
	// Advance time, deliver again; FirstDelivery must not move.
	k.After(time.Second, func() { nw.Send(0, 1, "second") })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if rec.FirstDelivery[1] != first {
		t.Error("first delivery time moved")
	}
	if rec.Counts[EventDelivered] != 2 {
		t.Errorf("delivered = %d", rec.Counts[EventDelivered])
	}
}

func TestSetTracerDynamically(t *testing.T) {
	k := sim.New()
	nw := New(k, 2, xrand.New(1), Config{})
	nw.Register(1, func(sim.Time, Message) {})
	count := 0
	nw.SetTracer(func(Event) { count++ })
	nw.Send(0, 1, nil)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 2 { // sent + delivered
		t.Errorf("traced %d events, want 2", count)
	}
	nw.SetTracer(nil)
	nw.Send(0, 1, nil)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Error("cleared tracer still firing")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{
		EventSent:             "sent",
		EventDelivered:        "delivered",
		EventDroppedLoss:      "dropped-loss",
		EventDroppedCrash:     "dropped-crash",
		EventDroppedPartition: "dropped-partition",
		EventDroppedDown:      "dropped-down",
		EventKind(99):         "unknown",
	} {
		if k.String() != want {
			t.Errorf("%d: %q != %q", k, k.String(), want)
		}
	}
}
