package simnet

import (
	"errors"
	"sync"
)

// LiveNet is an in-process, goroutine-safe message fabric for running the
// protocols with real goroutines instead of the discrete-event kernel. The
// examples (replicated KV store, failure detector) use it to demonstrate the
// library operating as an actual concurrent system; semantics mirror
// Network: fail-stop crashes, silent drop on full inboxes (modeling buffer
// overflow), no ordering guarantees across senders.
type LiveNet struct {
	mu     sync.RWMutex
	boxes  []chan Message
	up     []bool
	closed bool
}

// ErrStopped is returned by Recv after Close, and by Send on a closed net.
var ErrStopped = errors.New("simnet: live network stopped")

// NewLive returns a live network of n nodes with the given per-node inbox
// capacity.
func NewLive(n, inbox int) *LiveNet {
	if n < 0 || inbox <= 0 {
		panic("simnet: invalid live network size")
	}
	l := &LiveNet{
		boxes: make([]chan Message, n),
		up:    make([]bool, n),
	}
	for i := range l.boxes {
		l.boxes[i] = make(chan Message, inbox)
		l.up[i] = true
	}
	return l
}

// N returns the number of nodes.
func (l *LiveNet) N() int { return len(l.boxes) }

// Send delivers a message into to's inbox. It reports false when the
// message was dropped (crashed endpoint, full inbox, or stopped network) —
// matching UDP-style fire-and-forget.
func (l *LiveNet) Send(from, to NodeID, payload any) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed || int(from) >= len(l.boxes) || int(to) >= len(l.boxes) || from < 0 || to < 0 {
		return false
	}
	if !l.up[from] || !l.up[to] {
		return false
	}
	select {
	case l.boxes[to] <- Message{From: from, To: to, Payload: payload}:
		return true
	default:
		return false // inbox overflow
	}
}

// Inbox returns the receive channel for id. A crashed node's channel stops
// receiving new messages but drains existing ones, like an OS socket buffer.
func (l *LiveNet) Inbox(id NodeID) <-chan Message {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.boxes[id]
}

// Crash marks id as failed (fail-stop).
func (l *LiveNet) Crash(id NodeID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if int(id) < len(l.up) && id >= 0 {
		l.up[id] = false
	}
}

// Up reports whether id is up.
func (l *LiveNet) Up(id NodeID) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return int(id) < len(l.up) && id >= 0 && l.up[id]
}

// Close stops the network and closes all inboxes; concurrent Sends drop.
func (l *LiveNet) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for _, ch := range l.boxes {
		close(ch)
	}
}
