// Package numeric provides the small numerical toolkit the analytic model
// needs: robust 1-D root finding (bisection, Brent, safeguarded Newton),
// damped fixed-point iteration, and a fixed-step RK4 ODE integrator for the
// epidemic baseline model.
//
// All routines are pure functions over float64 and deterministic; errors are
// returned (never panicked) so the model layer can degrade gracefully.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned when a root finder is called on an interval whose
// endpoints do not bracket a sign change.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// ErrNoConverge is returned when an iteration exhausts its budget without
// meeting its tolerance.
var ErrNoConverge = errors.New("numeric: iteration did not converge")

// DefaultTol is the default absolute tolerance for the root finders.
const DefaultTol = 1e-12

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs (or one of them must be zero). The result is within tol of
// a true root.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	for i := 0; i < 200; i++ {
		m := a + (b-a)/2
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return a + (b-a)/2, nil // 200 halvings exhaust float64 resolution
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection safeguards). It converges superlinearly on
// smooth functions while retaining bisection's robustness.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = a + (b-a)/2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d, c, fc = c, b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, ErrNoConverge
}

// NewtonBracketed runs Newton's method safeguarded by a bracket [a, b]:
// whenever a Newton step leaves the bracket or fails to shrink it fast
// enough, it falls back to bisection. f(a), f(b) must bracket a root.
// df is the derivative of f.
func NewtonBracketed(f, df func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	x := a + (b-a)/2
	for i := 0; i < 100; i++ {
		fx := f(x)
		if fx == 0 {
			return x, nil
		}
		// Maintain bracket.
		if math.Signbit(fx) == math.Signbit(fa) {
			a, fa = x, fx
		} else {
			b = x
		}
		if b-a < tol {
			return x, nil
		}
		dfx := df(x)
		var next float64
		if dfx != 0 {
			next = x - fx/dfx
		}
		if dfx == 0 || next <= a || next >= b {
			next = a + (b-a)/2 // bisection fallback
		}
		if math.Abs(next-x) < tol {
			return next, nil
		}
		x = next
	}
	return x, ErrNoConverge
}

// FixedPoint iterates x <- (1-damping)*x + damping*g(x) from x0 until
// successive iterates differ by less than tol, for at most maxIter steps.
// damping must be in (0, 1]; 1 is undamped iteration.
func FixedPoint(g func(float64) float64, x0, damping, tol float64, maxIter int) (float64, error) {
	if damping <= 0 || damping > 1 {
		return 0, fmt.Errorf("numeric: damping %g outside (0,1]", damping)
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	x := x0
	for i := 0; i < maxIter; i++ {
		next := (1-damping)*x + damping*g(x)
		if math.Abs(next-x) < tol {
			return next, nil
		}
		x = next
	}
	return x, ErrNoConverge
}

// RK4 integrates dy/dt = f(t, y) from t0 to t1 with n fixed steps, starting
// at y0, and returns the final state. The state is copied internally; f must
// write derivatives into dydt.
func RK4(f func(t float64, y, dydt []float64), y0 []float64, t0, t1 float64, n int) []float64 {
	if n <= 0 {
		n = 1
	}
	dim := len(y0)
	y := append([]float64(nil), y0...)
	k1 := make([]float64, dim)
	k2 := make([]float64, dim)
	k3 := make([]float64, dim)
	k4 := make([]float64, dim)
	tmp := make([]float64, dim)
	h := (t1 - t0) / float64(n)
	t := t0
	for step := 0; step < n; step++ {
		f(t, y, k1)
		for i := range tmp {
			tmp[i] = y[i] + h/2*k1[i]
		}
		f(t+h/2, tmp, k2)
		for i := range tmp {
			tmp[i] = y[i] + h/2*k2[i]
		}
		f(t+h/2, tmp, k3)
		for i := range tmp {
			tmp[i] = y[i] + h*k3[i]
		}
		f(t+h, tmp, k4)
		for i := range y {
			y[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		t += h
	}
	return y
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be >= 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("numeric: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // avoid accumulated rounding at the endpoint
	return out
}

// Arange returns lo, lo+step, ... up to and including hi (within a half-step
// tolerance, matching how the paper sweeps "1.10 to 6.7 step 0.4").
func Arange(lo, hi, step float64) []float64 {
	if step <= 0 {
		panic("numeric: Arange needs positive step")
	}
	var out []float64
	for x := lo; x <= hi+step/2; x += step {
		out = append(out, x)
	}
	return out
}
