package numeric

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBisectSimpleRoots(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"linear", func(x float64) float64 { return x - 3 }, 0, 10, 3},
		{"quadratic", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"cosine", math.Cos, 0, 3, math.Pi / 2},
		{"exp", func(x float64) float64 { return math.Exp(x) - 5 }, 0, 3, math.Log(5)},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got, err := Bisect(c.f, c.a, c.b, 1e-12)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-c.want) > 1e-10 {
				t.Errorf("root = %.14f, want %.14f", got, c.want)
			}
		})
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if got, err := Bisect(f, 0, 1, 1e-12); err != nil || got != 0 {
		t.Errorf("root at left endpoint: got %g, err %v", got, err)
	}
	if got, err := Bisect(f, -1, 0, 1e-12); err != nil || got != 0 {
		t.Errorf("root at right endpoint: got %g, err %v", got, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-12); !errors.Is(err, ErrNoBracket) {
		t.Errorf("want ErrNoBracket, got %v", err)
	}
}

func TestBrentMatchesBisect(t *testing.T) {
	fns := []func(float64) float64{
		func(x float64) float64 { return x*x*x - x - 2 },
		func(x float64) float64 { return math.Sin(x) - 0.5 },
		func(x float64) float64 { return math.Exp(-x) - x },
	}
	brackets := [][2]float64{{1, 2}, {0, 1}, {0, 1}}
	for i, f := range fns {
		a, b := brackets[i][0], brackets[i][1]
		rb, err := Brent(f, a, b, 1e-13)
		if err != nil {
			t.Fatalf("Brent fn %d: %v", i, err)
		}
		ri, err := Bisect(f, a, b, 1e-13)
		if err != nil {
			t.Fatalf("Bisect fn %d: %v", i, err)
		}
		if math.Abs(rb-ri) > 1e-9 {
			t.Errorf("fn %d: Brent %.14f vs Bisect %.14f", i, rb, ri)
		}
		if math.Abs(f(rb)) > 1e-9 {
			t.Errorf("fn %d: |f(root)| = %g", i, math.Abs(f(rb)))
		}
	}
}

func TestBrentNoBracket(t *testing.T) {
	f := func(x float64) float64 { return 1 + x*x }
	if _, err := Brent(f, -2, 2, 1e-12); !errors.Is(err, ErrNoBracket) {
		t.Errorf("want ErrNoBracket, got %v", err)
	}
}

func TestNewtonBracketed(t *testing.T) {
	// The percolation-style equation: s - 1 + exp(-a s) = 0 with a = 3.
	a := 3.0
	f := func(s float64) float64 { return s - 1 + math.Exp(-a*s) }
	df := func(s float64) float64 { return 1 - a*math.Exp(-a*s) }
	got, err := NewtonBracketed(f, df, 1e-9, 1, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f(got)) > 1e-12 {
		t.Errorf("residual %g", f(got))
	}
	// Known value: S solves S = 1 - e^{-3S}; S ≈ 0.940479...
	if math.Abs(got-0.9404798) > 1e-6 {
		t.Errorf("root %.7f, want ~0.9404798", got)
	}
}

func TestNewtonBracketedFlatDerivative(t *testing.T) {
	// df returns zero everywhere; must still converge by bisection.
	f := func(x float64) float64 { return x - 0.25 }
	df := func(float64) float64 { return 0 }
	got, err := NewtonBracketed(f, df, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-10 {
		t.Errorf("root %.12f, want 0.25", got)
	}
}

func TestFixedPointContraction(t *testing.T) {
	// g(x) = cos(x) has the Dottie number as unique fixed point.
	got, err := FixedPoint(math.Cos, 0.5, 1, 1e-13, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.7390851332151607) > 1e-9 {
		t.Errorf("fixed point %.14f", got)
	}
}

func TestFixedPointDamping(t *testing.T) {
	// g(x) = 2.8(1-x)x: undamped iteration oscillates for the logistic
	// map at r=2.8? (r<3 converges, but slowly); damping should converge.
	g := func(x float64) float64 { return 2.8 * x * (1 - x) }
	got, err := FixedPoint(g, 0.3, 0.5, 1e-12, 5000)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 1/2.8
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("fixed point %.12f, want %.12f", got, want)
	}
}

func TestFixedPointBadDamping(t *testing.T) {
	if _, err := FixedPoint(math.Cos, 0, 0, 1e-12, 10); err == nil {
		t.Error("damping 0 accepted")
	}
	if _, err := FixedPoint(math.Cos, 0, 1.5, 1e-12, 10); err == nil {
		t.Error("damping 1.5 accepted")
	}
}

func TestFixedPointNoConverge(t *testing.T) {
	g := func(x float64) float64 { return -x } // oscillates forever
	if _, err := FixedPoint(g, 1, 1, 1e-15, 50); !errors.Is(err, ErrNoConverge) {
		t.Errorf("want ErrNoConverge, got %v", err)
	}
}

func TestRK4ExponentialDecay(t *testing.T) {
	// dy/dt = -y, y(0) = 1 => y(t) = e^-t.
	f := func(_ float64, y, dydt []float64) { dydt[0] = -y[0] }
	y := RK4(f, []float64{1}, 0, 2, 200)
	if math.Abs(y[0]-math.Exp(-2)) > 1e-8 {
		t.Errorf("y(2) = %.10f, want %.10f", y[0], math.Exp(-2))
	}
}

func TestRK4Harmonic(t *testing.T) {
	// y'' = -y as a system; energy must be conserved to high accuracy.
	f := func(_ float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -y[0]
	}
	y := RK4(f, []float64{1, 0}, 0, 2*math.Pi, 1000)
	if math.Abs(y[0]-1) > 1e-8 || math.Abs(y[1]) > 1e-8 {
		t.Errorf("after full period: y = %v, want [1 0]", y)
	}
}

func TestRK4SILogistic(t *testing.T) {
	// The SI epidemic: di/dt = beta i (1-i) has closed form
	// i(t) = i0 e^{beta t} / (1 - i0 + i0 e^{beta t}).
	beta, i0 := 1.7, 0.01
	f := func(_ float64, y, dydt []float64) { dydt[0] = beta * y[0] * (1 - y[0]) }
	y := RK4(f, []float64{i0}, 0, 5, 500)
	e := i0 * math.Exp(beta*5) / (1 - i0 + i0*math.Exp(beta*5))
	if math.Abs(y[0]-e) > 1e-6 {
		t.Errorf("SI at t=5: %.8f, want %.8f", y[0], e)
	}
}

func TestRK4DoesNotMutateInput(t *testing.T) {
	y0 := []float64{1, 2}
	f := func(_ float64, y, dydt []float64) { dydt[0], dydt[1] = y[1], -y[0] }
	_ = RK4(f, y0, 0, 1, 10)
	if y0[0] != 1 || y0[1] != 2 {
		t.Errorf("RK4 mutated y0: %v", y0)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(xs) != len(want) {
		t.Fatalf("len %d", len(xs))
	}
	for i := range xs {
		if math.Abs(xs[i]-want[i]) > 1e-15 {
			t.Errorf("xs[%d] = %g, want %g", i, xs[i], want[i])
		}
	}
}

func TestLinspaceEndpointExact(t *testing.T) {
	xs := Linspace(1.1, 6.7, 15)
	if xs[len(xs)-1] != 6.7 {
		t.Errorf("last element %.17f, want exactly 6.7", xs[len(xs)-1])
	}
}

func TestArangePaperSweep(t *testing.T) {
	// The paper's fanout sweep: 1.10 to 6.7 step 0.4 → 15 points.
	xs := Arange(1.1, 6.7, 0.4)
	if len(xs) != 15 {
		t.Fatalf("sweep has %d points, want 15: %v", len(xs), xs)
	}
	if math.Abs(xs[0]-1.1) > 1e-12 || math.Abs(xs[14]-6.7) > 1e-9 {
		t.Errorf("sweep endpoints %g..%g", xs[0], xs[14])
	}
}

func TestBisectQuickProperty(t *testing.T) {
	// For random monotone linear functions the root must be recovered.
	f := func(slope, root uint16) bool {
		m := float64(slope%100) + 1
		r := float64(root%1000)/1000*8 - 4 // in [-4, 4)
		fn := func(x float64) float64 { return m * (x - r) }
		got, err := Bisect(fn, -5, 5, 1e-12)
		return err == nil && math.Abs(got-r) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBrentPercolationEquation(b *testing.B) {
	a := 3.6
	f := func(s float64) float64 { return s - 1 + math.Exp(-a*s) }
	for i := 0; i < b.N; i++ {
		if _, err := Brent(f, 1e-12, 1, 1e-14); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRK4SI(b *testing.B) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = 1.7 * y[0] * (1 - y[0]) }
	y0 := []float64{0.01}
	for i := 0; i < b.N; i++ {
		_ = RK4(f, y0, 0, 5, 100)
	}
}
