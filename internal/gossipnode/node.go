// Package gossipnode implements a real networked gossip node speaking the
// wire protocol of internal/wire over TCP. It runs the paper's general
// gossiping algorithm as an actual service: on the first receipt of a
// multicast it draws a fanout from the configured distribution, picks that
// many random peers from its membership view, and forwards.
//
// The node is deliberately small — enough for cmd/gossipd and the
// integration tests to exercise the library end to end on loopback — but
// complete: join protocol, bounded views, deduplication with bounded
// memory, graceful shutdown, and liveness pings.
package gossipnode

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gossipkit/internal/dist"
	"gossipkit/internal/wire"
	"gossipkit/internal/xrand"
)

// Config parameterizes a node.
type Config struct {
	// ListenAddr is the TCP address to listen on ("127.0.0.1:0" picks a
	// free port).
	ListenAddr string
	// Fanout is the gossip fanout distribution P; nil defaults to Po(4).
	Fanout dist.Distribution
	// Seed drives the node's randomness.
	Seed uint64
	// MaxView bounds the membership view size (0 = 64).
	MaxView int
	// MaxSeen bounds the deduplication memory (0 = 4096 message ids).
	MaxSeen int
	// Deliver, if non-nil, is invoked once per multicast (including the
	// node's own publications) from the connection goroutine.
	Deliver func(wire.Gossip)
	// DialTimeout bounds outbound connection attempts (0 = 2s).
	DialTimeout time.Duration
}

// Node is a running gossip node.
type Node struct {
	cfg      Config
	ln       net.Listener
	mu       sync.Mutex
	rng      *xrand.RNG
	peers    []string
	peerSet  map[string]bool
	seen     map[uint64]bool
	seenFIFO []uint64
	closed   bool
	wg       sync.WaitGroup

	// Stats counters (guarded by mu).
	delivered int
	forwarded int
	duplicate int
}

// Start launches a node listening on cfg.ListenAddr.
func Start(cfg Config) (*Node, error) {
	if cfg.Fanout == nil {
		cfg.Fanout = dist.NewPoisson(4)
	}
	if cfg.MaxView <= 0 {
		cfg.MaxView = 64
	}
	if cfg.MaxSeen <= 0 {
		cfg.MaxSeen = 4096
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("gossipnode: listen: %w", err)
	}
	n := &Node{
		cfg:     cfg,
		ln:      ln,
		rng:     xrand.New(cfg.Seed),
		peerSet: map[string]bool{},
		seen:    map[uint64]bool{},
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Peers returns a copy of the current membership view.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.peers...)
}

// Stats returns (delivered, forwarded messages, duplicates discarded).
func (n *Node) Stats() (delivered, forwarded, duplicates int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered, n.forwarded, n.duplicate
}

// AddPeer inserts addr into the view (deduplicated, bounded by random
// eviction — keeping the view a uniform sample, the property the paper's
// model needs).
func (n *Node) AddPeer(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addPeerLocked(addr)
}

func (n *Node) addPeerLocked(addr string) {
	if addr == "" || addr == n.Addr() || n.peerSet[addr] {
		return
	}
	if len(n.peers) >= n.cfg.MaxView {
		// Evict a uniformly random entry.
		i := n.rng.Intn(len(n.peers))
		delete(n.peerSet, n.peers[i])
		n.peers[i] = n.peers[len(n.peers)-1]
		n.peers = n.peers[:len(n.peers)-1]
	}
	n.peers = append(n.peers, addr)
	n.peerSet[addr] = true
}

// Join contacts an existing member, installs the returned peer sample, and
// registers this node with the contact.
func (n *Node) Join(contact string) error {
	conn, err := net.DialTimeout("tcp", contact, n.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("gossipnode: join dial: %w", err)
	}
	defer conn.Close()
	if err := wire.Encode(conn, wire.Join{Addr: n.Addr()}); err != nil {
		return fmt.Errorf("gossipnode: join send: %w", err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(n.cfg.DialTimeout)); err != nil {
		return err
	}
	msg, err := wire.Decode(conn)
	if err != nil {
		return fmt.Errorf("gossipnode: join ack: %w", err)
	}
	ack, ok := msg.(wire.JoinAck)
	if !ok {
		return fmt.Errorf("gossipnode: unexpected join reply %T", msg)
	}
	n.mu.Lock()
	n.addPeerLocked(contact)
	for _, p := range ack.Peers {
		n.addPeerLocked(p)
	}
	n.mu.Unlock()
	return nil
}

// Publish multicasts payload to the group via gossip. The local node
// counts as delivered.
func (n *Node) Publish(payload []byte) error {
	g := wire.Gossip{
		MsgID:   n.nextMsgID(),
		Origin:  n.Addr(),
		Payload: append([]byte(nil), payload...),
	}
	n.handleGossip(g)
	return nil
}

func (n *Node) nextMsgID() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Uint64()
}

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	err := n.ln.Close()
	n.wg.Wait()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serve(conn)
		}()
	}
}

// serve handles one inbound connection until EOF.
func (n *Node) serve(conn net.Conn) {
	defer conn.Close()
	for {
		if err := conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
			return
		}
		msg, err := wire.Decode(conn)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case wire.Gossip:
			n.handleGossip(m)
		case wire.Join:
			n.handleJoin(conn, m)
		case wire.Ping:
			_ = wire.Encode(conn, wire.Pong{Seq: m.Seq})
		default:
			return
		}
	}
}

func (n *Node) handleJoin(conn net.Conn, j wire.Join) {
	n.mu.Lock()
	sample := append([]string(nil), n.peers...)
	n.addPeerLocked(j.Addr)
	n.mu.Unlock()
	if len(sample) > 16 {
		n.mu.Lock()
		n.rng.Shuffle(len(sample), func(a, b int) { sample[a], sample[b] = sample[b], sample[a] })
		n.mu.Unlock()
		sample = sample[:16]
	}
	sample = append(sample, n.Addr())
	_ = wire.Encode(conn, wire.JoinAck{Peers: sample})
}

// handleGossip implements the paper's algorithm: deliver + forward on
// first receipt, discard duplicates.
func (n *Node) handleGossip(g wire.Gossip) {
	n.mu.Lock()
	if n.seen[g.MsgID] {
		n.duplicate++
		n.mu.Unlock()
		return
	}
	n.markSeenLocked(g.MsgID)
	n.delivered++
	// Draw the fanout and the targets under the lock (the RNG is not
	// concurrency-safe); dial outside it.
	f := n.cfg.Fanout.Sample(n.rng)
	var targets []string
	if len(n.peers) > 0 {
		k := f
		if k > len(n.peers) {
			k = len(n.peers)
		}
		idx := n.rng.SampleInts(nil, len(n.peers), k)
		for _, i := range idx {
			targets = append(targets, n.peers[i])
		}
	}
	deliver := n.cfg.Deliver
	n.mu.Unlock()

	if deliver != nil {
		deliver(g)
	}
	fwd := g
	fwd.Hops++
	for _, addr := range targets {
		if n.send(addr, fwd) {
			n.mu.Lock()
			n.forwarded++
			n.mu.Unlock()
		}
	}
}

// markSeenLocked records a message id with FIFO eviction.
func (n *Node) markSeenLocked(id uint64) {
	n.seen[id] = true
	n.seenFIFO = append(n.seenFIFO, id)
	if len(n.seenFIFO) > n.cfg.MaxSeen {
		old := n.seenFIFO[0]
		n.seenFIFO = n.seenFIFO[1:]
		delete(n.seen, old)
	}
}

// send dials addr and writes one message, fire-and-forget.
func (n *Node) send(addr string, msg any) bool {
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return false
	}
	defer conn.Close()
	return wire.Encode(conn, msg) == nil
}

// Ping probes a peer and reports whether it answered within the timeout.
func (n *Node) Ping(addr string, seq uint64) bool {
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return false
	}
	defer conn.Close()
	if err := wire.Encode(conn, wire.Ping{Seq: seq}); err != nil {
		return false
	}
	if err := conn.SetReadDeadline(time.Now().Add(n.cfg.DialTimeout)); err != nil {
		return false
	}
	msg, err := wire.Decode(conn)
	if err != nil {
		return false
	}
	pong, ok := msg.(wire.Pong)
	return ok && pong.Seq == seq
}

// ErrClosed is returned by operations on a closed node.
var ErrClosed = errors.New("gossipnode: node closed")
