package gossipnode

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gossipkit/internal/dist"
	"gossipkit/internal/wire"
)

// startCluster launches n nodes, fully meshed via the join protocol
// (each node joins node 0).
func startCluster(t *testing.T, n int, fanout dist.Distribution, deliver func(i int, g wire.Gossip)) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		i := i
		cfg := Config{
			Fanout:  fanout,
			Seed:    uint64(1000 + i),
			MaxView: 128,
		}
		if deliver != nil {
			cfg.Deliver = func(g wire.Gossip) { deliver(i, g) }
		}
		node, err := Start(cfg)
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
	}
	// Everyone joins through node 0, then exchanges views by joining a
	// couple more random members for mesh density.
	for i := 1; i < n; i++ {
		if err := nodes[i].Join(nodes[0].Addr()); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Join(nodes[(i*7)%n].Addr()); err != nil && i*7%n != i {
			t.Fatalf("second join %d: %v", i, err)
		}
	}
	// Seed node 0 with everyone (it learned joiners already via Join).
	return nodes
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cond()
}

func TestStartAndClose(t *testing.T) {
	n, err := Start(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n.Addr() == "" {
		t.Error("empty address")
	}
	if err := n.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestJoinBuildsViews(t *testing.T) {
	nodes := startCluster(t, 8, dist.NewFixed(3), nil)
	// Node 0 must know all joiners.
	if got := len(nodes[0].Peers()); got < 7 {
		t.Errorf("node 0 view size %d, want >= 7", got)
	}
	// Every joiner knows at least the contact.
	for i := 1; i < 8; i++ {
		if got := len(nodes[i].Peers()); got < 1 {
			t.Errorf("node %d view empty", i)
		}
	}
}

func TestMulticastReachesCluster(t *testing.T) {
	const n = 12
	var mu sync.Mutex
	got := map[int]bool{}
	nodes := startCluster(t, n, dist.NewFixed(4), func(i int, g wire.Gossip) {
		mu.Lock()
		got[i] = true
		mu.Unlock()
	})
	if err := nodes[0].Publish([]byte("event-1")); err != nil {
		t.Fatal(err)
	}
	ok := waitFor(t, 3*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= n-1 // allow one straggler with sparse views
	})
	mu.Lock()
	count := len(got)
	mu.Unlock()
	if !ok {
		t.Fatalf("multicast reached %d/%d nodes", count, n)
	}
}

func TestDeduplication(t *testing.T) {
	var deliveries atomic.Int64
	node, err := Start(Config{
		Seed:    5,
		Fanout:  dist.NewFixed(0),
		Deliver: func(wire.Gossip) { deliveries.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	g := wire.Gossip{MsgID: 99, Origin: "x", Payload: []byte("p")}
	node.handleGossip(g)
	node.handleGossip(g)
	node.handleGossip(g)
	if deliveries.Load() != 1 {
		t.Errorf("delivered %d times, want 1", deliveries.Load())
	}
	_, _, dups := node.Stats()
	if dups != 2 {
		t.Errorf("duplicates = %d, want 2", dups)
	}
}

func TestSeenMemoryBounded(t *testing.T) {
	node, err := Start(Config{Seed: 7, MaxSeen: 10, Fanout: dist.NewFixed(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	for i := uint64(0); i < 100; i++ {
		node.handleGossip(wire.Gossip{MsgID: i, Origin: "x"})
	}
	node.mu.Lock()
	seenLen := len(node.seen)
	fifoLen := len(node.seenFIFO)
	node.mu.Unlock()
	if seenLen > 10 || fifoLen > 10 {
		t.Errorf("seen memory unbounded: map %d fifo %d", seenLen, fifoLen)
	}
}

func TestViewBounded(t *testing.T) {
	node, err := Start(Config{Seed: 9, MaxView: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	for i := 0; i < 50; i++ {
		node.AddPeer(fmt.Sprintf("10.0.0.%d:1", i))
	}
	if got := len(node.Peers()); got > 5 {
		t.Errorf("view size %d, want <= 5", got)
	}
}

func TestAddPeerIgnoresSelfAndDuplicates(t *testing.T) {
	node, err := Start(Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.AddPeer(node.Addr())
	node.AddPeer("a:1")
	node.AddPeer("a:1")
	node.AddPeer("")
	if got := len(node.Peers()); got != 1 {
		t.Errorf("view %v", node.Peers())
	}
}

func TestPing(t *testing.T) {
	a, err := Start(Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Start(Config{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Ping(b.Addr(), 77) {
		t.Error("ping to live node failed")
	}
	b.Close()
	if a.Ping(b.Addr(), 78) {
		t.Error("ping to closed node succeeded")
	}
}

func TestCrashToleranceMatchesModelDirection(t *testing.T) {
	// Crash a third of a 15-node cluster; a publish from a survivor must
	// still reach most survivors (Po(5) fanout, q=2/3 > q_c=1/5).
	const n = 15
	var mu sync.Mutex
	got := map[int]bool{}
	nodes := startCluster(t, n, dist.NewPoisson(5), func(i int, g wire.Gossip) {
		mu.Lock()
		got[i] = true
		mu.Unlock()
	})
	crashed := map[int]bool{}
	for i := 2; i < n; i += 3 {
		nodes[i].Close()
		crashed[i] = true
	}
	// One-shot gossip can die at the source (the paper's die-out mass;
	// with this cluster's seed the first draw is fanout 1 aimed at a
	// crashed node). Publish t=3 times per Eq. 6 — exactly what the
	// paper prescribes for a 99.9% group-success target at S≈0.97.
	for t3 := 0; t3 < 3; t3++ {
		if err := nodes[0].Publish([]byte(fmt.Sprintf("after-crash-%d", t3))); err != nil {
			t.Fatal(err)
		}
	}
	survivors := n - len(crashed)
	waitFor(t, 3*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= survivors
	})
	mu.Lock()
	defer mu.Unlock()
	for i := range got {
		if crashed[i] {
			t.Errorf("crashed node %d delivered a message", i)
		}
	}
	if len(got) < survivors*2/3 {
		t.Errorf("only %d of %d survivors reached", len(got), survivors)
	}
}

func TestJoinErrorOnDeadContact(t *testing.T) {
	node, err := Start(Config{Seed: 21, DialTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Join("127.0.0.1:1"); err == nil {
		t.Error("join to dead contact succeeded")
	}
}

func TestConcurrentPublishes(t *testing.T) {
	const n = 6
	var total atomic.Int64
	nodes := startCluster(t, n, dist.NewFixed(3), func(int, wire.Gossip) {
		total.Add(1)
	})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				if err := nodes[i].Publish([]byte(fmt.Sprintf("m-%d-%d", i, j))); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
	// 18 distinct multicasts; each node delivers each at most once.
	waitFor(t, 3*time.Second, func() bool { return total.Load() >= int64(18*(n-1)) })
	if got := total.Load(); got > int64(18*n) {
		t.Errorf("over-delivery: %d > %d", got, 18*n)
	}
}
