package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, msg); err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("decode left %d bytes", buf.Len())
	}
	return got
}

func TestGossipRoundTrip(t *testing.T) {
	in := Gossip{MsgID: 0xdeadbeef12345678, Origin: "127.0.0.1:9000", Hops: 7, Payload: []byte("hello")}
	out := roundTrip(t, in).(Gossip)
	if out.MsgID != in.MsgID || out.Origin != in.Origin || out.Hops != in.Hops ||
		!bytes.Equal(out.Payload, in.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestGossipEmptyPayload(t *testing.T) {
	out := roundTrip(t, Gossip{MsgID: 1, Origin: "a"}).(Gossip)
	if len(out.Payload) != 0 {
		t.Errorf("payload %v", out.Payload)
	}
}

func TestJoinRoundTrip(t *testing.T) {
	out := roundTrip(t, Join{Addr: "10.0.0.1:7777"}).(Join)
	if out.Addr != "10.0.0.1:7777" {
		t.Errorf("addr %q", out.Addr)
	}
}

func TestJoinAckRoundTrip(t *testing.T) {
	in := JoinAck{Peers: []string{"a:1", "b:2", "c:3"}}
	out := roundTrip(t, in).(JoinAck)
	if len(out.Peers) != 3 || out.Peers[1] != "b:2" {
		t.Errorf("peers %v", out.Peers)
	}
	// Empty ack.
	out2 := roundTrip(t, JoinAck{}).(JoinAck)
	if len(out2.Peers) != 0 {
		t.Errorf("empty ack peers %v", out2.Peers)
	}
}

func TestPingPongRoundTrip(t *testing.T) {
	if got := roundTrip(t, Ping{Seq: 42}).(Ping); got.Seq != 42 {
		t.Errorf("ping %+v", got)
	}
	if got := roundTrip(t, Pong{Seq: 43}).(Pong); got.Seq != 43 {
		t.Errorf("pong %+v", got)
	}
}

func TestSequentialMessagesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []any{
		Ping{Seq: 1},
		Gossip{MsgID: 2, Origin: "x", Payload: []byte{1, 2, 3}},
		Join{Addr: "y:1"},
		Pong{Seq: 4},
	}
	for _, m := range msgs {
		if err := Encode(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		switch g := got.(type) {
		case Ping:
			if g.Seq != 1 {
				t.Errorf("msg %d: %+v", i, g)
			}
		case Gossip:
			if g.MsgID != 2 {
				t.Errorf("msg %d: %+v", i, g)
			}
		}
	}
}

func TestEncodeUnknownType(t *testing.T) {
	if err := Encode(io.Discard, 42); err == nil {
		t.Error("encoding an int succeeded")
	}
}

func TestEncodeOversized(t *testing.T) {
	big := Gossip{MsgID: 1, Origin: "x", Payload: make([]byte, MaxFrame)}
	if err := Encode(io.Discard, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("want ErrFrameTooLarge, got %v", err)
	}
	longStr := strings.Repeat("a", 70000)
	if err := Encode(io.Discard, Join{Addr: longStr}); err == nil {
		t.Error("oversized string accepted")
	}
}

func TestDecodeTruncatedFrames(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Gossip{MsgID: 9, Origin: "o", Payload: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every proper prefix must fail cleanly, never panic.
	for cut := 0; cut < len(full); cut++ {
		_, err := Decode(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d bytes decoded successfully", cut)
		}
	}
}

func TestDecodeGarbageBody(t *testing.T) {
	// Declared length larger than actual body contents.
	frame := []byte{0, 0, 0, 10, TypeGossip, 1, 2} // length 10, only 2 body bytes
	if _, err := Decode(bytes.NewReader(frame)); err == nil {
		t.Error("short body accepted")
	}
	// Unknown type.
	frame2 := []byte{0, 0, 0, 1, 0x7f}
	if _, err := Decode(bytes.NewReader(frame2)); !errors.Is(err, ErrUnknownType) {
		t.Errorf("want ErrUnknownType, got %v", err)
	}
	// Zero-length frame.
	frame3 := []byte{0, 0, 0, 0}
	if _, err := Decode(bytes.NewReader(frame3)); !errors.Is(err, ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", err)
	}
	// Huge declared frame must be rejected before allocation.
	frame4 := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := Decode(bytes.NewReader(frame4)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestDecodeInteriorCorruption(t *testing.T) {
	// A gossip frame whose inner payload length field points past the
	// body must error, not panic or over-read.
	var buf bytes.Buffer
	if err := Encode(&buf, Gossip{MsgID: 1, Origin: "ab", Payload: []byte("xyz")}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	// Payload length lives 4 bytes from the end of the payload; bump it.
	frame[len(frame)-4-3] = 0xff
	if _, err := Decode(bytes.NewReader(frame)); err == nil {
		t.Error("corrupted inner length accepted")
	}
}

func TestGossipQuickRoundTrip(t *testing.T) {
	f := func(id uint64, origin string, hops uint8, payload []byte) bool {
		if len(origin) > 1000 {
			origin = origin[:1000]
		}
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		in := Gossip{MsgID: id, Origin: origin, Hops: hops, Payload: payload}
		var buf bytes.Buffer
		if err := Encode(&buf, in); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		out, ok := got.(Gossip)
		return ok && out.MsgID == id && out.Origin == origin &&
			out.Hops == hops && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeDecodeGossip(b *testing.B) {
	msg := Gossip{MsgID: 1, Origin: "127.0.0.1:9000", Hops: 3, Payload: make([]byte, 256)}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Encode(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
