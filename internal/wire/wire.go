// Package wire defines the binary wire protocol spoken by the TCP gossip
// node (internal/gossipnode, cmd/gossipd): length-prefixed frames with a
// one-byte type tag and fixed-endian (big-endian) fields, no reflection,
// no external dependencies.
//
// Frame layout:
//
//	uint32  frame length (bytes after this field; max MaxFrame)
//	uint8   message type
//	...     type-specific body
//
// Strings are uint16-length-prefixed UTF-8. Byte slices are uint32-length-
// prefixed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds a frame body so a malicious peer cannot force an
// arbitrary allocation.
const MaxFrame = 1 << 20

// Message type tags.
const (
	TypeGossip  = 0x01
	TypeJoin    = 0x02
	TypeJoinAck = 0x03
	TypePing    = 0x04
	TypePong    = 0x05
)

// Errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrTruncated     = errors.New("wire: truncated message")
	ErrUnknownType   = errors.New("wire: unknown message type")
)

// Gossip carries one multicast payload.
type Gossip struct {
	// MsgID uniquely identifies the multicast for deduplication.
	MsgID uint64
	// Origin is the publisher's listen address.
	Origin string
	// Hops counts forwarding steps so far.
	Hops uint8
	// Payload is the application data.
	Payload []byte
}

// Join asks a contact to admit the sender into the group.
type Join struct {
	// Addr is the joiner's listen address.
	Addr string
}

// JoinAck answers a Join with a peer sample.
type JoinAck struct {
	// Peers is a sample of the contact's membership view.
	Peers []string
}

// Ping is a liveness probe.
type Ping struct{ Seq uint64 }

// Pong answers a Ping.
type Pong struct{ Seq uint64 }

// Encode writes one framed message. msg must be one of the package's
// message types (value or pointer).
func Encode(w io.Writer, msg any) error {
	var body []byte
	var typ byte
	switch m := msg.(type) {
	case Gossip:
		typ = TypeGossip
		body = appendUint64(body, m.MsgID)
		var err error
		body, err = appendString(body, m.Origin)
		if err != nil {
			return err
		}
		body = append(body, m.Hops)
		body, err = appendBytes(body, m.Payload)
		if err != nil {
			return err
		}
	case Join:
		typ = TypeJoin
		var err error
		body, err = appendString(body, m.Addr)
		if err != nil {
			return err
		}
	case JoinAck:
		typ = TypeJoinAck
		if len(m.Peers) > 0xffff {
			return fmt.Errorf("wire: too many peers %d", len(m.Peers))
		}
		body = appendUint16(body, uint16(len(m.Peers)))
		for _, p := range m.Peers {
			var err error
			body, err = appendString(body, p)
			if err != nil {
				return err
			}
		}
	case Ping:
		typ = TypePing
		body = appendUint64(body, m.Seq)
	case Pong:
		typ = TypePong
		body = appendUint64(body, m.Seq)
	default:
		return fmt.Errorf("wire: cannot encode %T", msg)
	}
	frame := make([]byte, 0, 5+len(body))
	frame = binary.BigEndian.AppendUint32(frame, uint32(1+len(body)))
	frame = append(frame, typ)
	frame = append(frame, body...)
	if len(frame)-4 > MaxFrame {
		return ErrFrameTooLarge
	}
	_, err := w.Write(frame)
	return err
}

// Decode reads one framed message. It returns one of the package's message
// types (by value).
func Decode(r io.Reader) (any, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 {
		return nil, ErrTruncated
	}
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	typ, body := buf[0], buf[1:]
	d := decoder{b: body}
	switch typ {
	case TypeGossip:
		var g Gossip
		g.MsgID = d.uint64()
		g.Origin = d.string()
		g.Hops = d.byte()
		g.Payload = d.bytes()
		if d.err != nil {
			return nil, d.err
		}
		return g, nil
	case TypeJoin:
		var j Join
		j.Addr = d.string()
		if d.err != nil {
			return nil, d.err
		}
		return j, nil
	case TypeJoinAck:
		var a JoinAck
		cnt := d.uint16()
		for i := 0; i < int(cnt) && d.err == nil; i++ {
			a.Peers = append(a.Peers, d.string())
		}
		if d.err != nil {
			return nil, d.err
		}
		return a, nil
	case TypePing:
		p := Ping{Seq: d.uint64()}
		if d.err != nil {
			return nil, d.err
		}
		return p, nil
	case TypePong:
		p := Pong{Seq: d.uint64()}
		if d.err != nil {
			return nil, d.err
		}
		return p, nil
	default:
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownType, typ)
	}
}

// ---------------------------------------------------------------------------
// primitives

func appendUint16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func appendUint64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

func appendString(b []byte, s string) ([]byte, error) {
	if len(s) > 0xffff {
		return nil, fmt.Errorf("wire: string too long (%d)", len(s))
	}
	b = appendUint16(b, uint16(len(s)))
	return append(b, s...), nil
}

func appendBytes(b, p []byte) ([]byte, error) {
	if len(p) > MaxFrame/2 {
		return nil, ErrFrameTooLarge
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...), nil
}

// decoder consumes a body buffer with sticky errors.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.err = ErrTruncated
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *decoder) byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) uint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) string() string {
	n := d.uint16()
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *decoder) bytes() []byte {
	b4 := d.take(4)
	if b4 == nil {
		return nil
	}
	n := binary.BigEndian.Uint32(b4)
	if n > MaxFrame {
		d.err = ErrFrameTooLarge
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
