// Package membership provides the membership substrate the paper assumes
// ("we assume that a scalable membership protocol is available, such as
// SCAMP [12]"). Two view implementations are offered:
//
//   - FullView: every member knows every other member. This matches the
//     paper's analytic assumption that gossip targets are drawn uniformly
//     from the whole group, and is the view used for all figure
//     reproductions.
//
//   - PartialViews: size-bounded local views built by a SCAMP-inspired
//     subscription process and optionally mixed by Cyclon-style shuffles.
//     Used by ablation A5 to quantify how partial knowledge perturbs the
//     model's predictions.
//
// A View's single obligation is target sampling: draw k distinct gossip
// targets for a member, never including the member itself.
package membership

import (
	"fmt"

	"gossipkit/internal/xrand"
)

// View supplies gossip targets for members 0..N-1.
type View interface {
	// N returns the group size.
	N() int
	// SampleTargets appends k distinct targets for member self to dst
	// (len 0) and returns it. Fewer than k targets are returned when the
	// view of self is smaller than k. The result never contains self.
	SampleTargets(dst []int, self, k int, r *xrand.RNG) []int
	// Degree returns the number of members visible to self.
	Degree(self int) int
}

// ---------------------------------------------------------------------------
// FullView

// FullView is complete knowledge: every member sees all n-1 others.
type FullView struct{ n int }

// NewFullView returns a full view over n members.
func NewFullView(n int) FullView {
	if n < 1 {
		panic(fmt.Sprintf("membership: invalid group size %d", n))
	}
	return FullView{n: n}
}

// N implements View.
func (v FullView) N() int { return v.n }

// Degree implements View.
func (v FullView) Degree(self int) int { return v.n - 1 }

// SampleTargets implements View by uniform sampling without replacement
// from all other members.
func (v FullView) SampleTargets(dst []int, self, k int, r *xrand.RNG) []int {
	return r.SampleExcluding(dst, v.n, k, self)
}

// ---------------------------------------------------------------------------
// PartialViews

// PartialViews holds one bounded local view per member.
type PartialViews struct {
	views [][]int32
}

// NewPartialViews builds per-member views with a SCAMP-inspired
// subscription process: members join one at a time; the newcomer's
// subscription is forwarded from a random contact to each of the contact's
// view entries plus c extra copies, and every recipient of a forwarded
// subscription either keeps it (with probability 1/(1+len(view))) or
// forwards it to a random view member. The resulting views have mean size
// about (c+1)·log(n), SCAMP's signature property.
//
// c must be >= 0; n >= 2. The process is deterministic given r.
func NewPartialViews(n, c int, r *xrand.RNG) *PartialViews {
	if n < 2 {
		panic(fmt.Sprintf("membership: invalid group size %d", n))
	}
	if c < 0 {
		panic(fmt.Sprintf("membership: invalid copy count %d", c))
	}
	pv := &PartialViews{views: make([][]int32, n)}
	// Bootstrap: member 1 joins via member 0.
	pv.add(0, 1)
	pv.add(1, 0)
	for id := 2; id < n; id++ {
		contact := r.Intn(id)
		// The contact keeps the newcomer and forwards the subscription
		// to all of its view plus c extra random-walk copies.
		targets := append([]int32(nil), pv.views[contact]...)
		for i := 0; i < c; i++ {
			v := pv.views[contact]
			targets = append(targets, v[r.Intn(len(v))])
		}
		pv.add(contact, id)
		// The newcomer learns the contact.
		pv.add(id, contact)
		for _, t := range targets {
			pv.integrate(int(t), id, r)
		}
	}
	return pv
}

// integrate runs the SCAMP keep-or-forward random walk for a forwarded
// subscription of newcomer arriving at node.
func (pv *PartialViews) integrate(node, newcomer int, r *xrand.RNG) {
	for hops := 0; hops < 10*len(pv.views); hops++ {
		if node != newcomer && !pv.contains(node, newcomer) {
			if r.Float64() < 1/float64(1+len(pv.views[node])) {
				pv.add(node, newcomer)
				return
			}
		}
		v := pv.views[node]
		if len(v) == 0 {
			pv.add(node, newcomer)
			return
		}
		node = int(v[r.Intn(len(v))])
	}
	// Random walk failed to place the subscription (pathological view
	// graph); keep it at the current node to preserve connectivity.
	if node != newcomer {
		pv.add(node, newcomer)
	}
}

func (pv *PartialViews) add(node, member int) {
	if node == member || pv.contains(node, member) {
		return
	}
	pv.views[node] = append(pv.views[node], int32(member))
}

func (pv *PartialViews) contains(node, member int) bool {
	for _, v := range pv.views[node] {
		if int(v) == member {
			return true
		}
	}
	return false
}

// N implements View.
func (pv *PartialViews) N() int { return len(pv.views) }

// Degree implements View.
func (pv *PartialViews) Degree(self int) int { return len(pv.views[self]) }

// View returns a copy of self's view.
func (pv *PartialViews) View(self int) []int {
	out := make([]int, len(pv.views[self]))
	for i, v := range pv.views[self] {
		out[i] = int(v)
	}
	return out
}

// SampleTargets implements View by sampling without replacement from self's
// local view.
func (pv *PartialViews) SampleTargets(dst []int, self, k int, r *xrand.RNG) []int {
	if dst == nil {
		dst = make([]int, 0, k)
	}
	dst = dst[:0]
	v := pv.views[self]
	if k >= len(v) {
		for _, t := range v {
			dst = append(dst, int(t))
		}
		r.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
		return dst
	}
	// Partial Fisher–Yates over indices via Floyd's algorithm on index
	// space.
	idx := r.SampleInts(nil, len(v), k)
	for _, i := range idx {
		dst = append(dst, int(v[i]))
	}
	return dst
}

// Shuffle performs rounds of Cyclon-style view mixing: in each round every
// member (in random order) exchanges up to swap entries with a random view
// neighbor; both sides replace the sent entries with the received ones,
// deduplicating and never pointing at themselves. Shuffling equalizes
// in-degrees, improving the uniformity assumption the analytic model makes.
func (pv *PartialViews) Shuffle(rounds, swap int, r *xrand.RNG) {
	if swap <= 0 || rounds <= 0 {
		return
	}
	n := len(pv.views)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for round := 0; round < rounds; round++ {
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, self := range order {
			v := pv.views[self]
			if len(v) == 0 {
				continue
			}
			peer := int(v[r.Intn(len(v))])
			pv.exchange(self, peer, swap, r)
		}
	}
}

// exchange swaps up to k view entries between a and b.
func (pv *PartialViews) exchange(a, b, k int, r *xrand.RNG) {
	sendA := pv.pickEntries(a, k, r)
	sendB := pv.pickEntries(b, k, r)
	pv.replaceEntries(a, sendA, sendB, b)
	pv.replaceEntries(b, sendB, sendA, a)
}

// pickEntries selects up to k distinct view positions of node and returns
// the entries.
func (pv *PartialViews) pickEntries(node, k int, r *xrand.RNG) []int32 {
	v := pv.views[node]
	if k > len(v) {
		k = len(v)
	}
	idx := r.SampleInts(nil, len(v), k)
	out := make([]int32, 0, k)
	for _, i := range idx {
		out = append(out, v[i])
	}
	return out
}

// replaceEntries removes the sent entries from node's view and integrates
// the received ones (skipping self-pointers and duplicates). The peer
// itself is always retained or added so exchanges never disconnect pairs.
func (pv *PartialViews) replaceEntries(node int, sent, received []int32, peer int) {
	v := pv.views[node][:0]
	for _, e := range pv.views[node] {
		drop := false
		for _, s := range sent {
			if e == s {
				drop = true
				break
			}
		}
		if !drop {
			v = append(v, e)
		}
	}
	pv.views[node] = v
	for _, e := range received {
		pv.add(node, int(e))
	}
	pv.add(node, peer)
}

// DegreeStats summarizes view sizes (out-degrees) and in-degrees.
type DegreeStats struct {
	MeanOut float64
	MaxOut  int
	MinOut  int
	MeanIn  float64
	MaxIn   int
	MinIn   int
}

// Stats computes degree statistics over all members.
func (pv *PartialViews) Stats() DegreeStats {
	n := len(pv.views)
	in := make([]int, n)
	st := DegreeStats{MinOut: int(^uint(0) >> 1)}
	var sumOut int
	for node, v := range pv.views {
		_ = node
		d := len(v)
		sumOut += d
		if d > st.MaxOut {
			st.MaxOut = d
		}
		if d < st.MinOut {
			st.MinOut = d
		}
		for _, t := range v {
			in[t]++
		}
	}
	st.MeanOut = float64(sumOut) / float64(n)
	st.MinIn = int(^uint(0) >> 1)
	var sumIn int
	for _, d := range in {
		sumIn += d
		if d > st.MaxIn {
			st.MaxIn = d
		}
		if d < st.MinIn {
			st.MinIn = d
		}
	}
	st.MeanIn = float64(sumIn) / float64(n)
	return st
}
