package membership

import (
	"testing"

	"gossipkit/internal/xrand"
)

func TestUnsubscribeRemovesAllReferences(t *testing.T) {
	r := xrand.New(1)
	pv := NewPartialViews(300, 1, r)
	leaver := 42
	if pv.References(leaver) == 0 {
		t.Fatal("precondition: leaver unreferenced")
	}
	pv.Unsubscribe(leaver, r)
	if got := pv.References(leaver); got != 0 {
		t.Errorf("leaver still referenced by %d views", got)
	}
	if pv.Degree(leaver) != 0 {
		t.Errorf("leaver retains a view of %d", pv.Degree(leaver))
	}
}

func TestUnsubscribePreservesInvariants(t *testing.T) {
	r := xrand.New(3)
	pv := NewPartialViews(300, 1, r)
	for _, leaver := range []int{5, 77, 123, 200} {
		pv.Unsubscribe(leaver, r)
	}
	gone := map[int]bool{5: true, 77: true, 123: true, 200: true}
	for self := 0; self < 300; self++ {
		if gone[self] {
			continue
		}
		seen := map[int]bool{}
		for _, id := range pv.View(self) {
			if id == self || seen[id] || gone[id] {
				t.Fatalf("member %d view invalid after churn: %v", self, pv.View(self))
			}
			seen[id] = true
		}
		if pv.Degree(self) == 0 {
			t.Errorf("member %d orphaned by churn", self)
		}
	}
}

func TestUnsubscribeDonatesArcs(t *testing.T) {
	// Mean out-degree must not collapse after churn: leavers donate
	// their contacts.
	r := xrand.New(5)
	pv := NewPartialViews(1000, 1, r)
	before := pv.Stats().MeanOut
	leavers, donated := 0, 0
	for id := 10; id < 1000; id += 37 {
		donated += pv.Unsubscribe(id, r)
		leavers++
	}
	if donated == 0 {
		t.Error("no arcs donated across any departure")
	}
	after := pv.Stats()
	// Mean over survivors: total arcs shrank by the leavers' views, but
	// survivors' degrees should stay within ~20% of the original mean.
	survivorMean := after.MeanOut * float64(1000) / float64(1000-leavers)
	if survivorMean < before*0.75 {
		t.Errorf("survivor mean degree collapsed: %.2f -> %.2f", before, survivorMean)
	}
}

func TestUnsubscribeOutOfRangeIsNoop(t *testing.T) {
	r := xrand.New(7)
	pv := NewPartialViews(50, 0, r)
	before := pv.Stats()
	pv.Unsubscribe(-1, r)
	pv.Unsubscribe(50, r)
	if pv.Stats() != before {
		t.Error("out-of-range unsubscribe changed views")
	}
}

func TestSubscribeRejoins(t *testing.T) {
	r := xrand.New(9)
	pv := NewPartialViews(200, 1, r)
	pv.Unsubscribe(100, r)
	pv.Subscribe(100, 7, 1, r)
	if pv.Degree(100) == 0 {
		t.Error("rejoined member has empty view")
	}
	if pv.References(100) == 0 {
		t.Error("rejoined member unreferenced")
	}
}

func TestSubscribeGrowsTable(t *testing.T) {
	r := xrand.New(11)
	pv := NewPartialViews(50, 0, r)
	pv.Subscribe(60, 3, 1, r)
	if pv.N() != 61 {
		t.Errorf("table size %d, want 61", pv.N())
	}
	if pv.Degree(60) == 0 {
		t.Error("new member has empty view")
	}
}

func TestSubscribeBadContactIsNoop(t *testing.T) {
	r := xrand.New(13)
	pv := NewPartialViews(50, 0, r)
	pv.Subscribe(10, 10, 1, r) // contact == id
	pv.Subscribe(10, -1, 1, r)
	// Views of member 10 unchanged beyond its original state; at minimum
	// no panic and no self-loop.
	for _, v := range pv.View(10) {
		if v == 10 {
			t.Fatal("self-loop created")
		}
	}
}

func TestChurnCycleKeepsGroupUsable(t *testing.T) {
	// Repeated leave/join cycles must keep views valid and nonempty.
	r := xrand.New(17)
	pv := NewPartialViews(200, 1, r)
	for cycle := 0; cycle < 30; cycle++ {
		id := 1 + r.Intn(199)
		pv.Unsubscribe(id, r)
		contact := r.Intn(200)
		for contact == id || pv.Degree(contact) == 0 {
			contact = r.Intn(200)
		}
		pv.Subscribe(id, contact, 1, r)
	}
	st := pv.Stats()
	if st.MeanOut < 2 {
		t.Errorf("views decayed to mean %.2f after churn", st.MeanOut)
	}
}
