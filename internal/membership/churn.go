package membership

import "gossipkit/internal/xrand"

// Unsubscribe removes member id from the group in the SCAMP style: every
// member whose view contains id replaces that entry with a member drawn
// from id's own view (so the leaver donates its arcs, preserving
// connectivity), and id's view is cleared. Entries that cannot be replaced
// (the donor view is exhausted or would create self-loops/duplicates) are
// dropped. It returns the number of arcs the leaver donated — callers use
// it to gauge how much connectivity a departure preserved.
func (pv *PartialViews) Unsubscribe(id int, r *xrand.RNG) int {
	if id < 0 || id >= len(pv.views) {
		return 0
	}
	donated := 0
	donors := append([]int32(nil), pv.views[id]...)
	for node := range pv.views {
		if node == id {
			continue
		}
		v := pv.views[node]
		w := v[:0]
		for _, e := range v {
			if int(e) != id {
				w = append(w, e)
				continue
			}
			// Try to donate one of the leaver's contacts.
			for tries := 0; tries < 4 && len(donors) > 0; tries++ {
				d := donors[r.Intn(len(donors))]
				if int(d) != node && !pv.contains(node, int(d)) {
					w = append(w, d)
					donated++
					break
				}
			}
		}
		pv.views[node] = w
	}
	pv.views[id] = nil
	return donated
}

// Subscribe adds a new member via an existing contact, running the same
// SCAMP-inspired forwarding as NewPartialViews does at build time. The id
// must be a currently empty slot (e.g. after Unsubscribe) or an index
// beyond no view; Subscribe grows the view table as needed.
func (pv *PartialViews) Subscribe(id, contact, copies int, r *xrand.RNG) {
	for id >= len(pv.views) {
		pv.views = append(pv.views, nil)
	}
	if contact < 0 || contact >= len(pv.views) || contact == id {
		return
	}
	targets := append([]int32(nil), pv.views[contact]...)
	for i := 0; i < copies; i++ {
		v := pv.views[contact]
		if len(v) == 0 {
			break
		}
		targets = append(targets, v[r.Intn(len(v))])
	}
	pv.add(contact, id)
	pv.add(id, contact)
	for _, t := range targets {
		pv.integrate(int(t), id, r)
	}
}

// References returns how many views contain id (its in-degree).
func (pv *PartialViews) References(id int) int {
	count := 0
	for node := range pv.views {
		if node != id && pv.contains(node, id) {
			count++
		}
	}
	return count
}
