package membership

import (
	"math"
	"testing"

	"gossipkit/internal/xrand"
)

func TestFullViewBasics(t *testing.T) {
	v := NewFullView(100)
	if v.N() != 100 || v.Degree(0) != 99 || v.Degree(57) != 99 {
		t.Fatalf("N=%d degree=%d", v.N(), v.Degree(0))
	}
}

func TestFullViewSampling(t *testing.T) {
	v := NewFullView(50)
	r := xrand.New(1)
	buf := make([]int, 0, 8)
	for trial := 0; trial < 200; trial++ {
		self := trial % 50
		buf = v.SampleTargets(buf, self, 5, r)
		if len(buf) != 5 {
			t.Fatalf("got %d targets", len(buf))
		}
		seen := map[int]bool{}
		for _, id := range buf {
			if id == self || id < 0 || id >= 50 || seen[id] {
				t.Fatalf("bad targets %v for self %d", buf, self)
			}
			seen[id] = true
		}
	}
}

func TestFullViewSampleMoreThanGroup(t *testing.T) {
	v := NewFullView(4)
	r := xrand.New(2)
	got := v.SampleTargets(nil, 1, 100, r)
	if len(got) != 3 {
		t.Fatalf("got %d targets, want 3", len(got))
	}
}

func TestFullViewInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewFullView(0)
}

func TestPartialViewsValidation(t *testing.T) {
	r := xrand.New(1)
	for _, f := range []func(){
		func() { NewPartialViews(1, 0, r) },
		func() { NewPartialViews(10, -1, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestPartialViewsInvariants(t *testing.T) {
	r := xrand.New(7)
	pv := NewPartialViews(500, 1, r)
	if pv.N() != 500 {
		t.Fatalf("N = %d", pv.N())
	}
	for self := 0; self < 500; self++ {
		view := pv.View(self)
		if len(view) == 0 {
			t.Fatalf("member %d has empty view", self)
		}
		seen := map[int]bool{}
		for _, id := range view {
			if id == self {
				t.Fatalf("member %d sees itself", self)
			}
			if id < 0 || id >= 500 {
				t.Fatalf("member %d sees out-of-range %d", self, id)
			}
			if seen[id] {
				t.Fatalf("member %d has duplicate view entry %d", self, id)
			}
			seen[id] = true
		}
	}
}

func TestPartialViewsLogarithmicSize(t *testing.T) {
	// SCAMP's signature: mean view size ~ (c+1)·ln(n).
	r := xrand.New(11)
	n, c := 2000, 1
	pv := NewPartialViews(n, c, r)
	st := pv.Stats()
	want := float64(c+1) * math.Log(float64(n)) // ≈ 15.2
	if st.MeanOut < want/2 || st.MeanOut > want*2 {
		t.Errorf("mean view size %.2f, want within 2x of %.2f", st.MeanOut, want)
	}
	// Growing n must grow views sublinearly.
	pvSmall := NewPartialViews(200, 1, xrand.New(11))
	if ratio := st.MeanOut / pvSmall.Stats().MeanOut; ratio > 4 {
		t.Errorf("view growth 10x n -> %.1fx views; not logarithmic", ratio)
	}
}

func TestPartialViewsSampling(t *testing.T) {
	r := xrand.New(13)
	pv := NewPartialViews(300, 0, r)
	buf := make([]int, 0, 16)
	for self := 0; self < 300; self += 7 {
		deg := pv.Degree(self)
		buf = pv.SampleTargets(buf, self, 3, r)
		wantLen := 3
		if deg < 3 {
			wantLen = deg
		}
		if len(buf) != wantLen {
			t.Fatalf("member %d (deg %d): got %d targets", self, deg, len(buf))
		}
		view := pv.View(self)
		inView := func(id int) bool {
			for _, v := range view {
				if v == id {
					return true
				}
			}
			return false
		}
		seen := map[int]bool{}
		for _, id := range buf {
			if !inView(id) || seen[id] || id == self {
				t.Fatalf("member %d sampled invalid target %d", self, id)
			}
			seen[id] = true
		}
	}
}

func TestPartialViewsSampleAll(t *testing.T) {
	r := xrand.New(17)
	pv := NewPartialViews(50, 0, r)
	self := 10
	got := pv.SampleTargets(nil, self, 10000, r)
	if len(got) != pv.Degree(self) {
		t.Fatalf("sample-all returned %d, degree %d", len(got), pv.Degree(self))
	}
}

func TestShufflePreservesInvariants(t *testing.T) {
	r := xrand.New(19)
	pv := NewPartialViews(400, 1, r)
	pv.Shuffle(5, 3, r)
	for self := 0; self < 400; self++ {
		view := pv.View(self)
		if len(view) == 0 {
			t.Fatalf("member %d lost its whole view", self)
		}
		seen := map[int]bool{}
		for _, id := range view {
			if id == self || seen[id] || id < 0 || id >= 400 {
				t.Fatalf("member %d has invalid view after shuffle: %v", self, view)
			}
			seen[id] = true
		}
	}
}

func TestShuffleImprovesInDegreeBalance(t *testing.T) {
	r := xrand.New(23)
	pv := NewPartialViews(1000, 1, r)
	before := pv.Stats()
	pv.Shuffle(20, 4, r)
	after := pv.Stats()
	// Shuffling should not blow up the max in-degree; typically it
	// shrinks the spread. Allow equality to avoid flakiness.
	if after.MaxIn > before.MaxIn*2 {
		t.Errorf("shuffle worsened in-degree: max %d -> %d", before.MaxIn, after.MaxIn)
	}
	if after.MeanOut < 1 {
		t.Errorf("shuffle destroyed views: mean out %f", after.MeanOut)
	}
}

func TestShuffleNoOpParams(t *testing.T) {
	r := xrand.New(29)
	pv := NewPartialViews(100, 0, r)
	before := pv.Stats()
	pv.Shuffle(0, 3, r)
	pv.Shuffle(3, 0, r)
	after := pv.Stats()
	if before != after {
		t.Error("no-op shuffle changed views")
	}
}

func TestStatsConsistency(t *testing.T) {
	r := xrand.New(31)
	pv := NewPartialViews(300, 1, r)
	st := pv.Stats()
	// Sum of out-degrees equals sum of in-degrees; means must match.
	if math.Abs(st.MeanOut-st.MeanIn) > 1e-9 {
		t.Errorf("mean out %f != mean in %f", st.MeanOut, st.MeanIn)
	}
	if st.MinOut < 0 || st.MaxOut < st.MinOut {
		t.Errorf("degree stats inconsistent: %+v", st)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewPartialViews(200, 1, xrand.New(5))
	b := NewPartialViews(200, 1, xrand.New(5))
	for i := 0; i < 200; i++ {
		va, vb := a.View(i), b.View(i)
		if len(va) != len(vb) {
			t.Fatalf("views differ at %d", i)
		}
		for j := range va {
			if va[j] != vb[j] {
				t.Fatalf("views differ at %d[%d]", i, j)
			}
		}
	}
}

func BenchmarkPartialViewsBuild1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = NewPartialViews(1000, 1, xrand.New(uint64(i)))
	}
}

func BenchmarkFullViewSample(b *testing.B) {
	v := NewFullView(5000)
	r := xrand.New(1)
	buf := make([]int, 0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = v.SampleTargets(buf, i%5000, 4, r)
	}
}
