package asciiplot

import (
	"strings"
	"testing"
)

func TestChartBasic(t *testing.T) {
	out := Chart("demo", []Series{
		{Name: "line", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
	}, 30, 8)
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "line") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("markers missing")
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("none", nil, 30, 8)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestChartSkipsMismatchedSeries(t *testing.T) {
	out := Chart("m", []Series{
		{Name: "bad", X: []float64{1, 2}, Y: []float64{1}},
		{Name: "good", X: []float64{0, 1}, Y: []float64{5, 6}},
	}, 30, 8)
	if !strings.Contains(out, "good") {
		t.Error("good series missing")
	}
	// The bad series appears in the legend but plots nothing; chart must
	// not panic and must scale to the good series.
	if !strings.Contains(out, "6") {
		t.Error("y max label missing")
	}
}

func TestChartConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	out := Chart("const", []Series{
		{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{2, 2, 2}},
	}, 25, 6)
	if !strings.Contains(out, "flat") {
		t.Error("flat series missing")
	}
}

func TestChartMinimumDimensions(t *testing.T) {
	out := Chart("small", []Series{
		{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}},
	}, 1, 1)
	if len(out) == 0 {
		t.Error("no output at clamped dimensions")
	}
}

func TestChartManySeriesMarkerCycle(t *testing.T) {
	series := make([]Series, 12)
	for i := range series {
		series[i] = Series{
			Name: strings.Repeat("s", i+1),
			X:    []float64{float64(i)},
			Y:    []float64{float64(i)},
		}
	}
	out := Chart("many", series, 40, 10)
	if !strings.Contains(out, "ssssssssssss") {
		t.Error("12th series missing from legend")
	}
}

func TestBars(t *testing.T) {
	out := Bars("bars", []string{"a", "bb"}, []float64{1, 4}, 20)
	if !strings.Contains(out, "bars") || !strings.Contains(out, "bb") {
		t.Errorf("bars output: %q", out)
	}
	if !strings.Contains(out, "█") {
		t.Error("no bars drawn")
	}
}

func TestBarsAllZero(t *testing.T) {
	out := Bars("zeros", []string{"a"}, []float64{0}, 20)
	if !strings.Contains(out, "0") {
		t.Errorf("zero bars output: %q", out)
	}
}

func TestBarsTinyPositiveVisible(t *testing.T) {
	out := Bars("tiny", []string{"big", "tiny"}, []float64{1000, 0.001}, 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[2], "█") {
		t.Error("tiny positive value should draw at least one cell")
	}
}
