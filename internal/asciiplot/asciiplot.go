// Package asciiplot renders simple scatter/line charts and bar charts as
// text, so the experiment harness can show figure shapes directly in a
// terminal next to the CSV it writes.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named sequence of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// markers cycles through per-series glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '~', '^'}

// Chart renders the series into a w×h character plot with axes and a
// legend. Series with mismatched X/Y lengths or no points are skipped.
func Chart(title string, series []Series, w, h int) string {
	if w < 20 {
		w = 20
	}
	if h < 5 {
		h = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			continue
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			any = true
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if !any {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		if len(s.X) != len(s.Y) {
			continue
		}
		m := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(h-1))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%10.4g ┤%s\n", maxY, string(grid[0]))
	for r := 1; r < h-1; r++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.4g ┤%s\n", minY, string(grid[h-1]))
	fmt.Fprintf(&b, "%10s └%s\n", "", strings.Repeat("─", w))
	fmt.Fprintf(&b, "%11s%-*.4g%*.4g\n", "", w/2, minX, w-w/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Bars renders a labeled horizontal bar chart of values (non-negative).
func Bars(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if maxV == 0 {
		maxV = 1
	}
	labW := 0
	for _, l := range labels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := int(v / maxV * float64(width))
		if v > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%*s │%s %.4g\n", labW, label, strings.Repeat("█", n), v)
	}
	return b.String()
}
