package bitset

import (
	"testing"

	"gossipkit/internal/xrand"
)

// TestBitsMatchesBoolSlice cross-checks every operation against a plain
// []bool reference under a randomized op sequence.
func TestBitsMatchesBoolSlice(t *testing.T) {
	r := xrand.New(42)
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		var b Bits
		b.Reset(n)
		ref := make([]bool, n)
		if b.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, b.Len())
		}
		for op := 0; op < 4*n; op++ {
			i := r.Intn(max(n, 1))
			if n == 0 {
				break
			}
			if r.Bool(0.5) {
				b.Set(i)
				ref[i] = true
			} else {
				b.Unset(i)
				ref[i] = false
			}
		}
		count := 0
		for i, want := range ref {
			if b.Get(i) != want {
				t.Fatalf("n=%d: bit %d = %v, want %v", n, i, b.Get(i), want)
			}
			if want {
				count++
			}
		}
		if b.Count() != count {
			t.Errorf("n=%d: Count=%d, want %d", n, b.Count(), count)
		}
	}
}

// TestSetAllRespectsLength: SetAll must not set bits beyond Len(), so Count
// stays exact for lengths that are not multiples of 64.
func TestSetAllRespectsLength(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 130} {
		var b Bits
		b.Reset(n)
		b.SetAll()
		if b.Count() != n {
			t.Errorf("n=%d: Count after SetAll = %d", n, b.Count())
		}
	}
}

// TestResetReusesStorage pins the arena property: shrinking or re-sizing to
// an equal-or-smaller word count must reuse the backing array and clear it.
func TestResetReusesStorage(t *testing.T) {
	var b Bits
	b.Reset(1024)
	b.SetAll()
	words := &b.Words()[0]
	b.Reset(512)
	if &b.Words()[0] != words {
		t.Error("Reset to smaller size reallocated")
	}
	if b.Count() != 0 {
		t.Errorf("Reset left %d bits set", b.Count())
	}
	allocs := testing.AllocsPerRun(10, func() { b.Reset(1024); b.Set(7) })
	if allocs != 0 {
		t.Errorf("warm Reset allocates %.1f times", allocs)
	}
}
