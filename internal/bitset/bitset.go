// Package bitset provides the packed boolean run state used by the
// discrete-event hot paths: a Bits value stores n flags in ⌈n/64⌉ uint64
// words, an 8× memory cut over []bool that also halves cache traffic when
// executions touch millions of members (received flags, up flags, failure
// masks — see core.NetArena and simnet.Network).
//
// Bits is designed for arena reuse: Reset resizes in place and reuses the
// word storage whenever capacity allows, so a warm arena redraws per-run
// state with zero heap allocations. All operations are single-goroutine,
// deterministic, and allocation-free except for capacity growth.
package bitset

import (
	"fmt"
	"math/bits"
)

// Bits is a fixed-length bit vector. The zero value is an empty vector;
// size it with Reset. Copying a Bits copies the slice header only — the
// copies share storage — so pass *Bits when the vector outlives the call.
type Bits struct {
	words []uint64
	n     int
}

// Reset sizes the vector to n bits, all zero, reusing the existing word
// storage when it is large enough. This is the arena-recycling entry point:
// after the first run at a given n, Reset never allocates.
func (b *Bits) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative length %d", n))
	}
	w := (n + 63) / 64
	if cap(b.words) >= w {
		b.words = b.words[:w]
		clear(b.words)
	} else {
		b.words = make([]uint64, w)
	}
	b.n = n
}

// Len returns the number of bits.
func (b *Bits) Len() int { return b.n }

// Get reports whether bit i is set. i must be in [0, Len()).
func (b *Bits) Get(i int) bool {
	return b.words[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i.
func (b *Bits) Set(i int) {
	b.words[uint(i)>>6] |= 1 << (uint(i) & 63)
}

// Unset clears bit i.
func (b *Bits) Unset(i int) {
	b.words[uint(i)>>6] &^= 1 << (uint(i) & 63)
}

// SetAll sets every bit in [0, Len()).
func (b *Bits) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if r := uint(b.n) & 63; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << r) - 1
	}
}

// Count returns the number of set bits.
func (b *Bits) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Words exposes the packed storage; callers must treat it as read-only.
// It exists so accounting code can report resident bytes without copying.
func (b *Bits) Words() []uint64 { return b.words }
