package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at %d: %x vs %x", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	s1 := root.Split(1)
	s2 := root.Split(2)
	s1b := root.Split(1)
	for i := 0; i < 100; i++ {
		v1, v1b := s1.Uint64(), s1b.Uint64()
		if v1 != v1b {
			t.Fatalf("Split(1) not reproducible at %d", i)
		}
		if v1 == s2.Uint64() {
			t.Fatalf("Split(1) and Split(2) collided at %d", i)
		}
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(3)
	_ = a.Split(4)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent state")
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(11)
	for _, n := range []uint64{1, 2, 3, 7, 10, 100, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	// Chi-square-ish sanity check: 10 buckets, 100k draws.
	r := New(13)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from %g", b, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(17)
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleIntsProperties(t *testing.T) {
	r := New(23)
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw % 600) // may exceed n
		s := r.SampleInts(nil, n, k)
		wantLen := k
		if wantLen > n {
			wantLen = n
		}
		if len(s) != wantLen {
			return false
		}
		seen := make(map[int]bool, len(s))
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSampleIntsUniformCoverage(t *testing.T) {
	// Every element should appear with frequency ~ k/n.
	r := New(29)
	const n, k, trials = 50, 5, 20000
	counts := make([]int, n)
	buf := make([]int, 0, k)
	for i := 0; i < trials; i++ {
		buf = r.SampleInts(buf, n, k)
		for _, v := range buf {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d sampled %d times, want ~%g", v, c, want)
		}
	}
}

func TestSampleIntsPositionExchangeable(t *testing.T) {
	// After the shuffle, the first position should be uniform over [0,n).
	r := New(31)
	const n, k, trials = 20, 4, 40000
	counts := make([]int, n)
	buf := make([]int, 0, k)
	for i := 0; i < trials; i++ {
		buf = r.SampleInts(buf, n, k)
		counts[buf[0]]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("first-position count for %d = %d, want ~%g", v, c, want)
		}
	}
}

func TestSampleExcluding(t *testing.T) {
	r := New(37)
	f := func(nRaw, kRaw, exclRaw uint16) bool {
		n := int(nRaw%200) + 2
		k := int(kRaw % 250)
		excl := int(exclRaw) % n
		s := r.SampleExcluding(nil, n, k, excl)
		wantLen := k
		if wantLen > n-1 {
			wantLen = n - 1
		}
		if len(s) != wantLen {
			return false
		}
		seen := make(map[int]bool, len(s))
		for _, v := range s {
			if v < 0 || v >= n || v == excl || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSampleExcludingAll(t *testing.T) {
	r := New(41)
	s := r.SampleExcluding(nil, 10, 9, 4)
	if len(s) != 9 {
		t.Fatalf("want all 9 others, got %d", len(s))
	}
	for _, v := range s {
		if v == 4 {
			t.Fatal("excluded member sampled")
		}
	}
}

func TestSampleExcludingUniform(t *testing.T) {
	r := New(43)
	const n, k, excl, trials = 30, 3, 7, 30000
	counts := make([]int, n)
	buf := make([]int, 0, k)
	for i := 0; i < trials; i++ {
		buf = r.SampleExcluding(buf, n, k, excl)
		for _, v := range buf {
			counts[v]++
		}
	}
	if counts[excl] != 0 {
		t.Fatalf("excluded member sampled %d times", counts[excl])
	}
	want := float64(trials) * k / (n - 1)
	for v, c := range counts {
		if v == excl {
			continue
		}
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("member %d sampled %d times, want ~%g", v, c, want)
		}
	}
}

func TestBool(t *testing.T) {
	r := New(47)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / trials; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) empirical rate %g", p)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(53)
	const draws = 200000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %g", variance)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := New(59)
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential variate %g", x)
		}
		sum += x
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %g, want ~1", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}

func BenchmarkSampleExcludingSparse(b *testing.B) {
	r := New(1)
	buf := make([]int, 0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = r.SampleExcluding(buf, 10000, 5, 17)
	}
}

func BenchmarkSampleExcludingDense(b *testing.B) {
	r := New(1)
	buf := make([]int, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = r.SampleExcluding(buf, 100, 60, 17)
	}
}
