package xrand

import "math/bits"

// mulHi64 returns the high 64 bits of the 128-bit product a*b.

// RNG is a PCG-XSL-RR 128/64 pseudo random number generator.
// The zero value is not valid; use New or Split.
type RNG struct {
	hi, lo uint64 // 128-bit state
	inc    uint64 // stream selector (odd)
}

// pcgMultiplier is the 128-bit LCG multiplier used by pcg64, split into
// 64-bit halves (0x2360ed051fc65da44385df649fccf645).
const (
	pcgMulHi = 0x2360ed051fc65da4
	pcgMulLo = 0x4385df649fccf645
)

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding, following the recommendation of the PCG and
// xoshiro authors to seed one generator family with another.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators created with the
// same seed produce identical sequences.
func New(seed uint64) *RNG {
	s := seed
	r := &RNG{}
	r.hi = splitmix64(&s)
	r.lo = splitmix64(&s)
	r.inc = splitmix64(&s) | 1 // must be odd
	// Decorrelate the first outputs from the raw seed.
	r.Uint64()
	r.Uint64()
	return r
}

// Split returns a new generator derived from r and the given stream index.
// Splitting the same parent state with distinct indices yields independent
// streams; the parent is not advanced, so Split is safe to call concurrently
// with other Splits (but not with Uint64 on the same receiver).
func (r *RNG) Split(index uint64) *RNG {
	// Mix the parent state and the index through SplitMix64 to build a
	// fresh, decorrelated seed.
	s := r.hi ^ bits.RotateLeft64(r.lo, 31) ^ (index * 0x9e3779b97f4a7c15)
	c := &RNG{}
	c.hi = splitmix64(&s)
	c.lo = splitmix64(&s)
	c.inc = splitmix64(&s) | 1
	c.Uint64()
	return c
}

// step advances the 128-bit LCG state.
func (r *RNG) step() {
	// state = state*mul + inc (128-bit arithmetic)
	hi, lo := bits.Mul64(r.lo, pcgMulLo)
	hi += r.hi*pcgMulLo + r.lo*pcgMulHi
	var carry uint64
	lo, carry = bits.Add64(lo, r.inc, 0)
	hi += carry
	r.hi, r.lo = hi, lo
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.step()
	// XSL-RR output function: xor-fold the state, then rotate by the top
	// six bits.
	return bits.RotateLeft64(r.hi^r.lo, -int(r.hi>>58))
}

// Int63 implements math/rand.Source.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Seed implements math/rand.Source by reseeding the generator.
func (r *RNG) Seed(seed int64) { *r = *New(uint64(seed)) }

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// It uses Lemire's multiply-shift rejection method, which is unbiased.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Scratch pools the working storage the sampling routines need beyond
// their output slice: the dense path's n-sized permutation and the mid-k
// path's duplicate bitset. One Scratch serves many draws (a pooled failure
// mask owns one), making repeated mask redraws allocation-free after
// warm-up, and it stores candidate values as int32 (group sizes are bounded
// by 2³¹), halving the resident bytes per node against []int. The zero
// value is ready to use. A Scratch carries no RNG state: draws with and
// without one consume identical random streams.
type Scratch struct {
	vals []int32
	seen []uint64
}

// buf32 returns an n-sized int32 slice from the pool, contents unspecified.
func (s *Scratch) buf32(n int) []int32 {
	if cap(s.vals) < n {
		s.vals = make([]int32, n)
	}
	s.vals = s.vals[:n]
	return s.vals
}

// bits returns an n-bit zeroed bitset from the pool.
func (s *Scratch) bits(n int) []uint64 {
	w := (n + 63) / 64
	if cap(s.seen) < w {
		s.seen = make([]uint64, w)
	}
	s.seen = s.seen[:w]
	clear(s.seen)
	return s.seen
}

// SampleInts writes k distinct uniform values from [0, n) into dst and
// returns dst[:k]. If k >= n it returns all of [0, n) in random order.
// dst must have capacity at least min(k, n); a nil dst allocates.
//
// For small k relative to n it uses Floyd's algorithm (O(k) expected, with
// duplicate detection over dst itself for gossip-sized k so the hot path
// never allocates); otherwise it uses a partial Fisher–Yates over a scratch
// slice. The random stream is identical to SampleIntsVisit for every
// (n, k) — duplicate detection draws no randomness.
func (r *RNG) SampleInts(dst []int, n, k int) []int {
	if n < 0 || k < 0 {
		panic("xrand: SampleInts with negative n or k")
	}
	if k > n {
		k = n
	}
	if dst == nil {
		dst = make([]int, 0, k)
	}
	dst = dst[:0]
	if k == 0 {
		return dst
	}
	// Floyd's algorithm wins when the selection is sparse; the constant
	// 4 keeps the duplicate hit rate low.
	if k*4 <= n {
		if k <= 64 {
			// Fanout-sized draws: O(k²) scan of the picks so far
			// beats a set and stays allocation-free.
			for j := n - k; j < n; j++ {
				t := r.Intn(j + 1)
				for _, v := range dst {
					if v == t {
						t = j
						break
					}
				}
				dst = append(dst, t)
			}
		} else {
			seen := make([]uint64, (n+63)/64)
			for j := n - k; j < n; j++ {
				t := r.Intn(j + 1)
				if seen[uint(t)>>6]&(1<<(uint(t)&63)) != 0 {
					t = j
				}
				seen[uint(t)>>6] |= 1 << (uint(t) & 63)
				dst = append(dst, t)
			}
		}
		// Floyd yields a uniformly random k-subset but in biased order;
		// shuffle so callers can rely on exchangeability of positions.
		r.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
		return dst
	}
	scratch := make([]int, n)
	for i := range scratch {
		scratch[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		scratch[i], scratch[j] = scratch[j], scratch[i]
	}
	return append(dst, scratch[:k]...)
}

// SampleIntsVisit draws the same k-subset of [0, n) as SampleInts —
// identical random stream — but streams the values to visit instead of
// materializing an []int, with all working storage pooled (int32-sized) in
// s. This is the paper-scale mask redraw primitive: at n=10⁶⁺ it avoids
// holding an 8-bytes-per-member pick list alive in the arena.
func (r *RNG) SampleIntsVisit(s *Scratch, n, k int, visit func(int)) {
	if n < 0 || k < 0 {
		panic("xrand: SampleInts with negative n or k")
	}
	if k > n {
		k = n
	}
	if k == 0 {
		return
	}
	if s == nil {
		s = &Scratch{}
	}
	// Floyd's algorithm wins when the selection is sparse; the constant
	// 4 keeps the duplicate hit rate low. The duplicate check consumes no
	// randomness, so the scan and bitset variants draw identical streams.
	if k*4 <= n {
		picks := s.buf32(k)[:0]
		if k <= 64 {
			// Fanout-sized draws: O(k²) scan of the picks so far
			// beats a set and stays allocation-free.
			for j := n - k; j < n; j++ {
				t := int32(r.Intn(j + 1))
				for _, v := range picks {
					if v == t {
						t = int32(j)
						break
					}
				}
				picks = append(picks, t)
			}
		} else {
			seen := s.bits(n)
			for j := n - k; j < n; j++ {
				t := r.Intn(j + 1)
				if seen[uint(t)>>6]&(1<<(uint(t)&63)) != 0 {
					t = j
				}
				seen[uint(t)>>6] |= 1 << (uint(t) & 63)
				picks = append(picks, int32(t))
			}
		}
		// Floyd yields a uniformly random k-subset but in biased order;
		// shuffle so callers can rely on exchangeability of positions.
		r.Shuffle(len(picks), func(i, j int) { picks[i], picks[j] = picks[j], picks[i] })
		for _, v := range picks {
			visit(int(v))
		}
		return
	}
	scratch := s.buf32(n)
	for i := range scratch {
		scratch[i] = int32(i)
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		scratch[i], scratch[j] = scratch[j], scratch[i]
	}
	for _, v := range scratch[:k] {
		visit(int(v))
	}
}

// SampleExcluding writes k distinct uniform values from [0, n) \ {excl}
// into dst and returns it. It is the target-selection primitive for gossip:
// a member never gossips to itself. If k >= n-1, all other members are
// returned. excl must be in [0, n).
func (r *RNG) SampleExcluding(dst []int, n, k, excl int) []int {
	if excl < 0 || excl >= n {
		panic("xrand: SampleExcluding exclusion out of range")
	}
	if k > n-1 {
		k = n - 1
	}
	if dst == nil {
		dst = make([]int, 0, k)
	}
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	// Sample from [0, n-1) and remap values >= excl up by one. This keeps
	// the draw uniform over the n-1 admissible members.
	dst = r.SampleInts(dst, n-1, k)
	for i, v := range dst {
		if v >= excl {
			dst[i] = v + 1
		}
	}
	return dst
}

// SampleExcludingVisit draws the same k-subset of [0, n) \ {excl} as
// SampleExcluding — identical random stream — streaming the values to
// visit with pooled working storage; see SampleIntsVisit.
func (r *RNG) SampleExcludingVisit(s *Scratch, n, k, excl int, visit func(int)) {
	if excl < 0 || excl >= n {
		panic("xrand: SampleExcluding exclusion out of range")
	}
	if k > n-1 {
		k = n - 1
	}
	if k <= 0 {
		return
	}
	// Sample from [0, n-1) and remap values >= excl up by one. This keeps
	// the draw uniform over the n-1 admissible members.
	r.SampleIntsVisit(s, n-1, k, func(v int) {
		if v >= excl {
			v++
		}
		visit(v)
	})
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method. It is used by latency models; heavy-duty consumers
// should prefer the distributions in internal/dist.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * sqrt(-2*ln(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -ln(u)
		}
	}
}
