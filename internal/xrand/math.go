package xrand

import "math"

// Thin wrappers keep the hot sampling paths readable; the compiler inlines
// them to direct math calls.

func sqrt(x float64) float64 { return math.Sqrt(x) }
func ln(x float64) float64   { return math.Log(x) }
