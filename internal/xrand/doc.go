// Package xrand provides a small, fast, deterministic random number
// generator with splittable streams, plus the sampling utilities the
// simulator needs (uniform ints, floats, permutations, sampling without
// replacement).
//
// The generator is PCG-XSL-RR 128/64 ("pcg64"), seeded through SplitMix64 so
// that any 64-bit seed yields a well-mixed initial state. Streams derived
// with Split are statistically independent for all practical purposes, which
// lets Monte-Carlo replications run in parallel while keeping results
// independent of goroutine scheduling: replication i always uses the stream
// split for index i.
//
// Determinism guarantee: every method consumes a random stream that is a
// pure function of the seed and the argument values — never of pooling or
// buffer capacity. In particular SampleIntsVisit and SampleExcludingVisit
// draw exactly the stream of their materializing counterparts, so swapping
// the pooled streaming sampler in or out of a hot loop cannot perturb
// downstream results (the sweep runners rely on this for byte-identical
// output).
//
// Allocation guarantee: the fanout-sized sampling path (k ≤ 64, sparse) is
// allocation-free given a capacious dst; the larger paths are
// allocation-free through SampleIntsVisit/SampleExcludingVisit with a warm
// Scratch, which also store candidates as int32 to halve resident bytes
// (the pooled failure-mask redraw is the consumer).
//
// xrand.RNG implements math/rand.Source and math/rand.Source64, so it can be
// dropped into stdlib helpers when convenient, but the methods defined here
// avoid the extra allocation and locking of math/rand.
package xrand
