package protocols

import (
	"fmt"

	"gossipkit/internal/failure"
	"gossipkit/internal/membership"
	"gossipkit/internal/xrand"
)

// RDGParams configures the Route-Driven-Gossip-style baseline (Luo,
// Eugster & Hubaux, the paper's reference [8]): a "pure gossip" protocol
// in which data, negative acknowledgments, and membership all travel by
// gossip over partial views. Our simulation keeps its two signature
// mechanisms — push gossip of fresh packets over partial views, and
// NACK-driven pull recovery in later rounds — in a synchronous-round
// model.
type RDGParams struct {
	// N is the group size.
	N int
	// Fanout is the per-round push fanout.
	Fanout int
	// PushRounds is the number of proactive gossip rounds.
	PushRounds int
	// RecoveryRounds is the number of NACK/pull rounds after the push
	// phase: members that know a packet id but miss its payload pull
	// from a random view member.
	RecoveryRounds int
	// AliveRatio is the nonfailed member ratio q.
	AliveRatio float64
	// Source publishes the packet and never fails.
	Source int
	// ViewCopies is the SCAMP parameter c for the partial views.
	ViewCopies int
	// PayloadProb is the probability a push message has room for the
	// payload (RDG's per-message buffer limit); pushes without room carry
	// only the packet-id digest. 0 means 1.0 (always include).
	PayloadProb float64
}

// Validate checks the parameters.
func (p RDGParams) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("protocols: group size %d too small", p.N)
	}
	if p.Fanout < 1 {
		return fmt.Errorf("protocols: fanout %d < 1", p.Fanout)
	}
	if p.PushRounds < 1 {
		return fmt.Errorf("protocols: push rounds %d < 1", p.PushRounds)
	}
	if p.RecoveryRounds < 0 {
		return fmt.Errorf("protocols: negative recovery rounds %d", p.RecoveryRounds)
	}
	if p.AliveRatio < 0 || p.AliveRatio > 1 || p.AliveRatio != p.AliveRatio {
		return fmt.Errorf("protocols: alive ratio %g outside [0,1]", p.AliveRatio)
	}
	if p.Source < 0 || p.Source >= p.N {
		return fmt.Errorf("protocols: source %d out of range", p.Source)
	}
	if p.ViewCopies < 0 {
		return fmt.Errorf("protocols: negative view copies %d", p.ViewCopies)
	}
	if p.PayloadProb < 0 || p.PayloadProb > 1 {
		return fmt.Errorf("protocols: payload probability %g outside [0,1]", p.PayloadProb)
	}
	return nil
}

// RDGResult extends Result with recovery accounting.
type RDGResult struct {
	Result
	// DeliveredByPush counts members satisfied during the push phase.
	DeliveredByPush int
	// DeliveredByPull counts members recovered via NACK pulls.
	DeliveredByPull int
	// AwareMisses is the number of members that learned the packet id
	// (via digests) but never obtained the payload.
	AwareMisses int
}

// RunRDG executes the protocol. During push rounds, holders gossip the
// payload; every push also spreads the packet *id* (a digest), making
// recipients "aware". During recovery rounds, aware-but-missing members
// pull from a random view neighbor (NACK), succeeding if the neighbor
// holds the payload.
func RunRDG(p RDGParams, r *xrand.RNG) (RDGResult, error) {
	if err := p.Validate(); err != nil {
		return RDGResult{}, err
	}
	views := membership.NewPartialViews(p.N, p.ViewCopies, r)
	views.Shuffle(5, 3, r)
	mask := failure.ExactMask(p.N, p.AliveRatio, p.Source, r)

	res := RDGResult{Result: Result{AliveCount: mask.AliveCount()}}
	has := make([]bool, p.N)       // holds payload
	aware := make([]bool, p.N)     // knows the packet id
	provider := make([]int32, p.N) // who advertised the id to us
	for i := range provider {
		provider[i] = -1
	}
	has[p.Source] = true
	aware[p.Source] = true
	res.Delivered = 1
	res.DeliveredByPush = 1

	// Push phase. RDG gossips data packets AND packet-id digests: holders
	// push the payload to Fanout targets; aware non-holders forward the
	// digest (ids ride on every gossip message in RDG), so awareness
	// outruns the payload and seeds the NACK-based recovery.
	targets := make([]int, 0, p.Fanout)
	for round := 0; round < p.PushRounds; round++ {
		res.Rounds++
		type push struct {
			from, to int
			payload  bool
		}
		var pushes []push
		for id := 0; id < p.N; id++ {
			if !mask.Alive(id) || !aware[id] {
				continue
			}
			targets = views.SampleTargets(targets, id, p.Fanout, r)
			for _, t := range targets {
				withPayload := has[id] && (p.PayloadProb == 0 || r.Bool(p.PayloadProb))
				pushes = append(pushes, push{from: id, to: t, payload: withPayload})
				res.MessagesSent++
			}
		}
		for _, ps := range pushes {
			if !mask.Alive(ps.to) {
				continue
			}
			if !aware[ps.to] || !has[ps.to] {
				provider[ps.to] = int32(ps.from)
			}
			aware[ps.to] = true
			if ps.payload && !has[ps.to] {
				has[ps.to] = true
				res.Delivered++
				res.DeliveredByPush++
			}
		}
	}
	// Recovery phase: aware-but-missing members NACK their provider (who
	// advertised the id); the pull succeeds when the provider holds the
	// payload by now. Failed pulls re-aim at a random view member.
	// Provider possession is evaluated against the round-start state
	// (synchronous-round semantics, like the LRG repair snapshot): a
	// member recovered this round serves pulls from the next round on,
	// which is also exactly what the message-based DES runtime produces.
	var snapshot []bool
	for round := 0; round < p.RecoveryRounds; round++ {
		res.Rounds++
		snapshot = append(snapshot[:0], has...)
		recovered := 0
		for id := 0; id < p.N; id++ {
			if !mask.Alive(id) || has[id] || !aware[id] {
				continue
			}
			target := int(provider[id])
			if target < 0 || !mask.Alive(target) || !snapshot[target] {
				targets = views.SampleTargets(targets, id, 1, r)
				if len(targets) != 1 {
					continue
				}
				target = targets[0]
			}
			res.MessagesSent++ // the NACK
			if mask.Alive(target) && snapshot[target] {
				res.MessagesSent++ // the retransmission
				has[id] = true
				res.Delivered++
				res.DeliveredByPull++
				recovered++
			} else {
				provider[id] = int32(target) // remember for next round
			}
		}
		if recovered == 0 && round > 0 {
			break
		}
	}
	for id := 0; id < p.N; id++ {
		if mask.Alive(id) && aware[id] && !has[id] {
			res.AwareMisses++
		}
	}
	finish(&res.Result)
	return res, nil
}
