package protocols

import (
	"fmt"

	"gossipkit/internal/epidemic"
	"gossipkit/internal/failure"
	"gossipkit/internal/graph"
	"gossipkit/internal/xrand"
)

// Result is the common outcome report for baseline protocols.
type Result struct {
	// AliveCount is the number of nonfailed members.
	AliveCount int
	// Delivered is the number of nonfailed members that got the message.
	Delivered int
	// Reliability is Delivered/AliveCount.
	Reliability float64
	// MessagesSent counts protocol messages (payload pushes; repair
	// pulls count as one message each).
	MessagesSent int
	// Rounds is the number of rounds actually executed.
	Rounds int
}

func finish(res *Result) {
	if res.AliveCount > 0 {
		res.Reliability = float64(res.Delivered) / float64(res.AliveCount)
	}
}

// ---------------------------------------------------------------------------
// Pbcast-style round-based gossip

// PbcastParams configures the round-based anti-entropy baseline.
type PbcastParams struct {
	// N is the group size.
	N int
	// Fanout is the per-round fanout of every infected member.
	Fanout int
	// Rounds is the number of gossip rounds.
	Rounds int
	// AliveRatio is the nonfailed member ratio q.
	AliveRatio float64
	// Source initiates the multicast and never fails.
	Source int
}

// Validate checks the parameters.
func (p PbcastParams) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("protocols: group size %d too small", p.N)
	}
	if p.Fanout < 0 {
		return fmt.Errorf("protocols: negative fanout %d", p.Fanout)
	}
	if p.Rounds < 1 {
		return fmt.Errorf("protocols: rounds %d < 1", p.Rounds)
	}
	if p.AliveRatio < 0 || p.AliveRatio > 1 || p.AliveRatio != p.AliveRatio {
		return fmt.Errorf("protocols: alive ratio %g outside [0,1]", p.AliveRatio)
	}
	if p.Source < 0 || p.Source >= p.N {
		return fmt.Errorf("protocols: source %d out of range", p.Source)
	}
	return nil
}

// RunPbcast executes the round-based protocol: in each of Rounds rounds,
// every nonfailed member currently holding the message pushes it to Fanout
// uniformly chosen members. Unlike the paper's single-shot algorithm,
// holders re-gossip every round, so the spread cannot die out while the
// source lives.
func RunPbcast(p PbcastParams, r *xrand.RNG) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	mask := failure.ExactMask(p.N, p.AliveRatio, p.Source, r)
	res := Result{AliveCount: mask.AliveCount()}
	has := make([]bool, p.N)
	holders := make([]int32, 0, mask.AliveCount())
	has[p.Source] = true
	holders = append(holders, int32(p.Source))
	res.Delivered = 1
	targets := make([]int, 0, p.Fanout)
	for round := 0; round < p.Rounds; round++ {
		res.Rounds++
		newHolders := holders // append-only; new infections join next round
		for _, uu := range holders {
			u := int(uu)
			targets = r.SampleExcluding(targets, p.N, p.Fanout, u)
			res.MessagesSent += len(targets)
			for _, v := range targets {
				if has[v] || !mask.Alive(v) {
					continue
				}
				has[v] = true
				res.Delivered++
				newHolders = append(newHolders, int32(v))
			}
		}
		holders = newHolders
		if res.Delivered == res.AliveCount {
			break // everyone has it; further rounds are pure overhead
		}
	}
	finish(&res)
	return res, nil
}

// PbcastPredictedRounds returns the expected number of rounds for push
// gossip with per-round fanout f to infect a group of n members (the
// classic log-time bound: ~log_{f+1}(n) growth plus a tail).
func PbcastPredictedRounds(n, fanout int) int {
	if n <= 1 || fanout < 1 {
		return 0
	}
	rounds := 0
	infected := 1.0
	for infected < float64(n) && rounds < 10*n {
		infected *= float64(1 + fanout)
		rounds++
	}
	return rounds
}

// ---------------------------------------------------------------------------
// LRG: local retransmission + gossip

// LRGParams configures the LRG baseline.
type LRGParams struct {
	// N is the group size.
	N int
	// Degree is the overlay degree (neighbors per member).
	Degree int
	// GossipProb is the probability an infected member forwards to a
	// neighbor (probabilistic flooding).
	GossipProb float64
	// RepairRounds is the number of NACK-style local repair rounds: a
	// member missing the message pulls it from any neighbor that has it.
	RepairRounds int
	// AliveRatio is the nonfailed member ratio q.
	AliveRatio float64
	// Source initiates and never fails.
	Source int
}

// Validate checks the parameters.
func (p LRGParams) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("protocols: group size %d too small", p.N)
	}
	if p.Degree < 1 || p.Degree >= p.N {
		return fmt.Errorf("protocols: degree %d out of range", p.Degree)
	}
	if p.GossipProb < 0 || p.GossipProb > 1 {
		return fmt.Errorf("protocols: gossip probability %g outside [0,1]", p.GossipProb)
	}
	if p.RepairRounds < 0 {
		return fmt.Errorf("protocols: negative repair rounds %d", p.RepairRounds)
	}
	if p.AliveRatio < 0 || p.AliveRatio > 1 || p.AliveRatio != p.AliveRatio {
		return fmt.Errorf("protocols: alive ratio %g outside [0,1]", p.AliveRatio)
	}
	if p.Source < 0 || p.Source >= p.N {
		return fmt.Errorf("protocols: source %d out of range", p.Source)
	}
	return nil
}

// RunLRG executes LRG over a fresh random Degree-regular-ish overlay
// (configuration model): probabilistic flooding spreads the message, then
// RepairRounds of local pulls patch the holes the flooding left.
func RunLRG(p LRGParams, r *xrand.RNG) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	degrees := make([]int, p.N)
	for i := range degrees {
		degrees[i] = p.Degree
	}
	overlay := graph.ConfigurationModel(degrees, r)
	mask := failure.ExactMask(p.N, p.AliveRatio, p.Source, r)
	res := Result{AliveCount: mask.AliveCount()}

	has := make([]bool, p.N)
	queue := make([]int32, 0, mask.AliveCount())
	has[p.Source] = true
	queue = append(queue, int32(p.Source))
	res.Delivered = 1

	// Phase 1: probabilistic flooding.
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range overlay.Out(int(u)) {
			if !r.Bool(p.GossipProb) {
				continue
			}
			res.MessagesSent++
			if has[v] || !mask.Alive(int(v)) {
				continue
			}
			has[v] = true
			res.Delivered++
			queue = append(queue, v)
		}
	}
	// Phase 2: local repair — missing members pull from a neighbor that
	// has the message (one pull per round per missing member). Provider
	// eligibility is evaluated against the round-start state (synchronous-
	// round semantics, matching the anti-entropy snapshot): a member
	// repaired this round can serve as a provider from the next round on,
	// which is also exactly what the message-based DES runtime produces.
	var snapshot []bool
	for round := 0; round < p.RepairRounds; round++ {
		res.Rounds++
		snapshot = append(snapshot[:0], has...)
		fixed := 0
		for v := 0; v < p.N; v++ {
			if has[v] || !mask.Alive(v) {
				continue
			}
			for _, u := range overlay.Out(v) {
				if snapshot[u] {
					res.MessagesSent += 2 // NACK + retransmission
					has[v] = true
					res.Delivered++
					fixed++
					break
				}
			}
		}
		if fixed == 0 {
			break
		}
	}
	finish(&res)
	return res, nil
}

// LRGEpidemicFraction integrates the SI balance equation the LRG paper [9]
// uses, di/dt = beta·i·(1−i), from initial infected fraction i0 over time
// horizon t, returning the infected fraction. This is the analytic
// counterpart RunLRG is compared against; the integration lives in
// internal/epidemic.
func LRGEpidemicFraction(beta, i0, t float64) (float64, error) {
	return epidemic.SIFraction(beta, i0, t)
}

// ---------------------------------------------------------------------------
// Flooding

// FloodingParams configures the best-effort flooding baseline.
type FloodingParams struct {
	N          int
	AliveRatio float64
	Source     int
}

// Validate checks the parameters.
func (p FloodingParams) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("protocols: group size %d too small", p.N)
	}
	if p.AliveRatio < 0 || p.AliveRatio > 1 || p.AliveRatio != p.AliveRatio {
		return fmt.Errorf("protocols: alive ratio %g outside [0,1]", p.AliveRatio)
	}
	if p.Source < 0 || p.Source >= p.N {
		return fmt.Errorf("protocols: source %d out of range", p.Source)
	}
	return nil
}

// RunFlooding forwards to every other member on first receipt: reliability
// is always 1 among nonfailed members (the source reaches everyone
// directly), at Θ(n²) message cost — the upper envelope the gossip
// protocols are traded off against.
func RunFlooding(p FloodingParams, r *xrand.RNG) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	mask := failure.ExactMask(p.N, p.AliveRatio, p.Source, r)
	res := Result{AliveCount: mask.AliveCount()}
	has := make([]bool, p.N)
	queue := make([]int32, 0, mask.AliveCount())
	has[p.Source] = true
	queue = append(queue, int32(p.Source))
	res.Delivered = 1
	for head := 0; head < len(queue); head++ {
		u := int(queue[head])
		res.MessagesSent += p.N - 1
		for v := 0; v < p.N; v++ {
			if v == u || has[v] || !mask.Alive(v) {
				continue
			}
			has[v] = true
			res.Delivered++
			queue = append(queue, int32(v))
		}
	}
	res.Rounds = 1
	finish(&res)
	return res, nil
}
