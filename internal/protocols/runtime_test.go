package protocols

import (
	"testing"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/simnet"
	"gossipkit/internal/xrand"
)

// TestDESFaultsDegradeBaselines: the point of the substrate refactor — the
// network's failure machinery now applies to the baselines. Loss thins a
// fixed-round pbcast spread; a crash wave mid-run removes deliveries
// flooding would otherwise make.
func TestDESFaultsDegradeBaselines(t *testing.T) {
	p := PbcastParams{N: 800, Fanout: 2, Rounds: 5, AliveRatio: 1}
	clean, err := RunOnDES(p, DESConfig{}, xrand.New(7), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := RunOnDES(p, DESConfig{Net: simnet.Config{Loss: simnet.BernoulliLoss{P: 0.5}}},
		xrand.New(7), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Reliability >= clean.Reliability {
		t.Errorf("50%% loss did not degrade pbcast: %.4f clean vs %.4f lossy",
			clean.Reliability, lossy.Reliability)
	}
	if lossy.Net.DroppedLoss == 0 {
		t.Error("loss model never fired")
	}

	// A mid-run crash of half the group (injected through the NetRun seam,
	// exactly as scenario campaigns do) must strand survivors' deliveries.
	fl := FloodingParams{N: 400, AliveRatio: 1}
	crashed, err := RunOnDES(fl, DESConfig{Net: simnet.Config{Latency: simnet.ConstantLatency{D: 2 * time.Millisecond}}},
		xrand.New(3), func(nr *core.NetRun) {
			nr.Kernel.At(1e6, func() { // 1ms: after the source blast, before delivery
				for id := 200; id < 400; id++ {
					nr.Net.Crash(simnet.NodeID(id))
				}
			})
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if crashed.UpAtEnd != 200 {
		t.Fatalf("up at end %d, want 200", crashed.UpAtEnd)
	}
	if crashed.Delivered >= 400 || crashed.SurvivorReliability != 1 {
		t.Errorf("crash wave: delivered %d, survivor reliability %.4f",
			crashed.Delivered, crashed.SurvivorReliability)
	}
	if crashed.Net.DroppedCrash == 0 {
		t.Error("no deliveries were dropped at crashed members")
	}
}

// TestDESPartitionBlocksAntiEntropy: a partition installed mid-run stops
// cross-side exchanges until the protocol quiesces; healing is out of
// scope here (the scenario engine tests it end to end).
func TestDESPartitionBlocksAntiEntropy(t *testing.T) {
	p := AntiEntropyParams{N: 200, Rounds: 0, Mode: PushPull, AliveRatio: 1}
	out, err := RunOnDES(p, DESConfig{}, xrand.New(5), func(nr *core.NetRun) {
		// Isolate the top half (source 0 is in the bottom) from t=0.
		nr.Net.SetPartition(simnet.SplitPartition(func(id simnet.NodeID) bool {
			return int(id) >= 100
		}))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Delivered > 100 {
		t.Errorf("partitioned anti-entropy delivered %d members, want <= 100", out.Delivered)
	}
	if out.Net.DroppedPart == 0 {
		t.Error("partition never dropped a message")
	}
}

// TestDESPublishSeam: the NetRun publish hook (flash crowds, re-gossip
// waves) reaches every machine.
func TestDESPublishSeam(t *testing.T) {
	for _, tc := range desEquivCases() {
		t.Run(tc.name, func(t *testing.T) {
			published := 0
			out, err := RunOnDES(tc.spec, DESConfig{}, xrand.New(11), func(nr *core.NetRun) {
				nr.Kernel.At(0, func() {
					for id := 1; id < 20; id++ {
						if nr.Net.Up(simnet.NodeID(id)) && nr.Restartable(id) {
							nr.Publish(id)
							published++
						}
					}
				})
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if published == 0 {
				t.Skip("no publishable members under this mask")
			}
			if out.Delivered < published {
				t.Errorf("delivered %d < %d published members", out.Delivered, published)
			}
		})
	}
}

// TestDESArenaNeutral: recycling one arena across heterogeneous protocol
// runs is result-neutral (the same guarantee core's sweeps rely on).
func TestDESArenaNeutral(t *testing.T) {
	arena := core.NewNetArena()
	for _, tc := range desEquivCases() {
		fresh, err := RunOnDES(tc.spec, DESConfig{}, xrand.New(31), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := RunOnDES(tc.spec, DESConfig{}, xrand.New(31), nil, arena)
		if err != nil {
			t.Fatal(err)
		}
		if fresh.NetResult != pooled.NetResult {
			t.Errorf("%s: pooled run diverged from fresh run", tc.name)
		}
	}
}

// BenchmarkProtocolOnDES is the CI smoke benchmark for the protocol-on-DES
// hot path: pbcast rounds over the kernel+simnet substrate with a warm
// arena, at n=10³ and n=10⁴.
func BenchmarkProtocolOnDES(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		p := PbcastParams{N: n, Fanout: 4, Rounds: 12, AliveRatio: 0.9}
		b.Run(sizeName(n), func(b *testing.B) {
			arena := core.NewNetArena()
			r := xrand.New(1)
			b.ReportAllocs()
			b.ResetTimer()
			msgs := 0
			for i := 0; i < b.N; i++ {
				out, err := RunOnDES(p, DESConfig{}, r, nil, arena)
				if err != nil {
					b.Fatal(err)
				}
				msgs += out.MessagesSent
			}
			b.ReportMetric(float64(msgs)/b.Elapsed().Seconds(), "msgs/sec")
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 1000:
		return "n=1000"
	case 10000:
		return "n=10000"
	default:
		return "n"
	}
}
