package protocols

import (
	"fmt"
	"time"

	"gossipkit/internal/bitset"
	"gossipkit/internal/core"
	"gossipkit/internal/failure"
	"gossipkit/internal/membership"
	"gossipkit/internal/obs"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/topology"
	"gossipkit/internal/xrand"
)

// Protocol message tags (simnet.Message.Tag). They stay below simnet's
// packed-tag limit, so every protocol message is slot-free on the network
// hot path.
const (
	tagGossip   int32 = iota // data push carrying the payload
	tagAEReq                 // anti-entropy contact, caller clean at round start
	tagAEReqHot              // anti-entropy contact, caller infected at round start
	tagAEReply               // anti-entropy pull reply carrying the payload
	tagDigest                // RDG digest-only push (packet id, no payload)
	tagNack                  // RDG/LRG pull request
	tagRepair                // RDG/LRG retransmission answering a NACK
)

// DESConfig configures a baseline protocol execution on the shared
// discrete-event substrate.
type DESConfig struct {
	// Net is the network substrate (latency model, loss model, tracer).
	// The zero value — zero latency, no loss — reproduces the legacy
	// synchronous round loop of every protocol exactly.
	Net simnet.Config
	// RoundInterval is the simulated-time spacing of gossip round ticks.
	// Zero defaults to the latency model's bound when it has one
	// (simnet.LatencyBounder), 20ms for unbounded models, and 1ms with no
	// latency model at all — so a synchronous-round baseline sees round
	// r's messages land before round r+1 fires, preserving its round
	// semantics under latency. Set it below the latency bound to study
	// pipelining: a round's messages may still be in flight when the next
	// round fires, which the quiescence checks account for via
	// simnet.Stats.InFlight.
	RoundInterval time.Duration
	// Probe, when non-nil, observes the run: virtual-time curves,
	// delivery-latency and rounds-to-delivery histograms, per-emission
	// fanout, optional ring tracing. The probe neither consumes the run's
	// RNG streams nor schedules kernel events, so results are
	// bit-identical with it on or off; nil is the zero-overhead off
	// state. Snapshot Probe.Metrics() after the run.
	Probe *obs.Probe
	// Topology selects the gossip overlay the protocol picks targets
	// from (internal/topology). The zero value is the uniform
	// full-membership selection every legacy loop assumes, and leaves all
	// protocol RNG streams byte-identical. A non-uniform spec builds an
	// Overlay per run from a non-consuming split of the run RNG and
	// routes every target draw — pbcast/lpbcast/RDG fanout waves,
	// anti-entropy peer picks, LRG's fixed graph, flooding's blast —
	// through its neighbor sets.
	Topology topology.Spec
}

func (c DESConfig) interval() time.Duration {
	if c.RoundInterval > 0 {
		return c.RoundInterval
	}
	if c.Net.Latency == nil {
		return time.Millisecond
	}
	if b, ok := c.Net.Latency.(simnet.LatencyBounder); ok {
		if d, bounded := b.LatencyBound(); bounded && d > 0 {
			return d
		}
	}
	return 20 * time.Millisecond
}

// Spec is a protocol parameter set that can run on the DES substrate: all
// six baseline param types implement it.
type Spec interface {
	// Protocol names the baseline ("pbcast", "lpbcast", "anti-entropy",
	// "rdg", "lrg", "flooding").
	Protocol() string
	// Validate checks the parameters.
	Validate() error

	size() int  // group size n
	start() int // source member
	newMachine() machine
}

// Shape returns the group size and protected source member of a spec —
// the geometry callers outside this package (the scenario executor seam)
// need to schedule campaigns against a baseline run.
func Shape(s Spec) (n, source int) { return s.size(), s.start() }

// machine is one protocol's per-run state machine on the runtime: init
// draws protocol state from the run RNG in exactly the legacy loop's
// order, tick executes one gossip round (returning false to stop the
// ticker), deliver consumes a network message at an up node, publish
// injects m out of band (scenario flash crowds and re-gossip waves), and
// detail builds the protocol-shaped result after the run drains.
type machine interface {
	init(rt *Runtime)
	tick(rt *Runtime, round int) bool
	deliver(rt *Runtime, now sim.Time, msg simnet.Message)
	publish(rt *Runtime, id int)
	detail(rt *Runtime) any
}

// Runtime is the shared round-driver all six baselines execute on: it owns
// the kernel, the network, the failure mask, and the cross-protocol
// bookkeeping (first receipts, delivery latency, message counts), while a
// per-protocol machine supplies the round and delivery logic. Every
// protocol message is routed through simnet, so latency, loss, partitions,
// and mid-run crashes apply to the baselines exactly as they do to the
// paper's algorithm in internal/core.
type Runtime struct {
	// Kernel drives the run; Net carries every protocol message; RNG is
	// the protocol decision stream (legacy-identical order); Mask is the
	// static fail-stop mask.
	Kernel *sim.Kernel
	Net    *simnet.Network
	RNG    *xrand.RNG
	Mask   *failure.Mask

	n, source int
	interval  time.Duration
	m         machine
	recv      *bitset.Bits
	targets   []int
	view      membership.View
	res       core.NetResult
	probe     *obs.Probe
	round     int // index of the last round tick fired; -1 before the first
}

// DESOutcome is the result of one baseline execution on the DES substrate:
// the cross-protocol NetResult (what scenario campaigns and the comparison
// grid consume) plus the protocol-shaped Detail (Result, LpbcastResult,
// AntiEntropyResult, or RDGResult — identical to the legacy loop's output
// under a zero-latency, no-loss network).
type DESOutcome struct {
	core.NetResult
	Detail any
}

// RunOnDES executes one run of spec as an event-driven protocol over the
// simulated network. Protocol decisions consume r exactly as the legacy
// round loop does (the network's jitter stream is r.Split(0xfeed), which
// leaves r untouched), so with the zero DESConfig the outcome Detail is
// identical to the corresponding legacy Run* function — equiv_test.go
// pins this per protocol. inject, when non-nil, is called with the run's
// core.NetRun after setup and before the first round tick, so scenario
// campaigns schedule crashes, partitions, loss episodes, and publishes on
// baseline runs through the same seam as paper runs. arena (nil for a
// throwaway one) recycles the kernel, network, mask, and receipt state
// across runs; results are byte-identical either way.
func RunOnDES(spec Spec, cfg DESConfig, r *xrand.RNG, inject func(*core.NetRun), arena *core.NetArena) (DESOutcome, error) {
	if err := spec.Validate(); err != nil {
		return DESOutcome{}, err
	}
	if arena == nil {
		arena = core.NewNetArena()
	}
	n := spec.size()
	st := arena.Lease(n, cfg.Net, r.Split(0xfeed))
	// The topology split is non-consuming, so the uniform (nil-overlay)
	// path leaves every protocol decision stream byte-identical to the
	// legacy-pinned behavior.
	ov, err := cfg.Topology.Build(n, r.Split(topology.Split))
	if err != nil {
		return DESOutcome{}, fmt.Errorf("protocols: %s: %w", spec.Protocol(), err)
	}
	rt := &Runtime{
		Kernel: st.Kernel, Net: st.Net, RNG: r, Mask: st.Mask,
		n: n, source: spec.start(), interval: cfg.interval(),
		m: spec.newMachine(), recv: st.Received, targets: arena.Targets(),
		probe: cfg.Probe, round: -1,
	}
	if ov != nil {
		rt.view = ov
	}
	defer func() { arena.SetTargets(rt.targets) }()
	rt.Kernel.SetBudget(uint64(n) * 10000)
	rt.probe.Attach(rt.Net, n, &rt.res.Delivered)

	rt.m.init(rt)
	rt.res.AliveCount = rt.Mask.AliveCount()
	for id := 0; id < n; id++ {
		if !rt.Mask.Alive(id) {
			rt.Net.Crash(simnet.NodeID(id))
		}
	}
	rt.Net.RegisterAll(func(now sim.Time, msg simnet.Message) {
		rt.m.deliver(rt, now, msg)
	})

	if inject != nil {
		inject(core.NewNetRun(rt.Kernel, rt.Net, rt.view, rt.Mask, rt.recv, &rt.res.Delivered,
			func(id int) {
				if id < 0 || id >= n || !rt.Net.Up(simnet.NodeID(id)) || !rt.Mask.Alive(id) {
					return
				}
				rt.m.publish(rt, id)
			}))
	}

	// Round ticks fire at t = 0, interval, 2·interval, ... — after any
	// t=0 campaign actions the hook scheduled above, so a loss episode or
	// crash at time zero applies to round 0's sends.
	round := 0
	rt.Kernel.Every(0, rt.interval, func() bool {
		rt.round = round
		cont := rt.m.tick(rt, round)
		round++
		return cont
	})
	if err := rt.Kernel.RunAll(); err != nil {
		return DESOutcome{}, fmt.Errorf("protocols: %s execution aborted: %w", spec.Protocol(), err)
	}
	rt.probe.Finish(rt.Kernel.Now())

	if rt.res.AliveCount > 0 {
		rt.res.Reliability = float64(rt.res.Delivered) / float64(rt.res.AliveCount)
	}
	for id := 0; id < n; id++ {
		if rt.Net.Up(simnet.NodeID(id)) {
			rt.res.UpAtEnd++
			if rt.recv.Get(id) {
				rt.res.DeliveredUp++
			}
		}
	}
	if rt.res.UpAtEnd > 0 {
		rt.res.SurvivorReliability = float64(rt.res.DeliveredUp) / float64(rt.res.UpAtEnd)
	}
	rt.res.Net = rt.Net.Stats()
	return DESOutcome{NetResult: rt.res, Detail: rt.m.detail(rt)}, nil
}

// seedSource marks the source as holding m before the clock starts, with
// no delivery-latency sample — mirroring core's source bootstrap.
func (rt *Runtime) seedSource() {
	rt.recv.Set(rt.source)
	rt.res.Delivered++
	rt.probe.ObserveSeed(rt.source)
}

// markReceived records id's first receipt of m at now and reports whether
// it was new. The caller decides whether a repeat counts as a duplicate.
func (rt *Runtime) markReceived(id int, now sim.Time) bool {
	if rt.recv.Get(id) {
		return false
	}
	rt.recv.Set(id)
	rt.res.Delivered++
	rt.res.DeliveryLatency.Add(now.Seconds())
	if d := now.Duration(); d > rt.res.SpreadTime {
		rt.res.SpreadTime = d
	}
	// Rounds-to-delivery is 1-based: a receipt during or right after the
	// round-0 wave counts as 1 round; a pre-tick publish counts as 0.
	rt.probe.ObserveFirstReceiptRound(id, rt.round+1, now)
	return true
}

// upAlive reports whether id participates in rounds: alive under the
// static mask and currently up at the network layer (scenario crashes take
// members out mid-run; restarts bring mask-alive members back).
func (rt *Runtime) upAlive(id int) bool {
	return rt.Mask.Alive(id) && rt.Net.Up(simnet.NodeID(id))
}

// fanoutBlast sends one uniform-fanout gossip wave from `from`, with the
// same sampling and accounting as the legacy pbcast round loop. When a
// topology overlay is installed, targets come from `from`'s neighbor set
// instead of the full membership.
func (rt *Runtime) fanoutBlast(from, fanout int) {
	rt.targets = rt.sampleTargets(from, fanout)
	rt.res.MessagesSent += len(rt.targets)
	rt.probe.ObserveFanout(len(rt.targets))
	for _, v := range rt.targets {
		if !rt.Mask.Alive(v) {
			rt.res.WastedOnFailed++
		}
		rt.Net.SendTag(simnet.NodeID(from), simnet.NodeID(v), tagGossip)
	}
}

// overlay returns the topology overlay the run gossips over, nil when
// selection is uniform (or the view is a protocol's own SCAMP views).
func (rt *Runtime) overlay() *topology.Overlay {
	ov, _ := rt.view.(*topology.Overlay)
	return ov
}

// sampleTargets draws up to fanout distinct targets for from: from the
// overlay's live neighbor set when a topology is installed, else
// uniformly from the full membership — consuming exactly the legacy
// loop's RNG stream on the uniform path.
func (rt *Runtime) sampleTargets(from, fanout int) []int {
	if ov := rt.overlay(); ov != nil {
		return ov.SampleTargets(rt.targets, from, fanout, rt.RNG)
	}
	return rt.RNG.SampleExcluding(rt.targets, rt.n, fanout, from)
}

// pickPeer draws one gossip peer for id: a live overlay neighbor when a
// topology is installed (ok=false when id has none left), else uniform
// over the other n−1 members via the legacy rejection loop.
func (rt *Runtime) pickPeer(id int) (int, bool) {
	if ov := rt.overlay(); ov != nil {
		rt.targets = ov.SampleTargets(rt.targets, id, 1, rt.RNG)
		if len(rt.targets) == 0 {
			return 0, false
		}
		return rt.targets[0], true
	}
	peer := id
	for peer == id {
		peer = rt.RNG.Intn(rt.n)
	}
	return peer, true
}

// baseResult flattens the runtime's shared bookkeeping into the common
// protocol Result.
func (rt *Runtime) baseResult() Result {
	res := Result{
		AliveCount:   rt.res.AliveCount,
		Delivered:    rt.res.Delivered,
		MessagesSent: rt.res.MessagesSent,
		Rounds:       rt.res.Rounds,
	}
	finish(&res)
	return res
}

// inFlight reports how many accepted messages are still airborne; the
// quiescence checks use it so pipelined rounds under real latency do not
// declare "no progress" while deliveries are pending.
func (rt *Runtime) inFlight() int64 { return rt.Net.Stats().InFlight() }
