package protocols

import (
	"fmt"

	"gossipkit/internal/failure"
	"gossipkit/internal/xrand"
)

// Mode selects the anti-entropy exchange direction (Demers et al., the
// paper's reference [2]).
type Mode int

const (
	// Push: the caller infects the callee if the caller is infected.
	Push Mode = iota
	// Pull: the caller gets infected if the callee is infected.
	Pull
	// PushPull: both directions in one exchange.
	PushPull
)

func (m Mode) String() string {
	switch m {
	case Push:
		return "push"
	case Pull:
		return "pull"
	case PushPull:
		return "push-pull"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// AntiEntropyParams configures the classic anti-entropy epidemic: in each
// round, every alive member contacts one uniformly random other member and
// exchanges state per Mode.
type AntiEntropyParams struct {
	// N is the group size.
	N int
	// Rounds is the number of rounds to run (0 = run until no progress).
	Rounds int
	// Mode is the exchange direction.
	Mode Mode
	// AliveRatio is the nonfailed member ratio q.
	AliveRatio float64
	// Source starts infected and never fails.
	Source int
}

// Validate checks the parameters.
func (p AntiEntropyParams) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("protocols: group size %d too small", p.N)
	}
	if p.Rounds < 0 {
		return fmt.Errorf("protocols: negative rounds %d", p.Rounds)
	}
	switch p.Mode {
	case Push, Pull, PushPull:
	default:
		return fmt.Errorf("protocols: unknown mode %v", p.Mode)
	}
	if p.AliveRatio < 0 || p.AliveRatio > 1 || p.AliveRatio != p.AliveRatio {
		return fmt.Errorf("protocols: alive ratio %g outside [0,1]", p.AliveRatio)
	}
	if p.Source < 0 || p.Source >= p.N {
		return fmt.Errorf("protocols: source %d out of range", p.Source)
	}
	return nil
}

// AntiEntropyResult extends Result with the per-round infection curve.
type AntiEntropyResult struct {
	Result
	// InfectedPerRound[r] is the cumulative infected alive count after
	// round r (index 0 = before any round).
	InfectedPerRound []int
}

// RunAntiEntropy executes the epidemic. With Rounds == 0 it runs until a
// round makes no progress (guaranteed to terminate: infections are
// monotone). Each contact costs one message (plus one for the reply that
// pull/push-pull semantics imply; counted as 2 for Pull and PushPull).
func RunAntiEntropy(p AntiEntropyParams, r *xrand.RNG) (AntiEntropyResult, error) {
	if err := p.Validate(); err != nil {
		return AntiEntropyResult{}, err
	}
	mask := failure.ExactMask(p.N, p.AliveRatio, p.Source, r)
	res := AntiEntropyResult{Result: Result{AliveCount: mask.AliveCount()}}
	infected := make([]bool, p.N)
	infected[p.Source] = true
	res.Delivered = 1
	res.InfectedPerRound = append(res.InfectedPerRound, 1)

	msgCost := 1
	if p.Mode != Push {
		msgCost = 2
	}
	maxRounds := p.Rounds
	if maxRounds == 0 {
		maxRounds = 40 * p.N // generous; progress check below breaks out
	}
	for round := 0; round < maxRounds; round++ {
		res.Rounds++
		progress := false
		// Synchronous round semantics: exchanges see the state at the
		// start of the round (standard in the anti-entropy analyses).
		snapshot := append([]bool(nil), infected...)
		for id := 0; id < p.N; id++ {
			if !mask.Alive(id) {
				continue
			}
			peer := id
			for peer == id {
				peer = r.Intn(p.N)
			}
			res.MessagesSent += msgCost
			if !mask.Alive(peer) {
				continue
			}
			switch p.Mode {
			case Push:
				if snapshot[id] && !infected[peer] {
					infected[peer] = true
					res.Delivered++
					progress = true
				}
			case Pull:
				if snapshot[peer] && !infected[id] {
					infected[id] = true
					res.Delivered++
					progress = true
				}
			case PushPull:
				if snapshot[id] && !infected[peer] {
					infected[peer] = true
					res.Delivered++
					progress = true
				}
				if snapshot[peer] && !infected[id] {
					infected[id] = true
					res.Delivered++
					progress = true
				}
			}
		}
		res.InfectedPerRound = append(res.InfectedPerRound, res.Delivered)
		if res.Delivered == res.AliveCount {
			break
		}
		if p.Rounds == 0 && !progress {
			break
		}
	}
	finish(&res.Result)
	return res, nil
}
