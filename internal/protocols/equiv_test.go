package protocols

import (
	"reflect"
	"testing"

	"gossipkit/internal/core"
	"gossipkit/internal/xrand"
)

// The DES-vs-legacy equivalence oracle: under a zero-latency, no-loss
// network (the zero DESConfig) every baseline's DES execution must
// reproduce its legacy synchronous round loop exactly — same RNG
// consumption, same delivery order, same Result — for any seed. Golden
// values pin one seed per protocol so a regression in EITHER substrate
// (runtime or oracle) fails loudly instead of both drifting together.

// desEquivCases enumerates (protocol spec, legacy runner) pairs on shared
// parameter shapes.
type desEquivCase struct {
	name   string
	spec   Spec
	legacy func(r *xrand.RNG) (any, error)
	golden Result // pinned legacy/DES common result at seed `goldenSeed`
}

const goldenSeed = 2008

func desEquivCases() []desEquivCase {
	pb := PbcastParams{N: 500, Fanout: 3, Rounds: 10, AliveRatio: 0.9}
	lp := LpbcastParams{N: 400, Fanout: 3, Rounds: 8, BufferSize: 4, Events: 3, AliveRatio: 0.9, ViewCopies: 2}
	ae := AntiEntropyParams{N: 300, Rounds: 0, Mode: PushPull, AliveRatio: 0.8}
	rdg := RDGParams{N: 400, Fanout: 3, PushRounds: 6, RecoveryRounds: 4, AliveRatio: 0.9, ViewCopies: 1, PayloadProb: 0.6}
	lrg := LRGParams{N: 600, Degree: 6, GossipProb: 0.5, RepairRounds: 4, AliveRatio: 0.9}
	fl := FloodingParams{N: 300, AliveRatio: 0.7}
	return []desEquivCase{
		{
			name: "pbcast", spec: pb,
			legacy: func(r *xrand.RNG) (any, error) { return RunPbcast(pb, r) },
			golden: Result{AliveCount: 450, Delivered: 450, Reliability: 1, MessagesSent: 4332, Rounds: 8},
		},
		{
			name: "lpbcast", spec: lp,
			legacy: func(r *xrand.RNG) (any, error) { return RunLpbcast(lp, r) },
		},
		{
			name: "anti-entropy", spec: ae,
			legacy: func(r *xrand.RNG) (any, error) { return RunAntiEntropy(ae, r) },
			golden: Result{AliveCount: 240, Delivered: 240, Reliability: 1, MessagesSent: 4320, Rounds: 9},
		},
		{
			name: "rdg", spec: rdg,
			legacy: func(r *xrand.RNG) (any, error) { return RunRDG(rdg, r) },
			golden: Result{AliveCount: 360, Delivered: 350, Reliability: 350.0 / 360.0, MessagesSent: 1970, Rounds: 10},
		},
		{
			name: "lrg", spec: lrg,
			legacy: func(r *xrand.RNG) (any, error) { return RunLRG(lrg, r) },
			golden: Result{AliveCount: 540, Delivered: 540, Reliability: 1, MessagesSent: 1605, Rounds: 2},
		},
		{
			name: "flooding", spec: fl,
			legacy: func(r *xrand.RNG) (any, error) { return RunFlooding(fl, r) },
			golden: Result{AliveCount: 210, Delivered: 210, Reliability: 1, MessagesSent: 62790, Rounds: 1},
		},
	}
}

// TestDESMatchesLegacyLoops: the DES runtime with the zero config is
// result-identical to the legacy loop for every protocol across seeds —
// the pure round loops ARE the equivalence oracle for the event-driven
// rewrite.
func TestDESMatchesLegacyLoops(t *testing.T) {
	arena := core.NewNetArena() // shared across protocols: leases must be result-neutral
	for _, tc := range desEquivCases() {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 25; seed++ {
				want, err := tc.legacy(xrand.New(seed))
				if err != nil {
					t.Fatal(err)
				}
				out, err := RunOnDES(tc.spec, DESConfig{}, xrand.New(seed), nil, arena)
				if err != nil {
					t.Fatal(err)
				}
				// The protocol result types are not directly comparable
				// across the two runners for slice-bearing results;
				// DeepEqual covers both.
				if !reflect.DeepEqual(out.Detail, want) {
					t.Fatalf("seed %d: DES result diverged from the legacy loop\n des: %+v\nwant: %+v",
						seed, out.Detail, want)
				}
				// Cross-protocol bookkeeping must agree with the detail.
				if out.MessagesSent != messagesOf(want) {
					t.Fatalf("seed %d: NetResult.MessagesSent %d != detail %d",
						seed, out.MessagesSent, messagesOf(want))
				}
			}
		})
	}
}

func messagesOf(res any) int {
	switch r := res.(type) {
	case Result:
		return r.MessagesSent
	case AntiEntropyResult:
		return r.MessagesSent
	case RDGResult:
		return r.MessagesSent
	case LpbcastResult:
		return r.MessagesSent
	default:
		panic("unknown result type")
	}
}

// TestDESGoldens pins the common Result of each protocol at one seed, so
// an intentional semantic change has to regenerate these constants
// explicitly (and say so in the commit) instead of sliding through the
// equivalence test by moving both substrates at once.
func TestDESGoldens(t *testing.T) {
	for _, tc := range desEquivCases() {
		if tc.golden == (Result{}) {
			continue // lpbcast pins its own shape below
		}
		t.Run(tc.name, func(t *testing.T) {
			out, err := RunOnDES(tc.spec, DESConfig{}, xrand.New(goldenSeed), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := baseOf(out.Detail)
			if got != tc.golden {
				t.Fatalf("golden moved:\n got: %+v\nwant: %+v", got, tc.golden)
			}
		})
	}
	t.Run("lpbcast", func(t *testing.T) {
		lp := desEquivCases()[1]
		out, err := RunOnDES(lp.spec, DESConfig{}, xrand.New(goldenSeed), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		res := out.Detail.(LpbcastResult)
		want := LpbcastResult{
			AliveCount:        360,
			DeliveredPerEvent: []int{360, 360, 360},
			MeanReliability:   1,
			MinReliability:    1,
			MessagesSent:      3555,
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("golden moved:\n got: %+v\nwant: %+v", res, want)
		}
	})
}

func baseOf(res any) Result {
	switch r := res.(type) {
	case Result:
		return r
	case AntiEntropyResult:
		return r.Result
	case RDGResult:
		return r.Result
	default:
		panic("unexpected result type")
	}
}
