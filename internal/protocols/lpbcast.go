package protocols

import (
	"fmt"

	"gossipkit/internal/failure"
	"gossipkit/internal/membership"
	"gossipkit/internal/xrand"
)

// LpbcastParams configures the lpbcast-style baseline (Eugster et al.,
// "Lightweight Probabilistic Broadcast", the paper's reference [1]):
// gossip over bounded partial views with bounded event buffers. Members
// periodically gossip their buffered events to Fanout view members; event
// buffers are truncated to BufferSize, so under load old rumors age out —
// the protocol trades reliability for constant memory.
type LpbcastParams struct {
	// N is the group size.
	N int
	// Fanout is the per-round gossip fanout.
	Fanout int
	// Rounds is the number of gossip rounds.
	Rounds int
	// BufferSize bounds each member's event buffer (ids kept for
	// dedup are unbounded here; only payload buffers age out).
	BufferSize int
	// Events is the number of distinct multicasts injected at round 0,
	// all at the source. Buffer pressure appears when Events >
	// BufferSize.
	Events int
	// AliveRatio is the nonfailed member ratio q.
	AliveRatio float64
	// Source injects the events and never fails.
	Source int
	// ViewCopies is the SCAMP parameter c for the partial views.
	ViewCopies int
}

// Validate checks the parameters.
func (p LpbcastParams) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("protocols: group size %d too small", p.N)
	}
	if p.Fanout < 1 {
		return fmt.Errorf("protocols: fanout %d < 1", p.Fanout)
	}
	if p.Rounds < 1 {
		return fmt.Errorf("protocols: rounds %d < 1", p.Rounds)
	}
	if p.BufferSize < 1 {
		return fmt.Errorf("protocols: buffer size %d < 1", p.BufferSize)
	}
	if p.Events < 1 {
		return fmt.Errorf("protocols: events %d < 1", p.Events)
	}
	if p.AliveRatio < 0 || p.AliveRatio > 1 || p.AliveRatio != p.AliveRatio {
		return fmt.Errorf("protocols: alive ratio %g outside [0,1]", p.AliveRatio)
	}
	if p.Source < 0 || p.Source >= p.N {
		return fmt.Errorf("protocols: source %d out of range", p.Source)
	}
	if p.ViewCopies < 0 {
		return fmt.Errorf("protocols: negative view copies %d", p.ViewCopies)
	}
	return nil
}

// LpbcastResult reports per-event delivery.
type LpbcastResult struct {
	// AliveCount is the number of nonfailed members.
	AliveCount int
	// DeliveredPerEvent[e] is the number of nonfailed members that
	// delivered event e.
	DeliveredPerEvent []int
	// MeanReliability averages delivered/alive over events.
	MeanReliability float64
	// MinReliability is the worst event's delivery ratio (buffer
	// pressure shows up here first).
	MinReliability float64
	// MessagesSent counts gossip messages (one per target per round per
	// gossiping member).
	MessagesSent int
}

// lpbcastMember is one member's protocol state.
type lpbcastMember struct {
	buffer []int32 // event ids currently buffered (payload held)
	seen   map[int32]bool
}

// RunLpbcast executes the lpbcast-style protocol and reports per-event
// delivery. The simulation is synchronous-round over SCAMP partial views.
func RunLpbcast(p LpbcastParams, r *xrand.RNG) (LpbcastResult, error) {
	if err := p.Validate(); err != nil {
		return LpbcastResult{}, err
	}
	views := membership.NewPartialViews(p.N, p.ViewCopies, r)
	views.Shuffle(5, 3, r)
	mask := failure.ExactMask(p.N, p.AliveRatio, p.Source, r)

	members := make([]lpbcastMember, p.N)
	for i := range members {
		members[i].seen = map[int32]bool{}
	}
	res := LpbcastResult{AliveCount: mask.AliveCount()}
	res.DeliveredPerEvent = make([]int, p.Events)

	deliver := func(id int, ev int32) {
		m := &members[id]
		if m.seen[ev] {
			return
		}
		m.seen[ev] = true
		res.DeliveredPerEvent[ev]++
		m.buffer = append(m.buffer, ev)
		// Age-out: keep only the newest BufferSize events.
		if len(m.buffer) > p.BufferSize {
			m.buffer = m.buffer[len(m.buffer)-p.BufferSize:]
		}
	}

	// Inject all events at the source.
	for e := 0; e < p.Events; e++ {
		deliver(p.Source, int32(e))
	}

	type msg struct {
		to     int
		events []int32
	}
	targets := make([]int, 0, p.Fanout)
	for round := 0; round < p.Rounds; round++ {
		var outbox []msg
		for id := 0; id < p.N; id++ {
			m := &members[id]
			if !mask.Alive(id) || len(m.buffer) == 0 {
				continue
			}
			targets = views.SampleTargets(targets, id, p.Fanout, r)
			payload := append([]int32(nil), m.buffer...)
			for _, t := range targets {
				outbox = append(outbox, msg{to: t, events: payload})
				res.MessagesSent++
			}
		}
		for _, mg := range outbox {
			if !mask.Alive(mg.to) {
				continue
			}
			for _, ev := range mg.events {
				deliver(mg.to, ev)
			}
		}
	}

	var sum float64
	min := 1.0
	for _, d := range res.DeliveredPerEvent {
		rel := float64(d) / float64(res.AliveCount)
		sum += rel
		if rel < min {
			min = rel
		}
	}
	res.MeanReliability = sum / float64(p.Events)
	res.MinReliability = min
	return res, nil
}
