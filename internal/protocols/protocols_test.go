package protocols

import (
	"math"
	"testing"

	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

func TestPbcastValidate(t *testing.T) {
	good := PbcastParams{N: 100, Fanout: 3, Rounds: 5, AliveRatio: 0.9}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	for name, bad := range map[string]PbcastParams{
		"tiny group": {N: 1, Fanout: 3, Rounds: 5, AliveRatio: 0.9},
		"neg fanout": {N: 100, Fanout: -1, Rounds: 5, AliveRatio: 0.9},
		"no rounds":  {N: 100, Fanout: 3, Rounds: 0, AliveRatio: 0.9},
		"bad q":      {N: 100, Fanout: 3, Rounds: 5, AliveRatio: 1.5},
		"bad source": {N: 100, Fanout: 3, Rounds: 5, AliveRatio: 0.9, Source: 100},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestPbcastReachesEveryoneWithEnoughRounds(t *testing.T) {
	// Round-based anti-entropy removes the die-out mode: with fanout 3
	// and ~log n rounds, reliability 1 should be routine.
	r := xrand.New(1)
	for trial := 0; trial < 10; trial++ {
		res, err := RunPbcast(PbcastParams{N: 1000, Fanout: 3, Rounds: 15, AliveRatio: 1}, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reliability != 1 {
			t.Fatalf("trial %d: reliability %.4f", trial, res.Reliability)
		}
	}
}

func TestPbcastNeverDiesOutUnlikeSingleShot(t *testing.T) {
	// Even with fanout 1 per round the source keeps gossiping, so the
	// mean reliability over many runs must beat the single-shot
	// branching process's survival-limited mean.
	r := xrand.New(3)
	var acc stats.Running
	for trial := 0; trial < 50; trial++ {
		res, err := RunPbcast(PbcastParams{N: 300, Fanout: 1, Rounds: 25, AliveRatio: 1}, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered < 2 {
			t.Fatalf("pbcast died in round 1 despite source regossiping")
		}
		acc.Add(res.Reliability)
	}
	if acc.Mean() < 0.9 {
		t.Errorf("pbcast fanout-1 mean reliability %.4f, want > 0.9", acc.Mean())
	}
}

func TestPbcastStopsEarlyWhenComplete(t *testing.T) {
	r := xrand.New(5)
	res, err := RunPbcast(PbcastParams{N: 50, Fanout: 10, Rounds: 1000, AliveRatio: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds >= 1000 {
		t.Errorf("ran all %d rounds despite full coverage", res.Rounds)
	}
	if res.Reliability != 1 {
		t.Errorf("reliability %.4f", res.Reliability)
	}
}

func TestPbcastWithFailures(t *testing.T) {
	r := xrand.New(7)
	res, err := RunPbcast(PbcastParams{N: 1000, Fanout: 4, Rounds: 20, AliveRatio: 0.6}, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.AliveCount != 600 {
		t.Fatalf("alive = %d", res.AliveCount)
	}
	if res.Reliability < 0.99 {
		t.Errorf("reliability %.4f with q=0.6 and 20 rounds", res.Reliability)
	}
}

func TestPbcastPredictedRounds(t *testing.T) {
	if got := PbcastPredictedRounds(1000, 3); got < 4 || got > 8 {
		t.Errorf("predicted rounds for n=1000 f=3: %d", got)
	}
	if PbcastPredictedRounds(1, 3) != 0 || PbcastPredictedRounds(100, 0) != 0 {
		t.Error("degenerate inputs should predict 0 rounds")
	}
	// Prediction should roughly match simulation.
	r := xrand.New(9)
	res, err := RunPbcast(PbcastParams{N: 1000, Fanout: 3, Rounds: 100, AliveRatio: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	pred := PbcastPredictedRounds(1000, 3)
	if res.Rounds > pred*3 {
		t.Errorf("simulated rounds %d far above prediction %d", res.Rounds, pred)
	}
}

func TestLRGValidate(t *testing.T) {
	good := LRGParams{N: 100, Degree: 6, GossipProb: 0.7, RepairRounds: 2, AliveRatio: 0.9}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	for name, bad := range map[string]LRGParams{
		"degree 0":    {N: 100, Degree: 0, GossipProb: 0.7, AliveRatio: 0.9},
		"degree >= n": {N: 10, Degree: 10, GossipProb: 0.7, AliveRatio: 0.9},
		"bad prob":    {N: 100, Degree: 6, GossipProb: 1.2, AliveRatio: 0.9},
		"neg repair":  {N: 100, Degree: 6, GossipProb: 0.5, RepairRounds: -1, AliveRatio: 0.9},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLRGRepairImprovesReliability(t *testing.T) {
	// The LRG thesis: local retransmission patches the holes that
	// probabilistic flooding leaves.
	base := LRGParams{N: 2000, Degree: 8, GossipProb: 0.5, RepairRounds: 0, AliveRatio: 1}
	withRepair := base
	withRepair.RepairRounds = 5
	var noRep, rep stats.Running
	for seed := uint64(0); seed < 15; seed++ {
		a, err := RunLRG(base, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		noRep.Add(a.Reliability)
		b, err := RunLRG(withRepair, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		rep.Add(b.Reliability)
	}
	if rep.Mean() <= noRep.Mean() {
		t.Errorf("repair did not help: %.4f vs %.4f", rep.Mean(), noRep.Mean())
	}
	if rep.Mean() < 0.9 {
		t.Errorf("LRG with repair only reached %.4f", rep.Mean())
	}
}

func TestLRGGossipProbMonotone(t *testing.T) {
	means := make([]float64, 0, 3)
	for _, pg := range []float64{0.3, 0.6, 0.9} {
		var acc stats.Running
		for seed := uint64(0); seed < 10; seed++ {
			res, err := RunLRG(LRGParams{
				N: 1500, Degree: 8, GossipProb: pg, RepairRounds: 0, AliveRatio: 1,
			}, xrand.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(res.Reliability)
		}
		means = append(means, acc.Mean())
	}
	if !(means[0] <= means[1]+0.02 && means[1] <= means[2]+0.02) {
		t.Errorf("reliability not monotone in gossip prob: %v", means)
	}
}

func TestLRGEpidemicFraction(t *testing.T) {
	// Closed form: i(t) = i0 e^{bt} / (1 - i0 + i0 e^{bt}).
	beta, i0, horizon := 2.0, 0.01, 4.0
	got, err := LRGEpidemicFraction(beta, i0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	e := i0 * math.Exp(beta*horizon) / (1 - i0 + i0*math.Exp(beta*horizon))
	if math.Abs(got-e) > 1e-6 {
		t.Errorf("SI fraction %.8f, want %.8f", got, e)
	}
	// t=0 returns i0; huge t saturates at 1.
	if got, _ := LRGEpidemicFraction(beta, 0.25, 0); got != 0.25 {
		t.Errorf("t=0 fraction %g", got)
	}
	if got, _ := LRGEpidemicFraction(3, 0.01, 50); got < 0.999 {
		t.Errorf("long-horizon fraction %g", got)
	}
	if _, err := LRGEpidemicFraction(-1, 0.1, 1); err == nil {
		t.Error("negative beta accepted")
	}
	if _, err := LRGEpidemicFraction(1, 2, 1); err == nil {
		t.Error("i0 > 1 accepted")
	}
}

func TestFloodingAlwaysPerfect(t *testing.T) {
	r := xrand.New(11)
	for _, q := range []float64{0.2, 0.5, 1.0} {
		res, err := RunFlooding(FloodingParams{N: 500, AliveRatio: q}, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reliability != 1 {
			t.Errorf("q=%g: flooding reliability %.4f", q, res.Reliability)
		}
		// Message cost is delivered×(n−1).
		if res.MessagesSent != res.Delivered*(500-1) {
			t.Errorf("message accounting: %d sent, %d delivered", res.MessagesSent, res.Delivered)
		}
	}
}

func TestFloodingValidate(t *testing.T) {
	if err := (FloodingParams{N: 1, AliveRatio: 1}).Validate(); err == nil {
		t.Error("tiny group accepted")
	}
	if err := (FloodingParams{N: 10, AliveRatio: -1}).Validate(); err == nil {
		t.Error("bad ratio accepted")
	}
	if err := (FloodingParams{N: 10, AliveRatio: 1, Source: 10}).Validate(); err == nil {
		t.Error("bad source accepted")
	}
}

func TestProtocolCostOrdering(t *testing.T) {
	// The fundamental trade-off the paper's intro frames: flooding costs
	// ~n× more messages than gossip at comparable reliability.
	r := xrand.New(13)
	flood, err := RunFlooding(FloodingParams{N: 1000, AliveRatio: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	gossip, err := RunPbcast(PbcastParams{N: 1000, Fanout: 4, Rounds: 15, AliveRatio: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	if gossip.Reliability < 0.999 {
		t.Fatalf("gossip baseline unreliable: %.4f", gossip.Reliability)
	}
	if flood.MessagesSent < gossip.MessagesSent*10 {
		t.Errorf("flooding %d msgs vs gossip %d msgs: expected ≥10x gap",
			flood.MessagesSent, gossip.MessagesSent)
	}
}

func BenchmarkPbcast1000(b *testing.B) {
	r := xrand.New(1)
	p := PbcastParams{N: 1000, Fanout: 4, Rounds: 15, AliveRatio: 0.9}
	for i := 0; i < b.N; i++ {
		if _, err := RunPbcast(p, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLRG2000(b *testing.B) {
	r := xrand.New(1)
	p := LRGParams{N: 2000, Degree: 8, GossipProb: 0.6, RepairRounds: 3, AliveRatio: 0.9}
	for i := 0; i < b.N; i++ {
		if _, err := RunLRG(p, r); err != nil {
			b.Fatal(err)
		}
	}
}
