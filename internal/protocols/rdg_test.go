package protocols

import (
	"testing"

	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

func TestRDGValidate(t *testing.T) {
	good := RDGParams{N: 200, Fanout: 3, PushRounds: 6, RecoveryRounds: 3, AliveRatio: 0.9}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	muts := []func(*RDGParams){
		func(p *RDGParams) { p.N = 1 },
		func(p *RDGParams) { p.Fanout = 0 },
		func(p *RDGParams) { p.PushRounds = 0 },
		func(p *RDGParams) { p.RecoveryRounds = -1 },
		func(p *RDGParams) { p.AliveRatio = 2 },
		func(p *RDGParams) { p.Source = -1 },
		func(p *RDGParams) { p.ViewCopies = -1 },
	}
	for i, mut := range muts {
		p := good
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRDGHighReliability(t *testing.T) {
	p := RDGParams{
		N: 800, Fanout: 3, PushRounds: 10, RecoveryRounds: 4,
		AliveRatio: 0.9, ViewCopies: 1,
	}
	res, err := RunRDG(p, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability < 0.97 {
		t.Errorf("RDG reliability %.4f", res.Reliability)
	}
	if res.DeliveredByPush+res.DeliveredByPull != res.Delivered {
		t.Errorf("accounting: push %d + pull %d != delivered %d",
			res.DeliveredByPush, res.DeliveredByPull, res.Delivered)
	}
}

func TestRDGRecoveryHelps(t *testing.T) {
	// With buffer-limited pushes (payload rides only 60% of messages),
	// awareness outruns the payload and the NACK pulls must close the
	// gap.
	base := RDGParams{
		N: 1000, Fanout: 3, PushRounds: 6, RecoveryRounds: 0,
		AliveRatio: 1, ViewCopies: 1, PayloadProb: 0.6,
	}
	withRec := base
	withRec.RecoveryRounds = 6
	var noRec, rec stats.Running
	for seed := uint64(0); seed < 10; seed++ {
		a, err := RunRDG(base, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		noRec.Add(a.Reliability)
		b, err := RunRDG(withRec, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		rec.Add(b.Reliability)
		if b.DeliveredByPull < 0 || b.DeliveredByPull > b.Delivered {
			t.Errorf("pull accounting out of range: %d of %d", b.DeliveredByPull, b.Delivered)
		}
	}
	if rec.Mean() <= noRec.Mean() {
		t.Errorf("recovery did not help: %.4f vs %.4f", rec.Mean(), noRec.Mean())
	}
}

func TestRDGAwareMissesBounded(t *testing.T) {
	p := RDGParams{
		N: 500, Fanout: 3, PushRounds: 8, RecoveryRounds: 5,
		AliveRatio: 0.8, ViewCopies: 1,
	}
	res, err := RunRDG(p, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// After generous recovery, aware-but-missing members should be rare.
	if res.AwareMisses > res.AliveCount/20 {
		t.Errorf("aware misses %d of %d alive", res.AwareMisses, res.AliveCount)
	}
}

func BenchmarkRDG(b *testing.B) {
	p := RDGParams{
		N: 1000, Fanout: 3, PushRounds: 8, RecoveryRounds: 3,
		AliveRatio: 0.9, ViewCopies: 1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := RunRDG(p, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
