package protocols

import (
	"math"
	"testing"

	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

func TestLpbcastValidate(t *testing.T) {
	good := LpbcastParams{
		N: 200, Fanout: 3, Rounds: 10, BufferSize: 8, Events: 2, AliveRatio: 0.9,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	muts := []func(*LpbcastParams){
		func(p *LpbcastParams) { p.N = 1 },
		func(p *LpbcastParams) { p.Fanout = 0 },
		func(p *LpbcastParams) { p.Rounds = 0 },
		func(p *LpbcastParams) { p.BufferSize = 0 },
		func(p *LpbcastParams) { p.Events = 0 },
		func(p *LpbcastParams) { p.AliveRatio = -1 },
		func(p *LpbcastParams) { p.Source = 200 },
		func(p *LpbcastParams) { p.ViewCopies = -1 },
	}
	for i, mut := range muts {
		p := good
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestLpbcastSingleEventHighReliability(t *testing.T) {
	p := LpbcastParams{
		N: 500, Fanout: 3, Rounds: 12, BufferSize: 16, Events: 1,
		AliveRatio: 0.9, ViewCopies: 1,
	}
	res, err := RunLpbcast(p, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.AliveCount != 450 {
		t.Fatalf("alive = %d", res.AliveCount)
	}
	if res.MeanReliability < 0.95 {
		t.Errorf("single-event reliability %.4f", res.MeanReliability)
	}
	if res.MessagesSent == 0 {
		t.Error("no messages counted")
	}
}

func TestLpbcastBufferPressureHurtsWorstEvent(t *testing.T) {
	// With Events >> BufferSize, old rumors age out before spreading:
	// the worst event's delivery must drop measurably below a run with
	// ample buffers.
	base := LpbcastParams{
		N: 400, Fanout: 3, Rounds: 10, Events: 24, AliveRatio: 1, ViewCopies: 1,
	}
	ample := base
	ample.BufferSize = 64
	tight := base
	tight.BufferSize = 2
	var ampleMin, tightMin stats.Running
	for seed := uint64(0); seed < 8; seed++ {
		a, err := RunLpbcast(ample, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		ampleMin.Add(a.MinReliability)
		b, err := RunLpbcast(tight, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		tightMin.Add(b.MinReliability)
	}
	if tightMin.Mean() >= ampleMin.Mean()-0.05 {
		t.Errorf("buffer pressure invisible: tight %.4f vs ample %.4f",
			tightMin.Mean(), ampleMin.Mean())
	}
}

func TestLpbcastPerEventAccounting(t *testing.T) {
	p := LpbcastParams{
		N: 300, Fanout: 3, Rounds: 8, BufferSize: 8, Events: 4,
		AliveRatio: 0.8, ViewCopies: 1,
	}
	res, err := RunLpbcast(p, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeliveredPerEvent) != 4 {
		t.Fatalf("events = %d", len(res.DeliveredPerEvent))
	}
	for e, d := range res.DeliveredPerEvent {
		if d < 1 || d > res.AliveCount {
			t.Errorf("event %d delivered to %d of %d", e, d, res.AliveCount)
		}
	}
	if res.MinReliability > res.MeanReliability+1e-9 {
		t.Error("min exceeds mean")
	}
}

func TestAntiEntropyValidate(t *testing.T) {
	good := AntiEntropyParams{N: 100, Rounds: 10, Mode: PushPull, AliveRatio: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	for i, bad := range []AntiEntropyParams{
		{N: 1, Rounds: 5, AliveRatio: 1},
		{N: 100, Rounds: -1, AliveRatio: 1},
		{N: 100, Rounds: 5, Mode: Mode(7), AliveRatio: 1},
		{N: 100, Rounds: 5, AliveRatio: 2},
		{N: 100, Rounds: 5, AliveRatio: 1, Source: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAntiEntropyPushPullFullCoverage(t *testing.T) {
	p := AntiEntropyParams{N: 1000, Rounds: 0, Mode: PushPull, AliveRatio: 0.9}
	res, err := RunAntiEntropy(p, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability != 1 {
		t.Errorf("push-pull reliability %.4f", res.Reliability)
	}
	// Classic result: push-pull completes in O(log n) rounds.
	if res.Rounds > 20 {
		t.Errorf("push-pull took %d rounds for n=1000", res.Rounds)
	}
	// Infection curve is monotone, starts at 1, ends at alive count.
	curve := res.InfectedPerRound
	if curve[0] != 1 || curve[len(curve)-1] != res.AliveCount {
		t.Errorf("curve endpoints: %d .. %d", curve[0], curve[len(curve)-1])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("curve not monotone at %d", i)
		}
	}
}

func TestAntiEntropyModeOrdering(t *testing.T) {
	// At a fixed small round budget, push-pull >= push and >= pull in
	// coverage (push stalls in the endgame, pull in the start).
	const rounds = 6
	var push, pull, both stats.Running
	for seed := uint64(0); seed < 10; seed++ {
		a, err := RunAntiEntropy(AntiEntropyParams{N: 2000, Rounds: rounds, Mode: Push, AliveRatio: 1}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		push.Add(a.Reliability)
		b, err := RunAntiEntropy(AntiEntropyParams{N: 2000, Rounds: rounds, Mode: Pull, AliveRatio: 1}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		pull.Add(b.Reliability)
		c, err := RunAntiEntropy(AntiEntropyParams{N: 2000, Rounds: rounds, Mode: PushPull, AliveRatio: 1}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		both.Add(c.Reliability)
	}
	if both.Mean() < push.Mean()-1e-9 || both.Mean() < pull.Mean()-1e-9 {
		t.Errorf("push-pull %.4f not dominating push %.4f / pull %.4f",
			both.Mean(), push.Mean(), pull.Mean())
	}
}

func TestAntiEntropyPullNeedsSeeding(t *testing.T) {
	// Pull-only from a single source: in round 1 only callers that pick
	// the source get infected — expected growth is slow at first but
	// still completes given enough rounds.
	p := AntiEntropyParams{N: 300, Rounds: 0, Mode: Pull, AliveRatio: 1}
	res, err := RunAntiEntropy(p, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability != 1 {
		t.Errorf("pull never completed: %.4f", res.Reliability)
	}
}

func TestAntiEntropyMessageCost(t *testing.T) {
	p := AntiEntropyParams{N: 500, Rounds: 5, Mode: Push, AliveRatio: 1}
	res, err := RunAntiEntropy(p, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	// Push: one message per alive member per round.
	if res.MessagesSent != 500*res.Rounds {
		t.Errorf("push messages %d, want %d", res.MessagesSent, 500*res.Rounds)
	}
	p.Mode = PushPull
	res2, err := RunAntiEntropy(p, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if res2.MessagesSent != 2*500*res2.Rounds {
		t.Errorf("push-pull messages %d, want %d", res2.MessagesSent, 2*500*res2.Rounds)
	}
}

func TestModeString(t *testing.T) {
	if Push.String() != "push" || Pull.String() != "pull" || PushPull.String() != "push-pull" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string wrong")
	}
}

func TestAntiEntropyLogisticGrowthPhase(t *testing.T) {
	// Push-only epidemic: fraction infected follows the logistic map
	// i_{t+1} = i_t + i_t(1 - i_t) approximately (each infected member
	// pushes to one uniform peer). Verify the early doubling behavior.
	p := AntiEntropyParams{N: 10000, Rounds: 5, Mode: Push, AliveRatio: 1}
	res, err := RunAntiEntropy(p, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	curve := res.InfectedPerRound
	for r := 1; r < len(curve) && curve[r] < 1000; r++ {
		ratio := float64(curve[r]) / float64(curve[r-1])
		if math.Abs(ratio-2) > 0.5 {
			t.Errorf("round %d growth ratio %.2f, want ~2 in early phase", r, ratio)
		}
	}
}

func BenchmarkLpbcast(b *testing.B) {
	p := LpbcastParams{
		N: 500, Fanout: 3, Rounds: 10, BufferSize: 16, Events: 4,
		AliveRatio: 0.9, ViewCopies: 1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := RunLpbcast(p, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAntiEntropyPushPull(b *testing.B) {
	p := AntiEntropyParams{N: 1000, Rounds: 0, Mode: PushPull, AliveRatio: 0.9}
	r := xrand.New(1)
	for i := 0; i < b.N; i++ {
		if _, err := RunAntiEntropy(p, r); err != nil {
			b.Fatal(err)
		}
	}
}
