// Package protocols implements the baseline dissemination protocols the
// paper positions itself against (§2 Related Work), so the experiment
// harness can compare the paper's single-shot general gossip with the
// protocol families the related work analyzes:
//
//   - Pbcast (Bimodal Multicast, Birman et al. [5]): round-based
//     anti-entropy gossip — every member that has the message gossips every
//     round for a fixed number of rounds, which removes the single-shot
//     die-out failure mode at the cost of more messages.
//   - lpbcast (Eugster et al. [1]): gossip over SCAMP partial views with
//     bounded event buffers that age out under load — constant memory
//     traded against reliability.
//   - Anti-entropy (Demers et al. [2]): each round every member contacts
//     one uniformly random peer and exchanges state push, pull, or
//     push-pull.
//   - RDG (Route Driven Gossip, Luo, Eugster & Hubaux [8]): push gossip of
//     payloads and packet-id digests over partial views, then NACK-driven
//     pull recovery.
//   - LRG (Local Retransmission-based Gossip, Jia et al. [9]):
//     probabilistic flooding over a bounded-degree neighbor overlay with
//     NACK-style local repair rounds, plus its SI epidemic ODE model.
//   - Flooding: the best-effort baseline — forward to every member on
//     first receipt (fanout n−1), maximal reliability and maximal cost.
//
// All protocols share the paper's failure model: a fail-stop alive mask
// with the source protected.
//
// # Two execution substrates, one oracle
//
// Every baseline has two executions:
//
//   - The legacy pure round loops (RunPbcast, RunLpbcast, RunAntiEntropy,
//     RunRDG, RunLRG, RunFlooding): synchronous-round simulations with no
//     notion of time, latency, or mid-run faults beyond the static mask.
//     They are kept as the equivalence oracle.
//   - The discrete-event runtime (RunOnDES over a Spec): the same
//     protocol logic driven by the shared sim.Kernel round ticker with
//     every gossip, digest, NACK, and pull reply routed through a
//     simnet.Network — so latency models, message loss, partitions, and
//     mid-run crash/restart/churn campaigns apply to the baselines
//     exactly as they apply to the paper's own algorithm in
//     internal/core.
//
// Under a zero-latency, no-loss network the DES execution consumes the
// protocol RNG stream in exactly the legacy order and fires deliveries in
// legacy iteration order, so its results are identical to the oracle's —
// equiv_test.go pins this per protocol, golden values included. The
// runtime recycles run state through core.NetArena (zero O(n) allocations
// on a warm arena) and exposes a core.NetRun so scenario campaigns inject
// into baseline runs through the same seam as paper runs.
package protocols
