package protocols

// The six baseline state machines on the shared DES runtime. Each machine
// replicates its legacy round loop's RNG consumption order and delivery
// application order exactly, so a zero-latency no-loss run is
// result-identical to the legacy loop (equiv_test.go pins this); under
// latency, loss, partitions, and scenario campaigns the same logic
// degrades the way a real deployment would.

import (
	"gossipkit/internal/graph"
	"gossipkit/internal/membership"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
)

// ---------------------------------------------------------------------------
// Pbcast

// Protocol implements Spec.
func (p PbcastParams) Protocol() string { return "pbcast" }

func (p PbcastParams) size() int           { return p.N }
func (p PbcastParams) start() int          { return p.Source }
func (p PbcastParams) newMachine() machine { return &pbcastMachine{p: p} }

type pbcastMachine struct {
	p       PbcastParams
	holders []int32 // members holding m, in infection order
}

func (m *pbcastMachine) init(rt *Runtime) {
	rt.Mask.FillExact(m.p.N, m.p.AliveRatio, m.p.Source, rt.RNG)
	rt.seedSource()
	m.holders = append(m.holders, int32(m.p.Source))
}

func (m *pbcastMachine) tick(rt *Runtime, round int) bool {
	if round >= m.p.Rounds {
		return false
	}
	if round > 0 && rt.res.Delivered == rt.res.AliveCount {
		return false // everyone has it; further rounds are pure overhead
	}
	rt.res.Rounds++
	holders := m.holders // deliveries appended mid-round join next round
	for _, uu := range holders {
		u := int(uu)
		if !rt.Net.Up(simnet.NodeID(u)) {
			continue // crashed holders do not gossip
		}
		rt.fanoutBlast(u, m.p.Fanout)
	}
	return true
}

func (m *pbcastMachine) deliver(rt *Runtime, now sim.Time, msg simnet.Message) {
	id := int(msg.To)
	if !rt.markReceived(id, now) {
		rt.res.Duplicates++
		return
	}
	m.holders = append(m.holders, int32(id))
}

func (m *pbcastMachine) publish(rt *Runtime, id int) {
	if rt.recv.Get(id) {
		rt.fanoutBlast(id, m.p.Fanout) // re-gossip: one immediate extra wave
		return
	}
	rt.markReceived(id, rt.Kernel.Now())
	m.holders = append(m.holders, int32(id))
}

func (m *pbcastMachine) detail(rt *Runtime) any { return rt.baseResult() }

// ---------------------------------------------------------------------------
// Flooding

// Protocol implements Spec.
func (p FloodingParams) Protocol() string { return "flooding" }

func (p FloodingParams) size() int           { return p.N }
func (p FloodingParams) start() int          { return p.Source }
func (p FloodingParams) newMachine() machine { return &floodingMachine{p: p} }

type floodingMachine struct{ p FloodingParams }

func (m *floodingMachine) init(rt *Runtime) {
	rt.Mask.FillExact(m.p.N, m.p.AliveRatio, m.p.Source, rt.RNG)
	rt.seedSource()
}

func (m *floodingMachine) tick(rt *Runtime, round int) bool {
	rt.res.Rounds = 1
	m.blast(rt, m.p.Source)
	return false // event-driven from here: every first receipt re-blasts
}

// blast forwards to every other member — or, on a topology overlay, to
// every live overlay neighbor (flooding over a constrained graph).
func (m *floodingMachine) blast(rt *Runtime, u int) {
	if ov := rt.overlay(); ov != nil {
		for _, vv := range ov.Neighbors(u) {
			v := int(vv)
			rt.res.MessagesSent++
			if !rt.Mask.Alive(v) {
				rt.res.WastedOnFailed++
			}
			rt.Net.SendTag(simnet.NodeID(u), simnet.NodeID(v), tagGossip)
		}
		return
	}
	rt.res.MessagesSent += m.p.N - 1
	for v := 0; v < m.p.N; v++ {
		if v == u {
			continue
		}
		if !rt.Mask.Alive(v) {
			rt.res.WastedOnFailed++
		}
		rt.Net.SendTag(simnet.NodeID(u), simnet.NodeID(v), tagGossip)
	}
}

func (m *floodingMachine) deliver(rt *Runtime, now sim.Time, msg simnet.Message) {
	id := int(msg.To)
	if !rt.markReceived(id, now) {
		rt.res.Duplicates++
		return
	}
	m.blast(rt, id)
}

func (m *floodingMachine) publish(rt *Runtime, id int) {
	rt.markReceived(id, rt.Kernel.Now())
	m.blast(rt, id)
}

func (m *floodingMachine) detail(rt *Runtime) any { return rt.baseResult() }

// ---------------------------------------------------------------------------
// Anti-entropy

// Protocol implements Spec.
func (p AntiEntropyParams) Protocol() string { return "anti-entropy" }

func (p AntiEntropyParams) size() int           { return p.N }
func (p AntiEntropyParams) start() int          { return p.Source }
func (p AntiEntropyParams) newMachine() machine { return &aeMachine{p: p} }

type aeMachine struct {
	p         AntiEntropyParams
	msgCost   int
	maxRounds int
	snapshot  []bool // infected state at the latest round tick
	curve     []int  // cumulative infected after each round
	progress  bool   // any new infection since the latest tick
}

func (m *aeMachine) init(rt *Runtime) {
	rt.Mask.FillExact(m.p.N, m.p.AliveRatio, m.p.Source, rt.RNG)
	rt.seedSource()
	m.msgCost = 1
	if m.p.Mode != Push {
		m.msgCost = 2
	}
	m.maxRounds = m.p.Rounds
	if m.maxRounds == 0 {
		m.maxRounds = 40 * m.p.N // generous; the progress check stops first
	}
	m.snapshot = make([]bool, m.p.N)
	m.curve = append(m.curve, 1)
}

func (m *aeMachine) tick(rt *Runtime, round int) bool {
	if round > 0 {
		// Close the previous round: record the curve point, then apply
		// the legacy end-of-round exits.
		m.curve = append(m.curve, rt.res.Delivered)
		if rt.res.Delivered == rt.res.AliveCount {
			return false
		}
		if m.p.Rounds == 0 && !m.progress && rt.inFlight() == 0 {
			return false // quiescent: no new infections, nothing airborne
		}
	}
	if round >= m.maxRounds {
		return false
	}
	rt.res.Rounds++
	m.progress = false
	for i := 0; i < m.p.N; i++ {
		m.snapshot[i] = rt.recv.Get(i)
	}
	for id := 0; id < m.p.N; id++ {
		if !rt.upAlive(id) {
			continue
		}
		peer, ok := rt.pickPeer(id)
		if !ok {
			continue // overlay neighborhood emptied by removals
		}
		// Contact accounting matches the legacy loop: pull and push-pull
		// imply a reply, charged here whether or not one materializes.
		rt.res.MessagesSent += m.msgCost
		tag := tagAEReq
		if m.snapshot[id] {
			tag = tagAEReqHot
		}
		rt.Net.SendTag(simnet.NodeID(id), simnet.NodeID(peer), tag)
	}
	return true
}

func (m *aeMachine) infect(rt *Runtime, id int, now sim.Time) {
	if rt.markReceived(id, now) {
		m.progress = true
	} else {
		rt.res.Duplicates++
	}
}

func (m *aeMachine) deliver(rt *Runtime, now sim.Time, msg simnet.Message) {
	id := int(msg.To)
	switch msg.Tag {
	case tagAEReq, tagAEReqHot:
		if msg.Tag == tagAEReqHot && m.p.Mode != Pull {
			m.infect(rt, id, now) // push direction
		}
		if m.p.Mode != Push && m.snapshot[id] {
			// Pull direction: reply with the payload the callee held at
			// the round tick (already charged at contact time).
			rt.Net.SendTag(msg.To, msg.From, tagAEReply)
		}
	case tagAEReply:
		m.infect(rt, id, now)
	}
}

func (m *aeMachine) publish(rt *Runtime, id int) {
	if !rt.recv.Get(id) {
		m.infect(rt, id, rt.Kernel.Now())
		return
	}
	// Re-gossip: one immediate hot contact to a random peer.
	peer, ok := rt.pickPeer(id)
	if !ok {
		return
	}
	rt.res.MessagesSent += m.msgCost
	rt.Net.SendTag(simnet.NodeID(id), simnet.NodeID(peer), tagAEReqHot)
}

func (m *aeMachine) detail(rt *Runtime) any {
	return AntiEntropyResult{Result: rt.baseResult(), InfectedPerRound: m.curve}
}

// ---------------------------------------------------------------------------
// lpbcast

// Protocol implements Spec.
func (p LpbcastParams) Protocol() string { return "lpbcast" }

func (p LpbcastParams) size() int           { return p.N }
func (p LpbcastParams) start() int          { return p.Source }
func (p LpbcastParams) newMachine() machine { return &lpMachine{p: p} }

type lpMachine struct {
	p        LpbcastParams
	view     membership.View
	members  []lpbcastMember
	perEvent []int
}

func (m *lpMachine) init(rt *Runtime) {
	if ov := rt.overlay(); ov != nil {
		// A topology overlay supplants the protocol's own SCAMP views:
		// lpbcast's bounded partial views are exactly the structure the
		// overlay generalizes.
		m.view = ov
	} else {
		views := membership.NewPartialViews(m.p.N, m.p.ViewCopies, rt.RNG)
		views.Shuffle(5, 3, rt.RNG)
		rt.view = views
		m.view = views
	}
	rt.Mask.FillExact(m.p.N, m.p.AliveRatio, m.p.Source, rt.RNG)
	m.members = make([]lpbcastMember, m.p.N)
	for i := range m.members {
		m.members[i].seen = map[int32]bool{}
	}
	m.perEvent = make([]int, m.p.Events)
	rt.seedSource()
	for e := 0; e < m.p.Events; e++ {
		m.absorb(rt, m.p.Source, int32(e), 0)
	}
}

// absorb applies one event delivery at id: dedup, per-event accounting,
// buffer append with age-out, and the member-level first receipt.
func (m *lpMachine) absorb(rt *Runtime, id int, ev int32, now sim.Time) {
	mb := &m.members[id]
	if mb.seen[ev] {
		return
	}
	mb.seen[ev] = true
	m.perEvent[ev]++
	mb.buffer = append(mb.buffer, ev)
	// Age-out: keep only the newest BufferSize events.
	if len(mb.buffer) > m.p.BufferSize {
		mb.buffer = mb.buffer[len(mb.buffer)-m.p.BufferSize:]
	}
	rt.markReceived(id, now) // no-op after the member's first event
}

func (m *lpMachine) tick(rt *Runtime, round int) bool {
	if round >= m.p.Rounds {
		return false
	}
	rt.res.Rounds++
	for id := 0; id < m.p.N; id++ {
		if !rt.upAlive(id) {
			continue
		}
		m.forward(rt, id)
	}
	return true
}

// forward gossips id's buffered events to Fanout view targets (a no-op on
// an empty buffer) — the shared send block of round ticks and re-gossip
// publishes.
func (m *lpMachine) forward(rt *Runtime, id int) {
	mb := &m.members[id]
	if len(mb.buffer) == 0 {
		return
	}
	rt.targets = m.view.SampleTargets(rt.targets, id, m.p.Fanout, rt.RNG)
	payload := append([]int32(nil), mb.buffer...)
	for _, t := range rt.targets {
		rt.res.MessagesSent++
		rt.Net.Send(simnet.NodeID(id), simnet.NodeID(t), payload)
	}
}

func (m *lpMachine) deliver(rt *Runtime, now sim.Time, msg simnet.Message) {
	evs, _ := msg.Payload.([]int32)
	for _, ev := range evs {
		m.absorb(rt, int(msg.To), ev, now)
	}
}

func (m *lpMachine) publish(rt *Runtime, id int) {
	if len(m.members[id].seen) < m.p.Events {
		// Flash crowd: id obtains every event out of band.
		for e := 0; e < m.p.Events; e++ {
			m.absorb(rt, id, int32(e), rt.Kernel.Now())
		}
		return
	}
	// Re-gossip: forward the current buffer once more.
	m.forward(rt, id)
}

func (m *lpMachine) detail(rt *Runtime) any {
	res := LpbcastResult{
		AliveCount:        rt.res.AliveCount,
		DeliveredPerEvent: m.perEvent,
		MessagesSent:      rt.res.MessagesSent,
	}
	var sum float64
	min := 1.0
	for _, d := range res.DeliveredPerEvent {
		rel := float64(d) / float64(res.AliveCount)
		sum += rel
		if rel < min {
			min = rel
		}
	}
	res.MeanReliability = sum / float64(m.p.Events)
	res.MinReliability = min
	return res
}

// ---------------------------------------------------------------------------
// RDG

// Protocol implements Spec.
func (p RDGParams) Protocol() string { return "rdg" }

func (p RDGParams) size() int           { return p.N }
func (p RDGParams) start() int          { return p.Source }
func (p RDGParams) newMachine() machine { return &rdgMachine{p: p} }

type rdgMachine struct {
	p              RDGParams
	view           membership.View
	aware          []bool  // knows the packet id
	provider       []int32 // who advertised the id to us
	snapshot       []bool  // payload possession at the latest recovery tick
	byPush, byPull int
	roundRecovered int // repairs completed since the latest recovery tick
	prevRecovered  int
}

func (m *rdgMachine) init(rt *Runtime) {
	if ov := rt.overlay(); ov != nil {
		m.view = ov
	} else {
		views := membership.NewPartialViews(m.p.N, m.p.ViewCopies, rt.RNG)
		views.Shuffle(5, 3, rt.RNG)
		rt.view = views
		m.view = views
	}
	rt.Mask.FillExact(m.p.N, m.p.AliveRatio, m.p.Source, rt.RNG)
	m.aware = make([]bool, m.p.N)
	m.provider = make([]int32, m.p.N)
	for i := range m.provider {
		m.provider[i] = -1
	}
	m.snapshot = make([]bool, m.p.N)
	rt.seedSource()
	m.aware[m.p.Source] = true
	m.byPush = 1
}

func (m *rdgMachine) tick(rt *Runtime, round int) bool {
	if round < m.p.PushRounds {
		rt.res.Rounds++
		for id := 0; id < m.p.N; id++ {
			if !rt.upAlive(id) || !m.aware[id] {
				continue
			}
			rt.targets = m.view.SampleTargets(rt.targets, id, m.p.Fanout, rt.RNG)
			for _, t := range rt.targets {
				withPayload := rt.recv.Get(id) && (m.p.PayloadProb == 0 || rt.RNG.Bool(m.p.PayloadProb))
				rt.res.MessagesSent++
				tag := tagDigest
				if withPayload {
					tag = tagGossip
				}
				rt.Net.SendTag(simnet.NodeID(id), simnet.NodeID(t), tag)
			}
		}
		return true
	}
	k := round - m.p.PushRounds // recovery round index
	if k >= m.p.RecoveryRounds {
		return false
	}
	if k > 0 {
		m.prevRecovered = m.roundRecovered
	}
	if k >= 2 && m.prevRecovered == 0 && rt.inFlight() == 0 {
		return false // recovery quiescent (legacy: zero round after round 0)
	}
	rt.res.Rounds++
	m.roundRecovered = 0
	for i := 0; i < m.p.N; i++ {
		m.snapshot[i] = rt.recv.Get(i)
	}
	for id := 0; id < m.p.N; id++ {
		if !rt.upAlive(id) || rt.recv.Get(id) || !m.aware[id] {
			continue
		}
		target := int(m.provider[id])
		if target < 0 || !rt.Mask.Alive(target) || !m.snapshot[target] {
			rt.targets = m.view.SampleTargets(rt.targets, id, 1, rt.RNG)
			if len(rt.targets) != 1 {
				continue
			}
			target = rt.targets[0]
		}
		rt.res.MessagesSent++          // the NACK
		m.provider[id] = int32(target) // remember for the next round
		rt.Net.SendTag(simnet.NodeID(id), simnet.NodeID(target), tagNack)
	}
	return true
}

func (m *rdgMachine) deliver(rt *Runtime, now sim.Time, msg simnet.Message) {
	id := int(msg.To)
	switch msg.Tag {
	case tagGossip, tagDigest:
		if !m.aware[id] || !rt.recv.Get(id) {
			m.provider[id] = int32(msg.From)
		}
		m.aware[id] = true
		if msg.Tag == tagGossip {
			if rt.markReceived(id, now) {
				m.byPush++
			} else {
				rt.res.Duplicates++
			}
		}
	case tagNack:
		if rt.recv.Get(id) {
			rt.res.MessagesSent++ // the retransmission
			rt.Net.SendTag(msg.To, msg.From, tagRepair)
		}
	case tagRepair:
		if rt.markReceived(id, now) {
			m.byPull++
			m.roundRecovered++
		} else {
			rt.res.Duplicates++
		}
	}
}

func (m *rdgMachine) publish(rt *Runtime, id int) {
	m.aware[id] = true
	if rt.markReceived(id, rt.Kernel.Now()) {
		m.byPush++ // obtained out of band; attribute to the push phase
		return
	}
	// Re-gossip: one push wave from id.
	rt.targets = m.view.SampleTargets(rt.targets, id, m.p.Fanout, rt.RNG)
	for _, t := range rt.targets {
		rt.res.MessagesSent++
		rt.Net.SendTag(simnet.NodeID(id), simnet.NodeID(t), tagGossip)
	}
}

func (m *rdgMachine) detail(rt *Runtime) any {
	res := RDGResult{
		Result:          rt.baseResult(),
		DeliveredByPush: m.byPush,
		DeliveredByPull: m.byPull,
	}
	for id := 0; id < m.p.N; id++ {
		if rt.Mask.Alive(id) && m.aware[id] && !rt.recv.Get(id) {
			res.AwareMisses++
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// LRG

// Protocol implements Spec.
func (p LRGParams) Protocol() string { return "lrg" }

func (p LRGParams) size() int           { return p.N }
func (p LRGParams) start() int          { return p.Source }
func (p LRGParams) newMachine() machine { return &lrgMachine{p: p} }

type lrgMachine struct {
	p         LRGParams
	out       func(int) []int32 // the fixed gossip graph's out-neighbors
	snapshot  []bool            // payload possession at the latest repair tick
	prevNacks int
}

func (m *lrgMachine) init(rt *Runtime) {
	if ov := rt.overlay(); ov != nil {
		// LRG already gossips over a fixed random graph; a topology
		// overlay simply substitutes its own graph for the configuration
		// model (removals shrink the live neighbor lists in place).
		m.out = ov.Neighbors
	} else {
		degrees := make([]int, m.p.N)
		for i := range degrees {
			degrees[i] = m.p.Degree
		}
		g := graph.ConfigurationModel(degrees, rt.RNG)
		m.out = g.Out
	}
	rt.Mask.FillExact(m.p.N, m.p.AliveRatio, m.p.Source, rt.RNG)
	m.snapshot = make([]bool, m.p.N)
	rt.seedSource()
}

// flood pushes m probabilistically to every overlay neighbor of u.
func (m *lrgMachine) flood(rt *Runtime, u int) {
	for _, v := range m.out(u) {
		if !rt.RNG.Bool(m.p.GossipProb) {
			continue
		}
		rt.res.MessagesSent++
		if !rt.Mask.Alive(int(v)) {
			rt.res.WastedOnFailed++
		}
		rt.Net.SendTag(simnet.NodeID(u), simnet.NodeID(v), tagGossip)
	}
}

func (m *lrgMachine) tick(rt *Runtime, round int) bool {
	if round == 0 {
		m.flood(rt, m.p.Source) // phase 1 is event-driven from here
		return m.p.RepairRounds > 0
	}
	if round > m.p.RepairRounds {
		return false
	}
	if round >= 2 && m.prevNacks == 0 && rt.inFlight() == 0 {
		return false // previous repair round found nothing to fix
	}
	rt.res.Rounds++
	for i := 0; i < m.p.N; i++ {
		m.snapshot[i] = rt.recv.Get(i)
	}
	nacks := 0
	for v := 0; v < m.p.N; v++ {
		if !rt.upAlive(v) || rt.recv.Get(v) {
			continue
		}
		for _, u := range m.out(v) {
			if m.snapshot[u] {
				rt.res.MessagesSent++ // the NACK
				rt.Net.SendTag(simnet.NodeID(v), simnet.NodeID(u), tagNack)
				nacks++
				break
			}
		}
	}
	m.prevNacks = nacks
	return true
}

func (m *lrgMachine) deliver(rt *Runtime, now sim.Time, msg simnet.Message) {
	id := int(msg.To)
	switch msg.Tag {
	case tagGossip:
		if rt.markReceived(id, now) {
			m.flood(rt, id)
		} else {
			rt.res.Duplicates++
		}
	case tagNack:
		if rt.recv.Get(id) {
			rt.res.MessagesSent++ // the retransmission
			rt.Net.SendTag(msg.To, msg.From, tagRepair)
		}
	case tagRepair:
		if !rt.markReceived(id, now) {
			rt.res.Duplicates++
		}
		// Repaired members do not re-flood (legacy repair semantics).
	}
}

func (m *lrgMachine) publish(rt *Runtime, id int) {
	rt.markReceived(id, rt.Kernel.Now())
	m.flood(rt, id)
}

func (m *lrgMachine) detail(rt *Runtime) any { return rt.baseResult() }
