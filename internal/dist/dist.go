// Package dist provides the discrete fanout distributions P of the gossip
// model Gossip(n, P, q) — the paper's Poisson case study plus the
// traditional fixed fanout and several heavier-tailed families used by the
// ablation studies — together with the probability-generating-function
// machinery (PGF, PGF', PGF”) the analytic model in internal/genfunc is
// built on.
//
// Every Distribution is immutable and safe for concurrent use; sampling
// consumes randomness only from the caller's RNG, so Monte-Carlo runs stay
// deterministic under parallelism.
package dist

import (
	"fmt"
	"math"

	"gossipkit/internal/xrand"
)

// Distribution is a probability distribution over the nonnegative integers,
// used as the gossip fanout distribution P.
type Distribution interface {
	// Name identifies the distribution for reports ("Poisson(4)").
	Name() string
	// Mean returns E[P].
	Mean() float64
	// PMF returns Pr[P = k] (0 for k < 0).
	PMF(k int) float64
	// Sample draws one value, consuming randomness from r.
	Sample(r *xrand.RNG) int
}

// pgfer is an optional closed-form PGF; distributions that implement it
// skip the generic series summation.
type pgfer interface{ PGFAt(x float64) float64 }

// pgfPrimer is an optional closed-form first PGF derivative.
type pgfPrimer interface{ PGFPrimeAt(x float64) float64 }

// pgfPrime2er is an optional closed-form second PGF derivative.
type pgfPrime2er interface{ PGFPrime2At(x float64) float64 }

// maxPGFTerms caps the generic series summation; the tail test inside the
// loop terminates far earlier for every light-tailed distribution.
const maxPGFTerms = 1 << 20

// PGF evaluates the probability generating function G(x) = Σ p_k x^k for
// |x| <= 1. It uses a closed form when the distribution provides one and
// otherwise sums the series until the remaining probability mass is
// negligible.
func PGF(d Distribution, x float64) float64 {
	if c, ok := d.(pgfer); ok {
		return c.PGFAt(x)
	}
	sum, mass := 0.0, 0.0
	xe := 1.0
	for k := 0; k < maxPGFTerms; k++ {
		p := d.PMF(k)
		sum += p * xe
		mass += p
		if mass > 1-1e-14 {
			break
		}
		xe *= x
	}
	return sum
}

// PGFPrime evaluates G'(x) = Σ k p_k x^(k-1).
func PGFPrime(d Distribution, x float64) float64 {
	if c, ok := d.(pgfPrimer); ok {
		return c.PGFPrimeAt(x)
	}
	sum, mass := 0.0, 0.0
	xe := 1.0 // x^(k-1) for k = 1
	for k := 0; k < maxPGFTerms; k++ {
		p := d.PMF(k)
		if k >= 1 {
			sum += float64(k) * p * xe
			xe *= x
		}
		mass += p
		if mass > 1-1e-14 {
			break
		}
	}
	return sum
}

// PGFPrime2 evaluates G”(x) = Σ k(k-1) p_k x^(k-2).
func PGFPrime2(d Distribution, x float64) float64 {
	if c, ok := d.(pgfPrime2er); ok {
		return c.PGFPrime2At(x)
	}
	sum, mass := 0.0, 0.0
	xe := 1.0 // x^(k-2) for k = 2
	for k := 0; k < maxPGFTerms; k++ {
		p := d.PMF(k)
		if k >= 2 {
			sum += float64(k) * float64(k-1) * p * xe
			xe *= x
		}
		mass += p
		if mass > 1-1e-14 {
			break
		}
	}
	return sum
}

// ---------------------------------------------------------------------------
// Poisson

// Poisson is the Po(z) fanout of the paper's case study.
type Poisson struct{ z float64 }

// NewPoisson returns the Poisson distribution with mean z >= 0.
func NewPoisson(z float64) Poisson {
	if z < 0 || math.IsNaN(z) || math.IsInf(z, 0) {
		panic(fmt.Sprintf("dist: invalid Poisson mean %g", z))
	}
	return Poisson{z: z}
}

// Name implements Distribution.
func (p Poisson) Name() string { return fmt.Sprintf("Poisson(%g)", p.z) }

// Mean implements Distribution.
func (p Poisson) Mean() float64 { return p.z }

// PMF implements Distribution.
func (p Poisson) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	if p.z == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lk, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(p.z) - p.z - lk)
}

// Sample implements Distribution.
func (p Poisson) Sample(r *xrand.RNG) int { return samplePoisson(r, p.z) }

// PGFAt returns the closed form e^{z(x-1)}.
func (p Poisson) PGFAt(x float64) float64 { return math.Exp(p.z * (x - 1)) }

// PGFPrimeAt returns z·e^{z(x-1)}.
func (p Poisson) PGFPrimeAt(x float64) float64 { return p.z * math.Exp(p.z*(x-1)) }

// PGFPrime2At returns z²·e^{z(x-1)}.
func (p Poisson) PGFPrime2At(x float64) float64 { return p.z * p.z * math.Exp(p.z*(x-1)) }

// samplePoisson draws from Po(z). Knuth's product method is exact but costs
// O(z) uniforms; for large z the draw is split as Po(z) = Po(z/2) + Po(z/2),
// which stays exact (sum of independent Poissons) with logarithmic extra
// depth and no normal approximation.
func samplePoisson(r *xrand.RNG, z float64) int {
	if z <= 0 {
		return 0
	}
	if z < 30 {
		l := math.Exp(-z)
		k := 0
		prod := r.Float64()
		for prod > l {
			k++
			prod *= r.Float64()
		}
		return k
	}
	half := z / 2
	return samplePoisson(r, half) + samplePoisson(r, z-half)
}

// ---------------------------------------------------------------------------
// Fixed

// Fixed is the traditional deterministic fanout: every member forwards to
// exactly k targets.
type Fixed struct{ k int }

// NewFixed returns the point mass at k >= 0.
func NewFixed(k int) Fixed {
	if k < 0 {
		panic(fmt.Sprintf("dist: negative fixed fanout %d", k))
	}
	return Fixed{k: k}
}

// Name implements Distribution.
func (f Fixed) Name() string { return fmt.Sprintf("Fixed(%d)", f.k) }

// Mean implements Distribution.
func (f Fixed) Mean() float64 { return float64(f.k) }

// PMF implements Distribution.
func (f Fixed) PMF(k int) float64 {
	if k == f.k {
		return 1
	}
	return 0
}

// Sample implements Distribution.
func (f Fixed) Sample(*xrand.RNG) int { return f.k }

// PGFAt returns x^k.
func (f Fixed) PGFAt(x float64) float64 { return math.Pow(x, float64(f.k)) }

// PGFPrimeAt returns k·x^(k-1).
func (f Fixed) PGFPrimeAt(x float64) float64 {
	if f.k == 0 {
		return 0
	}
	return float64(f.k) * math.Pow(x, float64(f.k-1))
}

// PGFPrime2At returns k(k-1)·x^(k-2).
func (f Fixed) PGFPrime2At(x float64) float64 {
	if f.k < 2 {
		return 0
	}
	return float64(f.k) * float64(f.k-1) * math.Pow(x, float64(f.k-2))
}

// ---------------------------------------------------------------------------
// Geometric

// Geometric is the geometric distribution on {0, 1, ...} with success
// probability p: Pr[k] = p(1−p)^k, mean (1−p)/p.
type Geometric struct{ p float64 }

// NewGeometric returns the geometric distribution with parameter p in (0, 1].
func NewGeometric(p float64) Geometric {
	if !(p > 0 && p <= 1) {
		panic(fmt.Sprintf("dist: geometric parameter %g outside (0,1]", p))
	}
	return Geometric{p: p}
}

// Name implements Distribution.
func (g Geometric) Name() string { return fmt.Sprintf("Geometric(%g)", g.p) }

// Mean implements Distribution.
func (g Geometric) Mean() float64 { return (1 - g.p) / g.p }

// PMF implements Distribution.
func (g Geometric) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	return g.p * math.Pow(1-g.p, float64(k))
}

// Sample implements Distribution (inversion).
func (g Geometric) Sample(r *xrand.RNG) int {
	if g.p == 1 {
		return 0
	}
	u := 1 - r.Float64() // in (0, 1]
	return int(math.Log(u) / math.Log(1-g.p))
}

// PGFAt returns p / (1 − (1−p)x).
func (g Geometric) PGFAt(x float64) float64 { return g.p / (1 - (1-g.p)*x) }

// PGFPrimeAt returns p(1−p) / (1 − (1−p)x)².
func (g Geometric) PGFPrimeAt(x float64) float64 {
	d := 1 - (1-g.p)*x
	return g.p * (1 - g.p) / (d * d)
}

// PGFPrime2At returns 2p(1−p)² / (1 − (1−p)x)³.
func (g Geometric) PGFPrime2At(x float64) float64 {
	d := 1 - (1-g.p)*x
	return 2 * g.p * (1 - g.p) * (1 - g.p) / (d * d * d)
}

// ---------------------------------------------------------------------------
// Uniform range

// UniformRange is the uniform distribution on the integers {lo..hi}.
type UniformRange struct{ lo, hi int }

// NewUniformRange returns the uniform distribution on {lo..hi}.
func NewUniformRange(lo, hi int) UniformRange {
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("dist: invalid uniform range [%d,%d]", lo, hi))
	}
	return UniformRange{lo: lo, hi: hi}
}

// Name implements Distribution.
func (u UniformRange) Name() string { return fmt.Sprintf("Uniform(%d..%d)", u.lo, u.hi) }

// Mean implements Distribution.
func (u UniformRange) Mean() float64 { return float64(u.lo+u.hi) / 2 }

// PMF implements Distribution.
func (u UniformRange) PMF(k int) float64 {
	if k < u.lo || k > u.hi {
		return 0
	}
	return 1 / float64(u.hi-u.lo+1)
}

// Sample implements Distribution.
func (u UniformRange) Sample(r *xrand.RNG) int { return u.lo + r.Intn(u.hi-u.lo+1) }

// ---------------------------------------------------------------------------
// Binomial

// Binomial is B(n, p).
type Binomial struct {
	n int
	p float64
}

// NewBinomial returns the binomial distribution with n trials and success
// probability p.
func NewBinomial(n int, p float64) Binomial {
	if n < 0 || p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("dist: invalid binomial B(%d, %g)", n, p))
	}
	return Binomial{n: n, p: p}
}

// Name implements Distribution.
func (b Binomial) Name() string { return fmt.Sprintf("Binomial(%d,%g)", b.n, b.p) }

// Mean implements Distribution.
func (b Binomial) Mean() float64 { return float64(b.n) * b.p }

// PMF implements Distribution.
func (b Binomial) PMF(k int) float64 {
	if k < 0 || k > b.n {
		return 0
	}
	if b.p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if b.p == 1 {
		if k == b.n {
			return 1
		}
		return 0
	}
	ln, _ := math.Lgamma(float64(b.n) + 1)
	lk, _ := math.Lgamma(float64(k) + 1)
	lnk, _ := math.Lgamma(float64(b.n-k) + 1)
	return math.Exp(ln - lk - lnk + float64(k)*math.Log(b.p) + float64(b.n-k)*math.Log1p(-b.p))
}

// Sample implements Distribution.
func (b Binomial) Sample(r *xrand.RNG) int {
	k := 0
	for i := 0; i < b.n; i++ {
		if r.Bool(b.p) {
			k++
		}
	}
	return k
}

// PGFAt returns (1 − p + px)^n.
func (b Binomial) PGFAt(x float64) float64 { return math.Pow(1-b.p+b.p*x, float64(b.n)) }

// PGFPrimeAt returns np(1 − p + px)^(n-1).
func (b Binomial) PGFPrimeAt(x float64) float64 {
	if b.n == 0 {
		return 0
	}
	return float64(b.n) * b.p * math.Pow(1-b.p+b.p*x, float64(b.n-1))
}

// PGFPrime2At returns n(n-1)p²(1 − p + px)^(n-2).
func (b Binomial) PGFPrime2At(x float64) float64 {
	if b.n < 2 {
		return 0
	}
	return float64(b.n) * float64(b.n-1) * b.p * b.p * math.Pow(1-b.p+b.p*x, float64(b.n-2))
}

// ---------------------------------------------------------------------------
// Negative binomial

// NegBinomial is the overdispersed NB(r, p) on {0, 1, ...}: the number of
// failures before the r-th success, mean r(1−p)/p.
type NegBinomial struct {
	r int
	p float64
}

// NewNegBinomial returns NB(r, p) with r >= 1 successes and success
// probability p in (0, 1].
func NewNegBinomial(r int, p float64) NegBinomial {
	if r < 1 || !(p > 0 && p <= 1) {
		panic(fmt.Sprintf("dist: invalid negative binomial NB(%d, %g)", r, p))
	}
	return NegBinomial{r: r, p: p}
}

// Name implements Distribution.
func (nb NegBinomial) Name() string { return fmt.Sprintf("NegBinomial(%d,%g)", nb.r, nb.p) }

// Mean implements Distribution.
func (nb NegBinomial) Mean() float64 { return float64(nb.r) * (1 - nb.p) / nb.p }

// PMF implements Distribution.
func (nb NegBinomial) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	if nb.p == 1 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lkr, _ := math.Lgamma(float64(k + nb.r))
	lk, _ := math.Lgamma(float64(k) + 1)
	lr, _ := math.Lgamma(float64(nb.r))
	return math.Exp(lkr - lk - lr + float64(nb.r)*math.Log(nb.p) + float64(k)*math.Log1p(-nb.p))
}

// Sample implements Distribution: the sum of r independent geometrics.
func (nb NegBinomial) Sample(r *xrand.RNG) int {
	g := Geometric{p: nb.p}
	k := 0
	for i := 0; i < nb.r; i++ {
		k += g.Sample(r)
	}
	return k
}

// PGFAt returns (p / (1 − (1−p)x))^r.
func (nb NegBinomial) PGFAt(x float64) float64 {
	return math.Pow(nb.p/(1-(1-nb.p)*x), float64(nb.r))
}

// ---------------------------------------------------------------------------
// Power law

// PowerLaw is the truncated power law Pr[k] ∝ k^(−alpha) on {1..cutoff},
// a heavy-tailed fanout used to probe the model outside the paper's
// Poisson setting.
type PowerLaw struct {
	alpha  float64
	cutoff int
	pmf    []float64
	cdf    []float64
	mean   float64
}

// NewPowerLaw returns the power law with exponent alpha > 1 truncated at
// cutoff >= 1.
func NewPowerLaw(alpha float64, cutoff int) *PowerLaw {
	if alpha <= 1 || cutoff < 1 {
		panic(fmt.Sprintf("dist: invalid power law (alpha=%g, cutoff=%d)", alpha, cutoff))
	}
	pl := &PowerLaw{alpha: alpha, cutoff: cutoff}
	pl.pmf = make([]float64, cutoff+1)
	pl.cdf = make([]float64, cutoff+1)
	var z float64
	for k := 1; k <= cutoff; k++ {
		pl.pmf[k] = math.Pow(float64(k), -alpha)
		z += pl.pmf[k]
	}
	var c float64
	for k := 1; k <= cutoff; k++ {
		pl.pmf[k] /= z
		c += pl.pmf[k]
		pl.cdf[k] = c
		pl.mean += float64(k) * pl.pmf[k]
	}
	return pl
}

// Name implements Distribution.
func (pl *PowerLaw) Name() string { return fmt.Sprintf("PowerLaw(%g,%d)", pl.alpha, pl.cutoff) }

// Mean implements Distribution.
func (pl *PowerLaw) Mean() float64 { return pl.mean }

// PMF implements Distribution.
func (pl *PowerLaw) PMF(k int) float64 {
	if k < 1 || k > pl.cutoff {
		return 0
	}
	return pl.pmf[k]
}

// Sample implements Distribution (CDF inversion by binary search).
func (pl *PowerLaw) Sample(r *xrand.RNG) int {
	u := r.Float64()
	lo, hi := 1, pl.cutoff
	for lo < hi {
		mid := (lo + hi) / 2
		if pl.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ---------------------------------------------------------------------------
// Mixture

// Mixture is a finite mixture of component distributions.
type Mixture struct {
	comps   []Distribution
	weights []float64
	cum     []float64
	mean    float64
}

// NewMixture returns the mixture of comps with the given weights (which are
// normalized to sum to 1).
func NewMixture(comps []Distribution, weights []float64) *Mixture {
	if len(comps) == 0 || len(comps) != len(weights) {
		panic(fmt.Sprintf("dist: mixture of %d components with %d weights", len(comps), len(weights)))
	}
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("dist: negative mixture weight %g", w))
		}
		total += w
	}
	if total <= 0 {
		panic("dist: mixture weights sum to zero")
	}
	m := &Mixture{
		comps:   append([]Distribution(nil), comps...),
		weights: make([]float64, len(weights)),
		cum:     make([]float64, len(weights)),
	}
	var c float64
	for i, w := range weights {
		m.weights[i] = w / total
		c += m.weights[i]
		m.cum[i] = c
		m.mean += m.weights[i] * comps[i].Mean()
	}
	return m
}

// Name implements Distribution.
func (m *Mixture) Name() string { return fmt.Sprintf("Mixture(%d)", len(m.comps)) }

// Mean implements Distribution.
func (m *Mixture) Mean() float64 { return m.mean }

// PMF implements Distribution.
func (m *Mixture) PMF(k int) float64 {
	var p float64
	for i, c := range m.comps {
		p += m.weights[i] * c.PMF(k)
	}
	return p
}

// Sample implements Distribution.
func (m *Mixture) Sample(r *xrand.RNG) int {
	u := r.Float64()
	for i, c := range m.cum {
		if u <= c {
			return m.comps[i].Sample(r)
		}
	}
	return m.comps[len(m.comps)-1].Sample(r)
}

// PGFAt returns the weighted sum of component PGFs.
func (m *Mixture) PGFAt(x float64) float64 {
	var s float64
	for i, c := range m.comps {
		s += m.weights[i] * PGF(c, x)
	}
	return s
}

// PGFPrimeAt returns the weighted sum of component PGF derivatives.
func (m *Mixture) PGFPrimeAt(x float64) float64 {
	var s float64
	for i, c := range m.comps {
		s += m.weights[i] * PGFPrime(c, x)
	}
	return s
}

// PGFPrime2At returns the weighted sum of component second derivatives.
func (m *Mixture) PGFPrime2At(x float64) float64 {
	var s float64
	for i, c := range m.comps {
		s += m.weights[i] * PGFPrime2(c, x)
	}
	return s
}

// ---------------------------------------------------------------------------
// Zero truncation

// ZeroTruncated conditions a base distribution on being at least 1, so no
// member ever stays silent.
type ZeroTruncated struct {
	base Distribution
	p0   float64
}

// NewZeroTruncated returns base conditioned on {P >= 1}. The base must have
// Pr[P = 0] < 1.
func NewZeroTruncated(base Distribution) ZeroTruncated {
	p0 := base.PMF(0)
	if p0 >= 1 {
		panic("dist: cannot zero-truncate a point mass at zero")
	}
	return ZeroTruncated{base: base, p0: p0}
}

// Name implements Distribution.
func (z ZeroTruncated) Name() string { return "AtLeastOnce(" + z.base.Name() + ")" }

// Mean implements Distribution: E[P | P >= 1] = E[P] / (1 − p0).
func (z ZeroTruncated) Mean() float64 { return z.base.Mean() / (1 - z.p0) }

// PMF implements Distribution.
func (z ZeroTruncated) PMF(k int) float64 {
	if k < 1 {
		return 0
	}
	return z.base.PMF(k) / (1 - z.p0)
}

// Sample implements Distribution (rejection).
func (z ZeroTruncated) Sample(r *xrand.RNG) int {
	for {
		if k := z.base.Sample(r); k >= 1 {
			return k
		}
	}
}

// PGFAt returns (G(x) − p0) / (1 − p0).
func (z ZeroTruncated) PGFAt(x float64) float64 { return (PGF(z.base, x) - z.p0) / (1 - z.p0) }

// PGFPrimeAt returns G'(x) / (1 − p0).
func (z ZeroTruncated) PGFPrimeAt(x float64) float64 { return PGFPrime(z.base, x) / (1 - z.p0) }

// PGFPrime2At returns G”(x) / (1 − p0).
func (z ZeroTruncated) PGFPrime2At(x float64) float64 { return PGFPrime2(z.base, x) / (1 - z.p0) }
