package runpool

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// EventUpdate is one progress snapshot of a single long execution,
// denominated in kernel events fired rather than completed runs — the
// sweep Progress tracker is useless for one n=10⁷ run that IS the whole
// workload.
type EventUpdate struct {
	// Events is the total kernel events fired so far; EstTotal the
	// caller's estimate of the final count (0 when unknown).
	Events, EstTotal int64
	// VirtualMs is the execution's current virtual time in milliseconds.
	VirtualMs float64
	// Elapsed is wall-clock time since the tracker was built.
	Elapsed time.Duration
	// RatePerSec is the mean events/second so far.
	RatePerSec float64
}

// String renders the snapshot as a single status line.
func (u EventUpdate) String() string {
	s := fmt.Sprintf("%d events", u.Events)
	if u.EstTotal > 0 {
		s = fmt.Sprintf("%d/~%d events (%.1f%%)", u.Events, u.EstTotal,
			100*float64(u.Events)/float64(u.EstTotal))
	}
	return fmt.Sprintf("%s %.2gM ev/s t=%.0fms elapsed %s",
		s, u.RatePerSec/1e6, u.VirtualMs, u.Elapsed.Round(time.Millisecond))
}

// EventProgress adapts the sharded runtime's barrier callback
// (core.ShardOptions.Progress) into throttled EventUpdates: the runtime
// reports (events fired, virtual now) at every window barrier, and the
// tracker emits at most one update per `every` interval. Barriers arrive
// from the coordinator goroutine only, but Snapshot may poll from any
// goroutine.
type EventProgress struct {
	mu       sync.Mutex
	estTotal int64
	every    time.Duration
	emit     func(EventUpdate)
	now      func() time.Time
	start    time.Time
	last     time.Time
	events   int64
	virtual  time.Duration
}

// NewEventProgress builds a tracker emitting through emit (nil emit just
// tracks for Snapshot); estTotal is the estimated final event count (0
// for unknown — updates then omit the percentage); every <= 0 defaults to
// one second.
func NewEventProgress(estTotal int64, every time.Duration, emit func(EventUpdate)) *EventProgress {
	if every <= 0 {
		every = time.Second
	}
	p := &EventProgress{estTotal: estTotal, every: every, emit: emit, now: time.Now}
	p.start = p.now()
	p.last = p.start
	return p
}

// ObserveEvents records one barrier observation: the cumulative events
// fired and the barrier's virtual time. Pass it (or call it from) a
// ShardOptions.Progress hook.
func (p *EventProgress) ObserveEvents(events uint64, virtual time.Duration) {
	p.mu.Lock()
	p.events = int64(events)
	p.virtual = virtual
	u, fire := p.snapshotLocked(), false
	if p.emit != nil && p.now().Sub(p.last) >= p.every {
		p.last = p.now()
		fire = true
	}
	p.mu.Unlock()
	if fire {
		p.emit(u)
	}
}

// Snapshot returns the current progress without emitting.
func (p *EventProgress) Snapshot() EventUpdate {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotLocked()
}

func (p *EventProgress) snapshotLocked() EventUpdate {
	u := EventUpdate{
		Events:    p.events,
		EstTotal:  p.estTotal,
		VirtualMs: float64(p.virtual) / float64(time.Millisecond),
		Elapsed:   p.now().Sub(p.start),
	}
	if secs := u.Elapsed.Seconds(); secs > 0 && p.events > 0 {
		u.RatePerSec = float64(p.events) / secs
	}
	return u
}

// EventWriter returns an emit function printing one status line per
// EventUpdate to w — the CLI glue for live progress on single long
// sharded runs.
func EventWriter(w io.Writer) func(EventUpdate) {
	return func(u EventUpdate) { fmt.Fprintf(w, "progress: %s\n", u) }
}
