// Package runpool is the one worker pool every replication sweep in the
// repository runs on: a bounded pool executing n independent,
// index-identified work items with three guarantees the engines above it
// rely on.
//
// Determinism: item i always runs on worker i mod workers, so per-worker
// scratch state (executors, run-state arenas) is recycled along the same
// stride for a given worker count, and — because items are data-independent
// and callers reduce results in item order (streaming via RunOrdered, or
// after Run returns) — the reduced result is identical for ANY worker
// count.
//
// Ordered observation: the observe callback fires exactly once per
// completed item in strictly increasing item order, regardless of the
// completion order across workers (a small reorder cursor tracks the
// contiguous completed prefix; one worker at a time delivers it outside
// the pool's lock, so a slow consumer never serializes the pool).
// Streaming consumers therefore see run 0, 1, 2, ... on every execution,
// and RunOrdered builds on this to reduce per-item results in item order
// while holding only out-of-order completions live.
//
// Cancellation: workers check the context between items; cancellation (or
// the first item error, by item index) stops the pool promptly without
// waiting for unstarted items, and Run returns ctx.Err() so callers can
// translate it into their own sentinel.
package runpool

import (
	"context"
	"runtime"
	"sync"
)

// Count normalizes a requested worker count for n work items: non-positive
// means GOMAXPROCS, and the count never exceeds n.
func Count(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes body(w, i) for every item i in [0, n) on `workers`
// goroutines (normalize with Count first; Run clamps again defensively).
// Worker w runs items w, w+workers, w+2·workers, ...
//
// observe, when non-nil, is invoked exactly once per successfully completed
// item, in strictly increasing item order and never concurrently with
// itself; an item is only observed once every earlier item has been
// observed, so an error or cancellation leaves a clean observed prefix
// [0, k). Callbacks run outside the pool's lock, so a slow observer delays
// at most the one worker delivering the current prefix, not the pool.
//
// On context cancellation Run returns ctx.Err(); otherwise it returns the
// error of the lowest-indexed failing item, or nil. In both failure modes
// remaining items are skipped promptly.
func Run(ctx context.Context, n, workers int, body func(w, i int) error, observe func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Count(workers, n)

	var (
		stop       = make(chan struct{})
		stopOnce   sync.Once
		mu         sync.Mutex
		done       []bool
		next       int
		delivering bool
		errIdx     = n
		firstErr   error
	)
	if observe != nil {
		done = make([]bool, n)
	}
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				select {
				case <-ctx.Done():
					halt()
					return
				case <-stop:
					return
				default:
				}
				if err := body(w, i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					halt()
					return
				}
				if observe != nil {
					mu.Lock()
					done[i] = true
					// Deliver the contiguous completed prefix (never past
					// the lowest failed item) OUTSIDE the lock: one
					// deliverer at a time keeps observations ordered and
					// non-concurrent, and it re-scans after each batch so
					// items completed meanwhile are never stranded. A
					// delivered item always stays below any later-recorded
					// errIdx: a failing item never sets done, so the prefix
					// scan cannot pass it.
					for !delivering {
						start := next
						end := start
						for end < n && end < errIdx && done[end] {
							end++
						}
						if end == start {
							break
						}
						delivering, next = true, end
						mu.Unlock()
						for j := start; j < end; j++ {
							observe(j)
						}
						mu.Lock()
						delivering = false
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// RunOrdered is Run for bodies that produce a result per item: each result
// is handed to reduce in strictly increasing item order (never
// concurrently), buffering only out-of-order completions — O(worker skew)
// live results instead of the O(n) slice a caller-side buffer needs, which
// is what makes million-run sweeps consumable through streaming reduction.
// Like Run's observe, an error or cancellation leaves reduce with a clean
// prefix [0, k); the error contract is Run's.
func RunOrdered[T any](ctx context.Context, n, workers int, body func(w, i int) (T, error), reduce func(i int, v T)) error {
	var (
		mu      sync.Mutex
		pending = make(map[int]T)
	)
	return Run(ctx, n, workers, func(w, i int) error {
		v, err := body(w, i)
		if err != nil {
			return err
		}
		mu.Lock()
		pending[i] = v
		mu.Unlock()
		return nil
	}, func(i int) {
		mu.Lock()
		v := pending[i]
		delete(pending, i)
		mu.Unlock()
		reduce(i, v)
	})
}
