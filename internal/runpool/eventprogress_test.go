package runpool

import (
	"strings"
	"testing"
	"time"
)

func TestEventProgressThrottlesAndSnapshots(t *testing.T) {
	clock := time.Unix(0, 0)
	var got []EventUpdate
	p := NewEventProgress(1000, time.Second, func(u EventUpdate) { got = append(got, u) })
	p.now = func() time.Time { return clock }
	p.start, p.last = clock, clock

	p.ObserveEvents(10, 5*time.Millisecond) // same instant: throttled
	if len(got) != 0 {
		t.Fatalf("emitted %d updates inside the throttle window", len(got))
	}
	clock = clock.Add(2 * time.Second)
	p.ObserveEvents(500, 80*time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("emitted %d updates, want 1", len(got))
	}
	u := got[0]
	if u.Events != 500 || u.EstTotal != 1000 || u.VirtualMs != 80 {
		t.Fatalf("update %+v", u)
	}
	if u.RatePerSec != 250 {
		t.Fatalf("rate %g, want 250 ev/s", u.RatePerSec)
	}
	s := p.Snapshot()
	if s.Events != 500 || s.Elapsed != 2*time.Second {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestEventUpdateString(t *testing.T) {
	u := EventUpdate{Events: 500, EstTotal: 1000, VirtualMs: 80, Elapsed: 2 * time.Second, RatePerSec: 250}
	s := u.String()
	for _, want := range []string{"500/~1000", "50.0%", "t=80ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("%q missing %q", s, want)
		}
	}
	if s := (EventUpdate{Events: 7}).String(); !strings.Contains(s, "7 events") || strings.Contains(s, "%") {
		t.Errorf("unknown-total rendering %q", s)
	}
}
