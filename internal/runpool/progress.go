package runpool

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Update is one sweep-progress snapshot.
type Update struct {
	// Done and Total count completed vs scheduled work items.
	Done, Total int
	// Elapsed is wall-clock time since the progress tracker was built.
	Elapsed time.Duration
	// RatePerSec is the mean completion rate so far.
	RatePerSec float64
	// ETA estimates the remaining wall-clock time at the mean rate; zero
	// until at least one item has completed.
	ETA time.Duration
}

// String renders the snapshot as a single status line.
func (u Update) String() string {
	pct := 0.0
	if u.Total > 0 {
		pct = 100 * float64(u.Done) / float64(u.Total)
	}
	return fmt.Sprintf("%d/%d (%.1f%%) %.1f runs/s elapsed %s eta %s",
		u.Done, u.Total, pct, u.RatePerSec,
		u.Elapsed.Round(time.Millisecond), u.ETA.Round(time.Millisecond))
}

// Progress tracks completion of a sweep through Run/RunOrdered's observe
// seam: pass Observe as (or call it from) the observe callback, and the
// tracker emits throttled Updates — at most one per `every` interval, plus
// always one for the final item. It observes only; it never perturbs the
// pool's ordering or the sweep's results.
//
// Observe inherits the observe callback's delivery guarantees (in-order,
// never concurrent with itself); Snapshot may be polled from any
// goroutine.
type Progress struct {
	mu    sync.Mutex
	total int
	every time.Duration
	emit  func(Update)
	now   func() time.Time
	start time.Time
	last  time.Time
	done  int
}

// NewProgress builds a tracker for total items emitting through emit
// (nil emit just tracks for Snapshot polling); every <= 0 defaults to one
// second between emissions.
func NewProgress(total int, every time.Duration, emit func(Update)) *Progress {
	if every <= 0 {
		every = time.Second
	}
	p := &Progress{total: total, every: every, emit: emit, now: time.Now}
	p.start = p.now()
	p.last = p.start
	return p
}

// Observe records one completed item and emits a throttled Update.
func (p *Progress) Observe(int) {
	p.mu.Lock()
	p.done++
	u, fire := p.snapshotLocked(), false
	if p.emit != nil && (p.done == p.total || p.now().Sub(p.last) >= p.every) {
		p.last = p.now()
		fire = true
	}
	p.mu.Unlock()
	if fire {
		p.emit(u)
	}
}

// Snapshot returns the current progress without emitting.
func (p *Progress) Snapshot() Update {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotLocked()
}

func (p *Progress) snapshotLocked() Update {
	u := Update{Done: p.done, Total: p.total, Elapsed: p.now().Sub(p.start)}
	if secs := u.Elapsed.Seconds(); secs > 0 && p.done > 0 {
		u.RatePerSec = float64(p.done) / secs
		u.ETA = time.Duration(float64(p.total-p.done) / u.RatePerSec * float64(time.Second))
	}
	return u
}

// Writer returns an emit function printing one status line per Update to
// w — the glue the CLI sweeps use for stderr progress.
func Writer(w io.Writer) func(Update) {
	return func(u Update) { fmt.Fprintf(w, "progress: %s\n", u) }
}
