package runpool

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCount(t *testing.T) {
	if got := Count(0, 10); got < 1 {
		t.Errorf("Count(0,10)=%d", got)
	}
	if got := Count(8, 3); got != 3 {
		t.Errorf("Count(8,3)=%d, want 3", got)
	}
	if got := Count(2, 100); got != 2 {
		t.Errorf("Count(2,100)=%d, want 2", got)
	}
	if got := Count(-5, 0); got != 1 {
		t.Errorf("Count(-5,0)=%d, want 1", got)
	}
}

// TestOrderedObservation: for any worker count, observers fire 0,1,2,...,n-1.
func TestOrderedObservation(t *testing.T) {
	const n = 200
	for _, workers := range []int{1, 2, 7, 16} {
		var mu sync.Mutex
		var seen []int
		results := make([]int, n)
		err := Run(context.Background(), n, workers, func(w, i int) error {
			// Jitter completion order so the reorder cursor actually works.
			if i%13 == 0 {
				time.Sleep(time.Duration(i%5) * time.Microsecond)
			}
			results[i] = i * i
			return nil
		}, func(i int) {
			mu.Lock()
			seen = append(seen, i)
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(seen) != n {
			t.Fatalf("workers=%d: observed %d items", workers, len(seen))
		}
		for i, v := range seen {
			if v != i {
				t.Fatalf("workers=%d: observation %d was item %d, want strictly increasing order", workers, i, v)
			}
			if results[v] != v*v {
				t.Fatalf("workers=%d: item %d observed before its result landed", workers, v)
			}
		}
	}
}

// TestStridedAssignment pins the worker-stride contract per-worker scratch
// reuse depends on: item i runs on worker i mod workers.
func TestStridedAssignment(t *testing.T) {
	const n, workers = 50, 4
	owner := make([]int, n)
	err := Run(context.Background(), n, workers, func(w, i int) error {
		owner[i] = w
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range owner {
		if w != i%workers {
			t.Errorf("item %d ran on worker %d, want %d", i, w, i%workers)
		}
	}
}

func TestFirstErrorByIndexWins(t *testing.T) {
	const n = 100
	failing := []int{17, 41, 90}
	var ran [n]atomic.Bool
	err := Run(context.Background(), n, 8, func(w, i int) error {
		for _, f := range failing {
			if i == f {
				ran[i].Store(true)
				return fmt.Errorf("item %d failed", i)
			}
		}
		return nil
	}, nil)
	if err == nil {
		t.Fatal("no error returned")
	}
	// Early abort may skip later failing items: which of 17/41/90 run
	// depends on scheduling. The contract is that whichever failures DID
	// run, the reported error is the lowest-indexed of them — and Run only
	// returns after all workers exit, so ran[] is settled here.
	lowest := -1
	for _, f := range failing {
		if ran[f].Load() {
			lowest = f
			break
		}
	}
	if lowest == -1 {
		t.Fatal("Run returned an error but no failing item ran")
	}
	if want := fmt.Sprintf("item %d failed", lowest); err.Error() != want {
		t.Fatalf("err = %v, want %q (failures that ran: 17=%v 41=%v 90=%v)",
			err, want, ran[17].Load(), ran[41].Load(), ran[90].Load())
	}
}

// TestErrorStopsObservationAtCleanPrefix: no item after the failing index
// is ever observed.
func TestErrorStopsObservationAtCleanPrefix(t *testing.T) {
	const n, bad = 60, 20
	var mu sync.Mutex
	var seen []int
	err := Run(context.Background(), n, 4, func(w, i int) error {
		if i == bad {
			return errors.New("bad item")
		}
		return nil
	}, func(i int) {
		mu.Lock()
		seen = append(seen, i)
		mu.Unlock()
	})
	if err == nil {
		t.Fatal("no error")
	}
	for idx, v := range seen {
		if v != idx {
			t.Fatalf("observation %d was item %d: not a clean prefix", idx, v)
		}
		if v >= bad {
			t.Fatalf("item %d observed despite item %d failing", v, bad)
		}
	}
}

// TestObserveNeverConcurrent: delivery happens outside the pool lock, but
// the observer must still never run concurrently with itself.
func TestObserveNeverConcurrent(t *testing.T) {
	const n = 500
	var inFlight, overlaps, calls atomic.Int32
	err := Run(context.Background(), n, 8, func(w, i int) error {
		if i%7 == 0 {
			time.Sleep(time.Duration(i%3) * time.Microsecond)
		}
		return nil
	}, func(i int) {
		if inFlight.Add(1) > 1 {
			overlaps.Add(1)
		}
		calls.Add(1)
		time.Sleep(time.Microsecond)
		inFlight.Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != n {
		t.Fatalf("observed %d items, want %d", calls.Load(), n)
	}
	if overlaps.Load() != 0 {
		t.Fatalf("%d concurrent observer invocations", overlaps.Load())
	}
}

// TestRunOrdered: reduce receives every item's value in strictly
// increasing item order, for any worker count.
func TestRunOrdered(t *testing.T) {
	const n = 300
	for _, workers := range []int{1, 3, 8} {
		var got []int
		sum := 0
		err := RunOrdered(context.Background(), n, workers, func(w, i int) (int, error) {
			if i%11 == 0 {
				time.Sleep(time.Duration(i%4) * time.Microsecond)
			}
			return i * 2, nil
		}, func(i, v int) {
			if v != i*2 {
				t.Errorf("workers=%d: reduce(%d, %d), want value %d", workers, i, v, i*2)
			}
			got = append(got, i)
			sum += v
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: reduced %d items", workers, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: reduction %d was item %d, want strictly increasing order", workers, i, v)
			}
		}
		if want := n * (n - 1); sum != want {
			t.Fatalf("workers=%d: sum %d, want %d", workers, sum, want)
		}
	}
}

// TestRunOrderedErrorCleanPrefix: on failure, reduce has received exactly
// a clean prefix [0, k) with k at most the failing index.
func TestRunOrderedErrorCleanPrefix(t *testing.T) {
	const n, bad = 80, 23
	var got []int
	err := RunOrdered(context.Background(), n, 4, func(w, i int) (int, error) {
		if i == bad {
			return 0, errors.New("bad item")
		}
		return i, nil
	}, func(i, v int) {
		got = append(got, i)
	})
	if err == nil {
		t.Fatal("no error")
	}
	for idx, v := range got {
		if v != idx {
			t.Fatalf("reduction %d was item %d: not a clean prefix", idx, v)
		}
		if v >= bad {
			t.Fatalf("item %d reduced despite item %d failing", v, bad)
		}
	}
}

func TestCancellationStopsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	const n = 10_000
	err := Run(ctx, n, 4, func(w, i int) error {
		if started.Add(1) == 8 {
			cancel()
		}
		time.Sleep(50 * time.Microsecond)
		return nil
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := started.Load(); got > 100 {
		t.Errorf("%d items started after cancellation, want a prompt stop", got)
	}
}

func TestPreCanceledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := Run(ctx, 50, 4, func(w, i int) error {
		ran.Add(1)
		return nil
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d items ran under a pre-canceled context", ran.Load())
	}
}

func TestZeroItems(t *testing.T) {
	if err := Run(context.Background(), 0, 4, func(w, i int) error { return errors.New("never") }, nil); err != nil {
		t.Fatal(err)
	}
}

// TestProgress: the tracker counts observations, throttles emissions to
// the interval, and always emits the final item with a complete snapshot.
func TestProgress(t *testing.T) {
	var got []Update
	p := NewProgress(4, time.Hour, func(u Update) { got = append(got, u) })
	base := time.Now()
	tick := 0
	p.now = func() time.Time { tick++; return base.Add(time.Duration(tick) * time.Second) }
	for i := 0; i < 4; i++ {
		p.Observe(i)
	}
	if len(got) != 1 {
		t.Fatalf("emitted %d updates, want only the final one under an hour-long throttle", len(got))
	}
	u := got[0]
	if u.Done != 4 || u.Total != 4 {
		t.Errorf("final update %+v", u)
	}
	if u.RatePerSec <= 0 || u.ETA != 0 {
		t.Errorf("final rate %.2f eta %s", u.RatePerSec, u.ETA)
	}
	if s := u.String(); !strings.Contains(s, "4/4 (100.0%)") {
		t.Errorf("status line %q", s)
	}
	if snap := p.Snapshot(); snap.Done != 4 {
		t.Errorf("snapshot %+v", snap)
	}
}

// TestProgressOnPool: wired through Run's observe seam, every item is
// counted exactly once.
func TestProgressOnPool(t *testing.T) {
	p := NewProgress(50, time.Hour, nil)
	err := Run(context.Background(), 50, 7, func(w, i int) error { return nil }, p.Observe)
	if err != nil {
		t.Fatal(err)
	}
	if snap := p.Snapshot(); snap.Done != 50 || snap.Total != 50 {
		t.Errorf("snapshot %+v", snap)
	}
}
