// Package core implements the paper's primary contribution: the general
// gossiping algorithm (paper Fig. 1) with arbitrary fanout distributions,
// its fault-tolerant execution semantics, Monte-Carlo estimators for the
// reliability of gossiping R(q, P), the repeated-execution success protocol
// S(q, P, t), and the analytic predictions (via internal/genfunc) the
// simulations are validated against.
//
// The algorithm, verbatim from the paper:
//
//	Upon member i receiving the message m for the first time:
//	  member i generates a random number f_i following distribution P
//	  member i selects f_i nodes uniformly at random from its membership view
//	  member i sends the message m to the selected f_i nodes
//
// Failed members follow the fail-stop model: they never forward, whether
// they crashed before receiving or after receiving but before forwarding
// (failure.Timing); the source never fails.
//
// Two executors are provided. ExecuteOnce runs the spread as an untimed BFS
// (the paper's own setting); ExecuteOnNetwork runs it as a discrete-event
// protocol over internal/simnet, where latency, loss, partitions, and
// mid-run fault injection apply. Every execution is a pure function of its
// Params, seed, and injection hook — results are byte-identical across
// machines, worker counts, and arena reuse.
//
// Allocation guarantee: with a recycled NetArena (one per sweep worker),
// a network execution performs zero O(n)-sized heap allocations — the
// receive bitset, failure mask, kernel queue, and network state are all
// redrawn in place — which is what makes n=10⁶..10⁷ runs routine
// (scale_test.go enforces this with allocation- and byte-count guards).
package core
