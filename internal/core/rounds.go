package core

import (
	"fmt"
	"math"

	"gossipkit/internal/xrand"
)

// EpidemicTrace reports the spread of one execution round by round:
// Infected[r] is the number of alive members whose first receipt happened
// at forwarding depth <= r (the source is depth 0). The trace ends at the
// round where the spread stopped growing.
type EpidemicTrace struct {
	// Infected is the cumulative infection count per round.
	Infected []int
	// Result is the execution's summary.
	Result Result
}

// TraceRounds runs one execution and records the per-round infection
// curve. The round structure is the BFS depth of the single-shot
// algorithm: members whose first receipt is at depth r forward during
// "round" r+1.
func TraceRounds(p Params, r *xrand.RNG) (EpidemicTrace, error) {
	if err := p.Validate(); err != nil {
		return EpidemicTrace{}, err
	}
	ex := newExecutor(p)
	res := ex.run(p.drawMask(r), r)
	counts := make([]int, res.Rounds+1)
	for _, v := range ex.delivered() {
		counts[ex.depth[v]]++
	}
	// Convert to cumulative.
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	return EpidemicTrace{Infected: counts, Result: res}, nil
}

// RecurrenceModel implements the round-recurrence analysis used by the
// pbcast line of work (the paper's related work §2, Birman et al. [5]):
// the expected infection curve of single-shot gossip where only members
// infected in round t forward during round t+1. With mean fanout z over a
// group of n members of which n·q are alive,
//
//	newlyInfected_{t+1} = susceptible_t · (1 − e^{−z·newlyInfected_t / n})
//
// It returns the expected cumulative alive infections per round, starting
// from the single source, for the given number of rounds (the curve
// flattens once new infections vanish).
//
// This mean-field recurrence reproduces the early exponential phase and
// the saturation plateau of the simulation's TraceRounds; the paper's
// critique — that the recurrence gives only bounds, not the closed-form
// reliability — is visible in that the plateau approaches n·q·S only
// asymptotically.
func RecurrenceModel(n int, z, q float64, rounds int) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: group size %d too small", n)
	}
	if z < 0 {
		return nil, fmt.Errorf("core: negative mean fanout %g", z)
	}
	if q < 0 || q > 1 || q != q {
		return nil, fmt.Errorf("core: alive ratio %g outside [0,1]", q)
	}
	if rounds < 0 {
		return nil, fmt.Errorf("core: negative round count %d", rounds)
	}
	alive := float64(n) * q
	if alive < 1 {
		alive = 1
	}
	cum := make([]float64, rounds+1)
	cum[0] = 1 // the source
	newly := 1.0
	for t := 1; t <= rounds; t++ {
		susceptible := alive - cum[t-1]
		if susceptible < 0 {
			susceptible = 0
		}
		// Each of the newly infected sends z messages to uniform
		// targets; a fixed susceptible member is missed by all of them
		// with probability e^{−z·newly/n}.
		hit := 1 - math.Exp(-z*newly/float64(n))
		newly = susceptible * hit
		cum[t] = cum[t-1] + newly
	}
	return cum, nil
}

// RoundsToCoverage returns the first round at which the recurrence model
// reaches the given fraction of its own plateau (e.g. 0.99), a convenient
// latency proxy. It returns the horizon if the target is never reached.
func RoundsToCoverage(n int, z, q, fraction float64, horizon int) (int, error) {
	if fraction <= 0 || fraction > 1 {
		return 0, fmt.Errorf("core: coverage fraction %g outside (0,1]", fraction)
	}
	cum, err := RecurrenceModel(n, z, q, horizon)
	if err != nil {
		return 0, err
	}
	plateau := cum[len(cum)-1]
	for r, c := range cum {
		if c >= fraction*plateau {
			return r, nil
		}
	}
	return horizon, nil
}

// MeanTraceRounds averages `runs` infection curves (aligned per round,
// ragged tails padded with each run's final value) — the simulation side
// of RecurrenceModel. Deterministic for a given seed.
func MeanTraceRounds(p Params, runs int, seed uint64) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if runs < 1 {
		return nil, fmt.Errorf("core: run count %d < 1", runs)
	}
	root := xrand.New(seed)
	var curves [][]int
	maxLen := 0
	for i := 0; i < runs; i++ {
		tr, err := TraceRounds(p, root.Split(uint64(i)))
		if err != nil {
			return nil, err
		}
		curves = append(curves, tr.Infected)
		if len(tr.Infected) > maxLen {
			maxLen = len(tr.Infected)
		}
	}
	mean := make([]float64, maxLen)
	for _, c := range curves {
		for r := 0; r < maxLen; r++ {
			v := c[len(c)-1]
			if r < len(c) {
				v = c[r]
			}
			mean[r] += float64(v)
		}
	}
	for r := range mean {
		mean[r] /= float64(runs)
	}
	return mean, nil
}
