package core

import (
	"fmt"
	"time"

	"gossipkit/internal/bitset"
	"gossipkit/internal/failure"
	"gossipkit/internal/membership"
	"gossipkit/internal/obs"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

// NetResult extends Result with timing information from a discrete-event
// execution over a simulated network.
type NetResult struct {
	Result
	// SpreadTime is the simulated time at which the last alive member
	// received m.
	SpreadTime time.Duration
	// DeliveryLatency summarizes per-member first-receipt latencies.
	DeliveryLatency stats.Running
	// Net is the network's final counters.
	Net simnet.Stats
	// UpAtEnd is the number of nodes still up when the execution drained
	// (differs from AliveCount when fault-injection hooks crash or
	// restart nodes mid-run).
	UpAtEnd int
	// DeliveredUp is the number of nodes that received m and were still
	// up at the end.
	DeliveredUp int
	// SurvivorReliability is DeliveredUp/UpAtEnd: delivery measured over
	// the members that survived the whole execution.
	SurvivorReliability float64
}

// NetRun exposes a running network execution to fault-injection hooks (the
// scenario engine in internal/scenario schedules its timed actions through
// it). All methods must be called from the kernel goroutine — i.e. from
// inside scheduled events or before the run starts.
type NetRun struct {
	// Kernel is the discrete-event driver; hooks schedule future actions
	// with Kernel.At / Kernel.After. On a sharded execution this is the
	// control kernel: its events fire at window barriers with every shard
	// worker parked, which is exactly when shard state is safely mutable.
	Kernel *sim.Kernel
	// Net is the network fabric under execution (crash, restart,
	// partition, loss and latency swaps) — a single *simnet.Network or
	// the sharded *simnet.ShardedNet, behind one control surface.
	Net simnet.Fabric
	// View is the membership view targets are drawn from; scenario churn
	// mutates it when it is a *membership.PartialViews.
	View        membership.View
	mask        *failure.Mask
	hasReceived func(id int) bool
	delivered   func() int
	pending     func() int
	publish     func(id int)
}

// NewNetRun assembles the injection facade for a simulation front end
// other than this package's own executor — the protocol baseline runtime
// in internal/protocols builds one so scenario campaigns can drive its
// executions through the exact seam they drive the paper's algorithm
// through. received must be the run's first-receipt bitset, delivered a
// pointer to its delivered-member counter, and publish the protocol's
// out-of-band publish hook (may be nil for protocols without one).
func NewNetRun(kernel *sim.Kernel, net simnet.Fabric, view membership.View,
	mask *failure.Mask, received *bitset.Bits, delivered *int, publish func(id int)) *NetRun {
	if publish == nil {
		publish = func(int) {}
	}
	return &NetRun{
		Kernel: kernel, Net: net, View: view, mask: mask,
		hasReceived: received.Get,
		delivered:   func() int { return *delivered },
		publish:     publish,
	}
}

// NewNetRunFuncs is NewNetRun for front ends whose receipt state is not a
// single bitset — the streaming engine's per-message delivery matrix, for
// example — so the predicates are supplied directly. pending may be nil
// (NetRun falls back to Kernel.Pending); publish may be nil (a no-op).
func NewNetRunFuncs(kernel *sim.Kernel, net simnet.Fabric, view membership.View,
	mask *failure.Mask, hasReceived func(id int) bool, delivered func() int,
	pending func() int, publish func(id int)) *NetRun {
	if publish == nil {
		publish = func(int) {}
	}
	return &NetRun{
		Kernel: kernel, Net: net, View: view, mask: mask,
		hasReceived: hasReceived,
		delivered:   delivered,
		pending:     pending,
		publish:     publish,
	}
}

// HasReceived reports whether id has received the multicast so far.
func (nr *NetRun) HasReceived(id int) bool { return nr.hasReceived(id) }

// Delivered returns the number of members that have received the multicast
// so far. Stall-triggered scenario steps watch this counter to detect a
// spread that has stopped making progress.
func (nr *NetRun) Delivered() int { return nr.delivered() }

// Pending returns the number of live events still scheduled across the
// execution — on a sharded run the control kernel, every shard kernel,
// and the cross-shard buffers together. Recurring scenario steps use it
// (not Kernel.Pending, which sees only the control kernel) to decide
// whether the execution is still alive.
func (nr *NetRun) Pending() int {
	if nr.pending != nil {
		return nr.pending()
	}
	return nr.Kernel.Pending()
}

// Restartable reports whether id may be restarted: only members that were
// alive under the execution's initial failure mask have a registered
// handler; mask-failed members are permanently gone (fail-stop) and
// restarting them would create zombies that absorb messages without
// processing them.
func (nr *NetRun) Restartable(id int) bool { return nr.mask.Alive(id) }

// Publish makes id gossip the message: if id has not received m yet it
// obtains it out of band (an additional publisher — flash crowd), otherwise
// it forwards it again (re-gossip). Crashed nodes cannot publish.
func (nr *NetRun) Publish(id int) { nr.publish(id) }

// NetArena holds the reusable per-run state of network executions: the
// kernel (event queue, calendar buckets), the network (packed up flags,
// pooled message slots), the failure mask (packed alive flags plus its
// sampling scratch), and the per-member receive bitset and target buffer.
// One arena serves many runs — the scenario sweep workers recycle one arena
// each — and after the first run at a given shape an execution performs
// zero O(n)-sized allocations: every piece of run state is redrawn in
// place. An arena is single-goroutine state; never share one across
// workers.
type NetArena struct {
	kernel   *sim.Kernel
	net      *simnet.Network
	mask     *failure.Mask
	received bitset.Bits
	targets  []int
	sharded  *ShardArena
	msgBits  *MessageBits // per-message delivery matrix (streaming runs)
	nackBits *MessageBits // pending-repair matrix (push-pull streaming runs)
}

// Sharded leases the arena's pooled sharded-execution state, sized for
// the given shard count — the seam sweep workers recycle sharded runs
// through without a second arena parameter. A nil receiver returns nil
// (ExecuteOnNetworkSharded builds a throwaway arena).
func (a *NetArena) Sharded(shards int) *ShardArena {
	if a == nil {
		return nil
	}
	if a.sharded == nil {
		a.sharded = NewShardArena(shards)
	} else {
		a.sharded.ensure(shards)
	}
	return a.sharded
}

// NewNetArena returns an empty arena; buffers grow on first use.
func NewNetArena() *NetArena {
	return &NetArena{kernel: sim.New(), mask: &failure.Mask{}, targets: make([]int, 0, 16)}
}

// RunState is the leased per-run state a simulation front end builds an
// execution from: a Reset kernel, a Reset network, the pooled failure mask
// (fill it before use), and the cleared first-receipt bitset. The lease is
// valid until the arena's next Lease (or ExecuteOnNetworkArena) call.
type RunState struct {
	Kernel   *sim.Kernel
	Net      *simnet.Network
	Mask     *failure.Mask
	Received *bitset.Bits
}

// Lease resets the arena's pooled state for a fresh n-node run over netCfg
// and hands it out. It is the seam non-core executors (the protocol
// baseline runtime) recycle run state through; this package's own
// ExecuteOnNetworkArena leases through the same path, so both kinds of run
// share one arena without interference. Results are byte-identical whether
// the arena is fresh or recycled.
func (a *NetArena) Lease(n int, netCfg simnet.Config, netRNG *xrand.RNG) RunState {
	a.kernel.Reset()
	if a.net == nil {
		a.net = simnet.New(a.kernel, n, netRNG, netCfg)
	} else {
		a.net.Reset(a.kernel, n, netRNG, netCfg)
	}
	a.received.Reset(n)
	return RunState{Kernel: a.kernel, Net: a.net, Mask: a.mask, Received: &a.received}
}

// Targets leases the arena's pooled target-sampling buffer; pair with
// SetTargets to return the (possibly grown) buffer when the run finishes.
func (a *NetArena) Targets() []int { return a.targets }

// SetTargets returns the sampling buffer leased with Targets.
func (a *NetArena) SetTargets(t []int) { a.targets = t }

// ExecuteOnNetwork runs one execution of the general gossiping algorithm as
// an event-driven protocol over a simulated network: each first receipt
// triggers fanout selection and sends, each send incurs the network's
// latency and loss. With zero latency and no loss the set of members
// reached is distributed identically to ExecuteOnce (an integration test
// asserts this); with loss or partitions, the network becomes an additional
// failure source beyond the paper's model.
func ExecuteOnNetwork(p Params, netCfg simnet.Config, r *xrand.RNG) (NetResult, error) {
	return ExecuteOnNetworkArena(p, netCfg, r, nil, nil)
}

// ExecuteOnNetworkInjected is ExecuteOnNetwork with a fault-injection hook:
// after the network and handlers are set up — and before the source
// publishes at t=0 — inject (if non-nil) is called with the run's NetRun so
// it can schedule mid-execution actions (crashes, restarts, partitions,
// loss episodes, extra publishers) on the kernel. The run is a pure
// function of (p, netCfg, r, inject), so scenarios replay deterministically.
func ExecuteOnNetworkInjected(p Params, netCfg simnet.Config, r *xrand.RNG, inject func(*NetRun)) (NetResult, error) {
	return ExecuteOnNetworkArena(p, netCfg, r, inject, nil)
}

// ExecuteOnNetworkArena is ExecuteOnNetworkInjected with caller-supplied
// buffer reuse: arena (which may be nil for a throwaway one) carries the
// kernel, network, and per-member buffers across runs. Results are
// byte-identical whether an arena is fresh or recycled.
func ExecuteOnNetworkArena(p Params, netCfg simnet.Config, r *xrand.RNG, inject func(*NetRun), arena *NetArena) (NetResult, error) {
	return ExecuteOnNetworkProbed(p, netCfg, r, inject, arena, nil)
}

// ExecuteOnNetworkProbed is ExecuteOnNetworkArena under telemetry: probe
// (which may be nil — the zero-overhead off state) observes the run's
// virtual-time curves, histograms, and optionally its raw events. The
// probe never consumes the run's RNG streams and schedules nothing on the
// kernel, so the NetResult is bit-identical with the probe on or off; the
// caller snapshots probe.Metrics() afterward.
func ExecuteOnNetworkProbed(p Params, netCfg simnet.Config, r *xrand.RNG, inject func(*NetRun), arena *NetArena, probe *obs.Probe) (NetResult, error) {
	if err := p.Validate(); err != nil {
		return NetResult{}, err
	}
	if arena == nil {
		arena = NewNetArena()
	}
	st := arena.Lease(p.N, netCfg, r.Split(0xfeed))
	kernel, nw, mask, received := st.Kernel, st.Net, st.Mask, st.Received
	kernel.SetBudget(uint64(p.N) * 10000)
	p.drawMaskInto(mask, r)
	view := p.view()

	res := NetResult{Result: Result{AliveCount: mask.AliveCount()}}
	targets := arena.targets
	defer func() { arena.targets = targets }()
	probe.Attach(nw, p.N, &res.Delivered)

	forward := func(self int) {
		f := p.Fanout.Sample(r)
		targets = view.SampleTargets(targets, self, f, r)
		res.MessagesSent += len(targets)
		probe.ObserveFanout(len(targets))
		for _, v := range targets {
			if !mask.Alive(v) {
				res.WastedOnFailed++
			}
			nw.Send(simnet.NodeID(self), simnet.NodeID(v), nil)
		}
	}

	// from is the forwarding member, or -1 for an out-of-band receipt (an
	// additional publisher injected by a campaign).
	receive := func(id, from int, now sim.Time) {
		received.Set(id)
		res.Delivered++
		res.DeliveryLatency.Add(now.Seconds())
		if d := now.Duration(); d > res.SpreadTime {
			res.SpreadTime = d
		}
		probe.ObserveFirstReceipt(id, from, now)
		forward(id)
	}

	// One shared handler for every member (index dispatch on msg.To)
	// instead of n per-member closures; fail-stop members are crashed at
	// the network layer, so the handler only ever sees alive-at-delivery
	// members. (Crashing also counts the paper's "wasted" sends as crash
	// drops.)
	nw.RegisterAll(func(now sim.Time, msg simnet.Message) {
		id := int(msg.To)
		if received.Get(id) {
			res.Duplicates++
			return
		}
		receive(id, int(msg.From), now)
	})
	for id := 0; id < p.N; id++ {
		if !mask.Alive(id) {
			nw.Crash(simnet.NodeID(id))
		}
	}

	if inject != nil {
		inject(&NetRun{
			Kernel:      kernel,
			Net:         nw,
			View:        view,
			mask:        mask,
			hasReceived: received.Get,
			delivered:   func() int { return res.Delivered },
			publish: func(id int) {
				if id < 0 || id >= p.N || !nw.Up(simnet.NodeID(id)) || !mask.Alive(id) {
					return
				}
				if received.Get(id) {
					forward(id) // re-gossip
					return
				}
				receive(id, -1, kernel.Now()) // additional publisher
			},
		})
	}

	// The source initiates at t=0 (unless an injection hook already
	// published from it directly).
	if !received.Get(p.Source) {
		received.Set(p.Source)
		res.Delivered++
		probe.ObserveSeed(p.Source)
		forward(p.Source)
	}
	if err := kernel.RunAll(); err != nil {
		return NetResult{}, fmt.Errorf("core: network execution aborted: %w", err)
	}
	probe.Finish(kernel.Now())
	if res.AliveCount > 0 {
		res.Reliability = float64(res.Delivered) / float64(res.AliveCount)
	}
	for id := 0; id < p.N; id++ {
		if nw.Up(simnet.NodeID(id)) {
			res.UpAtEnd++
			if received.Get(id) {
				res.DeliveredUp++
			}
		}
	}
	if res.UpAtEnd > 0 {
		res.SurvivorReliability = float64(res.DeliveredUp) / float64(res.UpAtEnd)
	}
	res.Net = nw.Stats()
	return res, nil
}

// TimingEquivalent reruns p under both crash timings with identical
// randomness and reports whether the delivered sets match. It backs the
// paper's claim that the two failure cases "are treated the same".
func TimingEquivalent(p Params, seed uint64) (bool, error) {
	if err := p.Validate(); err != nil {
		return false, err
	}
	run := func(tm failure.Timing) ([]int32, *failure.Mask, error) {
		pp := p
		pp.Timing = tm
		r := xrand.New(seed)
		mask := pp.drawMask(r)
		ex := newExecutor(pp)
		ex.run(mask, r)
		out := append([]int32(nil), ex.delivered()...)
		return out, mask, nil
	}
	a, _, err := run(failure.BeforeReceive)
	if err != nil {
		return false, err
	}
	b, _, err := run(failure.AfterReceive)
	if err != nil {
		return false, err
	}
	if len(a) != len(b) {
		return false, nil
	}
	for i := range a {
		if a[i] != b[i] {
			return false, nil
		}
	}
	return true, nil
}
