package core

import (
	"fmt"
	"time"

	"gossipkit/internal/failure"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

// NetResult extends Result with timing information from a discrete-event
// execution over a simulated network.
type NetResult struct {
	Result
	// SpreadTime is the simulated time at which the last alive member
	// received m.
	SpreadTime time.Duration
	// DeliveryLatency summarizes per-member first-receipt latencies.
	DeliveryLatency stats.Running
	// Net is the network's final counters.
	Net simnet.Stats
}

// ExecuteOnNetwork runs one execution of the general gossiping algorithm as
// an event-driven protocol over a simulated network: each first receipt
// triggers fanout selection and sends, each send incurs the network's
// latency and loss. With zero latency and no loss the set of members
// reached is distributed identically to ExecuteOnce (an integration test
// asserts this); with loss or partitions, the network becomes an additional
// failure source beyond the paper's model.
func ExecuteOnNetwork(p Params, netCfg simnet.Config, r *xrand.RNG) (NetResult, error) {
	if err := p.Validate(); err != nil {
		return NetResult{}, err
	}
	kernel := sim.New()
	kernel.SetBudget(uint64(p.N) * 10000)
	nw := simnet.New(kernel, p.N, r.Split(0xfeed), netCfg)
	mask := p.drawMask(r)
	view := p.view()

	res := NetResult{Result: Result{AliveCount: mask.AliveCount()}}
	received := make([]bool, p.N)
	targets := make([]int, 0, 16)

	forward := func(self int) {
		f := p.Fanout.Sample(r)
		targets = view.SampleTargets(targets, self, f, r)
		res.MessagesSent += len(targets)
		for _, v := range targets {
			if !mask.Alive(v) {
				res.WastedOnFailed++
			}
			nw.Send(simnet.NodeID(self), simnet.NodeID(v), nil)
		}
	}

	for i := 0; i < p.N; i++ {
		id := i
		if !mask.Alive(id) {
			// Fail-stop: crashed members never process messages.
			// (Crashing at the network layer also counts the
			// paper's "wasted" sends as crash drops.)
			nw.Crash(simnet.NodeID(id))
			continue
		}
		nw.Register(simnet.NodeID(id), func(now sim.Time, _ simnet.Message) {
			if received[id] {
				res.Duplicates++
				return
			}
			received[id] = true
			res.Delivered++
			res.DeliveryLatency.Add(now.Seconds())
			if d := now.Duration(); d > res.SpreadTime {
				res.SpreadTime = d
			}
			forward(id)
		})
	}

	// The source initiates at t=0.
	received[p.Source] = true
	res.Delivered = 1
	forward(p.Source)
	if err := kernel.RunAll(); err != nil {
		return NetResult{}, fmt.Errorf("core: network execution aborted: %w", err)
	}
	if res.AliveCount > 0 {
		res.Reliability = float64(res.Delivered) / float64(res.AliveCount)
	}
	res.Net = nw.Stats()
	return res, nil
}

// TimingEquivalent reruns p under both crash timings with identical
// randomness and reports whether the delivered sets match. It backs the
// paper's claim that the two failure cases "are treated the same".
func TimingEquivalent(p Params, seed uint64) (bool, error) {
	if err := p.Validate(); err != nil {
		return false, err
	}
	run := func(tm failure.Timing) ([]int32, *failure.Mask, error) {
		pp := p
		pp.Timing = tm
		r := xrand.New(seed)
		mask := pp.drawMask(r)
		ex := newExecutor(pp)
		ex.run(mask, r)
		out := append([]int32(nil), ex.delivered()...)
		return out, mask, nil
	}
	a, _, err := run(failure.BeforeReceive)
	if err != nil {
		return false, err
	}
	b, _, err := run(failure.AfterReceive)
	if err != nil {
		return false, err
	}
	if len(a) != len(b) {
		return false, nil
	}
	for i := range a {
		if a[i] != b[i] {
			return false, nil
		}
	}
	return true, nil
}
