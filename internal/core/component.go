package core

import (
	"context"
	"fmt"

	"gossipkit/internal/graph"
	"gossipkit/internal/runpool"
	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

// ComponentResult reports the giant-component view of one execution of the
// gossiping algorithm: every nonfailed member draws its fanout and targets
// exactly as in the protocol, giving the directed "gossip graph"; the
// reliability is the size of its giant out-component (all nodes reachable
// from the largest strongly connected component) as a share of nonfailed
// members.
//
// This is the metric the paper's simulations report ("we calculate the size
// of giant component for each case", §5.1) and the one its Eq. 11 curve
// predicts: for Poisson fanout the giant out-component fraction y of a
// directed random graph with mean degree zq satisfies y = 1 − e^{−zqy},
// exactly Eq. 11. It differs from the directed source-reach of ExecuteOnce
// by the early-die-out mass: a single execution fizzles near the source
// with probability ≈ 1−S, making E[directed reach] ≈ S² for Poisson, while
// the giant out-component exists independently of where the source sits.
// Ablation A6 in DESIGN.md quantifies the gap; both metrics are first-class
// here.
type ComponentResult struct {
	// AliveCount is the number of nonfailed members.
	AliveCount int
	// GiantSize is the size of the giant out-component among nonfailed
	// members.
	GiantSize int
	// Reliability is GiantSize/AliveCount, the paper's simulated R(q,P).
	Reliability float64
	// SourceReach is the number of alive members reachable from the
	// source in the same gossip graph (what one real multicast would
	// deliver).
	SourceReach int
	// SourceInGiant reports whether the source's reach attained the
	// giant out-component — its long-run frequency is S.
	SourceInGiant bool
	// MessagesSent is the number of gossip arcs drawn.
	MessagesSent int
}

// probeCount is how many random alive starts LargestOutComponent probes in
// the subcritical regime (where no nontrivial SCC exists).
const probeCount = 64

// ComponentReliability runs one execution in the giant out-component
// semantics.
func ComponentReliability(p Params, r *xrand.RNG) (ComponentResult, error) {
	if err := p.Validate(); err != nil {
		return ComponentResult{}, err
	}
	mask := p.drawMask(r)
	view := p.view()
	g := graph.NewDigraph(p.N)
	targets := make([]int, 0, 16)
	res := ComponentResult{AliveCount: mask.AliveCount()}
	for u := 0; u < p.N; u++ {
		if !mask.Alive(u) {
			continue // failed members never gossip
		}
		f := p.Fanout.Sample(r)
		targets = view.SampleTargets(targets, u, f, r)
		res.MessagesSent += len(targets)
		for _, v := range targets {
			if mask.Alive(v) {
				g.AddArc(u, v)
			}
		}
	}
	// Probe starts for the subcritical fallback: the source plus random
	// alive members.
	probes := make([]int, 0, probeCount)
	probes = append(probes, p.Source)
	for len(probes) < probeCount {
		c := r.Intn(p.N)
		if mask.Alive(c) {
			probes = append(probes, c)
		}
	}
	res.GiantSize = graph.LargestOutComponent(g, nil, probes)
	bfs := graph.NewBFS(p.N)
	res.SourceReach = bfs.Reachable(g, p.Source, nil)
	res.SourceInGiant = res.SourceReach >= res.GiantSize && res.GiantSize > 1
	if res.AliveCount > 0 {
		res.Reliability = float64(res.GiantSize) / float64(res.AliveCount)
	}
	return res, nil
}

// ComponentEstimate aggregates Monte-Carlo giant-component statistics.
type ComponentEstimate struct {
	Runs int
	// Mean is the average giant out-component reliability — the series
	// plotted as "Simulation" in the paper's Figs. 4–5.
	Mean   float64
	StdDev float64
	CI95   float64
	// SourceInGiantRate is the fraction of runs whose source reached the
	// giant out-component (→ S as n grows).
	SourceInGiantRate float64
	// MeanSourceReach is the mean directed source reach as a fraction of
	// alive members (≈ S² for Poisson; ablation A6).
	MeanSourceReach float64
}

// ComponentObserver streams completed giant-component executions in run
// order, regardless of worker count.
type ComponentObserver func(run int, res ComponentResult)

// EstimateComponentReliability runs `runs` independent giant-component
// executions in parallel (deterministic for a given seed); see
// EstimateComponentReliabilityCtx.
func EstimateComponentReliability(p Params, runs int, seed uint64) (ComponentEstimate, error) {
	return EstimateComponentReliabilityCtx(context.Background(), p, runs, seed, 0, nil)
}

// EstimateComponentReliabilityCtx runs `runs` independent giant-component
// executions on a worker pool. Run i consumes the RNG stream split at
// index i and results are reduced in run order, so the estimate is
// identical for any worker count (workers <= 0 means GOMAXPROCS). Context
// cancellation aborts promptly with ctx.Err(); observe, when non-nil,
// streams per-run results in deterministic run order.
func EstimateComponentReliabilityCtx(ctx context.Context, p Params, runs int, seed uint64, workers int, observe ComponentObserver) (ComponentEstimate, error) {
	if err := p.Validate(); err != nil {
		return ComponentEstimate{}, err
	}
	if runs < 1 {
		return ComponentEstimate{}, fmt.Errorf("core: run count %d < 1", runs)
	}
	root := xrand.New(seed)
	// Streaming reduction in run order: same accumulation order as a
	// post-hoc loop over a full result buffer (worker-count-invariant),
	// without holding all `runs` results live.
	var rel, reach stats.Running
	inG := 0
	err := runpool.RunOrdered(ctx, runs, runpool.Count(workers, runs),
		func(w, run int) (ComponentResult, error) {
			return ComponentReliability(p, root.Split(uint64(run)))
		}, func(run int, res ComponentResult) {
			rel.Add(res.Reliability)
			if res.AliveCount > 0 {
				reach.Add(float64(res.SourceReach) / float64(res.AliveCount))
			}
			if res.SourceInGiant {
				inG++
			}
			if observe != nil {
				observe(run, res)
			}
		})
	if err != nil {
		return ComponentEstimate{}, err
	}
	return ComponentEstimate{
		Runs:              rel.N(),
		Mean:              rel.Mean(),
		StdDev:            rel.StdDev(),
		CI95:              rel.CI95(),
		SourceInGiantRate: float64(inG) / float64(rel.N()),
		MeanSourceReach:   reach.Mean(),
	}, nil
}
