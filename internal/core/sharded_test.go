package core

import (
	"math"
	"reflect"
	"testing"
	"time"

	"gossipkit/internal/dist"
	"gossipkit/internal/obs"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/xrand"
)

// shardedTestConfig is the canonical sharded-test network: a latency
// model with a positive floor (the lookahead source) plus loss, so the
// cross-shard path sees drops as well as deliveries.
func shardedTestConfig() simnet.Config {
	return simnet.Config{
		Latency: simnet.UniformLatency{Lo: 2 * time.Millisecond, Hi: 9 * time.Millisecond},
		Loss:    simnet.BernoulliLoss{P: 0.05},
	}
}

func shardedTestParams(n int) Params {
	return Params{N: n, Fanout: dist.NewPoisson(5), AliveRatio: 0.9, Source: 1}
}

// shardedCampaign is a mid-run control campaign exercising every NetRun
// seam the scenario layer uses: fabric ops (crash, restart, loss and
// latency swaps), an additional publisher, and a re-gossip publish.
func shardedCampaign(run *NetRun) {
	run.Kernel.At(sim.Time(4*time.Millisecond), func() {
		run.Net.Crash(simnet.NodeID(7))
		run.Net.SetLoss(simnet.BernoulliLoss{P: 0.2})
		run.Publish(40) // additional publisher (or re-gossip if reached)
	})
	run.Kernel.At(sim.Time(9*time.Millisecond), func() {
		if run.Restartable(7) {
			run.Net.Restart(simnet.NodeID(7))
		}
		run.Net.SetLatency(simnet.UniformLatency{Lo: 3 * time.Millisecond, Hi: 6 * time.Millisecond})
		run.Publish(run.Delivered() % 50) // data-dependent target
	})
}

// TestShardedOneShardMatchesOracle pins the tentpole's shards=1 contract:
// byte-identical results AND telemetry against ExecuteOnNetworkProbed for
// the same inputs — reliability, message counts, latency moments, probe
// curves, histograms, and the event trace.
func TestShardedOneShardMatchesOracle(t *testing.T) {
	p := shardedTestParams(300)
	cfg := shardedTestConfig()
	opts := obs.Options{TraceCapacity: 1 << 14}

	for _, tc := range []struct {
		name   string
		inject func(*NetRun)
	}{
		{"plain", nil},
		{"campaign", shardedCampaign},
	} {
		t.Run(tc.name, func(t *testing.T) {
			oracleProbe := obs.New(opts)
			want, err := ExecuteOnNetworkProbed(p, cfg, xrand.New(42), tc.inject, nil, oracleProbe)
			if err != nil {
				t.Fatal(err)
			}
			shardProbe := obs.New(opts)
			got, err := ExecuteOnNetworkSharded(p, cfg, xrand.New(42), tc.inject, nil, shardProbe, ShardOptions{Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("shards=1 result diverged from oracle:\n got %+v\nwant %+v", got, want)
			}
			gm, wm := shardProbe.Metrics(), oracleProbe.Metrics()
			if !reflect.DeepEqual(gm, wm) {
				t.Errorf("shards=1 probe metrics diverged from oracle:\n got %+v\nwant %+v", gm, wm)
			}
			if wm.Totals.Sent == 0 || len(wm.Infected) == 0 || len(wm.Trace) == 0 {
				t.Fatalf("degenerate oracle telemetry %+v", wm.Totals)
			}
		})
	}
}

// TestShardedFixedShardCountDeterministic pins the fixed-S>1 contract:
// the same seed replays byte-identically, including merged telemetry.
func TestShardedFixedShardCountDeterministic(t *testing.T) {
	p := shardedTestParams(400)
	cfg := shardedTestConfig()

	run := func() (NetResult, *obs.Metrics) {
		probe := obs.New(obs.Options{})
		res, err := ExecuteOnNetworkSharded(p, cfg, xrand.New(7), shardedCampaign, nil, probe, ShardOptions{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res, probe.Metrics()
	}
	res1, m1 := run()
	res2, m2 := run()
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("shards=4 not deterministic:\n run1 %+v\n run2 %+v", res1, res2)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Errorf("shards=4 telemetry not deterministic")
	}
	if res1.Delivered == 0 || res1.Net.Sent == 0 {
		t.Fatalf("degenerate sharded run %+v", res1)
	}
	if m1.Hops.Counts != nil {
		t.Error("hop histogram should be disabled on shards>1 runs")
	}
}

// TestShardedArenaReuseDeterministic pins pooling: a reused ShardArena
// (including one resized across shard counts) replays a run
// byte-identically against a fresh arena.
func TestShardedArenaReuseDeterministic(t *testing.T) {
	p := shardedTestParams(256)
	cfg := shardedTestConfig()

	fresh, err := ExecuteOnNetworkSharded(p, cfg, xrand.New(9), nil, nil, nil, ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sa := NewShardArena(4)
	if _, err := ExecuteOnNetworkSharded(shardedTestParams(100), cfg, xrand.New(1), nil, sa, nil, ShardOptions{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	reused, err := ExecuteOnNetworkSharded(p, cfg, xrand.New(9), nil, sa, nil, ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reused, fresh) {
		t.Errorf("reused arena diverged:\n fresh  %+v\n reused %+v", fresh, reused)
	}
}

// TestShardedMaskInvariantAcrossShardCounts pins the RNG layout's key
// consequence: the failure mask is drawn from the root stream, which
// splitting never advances, so the alive set — and with it AliveCount and
// UpAtEnd-eligible membership — is identical across shard counts.
func TestShardedMaskInvariantAcrossShardCounts(t *testing.T) {
	p := shardedTestParams(300)
	cfg := shardedTestConfig()
	base, err := ExecuteOnNetworkProbed(p, cfg, xrand.New(3), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		res, err := ExecuteOnNetworkSharded(p, cfg, xrand.New(3), nil, nil, nil, ShardOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if res.AliveCount != base.AliveCount {
			t.Errorf("shards=%d AliveCount %d, oracle %d — mask not shard-count-invariant",
				shards, res.AliveCount, base.AliveCount)
		}
	}
}

// TestShardedReliabilityPinnedAcrossShardCounts is the in-package
// statistical half of the contract: different shard counts use different
// RNG streams, so results differ run-to-run but must agree in
// distribution. 25 seeds per shard count; the mean reliabilities must sit
// within a tolerance far tighter than the gap a bridging bug (lost or
// duplicated cross-shard traffic) would open.
func TestShardedReliabilityPinnedAcrossShardCounts(t *testing.T) {
	p := shardedTestParams(200)
	cfg := shardedTestConfig()
	const seeds = 25

	mean := func(shards int) float64 {
		total := 0.0
		for seed := 0; seed < seeds; seed++ {
			res, err := ExecuteOnNetworkSharded(p, cfg, xrand.New(uint64(1000+seed)), nil, nil, nil, ShardOptions{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			total += res.Reliability
		}
		return total / seeds
	}
	m1 := mean(1)
	for _, shards := range []int{2, 4} {
		m := mean(shards)
		if diff := math.Abs(m - m1); diff > 0.03 {
			t.Errorf("shards=%d mean reliability %.4f vs single-kernel %.4f (Δ=%.4f > 0.03)",
				shards, m, m1, diff)
		}
	}
}

// TestShardedProgressObserved pins the satellite progress seam: barriers
// report monotone virtual time and nondecreasing fired-event totals.
func TestShardedProgressObserved(t *testing.T) {
	p := shardedTestParams(300)
	var calls int
	var lastNow sim.Time
	var lastFired uint64
	_, err := ExecuteOnNetworkSharded(p, shardedTestConfig(), xrand.New(5), nil, nil, nil, ShardOptions{
		Shards: 4,
		Progress: func(events uint64, now sim.Time) {
			calls++
			if now < lastNow {
				t.Fatalf("barrier time went backwards: %v after %v", now, lastNow)
			}
			if events < lastFired {
				t.Fatalf("fired count went backwards: %d after %d", events, lastFired)
			}
			lastNow, lastFired = now, events
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never observed a barrier")
	}
	if lastFired == 0 {
		t.Fatal("no events reported fired")
	}
}

func TestEffectiveShards(t *testing.T) {
	floored := shardedTestConfig()
	cases := []struct {
		name      string
		requested int
		n         int
		cfg       simnet.Config
		want      int
	}{
		{"explicit", 4, 100, floored, 4},
		{"clampToN", 8, 3, floored, 3},
		{"noFloorFallsBack", 4, 100, simnet.Config{}, 1},
		{"zeroLatencyFallsBack", 4, 100, simnet.Config{Latency: simnet.ConstantLatency{}}, 1},
		{"tracerFallsBack", 4, 100, simnet.Config{
			Latency: simnet.ConstantLatency{D: time.Millisecond},
			Tracer:  func(simnet.Event) {},
		}, 1},
		{"one", 1, 100, simnet.Config{}, 1},
	}
	for _, c := range cases {
		if got := EffectiveShards(c.requested, c.n, c.cfg); got != c.want {
			t.Errorf("%s: EffectiveShards(%d, %d) = %d, want %d", c.name, c.requested, c.n, got, c.want)
		}
	}
	// requested<1 auto-selects GOMAXPROCS (clamped); just pin it's sane.
	if got := EffectiveShards(0, 1<<20, floored); got < 1 {
		t.Errorf("auto shard count %d < 1", got)
	}
}

// TestShardedBudgetPropagates pins abort semantics: a run that trips a
// shard kernel's event budget surfaces the error instead of hanging.
func TestShardedBudgetPropagates(t *testing.T) {
	// A recurring control event that never stops would exceed the control
	// kernel budget; simpler: tiny N with huge fanout exceeds the per-shard
	// budget of N*10000 only at absurd scale, so drive it via inject.
	p := Params{N: 8, Fanout: dist.NewFixed(2), AliveRatio: 1, Source: 0}
	inject := func(run *NetRun) {
		var tick func()
		at := sim.Time(time.Millisecond)
		tick = func() {
			run.Publish(3)
			at += sim.Time(time.Millisecond)
			run.Kernel.At(at, tick)
		}
		run.Kernel.At(at, tick)
	}
	_, err := ExecuteOnNetworkSharded(p, shardedTestConfig(), xrand.New(1), inject, nil, nil, ShardOptions{Shards: 2})
	if err == nil {
		t.Fatal("unbounded recurring campaign did not trip the budget")
	}
}
