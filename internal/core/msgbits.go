package core

import (
	"fmt"
	"math/bits"

	"gossipkit/internal/failure"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
)

// segTargetWords sizes MessageBits segments: ~2 MB of words each, the
// sweet spot between allocation count (a 10⁶-row matrix is a few hundred
// segments, not one multi-hundred-MB block the allocator must find
// contiguous address space for) and per-access overhead (one extra shift
// and mask). Segments are pooled individually, so reshaping a warm matrix
// reuses every segment whose capacity still fits.
const segTargetWords = 1 << 18

// MessageBits is a pooled matrix of per-message delivery bitsets: row m
// holds one bit per member recording whether that member has received
// message m. It is the multi-message generalization of the single
// first-receipt bitset in RunState — streaming workloads (internal/stream)
// dedup every (message, member) pair through it. Storage is segment-pooled:
// rows live in fixed-size word blocks of a power-of-two row count each, so
// a 10⁶–10⁷-row matrix never demands one giant contiguous allocation and a
// warm arena redraws the whole matrix without allocating. Rows are
// word-aligned and never span a segment boundary: two rows never share a
// word, so per-shard matrices over disjoint member blocks are safe to
// write concurrently.
type MessageBits struct {
	segs    [][]uint64
	stride  int  // words per message row
	logRows uint // log2(rows per segment)
	rowMask int  // rows-per-segment − 1
	msgs    int
	width   int // bits per row (member count or shard-block width)
}

// Reset sizes the matrix to msgs rows of width bits, all zero, reusing
// pooled segments whose capacity still fits the new geometry.
func (b *MessageBits) Reset(msgs, width int) {
	if msgs < 0 || width < 0 {
		panic(fmt.Sprintf("core: negative message-bits shape %d×%d", msgs, width))
	}
	b.msgs = msgs
	b.width = width
	b.stride = (width + 63) / 64
	rows := 1
	b.logRows = 0
	if b.stride > 0 {
		for rows*2*b.stride <= segTargetWords {
			rows *= 2
			b.logRows++
		}
	}
	b.rowMask = rows - 1
	nSegs := 0
	if b.stride > 0 && msgs > 0 {
		nSegs = (msgs + rows - 1) / rows
	}
	for len(b.segs) < nSegs {
		b.segs = append(b.segs, nil)
	}
	b.segs = b.segs[:nSegs]
	for i := range b.segs {
		// The tail segment (and a small matrix's only one) sizes to the
		// rows it actually holds, so tiny runs neither allocate nor clear
		// a full segment.
		used := rows
		if tail := msgs - i*rows; tail < used {
			used = tail
		}
		w := used * b.stride
		if cap(b.segs[i]) >= w {
			b.segs[i] = b.segs[i][:w]
			clear(b.segs[i])
		} else {
			b.segs[i] = make([]uint64, w)
		}
	}
}

// Msgs returns the number of rows (messages).
func (b *MessageBits) Msgs() int { return b.msgs }

// Get reports whether member id has received message m.
func (b *MessageBits) Get(m, id int) bool {
	seg := b.segs[uint(m)>>b.logRows]
	return seg[(m&b.rowMask)*b.stride+int(uint(id)>>6)]&(1<<(uint(id)&63)) != 0
}

// Set records that member id has received message m.
func (b *MessageBits) Set(m, id int) {
	seg := b.segs[uint(m)>>b.logRows]
	seg[(m&b.rowMask)*b.stride+int(uint(id)>>6)] |= 1 << (uint(id) & 63)
}

// Unset clears member id's bit for message m (the pending-repair matrix
// retires its marks per round through this).
func (b *MessageBits) Unset(m, id int) {
	seg := b.segs[uint(m)>>b.logRows]
	seg[(m&b.rowMask)*b.stride+int(uint(id)>>6)] &^= 1 << (uint(id) & 63)
}

// CountRow returns the number of members that received message m.
func (b *MessageBits) CountRow(m int) int {
	seg := b.segs[uint(m)>>b.logRows]
	row := (m & b.rowMask) * b.stride
	c := 0
	for _, w := range seg[row : row+b.stride] {
		c += bits.OnesCount64(w)
	}
	return c
}

// MessageBits leases the arena's pooled per-message delivery matrix, sized
// to msgs rows of width bits and cleared. Like every lease it is valid
// until the next call; the streaming executor redraws it per run with zero
// warm-state allocations.
func (a *NetArena) MessageBits(msgs, width int) *MessageBits {
	if a.msgBits == nil {
		a.msgBits = &MessageBits{}
	}
	a.msgBits.Reset(msgs, width)
	return a.msgBits
}

// NackBits leases the arena's second pooled per-message matrix — the
// pending-repair bits of push-pull streaming runs, one bit per (message,
// member) NACK in flight. A separate lease from MessageBits because one
// run holds both matrices at once.
func (a *NetArena) NackBits(msgs, width int) *MessageBits {
	if a.nackBits == nil {
		a.nackBits = &MessageBits{}
	}
	a.nackBits.Reset(msgs, width)
	return a.nackBits
}

// ShardRunState is the sharded counterpart of RunState: the pooled shard
// and control kernels, the sharded fabric, and the failure mask of one
// sharded execution, leased to simulation front ends other than this
// package's own executor (the streaming engine runs its sharded path
// through it). The caller owns per-shard reset — kernels are handed out
// as-is so each shard's worker goroutine can Reset its own (first-touch
// locality), exactly as ExecuteOnNetworkSharded does internally.
type ShardRunState struct {
	Kernels []*sim.Kernel
	Control *sim.Kernel
	Net     *simnet.ShardedNet
	Mask    *failure.Mask
}

// LeaseSharded sizes the arena for `shards` shard kernels and hands out
// its pooled sharded run state. With one shard the control kernel is the
// shard kernel, mirroring the byte-identical shards=1 contract of the
// core executor.
func (a *ShardArena) LeaseSharded(shards int) ShardRunState {
	a.ensure(shards)
	ctl := a.ctl
	if shards == 1 {
		ctl = a.kernels[0]
	}
	return ShardRunState{Kernels: a.kernels, Control: ctl, Net: a.net, Mask: a.mask}
}

// ShardMessageBits leases shard s's pooled per-message delivery matrix for
// a sharded streaming run: msgs rows of width bits (the shard's member
// block), cleared. Call it from shard s's own goroutine during setup so
// the matrix is first-touched by the worker that will write it.
func (a *ShardArena) ShardMessageBits(s, msgs, width int) *MessageBits {
	if a.msgBits[s] == nil {
		a.msgBits[s] = &MessageBits{}
	}
	a.msgBits[s].Reset(msgs, width)
	return a.msgBits[s]
}

// ShardNackBits leases shard s's pooled pending-repair matrix (see
// NackBits), from the shard's own goroutine like ShardMessageBits.
func (a *ShardArena) ShardNackBits(s, msgs, width int) *MessageBits {
	if a.nackBits[s] == nil {
		a.nackBits[s] = &MessageBits{}
	}
	a.nackBits[s].Reset(msgs, width)
	return a.nackBits[s]
}
