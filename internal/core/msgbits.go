package core

import (
	"fmt"
	"math/bits"

	"gossipkit/internal/failure"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
)

// MessageBits is a pooled matrix of per-message delivery bitsets: row m
// holds one bit per member recording whether that member has received
// message m. It is the multi-message generalization of the single
// first-receipt bitset in RunState — streaming workloads (internal/stream)
// dedup every (message, member) pair through it — stored as one flat
// word array so a warm arena redraws the whole matrix without allocating.
// Rows are word-aligned: two rows never share a word, so per-shard
// matrices over disjoint member blocks are safe to write concurrently.
type MessageBits struct {
	words  []uint64
	stride int // words per message row
	msgs   int
	width  int // bits per row (member count or shard-block width)
}

// Reset sizes the matrix to msgs rows of width bits, all zero, reusing the
// word storage when capacity allows.
func (b *MessageBits) Reset(msgs, width int) {
	if msgs < 0 || width < 0 {
		panic(fmt.Sprintf("core: negative message-bits shape %d×%d", msgs, width))
	}
	b.stride = (width + 63) / 64
	b.msgs = msgs
	b.width = width
	w := msgs * b.stride
	if cap(b.words) >= w {
		b.words = b.words[:w]
		clear(b.words)
	} else {
		b.words = make([]uint64, w)
	}
}

// Msgs returns the number of rows (messages).
func (b *MessageBits) Msgs() int { return b.msgs }

// Get reports whether member id has received message m.
func (b *MessageBits) Get(m, id int) bool {
	return b.words[m*b.stride+int(uint(id)>>6)]&(1<<(uint(id)&63)) != 0
}

// Set records that member id has received message m.
func (b *MessageBits) Set(m, id int) {
	b.words[m*b.stride+int(uint(id)>>6)] |= 1 << (uint(id) & 63)
}

// CountRow returns the number of members that received message m.
func (b *MessageBits) CountRow(m int) int {
	c := 0
	for _, w := range b.words[m*b.stride : (m+1)*b.stride] {
		c += bits.OnesCount64(w)
	}
	return c
}

// MessageBits leases the arena's pooled per-message delivery matrix, sized
// to msgs rows of width bits and cleared. Like every lease it is valid
// until the next call; the streaming executor redraws it per run with zero
// warm-state allocations.
func (a *NetArena) MessageBits(msgs, width int) *MessageBits {
	if a.msgBits == nil {
		a.msgBits = &MessageBits{}
	}
	a.msgBits.Reset(msgs, width)
	return a.msgBits
}

// ShardRunState is the sharded counterpart of RunState: the pooled shard
// and control kernels, the sharded fabric, and the failure mask of one
// sharded execution, leased to simulation front ends other than this
// package's own executor (the streaming engine runs its sharded path
// through it). The caller owns per-shard reset — kernels are handed out
// as-is so each shard's worker goroutine can Reset its own (first-touch
// locality), exactly as ExecuteOnNetworkSharded does internally.
type ShardRunState struct {
	Kernels []*sim.Kernel
	Control *sim.Kernel
	Net     *simnet.ShardedNet
	Mask    *failure.Mask
}

// LeaseSharded sizes the arena for `shards` shard kernels and hands out
// its pooled sharded run state. With one shard the control kernel is the
// shard kernel, mirroring the byte-identical shards=1 contract of the
// core executor.
func (a *ShardArena) LeaseSharded(shards int) ShardRunState {
	a.ensure(shards)
	ctl := a.ctl
	if shards == 1 {
		ctl = a.kernels[0]
	}
	return ShardRunState{Kernels: a.kernels, Control: ctl, Net: a.net, Mask: a.mask}
}

// ShardMessageBits leases shard s's pooled per-message delivery matrix for
// a sharded streaming run: msgs rows of width bits (the shard's member
// block), cleared. Call it from shard s's own goroutine during setup so
// the matrix is first-touched by the worker that will write it.
func (a *ShardArena) ShardMessageBits(s, msgs, width int) *MessageBits {
	if a.msgBits[s] == nil {
		a.msgBits[s] = &MessageBits{}
	}
	a.msgBits[s].Reset(msgs, width)
	return a.msgBits[s]
}
