package core

import (
	"math"
	"testing"

	"gossipkit/internal/genfunc"
	"gossipkit/internal/xrand"
)

func TestTraceRoundsBasics(t *testing.T) {
	p := poissonParams(500, 4, 0.9)
	tr, err := TraceRounds(p, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Infected) != tr.Result.Rounds+1 {
		t.Fatalf("trace length %d, rounds %d", len(tr.Infected), tr.Result.Rounds)
	}
	if tr.Infected[0] != 1 {
		t.Errorf("round 0 infections = %d, want 1 (the source)", tr.Infected[0])
	}
	// Cumulative and monotone; final value equals Delivered.
	for i := 1; i < len(tr.Infected); i++ {
		if tr.Infected[i] < tr.Infected[i-1] {
			t.Fatalf("trace not monotone at round %d", i)
		}
	}
	if got := tr.Infected[len(tr.Infected)-1]; got != tr.Result.Delivered {
		t.Errorf("final trace %d != delivered %d", got, tr.Result.Delivered)
	}
}

func TestTraceRoundsInvalidParams(t *testing.T) {
	p := poissonParams(1, 4, 0.9)
	if _, err := TraceRounds(p, xrand.New(1)); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestRecurrenceModelValidation(t *testing.T) {
	for _, c := range []struct {
		n      int
		z, q   float64
		rounds int
	}{
		{1, 4, 0.9, 5},
		{100, -1, 0.9, 5},
		{100, 4, 1.5, 5},
		{100, 4, 0.9, -1},
	} {
		if _, err := RecurrenceModel(c.n, c.z, c.q, c.rounds); err == nil {
			t.Errorf("RecurrenceModel(%v) accepted", c)
		}
	}
}

func TestRecurrenceModelShape(t *testing.T) {
	cum, err := RecurrenceModel(1000, 4, 0.9, 30)
	if err != nil {
		t.Fatal(err)
	}
	if cum[0] != 1 {
		t.Errorf("round 0 = %g", cum[0])
	}
	// Monotone, bounded by alive count.
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1]-1e-9 {
			t.Fatalf("not monotone at %d", i)
		}
		if cum[i] > 900+1e-9 {
			t.Fatalf("exceeds alive count at %d: %g", i, cum[i])
		}
	}
	// Plateau approaches n·q·S.
	s, _ := genfunc.PoissonReliability(4, 0.9)
	plateau := cum[len(cum)-1]
	if math.Abs(plateau-900*s) > 900*0.02 {
		t.Errorf("plateau %.1f, want ~%.1f", plateau, 900*s)
	}
	// Early phase is exponential-ish: round 2 ≈ 1 + z + z² ballpark.
	if cum[2] < 10 || cum[2] > 30 {
		t.Errorf("early growth cum[2] = %.1f", cum[2])
	}
}

func TestRecurrenceMatchesSimulatedTrace(t *testing.T) {
	// The mean simulated infection curve must track the recurrence
	// model round by round. Condition on outbreak by using enough runs
	// and comparing plateaus within a die-out allowance.
	n, z, q := 2000, 5.0, 0.9
	p := poissonParams(n, z, q)
	sim, err := MeanTraceRounds(p, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	model, err := RecurrenceModel(n, z, q, len(sim)-1)
	if err != nil {
		t.Fatal(err)
	}
	// The simulation mean includes ~(1-S) die-out runs, scaling the
	// whole curve by ≈ outbreak probability; compare shapes after
	// normalizing both plateaus.
	simPlat := sim[len(sim)-1]
	modPlat := model[len(model)-1]
	if simPlat <= 0 || modPlat <= 0 {
		t.Fatal("degenerate plateaus")
	}
	for r := 3; r < len(sim) && r < len(model); r++ {
		a := sim[r] / simPlat
		b := model[r] / modPlat
		if math.Abs(a-b) > 0.12 {
			t.Errorf("round %d: normalized sim %.3f vs model %.3f", r, a, b)
		}
	}
}

func TestRoundsToCoverage(t *testing.T) {
	r99, err := RoundsToCoverage(1000, 4, 1.0, 0.99, 50)
	if err != nil {
		t.Fatal(err)
	}
	// log-time spread: ~log_4(1000) ≈ 5 plus tail.
	if r99 < 4 || r99 > 15 {
		t.Errorf("rounds to 99%% coverage = %d", r99)
	}
	r50, err := RoundsToCoverage(1000, 4, 1.0, 0.5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r50 >= r99 {
		t.Errorf("50%% coverage (%d) not before 99%% (%d)", r50, r99)
	}
	if _, err := RoundsToCoverage(1000, 4, 1.0, 0, 50); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := RoundsToCoverage(1, 4, 1.0, 0.5, 50); err == nil {
		t.Error("invalid group accepted")
	}
}

func TestRoundsToCoverageGrowsLogarithmically(t *testing.T) {
	r1, _ := RoundsToCoverage(1000, 4, 1.0, 0.99, 100)
	r2, _ := RoundsToCoverage(100000, 4, 1.0, 0.99, 100)
	if r2 > r1+6 {
		t.Errorf("100x group size added %d rounds; expected O(log) growth", r2-r1)
	}
}

func TestMeanTraceRoundsDeterministic(t *testing.T) {
	p := poissonParams(300, 4, 0.9)
	a, err := MeanTraceRounds(p, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeanTraceRounds(p, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
	if _, err := MeanTraceRounds(p, 0, 1); err == nil {
		t.Error("zero runs accepted")
	}
}

func BenchmarkTraceRounds2000(b *testing.B) {
	p := poissonParams(2000, 4, 0.9)
	r := xrand.New(1)
	for i := 0; i < b.N; i++ {
		if _, err := TraceRounds(p, r); err != nil {
			b.Fatal(err)
		}
	}
}
