package core

import (
	"fmt"
	"runtime"
	"time"

	"gossipkit/internal/bitset"
	"gossipkit/internal/failure"
	"gossipkit/internal/obs"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

// shardSplit offsets the per-shard RNG split indices on the run's root
// stream (shard s draws from r.Split(shardSplit+s)); chosen to collide
// with no other split constant in the tree. Splitting never advances the
// parent, so the failure mask — drawn from r after the splits — is
// byte-identical across every shard count.
const shardSplit = 0x5a7d00

// ShardOptions parameterizes a sharded network execution.
type ShardOptions struct {
	// Shards is the shard-kernel count; values below 1 mean
	// runtime.GOMAXPROCS(0). The executor itself falls back to one shard
	// when the latency model has no positive floor (no lookahead — see
	// simnet.LatencyFloorer) or a shared Config.Tracer is installed.
	Shards int
	// Progress, if non-nil, observes every window barrier with the
	// barrier's virtual time and the total kernel events fired so far —
	// the live-progress source for single long runs. Called from the
	// coordinator goroutine.
	Progress func(events uint64, now sim.Time)
}

// EffectiveShards resolves the shard count opts-style callers should
// expect ExecuteOnNetworkSharded to use for a run of n members over cfg:
// GOMAXPROCS for requests below 1, clamped to n, and 1 whenever the
// configuration cannot shard (no positive latency floor, or a shared
// tracer).
func EffectiveShards(requested, n int, cfg simnet.Config) int {
	s := requested
	if s < 1 {
		s = runtime.GOMAXPROCS(0)
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	if s > 1 && (cfg.Tracer != nil || latencyFloor(cfg.Latency) <= 0) {
		return 1
	}
	return s
}

// LatencyFloor returns the model's guaranteed minimum delay, or 0 when it
// has none — the lookahead a conservative-PDES front end windows a sharded
// run with. Exported for sibling DES front ends (the streaming engine).
func LatencyFloor(m simnet.LatencyModel) time.Duration { return latencyFloor(m) }

// latencyFloor returns the model's guaranteed minimum delay, or 0 when it
// has none (nil models mean zero latency).
func latencyFloor(m simnet.LatencyModel) time.Duration {
	f, ok := m.(simnet.LatencyFloorer)
	if !ok {
		return 0
	}
	d, ok := f.LatencyFloor()
	if !ok || d < 0 {
		return 0
	}
	return d
}

// shardState is one shard's private slice of the run state. Everything
// here is written by the shard's worker goroutine during windows (and by
// the coordinator only while workers are parked); received is indexed by
// (id − base) so no two shards ever share a bitset word. The trailing pad
// keeps neighboring shards' hot counters off each other's cache lines.
type shardState struct {
	received  bitset.Bits
	targets   []int
	rng       *xrand.RNG
	probe     *obs.Probe
	delivered int
	msgs      int
	wasted    int
	dups      int
	upAtEnd   int
	delivUp   int
	spread    sim.Time
	lat       stats.Running
	_         [64]byte
}

// ShardArena pools the per-run state of sharded executions — the shard
// and control kernels, the sharded fabric, the failure mask, and every
// shard's bitsets and buffers — the sharded counterpart of NetArena. One
// arena serves many runs; it is single-goroutine state between runs (the
// execution itself fans out to the shard workers).
type ShardArena struct {
	shards   int
	kernels  []*sim.Kernel
	ctl      *sim.Kernel
	net      *simnet.ShardedNet
	mask     *failure.Mask
	states   []shardState
	msgBits  []*MessageBits // per-shard delivery matrices (streaming runs)
	nackBits []*MessageBits // per-shard pending-repair matrices (push-pull)
}

// NewShardArena returns an empty arena for the given shard count;
// buffers grow on first use.
func NewShardArena(shards int) *ShardArena {
	a := &ShardArena{mask: &failure.Mask{}, net: simnet.NewShardedNet()}
	a.ensure(shards)
	return a
}

// ensure sizes the arena for `shards` shard kernels, retaining pooled
// state when the count is unchanged.
func (a *ShardArena) ensure(shards int) {
	if a.shards == shards && a.ctl != nil {
		return
	}
	a.shards = shards
	for len(a.kernels) < shards {
		a.kernels = append(a.kernels, sim.New())
	}
	a.kernels = a.kernels[:shards]
	if a.ctl == nil {
		a.ctl = sim.New()
	}
	if cap(a.states) < shards {
		a.states = make([]shardState, shards)
	}
	a.states = a.states[:shards]
	for len(a.msgBits) < shards {
		a.msgBits = append(a.msgBits, nil)
	}
	a.msgBits = a.msgBits[:shards]
	for len(a.nackBits) < shards {
		a.nackBits = append(a.nackBits, nil)
	}
	a.nackBits = a.nackBits[:shards]
}

// ExecuteOnNetworkSharded runs one execution of the paper's algorithm on
// the conservative-PDES sharded runtime: members are partitioned into
// contiguous blocks across per-core shard kernels, shards advance in
// lookahead windows derived from the latency model's floor, and
// cross-shard messages cross at window barriers (see sim.ShardGroup and
// simnet.ShardedNet). The single-kernel ExecuteOnNetworkProbed is the
// equivalence oracle.
//
// Determinism contract:
//   - shards=1: byte-identical to ExecuteOnNetworkProbed for the same
//     (p, netCfg, r, inject) — same RNG layout (the run stream is r, the
//     network stream r.Split(0xfeed)), same event interleaving (the
//     control kernel is the shard kernel and the run is a plain drain).
//   - fixed shards>1: byte-identical across repeated runs and across
//     hosts — shard s draws from r.Split(shardSplit+s), windows are cut
//     at deterministic virtual times, and barriers flush the per-pair
//     buffers in a fixed order, so scheduling nondeterminism never
//     reaches the simulation.
//   - across shard counts: statistically pinned, not byte-identical —
//     the failure mask is identical (drawn from r, which splitting never
//     advances) but fanout and latency draws come from different
//     streams, so results agree in distribution (the equivalence tests
//     pin mean reliability across shard counts).
//
// The probe, when non-nil, fans out to per-shard child probes and
// adopts their merged telemetry (hop histograms are unavailable for
// shards>1: a cross-shard sender's hop count is unknown to the receiving
// shard). opts.Shards below 1 auto-selects GOMAXPROCS; executions whose
// latency model has no positive floor fall back to one shard.
func ExecuteOnNetworkSharded(p Params, netCfg simnet.Config, r *xrand.RNG, inject func(*NetRun), sa *ShardArena, probe *obs.Probe, opts ShardOptions) (NetResult, error) {
	if err := p.Validate(); err != nil {
		return NetResult{}, err
	}
	shards := EffectiveShards(opts.Shards, p.N, netCfg)
	if sa == nil {
		sa = NewShardArena(shards)
	} else {
		sa.ensure(shards)
	}
	kernels, ctl, sn, mask := sa.kernels, sa.ctl, sa.net, sa.mask
	if shards == 1 {
		// One shard: the control kernel is the shard kernel, so control
		// events interleave with deliveries exactly as on the single
		// kernel — the anchor of the byte-identical shards=1 contract.
		ctl = kernels[0]
	}
	group := sim.NewShardGroup(kernels, ctl, latencyFloor(netCfg.Latency))
	block := (p.N + shards - 1) / shards

	// RNG layout. Splits never advance r, so the mask draw below is
	// independent of the shard count.
	states := sa.states
	if shards == 1 {
		states[0].rng = r
	} else {
		for s := range states {
			states[s].rng = r.Split(shardSplit + uint64(s))
		}
	}
	sn.Prepare(shards, p.N, netCfg)
	group.Each(func(s int) {
		// Per-shard state is reset on the shard's own goroutine: the
		// kernel queue, the network's bitsets and pools, and the local
		// received bitset are first-touched by the topology that runs
		// them.
		st := &states[s]
		kernels[s].Reset()
		kernels[s].SetBudget(uint64(p.N) * 10000)
		sn.ResetShard(s, kernels[s], st.rng.Split(0xfeed))
		lo, hi := s*block, min((s+1)*block, p.N)
		st.received.Reset(hi - lo)
		st.delivered, st.msgs, st.wasted, st.dups = 0, 0, 0, 0
		st.upAtEnd, st.delivUp = 0, 0
		st.spread = 0
		st.lat = stats.Running{}
	})
	if shards > 1 {
		ctl.Reset()
	}
	p.drawMaskInto(mask, r)
	view := p.view()

	if probe != nil {
		if shards == 1 {
			states[0].probe = probe
			probe.Attach(sn.Shard(0), p.N, &states[0].delivered)
		} else {
			for s, child := range probe.ShardProbes(shards) {
				states[s].probe = child
				child.Attach(sn.Shard(s), p.N, &states[s].delivered)
			}
		}
	} else {
		for s := range states {
			states[s].probe = nil
		}
	}

	// forward and receive mirror the single-kernel executor line for
	// line; both run on shard s's goroutine (or with every worker parked).
	var forward func(s, self int)
	forward = func(s, self int) {
		st := &states[s]
		f := p.Fanout.Sample(st.rng)
		st.targets = view.SampleTargets(st.targets, self, f, st.rng)
		st.msgs += len(st.targets)
		st.probe.ObserveFanout(len(st.targets))
		for _, v := range st.targets {
			if !mask.Alive(v) {
				st.wasted++
			}
			sn.Shard(s).Send(simnet.NodeID(self), simnet.NodeID(v), nil)
		}
	}
	receive := func(s, id, from int, now sim.Time) {
		st := &states[s]
		st.received.Set(id - s*block)
		st.delivered++
		st.lat.Add(now.Seconds())
		if now > st.spread {
			st.spread = now
		}
		st.probe.ObserveFirstReceipt(id, from, now)
		forward(s, id)
	}
	for s := 0; s < shards; s++ {
		s := s
		st := &states[s]
		base := s * block
		sn.Shard(s).RegisterAll(func(now sim.Time, msg simnet.Message) {
			id := int(msg.To)
			if st.received.Get(id - base) {
				st.dups++
				return
			}
			receive(s, id, int(msg.From), now)
		})
	}
	group.Each(func(s int) {
		for id := s * block; id < min((s+1)*block, p.N); id++ {
			if !mask.Alive(id) {
				sn.Shard(s).Crash(simnet.NodeID(id))
			}
		}
	})

	if inject != nil {
		inject(&NetRun{
			Kernel: ctl,
			Net:    sn,
			View:   view,
			mask:   mask,
			hasReceived: func(id int) bool {
				s := id / block
				return states[s].received.Get(id - s*block)
			},
			delivered: func() int {
				total := 0
				for s := range states {
					total += states[s].delivered
				}
				return total
			},
			pending: func() int {
				n := ctl.Pending() + sn.Buffered()
				if shards > 1 {
					for _, k := range kernels {
						n += k.Pending()
					}
				}
				return n
			},
			publish: func(id int) {
				if id < 0 || id >= p.N || !sn.Up(simnet.NodeID(id)) || !mask.Alive(id) {
					return
				}
				s := id / block
				act := func(now sim.Time) {
					if states[s].received.Get(id - s*block) {
						forward(s, id) // re-gossip
						return
					}
					receive(s, id, -1, now)
				}
				if shards == 1 {
					act(ctl.Now())
					return
				}
				// The publish must execute on the owning shard's clock:
				// park it there at the control kernel's current time
				// (strictly ahead of the shard's clock, which stopped
				// before the barrier).
				now := ctl.Now()
				kernels[s].At(now, func() { act(now) })
			},
		})
	}

	// The source initiates at t=0 (workers not yet running, so seeding
	// shard-owned state from here is safe), mirroring the single-kernel
	// bootstrap: no latency sample for the source.
	if src := p.Source; !states[src/block].received.Get(src - (src/block)*block) {
		s := src / block
		states[s].received.Set(src - s*block)
		states[s].delivered++
		states[s].probe.ObserveSeed(src)
		forward(s, src)
	}

	var runErr error
	if shards == 1 {
		runErr = ctl.RunAll()
	} else {
		var onBarrier func(now sim.Time, fired uint64)
		if opts.Progress != nil {
			onBarrier = func(now sim.Time, fired uint64) { opts.Progress(fired, now) }
		}
		runErr = group.Run(sn.Flush, sn.Buffered, onBarrier)
	}
	if runErr != nil {
		return NetResult{}, fmt.Errorf("core: network execution aborted: %w", runErr)
	}
	if probe != nil {
		if shards == 1 {
			probe.Finish(ctl.Now())
		} else {
			for s := range states {
				states[s].probe.Finish(kernels[s].Now())
			}
			probe.AdoptShards()
		}
	}

	group.Each(func(s int) {
		st := &states[s]
		nw := sn.Shard(s)
		for id := s * block; id < min((s+1)*block, p.N); id++ {
			if nw.Up(simnet.NodeID(id)) {
				st.upAtEnd++
				if st.received.Get(id - s*block) {
					st.delivUp++
				}
			}
		}
	})

	res := NetResult{Result: Result{AliveCount: mask.AliveCount()}}
	for s := range states {
		st := &states[s]
		res.Delivered += st.delivered
		res.MessagesSent += st.msgs
		res.WastedOnFailed += st.wasted
		res.Duplicates += st.dups
		res.UpAtEnd += st.upAtEnd
		res.DeliveredUp += st.delivUp
		res.DeliveryLatency.Merge(st.lat)
		if d := st.spread.Duration(); d > res.SpreadTime {
			res.SpreadTime = d
		}
	}
	if res.AliveCount > 0 {
		res.Reliability = float64(res.Delivered) / float64(res.AliveCount)
	}
	if res.UpAtEnd > 0 {
		res.SurvivorReliability = float64(res.DeliveredUp) / float64(res.UpAtEnd)
	}
	res.Net = sn.Stats()
	return res, nil
}
