package core

import (
	"math"
	"testing"
	"time"

	"gossipkit/internal/genfunc"
	"gossipkit/internal/simnet"
	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

func successParams(n int, z, q float64, t, sims int) SuccessParams {
	return SuccessParams{
		Params:      poissonParams(n, z, q),
		Executions:  t,
		Simulations: sims,
	}
}

func TestSuccessParamsValidate(t *testing.T) {
	good := successParams(100, 4, 0.9, 5, 3)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := good
	bad.Executions = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero executions accepted")
	}
	bad = good
	bad.Simulations = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero simulations accepted")
	}
	bad = good
	bad.N = 0
	if err := bad.Validate(); err == nil {
		t.Error("inner params not validated")
	}
}

func TestRunSuccessHistogramAccounting(t *testing.T) {
	p := successParams(400, 4, 0.9, 10, 8)
	out, err := RunSuccess(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Total observations = simulations × alive members (exact mask:
	// 360 per simulation).
	want := int64(8 * 360)
	if out.ReceiptHistogram.Total() != want {
		t.Errorf("histogram total = %d, want %d", out.ReceiptHistogram.Total(), want)
	}
	if out.ReceiptHistogram.Bins() != 11 {
		t.Errorf("bins = %d, want 11", out.ReceiptHistogram.Bins())
	}
	if out.Simulations != 8 || out.Executions != 10 {
		t.Errorf("echo fields wrong: %+v", out)
	}
	if out.MeanExecutionReliability <= 0 || out.MeanExecutionReliability > 1 {
		t.Errorf("mean execution reliability = %g", out.MeanExecutionReliability)
	}
}

func TestRunSuccessMatchesBinomial(t *testing.T) {
	// The paper's Fig. 6 claim: X ~ B(t, p_r) where p_r is the
	// per-execution receipt probability. The honest empirical p_r is the
	// mean directed-execution reliability (≈ S² for Poisson, because of
	// early die-outs; see DESIGN.md A6); against that parameter the
	// receipt distribution must match in mean and be close in shape.
	p := successParams(2000, 4.0, 0.9, 20, 60)
	out, err := RunSuccess(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	rel := out.MeanExecutionReliability
	s, err := genfunc.PoissonReliability(4.0, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel-s*s) > 0.02 {
		t.Errorf("empirical p_r = %.4f, want ≈ S² = %.4f", rel, s*s)
	}
	// Empirical mean receipt count equals t·p_r by construction of p_r;
	// verify the accounting is consistent.
	var sum, tot float64
	for k := 0; k <= 20; k++ {
		c := float64(out.ReceiptHistogram.Count(k))
		sum += float64(k) * c
		tot += c
	}
	meanX := sum / tot
	if math.Abs(meanX-20*rel) > 0.15 {
		t.Errorf("mean X = %.3f, want t·p_r = %.3f", meanX, 20*rel)
	}
	// The shape is a near-spike at high k like the paper's figure.
	mode := 0
	for k := 1; k <= 20; k++ {
		if out.ReceiptHistogram.Count(k) > out.ReceiptHistogram.Count(mode) {
			mode = k
		}
	}
	if mode < 18 {
		t.Errorf("mode at %d, want near 20", mode)
	}
	// KS distance against B(20, p_r): die-out correlation fattens the
	// lower tail, so demand closeness but not perfection.
	obs := make([]int64, 21)
	for k := range obs {
		obs[k] = out.ReceiptHistogram.Count(k)
	}
	d, err := stats.KolmogorovSmirnov(obs, out.ReferenceBinomial(rel))
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.15 {
		t.Errorf("KS distance to B(20, %.4f) = %.4f", rel, d)
	}
}

func TestRunSuccessPaperOperatingPoints(t *testing.T) {
	// {f=4.0, q=0.9} and {f=6.0, q=0.6} share zq=3.6 and hence R; their
	// receipt distributions must be close to each other (paper's
	// observation), though not identical.
	a, err := RunSuccess(successParams(2000, 4.0, 0.9, 20, 40), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSuccess(successParams(2000, 6.0, 0.6, 20, 40), 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.MeanExecutionReliability-b.MeanExecutionReliability) > 0.02 {
		t.Errorf("reliabilities differ: %.4f vs %.4f",
			a.MeanExecutionReliability, b.MeanExecutionReliability)
	}
}

func TestRunSuccessDeterministic(t *testing.T) {
	p := successParams(300, 4, 0.8, 5, 10)
	a, err := RunSuccess(p, 17)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSuccess(p, 17)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 5; k++ {
		if a.ReceiptHistogram.Count(k) != b.ReceiptHistogram.Count(k) {
			t.Fatalf("histograms differ at bin %d", k)
		}
	}
	if a.SuccessRate != b.SuccessRate {
		t.Error("success rates differ")
	}
}

func TestRunSuccessResampleMaskLowersPerMemberCounts(t *testing.T) {
	// Ablation A3: with resampled masks a member is dead in ~1-q of the
	// executions, so mean X drops from t·R toward t·q·R (it cannot
	// receive while dead).
	fixed, err := RunSuccess(successParams(1000, 5, 0.6, 10, 30), 5)
	if err != nil {
		t.Fatal(err)
	}
	resampled := successParams(1000, 5, 0.6, 10, 30)
	resampled.ResampleMask = true
	res, err := RunSuccess(resampled, 5)
	if err != nil {
		t.Fatal(err)
	}
	meanOf := func(o SuccessOutcome) float64 {
		var sum, tot float64
		for k := 0; k <= 10; k++ {
			c := float64(o.ReceiptHistogram.Count(k))
			sum += float64(k) * c
			tot += c
		}
		return sum / tot
	}
	mFixed, mRes := meanOf(fixed), meanOf(res)
	if mRes >= mFixed-0.5 {
		t.Errorf("resampled mean X %.3f not clearly below fixed %.3f", mRes, mFixed)
	}
}

func TestSuccessRateTracksEq5(t *testing.T) {
	// With t executions, Pr(per-member miss) = (1-R)^t; group success
	// needs all ~n·q members to hit. For t large enough the success rate
	// must approach 1; for t=1 with R<1 it must be ~0 at this scale.
	pLow := successParams(500, 5, 0.9, 1, 20)
	low, err := RunSuccess(pLow, 9)
	if err != nil {
		t.Fatal(err)
	}
	if low.SuccessRate > 0.2 {
		t.Errorf("t=1 success rate %.2f unexpectedly high", low.SuccessRate)
	}
	pHigh := successParams(500, 5, 0.9, 12, 20)
	high, err := RunSuccess(pHigh, 10)
	if err != nil {
		t.Fatal(err)
	}
	if high.SuccessRate < 0.8 {
		t.Errorf("t=12 success rate %.2f unexpectedly low", high.SuccessRate)
	}
}

func TestChiSquareIdentifiesParameter(t *testing.T) {
	// Member receipts are correlated within an execution (a die-out
	// hits everyone at once), so with ~10^5 member-observations the
	// chi-square will formally reject even the best binomial. What must
	// hold is that the statistic strongly prefers the empirical p_r over
	// wrong parameters — that is the sense in which the paper's
	// "simulation tallies with B(20, 0.967)" survives scrutiny.
	p := successParams(2000, 4.0, 0.9, 50, 50)
	out, err := RunSuccess(p, 77)
	if err != nil {
		t.Fatal(err)
	}
	relStat, dof, _, err := out.ChiSquareAgainst(out.MeanExecutionReliability)
	if err != nil {
		t.Fatal(err)
	}
	if dof < 1 {
		t.Errorf("dof = %d", dof)
	}
	for _, wrong := range []float64{0.80, 0.99} {
		wrongStat, _, _, err := out.ChiSquareAgainst(wrong)
		if err != nil {
			t.Fatal(err)
		}
		if wrongStat < relStat*2 {
			t.Errorf("chi-square does not separate p=%.2f (stat %.1f) from empirical p_r (stat %.1f)",
				wrong, wrongStat, relStat)
		}
	}
}

func TestRequiredExecutions(t *testing.T) {
	p := poissonParams(2000, 4.0, 0.9)
	tmin, err := RequiredExecutions(p, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if tmin < 2 || tmin > 3 {
		t.Errorf("required executions = %d, want 2-3 (paper says 3 with rounded R)", tmin)
	}
	// The returned t must actually achieve the target under Eq. 5.
	pred, _ := Predict(p)
	if got := stats.AtLeastOne(pred.Reliability, tmin); got < 0.999 {
		t.Errorf("t=%d achieves only %.6f", tmin, got)
	}
	// Subcritical: no t suffices.
	sub := poissonParams(2000, 4.0, 0.1)
	if _, err := RequiredExecutions(sub, 0.999); err == nil {
		t.Error("subcritical RequiredExecutions accepted")
	}
}

func TestRunSuccessRejectsInvalid(t *testing.T) {
	p := successParams(0, 4, 0.9, 5, 5)
	if _, err := RunSuccess(p, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

// ---------------------------------------------------------------------------
// Network-backed execution

func TestExecuteOnNetworkMatchesFastPath(t *testing.T) {
	// Zero latency, no loss: the DES execution must produce the same
	// reliability distribution as the fast path.
	p := poissonParams(1000, 4, 0.9)
	var netAcc, fastAcc stats.Running
	for seed := uint64(0); seed < 15; seed++ {
		r := xrand.New(seed)
		nres, err := ExecuteOnNetwork(p, simnet.Config{}, r)
		if err != nil {
			t.Fatal(err)
		}
		netAcc.Add(nres.Reliability)
		fres, err := ExecuteOnce(p, xrand.New(seed+1000))
		if err != nil {
			t.Fatal(err)
		}
		fastAcc.Add(fres.Reliability)
	}
	if math.Abs(netAcc.Mean()-fastAcc.Mean()) > 0.04 {
		t.Errorf("network %.4f vs fast %.4f", netAcc.Mean(), fastAcc.Mean())
	}
}

func TestExecuteOnNetworkLatencyPropagates(t *testing.T) {
	p := poissonParams(300, 5, 1)
	r := xrand.New(3)
	res, err := ExecuteOnNetwork(p, simnet.Config{
		Latency: simnet.ConstantLatency{D: 10 * time.Millisecond},
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpreadTime < 20*time.Millisecond {
		t.Errorf("spread time %v too small for multi-hop spread", res.SpreadTime)
	}
	if res.SpreadTime > time.Second {
		t.Errorf("spread time %v too large (O(log n) hops expected)", res.SpreadTime)
	}
	if res.DeliveryLatency.N() != res.Delivered-1 {
		t.Errorf("latency samples %d, delivered %d", res.DeliveryLatency.N(), res.Delivered)
	}
}

func TestExecuteOnNetworkLossReducesReliability(t *testing.T) {
	p := poissonParams(1000, 3, 1)
	var clean, lossy stats.Running
	for seed := uint64(0); seed < 10; seed++ {
		c, err := ExecuteOnNetwork(p, simnet.Config{}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		clean.Add(c.Reliability)
		l, err := ExecuteOnNetwork(p, simnet.Config{Loss: simnet.BernoulliLoss{P: 0.4}}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		lossy.Add(l.Reliability)
	}
	if lossy.Mean() >= clean.Mean()-0.05 {
		t.Errorf("40%% loss did not reduce reliability: %.4f vs %.4f", lossy.Mean(), clean.Mean())
	}
	// Message loss behaves like fanout thinning: z_eff = z(1-p), here
	// 1.8, so reliability should stay positive (still supercritical).
	if lossy.Mean() < 0.2 {
		t.Errorf("lossy reliability %.4f collapsed below theory", lossy.Mean())
	}
}

func TestExecuteOnNetworkInvalid(t *testing.T) {
	p := poissonParams(1, 4, 0.9) // invalid N
	if _, err := ExecuteOnNetwork(p, simnet.Config{}, xrand.New(1)); err == nil {
		t.Error("invalid params accepted")
	}
}

func BenchmarkRunSuccessFig6(b *testing.B) {
	p := successParams(2000, 4.0, 0.9, 20, 10)
	for i := 0; i < b.N; i++ {
		if _, err := RunSuccess(p, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteOnNetwork1000(b *testing.B) {
	p := poissonParams(1000, 4, 0.9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ExecuteOnNetwork(p, simnet.Config{}, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
