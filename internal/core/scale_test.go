package core

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"gossipkit/internal/dist"
	"gossipkit/internal/membership"
	"gossipkit/internal/obs"
	"gossipkit/internal/simnet"
	"gossipkit/internal/topology"
	"gossipkit/internal/xrand"
)

// scaleN picks the group size for the scale tests: 10⁵ normally, 10⁴ under
// -short so the suite stays snappy in CI's race runs.
func scaleN(t *testing.T) int {
	if testing.Short() {
		return 10_000
	}
	return 100_000
}

// TestExecuteOnNetworkAtScale runs the DES executor at n=10⁵ (the paper
// stops at 5000) and checks the arena path is deterministic: a recycled
// arena reproduces a fresh run exactly.
func TestExecuteOnNetworkAtScale(t *testing.T) {
	n := scaleN(t)
	p := Params{N: n, Fanout: dist.NewPoisson(6), AliveRatio: 0.9}
	cfg := simnet.Config{Latency: simnet.UniformLatency{Lo: time.Millisecond, Hi: 10 * time.Millisecond}}

	fresh, err := ExecuteOnNetwork(p, cfg, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Reliability < 0.99 {
		t.Errorf("n=%d reliability %.4f, want near-total delivery at fanout 6", n, fresh.Reliability)
	}
	if fresh.Net.Sent < int64(n) {
		t.Errorf("suspiciously few sends: %d", fresh.Net.Sent)
	}

	arena := NewNetArena()
	// Dirty the arena with a different-shaped run first.
	if _, err := ExecuteOnNetworkArena(Params{N: 500, Fanout: dist.NewFixed(3), AliveRatio: 1}, simnet.Config{}, xrand.New(5), nil, arena); err != nil {
		t.Fatal(err)
	}
	reused, err := ExecuteOnNetworkArena(p, cfg, xrand.New(11), nil, arena)
	if err != nil {
		t.Fatal(err)
	}
	if fresh != reused {
		t.Errorf("recycled arena diverged:\n fresh:  %+v\n reused: %+v", fresh, reused)
	}
}

// TestExecuteOnNetworkSteadyStateAllocs is the end-to-end allocation guard
// proving the arena path makes zero O(n)-sized allocations: with a warm
// arena, a whole n=10⁵ execution (≈ 6·10⁵ messages) must stay within a
// small constant number of allocations AND a small constant number of
// bytes. The byte bound is the sharp edge — before the bitset/pooled-mask
// work, the per-run mask redraw alone allocated ~1.6 MB at n=10⁵; any
// O(n) allocation sneaking back in blows the budget by orders of
// magnitude.
func TestExecuteOnNetworkSteadyStateAllocs(t *testing.T) {
	n := scaleN(t)
	p := Params{N: n, Fanout: dist.NewPoisson(6), AliveRatio: 0.9}
	cfg := simnet.Config{Latency: simnet.UniformLatency{Lo: time.Millisecond, Hi: 10 * time.Millisecond}}
	arena := NewNetArena()
	r := xrand.New(23)
	run := func() {
		if _, err := ExecuteOnNetworkArena(p, cfg, r, nil, arena); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the arena (queue, slot pool, buffers grow once)
	run() // second pass lets calendar buckets finish sizing
	allocs := testing.AllocsPerRun(3, run)
	// ~12 fixed allocations per run (RNG split, interface boxes,
	// closures); the bound just has to be vastly below one per message.
	if allocs > 64 {
		t.Errorf("n=%d execution makes %.0f allocations per run, want a per-run constant (<= 64)", n, allocs)
	}
	var before, after runtime.MemStats
	const rounds = 3
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	perRun := (after.TotalAlloc - before.TotalAlloc) / rounds
	// The fixed per-run allocations total well under 4 KB; one O(n) slice
	// at n=10⁵ would be ≥ 100 KB. (ReadMemStats itself allocates nothing.)
	if perRun > 16<<10 {
		t.Errorf("n=%d execution allocates %d bytes per run, want an n-independent constant (<= 16KiB)", n, perRun)
	}
}

// TestNetArenaPoolsFailureMask pins the satellite fix on its own: the
// arena's pooled failure mask must (a) leave results byte-identical to a
// fresh mask draw, and (b) actually be pooled — the mask redraw was the
// last O(n) per-run allocation, so runs at two very different n through
// the same arena must not differ in allocated bytes by anything close to
// the Δn of a boolean mask.
func TestNetArenaPoolsFailureMask(t *testing.T) {
	cfg := simnet.Config{Latency: simnet.UniformLatency{Lo: time.Millisecond, Hi: 10 * time.Millisecond}}
	for _, kind := range []MaskKind{ExactCount, Bernoulli} {
		p := Params{N: 20_000, Fanout: dist.NewPoisson(5), AliveRatio: 0.7, MaskKind: kind}
		fresh, err := ExecuteOnNetwork(p, cfg, xrand.New(99))
		if err != nil {
			t.Fatal(err)
		}
		arena := NewNetArena()
		// Dirty the arena's mask with a different shape first.
		dirty := Params{N: 777, Fanout: dist.NewFixed(3), AliveRatio: 0.5, MaskKind: kind}
		if _, err := ExecuteOnNetworkArena(dirty, simnet.Config{}, xrand.New(5), nil, arena); err != nil {
			t.Fatal(err)
		}
		pooled, err := ExecuteOnNetworkArena(p, cfg, xrand.New(99), nil, arena)
		if err != nil {
			t.Fatal(err)
		}
		if fresh != pooled {
			t.Errorf("%v: pooled mask diverged:\n fresh:  %+v\n pooled: %+v", kind, fresh, pooled)
		}
		// Warm, then require the mask redraw to be allocation-free.
		r := xrand.New(1)
		for i := 0; i < 2; i++ {
			if _, err := ExecuteOnNetworkArena(p, cfg, r, nil, arena); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(3, func() {
			if _, err := ExecuteOnNetworkArena(p, cfg, r, nil, arena); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 64 {
			t.Errorf("%v: warm arena run makes %.0f allocations; mask pooling is broken", kind, allocs)
		}
	}
}

// TestTimingEquivalentAtScale exercises the paper's "the two failure cases
// are treated the same" claim at n=10⁴, two decades past the n=100..1000
// unit tests.
func TestTimingEquivalentAtScale(t *testing.T) {
	p := Params{N: 10_000, Fanout: dist.NewPoisson(5), AliveRatio: 0.85}
	for seed := uint64(1); seed <= 3; seed++ {
		same, err := TimingEquivalent(p, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !same {
			t.Errorf("seed %d: BeforeReceive and AfterReceive spreads diverge at n=10⁴", seed)
		}
	}
}

// BenchmarkExecuteOnNetworkMillion is the n=10⁶ feasibility check, 200×
// the paper's ceiling: ~5.4M messages through the flat queue in one
// iteration. Kept out of the default test run (benchmarks only execute
// under -bench) so the race-enabled CI test job stays fast.
//
// It doubles as the probes-off alloc guard: after one untimed warm-up
// run, each iteration must stay within 25 mallocs — the zero-overhead
// contract of the telemetry layer is that a nil probe leaves this exact
// path untouched, and CI fails the benchmark if an observability hook
// starts allocating on it. The probed variant below measures what
// telemetry actually costs when switched on.
func BenchmarkExecuteOnNetworkMillion(b *testing.B) {
	benchmarkMillion(b, nil)
}

// BenchmarkExecuteOnNetworkMillionProbed is the same execution observed
// by a pooled probe (curves + histograms, no ring tracer): the overhead
// quoted in README/ROADMAP is this benchmark vs the probes-off one.
func BenchmarkExecuteOnNetworkMillionProbed(b *testing.B) {
	benchmarkMillion(b, obs.New(obs.Options{}))
}

func benchmarkMillion(b *testing.B, probe *obs.Probe) {
	p := Params{N: 1_000_000, Fanout: dist.NewPoisson(5), AliveRatio: 0.9}
	cfg := simnet.Config{Latency: simnet.UniformLatency{Lo: time.Millisecond, Hi: 10 * time.Millisecond}}
	arena := NewNetArena()
	r := xrand.New(1)
	run := func() NetResult {
		res, err := ExecuteOnNetworkProbed(p, cfg, r, nil, arena, probe)
		if err != nil {
			b.Fatal(err)
		}
		// Eq. 11 gives R ≈ 0.988 for Poisson(5) at q=0.9; just guard
		// against a broken spread.
		if res.Reliability < 0.95 {
			b.Fatalf("reliability %.4f at n=10⁶", res.Reliability)
		}
		return res
	}
	run() // untimed warm-up: arena queue/buffers (and probe pools) grow once
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var sent int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent += run().Net.Sent
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	perIter := (after.Mallocs - before.Mallocs) / uint64(b.N)
	b.ReportMetric(float64(perIter), "warm-allocs/op")
	b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "msgs/sec")
	// The alloc guard applies to the probes-off path only: a probe's
	// Metrics snapshots may allocate, the unobserved hot path must not.
	if probe == nil && perIter > 25 {
		b.Fatalf("probes-off warm n=10⁶ execution makes %d mallocs/op, want <= 25 — an observability hook is allocating on the unobserved hot path", perIter)
	}
}

// BenchmarkExecuteOnNetworkTenMillion records the current single-core
// ceiling: n=10⁷ (2000× the paper's n=5000), ~5.4·10⁷ messages per
// execution through the calendar queue with bitset run state. One
// iteration peaks around ~2.5 GB of pooled queue/arena state; it is kept
// out of CI (the smoke step runs only the n=10⁶ benchmark).
func BenchmarkExecuteOnNetworkTenMillion(b *testing.B) {
	p := Params{N: 10_000_000, Fanout: dist.NewPoisson(5), AliveRatio: 0.9}
	cfg := simnet.Config{Latency: simnet.UniformLatency{Lo: time.Millisecond, Hi: 10 * time.Millisecond}}
	arena := NewNetArena()
	r := xrand.New(1)
	var sent int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ExecuteOnNetworkArena(p, cfg, r, nil, arena)
		if err != nil {
			b.Fatal(err)
		}
		if res.Reliability < 0.95 {
			b.Fatalf("reliability %.4f at n=10⁷", res.Reliability)
		}
		sent += res.Net.Sent
	}
	b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "msgs/sec")
}

// BenchmarkExecuteOnNetworkShardedMillion compares the conservative-PDES
// sharded runtime against the single kernel at n=10⁶. The shards=1
// sub-benchmark is the overhead claim in README/ROADMAP — the sharded
// entry point running on one shard must stay within ~5% of
// BenchmarkExecuteOnNetworkMillion (it executes the identical event
// stream; the window loop is the only extra cost). Higher shard counts
// quote the multicore scaling on the host running the benchmark.
func BenchmarkExecuteOnNetworkShardedMillion(b *testing.B) {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	for _, shards := range counts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchmarkSharded(b, 1_000_000, shards)
		})
	}
}

// BenchmarkExecuteOnNetworkShardedTenMillion is the tentpole headline:
// n=10⁷ on every core, ~5.4·10⁷ messages per execution across the shard
// kernels. Compare against BenchmarkExecuteOnNetworkTenMillion (the
// single-core ceiling, ~84s/op when it was recorded) for the speedup on
// a given host. Like its single-kernel sibling it is kept out of CI —
// one iteration needs a few GB of pooled shard state.
func BenchmarkExecuteOnNetworkShardedTenMillion(b *testing.B) {
	benchmarkSharded(b, 10_000_000, 0) // 0 = one shard per core
}

func benchmarkSharded(b *testing.B, n, shards int) {
	p := Params{N: n, Fanout: dist.NewPoisson(5), AliveRatio: 0.9}
	cfg := simnet.Config{Latency: simnet.UniformLatency{Lo: time.Millisecond, Hi: 10 * time.Millisecond}}
	eff := EffectiveShards(shards, n, cfg)
	arena := NewShardArena(eff)
	r := xrand.New(1)
	var sent int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ExecuteOnNetworkSharded(p, cfg, r, nil, arena, nil, ShardOptions{Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		if res.Reliability < 0.95 {
			b.Fatalf("reliability %.4f at n=%d shards=%d", res.Reliability, n, eff)
		}
		sent += res.Net.Sent
	}
	b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "msgs/sec")
	b.ReportMetric(float64(eff), "shards")
}

// BenchmarkExecuteOnNetwork is the headline hot-path benchmark: one full
// event-driven execution per iteration, with the arena recycled the way
// sweep workers recycle it. The msgs/sec metric is the kernel's sustained
// event throughput (each message is one typed event).
func BenchmarkExecuteOnNetwork(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := Params{N: n, Fanout: dist.NewPoisson(5), AliveRatio: 0.9}
			cfg := simnet.Config{Latency: simnet.UniformLatency{Lo: time.Millisecond, Hi: 10 * time.Millisecond}}
			arena := NewNetArena()
			r := xrand.New(1)
			var sent int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ExecuteOnNetworkArena(p, cfg, r, nil, arena)
				if err != nil {
					b.Fatal(err)
				}
				sent += res.Net.Sent
			}
			b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "msgs/sec")
		})
	}
}

// BenchmarkExecuteOnNetworkTopology measures the overlay-lookup overhead of
// gossiping over a k-out topology at n=10⁵ against the uniform full view on
// the same configuration. At k = ⌈log₂ n⌉ (17 here) target selection does
// the same number of draws either way — the overlay path only adds the
// per-member live-prefix slice lookup and index mapping — so the budget is
// ≤10% over the uniform baseline's ns/op. The overlay is built outside the
// timer: construction is a per-run cost the scenario layer amortizes, not
// part of the per-event hot path this benchmark guards.
func BenchmarkExecuteOnNetworkTopology(b *testing.B) {
	const n = 100_000
	k := int(math.Ceil(math.Log2(float64(n))))
	cfg := simnet.Config{Latency: simnet.UniformLatency{Lo: time.Millisecond, Hi: 10 * time.Millisecond}}
	run := func(b *testing.B, view membership.View) {
		p := Params{N: n, Fanout: dist.NewPoisson(5), AliveRatio: 0.9, View: view}
		arena := NewNetArena()
		r := xrand.New(1)
		var sent int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ExecuteOnNetworkArena(p, cfg, r, nil, arena)
			if err != nil {
				b.Fatal(err)
			}
			sent += res.Net.Sent
		}
		b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "msgs/sec")
	}
	b.Run("uniform", func(b *testing.B) { run(b, nil) })
	b.Run(fmt.Sprintf("kout_k=%d", k), func(b *testing.B) {
		ov, err := topology.Spec{Kind: topology.KOut, K: k}.Build(n, xrand.New(2))
		if err != nil {
			b.Fatal(err)
		}
		run(b, ov)
	})
}
