package core

import (
	"math"
	"testing"

	"gossipkit/internal/dist"
	"gossipkit/internal/failure"
	"gossipkit/internal/genfunc"
	"gossipkit/internal/membership"
	"gossipkit/internal/xrand"
)

func poissonParams(n int, z, q float64) Params {
	return Params{
		N:          n,
		Fanout:     dist.NewPoisson(z),
		AliveRatio: q,
		Source:     0,
	}
}

func TestParamsValidate(t *testing.T) {
	good := poissonParams(100, 4, 0.9)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"tiny group", func(p *Params) { p.N = 1 }},
		{"nil fanout", func(p *Params) { p.Fanout = nil }},
		{"negative q", func(p *Params) { p.AliveRatio = -0.1 }},
		{"q > 1", func(p *Params) { p.AliveRatio = 1.5 }},
		{"NaN q", func(p *Params) { p.AliveRatio = math.NaN() }},
		{"bad source", func(p *Params) { p.Source = 100 }},
		{"negative source", func(p *Params) { p.Source = -1 }},
		{"bad timing", func(p *Params) { p.Timing = failure.Timing(9) }},
		{"bad mask kind", func(p *Params) { p.MaskKind = MaskKind(9) }},
		{"view mismatch", func(p *Params) { p.View = membership.NewFullView(7) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p := good
			c.mut(&p)
			if err := p.Validate(); err == nil {
				t.Error("invalid params accepted")
			}
		})
	}
}

func TestExecuteOnceBasicInvariants(t *testing.T) {
	p := poissonParams(500, 4, 0.8)
	r := xrand.New(1)
	for i := 0; i < 20; i++ {
		res, err := ExecuteOnce(p, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.AliveCount != 400 {
			t.Fatalf("alive = %d, want 400 (exact mask)", res.AliveCount)
		}
		if res.Delivered < 1 || res.Delivered > res.AliveCount {
			t.Fatalf("delivered = %d of %d", res.Delivered, res.AliveCount)
		}
		if res.Reliability != float64(res.Delivered)/float64(res.AliveCount) {
			t.Fatal("reliability inconsistent with counts")
		}
		if res.MessagesSent < res.Delivered-1 {
			t.Fatalf("messages %d < delivered-1 %d", res.MessagesSent, res.Delivered-1)
		}
		if res.WastedOnFailed > res.MessagesSent {
			t.Fatal("wasted exceeds sent")
		}
		if res.Delivered > 1 && res.Rounds < 1 {
			t.Fatal("spread happened but rounds = 0")
		}
	}
}

func TestExecuteOnceFullReliabilityNoFailuresHighFanout(t *testing.T) {
	// Fixed fanout 20 with no failures on 200 nodes reaches everyone
	// with overwhelming probability.
	p := Params{N: 200, Fanout: dist.NewFixed(20), AliveRatio: 1, Source: 3}
	r := xrand.New(5)
	res, err := ExecuteOnce(p, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability != 1 {
		t.Errorf("reliability = %g, want 1", res.Reliability)
	}
}

func TestExecuteOnceZeroFanoutDiesImmediately(t *testing.T) {
	p := Params{N: 100, Fanout: dist.NewFixed(0), AliveRatio: 1, Source: 0}
	r := xrand.New(7)
	res, err := ExecuteOnce(p, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 || res.MessagesSent != 0 || res.Rounds != 0 {
		t.Errorf("zero fanout: %+v", res)
	}
}

func TestExecuteOnceSubcritical(t *testing.T) {
	// q=0.1 with z=4 is below q_c=0.25: spread must die out quickly.
	p := poissonParams(2000, 4, 0.1)
	r := xrand.New(9)
	var worst float64
	for i := 0; i < 20; i++ {
		res, err := ExecuteOnce(p, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reliability > worst {
			worst = res.Reliability
		}
	}
	if worst > 0.1 {
		t.Errorf("subcritical reliability reached %g", worst)
	}
}

func TestSimulationMatchesAnalyticModel(t *testing.T) {
	// The core validation of the paper (Figs. 4-5): the simulated
	// giant-component reliability tracks the Eq. 11 prediction.
	for _, c := range []struct {
		n    int
		z, q float64
	}{
		{1000, 4.0, 0.9},
		{1000, 6.0, 0.6},
		{1000, 3.0, 1.0},
		{2000, 5.0, 0.5},
		{5000, 2.5, 0.8},
	} {
		p := poissonParams(c.n, c.z, c.q)
		est, err := EstimateComponentReliability(p, 40, 42)
		if err != nil {
			t.Fatal(err)
		}
		want, err := genfunc.PoissonReliability(c.z, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.Mean-want) > 0.02 {
			t.Errorf("n=%d z=%g q=%g: measured %.4f, model %.4f", c.n, c.z, c.q, est.Mean, want)
		}
		// The directed source reach sits below the giant fraction by
		// the die-out mass (ablation A6).
		if est.MeanSourceReach > est.Mean+0.02 {
			t.Errorf("n=%d z=%g q=%g: source reach %.4f above giant %.4f",
				c.n, c.z, c.q, est.MeanSourceReach, est.Mean)
		}
	}
}

func TestDirectedReachEqualsSTimesOutbreak(t *testing.T) {
	// Ablation A6: the protocol-true directed reach averages
	// S·Pr(outbreak) ≈ S² for Poisson fanout (the spread dies near the
	// source with probability ≈ 1−S), strictly below the paper's S.
	z, q := 4.0, 0.9
	p := poissonParams(2000, z, q)
	est, err := EstimateReliability(p, 400, 13)
	if err != nil {
		t.Fatal(err)
	}
	s, err := genfunc.PoissonReliability(z, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-s*s) > 0.02 {
		t.Errorf("directed mean %.4f, want S² = %.4f", est.Mean, s*s)
	}
	if est.Mean >= s-0.01 {
		t.Errorf("directed mean %.4f should sit below S = %.4f", est.Mean, s)
	}
	// The SourceInGiant frequency of the component semantics is S too.
	cEst, err := EstimateComponentReliability(p, 400, 14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cEst.SourceInGiantRate-s) > 0.03 {
		t.Errorf("source-in-giant rate %.4f, want S = %.4f", cEst.SourceInGiantRate, s)
	}
}

func TestFixedFanoutMatchesForwardSpreadNotUndirectedModel(t *testing.T) {
	// Ablation A1: for Fixed fanout the directed forward-spread solver
	// (which depends only on the mean) is the right predictor of gossip
	// reach; the undirected NSW giant component differs measurably at
	// moderate fanout and q=1 (undirected: S=1 for Fixed(3); directed
	// spread: y = 1-e^{-3y} ≈ 0.941).
	p := Params{N: 5000, Fanout: dist.NewFixed(3), AliveRatio: 1, Source: 0}
	est, err := EstimateReliability(p, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	forward, err := genfunc.ForwardReach(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	undirected, err := genfunc.New(dist.NewFixed(3)).Reliability(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-forward) > 0.02 {
		t.Errorf("measured %.4f, forward-spread %.4f", est.Mean, forward)
	}
	if math.Abs(est.Mean-undirected) < 0.02 {
		t.Errorf("measured %.4f should differ from undirected model %.4f", est.Mean, undirected)
	}
}

func TestTimingEquivalence(t *testing.T) {
	// Paper §4.1: crash-before-receive and crash-after-receive are
	// treated the same; the delivered sets must be identical run by run.
	for seed := uint64(0); seed < 25; seed++ {
		p := poissonParams(300, 4, 0.7)
		same, err := TimingEquivalent(p, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !same {
			t.Fatalf("timings diverged at seed %d", seed)
		}
	}
}

func TestMaskKindsAgree(t *testing.T) {
	// Exact and Bernoulli masks give statistically indistinguishable
	// giant-component reliability at n=2000.
	pe := poissonParams(2000, 4, 0.8)
	pb := pe
	pb.MaskKind = Bernoulli
	ee, err := EstimateComponentReliability(pe, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := EstimateComponentReliability(pb, 40, 12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ee.Mean-eb.Mean) > 0.02 {
		t.Errorf("exact %.4f vs bernoulli %.4f", ee.Mean, eb.Mean)
	}
}

func TestExecuteWithMaskValidation(t *testing.T) {
	p := poissonParams(100, 4, 0.9)
	r := xrand.New(1)
	badSize := failure.NewMask(50)
	if _, err := ExecuteWithMask(p, badSize, r); err == nil {
		t.Error("mask size mismatch accepted")
	}
	deadSource := failure.NewMask(100)
	deadSource.Kill(0)
	if _, err := ExecuteWithMask(p, deadSource, r); err == nil {
		t.Error("dead source accepted")
	}
	ok := failure.NewMask(100)
	if _, err := ExecuteWithMask(p, ok, r); err != nil {
		t.Errorf("valid mask rejected: %v", err)
	}
}

func TestEstimateReliabilityDeterministic(t *testing.T) {
	p := poissonParams(500, 4, 0.8)
	a, err := EstimateReliability(p, 30, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateReliability(p, 30, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different estimates:\n%+v\n%+v", a, b)
	}
	c, err := EstimateReliability(p, 30, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean == c.Mean && a.StdDev == c.StdDev {
		t.Error("different seeds produced identical estimates")
	}
}

func TestEstimateReliabilityFields(t *testing.T) {
	p := poissonParams(500, 4, 0.8)
	est, err := EstimateReliability(p, 25, 5)
	if err != nil {
		t.Fatal(err)
	}
	if est.Runs != 25 {
		t.Errorf("runs = %d", est.Runs)
	}
	if est.Min > est.Mean || est.Mean > est.Max {
		t.Errorf("min/mean/max ordering: %g %g %g", est.Min, est.Mean, est.Max)
	}
	if est.CI95 <= 0 || est.MeanMessages <= 0 || est.MeanRounds <= 0 {
		t.Errorf("degenerate aggregates: %+v", est)
	}
	if _, err := EstimateReliability(p, 0, 1); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestPredict(t *testing.T) {
	p := poissonParams(1000, 4, 0.9)
	pred, err := Predict(p)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := genfunc.PoissonReliability(4, 0.9)
	if math.Abs(pred.Reliability-want) > 1e-8 {
		t.Errorf("prediction %.8f, want %.8f", pred.Reliability, want)
	}
	if math.Abs(pred.CriticalRatio-0.25) > 1e-9 {
		t.Errorf("qc = %g", pred.CriticalRatio)
	}
	if !pred.Supercritical || pred.MeanFanout != 4 {
		t.Errorf("prediction fields: %+v", pred)
	}
	sub := poissonParams(1000, 4, 0.2)
	predSub, err := Predict(sub)
	if err != nil {
		t.Fatal(err)
	}
	if predSub.Supercritical || predSub.Reliability != 0 {
		t.Errorf("subcritical prediction: %+v", predSub)
	}
}

func TestPartialViewReliabilityClose(t *testing.T) {
	// Ablation A5: SCAMP-style partial views with mean size ~2·ln(n)
	// should approximate full-view gossip reliability (views are large
	// enough to keep target selection near-uniform).
	r := xrand.New(33)
	n := 1000
	pv := membership.NewPartialViews(n, 1, r)
	pv.Shuffle(10, 3, r)
	pFull := poissonParams(n, 4, 0.9)
	pPart := pFull
	pPart.View = pv
	full, err := EstimateReliability(pFull, 30, 21)
	if err != nil {
		t.Fatal(err)
	}
	part, err := EstimateReliability(pPart, 30, 22)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Mean-part.Mean) > 0.08 {
		t.Errorf("full-view %.4f vs partial-view %.4f", full.Mean, part.Mean)
	}
}

func TestRoundsGrowLogarithmically(t *testing.T) {
	// Gossip spreads in O(log n) hops; doubling n four times should add
	// only a few rounds.
	est1, err := EstimateReliability(poissonParams(500, 6, 1), 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	est2, err := EstimateReliability(poissonParams(8000, 6, 1), 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if est2.MeanRounds > est1.MeanRounds*3 {
		t.Errorf("rounds grew too fast: %g -> %g", est1.MeanRounds, est2.MeanRounds)
	}
}

func TestMaskKindString(t *testing.T) {
	if ExactCount.String() != "exact" || Bernoulli.String() != "bernoulli" {
		t.Error("MaskKind strings wrong")
	}
	if MaskKind(7).String() != "MaskKind(7)" {
		t.Error("unknown MaskKind string wrong")
	}
}

func BenchmarkExecuteOnce1000(b *testing.B) {
	p := poissonParams(1000, 4, 0.9)
	r := xrand.New(1)
	ex := newExecutor(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ex.run(p.drawMask(r), r)
	}
}

func BenchmarkExecuteOnce5000(b *testing.B) {
	p := poissonParams(5000, 4, 0.9)
	r := xrand.New(1)
	ex := newExecutor(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ex.run(p.drawMask(r), r)
	}
}

func BenchmarkEstimateReliabilityParallel(b *testing.B) {
	p := poissonParams(1000, 4, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateReliability(p, 20, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
