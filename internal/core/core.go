package core

import (
	"errors"
	"fmt"

	"gossipkit/internal/dist"
	"gossipkit/internal/failure"
	"gossipkit/internal/genfunc"
	"gossipkit/internal/membership"
	"gossipkit/internal/xrand"
)

// MaskKind selects how the alive set for an execution is drawn from q.
type MaskKind int

const (
	// ExactCount puts exactly ⌊n·q⌋ members alive (paper §4.1: "the
	// number of nonfailed nodes equals n*q"). The default.
	ExactCount MaskKind = iota
	// Bernoulli makes each member alive independently with probability q
	// (the percolation model's own assumption).
	Bernoulli
)

func (k MaskKind) String() string {
	switch k {
	case ExactCount:
		return "exact"
	case Bernoulli:
		return "bernoulli"
	default:
		return fmt.Sprintf("MaskKind(%d)", int(k))
	}
}

// Params configures the gossip model Gossip(n, P, q).
type Params struct {
	// N is the group size (n members).
	N int
	// Fanout is the fanout distribution P.
	Fanout dist.Distribution
	// AliveRatio is the nonfailed member ratio q in [0, 1].
	AliveRatio float64
	// Source is the member that initiates gossiping; it never fails.
	Source int
	// Timing is when failed members crash (before or after receiving);
	// the two are observationally equivalent for the spread.
	Timing failure.Timing
	// MaskKind selects the alive-set sampler; default ExactCount.
	MaskKind MaskKind
	// View is the membership view targets are drawn from; nil means a
	// full view over N members (the paper's setting).
	View membership.View
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("core: group size %d too small", p.N)
	}
	if p.Fanout == nil {
		return errors.New("core: nil fanout distribution")
	}
	if p.AliveRatio < 0 || p.AliveRatio > 1 || p.AliveRatio != p.AliveRatio {
		return fmt.Errorf("core: alive ratio %g outside [0,1]", p.AliveRatio)
	}
	if p.Source < 0 || p.Source >= p.N {
		return fmt.Errorf("core: source %d out of range [0,%d)", p.Source, p.N)
	}
	if p.View != nil && p.View.N() != p.N {
		return fmt.Errorf("core: view size %d != group size %d", p.View.N(), p.N)
	}
	switch p.Timing {
	case failure.BeforeReceive, failure.AfterReceive:
	default:
		return fmt.Errorf("core: unknown crash timing %v", p.Timing)
	}
	switch p.MaskKind {
	case ExactCount, Bernoulli:
	default:
		return fmt.Errorf("core: unknown mask kind %v", p.MaskKind)
	}
	return nil
}

func (p Params) view() membership.View {
	if p.View != nil {
		return p.View
	}
	return membership.NewFullView(p.N)
}

// drawMask samples the alive set for one execution.
func (p Params) drawMask(r *xrand.RNG) *failure.Mask {
	if p.MaskKind == Bernoulli {
		return failure.BernoulliMask(p.N, p.AliveRatio, p.Source, r)
	}
	return failure.ExactMask(p.N, p.AliveRatio, p.Source, r)
}

// drawMaskInto redraws a pooled mask in place, consuming the same random
// stream as drawMask so pooled and fresh runs are byte-identical.
func (p Params) drawMaskInto(m *failure.Mask, r *xrand.RNG) {
	if p.MaskKind == Bernoulli {
		m.FillBernoulli(p.N, p.AliveRatio, p.Source, r)
		return
	}
	m.FillExact(p.N, p.AliveRatio, p.Source, r)
}

// Result reports the outcome of one execution of the gossiping algorithm.
type Result struct {
	// AliveCount is the number of nonfailed members in this execution.
	AliveCount int
	// Delivered is the number of nonfailed members (including the
	// source) that received m at least once.
	Delivered int
	// Reliability is Delivered/AliveCount — the paper's R(q, P) for one
	// execution.
	Reliability float64
	// MessagesSent is the total number of gossip messages sent.
	MessagesSent int
	// WastedOnFailed counts messages addressed to failed members.
	WastedOnFailed int
	// Duplicates counts messages delivered to members that already had m.
	Duplicates int
	// Rounds is the forwarding depth (hops from the source to the last
	// newly-infected member).
	Rounds int
}

// ExecuteOnce runs one execution of the general gossiping algorithm with a
// freshly drawn failure mask, consuming randomness from r.
func ExecuteOnce(p Params, r *xrand.RNG) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	return newExecutor(p).run(p.drawMask(r), r), nil
}

// ExecuteWithMask runs one execution against a caller-supplied failure
// mask (the success protocol reuses one mask across executions). The mask
// must have length N and keep the source alive.
func ExecuteWithMask(p Params, mask *failure.Mask, r *xrand.RNG) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if mask.N() != p.N {
		return Result{}, fmt.Errorf("core: mask size %d != group size %d", mask.N(), p.N)
	}
	if !mask.Alive(p.Source) {
		return Result{}, errors.New("core: source is failed in supplied mask")
	}
	return newExecutor(p).run(mask, r), nil
}

// executor holds the reusable per-worker buffers for executions. One
// executor serves many runs of the same Params (same N and view), which
// keeps the Monte-Carlo inner loop allocation-free.
type executor struct {
	params   Params
	view     membership.View
	received []bool
	depth    []int32
	queue    []int32
	targets  []int
}

// newExecutor allocates buffers for p. p must already be validated.
func newExecutor(p Params) *executor {
	return &executor{
		params:   p,
		view:     p.view(),
		received: make([]bool, p.N),
		depth:    make([]int32, p.N),
		queue:    make([]int32, 0, p.N),
		targets:  make([]int, 0, 16),
	}
}

// run is the heart of the reproduction: a queue-based simulation of the
// spread. Members are processed in BFS order; each alive member, on first
// receipt, draws a fanout and forwards. Failed members absorb messages
// without forwarding — under BeforeReceive they are counted as never
// receiving, under AfterReceive as receiving once; neither affects the set
// of alive members reached, which the tests verify.
//
// After run returns, e.delivered() lists the alive members that received m
// (including the source), valid until the next run.
func (e *executor) run(mask *failure.Mask, r *xrand.RNG) Result {
	p := e.params
	res := Result{AliveCount: mask.AliveCount()}

	for i := range e.received {
		e.received[i] = false
		e.depth[i] = 0
	}
	e.queue = e.queue[:0]

	e.received[p.Source] = true
	e.queue = append(e.queue, int32(p.Source))
	res.Delivered = 1

	for head := 0; head < len(e.queue); head++ {
		u := int(e.queue[head])
		f := p.Fanout.Sample(r)
		e.targets = e.view.SampleTargets(e.targets, u, f, r)
		res.MessagesSent += len(e.targets)
		for _, v := range e.targets {
			if !mask.Alive(v) {
				res.WastedOnFailed++
				if p.Timing == failure.BeforeReceive {
					continue // crashed before it could receive
				}
				// AfterReceive: the failed member absorbs the
				// message (first receipt only) but never
				// forwards.
				if !e.received[v] {
					e.received[v] = true
					e.depth[v] = e.depth[u] + 1
				} else {
					res.Duplicates++
				}
				continue
			}
			if e.received[v] {
				res.Duplicates++
				continue
			}
			e.received[v] = true
			e.depth[v] = e.depth[u] + 1
			if int(e.depth[v]) > res.Rounds {
				res.Rounds = int(e.depth[v])
			}
			res.Delivered++
			e.queue = append(e.queue, int32(v))
		}
	}
	if res.AliveCount > 0 {
		res.Reliability = float64(res.Delivered) / float64(res.AliveCount)
	}
	return res
}

// delivered returns the alive members that received m in the last run,
// in BFS order starting with the source. The slice is reused by the next
// run.
func (e *executor) delivered() []int32 { return e.queue }

// ---------------------------------------------------------------------------
// Analytic predictions

// Prediction bundles the model's analytic outputs for a parameter set.
type Prediction struct {
	// Reliability is R(q, P): the giant-component size among nonfailed
	// members (paper Eq. 4 / Eq. 11).
	Reliability float64
	// CriticalRatio is q_c = 1/G1'(1) (paper Eq. 3).
	CriticalRatio float64
	// MeanFanout is E[P], for reference.
	MeanFanout float64
	// Supercritical reports whether q > q_c.
	Supercritical bool
}

// Predict evaluates the analytic model for p.
func Predict(p Params) (Prediction, error) {
	if err := p.Validate(); err != nil {
		return Prediction{}, err
	}
	m := genfunc.New(p.Fanout)
	rel, err := m.Reliability(p.AliveRatio)
	if err != nil {
		return Prediction{}, err
	}
	qc := m.CriticalRatio()
	return Prediction{
		Reliability:   rel,
		CriticalRatio: qc,
		MeanFanout:    p.Fanout.Mean(),
		Supercritical: p.AliveRatio > qc,
	}, nil
}
