package core

import (
	"context"
	"fmt"

	"gossipkit/internal/runpool"
	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

// Estimate summarizes a Monte-Carlo reliability estimation.
type Estimate struct {
	// Runs is the number of independent executions.
	Runs int
	// Mean is the average per-execution reliability (the estimator of
	// R(q, P)).
	Mean float64
	// StdDev is the sample standard deviation across executions.
	StdDev float64
	// CI95 is the half-width of the 95% confidence interval on Mean.
	CI95 float64
	// Min and Max are the extreme per-execution reliabilities.
	Min, Max float64
	// MeanMessages is the average number of gossip messages per
	// execution.
	MeanMessages float64
	// MeanRounds is the average forwarding depth per execution.
	MeanRounds float64
}

// RunObserver streams completed executions: it is called once per run, in
// run order (run 0, 1, 2, ...) regardless of worker count, from whichever
// worker completed the ordered prefix.
type RunObserver func(run int, res Result)

// EstimateReliability runs `runs` independent executions of the algorithm
// and returns aggregate statistics; see EstimateReliabilityCtx.
func EstimateReliability(p Params, runs int, seed uint64) (Estimate, error) {
	return EstimateReliabilityCtx(context.Background(), p, runs, seed, 0, nil)
}

// EstimateReliabilityCtx runs `runs` independent executions of the
// algorithm on a worker pool and returns aggregate statistics of the
// directed source reach. Run i consumes the RNG stream split at index i
// and results are reduced in run order, so the estimate is identical for
// any worker count (workers <= 0 means GOMAXPROCS). A context cancellation
// aborts the sweep promptly, returning ctx.Err(); observe, when non-nil,
// streams per-run results in deterministic run order.
func EstimateReliabilityCtx(ctx context.Context, p Params, runs int, seed uint64, workers int, observe RunObserver) (Estimate, error) {
	if err := p.Validate(); err != nil {
		return Estimate{}, err
	}
	if runs < 1 {
		return Estimate{}, fmt.Errorf("core: run count %d < 1", runs)
	}
	root := xrand.New(seed)
	workers = runpool.Count(workers, runs)
	exs := make([]*executor, workers)
	// Streaming reduction in run order: identical float accumulation order
	// to a post-hoc loop over a full result buffer (so the estimate stays
	// worker-count-invariant) while keeping only out-of-order completions
	// live instead of all `runs` results.
	var rel, msgs, rnds stats.Running
	err := runpool.RunOrdered(ctx, runs, workers, func(w, run int) (Result, error) {
		ex := exs[w]
		if ex == nil {
			ex = newExecutor(p)
			exs[w] = ex
		}
		r := root.Split(uint64(run))
		return ex.run(p.drawMask(r), r), nil
	}, func(run int, res Result) {
		rel.Add(res.Reliability)
		msgs.Add(float64(res.MessagesSent))
		rnds.Add(float64(res.Rounds))
		if observe != nil {
			observe(run, res)
		}
	})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{
		Runs:         rel.N(),
		Mean:         rel.Mean(),
		StdDev:       rel.StdDev(),
		CI95:         rel.CI95(),
		Min:          rel.Min(),
		Max:          rel.Max(),
		MeanMessages: msgs.Mean(),
		MeanRounds:   rnds.Mean(),
	}, nil
}
