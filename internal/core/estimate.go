package core

import (
	"fmt"
	"runtime"
	"sync"

	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

// Estimate summarizes a Monte-Carlo reliability estimation.
type Estimate struct {
	// Runs is the number of independent executions.
	Runs int
	// Mean is the average per-execution reliability (the estimator of
	// R(q, P)).
	Mean float64
	// StdDev is the sample standard deviation across executions.
	StdDev float64
	// CI95 is the half-width of the 95% confidence interval on Mean.
	CI95 float64
	// Min and Max are the extreme per-execution reliabilities.
	Min, Max float64
	// MeanMessages is the average number of gossip messages per
	// execution.
	MeanMessages float64
	// MeanRounds is the average forwarding depth per execution.
	MeanRounds float64
}

// EstimateReliability runs `runs` independent executions of the algorithm
// and returns aggregate statistics. Replications are distributed over
// min(GOMAXPROCS, runs) workers; results are identical for a given seed
// regardless of parallelism because each run uses the RNG stream split at
// its own index.
func EstimateReliability(p Params, runs int, seed uint64) (Estimate, error) {
	if err := p.Validate(); err != nil {
		return Estimate{}, err
	}
	if runs < 1 {
		return Estimate{}, fmt.Errorf("core: run count %d < 1", runs)
	}
	root := xrand.New(seed)
	workers := runtime.GOMAXPROCS(0)
	if workers > runs {
		workers = runs
	}

	type acc struct {
		rel  stats.Running
		msgs stats.Running
		rnds stats.Running
	}
	accs := make([]acc, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := &accs[w]
			ex := newExecutor(p)
			for run := w; run < runs; run += workers {
				r := root.Split(uint64(run))
				res := ex.run(p.drawMask(r), r)
				a.rel.Add(res.Reliability)
				a.msgs.Add(float64(res.MessagesSent))
				a.rnds.Add(float64(res.Rounds))
			}
		}(w)
	}
	wg.Wait()

	var rel, msgs, rnds stats.Running
	for i := range accs {
		rel.Merge(accs[i].rel)
		msgs.Merge(accs[i].msgs)
		rnds.Merge(accs[i].rnds)
	}
	return Estimate{
		Runs:         rel.N(),
		Mean:         rel.Mean(),
		StdDev:       rel.StdDev(),
		CI95:         rel.CI95(),
		Min:          rel.Min(),
		Max:          rel.Max(),
		MeanMessages: msgs.Mean(),
		MeanRounds:   rnds.Mean(),
	}, nil
}
