package core

import "testing"

// TestMessageBitsSegmented exercises the segment-pooled delivery matrix
// across segment boundaries: with a wide row (stride 1024 words) a segment
// holds 256 rows, so 600 messages span three segments, the last a sized
// tail. Set/Get/Unset/CountRow must behave exactly like one flat matrix.
func TestMessageBitsSegmented(t *testing.T) {
	const msgs, width = 600, 65536
	var b MessageBits
	b.Reset(msgs, width)
	if got := len(b.segs); got != 3 {
		t.Fatalf("segments = %d for %d×%d, want 3", got, msgs, width)
	}
	if tail := len(b.segs[2]); tail != (msgs-512)*b.stride {
		t.Errorf("tail segment = %d words, want %d (sized to used rows)", tail, (msgs-512)*b.stride)
	}

	// A deterministic scatter touching every segment, both edges of rows,
	// and the exact segment-boundary rows (255/256, 511/512).
	type pt struct{ m, id int }
	pts := []pt{
		{0, 0}, {0, 63}, {0, 64}, {0, width - 1},
		{255, 17}, {256, 17}, {511, width - 2}, {512, 0},
		{599, width - 1}, {300, 40000},
	}
	for _, p := range pts {
		b.Set(p.m, p.id)
	}
	for _, p := range pts {
		if !b.Get(p.m, p.id) {
			t.Errorf("Get(%d, %d) = false after Set", p.m, p.id)
		}
	}
	// Neighbors stay clear: rows never share words across the boundary.
	if b.Get(255, 18) || b.Get(256, 16) || b.Get(512, 1) || b.Get(511, width-1) {
		t.Error("neighboring bits leaked across rows or segments")
	}
	if got := b.CountRow(0); got != 4 {
		t.Errorf("CountRow(0) = %d, want 4", got)
	}
	b.Unset(0, 64)
	if b.Get(0, 64) || b.CountRow(0) != 3 {
		t.Errorf("Unset(0, 64) left Get=%v CountRow=%d, want false/3", b.Get(0, 64), b.CountRow(0))
	}
}

// TestMessageBitsPooledReuse pins the warm-arena contract: reshaping a
// matrix reuses segments whose capacity fits and clears every reachable
// bit, and a tiny matrix allocates only the words it uses.
func TestMessageBitsPooledReuse(t *testing.T) {
	var b MessageBits
	b.Reset(600, 65536)
	b.Set(599, 1)
	b.Set(0, 0)
	seg0 := &b.segs[0][0]

	b.Reset(300, 65536) // smaller: first segment reused, tail resized
	if &b.segs[0][0] != seg0 {
		t.Error("reshape reallocated a segment whose capacity fit")
	}
	for m := 0; m < 300; m += 7 {
		for id := 0; id < 65536; id += 1009 {
			if b.Get(m, id) {
				t.Fatalf("stale bit survived reshape at (%d, %d)", m, id)
			}
		}
	}

	b.Reset(10, 64) // tiny: one segment of exactly 10 words
	if len(b.segs) != 1 || len(b.segs[0]) != 10 {
		t.Errorf("10×64 matrix = %d segments, first %d words; want 1 segment of 10 words",
			len(b.segs), len(b.segs[0]))
	}
	b.Set(9, 63)
	if !b.Get(9, 63) || b.CountRow(9) != 1 {
		t.Error("tiny-matrix Set/Get/CountRow broken")
	}

	b.Reset(0, 0) // empty matrix: no segments, no panics from sizing
	if len(b.segs) != 0 {
		t.Errorf("0×0 matrix kept %d segments, want 0", len(b.segs))
	}
}
