package core

import (
	"testing"
	"testing/quick"

	"gossipkit/internal/dist"
	"gossipkit/internal/failure"
	"gossipkit/internal/xrand"
)

// randomParams decodes arbitrary fuzz bytes into valid Params, exercising
// every distribution family, mask kind, and crash timing.
func randomParams(a, b, c, d uint16) Params {
	n := 2 + int(a%400)
	q := float64(b%101) / 100
	var fan dist.Distribution
	switch c % 6 {
	case 0:
		fan = dist.NewPoisson(float64(c%80) / 10)
	case 1:
		fan = dist.NewFixed(int(c % 8))
	case 2:
		fan = dist.NewGeometric(0.1 + float64(c%9)/10)
	case 3:
		fan = dist.NewUniformRange(0, int(c%10))
	case 4:
		fan = dist.NewBinomial(int(c%12), 0.5)
	default:
		fan = dist.NewNegBinomial(1+int(c%3), 0.3+float64(c%6)/10)
	}
	p := Params{
		N:          n,
		Fanout:     fan,
		AliveRatio: q,
		Source:     int(d) % n,
	}
	if d%2 == 1 {
		p.Timing = failure.AfterReceive
	}
	if d%4 >= 2 {
		p.MaskKind = Bernoulli
	}
	return p
}

// TestFuzzExecuteInvariants checks that every valid configuration executes
// without panics and satisfies the structural invariants of a run.
func TestFuzzExecuteInvariants(t *testing.T) {
	r := xrand.New(fuzzSeed())
	f := func(a, b, c, d uint16) bool {
		p := randomParams(a, b, c, d)
		if err := p.Validate(); err != nil {
			t.Logf("unexpected invalid params: %v", err)
			return false
		}
		res, err := ExecuteOnce(p, r)
		if err != nil {
			t.Logf("execute error: %v", err)
			return false
		}
		switch {
		case res.AliveCount < 1 || res.AliveCount > p.N:
			t.Logf("alive %d of %d", res.AliveCount, p.N)
			return false
		case res.Delivered < 1 || res.Delivered > res.AliveCount:
			t.Logf("delivered %d of %d", res.Delivered, res.AliveCount)
			return false
		case res.Reliability < 0 || res.Reliability > 1:
			t.Logf("reliability %g", res.Reliability)
			return false
		case res.WastedOnFailed > res.MessagesSent:
			t.Logf("wasted %d > sent %d", res.WastedOnFailed, res.MessagesSent)
			return false
		case res.MessagesSent < res.Delivered-1:
			t.Logf("sent %d < delivered-1 %d", res.MessagesSent, res.Delivered-1)
			return false
		case res.Rounds < 0 || (res.Delivered > 1 && res.Rounds < 1):
			t.Logf("rounds %d with delivered %d", res.Rounds, res.Delivered)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestFuzzComponentInvariants does the same for the giant-component
// semantics, additionally checking consistency between the two metrics.
func TestFuzzComponentInvariants(t *testing.T) {
	r := xrand.New(fuzzSeed() + 1)
	f := func(a, b, c, d uint16) bool {
		p := randomParams(a, b, c, d)
		res, err := ComponentReliability(p, r)
		if err != nil {
			t.Logf("component error: %v", err)
			return false
		}
		switch {
		case res.GiantSize < 0 || res.GiantSize > res.AliveCount:
			t.Logf("giant %d of %d", res.GiantSize, res.AliveCount)
			return false
		case res.Reliability < 0 || res.Reliability > 1:
			return false
		case res.SourceReach < 1 || res.SourceReach > res.AliveCount:
			t.Logf("source reach %d of %d", res.SourceReach, res.AliveCount)
			return false
		case res.SourceInGiant && res.SourceReach < res.GiantSize:
			t.Logf("in-giant flag inconsistent: reach %d < giant %d", res.SourceReach, res.GiantSize)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestFuzzSuccessAccounting verifies the success protocol's histogram
// accounting for arbitrary small configurations.
func TestFuzzSuccessAccounting(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		p := SuccessParams{
			Params:       randomParams(a, b, c, d),
			Executions:   1 + int(a%6),
			Simulations:  1 + int(b%4),
			ResampleMask: d%8 >= 4,
		}
		out, err := RunSuccess(p, uint64(c)+1)
		if err != nil {
			t.Logf("success error: %v", err)
			return false
		}
		if out.ReceiptHistogram.Bins() != p.Executions+1 {
			return false
		}
		// Total member-observations is simulations × alive members of
		// each simulation; with exact masks that's deterministic.
		if p.MaskKind == ExactCount && !p.ResampleMask {
			alive := int64(p.Simulations) * int64(maxInt(1, int(float64(p.N)*p.AliveRatio)))
			if out.ReceiptHistogram.Total() != alive {
				t.Logf("histogram total %d, want %d", out.ReceiptHistogram.Total(), alive)
				return false
			}
		}
		if out.SuccessRate < 0 || out.SuccessRate > 1 {
			return false
		}
		if out.MeanExecutionReliability < 0 || out.MeanExecutionReliability > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fuzzSeed pins the fuzz RNG so failures reproduce.
func fuzzSeed() uint64 { return 0xF022 }
