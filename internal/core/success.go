package core

import (
	"context"
	"fmt"

	"gossipkit/internal/runpool"
	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

// SuccessParams configures the repeated-execution success protocol
// S(q, P, t): the source gossips the same message t times; a member is
// satisfied once it has received the message in at least one execution
// (paper §4.2(2) and §5.2).
type SuccessParams struct {
	Params
	// Executions is t, the number of repetitions (the paper uses 20).
	Executions int
	// Simulations is the number of independent simulations, each with
	// its own failure mask (the paper uses 100).
	Simulations int
	// ResampleMask draws a fresh failure mask before every execution
	// instead of fixing it per simulation. The paper's Binomial analysis
	// (X ~ B(t, R)) corresponds to a fixed mask per simulation — each
	// execution then re-randomizes only the gossip — so false is the
	// default; true is ablation A3 in DESIGN.md.
	ResampleMask bool
}

// Validate checks the parameters.
func (p SuccessParams) Validate() error {
	if err := p.Params.Validate(); err != nil {
		return err
	}
	if p.Executions < 1 {
		return fmt.Errorf("core: executions %d < 1", p.Executions)
	}
	if p.Simulations < 1 {
		return fmt.Errorf("core: simulations %d < 1", p.Simulations)
	}
	return nil
}

// SuccessOutcome aggregates the success-protocol measurements that the
// paper's Figs. 6–7 report.
type SuccessOutcome struct {
	// ReceiptHistogram counts, over all (simulation, nonfailed member)
	// pairs, the number X of executions in which the member received m.
	// Bin k = number of member-observations with X = k, k in
	// 0..Executions. The paper compares this with B(t, R).
	ReceiptHistogram *stats.Histogram
	// SuccessRate is the fraction of simulations in which EVERY
	// nonfailed member received m at least once across the t executions
	// — the empirical Pr(S(q, P, t)).
	SuccessRate float64
	// MeanExecutionReliability is the average single-execution
	// reliability observed, the empirical p_r of Eq. 5.
	MeanExecutionReliability float64
	// Simulations and Executions echo the configuration.
	Simulations, Executions int
}

// ReferenceBinomial returns the PMF of B(Executions, p) for overlaying on
// ReceiptHistogram, as the paper does in Figs. 6–7 with p = R(q, P).
func (o SuccessOutcome) ReferenceBinomial(p float64) []float64 {
	return stats.BinomialPMFs(o.Executions, p)
}

// ChiSquareAgainst tests the receipt histogram against B(Executions, p);
// it returns the statistic, degrees of freedom, and p-value.
func (o SuccessOutcome) ChiSquareAgainst(p float64) (float64, int, float64, error) {
	obs := make([]int64, o.Executions+1)
	for k := range obs {
		obs[k] = o.ReceiptHistogram.Count(k)
	}
	return stats.ChiSquare(obs, o.ReferenceBinomial(p), 5)
}

// SuccessSim summarizes one simulation of the success protocol: t
// executions over one failure mask.
type SuccessSim struct {
	// Counts is the receipt histogram of this simulation: Counts[k]
	// nonfailed members received m in exactly k of the t executions.
	Counts []int64
	// Success reports whether every nonfailed member received m at least
	// once.
	Success bool
	// MeanReliability is the mean per-execution reliability observed in
	// this simulation.
	MeanReliability float64
}

// SuccessObserver streams completed simulations in simulation order,
// regardless of worker count.
type SuccessObserver func(sim int, s SuccessSim)

// RunSuccess runs the success protocol and aggregates the receipt-count
// distribution; see RunSuccessCtx.
func RunSuccess(p SuccessParams, seed uint64) (SuccessOutcome, error) {
	return RunSuccessCtx(context.Background(), p, seed, 0, nil)
}

// RunSuccessCtx runs the success protocol's p.Simulations independent
// simulations on a worker pool with per-simulation RNG streams, so the
// outcome depends only on the seed and is identical for any worker count
// (workers <= 0 means GOMAXPROCS). Context cancellation aborts promptly
// with ctx.Err(); observe, when non-nil, streams per-simulation summaries
// in deterministic simulation order.
func RunSuccessCtx(ctx context.Context, p SuccessParams, seed uint64, workers int, observe SuccessObserver) (SuccessOutcome, error) {
	if err := p.Validate(); err != nil {
		return SuccessOutcome{}, err
	}
	root := xrand.New(seed)
	workers = runpool.Count(workers, p.Simulations)

	type worker struct {
		ex       *executor
		receipts []int32
	}
	ws := make([]*worker, workers)
	// Streaming reduction in simulation order: identical accumulation
	// order to a post-hoc loop over a full result buffer, without holding
	// all p.Simulations receipt histograms live.
	hist := stats.NewHistogram(p.Executions + 1)
	successes := 0
	var relSum float64
	err := runpool.RunOrdered(ctx, p.Simulations, workers,
		func(w, s int) (oneSim, error) {
			wk := ws[w]
			if wk == nil {
				wk = &worker{ex: newExecutor(p.Params), receipts: make([]int32, p.N)}
				ws[w] = wk
			}
			return runOneSimulation(p, wk.ex, wk.receipts, root.Split(uint64(s))), nil
		}, func(s int, sr oneSim) {
			for k, c := range sr.counts {
				for i := int64(0); i < c; i++ {
					hist.Add(k)
				}
			}
			if sr.success {
				successes++
			}
			relSum += sr.relTotal
			if observe != nil {
				observe(s, SuccessSim{
					Counts:          sr.counts,
					Success:         sr.success,
					MeanReliability: sr.relTotal / float64(p.Executions),
				})
			}
		})
	if err != nil {
		return SuccessOutcome{}, err
	}
	return SuccessOutcome{
		ReceiptHistogram:         hist,
		SuccessRate:              float64(successes) / float64(p.Simulations),
		MeanExecutionReliability: relSum / float64(p.Simulations*p.Executions),
		Simulations:              p.Simulations,
		Executions:               p.Executions,
	}, nil
}

type oneSim struct {
	counts   []int64
	success  bool
	relTotal float64
}

// runOneSimulation performs t executions over one failure mask (or a fresh
// mask per execution when resampling) and tallies per-member receipt
// counts. ex and receipts are reusable scratch owned by the calling worker.
func runOneSimulation(p SuccessParams, ex *executor, receipts []int32, r *xrand.RNG) oneSim {
	for i := range receipts {
		receipts[i] = 0
	}
	mask := p.drawMask(r)
	out := oneSim{counts: make([]int64, p.Executions+1)}
	for t := 0; t < p.Executions; t++ {
		if p.ResampleMask && t > 0 {
			mask = p.drawMask(r)
		}
		res := ex.run(mask, r)
		out.relTotal += res.Reliability
		for _, v := range ex.delivered() {
			receipts[v]++
		}
	}
	// Tally X over members that are nonfailed under the simulation's
	// (final) mask; with a fixed mask this is exactly the paper's
	// nonfailed population.
	success := true
	for i := 0; i < p.N; i++ {
		if !mask.Alive(i) {
			continue
		}
		x := int(receipts[i])
		if x > p.Executions {
			x = p.Executions
		}
		out.counts[x]++
		if x == 0 {
			success = false
		}
	}
	out.success = success
	return out
}

// RequiredExecutions returns the paper's Eq. 6: the minimum t such that
// Pr(S(q, P, t)) = 1 − (1 − R)^t reaches the target probability, where R is
// the model's predicted reliability for p.
func RequiredExecutions(p Params, successTarget float64) (int, error) {
	pred, err := Predict(p)
	if err != nil {
		return 0, err
	}
	if pred.Reliability <= 0 {
		return 0, fmt.Errorf("core: predicted reliability is 0 (q=%g below critical %g); no t suffices",
			p.AliveRatio, pred.CriticalRatio)
	}
	return stats.MinTrials(successTarget, pred.Reliability)
}
