// Package failure implements the paper's fail-stop failure model: a member
// either works correctly for the whole execution or has crashed (before
// receiving the message, or after receiving it but before forwarding — the
// paper treats the two cases identically, and core's tests verify that the
// spread is indeed the same).
//
// The central object is the Mask: which members are alive for one execution.
// Two generators are provided, matching two readings of the paper's
// "nonfailed member ratio q":
//
//   - ExactMask: exactly ⌊n·q⌋ alive members ("it is trivial that the number
//     of nonfailed nodes equals n*q", paper §4.1) — the default for figure
//     reproduction.
//   - BernoulliMask: each member alive independently with probability q —
//     the percolation model's own assumption.
//
// For large n the two are interchangeable; both keep the source alive
// (the paper assumes the source never fails).
package failure

import (
	"fmt"

	"gossipkit/internal/xrand"
)

// Timing says when a failed member crashes relative to the message.
// The paper's two cases; they are observationally equivalent for the
// spread because a failed member never forwards either way.
type Timing int

const (
	// BeforeReceive crashes the member before it can receive anything.
	BeforeReceive Timing = iota
	// AfterReceive crashes the member after it receives the message but
	// before it forwards (it absorbs one delivery).
	AfterReceive
)

func (t Timing) String() string {
	switch t {
	case BeforeReceive:
		return "before-receive"
	case AfterReceive:
		return "after-receive"
	default:
		return fmt.Sprintf("Timing(%d)", int(t))
	}
}

// Mask records which members are alive during one execution.
type Mask struct {
	alive []bool
	count int
}

// NewMask returns a mask with all n members alive.
func NewMask(n int) *Mask {
	if n < 0 {
		panic(fmt.Sprintf("failure: negative group size %d", n))
	}
	m := &Mask{alive: make([]bool, n), count: n}
	for i := range m.alive {
		m.alive[i] = true
	}
	return m
}

// ExactMask returns a mask with exactly max(1, ⌊n·q⌋) alive members chosen
// uniformly at random, always including protect (the source). q must be in
// [0, 1]; even q=0 keeps the protected source alive, matching the paper.
func ExactMask(n int, q float64, protect int, r *xrand.RNG) *Mask {
	checkArgs(n, q, protect)
	target := int(float64(n) * q)
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	m := &Mask{alive: make([]bool, n)}
	m.alive[protect] = true
	m.count = 1
	if target > 1 {
		// Choose target-1 of the other n-1 members.
		extra := r.SampleExcluding(nil, n, target-1, protect)
		for _, id := range extra {
			m.alive[id] = true
		}
		m.count = target
	}
	return m
}

// BernoulliMask returns a mask where every member other than protect is
// alive independently with probability q; protect is always alive.
func BernoulliMask(n int, q float64, protect int, r *xrand.RNG) *Mask {
	checkArgs(n, q, protect)
	m := &Mask{alive: make([]bool, n)}
	for i := range m.alive {
		if i == protect || r.Bool(q) {
			m.alive[i] = true
			m.count++
		}
	}
	return m
}

func checkArgs(n int, q float64, protect int) {
	if n < 1 {
		panic(fmt.Sprintf("failure: invalid group size %d", n))
	}
	if q < 0 || q > 1 || q != q {
		panic(fmt.Sprintf("failure: ratio %g outside [0,1]", q))
	}
	if protect < 0 || protect >= n {
		panic(fmt.Sprintf("failure: protected member %d out of range", protect))
	}
}

// Alive reports whether member i survives this execution.
func (m *Mask) Alive(i int) bool { return m.alive[i] }

// N returns the group size.
func (m *Mask) N() int { return len(m.alive) }

// AliveCount returns the number of alive members.
func (m *Mask) AliveCount() int { return m.count }

// AliveRatio returns the fraction of alive members.
func (m *Mask) AliveRatio() float64 {
	if len(m.alive) == 0 {
		return 0
	}
	return float64(m.count) / float64(len(m.alive))
}

// Kill marks member i failed (no-op if already failed).
func (m *Mask) Kill(i int) {
	if m.alive[i] {
		m.alive[i] = false
		m.count--
	}
}

// Slice returns the underlying alive slice; callers must treat it as
// read-only. It exists so hot loops and graph routines can avoid an
// indirect call per member.
func (m *Mask) Slice() []bool { return m.alive }
