// Package failure implements the paper's fail-stop failure model: a member
// either works correctly for the whole execution or has crashed (before
// receiving the message, or after receiving it but before forwarding — the
// paper treats the two cases identically, and core's tests verify that the
// spread is indeed the same).
//
// The central object is the Mask: which members are alive for one execution.
// Two generators are provided, matching two readings of the paper's
// "nonfailed member ratio q":
//
//   - ExactMask: exactly ⌊n·q⌋ alive members ("it is trivial that the number
//     of nonfailed nodes equals n*q", paper §4.1) — the default for figure
//     reproduction.
//   - BernoulliMask: each member alive independently with probability q —
//     the percolation model's own assumption.
//
// For large n the two are interchangeable; both keep the source alive
// (the paper assumes the source never fails).
package failure

import (
	"fmt"

	"gossipkit/internal/bitset"
	"gossipkit/internal/xrand"
)

// Timing says when a failed member crashes relative to the message.
// The paper's two cases; they are observationally equivalent for the
// spread because a failed member never forwards either way.
type Timing int

const (
	// BeforeReceive crashes the member before it can receive anything.
	BeforeReceive Timing = iota
	// AfterReceive crashes the member after it receives the message but
	// before it forwards (it absorbs one delivery).
	AfterReceive
)

func (t Timing) String() string {
	switch t {
	case BeforeReceive:
		return "before-receive"
	case AfterReceive:
		return "after-receive"
	default:
		return fmt.Sprintf("Timing(%d)", int(t))
	}
}

// Mask records which members are alive during one execution. The alive
// flags are stored as a packed bitset (n/8 bytes, not n), and a Mask can be
// redrawn in place with FillExact/FillBernoulli: it retains its bit storage
// and sampling scratch across redraws, so a pooled mask (core.NetArena
// keeps one per arena) costs zero allocations per run after warm-up.
type Mask struct {
	alive bitset.Bits
	count int

	// scratch pools the sampler's working storage across Fill* redraws;
	// sampled alive ids stream straight into the bitset, so the mask
	// holds no per-member pick list.
	scratch xrand.Scratch
}

// NewMask returns a mask with all n members alive.
func NewMask(n int) *Mask {
	if n < 0 {
		panic(fmt.Sprintf("failure: negative group size %d", n))
	}
	m := &Mask{count: n}
	m.alive.Reset(n)
	m.alive.SetAll()
	return m
}

// ExactMask returns a mask with exactly max(1, ⌊n·q⌋) alive members chosen
// uniformly at random, always including protect (the source). q must be in
// [0, 1]; even q=0 keeps the protected source alive, matching the paper.
func ExactMask(n int, q float64, protect int, r *xrand.RNG) *Mask {
	m := &Mask{}
	m.FillExact(n, q, protect, r)
	return m
}

// FillExact redraws m in place as ExactMask would, reusing m's bit storage
// and sampling scratch. The random stream consumed is identical to
// ExactMask, so pooled and fresh masks yield byte-identical executions.
func (m *Mask) FillExact(n int, q float64, protect int, r *xrand.RNG) {
	checkArgs(n, q, protect)
	target := int(float64(n) * q)
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	m.alive.Reset(n)
	m.alive.Set(protect)
	m.count = 1
	if target > 1 {
		// Choose target-1 of the other n-1 members.
		r.SampleExcludingVisit(&m.scratch, n, target-1, protect, m.alive.Set)
		m.count = target
	}
}

// BernoulliMask returns a mask where every member other than protect is
// alive independently with probability q; protect is always alive.
func BernoulliMask(n int, q float64, protect int, r *xrand.RNG) *Mask {
	m := &Mask{}
	m.FillBernoulli(n, q, protect, r)
	return m
}

// FillBernoulli redraws m in place as BernoulliMask would, reusing m's bit
// storage; the random stream is identical to BernoulliMask.
func (m *Mask) FillBernoulli(n int, q float64, protect int, r *xrand.RNG) {
	checkArgs(n, q, protect)
	m.alive.Reset(n)
	m.count = 0
	for i := 0; i < n; i++ {
		if i == protect || r.Bool(q) {
			m.alive.Set(i)
			m.count++
		}
	}
}

func checkArgs(n int, q float64, protect int) {
	if n < 1 {
		panic(fmt.Sprintf("failure: invalid group size %d", n))
	}
	if q < 0 || q > 1 || q != q {
		panic(fmt.Sprintf("failure: ratio %g outside [0,1]", q))
	}
	if protect < 0 || protect >= n {
		panic(fmt.Sprintf("failure: protected member %d out of range", protect))
	}
}

// Alive reports whether member i survives this execution.
func (m *Mask) Alive(i int) bool { return m.alive.Get(i) }

// N returns the group size.
func (m *Mask) N() int { return m.alive.Len() }

// AliveCount returns the number of alive members.
func (m *Mask) AliveCount() int { return m.count }

// AliveRatio returns the fraction of alive members.
func (m *Mask) AliveRatio() float64 {
	if m.alive.Len() == 0 {
		return 0
	}
	return float64(m.count) / float64(m.alive.Len())
}

// Kill marks member i failed (no-op if already failed).
func (m *Mask) Kill(i int) {
	if m.alive.Get(i) {
		m.alive.Unset(i)
		m.count--
	}
}

// Bits returns the underlying packed alive bitset; callers must treat it
// as read-only. It exists so hot loops, graph routines, and memory
// accounting can reach the words without an indirect call per member.
func (m *Mask) Bits() *bitset.Bits { return &m.alive }
