package failure

import (
	"math"
	"testing"
	"testing/quick"

	"gossipkit/internal/xrand"
)

func TestNewMaskAllAlive(t *testing.T) {
	m := NewMask(10)
	if m.N() != 10 || m.AliveCount() != 10 || m.AliveRatio() != 1 {
		t.Fatalf("fresh mask: %d/%d", m.AliveCount(), m.N())
	}
	for i := 0; i < 10; i++ {
		if !m.Alive(i) {
			t.Fatalf("member %d not alive", i)
		}
	}
}

func TestKill(t *testing.T) {
	m := NewMask(5)
	m.Kill(2)
	m.Kill(2) // idempotent
	if m.AliveCount() != 4 || m.Alive(2) {
		t.Errorf("after kill: count=%d alive(2)=%v", m.AliveCount(), m.Alive(2))
	}
	if m.AliveRatio() != 0.8 {
		t.Errorf("ratio = %g", m.AliveRatio())
	}
}

func TestExactMaskCount(t *testing.T) {
	r := xrand.New(1)
	f := func(nRaw, qRaw, pRaw uint16) bool {
		n := int(nRaw%1000) + 1
		q := float64(qRaw%101) / 100
		protect := int(pRaw) % n
		m := ExactMask(n, q, protect, r)
		want := int(float64(n) * q)
		if want < 1 {
			want = 1
		}
		if want > n {
			want = n
		}
		return m.AliveCount() == want && m.Alive(protect)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExactMaskUniform(t *testing.T) {
	// Every non-protected member should be alive with roughly equal
	// frequency.
	r := xrand.New(7)
	const n, trials = 50, 20000
	q := 0.5
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		m := ExactMask(n, q, 0, r)
		for j := 0; j < n; j++ {
			if m.Alive(j) {
				counts[j]++
			}
		}
	}
	if counts[0] != trials {
		t.Fatalf("protected member alive %d/%d", counts[0], trials)
	}
	// 25 alive per trial, one always the source: 24 of 49 others.
	want := float64(trials) * 24 / 49
	for j := 1; j < n; j++ {
		if math.Abs(float64(counts[j])-want) > 6*math.Sqrt(want) {
			t.Errorf("member %d alive %d times, want ~%.0f", j, counts[j], want)
		}
	}
}

func TestBernoulliMask(t *testing.T) {
	r := xrand.New(11)
	const n, trials = 200, 500
	q := 0.7
	var total int
	for i := 0; i < trials; i++ {
		m := BernoulliMask(n, q, 5, r)
		if !m.Alive(5) {
			t.Fatal("protected member failed")
		}
		total += m.AliveCount()
	}
	mean := float64(total) / trials
	// Expected: 1 + 199*0.7 = 140.3.
	want := 1 + float64(n-1)*q
	if math.Abs(mean-want) > 3 {
		t.Errorf("mean alive %.1f, want ~%.1f", mean, want)
	}
}

func TestBernoulliMaskExtremes(t *testing.T) {
	r := xrand.New(13)
	m0 := BernoulliMask(10, 0, 3, r)
	if m0.AliveCount() != 1 || !m0.Alive(3) {
		t.Errorf("q=0: %d alive", m0.AliveCount())
	}
	m1 := BernoulliMask(10, 1, 3, r)
	if m1.AliveCount() != 10 {
		t.Errorf("q=1: %d alive", m1.AliveCount())
	}
}

func TestExactMaskQZeroKeepsSource(t *testing.T) {
	r := xrand.New(17)
	m := ExactMask(100, 0, 42, r)
	if m.AliveCount() != 1 || !m.Alive(42) {
		t.Errorf("q=0: count=%d alive(42)=%v", m.AliveCount(), m.Alive(42))
	}
}

func TestBitsIsView(t *testing.T) {
	m := NewMask(4)
	m.Kill(1)
	b := m.Bits()
	if b.Len() != 4 || b.Get(1) || !b.Get(0) {
		t.Errorf("bits: len=%d alive={%v,%v,...}", b.Len(), b.Get(0), b.Get(1))
	}
}

// TestFillMatchesFreshMask pins the pooling contract: a mask redrawn in
// place through Fill* consumes the same random stream and lands on the same
// alive set as a freshly allocated mask, and a warm redraw allocates
// nothing — the mask is the last O(n) per-run allocation the DES arena had.
func TestFillMatchesFreshMask(t *testing.T) {
	pooled := &Mask{}
	for _, tc := range []struct {
		q    float64
		kind string
	}{{0.9, "exact"}, {0.3, "exact"}, {0.9, "bernoulli"}} {
		const n, seed = 5000, 77
		fresh := func(r *xrand.RNG) *Mask {
			if tc.kind == "exact" {
				return ExactMask(n, tc.q, 0, r)
			}
			return BernoulliMask(n, tc.q, 0, r)
		}
		want := fresh(xrand.New(seed))
		r := xrand.New(seed)
		if tc.kind == "exact" {
			pooled.FillExact(n, tc.q, 0, r)
		} else {
			pooled.FillBernoulli(n, tc.q, 0, r)
		}
		if pooled.AliveCount() != want.AliveCount() {
			t.Fatalf("%s q=%g: pooled count %d != fresh %d", tc.kind, tc.q, pooled.AliveCount(), want.AliveCount())
		}
		for i := 0; i < n; i++ {
			if pooled.Alive(i) != want.Alive(i) {
				t.Fatalf("%s q=%g: member %d pooled=%v fresh=%v", tc.kind, tc.q, i, pooled.Alive(i), want.Alive(i))
			}
		}
	}
	r := xrand.New(99)
	pooled.FillExact(5000, 0.9, 0, r) // warm at final shape
	allocs := testing.AllocsPerRun(10, func() { pooled.FillExact(5000, 0.9, 0, r) })
	if allocs != 0 {
		t.Errorf("warm FillExact allocates %.1f per redraw, want 0", allocs)
	}
}

func TestValidationPanics(t *testing.T) {
	r := xrand.New(1)
	cases := []func(){
		func() { NewMask(-1) },
		func() { ExactMask(0, 0.5, 0, r) },
		func() { ExactMask(10, -0.1, 0, r) },
		func() { ExactMask(10, 1.5, 0, r) },
		func() { ExactMask(10, 0.5, 10, r) },
		func() { BernoulliMask(10, 0.5, -1, r) },
		func() { BernoulliMask(10, math.NaN(), 0, r) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTimingString(t *testing.T) {
	if BeforeReceive.String() != "before-receive" || AfterReceive.String() != "after-receive" {
		t.Error("Timing strings wrong")
	}
	if Timing(9).String() != "Timing(9)" {
		t.Error("unknown timing string wrong")
	}
}

func BenchmarkExactMask5000(b *testing.B) {
	r := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ExactMask(5000, 0.6, 0, r)
	}
}
