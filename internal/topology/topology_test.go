package topology

import (
	"fmt"
	"sort"
	"testing"

	"gossipkit/internal/membership"
	"gossipkit/internal/xrand"
)

// Overlay must satisfy the membership seam every executor samples through.
var _ membership.View = (*Overlay)(nil)

// naiveKOut is the embedded reference generator for the differential test:
// it consumes the identical RNG stream as generateKOut (one SampleExcluding
// per member, in member order) but builds plain nested slices with none of
// the Overlay's flat-arc packing, so any drift in arc order, offsets, or
// flattening shows up as an exact mismatch.
func naiveKOut(n, k int, r *xrand.RNG) [][]int {
	if k > n-1 {
		k = n - 1
	}
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		adj[u] = r.SampleExcluding(nil, n, k, u)
	}
	return adj
}

func TestKOutDifferentialReference(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{2, 1}, {5, 3}, {10, 4}, {10, 20}, {100, 7}, {257, 9}, {1000, 10},
	} {
		for seed := uint64(0); seed < 25; seed++ {
			ov := generateKOut(tc.n, tc.k, xrand.New(seed))
			want := naiveKOut(tc.n, tc.k, xrand.New(seed))
			for u := 0; u < tc.n; u++ {
				nb := ov.Neighbors(u)
				if len(nb) != len(want[u]) {
					t.Fatalf("n=%d k=%d seed=%d: member %d has %d neighbors, reference %d",
						tc.n, tc.k, seed, u, len(nb), len(want[u]))
				}
				for i, v := range nb {
					if int(v) != want[u][i] {
						t.Fatalf("n=%d k=%d seed=%d: member %d arc %d = %d, reference %d",
							tc.n, tc.k, seed, u, i, v, want[u][i])
					}
				}
			}
		}
	}
}

func TestKOutExactDegrees(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{2, 1}, {10, 4}, {10, 15}, {500, 9}} {
		ov := generateKOut(tc.n, tc.k, xrand.New(42))
		want := min(tc.k, tc.n-1)
		for u := 0; u < tc.n; u++ {
			if ov.Degree(u) != want {
				t.Fatalf("n=%d k=%d: member %d out-degree %d, want exactly %d",
					tc.n, tc.k, u, ov.Degree(u), want)
			}
		}
		checkInvariants(t, ov)
	}
}

func TestBarabasiAlbertProperties(t *testing.T) {
	const n, m = 400, 3
	for seed := uint64(0); seed < 25; seed++ {
		ov := generateBarabasiAlbert(n, m, xrand.New(seed))
		checkInvariants(t, ov)

		// Undirected: every arc appears in both directions.
		arcSet := make(map[[2]int32]bool)
		for u := 0; u < n; u++ {
			for _, v := range ov.Neighbors(u) {
				arcSet[[2]int32{int32(u), v}] = true
			}
		}
		for a := range arcSet {
			if !arcSet[[2]int32{a[1], a[0]}] {
				t.Fatalf("seed %d: arc %d->%d has no reverse", seed, a[0], a[1])
			}
		}

		// Edge count: seed clique C(m+1,2) plus m per arriving member,
		// each edge stored as two arcs.
		wantArcs := 2 * (m*(m+1)/2 + (n-m-1)*m)
		if ov.Arcs() != wantArcs {
			t.Fatalf("seed %d: %d arcs, want %d", seed, ov.Arcs(), wantArcs)
		}

		// Preferential attachment concentrates degree: the maximum degree
		// must clearly exceed the 2m mean (a uniform random graph of the
		// same size stays near it), and connectivity must hold by
		// construction.
		maxDeg := 0
		for u := 0; u < n; u++ {
			maxDeg = max(maxDeg, ov.Degree(u))
		}
		if maxDeg < 4*m {
			t.Fatalf("seed %d: max degree %d shows no hub (mean degree %d)", seed, maxDeg, 2*m)
		}
		if reach := bfsReach(ov, 0); reach != n {
			t.Fatalf("seed %d: BA overlay disconnected, reached %d/%d", seed, reach, n)
		}
	}
}

func TestWANProperties(t *testing.T) {
	for _, tc := range []struct{ n, zones, k int }{
		{10, 3, 2}, {100, 4, 5}, {97, 5, 3}, {1000, 8, 6}, {12, 12, 1},
	} {
		for seed := uint64(0); seed < 25; seed++ {
			ov := generateWAN(tc.n, tc.zones, tc.k, xrand.New(seed))
			checkInvariants(t, ov)
			if ov.Zones() != tc.zones {
				t.Fatalf("zones %d, want %d", ov.Zones(), tc.zones)
			}
			for u := 0; u < tc.n; u++ {
				z := ov.Zone(u)
				lo, hi := z*tc.n/tc.zones, (z+1)*tc.n/tc.zones
				// Zone layout property: the zone formula must invert the
				// contiguous boundary layout exactly.
				if u < lo || u >= hi {
					t.Fatalf("n=%d Z=%d: member %d assigned zone %d covering [%d,%d)",
						tc.n, tc.zones, u, z, lo, hi)
				}
				// Exactly one bridge arc leaves the zone; the rest are
				// intra-zone.
				bridges := 0
				for _, v := range ov.Neighbors(u) {
					if ov.Zone(int(v)) != z {
						bridges++
					}
				}
				if bridges != 1 {
					t.Fatalf("n=%d Z=%d seed=%d: member %d has %d inter-zone arcs, want 1",
						tc.n, tc.zones, seed, u, bridges)
				}
				sz := hi - lo
				if want := min(tc.k, sz-1) + 1; ov.Degree(u) != want {
					t.Fatalf("n=%d Z=%d: member %d degree %d, want %d", tc.n, tc.zones, u, ov.Degree(u), want)
				}
			}
		}
	}
}

func TestZoneFormulaBoundaries(t *testing.T) {
	// For every layout: zone z covers exactly [z·n/Z, (z+1)·n/Z).
	for _, n := range []int{2, 3, 7, 10, 97, 256, 1000} {
		for zones := 2; zones <= min(n, 16); zones++ {
			ov := &Overlay{n: n, zones: zones}
			for z := 0; z < zones; z++ {
				for u := z * n / zones; u < (z+1)*n/zones; u++ {
					if got := ov.Zone(u); got != z {
						t.Fatalf("n=%d Z=%d: Zone(%d) = %d, want %d", n, zones, u, got, z)
					}
				}
			}
		}
	}
}

func TestOverlayRemoveRestoreRoundTrip(t *testing.T) {
	const n = 200
	ov := generateKOut(n, 6, xrand.New(7))
	before := snapshotNeighbors(ov)

	r := xrand.New(99)
	removed := r.SampleInts(nil, n, 60)
	retired := 0
	for _, v := range removed {
		retired += ov.Remove(v)
		if !ov.Down(v) {
			t.Fatalf("member %d not down after Remove", v)
		}
		if again := ov.Remove(v); again != 0 {
			t.Fatalf("double Remove(%d) retired %d arcs, want 0", v, again)
		}
	}
	down := make(map[int]bool, len(removed))
	for _, v := range removed {
		down[v] = true
	}
	// Live neighbor sets must contain no removed member.
	for u := 0; u < n; u++ {
		for _, v := range ov.Neighbors(u) {
			if down[int(v)] {
				t.Fatalf("member %d still lists removed %d", u, v)
			}
		}
	}

	restored := 0
	for _, v := range removed {
		restored += ov.Restore(v)
		if again := ov.Restore(v); again != 0 {
			t.Fatalf("double Restore(%d) restored %d arcs, want 0", v, again)
		}
	}
	if retired != restored {
		t.Fatalf("retired %d arcs but restored %d", retired, restored)
	}
	// The neighbor sets must match the originals (order within a set may
	// differ after swap-retirement).
	after := snapshotNeighbors(ov)
	for u := 0; u < n; u++ {
		sort.Ints(before[u])
		sort.Ints(after[u])
		if fmt.Sprint(before[u]) != fmt.Sprint(after[u]) {
			t.Fatalf("member %d neighbors changed across remove/restore: %v -> %v", u, before[u], after[u])
		}
	}
}

func TestOverlaySampleTargets(t *testing.T) {
	ov := generateKOut(50, 8, xrand.New(3))
	r := xrand.New(11)
	for u := 0; u < 50; u++ {
		nbSet := make(map[int]bool)
		for _, v := range ov.Neighbors(u) {
			nbSet[int(v)] = true
		}
		for _, k := range []int{1, 3, 8, 20} {
			got := ov.SampleTargets(nil, u, k, r)
			if want := min(k, ov.Degree(u)); len(got) != want {
				t.Fatalf("member %d k=%d: %d targets, want %d", u, k, len(got), want)
			}
			seen := make(map[int]bool)
			for _, v := range got {
				if v == u {
					t.Fatalf("member %d sampled itself", u)
				}
				if !nbSet[v] {
					t.Fatalf("member %d sampled non-neighbor %d", u, v)
				}
				if seen[v] {
					t.Fatalf("member %d sampled duplicate %d", u, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	// Same spec + same parent state → byte-identical arcs: Split does not
	// advance the parent, so any number of sibling splits taken from the
	// same (unconsumed) state replay the same overlay. This is the
	// contract the scenario runner's corrected prediction relies on to
	// rebuild the executor's overlay after the run.
	for _, spec := range []Spec{
		{Kind: KOut, K: 7},
		{Kind: ScaleFree, K: 3},
		{Kind: WAN, Zones: 4, K: 5},
	} {
		root := xrand.New(2008)
		a, err := spec.Build(300, root.Split(Split))
		if err != nil {
			t.Fatal(err)
		}
		root.Split(0x5ce9a810) // sibling splits must not perturb the stream
		b, err := spec.Build(300, root.Split(Split))
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a.arcs) != fmt.Sprint(b.arcs) {
			t.Fatalf("%s: rebuild from the same split differs", spec)
		}
	}
	// Uniform builds no overlay at all.
	if ov, err := (Spec{}).Build(100, xrand.New(1)); err != nil || ov != nil {
		t.Fatalf("uniform Build = (%v, %v), want (nil, nil)", ov, err)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, s := range []string{"uniform", "kout", "kout:8", "ba", "ba:3", "wan:4", "wan:4:6"} {
		spec, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Fatalf("Parse(%q).String() = %q", s, got)
		}
		if _, err := Parse(spec.String()); err != nil {
			t.Fatalf("re-Parse(%q): %v", spec, err)
		}
	}
	for _, s := range []string{"", "mesh", "kout:0", "kout:-1", "kout:x", "wan", "wan:1", "wan:0:3", "wan:4:0", "uniform:2", "kout:1:2"} {
		if spec, err := Parse(s); err == nil && s != "" {
			t.Fatalf("Parse(%q) = %v, want error", s, spec)
		}
	}
	// "" parses as uniform (flag default friendliness).
	if spec, err := Parse(""); err != nil || !spec.IsUniform() {
		t.Fatalf("Parse(\"\") = (%v, %v), want uniform", spec, err)
	}
}

func TestValidate(t *testing.T) {
	for _, tc := range []struct {
		spec Spec
		n    int
		ok   bool
	}{
		{Spec{}, 10, true},
		{Spec{Kind: KOut, K: 5}, 10, true},
		{Spec{Kind: KOut, K: -1}, 10, false},
		{Spec{Kind: WAN, Zones: 3}, 10, true},
		{Spec{Kind: WAN, Zones: 1}, 10, false},
		{Spec{Kind: WAN, Zones: 11}, 10, false},
		{Spec{Kind: Kind(99)}, 10, false},
	} {
		err := tc.spec.Validate(tc.n)
		if (err == nil) != tc.ok {
			t.Fatalf("Validate(%+v, n=%d) = %v, want ok=%v", tc.spec, tc.n, err, tc.ok)
		}
	}
}

// checkInvariants asserts the structural contract every generator must
// hold: no self-loops, no duplicate arcs per member, every target in
// range, and an in-adjacency index consistent with the out-arcs.
func checkInvariants(t *testing.T, ov *Overlay) {
	t.Helper()
	n := ov.N()
	inCount := make(map[[2]int32]int)
	for u := 0; u < n; u++ {
		seen := make(map[int32]bool)
		for _, v := range ov.Neighbors(u) {
			if int(v) == u {
				t.Fatalf("member %d has a self-loop", u)
			}
			if v < 0 || int(v) >= n {
				t.Fatalf("member %d has out-of-range neighbor %d (n=%d)", u, v, n)
			}
			if seen[v] {
				t.Fatalf("member %d lists %d twice", u, v)
			}
			seen[v] = true
			inCount[[2]int32{int32(u), v}]++
		}
	}
	for v := 0; v < n; v++ {
		for _, u := range ov.inArcs[ov.inOff[v]:ov.inOff[v+1]] {
			key := [2]int32{u, int32(v)}
			if inCount[key] == 0 {
				t.Fatalf("in-adjacency lists arc %d->%d absent from out-arcs", u, v)
			}
			inCount[key]--
		}
	}
	for key, c := range inCount {
		if c != 0 {
			t.Fatalf("arc %d->%d missing from in-adjacency", key[0], key[1])
		}
	}
}

// bfsReach counts members reachable from src following live out-arcs.
func bfsReach(ov *Overlay, src int) int {
	seen := make([]bool, ov.N())
	queue := []int{src}
	seen[src] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range ov.Neighbors(u) {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, int(v))
			}
		}
	}
	return count
}

func snapshotNeighbors(ov *Overlay) [][]int {
	out := make([][]int, ov.N())
	for u := 0; u < ov.N(); u++ {
		for _, v := range ov.Neighbors(u) {
			out[u] = append(out[u], int(v))
		}
	}
	return out
}

func FuzzBuildInvariants(f *testing.F) {
	f.Add(uint8(1), 10, 3, 2, uint64(42))
	f.Add(uint8(2), 50, 2, 3, uint64(7))
	f.Add(uint8(3), 30, 4, 5, uint64(0))
	f.Add(uint8(1), 2, 1, 2, uint64(1))
	f.Fuzz(func(t *testing.T, kind uint8, n, k, zones int, seed uint64) {
		spec := Spec{Kind: Kind(kind%3 + 1)}
		n = n%500 + 2
		spec.K = abs(k) % 32
		if spec.Kind == WAN {
			spec.Zones = abs(zones)%n + 1
		}
		ov, err := spec.Build(n, xrand.New(seed))
		if err != nil {
			return // invalid spec (e.g. wan with 1 zone) is fine to reject
		}
		checkInvariants(t, ov)
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
