package topology

import (
	"gossipkit/internal/xrand"
)

// Overlay is a materialized topology: a per-member neighbor set stored
// as one flat arc array. It implements membership.View, so every layer
// that routes target selection through View.SampleTargets — the uniform
// executor, the DES NetRun, and the protocol baselines — draws from the
// neighbor set transparently.
//
// Member u's out-arcs occupy arcs[off[u]:off[u+1]]; the live prefix
// arcs[off[u]:off[u]+deg[u]] holds neighbors that have not been removed.
// Remove(v) swap-retires v from every in-neighbor's live prefix (churned
// and crashed members vanish from neighbor sets) and Restore(v) swaps it
// back, so capacity never grows and no allocation happens mid-run.
//
// Concurrency: SampleTargets, Neighbors, Degree, N, and Zone are strictly
// read-only and safe for concurrent use from shard kernels with
// independent RNGs. Remove and Restore mutate the live prefixes and must
// only run while no kernel is sampling (the scenario runner applies them
// at window barriers, where shard workers are parked).
type Overlay struct {
	kind  Kind
	n     int
	zones int

	arcs []int32 // out-arcs, grouped per member
	off  []int32 // len n+1; member u's slots at [off[u], off[u+1])
	deg  []int32 // live out-degree of u (live prefix length)

	inArcs []int32 // in-neighbors, grouped per member
	inOff  []int32 // len n+1
	down   []bool  // members retired by Remove
}

// newOverlay flattens per-member adjacency lists (which must contain no
// self-loops, duplicates, or out-of-range entries) and builds the
// in-adjacency index Remove/Restore use.
func newOverlay(kind Kind, zones int, adj [][]int32) *Overlay {
	n := len(adj)
	o := &Overlay{
		kind:  kind,
		n:     n,
		zones: zones,
		off:   make([]int32, n+1),
		deg:   make([]int32, n),
		inOff: make([]int32, n+1),
		down:  make([]bool, n),
	}
	total := 0
	for u, nb := range adj {
		o.off[u] = int32(total)
		o.deg[u] = int32(len(nb))
		total += len(nb)
	}
	o.off[n] = int32(total)
	o.arcs = make([]int32, 0, total)
	for _, nb := range adj {
		o.arcs = append(o.arcs, nb...)
	}
	// Counting sort of reversed arcs → in-adjacency.
	for _, v := range o.arcs {
		o.inOff[v+1]++
	}
	for v := 0; v < n; v++ {
		o.inOff[v+1] += o.inOff[v]
	}
	o.inArcs = make([]int32, total)
	fill := make([]int32, n)
	for u, nb := range adj {
		for _, v := range nb {
			o.inArcs[o.inOff[v]+fill[v]] = int32(u)
			fill[v]++
		}
	}
	return o
}

// Kind returns the topology family this overlay was generated from.
func (o *Overlay) Kind() Kind { return o.kind }

// N implements membership.View.
func (o *Overlay) N() int { return o.n }

// Degree implements membership.View: the live out-degree of self.
func (o *Overlay) Degree(self int) int { return int(o.deg[self]) }

// Arcs returns the total number of arcs in the overlay (live and
// retired).
func (o *Overlay) Arcs() int { return len(o.arcs) }

// Neighbors returns self's live out-neighbors. The slice aliases the
// overlay's arc storage: read-only, valid until the next Remove/Restore.
func (o *Overlay) Neighbors(self int) []int32 {
	return o.arcs[o.off[self] : o.off[self]+o.deg[self]]
}

// SampleTargets implements membership.View by sampling without
// replacement from self's live neighbor set. It is read-only: one
// Overlay serves concurrently sampling shard kernels.
func (o *Overlay) SampleTargets(dst []int, self, k int, r *xrand.RNG) []int {
	if dst == nil {
		dst = make([]int, 0, k)
	}
	dst = dst[:0]
	nb := o.arcs[o.off[self] : o.off[self]+o.deg[self]]
	if k >= len(nb) {
		for _, t := range nb {
			dst = append(dst, int(t))
		}
		r.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
		return dst
	}
	// Floyd's k-subset with an O(k²) duplicate scan, allocation-free at
	// any draw density. (xrand.SampleInts switches to an O(n) scratch
	// permutation once k·4 > n — an allocation per call, and gossip draws
	// over a k-out overlay sit in exactly that dense regime. This loop is
	// stream-identical to SampleInts' sparse path.)
	for j := len(nb) - k; j < len(nb); j++ {
		t := r.Intn(j + 1)
		for _, v := range dst {
			if v == t {
				t = j
				break
			}
		}
		dst = append(dst, t)
	}
	// Floyd yields a uniform k-subset in biased order; shuffle before
	// mapping indices to members so positions are exchangeable.
	r.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
	for i, idx := range dst {
		dst[i] = int(nb[idx])
	}
	return dst
}

// Down reports whether v has been retired by Remove.
func (o *Overlay) Down(v int) bool { return o.down[v] }

// Remove retires member v from the overlay: v vanishes from every
// in-neighbor's live neighbor set (crashed or churned members are no
// longer gossiped to). Returns the number of arcs retired; 0 if v was
// already down. Not safe concurrently with sampling.
func (o *Overlay) Remove(v int) int {
	if o.down[v] {
		return 0
	}
	o.down[v] = true
	retired := 0
	for _, u := range o.inArcs[o.inOff[v]:o.inOff[v+1]] {
		live := o.arcs[o.off[u] : o.off[u]+o.deg[u]]
		for i, t := range live {
			if int(t) == v {
				last := len(live) - 1
				live[i], live[last] = live[last], live[i]
				o.deg[u]--
				retired++
				break
			}
		}
	}
	return retired
}

// Restore re-admits member v: every arc Remove retired is swapped back
// into its in-neighbor's live prefix. Returns the number of arcs
// restored; 0 if v was not down. Not safe concurrently with sampling.
func (o *Overlay) Restore(v int) int {
	if !o.down[v] {
		return 0
	}
	o.down[v] = false
	restored := 0
	for _, u := range o.inArcs[o.inOff[v]:o.inOff[v+1]] {
		dead := o.arcs[o.off[u]+o.deg[u] : o.off[u+1]]
		for i, t := range dead {
			if int(t) == v {
				dead[i], dead[0] = dead[0], dead[i]
				o.deg[u]++
				restored++
				break
			}
		}
	}
	return restored
}

// Zones returns the zone count (1 for non-WAN overlays).
func (o *Overlay) Zones() int {
	if o.zones < 1 {
		return 1
	}
	return o.zones
}

// Zone returns the zone of member id. Zones are contiguous index ranges
// (the same layout scenario zone-crash actions and shard blocks use), so
// zone z covers members [z·n/Z, (z+1)·n/Z).
func (o *Overlay) Zone(id int) int {
	if o.zones <= 1 {
		return 0
	}
	return ((id+1)*o.zones - 1) / o.n
}
