package topology

import (
	"time"

	"gossipkit/internal/simnet"
	"gossipkit/internal/xrand"
)

// ZoneLatency is a per-zone-pair latency matrix over the WAN overlay's
// contiguous zone layout: a message from zone i to zone j draws
// uniformly from [Lo[i·Z+j], Hi[i·Z+j]]. It is a stateless value — all
// fields are read-only after construction — so it is safe to share
// across shard kernels and sweep workers, implements LatencyBounder
// (calendar-queue eligible) and LatencyFloorer (a positive floor keeps
// the conservative-PDES lookahead, and therefore sharding, viable).
type ZoneLatency struct {
	N     int             // group size (for the contiguous zone map)
	Zones int             // zone count Z
	Lo    []time.Duration // Z×Z row-major pair floors
	Hi    []time.Duration // Z×Z row-major pair ceilings
}

// NewZoneLatency builds the default distance-based matrix for n members
// in zones clusters: intra-zone pairs draw from [local, 2·local] and a
// pair of zones at ring distance d (the shorter way around the zone
// ring) draws from [local+d·step, 2·(local+d·step)] — LAN-fast inside a
// cluster, progressively slower across the WAN. The matrix is built
// deterministically (no RNG), so one value serves every run of a sweep.
func NewZoneLatency(n, zones int, local, step time.Duration) ZoneLatency {
	if zones < 1 {
		zones = 1
	}
	zl := ZoneLatency{
		N:     n,
		Zones: zones,
		Lo:    make([]time.Duration, zones*zones),
		Hi:    make([]time.Duration, zones*zones),
	}
	for i := 0; i < zones; i++ {
		for j := 0; j < zones; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			if ring := zones - d; ring < d {
				d = ring
			}
			lo := local + time.Duration(d)*step
			zl.Lo[i*zones+j] = lo
			zl.Hi[i*zones+j] = 2 * lo
		}
	}
	return zl
}

func (z ZoneLatency) zone(id simnet.NodeID) int {
	if z.Zones <= 1 || z.N <= 0 {
		return 0
	}
	return ((int(id)+1)*z.Zones - 1) / z.N
}

// Latency implements simnet.LatencyModel.
func (z ZoneLatency) Latency(r *xrand.RNG, from, to simnet.NodeID) time.Duration {
	i := z.zone(from)*z.Zones + z.zone(to)
	lo, hi := z.Lo[i], z.Hi[i]
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.Uint64n(uint64(hi-lo)+1))
}

// LatencyBound implements simnet.LatencyBounder.
func (z ZoneLatency) LatencyBound() (time.Duration, bool) {
	var max time.Duration
	for _, h := range z.Hi {
		if h > max {
			max = h
		}
	}
	return max, len(z.Hi) > 0
}

// LatencyFloor implements simnet.LatencyFloorer.
func (z ZoneLatency) LatencyFloor() (time.Duration, bool) {
	if len(z.Lo) == 0 {
		return 0, false
	}
	min := z.Lo[0]
	for _, l := range z.Lo[1:] {
		if l < min {
			min = l
		}
	}
	return min, true
}
