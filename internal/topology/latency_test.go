package topology

import (
	"testing"
	"time"

	"gossipkit/internal/simnet"
	"gossipkit/internal/xrand"
)

// ZoneLatency must plug into the simnet latency seam, and its positive
// floor is what keeps the calendar queue and PDES lookahead viable.
var (
	_ simnet.LatencyModel = ZoneLatency{}
	_ interface {
		LatencyBound() (time.Duration, bool)
	} = ZoneLatency{}
	_ interface {
		LatencyFloor() (time.Duration, bool)
	} = ZoneLatency{}
)

func TestZoneLatencyBands(t *testing.T) {
	const (
		n     = 100
		zones = 4
		local = time.Millisecond
		step  = 10 * time.Millisecond
	)
	zl := NewZoneLatency(n, zones, local, step)
	ov := generateWAN(n, zones, 3, xrand.New(1))
	r := xrand.New(5)

	ringDist := func(a, b int) int {
		d := a - b
		if d < 0 {
			d = -d
		}
		if zones-d < d {
			d = zones - d
		}
		return d
	}
	for i := 0; i < 2000; i++ {
		from := simnet.NodeID(r.Intn(n))
		to := simnet.NodeID(r.Intn(n))
		// The latency matrix's zone layout must agree with the overlay's.
		za, zb := zl.zone(from), zl.zone(to)
		if za != ov.Zone(int(from)) || zb != ov.Zone(int(to)) {
			t.Fatalf("zone layouts disagree: latency (%d,%d) vs overlay (%d,%d)",
				za, zb, ov.Zone(int(from)), ov.Zone(int(to)))
		}
		lo := local + time.Duration(ringDist(za, zb))*step
		hi := 2 * lo
		d := zl.Latency(r, from, to)
		if d < lo || d > hi {
			t.Fatalf("latency %v for zones (%d,%d) outside [%v, %v]", d, za, zb, lo, hi)
		}
	}

	// The bound is the farthest ring pair's hi, the floor the local lo;
	// both must report ok so the kernel can size windows.
	bound, ok := zl.LatencyBound()
	if !ok {
		t.Fatal("LatencyBound not ok")
	}
	wantBound := 2 * (local + time.Duration(zones/2)*step)
	if bound != wantBound {
		t.Fatalf("LatencyBound %v, want %v", bound, wantBound)
	}
	floor, ok := zl.LatencyFloor()
	if !ok {
		t.Fatal("LatencyFloor not ok")
	}
	if floor != local {
		t.Fatalf("LatencyFloor %v, want %v", floor, local)
	}
	if floor <= 0 {
		t.Fatal("LatencyFloor must stay positive for PDES lookahead")
	}
}

func TestZoneLatencyDeterministic(t *testing.T) {
	zl := NewZoneLatency(60, 3, time.Millisecond, 5*time.Millisecond)
	a, b := xrand.New(9), xrand.New(9)
	for i := 0; i < 500; i++ {
		from := simnet.NodeID(i % 60)
		to := simnet.NodeID((i * 7) % 60)
		if da, db := zl.Latency(a, from, to), zl.Latency(b, from, to); da != db {
			t.Fatalf("draw %d: %v != %v", i, da, db)
		}
	}
}
